// chaos_soak -- robustness gate for the four design points.
//
// Runs ECMA, IDRP, LS+HbH and ORWG over the Figure 1 internetwork through
// a seeded churn schedule: link flaps, node crashes with cold restarts,
// frame corruption, duplication and reordering -- with the instantaneous
// link-state oracle OFF, so failure detection rides the keepalive/hold-
// timer machinery. A continuous invariant monitor probes forwarding state
// throughout and classifies loops, black holes and stale routes.
//
// The soak FAILS (exit 1) if:
//   * any design point shows a persistent invariant violation (one seen
//     after the reconvergence window of the latest fault), or
//   * the same seed does not reproduce byte-identical per-AD counters
//     across two runs (the chaos schedule must be a pure function of the
//     seed), or
//   * the schedule injected no crashes/corruptions (a vacuous soak).
//
// Usage: chaos_soak [--seed N] [--horizon-ms T] [--runs K]
//   --runs K soaks K distinct seeds (seed, seed+1, ...); each is run
//   twice for the determinism check.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/chaos.hpp"
#include "util/table.hpp"

namespace {

using namespace idr;

int run_seed(std::uint64_t seed, double horizon_ms) {
  int failures = 0;
  ChaosParams params;
  params.seed = seed;
  params.horizon_ms = horizon_ms;

  std::printf("-- seed %" PRIu64 ", horizon %.0f ms --\n", seed, horizon_ms);
  Table table({"arch", "link fails", "crashes", "corrupt", "dup", "reorder",
               "malformed", "probes", "transient", "persistent",
               "reconv p50(ms)"});
  for (const std::string& arch : chaos_design_points()) {
    const ChaosResult first = run_chaos(arch, params);
    const ChaosResult second = run_chaos(arch, params);

    const InvariantStats& inv = first.invariants;
    table.add_row(
        {arch, Table::integer(static_cast<long long>(first.link_failures)),
         Table::integer(static_cast<long long>(first.node_crashes)),
         Table::integer(static_cast<long long>(first.totals.msgs_corrupted)),
         Table::integer(static_cast<long long>(first.totals.msgs_duplicated)),
         Table::integer(static_cast<long long>(first.totals.msgs_reordered)),
         Table::integer(
             static_cast<long long>(first.totals.malformed_dropped)),
         Table::integer(static_cast<long long>(inv.probes)),
         Table::integer(static_cast<long long>(inv.transient_violations())),
         Table::integer(static_cast<long long>(inv.persistent_violations())),
         inv.reconverge_ms.count() > 0
             ? Table::num(inv.reconverge_ms.median())
             : "-"});

    if (inv.persistent_violations() != 0) {
      std::fprintf(stderr,
                   "FAIL [%s seed %" PRIu64
                   "]: %" PRIu64 " persistent invariant violations "
                   "(loops=%" PRIu64 " black holes=%" PRIu64
                   " stale=%" PRIu64 ")\n",
                   arch.c_str(), seed, inv.persistent_violations(),
                   inv.persistent_loops, inv.persistent_black_holes,
                   inv.persistent_stale_routes);
      ++failures;
    }
    if (first.counter_fingerprint != second.counter_fingerprint) {
      std::fprintf(stderr,
                   "FAIL [%s seed %" PRIu64
                   "]: non-deterministic run -- counter fingerprint "
                   "%016" PRIx64 " vs %016" PRIx64 "\n",
                   arch.c_str(), seed, first.counter_fingerprint,
                   second.counter_fingerprint);
      ++failures;
    }
    if (first.node_crashes == 0 || first.totals.msgs_corrupted == 0 ||
        first.totals.msgs_duplicated == 0 ||
        first.totals.msgs_reordered == 0) {
      std::fprintf(stderr,
                   "FAIL [%s seed %" PRIu64
                   "]: vacuous soak (crashes=%zu corrupt=%" PRIu64
                   " dup=%" PRIu64 " reorder=%" PRIu64 ")\n",
                   arch.c_str(), seed, first.node_crashes,
                   first.totals.msgs_corrupted, first.totals.msgs_duplicated,
                   first.totals.msgs_reordered);
      ++failures;
    }
  }
  std::printf("%s\n", table.render().c_str());
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = 1;
  double horizon_ms = 10'000.0;
  int runs = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--horizon-ms") == 0 && i + 1 < argc) {
      horizon_ms = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
      runs = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seed N] [--horizon-ms T] [--runs K]\n",
                   argv[0]);
      return 2;
    }
  }

  int failures = 0;
  for (int r = 0; r < runs; ++r) {
    failures += run_seed(seed + static_cast<std::uint64_t>(r), horizon_ms);
  }
  if (failures != 0) {
    std::fprintf(stderr, "chaos_soak: %d failure(s)\n", failures);
    return 1;
  }
  std::printf("chaos_soak: all design points clean\n");
  return 0;
}
