// chaos_soak -- robustness gate for the four design points.
//
// Runs ECMA, IDRP, LS+HbH and ORWG over the Figure 1 internetwork through
// a seeded churn schedule: link flaps, node crashes with cold restarts,
// frame corruption, duplication and reordering -- with the instantaneous
// link-state oracle OFF, so failure detection rides the keepalive/hold-
// timer machinery. A continuous invariant monitor probes forwarding state
// throughout and classifies loops, black holes and stale routes.
//
// With --byzantine N the delivery faults and churn are switched off and N
// transit-capable ADs instead misbehave (route leak, false-origin hijack,
// black hole, path tampering) against provider/customer policies; a
// policy-compliance auditor measures blast radius and containment.
// --defended arms every design point's defenses.
//
// The soak FAILS (exit 1) if:
//   * (non-Byzantine) any design point shows a persistent invariant
//     violation, or the schedule injected no crashes/corruptions (a
//     vacuous soak), or
//   * (Byzantine, defended) any design point is left uncontained or with
//     a persistently polluted honest (src, dst) pair, or
//   * any mode: the same seed does not reproduce byte-identical per-AD
//     counters across two runs (every schedule must be a pure function
//     of the seed).
//
// Usage: chaos_soak [--seed N] [--duration-ms T] [--runs K]
//                   [--byzantine N] [--defended] [--json PATH]
//   --runs K soaks K distinct seeds (seed, seed+1, ...); each is run
//   twice for the determinism check. --horizon-ms is accepted as an
//   alias of --duration-ms. --json writes a machine-readable report of
//   every run (for the nightly CI artifact).
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/chaos.hpp"
#include "util/table.hpp"

namespace {

using namespace idr;

struct SoakOptions {
  std::uint64_t seed = 1;
  double duration_ms = 10'000.0;
  int runs = 1;
  std::size_t byzantine = 0;
  bool defended = false;
  std::string json_path;
  // Paper-scale storm mode: --profile-ads N switches the soak from the
  // Figure 1 internetwork to the hierarchical scale profile and runs one
  // storm family (run_scale_chaos) per design point.
  std::uint32_t profile_ads = 0;
  std::string storm = "flap";
  bool damping = false;        // DV route-flap damping on
  double ls_holddown_ms = 0.0; // LS origination hold-down
};

bool parse_storm(const std::string& name, StormFamily& out) {
  if (name == "flap") out = StormFamily::kFlapStorm;
  else if (name == "withdraw") out = StormFamily::kWithdrawStorm;
  else if (name == "partition") out = StormFamily::kPartition;
  else if (name == "core" || name == "core-outage") out = StormFamily::kCoreOutage;
  else return false;
  return true;
}

int run_scale_seed(const SoakOptions& opts, std::uint64_t seed) {
  StormFamily storm;
  if (!parse_storm(opts.storm, storm)) {
    std::fprintf(stderr, "chaos_soak: unknown storm '%s'\n",
                 opts.storm.c_str());
    return 1;
  }
  ScaleChaosParams params;
  params.seed = seed;
  params.target_ads = opts.profile_ads;
  params.storm = storm;
  params.damping.enabled = opts.damping;
  if (opts.damping) params.damping.half_life_ms = 500.0;
  params.ls_holddown_ms = opts.ls_holddown_ms;

  std::printf("-- scale storm: %s, %u ADs, seed %" PRIu64
              ", damping %s, holddown %.0f ms --\n",
              to_string(storm), opts.profile_ads, seed,
              opts.damping ? "on" : "off", opts.ls_holddown_ms);
  Table table({"arch", "transitions", "converge(ms)", "reconv(ms)",
               "storm msgs", "msgs/s", "blast peak%", "suppressed",
               "ls held", "transient", "persistent"});
  int failures = 0;
  for (const std::string& arch : chaos_design_points()) {
    const ScaleChaosResult first = run_scale_chaos(arch, params);
    const ScaleChaosResult second = run_scale_chaos(arch, params);
    const InvariantStats& inv = first.invariants;
    // Class 0 is the implicit start-up class; the storm class is the one
    // run_scale_chaos registered after it.
    const double blast =
        inv.fault_classes.size() > 1 ? inv.fault_classes[1].peak_blast : 0.0;
    table.add_row(
        {arch, Table::integer(static_cast<long long>(first.storm_transitions)),
         Table::num(first.converge_ms),
         first.reconverge_ms >= 0.0 ? Table::num(first.reconverge_ms)
                                    : "never",
         Table::integer(static_cast<long long>(first.updates_during_storm)),
         Table::num(first.updates_per_sec_storm), Table::num(100.0 * blast),
         Table::integer(static_cast<long long>(first.routes_suppressed)),
         Table::integer(
             static_cast<long long>(first.ls_originations_suppressed)),
         Table::integer(static_cast<long long>(inv.transient_violations())),
         Table::integer(
             static_cast<long long>(inv.persistent_violations()))});
    if (first.counter_fingerprint != second.counter_fingerprint) {
      std::fprintf(stderr,
                   "FAIL [%s seed %" PRIu64
                   "]: non-deterministic scale run -- fingerprint "
                   "%016" PRIx64 " vs %016" PRIx64 "\n",
                   arch.c_str(), seed, first.counter_fingerprint,
                   second.counter_fingerprint);
      ++failures;
    }
    if (inv.persistent_violations() != 0) {
      std::fprintf(stderr,
                   "FAIL [%s seed %" PRIu64 "]: %" PRIu64
                   " persistent invariant violations under %s storm\n",
                   arch.c_str(), seed, inv.persistent_violations(),
                   to_string(storm));
      for (const InvariantFinding& f : first.persistent_findings) {
        std::fprintf(stderr, "  %s ad%u->ad%u at %.0f ms, path:",
                     to_string(f.kind), f.src.v, f.dst.v, f.at_ms);
        for (const AdId hop : f.path) std::fprintf(stderr, " %u", hop.v);
        std::fprintf(stderr, "\n");
      }
      ++failures;
    }
    if (first.reconverge_ms < 0.0) {
      std::fprintf(stderr,
                   "FAIL [%s seed %" PRIu64
                   "]: never reconverged from the %s storm\n",
                   arch.c_str(), seed, to_string(storm));
      ++failures;
    }
    if (first.storm_transitions == 0) {
      std::fprintf(stderr,
                   "FAIL [%s seed %" PRIu64 "]: vacuous storm (0 transitions)\n",
                   arch.c_str(), seed);
      ++failures;
    }
  }
  std::printf("%s\n", table.render().c_str());
  return failures;
}

ChaosParams make_params(const SoakOptions& opts, std::uint64_t seed) {
  ChaosParams params;
  params.seed = seed;
  params.horizon_ms = opts.duration_ms;
  if (opts.byzantine > 0) {
    // Pure Byzantine schedule: no churn and no delivery faults, so a
    // polluted pair is attributable to misbehavior, not bad luck.
    params.churn_fraction = 0.0;
    params.faults = FaultConfig{};
    params.policy_mode = PolicyMode::kProviderCustomer;
    params.byzantine.count = opts.byzantine;
    params.byzantine.defended = opts.defended;
    params.audit.sample_pairs = 0;  // audit every honest ordered pair
  }
  return params;
}

void json_escape_free_run(std::FILE* f, const ChaosResult& r, bool last) {
  const InvariantStats& inv = r.invariants;
  const AuditStats& audit = r.audit;
  std::fprintf(
      f,
      "    {\"arch\": \"%s\", \"fingerprint\": \"%016" PRIx64
      "\", \"link_failures\": %zu, \"node_crashes\": %zu,\n"
      "     \"msgs_sent\": %" PRIu64 ", \"msgs_corrupted\": %" PRIu64
      ", \"defense_rejections\": %" PRIu64 ",\n"
      "     \"invariants\": {\"probes\": %" PRIu64 ", \"transient\": %" PRIu64
      ", \"persistent\": %" PRIu64 ", \"persistent_loops\": %" PRIu64
      ", \"persistent_black_holes\": %" PRIu64
      ", \"persistent_stale\": %" PRIu64 "},\n"
      "     \"byzantine\": %zu, \"defended\": %s,\n"
      "     \"audit\": {\"sweeps\": %" PRIu64 ", \"probes\": %" PRIu64
      ", \"hijacked_pairs\": %" PRIu64 ", \"leaked_pairs\": %" PRIu64
      ", \"black_holed_pairs\": %" PRIu64 ", \"collateral_pairs\": %" PRIu64
      ", \"peak_pollution\": %.6f, \"final_pollution\": %.6f"
      ", \"containment_ms\": %.1f, \"contained\": %s}}%s\n",
      r.arch.c_str(), r.counter_fingerprint, r.link_failures, r.node_crashes,
      r.totals.msgs_sent, r.totals.msgs_corrupted, r.defense_rejections,
      inv.probes, inv.transient_violations(), inv.persistent_violations(),
      inv.persistent_loops, inv.persistent_black_holes,
      inv.persistent_stale_routes, r.byzantine.size(),
      r.defended ? "true" : "false", audit.sweeps, audit.probes,
      audit.hijacked_pairs, audit.leaked_pairs, audit.black_holed_pairs,
      audit.collateral_pairs, audit.peak_pollution, audit.final_pollution,
      audit.containment_ms, audit.contained() ? "true" : "false",
      last ? "" : ",");
}

int run_seed(const SoakOptions& opts, std::uint64_t seed,
             std::vector<ChaosResult>& report) {
  int failures = 0;
  const ChaosParams params = make_params(opts, seed);
  const bool byz = opts.byzantine > 0;

  std::printf("-- seed %" PRIu64 ", duration %.0f ms%s --\n", seed,
              opts.duration_ms,
              byz ? (opts.defended ? ", byzantine (defended)"
                                   : ", byzantine (undefended)")
                  : "");
  Table table = byz ? Table({"arch", "rejections", "hijack", "leak",
                             "blackhole", "collateral", "peak%", "final%",
                             "contain(ms)", "persistent"})
                    : Table({"arch", "link fails", "crashes", "corrupt",
                             "dup", "reorder", "malformed", "probes",
                             "transient", "persistent", "reconv p50(ms)"});
  bool schedule_shown = false;
  for (const std::string& arch : chaos_design_points()) {
    const ChaosResult first = run_chaos(arch, params);
    const ChaosResult second = run_chaos(arch, params);
    report.push_back(first);
    if (byz && !schedule_shown) {
      schedule_shown = true;
      std::printf("   schedule:");
      for (const ByzantineSpec& spec : first.byzantine) {
        std::printf(" ad%u=%s", spec.ad.v, to_string(spec.kind));
        if (spec.victim.valid()) std::printf("->ad%u", spec.victim.v);
      }
      std::printf(" (onset %.0f ms)\n", params.byzantine.onset_ms);
    }

    const InvariantStats& inv = first.invariants;
    const AuditStats& audit = first.audit;
    if (byz) {
      table.add_row(
          {arch,
           Table::integer(static_cast<long long>(first.defense_rejections)),
           Table::integer(static_cast<long long>(audit.hijacked_pairs)),
           Table::integer(static_cast<long long>(audit.leaked_pairs)),
           Table::integer(static_cast<long long>(audit.black_holed_pairs)),
           Table::integer(static_cast<long long>(audit.collateral_pairs)),
           Table::num(100.0 * audit.peak_pollution),
           Table::num(100.0 * audit.final_pollution),
           audit.contained() ? Table::num(audit.containment_ms) : "never",
           Table::integer(
               static_cast<long long>(inv.persistent_violations()))});
    } else {
      table.add_row(
          {arch, Table::integer(static_cast<long long>(first.link_failures)),
           Table::integer(static_cast<long long>(first.node_crashes)),
           Table::integer(static_cast<long long>(first.totals.msgs_corrupted)),
           Table::integer(
               static_cast<long long>(first.totals.msgs_duplicated)),
           Table::integer(static_cast<long long>(first.totals.msgs_reordered)),
           Table::integer(
               static_cast<long long>(first.totals.malformed_dropped)),
           Table::integer(static_cast<long long>(inv.probes)),
           Table::integer(static_cast<long long>(inv.transient_violations())),
           Table::integer(static_cast<long long>(inv.persistent_violations())),
           inv.reconverge_ms.count() > 0
               ? Table::num(inv.reconverge_ms.median())
               : "-"});
    }

    if (first.counter_fingerprint != second.counter_fingerprint) {
      std::fprintf(stderr,
                   "FAIL [%s seed %" PRIu64
                   "]: non-deterministic run -- counter fingerprint "
                   "%016" PRIx64 " vs %016" PRIx64 "\n",
                   arch.c_str(), seed, first.counter_fingerprint,
                   second.counter_fingerprint);
      ++failures;
    }
    if (!byz) {
      if (inv.persistent_violations() != 0) {
        std::fprintf(stderr,
                     "FAIL [%s seed %" PRIu64
                     "]: %" PRIu64 " persistent invariant violations "
                     "(loops=%" PRIu64 " black holes=%" PRIu64
                     " stale=%" PRIu64 ")\n",
                     arch.c_str(), seed, inv.persistent_violations(),
                     inv.persistent_loops, inv.persistent_black_holes,
                     inv.persistent_stale_routes);
        ++failures;
      }
      if (first.node_crashes == 0 || first.totals.msgs_corrupted == 0 ||
          first.totals.msgs_duplicated == 0 ||
          first.totals.msgs_reordered == 0) {
        std::fprintf(stderr,
                     "FAIL [%s seed %" PRIu64
                     "]: vacuous soak (crashes=%zu corrupt=%" PRIu64
                     " dup=%" PRIu64 " reorder=%" PRIu64 ")\n",
                     arch.c_str(), seed, first.node_crashes,
                     first.totals.msgs_corrupted,
                     first.totals.msgs_duplicated,
                     first.totals.msgs_reordered);
        ++failures;
      }
    } else if (opts.defended) {
      if (!audit.contained() || audit.final_pollution != 0.0) {
        std::fprintf(stderr,
                     "FAIL [%s seed %" PRIu64
                     "]: defended Byzantine run not contained "
                     "(containment=%.1f ms, final pollution=%.4f)\n",
                     arch.c_str(), seed, audit.containment_ms,
                     audit.final_pollution);
        ++failures;
      }
      if (inv.persistent_violations() != 0) {
        std::fprintf(stderr,
                     "FAIL [%s seed %" PRIu64
                     "]: defended Byzantine run left %" PRIu64
                     " persistent invariant violations\n",
                     arch.c_str(), seed, inv.persistent_violations());
        ++failures;
      }
    }
  }
  std::printf("%s\n", table.render().c_str());
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  SoakOptions opts;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
      opts.seed = std::strtoull(argv[++i], nullptr, 10);
    } else if ((std::strcmp(argv[i], "--duration-ms") == 0 ||
                std::strcmp(argv[i], "--horizon-ms") == 0) &&
               i + 1 < argc) {
      opts.duration_ms = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--runs") == 0 && i + 1 < argc) {
      opts.runs = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--byzantine") == 0 && i + 1 < argc) {
      opts.byzantine = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--defended") == 0) {
      opts.defended = true;
    } else if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      opts.json_path = argv[++i];
    } else if (std::strcmp(argv[i], "--profile-ads") == 0 && i + 1 < argc) {
      opts.profile_ads = static_cast<std::uint32_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--storm") == 0 && i + 1 < argc) {
      opts.storm = argv[++i];
    } else if (std::strcmp(argv[i], "--damping") == 0) {
      opts.damping = true;
    } else if (std::strcmp(argv[i], "--ls-holddown") == 0 && i + 1 < argc) {
      opts.ls_holddown_ms = std::strtod(argv[++i], nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seed N] [--duration-ms T] [--runs K] "
                   "[--byzantine N] [--defended] [--json PATH]\n"
                   "       %s --profile-ads N "
                   "[--storm flap|withdraw|partition|core] [--damping] "
                   "[--ls-holddown MS] [--seed N] [--runs K]\n",
                   argv[0], argv[0]);
      return 2;
    }
  }

  int failures = 0;
  std::vector<ChaosResult> report;
  for (int r = 0; r < opts.runs; ++r) {
    const std::uint64_t seed = opts.seed + static_cast<std::uint64_t>(r);
    if (opts.profile_ads > 0) {
      failures += run_scale_seed(opts, seed);
    } else {
      failures += run_seed(opts, seed, report);
    }
  }

  if (!opts.json_path.empty()) {
    std::FILE* f = std::fopen(opts.json_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "chaos_soak: cannot write %s\n",
                   opts.json_path.c_str());
      return 2;
    }
    std::fprintf(f,
                 "{\n  \"seed\": %" PRIu64
                 ",\n  \"runs\": %d,\n  \"duration_ms\": %.1f,\n"
                 "  \"byzantine\": %zu,\n  \"defended\": %s,\n"
                 "  \"failures\": %d,\n  \"results\": [\n",
                 opts.seed, opts.runs, opts.duration_ms, opts.byzantine,
                 opts.defended ? "true" : "false", failures);
    for (std::size_t i = 0; i < report.size(); ++i) {
      json_escape_free_run(f, report[i], i + 1 == report.size());
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("chaos_soak: wrote %s\n", opts.json_path.c_str());
  }

  if (failures != 0) {
    std::fprintf(stderr, "chaos_soak: %d failure(s)\n", failures);
    return 1;
  }
  std::printf("chaos_soak: all design points clean\n");
  return 0;
}
