// idrsim -- command-line front end to the inter-AD policy routing
// library: load a topology file and a policy file, run an architecture,
// and answer route queries / evaluate against the oracle / export DOT.
//
// Usage:
//   idrsim --topo t.topo [--policies p.pol] [--arch orwg] <command> ...
//
// Commands:
//   route <src> <dst> [qos] [uci] [hour]   trace a flow's path
//   oracle <src> <dst> [qos] [uci] [hour]  ground-truth best legal route
//   evaluate [flows]                       score the arch vs the oracle
//   census                                 topology statistics
//   dot <out.dot>                          Graphviz export
//
// Architectures: dv-plain dv-rip ls-ospf egp ecma idrp ls-hbh orwg dv-sr
//
// Example:
//   idrsim --topo fig1.topo --policies aup.pol --arch orwg \
//       route Campus-0 Campus-6 default research 12
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/adapters.hpp"
#include "core/metrics.hpp"
#include "core/oracle.hpp"
#include "core/scenario.hpp"
#include "policy/dsl.hpp"
#include "policy/generator.hpp"
#include "topology/algos.hpp"
#include "topology/dot.hpp"
#include "topology/parse.hpp"

namespace {

using namespace idr;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --topo FILE [--policies FILE] [--arch NAME] "
               "<route|oracle|evaluate|census|dot> ...\n",
               argv0);
  return 2;
}

std::string slurp(const std::string& path, bool& ok) {
  std::ifstream in(path);
  if (!in) {
    ok = false;
    return {};
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  ok = true;
  return buffer.str();
}

std::unique_ptr<RoutingArchitecture> make_arch(const std::string& name) {
  if (name == "dv-plain") {
    return std::make_unique<DvArchitecture>(DvConfig{.split_horizon = false});
  }
  if (name == "dv-rip") return std::make_unique<DvArchitecture>();
  if (name == "ls-ospf") return std::make_unique<LsArchitecture>();
  if (name == "egp") return std::make_unique<EgpArchitecture>();
  if (name == "ecma") return std::make_unique<EcmaArchitecture>();
  if (name == "idrp") return std::make_unique<IdrpArchitecture>();
  if (name == "ls-hbh") return std::make_unique<LshhArchitecture>();
  if (name == "orwg") return std::make_unique<OrwgArchitecture>();
  if (name == "dv-sr") return std::make_unique<DvsrArchitecture>();
  return nullptr;
}

std::optional<Qos> parse_qos(const std::string& s) {
  if (s == "default") return Qos::kDefault;
  if (s == "low-delay") return Qos::kLowDelay;
  if (s == "high-throughput") return Qos::kHighThroughput;
  if (s == "high-reliability") return Qos::kHighReliability;
  return std::nullopt;
}

std::optional<UserClass> parse_uci(const std::string& s) {
  if (s == "research") return UserClass::kResearch;
  if (s == "commercial") return UserClass::kCommercial;
  if (s == "government") return UserClass::kGovernment;
  return std::nullopt;
}

void print_path(const Topology& topo, const std::vector<AdId>& path) {
  for (std::size_t i = 0; i < path.size(); ++i) {
    std::printf("%s%s", i ? " > " : "", topo.ad(path[i]).name.c_str());
  }
  std::printf("\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::string topo_path;
  std::string policy_path;
  std::string arch_name = "orwg";
  int i = 1;
  for (; i < argc; ++i) {
    if (std::strcmp(argv[i], "--topo") == 0 && i + 1 < argc) {
      topo_path = argv[++i];
    } else if (std::strcmp(argv[i], "--policies") == 0 && i + 1 < argc) {
      policy_path = argv[++i];
    } else if (std::strcmp(argv[i], "--arch") == 0 && i + 1 < argc) {
      arch_name = argv[++i];
    } else {
      break;
    }
  }
  if (topo_path.empty() || i >= argc) return usage(argv[0]);
  const std::string command = argv[i++];

  bool ok = false;
  const std::string topo_text = slurp(topo_path, ok);
  if (!ok) {
    std::fprintf(stderr, "cannot read %s\n", topo_path.c_str());
    return 1;
  }
  TopoParseResult parsed_topo = parse_topology(topo_text);
  if (std::holds_alternative<TopoParseError>(parsed_topo)) {
    std::fprintf(stderr, "%s: %s\n", topo_path.c_str(),
                 std::get<TopoParseError>(parsed_topo).describe().c_str());
    return 1;
  }
  Topology topo = std::get<Topology>(std::move(parsed_topo));

  PolicySet policies;
  if (policy_path.empty()) {
    policies = make_open_policies(topo);
  } else {
    const std::string policy_text = slurp(policy_path, ok);
    if (!ok) {
      std::fprintf(stderr, "cannot read %s\n", policy_path.c_str());
      return 1;
    }
    DslResult parsed = parse_policies(topo, policy_text);
    if (std::holds_alternative<DslError>(parsed)) {
      std::fprintf(stderr, "%s: %s\n", policy_path.c_str(),
                   std::get<DslError>(parsed).describe().c_str());
      return 1;
    }
    policies = std::get<PolicySet>(std::move(parsed));
  }

  auto parse_flow = [&](int base) -> std::optional<FlowSpec> {
    if (base + 1 >= argc) return std::nullopt;
    const auto src = find_ad_by_name(topo, argv[base]);
    const auto dst = find_ad_by_name(topo, argv[base + 1]);
    if (!src || !dst) {
      std::fprintf(stderr, "unknown AD name\n");
      return std::nullopt;
    }
    FlowSpec flow{*src, *dst};
    if (base + 2 < argc) {
      const auto qos = parse_qos(argv[base + 2]);
      if (!qos) {
        std::fprintf(stderr, "unknown qos\n");
        return std::nullopt;
      }
      flow.qos = *qos;
    }
    if (base + 3 < argc) {
      const auto uci = parse_uci(argv[base + 3]);
      if (!uci) {
        std::fprintf(stderr, "unknown uci\n");
        return std::nullopt;
      }
      flow.uci = *uci;
    }
    if (base + 4 < argc) {
      flow.hour = static_cast<std::uint8_t>(std::atoi(argv[base + 4]) % 24);
    }
    return flow;
  };

  if (command == "census") {
    std::printf("%zu ADs (%zu backbone, %zu regional, %zu metro, %zu campus)\n",
                topo.ad_count(), topo.count_ads(AdClass::kBackbone),
                topo.count_ads(AdClass::kRegional),
                topo.count_ads(AdClass::kMetro),
                topo.count_ads(AdClass::kCampus));
    std::printf("%zu links (%zu hierarchical, %zu lateral, %zu bypass)\n",
                topo.link_count(),
                topo.count_links(LinkClass::kHierarchical),
                topo.count_links(LinkClass::kLateral),
                topo.count_links(LinkClass::kBypass));
    std::printf("connected=%s cyclic=%s policy terms=%zu\n",
                is_connected(topo) ? "yes" : "no",
                has_cycle(topo) ? "yes" : "no", policies.total_terms());
    return 0;
  }

  if (command == "dot") {
    if (i >= argc) return usage(argv[0]);
    std::ofstream out(argv[i]);
    out << to_dot(topo);
    std::printf("wrote %s\n", argv[i]);
    return 0;
  }

  if (command == "oracle") {
    const auto flow = parse_flow(i);
    if (!flow) return usage(argv[0]);
    const Oracle oracle(topo, policies);
    const SynthesisResult best = oracle.best_route(*flow);
    if (!best.found()) {
      std::printf("no legal route (%s)\n",
                  best.outcome == SynthesisOutcome::kBudget ? "budget"
                                                            : "exhausted");
      return 3;
    }
    std::printf("cost=%llu expansions=%llu\n",
                static_cast<unsigned long long>(best.cost),
                static_cast<unsigned long long>(best.expansions));
    print_path(topo, best.path);
    return 0;
  }

  auto arch = make_arch(arch_name);
  if (!arch) {
    std::fprintf(stderr, "unknown architecture '%s'\n", arch_name.c_str());
    return 1;
  }
  if (!arch->applicable(topo)) {
    std::fprintf(stderr, "%s is not applicable to this topology\n",
                 arch_name.c_str());
    return 1;
  }

  if (command == "route") {
    const auto flow = parse_flow(i);
    if (!flow) return usage(argv[0]);
    arch->build(topo, policies);
    const RouteTrace trace = arch->trace(*flow);
    if (trace.looped) {
      std::printf("forwarding LOOPED\n");
      return 3;
    }
    if (!trace.path) {
      std::printf("no route\n");
      return 3;
    }
    const Oracle oracle(topo, policies);
    std::printf("legal=%s\n",
                oracle.is_legal(*flow, *trace.path) ? "yes" : "NO");
    print_path(topo, *trace.path);
    return 0;
  }

  if (command == "evaluate") {
    std::size_t flow_count = 64;
    if (i < argc) flow_count = static_cast<std::size_t>(std::atoi(argv[i]));
    Prng prng(1);
    const auto flows = sample_flows(topo, flow_count, prng);
    const ArchEvaluation eval =
        evaluate_architecture(*arch, topo, policies, flows);
    std::printf(
        "%s (%s)\n  flows=%zu oracle-routable=%zu found=%zu legal=%zu "
        "illegal=%zu looped=%zu missed=%zu availability=%.3f\n"
        "  convergence: %llu msgs, %.1f KB, t=%.1f ms; state=%zu "
        "computations=%llu\n",
        eval.arch.c_str(), eval.design_point.c_str(), eval.flows,
        eval.oracle_routes, eval.found, eval.legal, eval.illegal,
        eval.looped, eval.missed, eval.availability(),
        static_cast<unsigned long long>(eval.convergence.messages),
        static_cast<double>(eval.convergence.bytes) / 1024.0,
        eval.convergence.time_ms, eval.state,
        static_cast<unsigned long long>(eval.computations));
    return 0;
  }

  return usage(argv[0]);
}
