#!/usr/bin/env python3
"""Gate for the sharded-parallel engine bench (BENCH_parallel.json).

Checks one bench_parallel/v1 file (fresh or checked-in) for the PR's
acceptance criteria, per design point:

  * equivalence is absolute: every (arch, threads) cell must have
    fingerprint_match and events_match true -- a parallel run that
    drifts from the sequential transcript fails the gate outright;
  * available parallelism: critical_path_speedup >= --min-speedup
    (default 3.0). This metric is deterministic -- (parallel + control
    events) / (per-window busiest shard + control events) -- so it
    gates identically on every host;
  * measured wall speedup at the highest thread count >= --min-speedup
    is gated ONLY when the recorded host_cpus covers that thread count.
    On smaller hosts (including single-core CI runners) the wall
    numbers are reported but informational: threads cannot beat the
    sequential run without cores to run on.

Usage:
  tools/check_bench_parallel.py --current BENCH_parallel.json \
      [--min-speedup 3.0]

Exit status: 0 = pass, 1 = violation, 2 = bad input.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench_parallel: cannot read {path}: {e}",
              file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "bench_parallel/v1" or "runs" not in doc:
        print(f"check_bench_parallel: {path} is not a bench_parallel/v1 file",
              file=sys.stderr)
        sys.exit(2)
    return doc


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--current", required=True,
                    help="BENCH_parallel.json to validate")
    ap.add_argument("--min-speedup", type=float, default=3.0,
                    help="floor for critical-path (and, when the host "
                         "has the cores, wall) speedup (default 3.0)")
    args = ap.parse_args()

    doc = load(args.current)
    host_cpus = int(doc.get("host_cpus", 0))
    failures = []

    if not doc["runs"]:
        print("check_bench_parallel: no runs", file=sys.stderr)
        sys.exit(2)

    for run in doc["runs"]:
        arch = run["arch"]
        cells = run.get("threads", [])
        if not cells:
            failures.append(f"{arch}: no thread cells")
            continue

        for cell in cells:
            t = cell["threads"]
            if not cell.get("fingerprint_match"):
                failures.append(
                    f"{arch} threads={t}: fingerprint diverged from the "
                    f"sequential run")
            if not cell.get("events_match"):
                failures.append(
                    f"{arch} threads={t}: event count diverged from the "
                    f"sequential run")

        cp = float(run.get("critical_path_speedup", 0.0))
        if cp < args.min_speedup:
            failures.append(
                f"{arch}: critical-path speedup {cp:.2f}x < "
                f"{args.min_speedup:.2f}x")

        top = max(cells, key=lambda c: c["threads"])
        wall = float(top.get("wall_speedup", 0.0))
        gated = host_cpus >= top["threads"]
        verdict = ""
        if gated and wall < args.min_speedup:
            failures.append(
                f"{arch}: wall speedup {wall:.2f}x at {top['threads']} "
                f"threads < {args.min_speedup:.2f}x (host_cpus={host_cpus})")
            verdict = "  <-- FAIL"
        wall_note = "gated" if gated else (
            f"informational: host_cpus={host_cpus} < {top['threads']}")
        print(f"  {arch:8s} critical-path={cp:5.2f}x "
              f"wall@{top['threads']}={wall:5.2f}x ({wall_note}){verdict}")

    if failures:
        print("check_bench_parallel: FAIL", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print(f"check_bench_parallel: OK "
          f"(min speedup {args.min_speedup:.2f}x, host_cpus={host_cpus})")


if __name__ == "__main__":
    main()
