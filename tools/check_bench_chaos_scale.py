#!/usr/bin/env python3
"""Regression gate for the bench_chaos_scale baseline.

Compares a fresh BENCH_chaos_scale.json ("runs" rows,
bench_chaos_scale/v1 schema) against the checked-in baseline, keyed by
(arch, storm, damping). For every cell present in BOTH files:

  * persistent invariant violations must equal the baseline (the
    checked-in baseline is all-zero, so any new persistent loop / black
    hole / stale route is an error);
  * the run must have reconverged (reconverge_ms >= 0);
  * reconverge_ms must not regress by more than the threshold
    (default 20%) over the baseline cell;
  * the storm must actually have been injected (storm_transitions > 0).

Cells only present on one side are reported but never fail the gate, so
CI can run a reduced --ads sweep against the full checked-in baseline
(absolute times differ across AD counts, so cells are only compared
when both sides ran the same grid -- the 'ads' field must match too).

The damping A/B is gated within the CURRENT file alone: for every
damped flap-storm row with a matching undamped row, the update-churn
drop must be at least --min-churn-drop (default 5x).

Usage:
  tools/check_bench_chaos_scale.py --baseline BENCH_chaos_scale.json \
      --current build/BENCH_chaos_scale.json [--threshold 0.20] \
      [--min-churn-drop 5.0]

Exit status: 0 = within threshold, 1 = regression, 2 = bad input.
"""

import argparse
import json
import sys


def load_runs(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench_chaos_scale: cannot read {path}: {e}",
              file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "bench_chaos_scale/v1" or "runs" not in doc:
        print(f"check_bench_chaos_scale: {path} is not a "
              f"bench_chaos_scale/v1 file", file=sys.stderr)
        sys.exit(2)
    return {(r["arch"], r["storm"], r["damping"], r["ads"]): r
            for r in doc["runs"]}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", required=True,
                    help="checked-in BENCH_chaos_scale.json")
    ap.add_argument("--current", required=True,
                    help="freshly produced BENCH_chaos_scale.json")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="max fractional reconverge_ms regression "
                         "(default 0.20)")
    ap.add_argument("--min-churn-drop", type=float, default=5.0,
                    help="min damped/undamped update-churn ratio for the "
                         "DV flap-storm A/B (default 5.0)")
    args = ap.parse_args()

    baseline = load_runs(args.baseline)
    current = load_runs(args.current)

    failures = []

    # Absolute gates on every current cell (no baseline needed).
    for key in sorted(current):
        arch, storm, damping, ads = key
        cur = current[key]
        label = f"{arch} {storm} damping={damping} ads={ads}"
        if cur["persistent_violations"] != 0:
            failures.append(
                f"{label}: {cur['persistent_violations']} persistent "
                f"invariant violation(s)")
        if cur["reconverge_ms"] < 0:
            failures.append(f"{label}: never reconverged")
        if cur["storm_transitions"] <= 0:
            failures.append(f"{label}: storm injected no transitions")

    # Damping A/B within the current file.
    for key in sorted(current):
        arch, storm, damping, ads = key
        if not damping or storm != "flap-storm":
            continue
        base_key = (arch, storm, False, ads)
        if base_key not in current:
            continue
        undamped = current[base_key]["storm_msgs"]
        damped = current[key]["storm_msgs"]
        ratio = undamped / damped if damped else float("inf")
        status = "ok"
        if ratio < args.min_churn_drop:
            status = "CHURN REGRESSION"
            failures.append(
                f"{arch} flap-storm ads={ads}: damping cut churn only "
                f"{ratio:.2f}x (< {args.min_churn_drop:.1f}x): "
                f"{undamped} -> {damped} updates")
        print(f"  {arch:<6} flap-storm ads={ads:<6} damping churn drop "
              f"{ratio:6.2f}x [{status}]")

    # Relative gates against the baseline.
    shared = sorted(set(baseline) & set(current))
    if not shared:
        print("check_bench_chaos_scale: no (arch, storm, damping, ads) "
              "cells in common with the baseline; skipping relative gates")
    for key in sorted(set(baseline) ^ set(current)):
        side = "baseline" if key in baseline else "current"
        print(f"  note: {key[0]} {key[1]} damping={key[2]} ads={key[3]} "
              f"only in {side}; skipped")
    for key in shared:
        arch, storm, damping, ads = key
        base = baseline[key]
        cur = current[key]
        label = f"{arch} {storm} damping={damping} ads={ads}"
        status = "ok"
        if cur["persistent_violations"] != base["persistent_violations"]:
            status = "VIOLATIONS"
            failures.append(
                f"{label}: {cur['persistent_violations']} persistent "
                f"violations vs baseline {base['persistent_violations']}")
        if base["reconverge_ms"] > 0 and cur["reconverge_ms"] > \
                base["reconverge_ms"] * (1.0 + args.threshold):
            status = "RECONV REGRESSION"
            failures.append(
                f"{label}: reconverge {cur['reconverge_ms']:.0f} ms vs "
                f"baseline {base['reconverge_ms']:.0f} ms")
        print(f"  {label:<48} reconv {cur['reconverge_ms']:8.1f} ms "
              f"(baseline {base['reconverge_ms']:8.1f}) [{status}]")

    if failures:
        print(f"check_bench_chaos_scale: {len(failures)} failure(s):",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print(f"check_bench_chaos_scale: {len(current)} current cell(s) clean, "
          f"{len(shared)} compared against baseline")


if __name__ == "__main__":
    main()
