#!/usr/bin/env python3
"""Regression gate for the bench_restart baseline.

Compares a fresh BENCH_restart.json ("runs" rows, bench_restart/v1
schema) against the checked-in baseline, keyed by (arch, mode, ads).
The three modes per arch are the restart-storm A/B:

  cold      -- no graceful restart, no overload protection (baseline)
  gr        -- GR grace > outage plus bounded prioritized ingress queues
  gr-flush  -- GR grace < outage: every grace window expires and the
               stale state must be flushed

Absolute gates on every cell in the CURRENT file (no baseline needed):

  * the storm must actually have crashed nodes (node_crashes > 0) and
    the run must have reconverged (reconverge_ms >= 0);
  * "gr" cells: forwarding continuity through the storm must be at
    least --min-continuity (default 99.0%), every grace window must
    have ended in a recovery handover (gr_recoveries > 0), no
    persistent invariant violation may survive, and the bounded
    ingress queues must be respected (peak_queue_depth <=
    --max-peak-queue, default 64 = the configured limit);
  * "gr-flush" cells: every grace window must have expired into a
    flush (gr_flushes > 0) and no persistent stale-route violation may
    survive the flush;
  * the A/B itself: per arch, the "gr" cell must beat the "cold" cell's
    continuity by at least --min-continuity-gain points (default 10.0).

Cold cells are gated RELATIVELY, like check_bench_chaos_scale: for
cells present in both files with matching 'ads', persistent violations
must equal the baseline and reconverge_ms must not regress by more
than --threshold (default 20%). Cells only present on one side are
reported but never fail the gate, so CI can run a reduced --ads sweep
against the full checked-in baseline.

Usage:
  tools/check_bench_restart.py --baseline BENCH_restart.json \
      --current build/BENCH_restart.json [--min-continuity 99.0] \
      [--min-continuity-gain 10.0] [--max-peak-queue 64] \
      [--threshold 0.20]

Exit status: 0 = clean, 1 = regression, 2 = bad input.
"""

import argparse
import json
import sys


def load_runs(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench_restart: cannot read {path}: {e}",
              file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "bench_restart/v1" or "runs" not in doc:
        print(f"check_bench_restart: {path} is not a bench_restart/v1 file",
              file=sys.stderr)
        sys.exit(2)
    return {(r["arch"], r["mode"], r["ads"]): r for r in doc["runs"]}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", required=True,
                    help="checked-in BENCH_restart.json")
    ap.add_argument("--current", required=True,
                    help="freshly produced BENCH_restart.json")
    ap.add_argument("--min-continuity", type=float, default=99.0,
                    help="min forwarding continuity %% for 'gr' cells "
                         "(default 99.0)")
    ap.add_argument("--min-continuity-gain", type=float, default=10.0,
                    help="min continuity points 'gr' must gain over 'cold' "
                         "per arch (default 10.0)")
    ap.add_argument("--max-peak-queue", type=float, default=64,
                    help="max ingress-queue peak depth for protected cells "
                         "(default 64 = the configured queue limit)")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="max fractional reconverge_ms regression vs the "
                         "baseline (default 0.20)")
    args = ap.parse_args()

    baseline = load_runs(args.baseline)
    current = load_runs(args.current)

    failures = []

    # Absolute gates on every current cell.
    for key in sorted(current):
        arch, mode, ads = key
        cur = current[key]
        label = f"{arch} {mode} ads={ads}"
        status = "ok"
        if cur["node_crashes"] <= 0:
            status = "NO STORM"
            failures.append(f"{label}: storm crashed no nodes")
        if cur["reconverge_ms"] < 0:
            status = "NO RECONV"
            failures.append(f"{label}: never reconverged")
        if mode == "gr":
            if cur["continuity_pct"] < args.min_continuity:
                status = "CONTINUITY"
                failures.append(
                    f"{label}: continuity {cur['continuity_pct']:.2f}% "
                    f"< {args.min_continuity:.2f}% "
                    f"({cur['continuity_ok']}/{cur['continuity_probes']})")
            if cur["gr_recoveries"] <= 0:
                status = "NO RECOVERY"
                failures.append(
                    f"{label}: no grace window ended in a recovery")
            if cur["persistent_violations"] != 0:
                status = "VIOLATIONS"
                failures.append(
                    f"{label}: {cur['persistent_violations']} persistent "
                    f"invariant violation(s)")
        if mode == "gr-flush":
            if cur["gr_flushes"] <= 0:
                status = "NO FLUSH"
                failures.append(
                    f"{label}: no grace window expired into a flush")
            if cur["persistent_violations"] != 0:
                status = "STALE ROUTES"
                failures.append(
                    f"{label}: {cur['persistent_violations']} persistent "
                    f"violation(s) survived the stale flush")
        if mode in ("gr", "gr-flush") and \
                cur["peak_queue_depth"] > args.max_peak_queue:
            status = "QUEUE BOUND"
            failures.append(
                f"{label}: peak queue depth {cur['peak_queue_depth']} "
                f"> {args.max_peak_queue:.0f}")
        print(f"  {label:<28} continuity {cur['continuity_pct']:7.2f}% "
              f"recoveries={cur['gr_recoveries']:<3} "
              f"flushes={cur['gr_flushes']:<3} "
              f"peak_q={cur['peak_queue_depth']:<4} "
              f"drops={cur['dropped_keepalive'] + cur['dropped_withdrawal'] + cur['dropped_update'] + cur['dropped_refresh']:<6} [{status}]")

    # The A/B within the current file: GR must move the continuity
    # needle over the cold baseline for the same arch and size.
    for key in sorted(current):
        arch, mode, ads = key
        if mode != "gr":
            continue
        cold_key = (arch, "cold", ads)
        if cold_key not in current:
            continue
        gain = current[key]["continuity_pct"] - \
            current[cold_key]["continuity_pct"]
        status = "ok"
        if gain < args.min_continuity_gain:
            status = "NO GAIN"
            failures.append(
                f"{arch} ads={ads}: gr gained only {gain:.2f} continuity "
                f"points over cold (< {args.min_continuity_gain:.1f})")
        print(f"  {arch:<6} ads={ads:<6} gr-vs-cold continuity gain "
              f"{gain:6.2f} pts [{status}]")

    # Relative gates against the baseline.
    shared = sorted(set(baseline) & set(current))
    if not shared:
        print("check_bench_restart: no (arch, mode, ads) cells in common "
              "with the baseline; skipping relative gates")
    for key in sorted(set(baseline) ^ set(current)):
        side = "baseline" if key in baseline else "current"
        print(f"  note: {key[0]} {key[1]} ads={key[2]} only in {side}; "
              f"skipped")
    for key in shared:
        arch, mode, ads = key
        base = baseline[key]
        cur = current[key]
        label = f"{arch} {mode} ads={ads}"
        status = "ok"
        if cur["persistent_violations"] != base["persistent_violations"]:
            status = "VIOLATIONS"
            failures.append(
                f"{label}: {cur['persistent_violations']} persistent "
                f"violations vs baseline {base['persistent_violations']}")
        if base["reconverge_ms"] > 0 and cur["reconverge_ms"] > \
                base["reconverge_ms"] * (1.0 + args.threshold):
            status = "RECONV REGRESSION"
            failures.append(
                f"{label}: reconverge {cur['reconverge_ms']:.0f} ms vs "
                f"baseline {base['reconverge_ms']:.0f} ms")
        print(f"  {label:<28} reconv {cur['reconverge_ms']:8.1f} ms "
              f"(baseline {base['reconverge_ms']:8.1f}) [{status}]")

    if failures:
        print(f"check_bench_restart: {len(failures)} failure(s):",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print(f"check_bench_restart: {len(current)} current cell(s) clean, "
          f"{len(shared)} compared against baseline")


if __name__ == "__main__":
    main()
