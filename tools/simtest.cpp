// simtest -- deterministic simulation-testing driver.
//
// Generates seeded random worlds (topology + policies + flows + scripted
// churn/crash/Byzantine schedule), runs each on all four design points
// (ECMA, IDRP, LS-HbH, ORWG), and classifies every flow's outcome against
// the ground-truth oracle into agreements, paper-sanctioned divergences
// and genuine violations (illegal path, loop, stale route, black hole
// with a legal route, nondeterminism). Exit 1 iff any genuine violation
// was found.
//
// Usage: simtest [--seeds N] [--seed S] [--shrink] [--json PATH]
//                [--replay FILE] [--out DIR] [--inject-bug]
//                [--min-ads N] [--max-ads N] [--flows N] [--horizon-ms T]
//                [--no-determinism] [--shards N] [--threads N]
//   --seeds N      run seeds S..S+N-1 (default S=1, N=8)
//   --shrink       delta-debug every failing case to a minimal reproducer
//   --out DIR      write (shrunk) reproducers to DIR/<case>.simcase
//   --replay FILE  load one reproducer and run it instead of generating
//   --inject-bug   arm the known-bad LS-HbH probe defect (tests the tester)
//   --json PATH    machine-readable per-seed report
//   --shards N     run the sharded-parallel engine with N shards (1 =
//                  sequential reference; results are identical either way)
//   --threads N    worker threads for the shards (0 = inline windows)
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "simtest/differential.hpp"
#include "simtest/scenario_generator.hpp"
#include "simtest/shrink.hpp"
#include "simtest/simcase.hpp"

namespace {

using namespace idr;

struct ToolOptions {
  std::uint64_t seed = 1;
  int seeds = 8;
  bool shrink = false;
  bool inject_bug = false;
  bool determinism = true;
  std::uint32_t shards = 1;
  unsigned threads = 0;
  std::string json_path;
  std::string out_dir;
  std::string replay_path;
  std::string write_dir;  // dump every case before running (corpus refresh)
  SimCaseParams gen;
};

std::string read_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) {
    std::fprintf(stderr, "simtest: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::string text;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) {
    text.append(buf, got);
  }
  std::fclose(f);
  return text;
}

void write_file(const std::string& path, const std::string& text) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) {
    std::fprintf(stderr, "simtest: cannot write %s\n", path.c_str());
    return;
  }
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "simtest: wrote %s\n", path.c_str());
}

void print_result(const SimCase& c, const DiffResult& result) {
  std::printf("%-12s ads=%-3zu links=%-3zu flows=%-3zu events=%zu\n",
              c.name.c_str(), c.topo.ad_count(), c.topo.link_count(),
              c.flows.size(), c.events.size());
  for (const ArchDiffResult& a : result.archs) {
    std::printf(
        "  %-7s legal=%-3zu no-route=%-3zu expected=%-3zu unknown=%-3zu "
        "skipped=%-3zu violations=%zu fp=%016" PRIx64 "\n",
        a.arch.c_str(), a.delivered_legal, a.agreed_no_route,
        a.expected_divergences, a.unknown, a.flows_skipped,
        a.violations.size(), a.fingerprint);
    for (const DiffFinding& f : a.violations) {
      std::printf("    VIOLATION %s: %s", f.signature().c_str(),
                  f.detail.c_str());
      if (f.flow.src.valid() && f.flow.dst.valid() &&
          f.flow.src.v < c.topo.ad_count() && f.flow.dst.v < c.topo.ad_count()) {
        std::printf(" [%s -> %s]", c.topo.ad(f.flow.src).name.c_str(),
                    c.topo.ad(f.flow.dst).name.c_str());
      }
      std::printf("\n");
    }
  }
}

void json_report(std::FILE* f, const SimCase& c, const DiffResult& result,
                 bool last) {
  std::fprintf(f, "    {\"case\": \"%s\", \"seed\": %" PRIu64
                  ", \"ads\": %zu, \"archs\": [\n",
               c.name.c_str(), c.seed, c.topo.ad_count());
  for (std::size_t i = 0; i < result.archs.size(); ++i) {
    const ArchDiffResult& a = result.archs[i];
    std::fprintf(f,
                 "      {\"arch\": \"%s\", \"delivered_legal\": %zu, "
                 "\"agreed_no_route\": %zu, \"expected\": %zu, "
                 "\"unknown\": %zu, \"skipped\": %zu, \"violations\": %zu, "
                 "\"fingerprint\": \"%016" PRIx64 "\"}%s\n",
                 a.arch.c_str(), a.delivered_legal, a.agreed_no_route,
                 a.expected_divergences, a.unknown, a.flows_skipped,
                 a.violations.size(), a.fingerprint,
                 i + 1 < result.archs.size() ? "," : "");
  }
  std::fprintf(f, "    ]}%s\n", last ? "" : ",");
}

}  // namespace

int main(int argc, char** argv) {
  ToolOptions opts;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "simtest: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") opts.seed = std::strtoull(next(), nullptr, 10);
    else if (arg == "--seeds") opts.seeds = std::atoi(next());
    else if (arg == "--shrink") opts.shrink = true;
    else if (arg == "--inject-bug") opts.inject_bug = true;
    else if (arg == "--no-determinism") opts.determinism = false;
    else if (arg == "--shards")
      opts.shards = static_cast<std::uint32_t>(std::atoi(next()));
    else if (arg == "--threads")
      opts.threads = static_cast<unsigned>(std::atoi(next()));
    else if (arg == "--json") opts.json_path = next();
    else if (arg == "--out") opts.out_dir = next();
    else if (arg == "--replay") opts.replay_path = next();
    else if (arg == "--write-cases") opts.write_dir = next();
    else if (arg == "--min-ads")
      opts.gen.min_ads = static_cast<std::uint32_t>(std::atoi(next()));
    else if (arg == "--max-ads")
      opts.gen.max_ads = static_cast<std::uint32_t>(std::atoi(next()));
    else if (arg == "--flows")
      opts.gen.flow_count = static_cast<std::size_t>(std::atoi(next()));
    else if (arg == "--horizon-ms") opts.gen.horizon_ms = std::atof(next());
    else {
      std::fprintf(stderr, "simtest: unknown option %s\n", arg.c_str());
      return 2;
    }
  }

  DiffOptions diff;
  diff.check_determinism = opts.determinism;
  diff.inject_probe_bug = opts.inject_bug;
  diff.shards = opts.shards;
  diff.threads = opts.threads;

  std::vector<SimCase> cases;
  if (!opts.replay_path.empty()) {
    SimCaseParseResult parsed = parse_sim_case(read_file(opts.replay_path));
    if (const auto* e = std::get_if<SimCaseParseError>(&parsed)) {
      std::fprintf(stderr, "simtest: %s: %s\n", opts.replay_path.c_str(),
                   e->describe().c_str());
      return 2;
    }
    cases.push_back(std::move(std::get<SimCase>(parsed)));
  } else {
    for (int k = 0; k < opts.seeds; ++k) {
      SimCaseParams params = opts.gen;
      params.seed = opts.seed + static_cast<std::uint64_t>(k);
      cases.push_back(generate_sim_case(params));
    }
  }

  std::FILE* json = nullptr;
  if (!opts.json_path.empty()) {
    json = std::fopen(opts.json_path.c_str(), "w");
    if (!json) {
      std::fprintf(stderr, "simtest: cannot write %s\n",
                   opts.json_path.c_str());
      return 2;
    }
    std::fprintf(json, "{\n  \"cases\": [\n");
  }

  std::size_t failing_cases = 0;
  std::size_t total_violations = 0;
  for (std::size_t i = 0; i < cases.size(); ++i) {
    const SimCase& c = cases[i];
    if (!opts.write_dir.empty()) {
      write_file(opts.write_dir + "/" + c.name + ".simcase",
                 format_sim_case(c));
    }
    const DiffResult result = run_differential(c, diff);
    print_result(c, result);
    if (json) json_report(json, c, result, i + 1 == cases.size());
    if (result.clean()) continue;
    ++failing_cases;
    total_violations += result.violation_count();

    SimCase reproducer = c;
    if (opts.shrink) {
      const FailurePredicate predicate =
          signature_predicate(result.signatures(), diff);
      const ShrinkResult shrunk = shrink_sim_case(c, predicate);
      reproducer = shrunk.minimized;
      reproducer.name = c.name + "-min";
      std::printf(
          "  shrunk %zu->%zu ads, %zu->%zu flows, %zu->%zu events "
          "(%zu checks, %zu rounds)\n",
          c.topo.ad_count(), reproducer.topo.ad_count(), c.flows.size(),
          reproducer.flows.size(), c.events.size(),
          reproducer.events.size(), shrunk.checks, shrunk.rounds);
    }
    if (!opts.out_dir.empty()) {
      write_file(opts.out_dir + "/" + reproducer.name + ".simcase",
                 format_sim_case(reproducer));
    }
  }

  if (json) {
    std::fprintf(json, "  ],\n  \"failing_cases\": %zu\n}\n", failing_cases);
    std::fclose(json);
  }
  std::printf("simtest: %zu/%zu cases clean, %zu genuine violations\n",
              cases.size() - failing_cases, cases.size(), total_violations);
  return failing_cases == 0 ? 0 : 1;
}
