#!/usr/bin/env python3
"""Regression gate for the bench_scale baseline.

Compares a fresh BENCH_scale.json ("runs" rows, bench_scale/v1 schema)
against the checked-in baseline: for every (arch, ads) cell present in
BOTH files, events/sec must not regress by more than the threshold
(default 20%). Cells only present on one side are reported but never
fail the gate, so CI can run a --max-ads 1000 subset against the full
checked-in sweep. Correctness is also gated: a current run that fails to
deliver every probe its baseline cell delivered is an error regardless
of throughput.

Usage:
  tools/check_bench_scale.py --baseline BENCH_scale.json \
      --current build/BENCH_scale.json [--threshold 0.20]

Exit status: 0 = within threshold, 1 = regression, 2 = bad input.
"""

import argparse
import json
import sys


def load_runs(path):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"check_bench_scale: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "bench_scale/v1" or "runs" not in doc:
        print(f"check_bench_scale: {path} is not a bench_scale/v1 file",
              file=sys.stderr)
        sys.exit(2)
    return {(r["arch"], r["ads"]): r for r in doc["runs"]}


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--baseline", required=True,
                    help="checked-in BENCH_scale.json")
    ap.add_argument("--current", required=True,
                    help="freshly produced BENCH_scale.json")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="max fractional events/sec regression (default 0.20)")
    args = ap.parse_args()

    baseline = load_runs(args.baseline)
    current = load_runs(args.current)

    shared = sorted(set(baseline) & set(current))
    if not shared:
        print("check_bench_scale: no (arch, ads) cells in common",
              file=sys.stderr)
        sys.exit(2)
    for key in sorted(set(baseline) ^ set(current)):
        side = "baseline" if key in baseline else "current"
        print(f"  note: {key[0]} ads={key[1]} only in {side}; skipped")

    failures = []
    for arch, ads in shared:
        base = baseline[(arch, ads)]
        cur = current[(arch, ads)]
        ratio = cur["events_per_sec"] / base["events_per_sec"]
        status = "ok"
        if ratio < 1.0 - args.threshold:
            status = "REGRESSION"
            failures.append(
                f"{arch} ads={ads}: {cur['events_per_sec']:.0f} ev/s vs "
                f"baseline {base['events_per_sec']:.0f} ({ratio:.2%})")
        if cur["probe_delivered"] < base["probe_delivered"]:
            status = "DELIVERY LOSS"
            failures.append(
                f"{arch} ads={ads}: delivered {cur['probe_delivered']}/"
                f"{cur['probes']} probes vs baseline "
                f"{base['probe_delivered']}/{base['probes']}")
        print(f"  {arch:<6} ads={ads:<7} events/sec {ratio:7.2%} of "
              f"baseline, probes {cur['probe_delivered']}/{cur['probes']} "
              f"[{status}]")

    if failures:
        print(f"check_bench_scale: {len(failures)} failure(s):",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        sys.exit(1)
    print(f"check_bench_scale: {len(shared)} cell(s) within "
          f"{args.threshold:.0%} of baseline")


if __name__ == "__main__":
    main()
