// Transport layer (Go-Back-N over Policy Routes) and the PR lifecycle
// features it depends on: setup retransmission, data-plane errors and
// teardown.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "policy/generator.hpp"
#include "proto/orwg/orwg_node.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "topology/figure1.hpp"
#include "transport/gbn.hpp"

namespace idr {
namespace {

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

class TransportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fig_ = build_figure1();
    policies_ = make_open_policies(fig_.topo);
    net_ = std::make_unique<Network>(engine_, fig_.topo);
    for (const Ad& ad : fig_.topo.ads()) {
      auto node = std::make_unique<OrwgNode>(&policies_);
      nodes_.push_back(node.get());
      net_->attach(ad.id, std::move(node));
    }
    net_->start_all();
    engine_.run();  // control plane converges loss-free
  }

  Figure1 fig_;
  PolicySet policies_;
  Engine engine_;
  std::unique_ptr<Network> net_;
  std::vector<OrwgNode*> nodes_;
};

TEST_F(TransportTest, InOrderDeliveryOnCleanNetwork) {
  transport::TransportHost sender(*nodes_[fig_.campus[0].v], engine_);
  transport::TransportHost receiver(*nodes_[fig_.campus[6].v], engine_);

  std::vector<std::string> delivered;
  receiver.connect(fig_.campus[0])
      .set_message_handler([&](std::vector<std::uint8_t> msg) {
        delivered.emplace_back(msg.begin(), msg.end());
      });

  transport::Connection& conn = sender.connect(fig_.campus[6]);
  for (int i = 0; i < 20; ++i) {
    conn.send(bytes_of("message-" + std::to_string(i)));
  }
  engine_.run();
  ASSERT_EQ(delivered.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(delivered[static_cast<std::size_t>(i)],
              "message-" + std::to_string(i));
  }
  EXPECT_TRUE(conn.idle());
  EXPECT_EQ(conn.retransmissions(), 0u);
}

TEST_F(TransportTest, RecoversFromHeavyLoss) {
  transport::TransportHost sender(*nodes_[fig_.campus[0].v], engine_);
  transport::TransportHost receiver(*nodes_[fig_.campus[6].v], engine_);

  std::vector<std::string> delivered;
  receiver.connect(fig_.campus[0])
      .set_message_handler([&](std::vector<std::uint8_t> msg) {
        delivered.emplace_back(msg.begin(), msg.end());
      });

  // Establish both PRs loss-free, then turn on 20% loss.
  transport::Connection& conn = sender.connect(fig_.campus[6]);
  conn.send(bytes_of("warmup"));
  engine_.run();
  ASSERT_EQ(delivered.size(), 1u);

  net_->set_loss(0.20, /*seed=*/99);
  for (int i = 0; i < 50; ++i) {
    conn.send(bytes_of("m" + std::to_string(i)));
  }
  engine_.run();
  net_->set_loss(0.0, 0);

  ASSERT_EQ(delivered.size(), 51u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(delivered[static_cast<std::size_t>(i) + 1],
              "m" + std::to_string(i));
  }
  EXPECT_FALSE(conn.failed());
  EXPECT_GT(conn.retransmissions(), 0u);
  EXPECT_GT(net_->losses(), 0u);
}

TEST_F(TransportTest, WindowOneIsStopAndWait) {
  transport::GbnConfig config;
  config.window = 1;
  transport::TransportHost sender(*nodes_[fig_.campus[0].v], engine_,
                                  config);
  transport::TransportHost receiver(*nodes_[fig_.campus[6].v], engine_,
                                    config);
  std::vector<std::string> delivered;
  receiver.connect(fig_.campus[0])
      .set_message_handler([&](std::vector<std::uint8_t> msg) {
        delivered.emplace_back(msg.begin(), msg.end());
      });
  transport::Connection& conn = sender.connect(fig_.campus[6]);
  for (int i = 0; i < 8; ++i) conn.send(bytes_of(std::to_string(i)));
  engine_.run();
  ASSERT_EQ(delivered.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(delivered[static_cast<std::size_t>(i)], std::to_string(i));
  }
  EXPECT_TRUE(conn.idle());
}

TEST_F(TransportTest, BidirectionalConversation) {
  transport::TransportHost a(*nodes_[fig_.campus[1].v], engine_);
  transport::TransportHost b(*nodes_[fig_.campus[5].v], engine_);

  std::vector<std::string> at_b;
  int replies_pending = 0;
  b.connect(fig_.campus[1])
      .set_message_handler([&](std::vector<std::uint8_t> msg) {
        at_b.emplace_back(msg.begin(), msg.end());
        ++replies_pending;
      });
  std::vector<std::string> at_a;
  a.connect(fig_.campus[5])
      .set_message_handler([&](std::vector<std::uint8_t> msg) {
        at_a.emplace_back(msg.begin(), msg.end());
      });

  a.connect(fig_.campus[5]).send(bytes_of("ping"));
  engine_.run();
  ASSERT_EQ(at_b.size(), 1u);
  b.connect(fig_.campus[1]).send(bytes_of("pong"));
  engine_.run();
  ASSERT_EQ(at_a.size(), 1u);
  EXPECT_EQ(at_a[0], "pong");
}

TEST_F(TransportTest, SetupRetransmissionSurvivesLostSetup) {
  // Turn loss on BEFORE the PR exists: the setup packet itself may be
  // lost; the source must retry until the ack arrives.
  net_->set_loss(0.5, /*seed=*/7);
  FlowSpec flow{fig_.campus[0], fig_.campus[6]};
  OrwgNode* src = nodes_[flow.src.v];
  ASSERT_TRUE(src->send_flow(flow, 1));
  engine_.run();
  net_->set_loss(0.0, 0);
  // The PR eventually established (or timed out -- with 5 retries at 50%
  // loss over 5 hops establishment is not guaranteed, but the machinery
  // must have either delivered or counted a timeout; never hung).
  EXPECT_GE(src->setup_timeouts() + src->setup_latency_ms().count(), 1u);
}

TEST_F(TransportTest, MidFlowLinkFailureRepairsPr) {
  FlowSpec flow{fig_.campus[0], fig_.campus[6]};
  OrwgNode* src = nodes_[flow.src.v];
  OrwgNode* dst = nodes_[flow.dst.v];
  ASSERT_TRUE(src->send_flow(flow, 2));
  engine_.run();
  ASSERT_EQ(dst->delivered(), 2u);

  // Kill the inter-backbone link the PR rides on.
  net_->set_link_state(
      *fig_.topo.find_link(fig_.backbone_west, fig_.backbone_east), false);
  engine_.run();

  // The next packets hit the dead link; the PG reports the broken PR
  // back to the source, which resynthesizes over the lateral detour.
  ASSERT_TRUE(src->send_flow(flow, 3));
  engine_.run();
  EXPECT_GE(src->pr_errors(), 1u);
  ASSERT_TRUE(src->send_flow(flow, 3));
  engine_.run();
  EXPECT_GE(dst->delivered(), 5u);
  // The repaired PR avoids the dead link.
  const auto route = src->policy_route(flow);
  ASSERT_TRUE(route.has_value());
  for (std::size_t i = 0; i + 1 < route->size(); ++i) {
    EXPECT_FALSE((*route)[i] == fig_.backbone_west &&
                 (*route)[i + 1] == fig_.backbone_east);
  }
}

TEST_F(TransportTest, ErrorDrivenRepairIsAutomatic) {
  FlowSpec flow{fig_.campus[0], fig_.campus[6]};
  OrwgNode* src = nodes_[flow.src.v];
  ASSERT_TRUE(src->send_flow(flow, 1));
  engine_.run();

  net_->set_link_state(
      *fig_.topo.find_link(fig_.backbone_west, fig_.backbone_east), false);
  engine_.run();
  // One packet dies on the broken PR; the resulting error makes the
  // source resynthesize AND set up the replacement PR on its own.
  ASSERT_TRUE(src->send_flow(flow, 1));
  engine_.run();
  EXPECT_EQ(src->pr_errors(), 1u);
  EXPECT_EQ(src->pr_repairs(), 1u);
  // The repaired PR is immediately usable: the very next send delivers.
  const auto before = nodes_[flow.dst.v]->delivered();
  ASSERT_TRUE(src->send_flow(flow, 4));
  engine_.run();
  EXPECT_EQ(nodes_[flow.dst.v]->delivered(), before + 4);
}

TEST_F(TransportTest, TeardownClearsPathState) {
  FlowSpec flow{fig_.campus[0], fig_.campus[6]};
  OrwgNode* src = nodes_[flow.src.v];
  ASSERT_TRUE(src->send_flow(flow, 1));
  engine_.run();
  const auto route = src->policy_route(flow);
  ASSERT_TRUE(route.has_value());
  for (AdId ad : *route) {
    EXPECT_GE(nodes_[ad.v]->gateway().installed(), 1u);
  }
  src->teardown(flow);
  engine_.run();
  for (AdId ad : *route) {
    EXPECT_EQ(nodes_[ad.v]->gateway().installed(), 0u) <<
        fig_.topo.ad(ad).name;
  }
}

TEST_F(TransportTest, SenderGivesUpWhenPeerUnreachable) {
  transport::GbnConfig config;
  config.max_retransmit_rounds = 3;
  config.retransmit_timeout_ms = 100.0;
  transport::TransportHost sender(*nodes_[fig_.campus[0].v], engine_,
                                  config);
  transport::Connection& conn = sender.connect(fig_.campus[6]);
  conn.send(bytes_of("hello"));
  engine_.run();
  // Sever campus6 entirely, then keep talking.
  net_->set_link_state(
      *fig_.topo.find_link(fig_.regional[3], fig_.campus[6]), false);
  engine_.run();
  conn.send(bytes_of("into the void"));
  engine_.run();
  EXPECT_TRUE(conn.failed());
}

TEST_F(TransportTest, PeerCrashMidWindowFailsStreamAndNewGenerationResumes) {
  // The receiver's AD dies with unacked segments in the sender's window
  // and restarts cold (new node object, new generation). GBN receiver
  // state does not survive a restart, so the OLD stream must fail
  // cleanly at the sender (bounded give-up, no duplicate or reordered
  // delivery to the revived peer) and a NEW connection over the
  // reconverged control plane must work end to end.
  net_->set_node_factory(
      [this](AdId) { return std::make_unique<OrwgNode>(&policies_); });
  // Crash oracle on: neighbors observe the death, and the restart's
  // recovery signal triggers the LSDB resync the revived route server
  // needs before it can accept or synthesize anything.
  net_->set_crash_notifications(true);
  transport::GbnConfig config;
  config.max_retransmit_rounds = 4;
  config.retransmit_timeout_ms = 100.0;
  const AdId src_ad = fig_.campus[0];
  const AdId dst_ad = fig_.campus[6];

  transport::TransportHost sender(*nodes_[src_ad.v], engine_, config);
  auto receiver = std::make_unique<transport::TransportHost>(
      *nodes_[dst_ad.v], engine_, config);
  std::vector<std::string> delivered;
  receiver->connect(src_ad).set_message_handler(
      [&](std::vector<std::uint8_t> msg) {
        delivered.emplace_back(msg.begin(), msg.end());
      });
  transport::Connection& conn = sender.connect(dst_ad);
  conn.send(bytes_of("before-crash"));
  engine_.run();
  ASSERT_EQ(delivered.size(), 1u);

  // Crash the peer, then stuff the window: every new segment is unacked.
  const std::uint64_t old_generation = net_->generation(dst_ad);
  receiver.reset();  // host of the about-to-die node: out of scope first
  net_->crash(dst_ad);
  for (int i = 0; i < 6; ++i) conn.send(bytes_of("lost-" + std::to_string(i)));
  engine_.run();
  EXPECT_TRUE(conn.failed()) << "sender must give up, not spin forever";
  EXPECT_GT(conn.retransmissions(), 0u);

  // Cold restart: new generation, empty control plane; let it resync.
  net_->restart(dst_ad);
  EXPECT_GT(net_->generation(dst_ad), old_generation);
  engine_.run();

  // A fresh connection pair (new sender stream, new receiver state on
  // the restarted node) resumes service; the old stream stays dead.
  auto* revived = static_cast<OrwgNode*>(net_->node(dst_ad));
  ASSERT_NE(revived, nullptr);
  // The first post-restart round still rides the sender's stale PR; the
  // revived gateway has no state for that handle, reports the broken PR
  // back, and the source re-establishes -- then the receiver's ACKs need
  // their own reverse PR setup. That full chain (error unwind + two
  // setup exchanges) takes ~500ms of sim time, so the new stream gets a
  // retry budget that covers it; the OLD stream keeps the tight config
  // and stays failed.
  transport::GbnConfig resume_config = config;
  resume_config.max_retransmit_rounds = 12;
  transport::TransportHost sender2(*nodes_[src_ad.v], engine_, resume_config);
  transport::TransportHost receiver2(*revived, engine_, resume_config);
  std::vector<std::string> delivered2;
  receiver2.connect(src_ad).set_message_handler(
      [&](std::vector<std::uint8_t> msg) {
        delivered2.emplace_back(msg.begin(), msg.end());
      });
  transport::Connection& conn2 = sender2.connect(dst_ad);
  for (int i = 0; i < 5; ++i) conn2.send(bytes_of("m" + std::to_string(i)));
  engine_.run();
  ASSERT_EQ(delivered2.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(delivered2[static_cast<std::size_t>(i)],
              "m" + std::to_string(i));
  }
  EXPECT_TRUE(conn2.idle());
  EXPECT_FALSE(conn2.failed());
  // The recovery was ARQ-driven: the stale-PR rounds were lost (and
  // reported by the revived gateway), then retransmitted on a fresh PR.
  EXPECT_GT(conn2.retransmissions(), 0u);
  EXPECT_GT(revived->data_drops(), 0u)
      << "revived gateway never saw (and refused) the stale handle";
  EXPECT_TRUE(conn.failed());
  EXPECT_EQ(delivered.size(), 1u) << "old stream must not deliver again";
}

}  // namespace
}  // namespace idr
