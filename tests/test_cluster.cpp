#include <gtest/gtest.h>

#include "cluster/aggregate.hpp"
#include "cluster/clustering.hpp"
#include "cluster/hierarchical.hpp"
#include "core/oracle.hpp"
#include "core/scenario.hpp"
#include "policy/generator.hpp"
#include "topology/figure1.hpp"
#include "topology/generator.hpp"

namespace idr {
namespace {

class ClusterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fig_ = build_figure1();
    policies_ = make_open_policies(fig_.topo);
    clustering_ = std::make_unique<Clustering>(cluster_by_hierarchy(fig_.topo));
  }
  Figure1 fig_;
  PolicySet policies_;
  std::unique_ptr<Clustering> clustering_;
};

TEST_F(ClusterTest, HierarchyClusteringShape) {
  // Figure 1: 2 backbone clusters + 4 regional clusters.
  EXPECT_EQ(clustering_->count(), 6u);
  EXPECT_TRUE(clustering_->complete());
  // Each backbone is alone in its cluster.
  EXPECT_EQ(clustering_->members(clustering_->cluster_of(fig_.backbone_west))
                .size(),
            1u);
  // A campus belongs to its regional's cluster.
  EXPECT_EQ(clustering_->cluster_of(fig_.campus[0]),
            clustering_->cluster_of(fig_.regional[0]));
  // The multi-homed campus went to its first parent (Reg-1).
  EXPECT_EQ(clustering_->cluster_of(fig_.multihomed),
            clustering_->cluster_of(fig_.regional[1]));
}

TEST_F(ClusterTest, EveryAdInExactlyOneCluster) {
  std::size_t total = 0;
  for (std::uint32_t c = 0; c < clustering_->count(); ++c) {
    total += clustering_->members(ClusterId{c}).size();
  }
  EXPECT_EQ(total, fig_.topo.ad_count());
}

TEST_F(ClusterTest, AggregateGraphStructure) {
  const ClusterGraph graph = aggregate(fig_.topo, policies_, *clustering_);
  EXPECT_EQ(graph.topo.ad_count(), clustering_->count());
  // The cluster graph is much smaller but still connected.
  EXPECT_GT(graph.topo.link_count(), 0u);
  EXPECT_LT(graph.topo.link_count(), fig_.topo.link_count());
  // Clusters anchored by transit ADs advertise aggregated transit.
  const ClusterId reg0 = clustering_->cluster_of(fig_.regional[0]);
  EXPECT_FALSE(graph.policies.terms(graph.node_of(reg0)).empty());
}

TEST_F(ClusterTest, AggregationIsOptimistic) {
  // Restrict Reg-1 to research; the aggregate for its cluster must still
  // advertise at least research (union semantics, never narrower than
  // any member).
  policies_.clear_terms(fig_.regional[1]);
  PolicyTerm t = open_transit_term(fig_.regional[1]);
  t.uci_mask = uci_bit(UserClass::kResearch);
  policies_.add_term(t);
  const ClusterGraph graph = aggregate(fig_.topo, policies_, *clustering_);
  const ClusterId c = clustering_->cluster_of(fig_.regional[1]);
  const auto terms = graph.policies.terms(graph.node_of(c));
  ASSERT_FALSE(terms.empty());
  EXPECT_TRUE(terms[0].uci_mask & uci_bit(UserClass::kResearch));
}

TEST_F(ClusterTest, FootprintShrinks) {
  const ClusterGraph graph = aggregate(fig_.topo, policies_, *clustering_);
  const AbstractionFootprint fp = footprint(fig_.topo, policies_, graph);
  EXPECT_LT(fp.cluster_nodes, fp.flat_nodes);
  EXPECT_LT(fp.cluster_links, fp.flat_links);
  EXPECT_LE(fp.cluster_terms, fp.flat_terms);
}

TEST_F(ClusterTest, HierarchicalSynthesisFindsLegalRoutes) {
  const ClusterGraph graph = aggregate(fig_.topo, policies_, *clustering_);
  const Oracle oracle(fig_.topo, policies_);
  for (int s : {0, 2, 4}) {
    for (int d : {1, 5, 7}) {
      if (fig_.campus[s] == fig_.campus[d]) continue;
      FlowSpec flow{fig_.campus[s], fig_.campus[d]};
      const HierarchicalResult hier = synthesize_hierarchical(
          fig_.topo, policies_, *clustering_, graph, flow);
      const SynthesisResult flat = oracle.best_route(flow);
      ASSERT_EQ(hier.result.found(), flat.found());
      if (hier.result.found()) {
        EXPECT_TRUE(policies_.path_is_legal(fig_.topo, flow,
                                            hier.result.path));
        // Optimality may be lost, never gained.
        EXPECT_GE(hier.result.cost, flat.cost);
      }
    }
  }
}

TEST_F(ClusterTest, IntraClusterFlowStaysInCluster) {
  const ClusterGraph graph = aggregate(fig_.topo, policies_, *clustering_);
  FlowSpec flow{fig_.campus[0], fig_.campus[1]};  // both under Reg-0
  const HierarchicalResult hier = synthesize_hierarchical(
      fig_.topo, policies_, *clustering_, graph, flow);
  ASSERT_TRUE(hier.result.found());
  const ClusterId home = clustering_->cluster_of(fig_.campus[0]);
  for (AdId ad : hier.result.path) {
    EXPECT_EQ(clustering_->cluster_of(ad), home);
  }
  EXPECT_FALSE(hier.used_fallback);
}

TEST_F(ClusterTest, FallbackRescuesOptimisticAggregation) {
  // Make the aggregate look permissive while the members are not: Reg-2
  // only carries low-delay traffic. Cluster-level routing may pick the
  // Reg-1 > Reg-2 corridor for a default-QoS flow; the corridor
  // expansion then fails and the fallback still finds the legal route
  // via the backbones.
  policies_.clear_terms(fig_.regional[2]);
  PolicyTerm t = open_transit_term(fig_.regional[2]);
  t.qos_mask = qos_bit(Qos::kLowDelay);
  policies_.add_term(t);
  const ClusterGraph graph = aggregate(fig_.topo, policies_, *clustering_);
  FlowSpec flow{fig_.campus[2], fig_.campus[4]};  // Reg-1's to Reg-2's campus
  const HierarchicalResult hier = synthesize_hierarchical(
      fig_.topo, policies_, *clustering_, graph, flow);
  // Whatever path level-1 guessed, the final answer must be correct.
  const Oracle oracle(fig_.topo, policies_);
  const SynthesisResult flat = oracle.best_route(flow);
  ASSERT_EQ(hier.result.found(), flat.found());
  if (hier.result.found()) {
    EXPECT_TRUE(policies_.path_is_legal(fig_.topo, flow, hier.result.path));
  }
}

TEST(ClusterProperty, HierarchicalNeverFindsIllegalOrMissesVsFlat) {
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    ScenarioParams params;
    params.seed = seed;
    params.target_ads = 64;
    params.flow_count = 24;
    params.restrict_prob = 0.4;
    Scenario scenario = make_scenario(params);
    const Clustering clustering = cluster_by_hierarchy(scenario.topo);
    const ClusterGraph graph =
        aggregate(scenario.topo, scenario.policies, clustering);
    const Oracle oracle(scenario.topo, scenario.policies);
    for (const FlowSpec& flow : scenario.flows) {
      // Match the oracle's source-policy options (avoid lists etc.).
      const SourcePolicy& sp = scenario.policies.source_policy(flow.src);
      SynthesisOptions options;
      options.max_hops = sp.max_hops;
      options.avoid = sp.avoid;
      options.minimize_cost = sp.prefer_min_cost;
      const HierarchicalResult hier = synthesize_hierarchical(
          scenario.topo, scenario.policies, clustering, graph, flow,
          options);
      const SynthesisResult flat = oracle.best_route(flow);
      EXPECT_EQ(hier.result.found(), flat.found()) << "seed " << seed;
      if (hier.result.found()) {
        EXPECT_TRUE(scenario.policies.path_is_legal(scenario.topo, flow,
                                                    hier.result.path));
        EXPECT_GE(hier.result.cost, flat.cost);
      }
    }
  }
}

}  // namespace
}  // namespace idr
