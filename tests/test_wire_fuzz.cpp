// Codec/dispatch fuzzing: seeded random buffers, truncated real PDUs and
// bit-flipped real PDUs through every protocol's on_message. The
// hardening contract: a malformed PDU is counted (malformed_dropped) and
// dropped -- never a crash, never a partial state application that a
// later assertion trips over.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "proto/dv/dv_node.hpp"
#include "proto/ecma/ecma_node.hpp"
#include "proto/ecma/partial_order.hpp"
#include "proto/egp/egp_node.hpp"
#include "proto/idrp/idrp_node.hpp"
#include "proto/ls/ls_node.hpp"
#include "proto/lshh/lshh_node.hpp"
#include "proto/orwg/orwg_node.hpp"
#include "policy/generator.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "util/prng.hpp"
#include "wire/codec.hpp"

namespace idr {
namespace {

// A small acyclic line internet (a - b - c) usable by every protocol,
// EGP included.
struct LineNet {
  Topology topo;
  PolicySet policies;
  Engine engine;
  std::unique_ptr<Network> net;
  AdId a, b, c;

  LineNet() {
    a = topo.add_ad(AdClass::kCampus, AdRole::kStub);
    b = topo.add_ad(AdClass::kRegional, AdRole::kTransit);
    c = topo.add_ad(AdClass::kCampus, AdRole::kStub);
    topo.add_link(a, b, LinkClass::kHierarchical);
    topo.add_link(b, c, LinkClass::kHierarchical);
    policies = make_open_policies(topo);
    net = std::make_unique<Network>(engine, topo);
  }

  void start() {
    net->start_all();
    engine.run();
  }
};

// Feed `bytes` into the node from every neighbor direction; the only
// acceptable outcomes are "applied" or "counted and dropped".
void inject(Network& net, Node& node, AdId from,
            const std::vector<std::uint8_t>& bytes) {
  node.on_message(from, bytes);
}

// The fuzz corpus for one valid PDU: every truncation, then seeded bit
// flips, then fully random buffers.
void fuzz_node(LineNet& env, Node& node, AdId from,
               const std::vector<std::uint8_t>& valid, Prng& prng) {
  // Truncations (excluding the full valid frame itself).
  for (std::size_t len = 0; len < valid.size(); ++len) {
    std::vector<std::uint8_t> cut(valid.begin(),
                                  valid.begin() + static_cast<long>(len));
    inject(*env.net, node, from, cut);
  }
  // Bit flips.
  for (int i = 0; i < 64; ++i) {
    std::vector<std::uint8_t> flipped = valid;
    if (flipped.empty()) break;
    const std::size_t flips = 1 + prng.below(4);
    for (std::size_t f = 0; f < flips; ++f) {
      const auto at = static_cast<std::size_t>(prng.below(flipped.size()));
      flipped[at] ^= static_cast<std::uint8_t>(1u << prng.below(8));
    }
    inject(*env.net, node, from, flipped);
  }
  // Fully random buffers (random length, random type byte).
  for (int i = 0; i < 128; ++i) {
    std::vector<std::uint8_t> random(prng.below(48));
    for (auto& byte : random) {
      byte = static_cast<std::uint8_t>(prng.below(256));
    }
    inject(*env.net, node, from, random);
  }
  // Whatever the node sent in response must also be survivable.
  env.engine.run();
}

TEST(WireFuzz, DvNodeCountsAndDrops) {
  LineNet env;
  for (AdId id : {env.a, env.b, env.c}) {
    env.net->attach(id, std::make_unique<DvNode>());
  }
  env.start();

  // A valid full-table vector: type, count, (dst, metric) entries.
  wire::Writer w;
  w.u8(DvNode::kMsgVector);
  w.u16(2);
  w.u32(env.a.v);
  w.u16(1);
  w.u32(env.c.v);
  w.u16(3);
  const std::vector<std::uint8_t> valid = std::move(w).take();

  Prng prng(0xD5);
  fuzz_node(env, *env.net->node(env.b), env.a, valid, prng);
  EXPECT_GT(env.net->total().malformed_dropped, 0u);
}

TEST(WireFuzz, LsNodeCountsAndDrops) {
  LineNet env;
  for (AdId id : {env.a, env.b, env.c}) {
    env.net->attach(id, std::make_unique<LsNode>());
  }
  env.start();

  Lsa lsa;
  lsa.origin = env.a;
  lsa.seq = 99;
  LsAdjacency adj;
  adj.neighbor = env.b;
  adj.metric.fill(1);
  lsa.adjacencies.push_back(adj);
  wire::Writer w;
  w.u8(LsNode::kMsgLsa);
  lsa.encode(w);
  const std::vector<std::uint8_t> valid = std::move(w).take();

  Prng prng(0x15);
  fuzz_node(env, *env.net->node(env.b), env.a, valid, prng);
  EXPECT_GT(env.net->total().malformed_dropped, 0u);
}

TEST(WireFuzz, EgpNodeCountsAndDrops) {
  LineNet env;
  for (AdId id : {env.a, env.b, env.c}) {
    env.net->attach(id, std::make_unique<EgpNode>());
  }
  env.start();

  wire::Writer w;
  w.u8(EgpNode::kMsgReach);
  w.u16(1);
  w.u32(env.a.v);
  w.u16(2);
  const std::vector<std::uint8_t> valid = std::move(w).take();

  Prng prng(0xE6);
  fuzz_node(env, *env.net->node(env.b), env.a, valid, prng);
  EXPECT_GT(env.net->total().malformed_dropped, 0u);
}

TEST(WireFuzz, EcmaNodeCountsAndDrops) {
  LineNet env;
  const OrderResult order = compute_partial_order(env.topo, {});
  ASSERT_TRUE(order.ok);
  for (AdId id : {env.a, env.b, env.c}) {
    env.net->attach(id, std::make_unique<EcmaNode>(&order.order,
                                                   EcmaConfig{}));
  }
  env.start();

  wire::Writer w;
  w.u8(EcmaNode::kMsgUpdate);
  w.u16(1);
  w.u32(env.c.v);
  w.u8(0);   // qos
  w.u8(0);   // not down-only
  w.u16(2);  // metric
  const std::vector<std::uint8_t> valid = std::move(w).take();

  Prng prng(0xEC);
  fuzz_node(env, *env.net->node(env.b), env.a, valid, prng);
  EXPECT_GT(env.net->total().malformed_dropped, 0u);
}

TEST(WireFuzz, IdrpNodeCountsAndDrops) {
  LineNet env;
  for (AdId id : {env.a, env.b, env.c}) {
    env.net->attach(id, std::make_unique<IdrpNode>(&env.policies));
  }
  env.start();

  IdrpRoute route;
  route.dst = env.a;
  route.path = {env.a};
  wire::Writer w;
  w.u8(IdrpNode::kMsgUpdate);
  w.u16(1);
  route.encode(w);
  const std::vector<std::uint8_t> valid = std::move(w).take();

  Prng prng(0x1D);
  fuzz_node(env, *env.net->node(env.b), env.a, valid, prng);
  EXPECT_GT(env.net->total().malformed_dropped, 0u);
}

TEST(WireFuzz, LshhNodeCountsAndDrops) {
  LineNet env;
  for (AdId id : {env.a, env.b, env.c}) {
    env.net->attach(id, std::make_unique<LshhNode>(&env.policies));
  }
  env.start();

  PolicyLsa lsa;
  lsa.origin = env.a;
  lsa.seq = 42;
  lsa.adjacencies.push_back(PolicyLsaAdjacency{env.b, 1});
  wire::Writer w;
  w.u8(LshhNode::kMsgLsa);
  lsa.encode(w);
  const std::vector<std::uint8_t> valid = std::move(w).take();

  Prng prng(0x55);
  fuzz_node(env, *env.net->node(env.b), env.a, valid, prng);
  EXPECT_GT(env.net->total().malformed_dropped, 0u);
}

TEST(WireFuzz, OrwgNodeCountsAndDropsEveryMessageType) {
  LineNet env;
  for (AdId id : {env.a, env.b, env.c}) {
    env.net->attach(id, std::make_unique<OrwgNode>(&env.policies));
  }
  env.start();

  PolicyLsa lsa;
  lsa.origin = env.a;
  lsa.seq = 42;
  lsa.adjacencies.push_back(PolicyLsaAdjacency{env.b, 1});
  wire::Writer w;
  w.u8(OrwgNode::kMsgLsa);
  lsa.encode(w);
  const std::vector<std::uint8_t> valid = std::move(w).take();

  Prng prng(0x06);
  fuzz_node(env, *env.net->node(env.b), env.a, valid, prng);

  // Data-plane message types with random bodies: setup, data, ack, nak,
  // teardown, error, batch and unknown types.
  Node& node = *env.net->node(env.b);
  for (std::uint8_t type = 0; type <= 16; ++type) {
    for (int i = 0; i < 32; ++i) {
      std::vector<std::uint8_t> msg;
      msg.push_back(type);
      const std::size_t body = prng.below(40);
      for (std::size_t j = 0; j < body; ++j) {
        msg.push_back(static_cast<std::uint8_t>(prng.below(256)));
      }
      node.on_message(env.a, msg);
    }
  }
  env.engine.run();
  EXPECT_GT(env.net->total().malformed_dropped, 0u);
}

}  // namespace
}  // namespace idr
