#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "util/prng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace idr {
namespace {

TEST(Prng, DeterministicForSeed) {
  Prng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Prng, DifferentSeedsDiffer) {
  Prng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Prng, UniformStaysInRange) {
  Prng prng(7);
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t v = prng.uniform(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Prng, UniformCoversFullRange) {
  Prng prng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(prng.uniform(0, 7));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Prng, Uniform01InHalfOpenInterval) {
  Prng prng(11);
  for (int i = 0; i < 10000; ++i) {
    const double v = prng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Prng, BernoulliRespectsProbabilityRoughly) {
  Prng prng(3);
  int hits = 0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) {
    if (prng.bernoulli(0.25)) ++hits;
  }
  const double rate = static_cast<double>(hits) / kTrials;
  EXPECT_NEAR(rate, 0.25, 0.02);
}

TEST(Prng, ExponentialMeanRoughlyCorrect) {
  Prng prng(5);
  double sum = 0.0;
  constexpr int kTrials = 20000;
  for (int i = 0; i < kTrials; ++i) sum += prng.exponential(10.0);
  EXPECT_NEAR(sum / kTrials, 10.0, 0.5);
}

TEST(Prng, ShufflePreservesElements) {
  Prng prng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  auto shuffled = v;
  prng.shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Prng, ForkIsIndependent) {
  Prng a(13);
  Prng child = a.fork();
  // The child stream must differ from the parent's continuation.
  EXPECT_NE(child(), a());
}

TEST(Summary, BasicStatistics) {
  Summary s;
  for (double x : {1.0, 2.0, 3.0, 4.0, 5.0}) s.add(x);
  EXPECT_EQ(s.count(), 5u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.0);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  EXPECT_NEAR(s.stddev(), 1.5811, 1e-3);
}

TEST(Summary, PercentileNearestRank) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(90), 90.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
}

TEST(Summary, EmptyIsSafe) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.brief(), "n=0");
}

TEST(Histogram, BinsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.add(-1.0);
  h.add(0.0);
  h.add(5.5);
  h.add(9.999);
  h.add(10.0);
  h.add(25.0);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.bin_count(0), 1u);
  EXPECT_EQ(h.bin_count(5), 1u);
  EXPECT_EQ(h.bin_count(9), 1u);
  EXPECT_EQ(h.total(), 6u);
}

TEST(Table, RendersAlignedWithHeaderRule) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Table, CsvEscapesCommasAndQuotes) {
  Table t({"a", "b"});
  t.add_row({"x,y", "he said \"hi\""});
  const std::string csv = t.render_csv();
  EXPECT_NE(csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(csv.find("\"he said \"\"hi\"\"\""), std::string::npos);
}

TEST(Table, ShortRowsPadded) {
  Table t({"a", "b", "c"});
  t.add_row({"only"});
  EXPECT_EQ(t.rows(), 1u);
  EXPECT_NE(t.render().find("only"), std::string::npos);
}

TEST(Table, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 3), "3.14");
  EXPECT_EQ(Table::integer(42), "42");
  EXPECT_EQ(Table::ratio(1.0, 0.0), "n/a");
  EXPECT_EQ(Table::ratio(3.0, 2.0, 2), "1.5");
}

}  // namespace
}  // namespace idr
