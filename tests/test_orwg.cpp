#include <gtest/gtest.h>

#include <memory>

#include "policy/generator.hpp"
#include "proto/orwg/orwg_node.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "topology/figure1.hpp"

namespace idr {
namespace {

class OrwgTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fig_ = build_figure1();
    policies_ = make_open_policies(fig_.topo);
  }

  void converge(OrwgConfig config = {}) {
    net_ = std::make_unique<Network>(engine_, fig_.topo);
    for (const Ad& ad : fig_.topo.ads()) {
      auto node = std::make_unique<OrwgNode>(&policies_, config);
      nodes_.push_back(node.get());
      net_->attach(ad.id, std::move(node));
    }
    net_->start_all();
    engine_.run();
  }

  Figure1 fig_;
  PolicySet policies_;
  Engine engine_;
  std::unique_ptr<Network> net_;
  std::vector<OrwgNode*> nodes_;
};

TEST_F(OrwgTest, PolicyLsasFullyFlood) {
  converge();
  for (OrwgNode* node : nodes_) {
    EXPECT_EQ(node->lsdb().size(), fig_.topo.ad_count());
  }
  // Source policies are NOT published (contrast LSHH).
  const PolicyLsa* lsa = nodes_[fig_.campus[7].v]->lsdb().get(fig_.campus[0]);
  ASSERT_NE(lsa, nullptr);
  EXPECT_FALSE(lsa->has_source_policy);
}

TEST_F(OrwgTest, RouteServerSynthesizesLegalRoute) {
  converge();
  FlowSpec flow{fig_.campus[0], fig_.campus[6]};
  const auto path = nodes_[flow.src.v]->policy_route(flow);
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(policies_.path_is_legal(fig_.topo, flow, *path));
}

TEST_F(OrwgTest, SetupEstablishesPrAndDeliversData) {
  converge();
  FlowSpec flow{fig_.campus[0], fig_.campus[6]};
  OrwgNode* src = nodes_[flow.src.v];
  OrwgNode* dst = nodes_[flow.dst.v];
  ASSERT_TRUE(src->send_flow(flow, 10));
  engine_.run();
  EXPECT_EQ(dst->delivered(), 10u);
  EXPECT_EQ(src->setup_latency_ms().count(), 1u);
  EXPECT_GT(src->setup_latency_ms().mean(), 0.0);
  // Every transit AD on the path installed exactly one handle.
  const auto path = src->policy_route(flow);
  ASSERT_TRUE(path.has_value());
  for (AdId ad : *path) {
    EXPECT_GE(nodes_[ad.v]->gateway().installed(), 1u);
  }
}

TEST_F(OrwgTest, SecondFlowReusesEstablishedPr) {
  converge();
  FlowSpec flow{fig_.campus[0], fig_.campus[6]};
  OrwgNode* src = nodes_[flow.src.v];
  ASSERT_TRUE(src->send_flow(flow, 5));
  engine_.run();
  ASSERT_TRUE(src->send_flow(flow, 5));  // same PR, no new setup
  engine_.run();
  EXPECT_EQ(nodes_[flow.dst.v]->delivered(), 10u);
  EXPECT_EQ(src->setup_latency_ms().count(), 1u);  // only one setup ever
  EXPECT_EQ(src->route_server().synth_calls(), 1u);
}

TEST_F(OrwgTest, PolicyViolatingSetupIsNakked) {
  converge();
  // After convergence, quietly tighten BB-East's real policy so the
  // flooded LSDB is stale: the route server will synthesize a route the
  // policy gateway must reject.
  policies_.clear_terms(fig_.backbone_east);
  PolicyTerm t = open_transit_term(fig_.backbone_east);
  t.uci_mask = uci_bit(UserClass::kResearch);
  policies_.add_term(t);
  FlowSpec commercial{fig_.campus[0], fig_.campus[6], Qos::kDefault,
                      UserClass::kCommercial, 12};
  OrwgNode* src = nodes_[commercial.src.v];
  ASSERT_TRUE(src->send_flow(commercial, 3));
  engine_.run();
  EXPECT_EQ(nodes_[commercial.dst.v]->delivered(), 0u);
  EXPECT_EQ(src->setup_naks(), 1u);
  EXPECT_GE(nodes_[fig_.backbone_east.v]->gateway().setups_rejected(), 1u);
}

TEST_F(OrwgTest, DataWithUnknownHandleDropped) {
  converge();
  FlowSpec flow{fig_.campus[0], fig_.campus[6]};
  OrwgNode* src = nodes_[flow.src.v];
  ASSERT_TRUE(src->send_flow(flow, 1));
  engine_.run();
  // Flush the PR caches at a transit AD (models local policy change).
  const auto path = src->policy_route(flow);
  ASSERT_TRUE(path.has_value());
  const AdId mid = (*path)[1];
  nodes_[mid.v]->gateway().flush();
  const auto before = nodes_[flow.dst.v]->delivered();
  src->send_flow(flow, 4);  // source still believes the PR is active
  engine_.run();
  EXPECT_EQ(nodes_[flow.dst.v]->delivered(), before);
  EXPECT_EQ(nodes_[mid.v]->data_drops(), 4u);
}

TEST_F(OrwgTest, QosRestrictedTermsSteerRoutes) {
  // BB-West carries only low-delay traffic: default-QoS flows between the
  // backbones' customers must cross via the regional lateral.
  policies_.clear_terms(fig_.backbone_west);
  PolicyTerm t = open_transit_term(fig_.backbone_west);
  t.qos_mask = qos_bit(Qos::kLowDelay);
  policies_.add_term(t);
  converge();
  FlowSpec def{fig_.campus[2], fig_.campus[4], Qos::kDefault,
               UserClass::kResearch, 12};
  const auto path = nodes_[def.src.v]->policy_route(def);
  ASSERT_TRUE(path.has_value());
  for (AdId ad : *path) EXPECT_NE(ad, fig_.backbone_west);
  FlowSpec low{fig_.campus[2], fig_.campus[4], Qos::kLowDelay,
               UserClass::kResearch, 12};
  EXPECT_TRUE(nodes_[low.src.v]->policy_route(low).has_value());
}

TEST_F(OrwgTest, PrivateAvoidListHonoredWithoutDisclosure) {
  policies_.source_policy(fig_.campus[0]).avoid.push_back(
      fig_.backbone_east);
  converge();
  FlowSpec flow{fig_.campus[0], fig_.campus[4]};
  const auto path = nodes_[flow.src.v]->policy_route(flow);
  ASSERT_TRUE(path.has_value());
  for (AdId ad : *path) EXPECT_NE(ad, fig_.backbone_east);
  // And the criteria never appeared in any LSA.
  const PolicyLsa* lsa = nodes_[fig_.campus[7].v]->lsdb().get(fig_.campus[0]);
  ASSERT_NE(lsa, nullptr);
  EXPECT_FALSE(lsa->has_source_policy);
}

TEST_F(OrwgTest, CacheRevalidatesAfterIrrelevantChange) {
  converge();
  FlowSpec flow{fig_.campus[0], fig_.campus[1]};  // stays inside Reg-0
  OrwgNode* src = nodes_[flow.src.v];
  ASSERT_TRUE(src->policy_route(flow).has_value());
  EXPECT_EQ(src->route_server().synth_calls(), 1u);
  // An unrelated link fails far away; the cached PR must revalidate
  // without resynthesis.
  net_->set_link_state(
      *fig_.topo.find_link(fig_.regional[3], fig_.campus[7]), false);
  engine_.run();
  ASSERT_TRUE(src->policy_route(flow).has_value());
  EXPECT_EQ(src->route_server().synth_calls(), 1u);
  EXPECT_GE(src->route_server().revalidations(), 1u);
}

TEST_F(OrwgTest, ResynthesizesAfterRelevantFailure) {
  converge();
  FlowSpec flow{fig_.campus[0], fig_.campus[6]};
  OrwgNode* src = nodes_[flow.src.v];
  const auto before = src->policy_route(flow);
  ASSERT_TRUE(before.has_value());
  // The min-cost route crosses the inter-backbone link; cut it (the
  // lateral Reg-1/Reg-2 detour remains, so resynthesis must succeed).
  const auto link =
      fig_.topo.find_link(fig_.backbone_west, fig_.backbone_east);
  ASSERT_TRUE(link.has_value());
  bool on_path = false;
  for (std::size_t i = 0; i + 1 < before->size(); ++i) {
    if (((*before)[i] == fig_.backbone_west &&
         (*before)[i + 1] == fig_.backbone_east)) {
      on_path = true;
    }
  }
  ASSERT_TRUE(on_path);
  net_->set_link_state(*link, false);
  engine_.run();
  const auto after = src->policy_route(flow);
  ASSERT_TRUE(after.has_value());
  EXPECT_TRUE(policies_.path_is_legal(fig_.topo, flow, *after));
  EXPECT_EQ(src->route_server().synth_calls(), 2u);
}

TEST_F(OrwgTest, PrecomputationFillsCache) {
  OrwgConfig config;
  config.route_server.strategy = SynthesisStrategy::kPrecompute;
  converge(config);
  OrwgNode* src = nodes_[fig_.campus[0].v];
  src->precompute_all();
  const auto precomputed = src->route_server().cache_size();
  EXPECT_GT(precomputed, 0u);
  // A default-class flow to a precomputed destination is a cache hit.
  FlowSpec flow{fig_.campus[0], fig_.campus[6]};
  ASSERT_TRUE(src->policy_route(flow).has_value());
  EXPECT_GT(src->route_server().cache_hits(), 0u);
}

TEST_F(OrwgTest, AccountingMetersTransitUsage) {
  // Give BB-West a priced term so invoices are non-trivial.
  policies_.clear_terms(fig_.backbone_west);
  policies_.add_term(open_transit_term(fig_.backbone_west, 0, /*cost=*/3));
  converge();
  FlowSpec flow_a{fig_.campus[0], fig_.campus[6]};
  FlowSpec flow_b{fig_.campus[1], fig_.campus[6]};
  ASSERT_TRUE(nodes_[flow_a.src.v]->send_flow(flow_a, 10));
  ASSERT_TRUE(nodes_[flow_b.src.v]->send_flow(flow_b, 5));
  engine_.run();

  PolicyGateway& bbw = nodes_[fig_.backbone_west.v]->gateway();
  // Both flows crossed BB-West at 3 per packet.
  EXPECT_EQ(bbw.total_revenue(), 10u * 3 + 5u * 3);
  const auto invoices = bbw.invoices();
  ASSERT_EQ(invoices.size(), 2u);
  EXPECT_EQ(invoices[0].source, fig_.campus[0]);
  EXPECT_EQ(invoices[0].packets, 10u);
  EXPECT_EQ(invoices[0].amount, 30u);
  EXPECT_EQ(invoices[1].source, fig_.campus[1]);
  EXPECT_EQ(invoices[1].amount, 15u);
  EXPECT_GT(invoices[0].bytes, 0u);
  // Endpoints never charge themselves.
  EXPECT_EQ(nodes_[flow_a.dst.v]->gateway().total_revenue(), 0u);
}

// A compromised AD forges an LSA in BB-West's name advertising a fake
// direct adjacency to every campus. Without authentication the forgery
// pollutes every LSDB and warps route synthesis; with per-origin LSA
// authentication (§2.3's assurance dimension) it is dropped at the first
// honest hop.
TEST_F(OrwgTest, ForgedLsaRejectedWithAuthentication) {
  std::vector<std::uint64_t> keys(fig_.topo.ad_count());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    keys[i] = 0x1000 + i;  // toy per-AD keys, distributed out of band
  }
  OrwgConfig config;
  config.lsa_keys = &keys;
  converge(config);

  // The attacker (campus 3) forges: "BB-West is adjacent to campus 7".
  PolicyLsa forged;
  forged.origin = fig_.backbone_west;
  forged.seq = 1000;  // newer than anything legitimate
  forged.adjacencies.push_back(PolicyLsaAdjacency{fig_.campus[7], 1});
  forged.terms.push_back(open_transit_term(fig_.backbone_west));
  forged.auth = lsa_auth_tag(forged, keys[fig_.campus[3].v]);  // wrong key
  wire::Writer w;
  w.u8(OrwgNode::kMsgLsa);
  forged.encode(w);
  net_->send(fig_.campus[3], fig_.regional[1], std::move(w).take());
  engine_.run();

  // The honest neighbor rejected it; nobody's database regressed.
  EXPECT_GE(nodes_[fig_.regional[1].v]->lsas_rejected_auth(), 1u);
  const PolicyLsa* stored =
      nodes_[fig_.campus[0].v]->lsdb().get(fig_.backbone_west);
  ASSERT_NE(stored, nullptr);
  EXPECT_LT(stored->seq, 1000u);
}

TEST_F(OrwgTest, ForgedLsaPollutesWithoutAuthentication) {
  converge();  // no keys configured
  PolicyLsa forged;
  forged.origin = fig_.backbone_west;
  forged.seq = 1000;
  forged.adjacencies.push_back(PolicyLsaAdjacency{fig_.campus[7], 1});
  forged.terms.push_back(open_transit_term(fig_.backbone_west));
  wire::Writer w;
  w.u8(OrwgNode::kMsgLsa);
  forged.encode(w);
  net_->send(fig_.campus[3], fig_.regional[1], std::move(w).take());
  engine_.run();
  // Without authentication the forgery is accepted and flooded — it
  // pollutes every database until the true origin hears its own name on
  // a foreign LSA and fights back by re-originating past the forged
  // sequence number. The steady state is therefore the *legitimate*
  // adjacency set at seq 1001, but the forger forced a network-wide
  // reflood and a window of bogus routing that keys would have prevented.
  const PolicyLsa* stored =
      nodes_[fig_.campus[0].v]->lsdb().get(fig_.backbone_west);
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(stored->seq, 1001u);
  EXPECT_GT(stored->adjacencies.size(), 1u);  // real neighbors, not forged
}

TEST_F(OrwgTest, NoRouteReportedAsFailure) {
  // Isolate campus7 by policy: nothing may transit toward it... easiest:
  // cut its only link after convergence and re-flood.
  converge();
  net_->set_link_state(
      *fig_.topo.find_link(fig_.regional[3], fig_.campus[7]), false);
  engine_.run();
  FlowSpec flow{fig_.campus[0], fig_.campus[7]};
  OrwgNode* src = nodes_[flow.src.v];
  EXPECT_FALSE(src->send_flow(flow, 1));
  EXPECT_EQ(src->route_failures(), 1u);
}

}  // namespace
}  // namespace idr
