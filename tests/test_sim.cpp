#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/failure.hpp"
#include "sim/network.hpp"
#include "topology/figure1.hpp"
#include "util/prng.hpp"
#include "wire/codec.hpp"

namespace idr {
namespace {

TEST(Engine, RunsEventsInTimeOrder) {
  Engine e;
  std::vector<int> order;
  e.at(5.0, [&] { order.push_back(2); });
  e.at(1.0, [&] { order.push_back(1); });
  e.at(9.0, [&] { order.push_back(3); });
  e.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(e.now(), 9.0);
}

TEST(Engine, SameTimeIsFifo) {
  Engine e;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    e.at(1.0, [&order, i] { order.push_back(i); });
  }
  e.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[static_cast<size_t>(i)], i);
}

TEST(Engine, AfterIsRelative) {
  Engine e;
  double fired_at = -1.0;
  e.at(10.0, [&] {
    e.after(5.0, [&] { fired_at = e.now(); });
  });
  e.run();
  EXPECT_DOUBLE_EQ(fired_at, 15.0);
}

TEST(Engine, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Engine e;
  int fired = 0;
  e.at(1.0, [&] { ++fired; });
  e.at(5.0, [&] { ++fired; });
  e.at(10.0, [&] { ++fired; });
  e.run_until(5.0);
  EXPECT_EQ(fired, 2);
  EXPECT_DOUBLE_EQ(e.now(), 5.0);
  EXPECT_EQ(e.pending(), 1u);
}

#ifdef NDEBUG
TEST(Engine, SchedulingIntoThePastClampsToNow) {
  Engine e;
  double fired_at = -1.0;
  e.at(10.0, [&] { e.at(5.0, [&] { fired_at = e.now(); }); });
  e.run();
  // The stale timestamp is clamped: the event runs "now", never rewinds
  // the clock.
  EXPECT_DOUBLE_EQ(fired_at, 10.0);
}
#else
TEST(EngineDeathTest, SchedulingIntoThePastAssertsInDebug) {
  EXPECT_DEATH(
      {
        Engine e;
        e.at(10.0, [&] { e.at(5.0, [] {}); });
        e.run();
      },
      "past");
}
#endif

TEST(Engine, EventsCanScheduleEvents) {
  Engine e;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 100) e.after(1.0, recurse);
  };
  e.at(0.0, recurse);
  e.run();
  EXPECT_EQ(depth, 100);
  EXPECT_DOUBLE_EQ(e.now(), 99.0);
}

// A trivial echoing node for network tests.
class EchoNode : public Node {
 public:
  void on_message(AdId from, std::span<const std::uint8_t> bytes) override {
    received.emplace_back(from, std::vector<std::uint8_t>(bytes.begin(),
                                                          bytes.end()));
  }
  void on_link_change(AdId neighbor, bool up) override {
    link_events.emplace_back(neighbor, up);
  }
  std::vector<std::pair<AdId, std::vector<std::uint8_t>>> received;
  std::vector<std::pair<AdId, bool>> link_events;
};

class NetworkTest : public ::testing::Test {
 protected:
  void SetUp() override {
    a_ = topo_.add_ad(AdClass::kCampus, AdRole::kStub);
    b_ = topo_.add_ad(AdClass::kCampus, AdRole::kStub);
    c_ = topo_.add_ad(AdClass::kCampus, AdRole::kStub);
    ab_ = topo_.add_link(a_, b_, LinkClass::kLateral, 3.0);
    topo_.add_link(b_, c_, LinkClass::kLateral, 4.0);
    net_ = std::make_unique<Network>(engine_, topo_);
    for (AdId id : {a_, b_, c_}) {
      auto node = std::make_unique<EchoNode>();
      nodes_[id.v] = node.get();
      net_->attach(id, std::move(node));
    }
    net_->start_all();
  }

  Topology topo_;
  Engine engine_;
  std::unique_ptr<Network> net_;
  EchoNode* nodes_[3] = {};
  AdId a_, b_, c_;
  LinkId ab_;
};

TEST_F(NetworkTest, DeliversWithLinkDelay) {
  EXPECT_TRUE(net_->send(a_, b_, {1, 2, 3}));
  engine_.run();
  ASSERT_EQ(nodes_[b_.v]->received.size(), 1u);
  EXPECT_EQ(nodes_[b_.v]->received[0].first, a_);
  EXPECT_EQ(nodes_[b_.v]->received[0].second,
            (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(engine_.now(), 3.0);
}

TEST_F(NetworkTest, NonAdjacentSendDrops) {
  EXPECT_FALSE(net_->send(a_, c_, {9}));
  engine_.run();
  EXPECT_TRUE(nodes_[c_.v]->received.empty());
  EXPECT_EQ(net_->total().msgs_dropped, 1u);
}

TEST_F(NetworkTest, DownLinkDrops) {
  net_->set_link_state(ab_, false);
  EXPECT_FALSE(net_->send(a_, b_, {1}));
  engine_.run();
  EXPECT_TRUE(nodes_[b_.v]->received.empty());
}

TEST_F(NetworkTest, InFlightMessageDroppedWhenLinkFails) {
  EXPECT_TRUE(net_->send(a_, b_, {1}));
  // The link dies while the message is in flight (delay is 3ms).
  engine_.at(1.0, [&] { net_->set_link_state(ab_, false); });
  engine_.run();
  EXPECT_TRUE(nodes_[b_.v]->received.empty());
  EXPECT_EQ(net_->total().msgs_dropped, 1u);
}

TEST_F(NetworkTest, LinkChangeNotifiesBothEnds) {
  net_->set_link_state(ab_, false);
  ASSERT_EQ(nodes_[a_.v]->link_events.size(), 1u);
  ASSERT_EQ(nodes_[b_.v]->link_events.size(), 1u);
  EXPECT_EQ(nodes_[a_.v]->link_events[0], std::make_pair(b_, false));
  EXPECT_EQ(nodes_[b_.v]->link_events[0], std::make_pair(a_, false));
  // Redundant transition is suppressed.
  net_->set_link_state(ab_, false);
  EXPECT_EQ(nodes_[a_.v]->link_events.size(), 1u);
}

TEST_F(NetworkTest, CountersTrackBytes) {
  net_->send(a_, b_, {1, 2, 3, 4, 5});
  engine_.run();
  EXPECT_EQ(net_->counters(a_).msgs_sent, 1u);
  EXPECT_EQ(net_->counters(a_).bytes_sent, 5u);
  EXPECT_EQ(net_->counters(b_).msgs_delivered, 1u);
  EXPECT_EQ(net_->total().bytes_sent, 5u);
  net_->reset_counters();
  EXPECT_EQ(net_->total().msgs_sent, 0u);
}

TEST_F(NetworkTest, PerByteDelayExtendsDelivery) {
  net_->set_per_byte_delay(0.5);
  net_->send(a_, b_, {1, 2, 3, 4});  // 3.0 + 4 * 0.5 = 5.0
  engine_.run();
  EXPECT_DOUBLE_EQ(engine_.now(), 5.0);
}

TEST(FailureInjector, ScriptedFailureAndRepair) {
  Topology topo;
  const AdId a = topo.add_ad(AdClass::kCampus, AdRole::kStub);
  const AdId b = topo.add_ad(AdClass::kCampus, AdRole::kStub);
  const LinkId l = topo.add_link(a, b, LinkClass::kLateral);
  Engine engine;
  Network net(engine, topo);
  net.attach(a, std::make_unique<EchoNode>());
  net.attach(b, std::make_unique<EchoNode>());
  net.start_all();
  FailureInjector injector(net);
  injector.fail_link_at(l, 10.0, 5.0);
  engine.run_until(12.0);
  EXPECT_FALSE(topo.link(l).up);
  engine.run_until(20.0);
  EXPECT_TRUE(topo.link(l).up);
  EXPECT_EQ(injector.failures_injected(), 1u);
}

TEST(FailureInjector, RandomFailuresStayWithinHorizon) {
  Figure1 fig = build_figure1();
  Engine engine;
  Network net(engine, fig.topo);
  for (const Ad& ad : fig.topo.ads()) {
    net.attach(ad.id, std::make_unique<EchoNode>());
  }
  net.start_all();
  FailureInjector injector(net);
  Prng prng(42);
  injector.random_failures(prng, 500.0, 100.0, 10'000.0);
  engine.run();
  EXPECT_GT(injector.failures_injected(), 0u);
  // Every failure's repair is scheduled even when it lands past the
  // horizon, so after a full drain no link is left down forever.
  for (const Link& l : fig.topo.links()) {
    EXPECT_TRUE(l.up) << "link " << l.id.v << " was never repaired";
  }
}

TEST(FailureInjector, ScriptedCrashAndRestart) {
  Topology topo;
  const AdId a = topo.add_ad(AdClass::kCampus, AdRole::kStub);
  const AdId b = topo.add_ad(AdClass::kCampus, AdRole::kStub);
  topo.add_link(a, b, LinkClass::kLateral);
  Engine engine;
  Network net(engine, topo);
  net.set_node_factory([](AdId) { return std::make_unique<EchoNode>(); });
  net.attach(a, std::make_unique<EchoNode>());
  net.attach(b, std::make_unique<EchoNode>());
  net.start_all();
  FailureInjector injector(net);
  injector.crash_node_at(b, 10.0, 5.0);
  engine.run_until(12.0);
  EXPECT_FALSE(net.alive(b));
  engine.run_until(20.0);
  EXPECT_TRUE(net.alive(b));
  EXPECT_EQ(injector.crashes_injected(), 1u);
  EXPECT_EQ(net.crashes(), 1u);
}

TEST_F(NetworkTest, InFlightMessageDroppedWhenReceiverCrashes) {
  net_->set_node_factory([](AdId) { return std::make_unique<EchoNode>(); });
  EXPECT_TRUE(net_->send(a_, b_, {1}));
  engine_.at(1.0, [&] { net_->crash(b_); });
  engine_.run();
  EXPECT_EQ(net_->total().msgs_dropped, 1u);
  EXPECT_EQ(net_->total().msgs_delivered, 0u);
}

TEST_F(NetworkTest, DuplicationDeliversTwiceAndIsCounted) {
  FaultConfig faults;
  faults.duplicate_rate = 1.0;
  net_->set_faults(faults, 5);
  net_->send(a_, b_, {1, 2});
  engine_.run();
  EXPECT_EQ(nodes_[b_.v]->received.size(), 2u);
  EXPECT_EQ(net_->counters(b_).msgs_duplicated, 1u);
}

TEST_F(NetworkTest, CorruptionFlipsBitsAndChecksumDropsWhenPerfect) {
  FaultConfig faults;
  faults.corrupt_rate = 1.0;
  faults.corrupt_deliver_fraction = 1.0;  // no checksum: mangled delivery
  net_->set_faults(faults, 5);
  net_->send(a_, b_, {0, 0, 0, 0});
  engine_.run();
  ASSERT_EQ(nodes_[b_.v]->received.size(), 1u);
  EXPECT_NE(nodes_[b_.v]->received[0].second,
            (std::vector<std::uint8_t>{0, 0, 0, 0}));
  EXPECT_EQ(net_->counters(b_).msgs_corrupted, 1u);

  faults.corrupt_deliver_fraction = 0.0;  // perfect checksum: dropped
  net_->set_faults(faults, 5);
  net_->send(a_, b_, {0, 0, 0, 0});
  engine_.run();
  EXPECT_EQ(nodes_[b_.v]->received.size(), 1u);
  EXPECT_EQ(net_->counters(b_).msgs_corrupted, 2u);
}

TEST_F(NetworkTest, KeepaliveDeclaresSilentNeighborDeadAndRevivesIt) {
  net_->set_node_factory([](AdId) { return std::make_unique<EchoNode>(); });
  net_->set_link_notifications(false);
  net_->set_keepalive(KeepaliveConfig{.interval_ms = 10.0,
                                      .miss_threshold = 3});
  net_->crash(b_);
  EchoNode* a_node = nodes_[a_.v];
  engine_.run_until(100.0);
  // a heard nothing from b for > 3 intervals: declared dead.
  ASSERT_FALSE(a_node->link_events.empty());
  EXPECT_EQ(a_node->link_events.back(), std::make_pair(b_, false));
  EXPECT_FALSE(net_->node(a_)->neighbor_alive(b_));

  net_->restart(b_);
  engine_.run_until(300.0);
  // The restarted node's keepalives (and a's backed-off probes) revive
  // the adjacency on both sides.
  EXPECT_EQ(a_node->link_events.back(), std::make_pair(b_, true));
  EXPECT_TRUE(net_->node(a_)->neighbor_alive(b_));
  EXPECT_TRUE(net_->node(b_)->neighbor_alive(a_));
}

TEST_F(NetworkTest, StaleQueuedFrameNeverRevivesOrSustainsDeadNeighbor) {
  // Hold-timer edge: with overload protection a frame can be serviced
  // long after it arrived, carrying its (old) interface arrival time.
  // Such stale evidence must neither revive a declared-dead neighbor nor
  // postpone the re-expiry of one that revived and died again within a
  // hold interval.
  net_->set_link_notifications(false);
  net_->set_keepalive(KeepaliveConfig{.interval_ms = 10.0,
                                      .miss_threshold = 3});
  net_->crash(b_);
  EchoNode* a_node = nodes_[a_.v];
  engine_.run_until(100.0);
  ASSERT_EQ(a_node->link_events.back(), std::make_pair(b_, false));
  ASSERT_FALSE(net_->node(a_)->neighbor_alive(b_));

  const auto link = topo_.find_link(a_, b_);
  ASSERT_TRUE(link.has_value());
  const std::uint32_t slot = topo_.adjacency_slot(*link, a_);
  const std::vector<std::uint8_t> frame{0x7F};

  // A frame that arrived BEFORE the death declaration, serviced late out
  // of an ingress queue: must not vouch for the dead neighbor.
  net_->node(a_)->deliver(b_, slot, frame, /*heard_at=*/5.0);
  EXPECT_FALSE(net_->node(a_)->neighbor_alive(b_));
  EXPECT_EQ(a_node->link_events.back(), std::make_pair(b_, false));

  // Evidence from at/after the declaration revives the adjacency.
  net_->node(a_)->deliver(b_, slot, frame, engine_.now());
  EXPECT_TRUE(net_->node(a_)->neighbor_alive(b_));
  EXPECT_EQ(a_node->link_events.back(), std::make_pair(b_, true));

  // More stale frames trickle out of the queue; monotone last_heard
  // ignores them, so the revived-but-silent neighbor re-expires one hold
  // interval after the genuine evidence -- not off the stale timestamps,
  // and not never.
  net_->node(a_)->deliver(b_, slot, frame, /*heard_at=*/5.0);
  engine_.run_until(engine_.now() + 100.0);
  EXPECT_FALSE(net_->node(a_)->neighbor_alive(b_));
  EXPECT_EQ(a_node->link_events.back(), std::make_pair(b_, false));
}

TEST_F(NetworkTest, KeepaliveDetectsSilentLinkFailureWithoutOracle) {
  net_->set_link_notifications(false);
  net_->set_keepalive(KeepaliveConfig{.interval_ms = 10.0,
                                      .miss_threshold = 3});
  net_->set_link_state(ab_, false);  // no notification reaches the nodes
  EXPECT_TRUE(nodes_[a_.v]->link_events.empty());
  engine_.run_until(100.0);
  ASSERT_FALSE(nodes_[a_.v]->link_events.empty());
  EXPECT_EQ(nodes_[a_.v]->link_events.back(), std::make_pair(b_, false));
  net_->set_link_state(ab_, true);
  engine_.run_until(400.0);
  EXPECT_EQ(nodes_[a_.v]->link_events.back(), std::make_pair(b_, true));
}

}  // namespace
}  // namespace idr
