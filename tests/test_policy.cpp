#include <gtest/gtest.h>

#include "policy/database.hpp"
#include "policy/flow.hpp"
#include "policy/generator.hpp"
#include "policy/term.hpp"
#include "topology/figure1.hpp"
#include "util/prng.hpp"

namespace idr {
namespace {

TEST(AdSet, AnyContainsEverything) {
  const AdSet any = AdSet::any();
  EXPECT_TRUE(any.is_any());
  EXPECT_TRUE(any.contains(AdId{0}));
  EXPECT_TRUE(any.contains(AdId{12345}));
}

TEST(AdSet, ExplicitMembership) {
  const AdSet s = AdSet::of({AdId{3}, AdId{1}, AdId{3}});
  EXPECT_FALSE(s.is_any());
  EXPECT_EQ(s.members().size(), 2u);  // sorted, deduped
  EXPECT_TRUE(s.contains(AdId{1}));
  EXPECT_TRUE(s.contains(AdId{3}));
  EXPECT_FALSE(s.contains(AdId{2}));
}

TEST(AdSet, NoneContainsNothing) {
  const AdSet none = AdSet::none();
  EXPECT_FALSE(none.contains(AdId{0}));
}

TEST(PolicyTerm, OpenTermPermitsEverything) {
  const PolicyTerm t = open_transit_term(AdId{5});
  FlowSpec flow{AdId{1}, AdId{2}, Qos::kLowDelay, UserClass::kCommercial, 3};
  EXPECT_TRUE(t.permits(flow, AdId{7}, AdId{8}));
}

TEST(PolicyTerm, SourceRestriction) {
  PolicyTerm t = open_transit_term(AdId{5});
  t.sources = AdSet::of({AdId{1}});
  FlowSpec ok{AdId{1}, AdId{2}};
  FlowSpec bad{AdId{3}, AdId{2}};
  EXPECT_TRUE(t.permits(ok, AdId{7}, AdId{8}));
  EXPECT_FALSE(t.permits(bad, AdId{7}, AdId{8}));
}

TEST(PolicyTerm, PrevNextRestriction) {
  PolicyTerm t = open_transit_term(AdId{5});
  t.prev_hops = AdSet::of({AdId{7}});
  t.next_hops = AdSet::of({AdId{8}});
  FlowSpec flow{AdId{1}, AdId{2}};
  EXPECT_TRUE(t.permits(flow, AdId{7}, AdId{8}));
  EXPECT_FALSE(t.permits(flow, AdId{9}, AdId{8}));
  EXPECT_FALSE(t.permits(flow, AdId{7}, AdId{9}));
}

TEST(PolicyTerm, QosAndUciMasks) {
  PolicyTerm t = open_transit_term(AdId{5});
  t.qos_mask = qos_bit(Qos::kLowDelay);
  t.uci_mask = uci_bit(UserClass::kResearch);
  FlowSpec flow{AdId{1}, AdId{2}, Qos::kLowDelay, UserClass::kResearch, 12};
  EXPECT_TRUE(t.permits(flow, AdId{7}, AdId{8}));
  flow.qos = Qos::kDefault;
  EXPECT_FALSE(t.permits(flow, AdId{7}, AdId{8}));
  flow.qos = Qos::kLowDelay;
  flow.uci = UserClass::kCommercial;
  EXPECT_FALSE(t.permits(flow, AdId{7}, AdId{8}));
}

TEST(PolicyTerm, HourWindowPlain) {
  PolicyTerm t = open_transit_term(AdId{5});
  t.hour_begin = 8;
  t.hour_end = 18;
  EXPECT_TRUE(t.hour_in_window(8));
  EXPECT_TRUE(t.hour_in_window(12));
  EXPECT_TRUE(t.hour_in_window(18));
  EXPECT_FALSE(t.hour_in_window(7));
  EXPECT_FALSE(t.hour_in_window(19));
}

TEST(PolicyTerm, HourWindowWrapsMidnight) {
  PolicyTerm t = open_transit_term(AdId{5});
  t.hour_begin = 22;
  t.hour_end = 4;
  EXPECT_TRUE(t.hour_in_window(23));
  EXPECT_TRUE(t.hour_in_window(0));
  EXPECT_TRUE(t.hour_in_window(4));
  EXPECT_FALSE(t.hour_in_window(12));
}

TEST(TrafficClass, IndexBijective) {
  std::vector<bool> seen(TrafficClass::kIndexCount, false);
  for (std::uint8_t q = 0; q < kQosCount; ++q) {
    for (std::uint8_t u = 0; u < kUserClassCount; ++u) {
      for (std::uint8_t h = 0; h < 24; ++h) {
        TrafficClass tc{static_cast<Qos>(q), static_cast<UserClass>(u), h};
        ASSERT_LT(tc.index(), TrafficClass::kIndexCount);
        EXPECT_FALSE(seen[tc.index()]);
        seen[tc.index()] = true;
      }
    }
  }
}

class PolicySetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fig_ = build_figure1();
    policies_ = make_open_policies(fig_.topo);
  }
  Figure1 fig_;
  PolicySet policies_;
};

TEST_F(PolicySetTest, OpenPoliciesGiveTransitsTerms) {
  EXPECT_FALSE(policies_.terms(fig_.backbone_west).empty());
  EXPECT_FALSE(policies_.terms(fig_.regional[0]).empty());
  EXPECT_TRUE(policies_.terms(fig_.campus[0]).empty());       // stub
  EXPECT_TRUE(policies_.terms(fig_.multihomed).empty());      // multihomed
  EXPECT_FALSE(policies_.terms(fig_.bypass_campus).empty());  // hybrid
}

TEST_F(PolicySetTest, HierarchicalPathIsLegal) {
  // campus0 -> Reg-0 -> BB-West -> BB-East -> Reg-3 -> campus6
  FlowSpec flow{fig_.campus[0], fig_.campus[6]};
  const std::vector<AdId> path{fig_.campus[0],  fig_.regional[0],
                               fig_.backbone_west, fig_.backbone_east,
                               fig_.regional[3], fig_.campus[6]};
  EXPECT_TRUE(policies_.path_is_legal(fig_.topo, flow, path));
}

TEST_F(PolicySetTest, PathThroughStubIsIllegal) {
  // Attempting to transit the multi-homed campus between its two
  // regionals must be rejected: stubs carry no transit (paper §2.1).
  FlowSpec flow{fig_.campus[2], fig_.campus[4]};
  const std::vector<AdId> path{fig_.campus[2], fig_.regional[1],
                               fig_.multihomed, fig_.regional[2],
                               fig_.campus[4]};
  EXPECT_FALSE(policies_.path_is_legal(fig_.topo, flow, path));
}

TEST_F(PolicySetTest, LoopIsIllegal) {
  FlowSpec flow{fig_.campus[0], fig_.campus[1]};
  const std::vector<AdId> path{fig_.campus[0], fig_.regional[0],
                               fig_.backbone_west, fig_.regional[0],
                               fig_.campus[1]};
  EXPECT_FALSE(policies_.path_is_legal(fig_.topo, flow, path));
}

TEST_F(PolicySetTest, DisconnectedPathIsIllegal) {
  FlowSpec flow{fig_.campus[0], fig_.campus[7]};
  // campus0 and campus7 are not adjacent.
  const std::vector<AdId> path{fig_.campus[0], fig_.campus[7]};
  EXPECT_FALSE(policies_.path_is_legal(fig_.topo, flow, path));
}

TEST_F(PolicySetTest, DownLinkBreaksLegality) {
  FlowSpec flow{fig_.campus[0], fig_.campus[2]};
  const std::vector<AdId> path{fig_.campus[0], fig_.regional[0],
                               fig_.backbone_west, fig_.regional[1],
                               fig_.campus[2]};
  ASSERT_TRUE(policies_.path_is_legal(fig_.topo, flow, path));
  fig_.topo.set_link_up(
      *fig_.topo.find_link(fig_.backbone_west, fig_.regional[1]), false);
  EXPECT_FALSE(policies_.path_is_legal(fig_.topo, flow, path));
}

TEST_F(PolicySetTest, SourceAvoidListEnforced) {
  FlowSpec flow{fig_.campus[0], fig_.campus[2]};
  const std::vector<AdId> path{fig_.campus[0], fig_.regional[0],
                               fig_.backbone_west, fig_.regional[1],
                               fig_.campus[2]};
  ASSERT_TRUE(policies_.path_is_legal(fig_.topo, flow, path));
  policies_.source_policy(fig_.campus[0]).avoid.push_back(
      fig_.backbone_west);
  EXPECT_FALSE(policies_.path_is_legal(fig_.topo, flow, path));
}

TEST_F(PolicySetTest, MaxHopsEnforced) {
  FlowSpec flow{fig_.campus[0], fig_.campus[6]};
  const std::vector<AdId> path{fig_.campus[0],  fig_.regional[0],
                               fig_.backbone_west, fig_.backbone_east,
                               fig_.regional[3], fig_.campus[6]};
  ASSERT_TRUE(policies_.path_is_legal(fig_.topo, flow, path));
  policies_.source_policy(fig_.campus[0]).max_hops = 4;
  EXPECT_FALSE(policies_.path_is_legal(fig_.topo, flow, path));
}

TEST_F(PolicySetTest, PathCostSumsLinksAndTerms) {
  FlowSpec flow{fig_.campus[0], fig_.campus[1]};
  const std::vector<AdId> path{fig_.campus[0], fig_.regional[0],
                               fig_.campus[1]};
  const auto cost = policies_.path_cost(fig_.topo, flow, path);
  ASSERT_TRUE(cost.has_value());
  // Two links with metric 1 + one open term with cost 1.
  EXPECT_EQ(*cost, 3u);
}

TEST_F(PolicySetTest, TermIdCollisionGetsFreshId) {
  PolicyTerm t1 = open_transit_term(fig_.backbone_west, 0);
  PolicyTerm t2 = open_transit_term(fig_.backbone_west, 0);
  PolicySet p(fig_.topo.ad_count());
  p.add_term(t1);
  p.add_term(t2);
  const auto terms = p.terms(fig_.backbone_west);
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_NE(terms[0].id, terms[1].id);
}

TEST(PolicyGenerators, ProviderCustomerConeRestriction) {
  const Figure1 fig = build_figure1();
  const PolicySet policies = make_provider_customer_policies(fig.topo);
  // A regional must carry flows from its cone...
  FlowSpec own{fig.campus[0], fig.campus[6]};
  EXPECT_TRUE(policies.ad_permits_transit(fig.topo, fig.regional[0], own,
                                          fig.campus[0],
                                          fig.backbone_west));
  // ...but not unrelated transit between other regionals' customers.
  FlowSpec foreign{fig.campus[4], fig.campus[6]};
  EXPECT_FALSE(policies.ad_permits_transit(fig.topo, fig.regional[0],
                                           foreign, fig.backbone_west,
                                           fig.campus[0]));
  // Backbones carry everything.
  EXPECT_TRUE(policies.ad_permits_transit(fig.topo, fig.backbone_west,
                                          foreign, fig.regional[0],
                                          fig.backbone_east));
}

TEST(PolicyGenerators, CustomerConeContents) {
  const Figure1 fig = build_figure1();
  const auto cone = customer_cone(fig.topo, fig.regional[0]);
  EXPECT_TRUE(std::binary_search(cone.begin(), cone.end(), fig.campus[0]));
  EXPECT_TRUE(std::binary_search(cone.begin(), cone.end(), fig.campus[1]));
  EXPECT_FALSE(std::binary_search(cone.begin(), cone.end(), fig.campus[4]));
  EXPECT_FALSE(
      std::binary_search(cone.begin(), cone.end(), fig.backbone_west));
}

TEST(PolicyGenerators, AupRestrictsBackboneToResearch) {
  const Figure1 fig = build_figure1();
  PolicySet policies = make_open_policies(fig.topo);
  apply_aup(policies, fig.backbone_west);
  FlowSpec research{fig.campus[0], fig.campus[6], Qos::kDefault,
                    UserClass::kResearch, 12};
  FlowSpec commercial{fig.campus[0], fig.campus[6], Qos::kDefault,
                      UserClass::kCommercial, 12};
  EXPECT_TRUE(policies.ad_permits_transit(fig.topo, fig.backbone_west,
                                          research, fig.regional[0],
                                          fig.backbone_east));
  EXPECT_FALSE(policies.ad_permits_transit(fig.topo, fig.backbone_west,
                                           commercial, fig.regional[0],
                                           fig.backbone_east));
}

TEST(PolicyGenerators, RestrictedPoliciesDeterministic) {
  const Figure1 fig = build_figure1();
  const PolicySet base = make_provider_customer_policies(fig.topo);
  RestrictionParams params;
  Prng p1(3), p2(3);
  const PolicySet a = make_restricted_policies(fig.topo, base, params, p1);
  const PolicySet b = make_restricted_policies(fig.topo, base, params, p2);
  EXPECT_EQ(a.total_terms(), b.total_terms());
}

TEST(PolicyGenerators, HybridLimitedTransit) {
  const Figure1 fig = build_figure1();
  const PolicySet policies = make_open_policies(fig.topo);
  // The bypass campus (hybrid) carries flows destined to its neighbor
  // backbone but not arbitrary transit.
  FlowSpec to_neighbor{fig.campus[6], fig.backbone_east};
  EXPECT_TRUE(policies.ad_permits_transit(fig.topo, fig.bypass_campus,
                                          to_neighbor, fig.regional[3],
                                          fig.backbone_east));
  FlowSpec unrelated{fig.campus[0], fig.campus[4]};
  EXPECT_FALSE(policies.ad_permits_transit(fig.topo, fig.bypass_campus,
                                           unrelated, fig.regional[3],
                                           fig.backbone_east));
}

TEST(PolicyGenerators, SourceAvoidanceAddsEntries) {
  const Figure1 fig = build_figure1();
  PolicySet policies = make_open_policies(fig.topo);
  Prng prng(4);
  add_source_avoidance(fig.topo, policies, 1.0, prng);
  std::size_t with_avoid = 0;
  for (const Ad& ad : fig.topo.ads()) {
    if (!policies.source_policy(ad.id).avoid.empty()) ++with_avoid;
  }
  EXPECT_GT(with_avoid, 0u);
}

}  // namespace
}  // namespace idr
