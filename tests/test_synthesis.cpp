#include <gtest/gtest.h>

#include "core/oracle.hpp"
#include "core/synthesis.hpp"
#include "policy/generator.hpp"
#include "topology/generator.hpp"
#include "topology/figure1.hpp"
#include "util/prng.hpp"

namespace idr {
namespace {

class SynthesisTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fig_ = build_figure1();
    policies_ = make_open_policies(fig_.topo);
  }
  Figure1 fig_;
  PolicySet policies_;
};

TEST_F(SynthesisTest, FindsHierarchicalRoute) {
  GroundTruthView view(fig_.topo, policies_);
  FlowSpec flow{fig_.campus[0], fig_.campus[6]};
  const SynthesisResult result = synthesize_route(view, flow);
  ASSERT_TRUE(result.found());
  EXPECT_EQ(result.outcome, SynthesisOutcome::kFound);
  EXPECT_EQ(result.path.front(), flow.src);
  EXPECT_EQ(result.path.back(), flow.dst);
  EXPECT_TRUE(policies_.path_is_legal(fig_.topo, flow, result.path));
}

TEST_F(SynthesisTest, AdjacentAdsRouteDirectly) {
  GroundTruthView view(fig_.topo, policies_);
  // campus1 and campus2 share a lateral link.
  FlowSpec flow{fig_.campus[1], fig_.campus[2]};
  const SynthesisResult result = synthesize_route(view, flow);
  ASSERT_TRUE(result.found());
  EXPECT_EQ(result.path.size(), 2u);
}

TEST_F(SynthesisTest, RefusesTransitThroughStub) {
  GroundTruthView view(fig_.topo, policies_);
  // Any route between campuses must go via transit ADs, never through
  // the multi-homed stub even where it would be shorter.
  FlowSpec flow{fig_.campus[2], fig_.campus[5]};
  const SynthesisResult result = synthesize_route(view, flow);
  ASSERT_TRUE(result.found());
  for (std::size_t i = 1; i + 1 < result.path.size(); ++i) {
    EXPECT_TRUE(fig_.topo.can_transit(result.path[i]));
  }
}

TEST_F(SynthesisTest, NoRouteWhenPolicyBlocksEverything) {
  // Strip all transit terms: only adjacent pairs can communicate.
  PolicySet empty(fig_.topo.ad_count());
  GroundTruthView view(fig_.topo, empty);
  FlowSpec far{fig_.campus[0], fig_.campus[6]};
  EXPECT_EQ(synthesize_route(view, far).outcome, SynthesisOutcome::kNoRoute);
  FlowSpec adjacent{fig_.campus[1], fig_.campus[2]};
  EXPECT_TRUE(synthesize_route(view, adjacent).found());
}

TEST_F(SynthesisTest, AvoidListRespected) {
  GroundTruthView view(fig_.topo, policies_);
  FlowSpec flow{fig_.campus[0], fig_.campus[2]};
  SynthesisOptions options;
  const SynthesisResult direct = synthesize_route(view, flow, options);
  ASSERT_TRUE(direct.found());
  // Forbid the first transit AD of the direct route; a detour must be
  // found or none at all -- never a path through the avoided AD.
  options.avoid = {direct.path[1]};
  const SynthesisResult detour = synthesize_route(view, flow, options);
  if (detour.found()) {
    for (AdId ad : detour.path) EXPECT_NE(ad, direct.path[1]);
  }
}

TEST_F(SynthesisTest, HopLimitRespected) {
  GroundTruthView view(fig_.topo, policies_);
  FlowSpec flow{fig_.campus[0], fig_.campus[6]};
  SynthesisOptions options;
  options.max_hops = 3;  // the real route needs 6 ADs
  EXPECT_FALSE(synthesize_route(view, flow, options).found());
}

TEST_F(SynthesisTest, MinimizeCostFindsCheapest) {
  // Give the lateral regional link's owner a cheap term and verify the
  // search prefers a valid cheaper path over a shorter expensive one.
  GroundTruthView view(fig_.topo, policies_);
  FlowSpec flow{fig_.campus[2], fig_.campus[4]};
  const SynthesisResult result = synthesize_route(view, flow);
  ASSERT_TRUE(result.found());
  const auto ground_cost = policies_.path_cost(fig_.topo, flow, result.path);
  ASSERT_TRUE(ground_cost.has_value());
  EXPECT_EQ(result.cost, *ground_cost);
}

TEST_F(SynthesisTest, BudgetExhaustionReportsUnknown) {
  GroundTruthView view(fig_.topo, policies_);
  FlowSpec flow{fig_.campus[0], fig_.campus[6]};
  SynthesisOptions options;
  options.expansion_budget = 1;
  const SynthesisResult result = synthesize_route(view, flow, options);
  EXPECT_EQ(result.outcome, SynthesisOutcome::kBudget);
}

TEST_F(SynthesisTest, FirstFoundStopsEarly) {
  GroundTruthView view(fig_.topo, policies_);
  FlowSpec flow{fig_.campus[0], fig_.campus[6]};
  SynthesisOptions all, first;
  first.first_found = true;
  const SynthesisResult exhaustive = synthesize_route(view, flow, all);
  const SynthesisResult quick = synthesize_route(view, flow, first);
  ASSERT_TRUE(exhaustive.found());
  ASSERT_TRUE(quick.found());
  EXPECT_LE(quick.expansions, exhaustive.expansions);
}

TEST_F(SynthesisTest, PrevNextConstraintsHonored) {
  // Constrain BB-East to accept traffic only from BB-West: a route from
  // Reg-3's customers out through BB-East must then arrive via BB-West.
  PolicySet constrained(fig_.topo.ad_count());
  for (const Ad& ad : fig_.topo.ads()) {
    for (const PolicyTerm& t : policies_.terms(ad.id)) constrained.add_term(t);
  }
  constrained.clear_terms(fig_.backbone_east);
  PolicyTerm t = open_transit_term(fig_.backbone_east);
  t.prev_hops = AdSet::of({fig_.backbone_west});
  constrained.add_term(t);
  GroundTruthView view(fig_.topo, constrained);
  FlowSpec flow{fig_.campus[4], fig_.campus[6]};  // under Reg-2 -> Reg-3
  const SynthesisResult result = synthesize_route(view, flow);
  if (result.found()) {
    for (std::size_t i = 1; i + 1 < result.path.size(); ++i) {
      if (result.path[i] == fig_.backbone_east) {
        EXPECT_EQ(result.path[i - 1], fig_.backbone_west);
      }
    }
  }
}

TEST_F(SynthesisTest, DistancesToComputesBfs) {
  GroundTruthView view(fig_.topo, policies_);
  const auto dist = distances_to(view, fig_.backbone_west);
  EXPECT_EQ(dist[fig_.backbone_west.v], 0u);
  EXPECT_EQ(dist[fig_.backbone_east.v], 1u);
  EXPECT_EQ(dist[fig_.regional[0].v], 1u);
  EXPECT_EQ(dist[fig_.campus[0].v], 2u);
}

TEST_F(SynthesisTest, SrcEqualsDstYieldsNothing) {
  GroundTruthView view(fig_.topo, policies_);
  FlowSpec flow{fig_.campus[0], fig_.campus[0]};
  EXPECT_FALSE(synthesize_route(view, flow).found());
}

class OracleTest : public SynthesisTest {};

TEST_F(OracleTest, ExistsMatchesBestRoute) {
  const Oracle oracle(fig_.topo, policies_);
  FlowSpec flow{fig_.campus[0], fig_.campus[7]};
  EXPECT_EQ(oracle.exists(flow), RouteExistence::kExists);
  const SynthesisResult best = oracle.best_route(flow);
  ASSERT_TRUE(best.found());
  EXPECT_TRUE(oracle.is_legal(flow, best.path));
}

TEST_F(OracleTest, HonorsSourcePolicy) {
  policies_.source_policy(fig_.campus[0]).avoid.push_back(
      fig_.backbone_west);
  const Oracle oracle(fig_.topo, policies_);
  FlowSpec flow{fig_.campus[0], fig_.campus[6]};
  const SynthesisResult best = oracle.best_route(flow);
  if (best.found()) {
    for (AdId ad : best.path) EXPECT_NE(ad, fig_.backbone_west);
  }
}

TEST_F(OracleTest, ReportsNoneWhenPartitioned) {
  // Cut every link of campus 0.
  for (const Adjacency& adj : fig_.topo.neighbors(fig_.campus[0])) {
    fig_.topo.set_link_up(adj.link, false);
  }
  const Oracle oracle(fig_.topo, policies_);
  FlowSpec flow{fig_.campus[0], fig_.campus[6]};
  EXPECT_EQ(oracle.exists(flow), RouteExistence::kNone);
}

// Property check: on random topologies with restricted policies, every
// route the oracle returns must be legal per the independent
// PolicySet::path_is_legal predicate.
TEST(OracleProperty, BestRoutesAlwaysLegal) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    Prng prng(seed);
    const Topology topo = generate_topology_of_size(48, prng);
    const PolicySet base = make_provider_customer_policies(topo);
    RestrictionParams params;
    params.restrict_prob = 0.5;
    params.source_selectivity = 0.4;
    const PolicySet policies =
        make_restricted_policies(topo, base, params, prng);
    const Oracle oracle(topo, policies);
    for (int trial = 0; trial < 20; ++trial) {
      FlowSpec flow;
      flow.src = AdId{static_cast<std::uint32_t>(prng.below(topo.ad_count()))};
      flow.dst = AdId{static_cast<std::uint32_t>(prng.below(topo.ad_count()))};
      if (flow.src == flow.dst) continue;
      flow.uci = static_cast<UserClass>(prng.below(kUserClassCount));
      const SynthesisResult best = oracle.best_route(flow);
      if (best.found()) {
        EXPECT_TRUE(policies.path_is_legal(topo, flow, best.path))
            << "seed " << seed << " trial " << trial;
      }
    }
  }
}

}  // namespace
}  // namespace idr
