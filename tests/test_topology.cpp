#include <gtest/gtest.h>

#include <algorithm>

#include "topology/algos.hpp"
#include "topology/figure1.hpp"
#include "topology/generator.hpp"
#include "topology/graph.hpp"
#include "util/prng.hpp"

namespace idr {
namespace {

Topology line(int n) {
  Topology t;
  std::vector<AdId> ids;
  for (int i = 0; i < n; ++i) {
    ids.push_back(t.add_ad(AdClass::kCampus, AdRole::kTransit));
  }
  for (int i = 1; i < n; ++i) {
    t.add_link(ids[i - 1], ids[i], LinkClass::kHierarchical);
  }
  return t;
}

TEST(Graph, AddAndLookup) {
  Topology t;
  const AdId a = t.add_ad(AdClass::kBackbone, AdRole::kTransit, "A");
  const AdId b = t.add_ad(AdClass::kCampus, AdRole::kStub);
  EXPECT_EQ(t.ad_count(), 2u);
  EXPECT_EQ(t.ad(a).name, "A");
  EXPECT_FALSE(t.ad(b).name.empty());  // auto-generated name
  const LinkId l = t.add_link(a, b, LinkClass::kBypass, 5.0, 3);
  EXPECT_EQ(t.link_count(), 1u);
  EXPECT_EQ(t.link(l).cls, LinkClass::kBypass);
  EXPECT_EQ(t.link(l).metric, 3u);
  EXPECT_EQ(t.peer(l, a), b);
  EXPECT_EQ(t.peer(l, b), a);
}

TEST(Graph, FindLinkIsSymmetric) {
  Topology t = line(3);
  EXPECT_TRUE(t.find_link(AdId{0}, AdId{1}).has_value());
  EXPECT_TRUE(t.find_link(AdId{1}, AdId{0}).has_value());
  EXPECT_FALSE(t.find_link(AdId{0}, AdId{2}).has_value());
}

TEST(Graph, LinkStateToggle) {
  Topology t = line(2);
  const LinkId l = *t.find_link(AdId{0}, AdId{1});
  EXPECT_TRUE(t.link(l).up);
  t.set_link_up(l, false);
  EXPECT_FALSE(t.link(l).up);
  EXPECT_TRUE(t.live_neighbors(AdId{0}).empty());
  EXPECT_EQ(t.neighbors(AdId{0}).size(), 1u);  // adjacency persists
}

TEST(Graph, RoleTransitPredicate) {
  Topology t;
  const AdId stub = t.add_ad(AdClass::kCampus, AdRole::kStub);
  const AdId mh = t.add_ad(AdClass::kCampus, AdRole::kMultiHomed);
  const AdId transit = t.add_ad(AdClass::kRegional, AdRole::kTransit);
  const AdId hybrid = t.add_ad(AdClass::kCampus, AdRole::kHybrid);
  EXPECT_FALSE(t.can_transit(stub));
  EXPECT_FALSE(t.can_transit(mh));
  EXPECT_TRUE(t.can_transit(transit));
  EXPECT_TRUE(t.can_transit(hybrid));
}

TEST(Algos, ConnectedComponents) {
  Topology t = line(4);
  EXPECT_TRUE(is_connected(t));
  t.set_link_up(*t.find_link(AdId{1}, AdId{2}), false);
  const Components c = connected_components(t);
  EXPECT_EQ(c.count, 2u);
  EXPECT_EQ(c.component_of[0], c.component_of[1]);
  EXPECT_EQ(c.component_of[2], c.component_of[3]);
  EXPECT_NE(c.component_of[0], c.component_of[2]);
}

TEST(Algos, CycleDetection) {
  Topology t = line(3);
  EXPECT_FALSE(has_cycle(t));
  t.add_link(AdId{0}, AdId{2}, LinkClass::kLateral);
  EXPECT_TRUE(has_cycle(t));
}

TEST(Algos, CycleIgnoresDownLinks) {
  Topology t = line(3);
  const LinkId l = t.add_link(AdId{0}, AdId{2}, LinkClass::kLateral);
  t.set_link_up(l, false);
  EXPECT_FALSE(has_cycle(t));
}

TEST(Algos, ShortestPathHops) {
  Topology t = line(5);
  const auto path = shortest_path_hops(t, AdId{0}, AdId{4});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 5u);
  EXPECT_EQ(path->front(), AdId{0});
  EXPECT_EQ(path->back(), AdId{4});
}

TEST(Algos, ShortestPathUnreachable) {
  Topology t = line(4);
  t.set_link_up(*t.find_link(AdId{1}, AdId{2}), false);
  EXPECT_FALSE(shortest_path_hops(t, AdId{0}, AdId{3}).has_value());
}

TEST(Algos, ShortestPathPrefersShortcut) {
  Topology t = line(5);
  t.add_link(AdId{0}, AdId{3}, LinkClass::kBypass);
  const auto path = shortest_path_hops(t, AdId{0}, AdId{4});
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 3u);  // 0 -> 3 -> 4
}

TEST(Algos, MetricPathUsesWeights) {
  Topology t;
  const AdId a = t.add_ad(AdClass::kCampus, AdRole::kTransit);
  const AdId b = t.add_ad(AdClass::kCampus, AdRole::kTransit);
  const AdId c = t.add_ad(AdClass::kCampus, AdRole::kTransit);
  t.add_link(a, b, LinkClass::kHierarchical, 1.0, 10);
  t.add_link(b, c, LinkClass::kHierarchical, 1.0, 10);
  t.add_link(a, c, LinkClass::kHierarchical, 1.0, 50);
  const auto direct = shortest_path_metric(t, a, c);
  ASSERT_TRUE(direct.has_value());
  EXPECT_EQ(direct->cost, 20u);  // via b, not the cost-50 direct link
  EXPECT_EQ(direct->path.size(), 3u);
}

TEST(Algos, HopDistances) {
  Topology t = line(4);
  const auto dist = hop_distances(t, AdId{0});
  EXPECT_EQ(dist[0], 0u);
  EXPECT_EQ(dist[3], 3u);
}

TEST(Algos, EdgeDisjointPaths) {
  Topology t = line(4);
  EXPECT_EQ(edge_disjoint_paths(t, AdId{0}, AdId{3}), 1u);
  t.add_link(AdId{0}, AdId{3}, LinkClass::kBypass);
  EXPECT_EQ(edge_disjoint_paths(t, AdId{0}, AdId{3}), 2u);
}

TEST(Algos, LoopFreePredicate) {
  EXPECT_TRUE(is_loop_free({AdId{1}, AdId{2}, AdId{3}}));
  EXPECT_FALSE(is_loop_free({AdId{1}, AdId{2}, AdId{1}}));
  EXPECT_TRUE(is_loop_free({}));
}

TEST(Figure1, MatchesPaperStructure) {
  const Figure1 fig = build_figure1();
  const Topology& t = fig.topo;
  EXPECT_EQ(t.count_ads(AdClass::kBackbone), 2u);
  EXPECT_EQ(t.count_ads(AdClass::kRegional), 4u);
  EXPECT_EQ(t.count_ads(AdClass::kCampus), 10u);
  EXPECT_GE(t.count_links(LinkClass::kLateral), 2u);
  EXPECT_GE(t.count_links(LinkClass::kBypass), 1u);
  EXPECT_TRUE(is_connected(t));
  // The paper stresses that realistic inter-AD topologies contain cycles
  // (which rules out EGP).
  EXPECT_TRUE(has_cycle(t));
  // The multi-homed campus connects to two regionals.
  EXPECT_EQ(t.neighbors(fig.multihomed).size(), 2u);
  EXPECT_EQ(t.ad(fig.multihomed).role, AdRole::kMultiHomed);
}

TEST(Figure1, BypassShortensPath) {
  const Figure1 fig = build_figure1();
  // The bypass campus reaches the east backbone directly.
  const auto path =
      shortest_path_hops(fig.topo, fig.bypass_campus, fig.backbone_east);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 2u);
}

TEST(Generator, DeterministicForSeed) {
  GeneratorParams params;
  Prng p1(77), p2(77);
  const Topology a = generate_topology(params, p1);
  const Topology b = generate_topology(params, p2);
  ASSERT_EQ(a.ad_count(), b.ad_count());
  ASSERT_EQ(a.link_count(), b.link_count());
  for (std::size_t i = 0; i < a.link_count(); ++i) {
    EXPECT_EQ(a.links()[i].a, b.links()[i].a);
    EXPECT_EQ(a.links()[i].b, b.links()[i].b);
  }
}

TEST(Generator, ProducesConnectedHierarchy) {
  Prng prng(5);
  GeneratorParams params;
  params.backbones = 3;
  params.regionals_per_backbone = 3;
  params.campuses_per_parent = 5;
  const Topology t = generate_topology(params, prng);
  EXPECT_TRUE(is_connected(t));
  EXPECT_EQ(t.count_ads(AdClass::kBackbone), 3u);
  EXPECT_EQ(t.count_ads(AdClass::kRegional), 9u);
  EXPECT_EQ(t.count_ads(AdClass::kCampus), 45u);
}

TEST(Generator, MetroLevelOptional) {
  Prng prng(6);
  GeneratorParams params;
  params.metros_per_regional = 2;
  const Topology t = generate_topology(params, prng);
  EXPECT_EQ(t.count_ads(AdClass::kMetro),
            params.backbones * params.regionals_per_backbone * 2);
  EXPECT_TRUE(is_connected(t));
}

TEST(Generator, SizeTargeting) {
  Prng prng(8);
  const Topology t = generate_topology_of_size(200, prng);
  EXPECT_GT(t.ad_count(), 120u);
  EXPECT_LT(t.ad_count(), 320u);
  EXPECT_TRUE(is_connected(t));
}

TEST(Generator, RolesAssigned) {
  Prng prng(9);
  GeneratorParams params;
  params.multihome_prob = 0.5;
  params.hybrid_prob = 0.2;
  const Topology t = generate_topology(params, prng);
  EXPECT_GT(t.count_ads(AdRole::kMultiHomed), 0u);
  EXPECT_GT(t.count_ads(AdRole::kStub), 0u);
  EXPECT_GT(t.count_ads(AdRole::kTransit), 0u);
}

TEST(Generator, DegreeStatsSane) {
  Prng prng(10);
  const Topology t = generate_topology_of_size(100, prng);
  const DegreeStats stats = degree_stats(t);
  EXPECT_GE(stats.min, 1u);
  EXPECT_GT(stats.mean, 1.0);
  EXPECT_GE(stats.max, stats.min);
}

}  // namespace
}  // namespace idr
