#include <gtest/gtest.h>

#include "core/impact.hpp"
#include "core/scenario.hpp"
#include "policy/generator.hpp"
#include "topology/dot.hpp"
#include "topology/figure1.hpp"

namespace idr {
namespace {

class ImpactTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fig_ = build_figure1();
    policies_ = make_open_policies(fig_.topo);
    // A representative flow sample across the figure.
    for (int s : {0, 1, 2, 3}) {
      for (int d : {4, 5, 6, 7}) {
        flows_.push_back(FlowSpec{fig_.campus[s], fig_.campus[d]});
      }
    }
  }
  Figure1 fig_;
  PolicySet policies_;
  std::vector<FlowSpec> flows_;
};

TEST_F(ImpactTest, NoOpChangeHasNoImpact) {
  const auto current = policies_.terms(fig_.backbone_west);
  const std::vector<PolicyTerm> same(current.begin(), current.end());
  const ImpactReport report = analyze_policy_change(
      fig_.topo, policies_, fig_.backbone_west, same, flows_);
  EXPECT_EQ(report.lost_route, 0u);
  EXPECT_EQ(report.gained_route, 0u);
  EXPECT_EQ(report.cost_increased, 0u);
  EXPECT_EQ(report.cost_decreased, 0u);
  EXPECT_EQ(report.transit_before, report.transit_after);
}

TEST_F(ImpactTest, WithdrawingAllTransitLosesRoutes) {
  const ImpactReport report = analyze_policy_change(
      fig_.topo, policies_, fig_.backbone_west, {}, flows_);
  // All west-to-east flows lose their only legal route (Reg-0/Reg-1's
  // campuses are stranded behind BB-West)... except those with the
  // Reg-1 > Reg-2 lateral escape.
  EXPECT_GT(report.lost_route, 0u);
  EXPECT_EQ(report.gained_route, 0u);
  EXPECT_EQ(report.transit_after, 0u);
  EXPECT_GT(report.transit_before, 0u);
}

TEST_F(ImpactTest, RaisingCostShiftsTraffic) {
  // BB-West raises its price to 50: flows with a lateral alternative
  // divert; the rest pay more.
  std::vector<PolicyTerm> pricey{open_transit_term(fig_.backbone_west, 0,
                                                   /*cost=*/50)};
  const ImpactReport report = analyze_policy_change(
      fig_.topo, policies_, fig_.backbone_west, pricey, flows_);
  EXPECT_EQ(report.lost_route, 0u);
  EXPECT_GT(report.cost_increased, 0u);
  EXPECT_LE(report.transit_after, report.transit_before);
}

TEST_F(ImpactTest, AupChangeStrandsOnlyAffectedClass) {
  // The flow sample is research-class; an AUP restricted to research
  // must not strand any of it.
  PolicyTerm aup = open_transit_term(fig_.backbone_west);
  aup.uci_mask = uci_bit(UserClass::kResearch);
  const ImpactReport research_report = analyze_policy_change(
      fig_.topo, policies_, fig_.backbone_west, {&aup, 1}, flows_);
  EXPECT_EQ(research_report.lost_route, 0u);

  // Commercial-class flows behind BB-West are stranded by the same
  // change.
  std::vector<FlowSpec> commercial = flows_;
  for (FlowSpec& flow : commercial) flow.uci = UserClass::kCommercial;
  const ImpactReport commercial_report = analyze_policy_change(
      fig_.topo, policies_, fig_.backbone_west, {&aup, 1}, commercial);
  EXPECT_GT(commercial_report.lost_route, 0u);
}

TEST_F(ImpactTest, OpeningTransitGainsRoutes) {
  // Start from a world where BB-East carries nothing, then open it.
  PolicySet restricted(fig_.topo.ad_count());
  for (const Ad& ad : fig_.topo.ads()) {
    if (ad.id == fig_.backbone_east) continue;
    for (const PolicyTerm& t : policies_.terms(ad.id)) {
      restricted.add_term(t);
    }
  }
  std::vector<PolicyTerm> open{open_transit_term(fig_.backbone_east)};
  const ImpactReport report = analyze_policy_change(
      fig_.topo, restricted, fig_.backbone_east, open, flows_);
  EXPECT_GT(report.gained_route, 0u);
  EXPECT_EQ(report.lost_route, 0u);
}

TEST_F(ImpactTest, SummaryMentionsTheAd) {
  const ImpactReport report = analyze_policy_change(
      fig_.topo, policies_, fig_.backbone_west, {}, flows_);
  const std::string text = report.summary(fig_.topo);
  EXPECT_NE(text.find("BB-West"), std::string::npos);
  EXPECT_NE(text.find("routes lost"), std::string::npos);
}

TEST_F(ImpactTest, DetailsCoverEveryFlow) {
  const ImpactReport report = analyze_policy_change(
      fig_.topo, policies_, fig_.backbone_west, {}, flows_);
  ASSERT_EQ(report.details.size(), flows_.size());
  for (std::size_t i = 0; i < flows_.size(); ++i) {
    EXPECT_EQ(report.details[i].flow, flows_[i]);
  }
}

TEST(DotExport, ContainsNodesAndStyles) {
  const Figure1 fig = build_figure1();
  const std::string dot = to_dot(fig.topo);
  EXPECT_NE(dot.find("graph interad"), std::string::npos);
  EXPECT_NE(dot.find("BB-West"), std::string::npos);
  EXPECT_NE(dot.find("Campus-MH"), std::string::npos);
  EXPECT_NE(dot.find("style=dotted color=blue"), std::string::npos);   // lateral
  EXPECT_NE(dot.find("style=bold color=darkgreen"), std::string::npos);  // bypass
}

TEST(DotExport, HighlightsPath) {
  const Figure1 fig = build_figure1();
  const std::vector<AdId> path{fig.campus[0], fig.regional[0],
                               fig.backbone_west};
  DotOptions options;
  options.highlight_path = path;
  const std::string dot = to_dot(fig.topo, options);
  EXPECT_NE(dot.find("penwidth=3"), std::string::npos);
}

TEST(DotExport, DownLinksDashed) {
  Figure1 fig = build_figure1();
  fig.topo.set_link_up(fig.bypass, false);
  const std::string dot = to_dot(fig.topo);
  EXPECT_NE(dot.find("style=dashed color=gray"), std::string::npos);
}

}  // namespace
}  // namespace idr
