// Chaos layer: crash/restart semantics, keepalive-based failure
// detection without the link-state oracle, invariant monitoring, and
// reliable transport under combined faults.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/chaos.hpp"
#include "policy/generator.hpp"
#include "proto/idrp/idrp_node.hpp"
#include "proto/orwg/orwg_node.hpp"
#include "sim/engine.hpp"
#include "sim/failure.hpp"
#include "sim/network.hpp"
#include "topology/figure1.hpp"
#include "transport/gbn.hpp"

namespace idr {
namespace {

// Walk IDRP FIBs hop by hop; nullopt if the walk black-holes or loops.
std::optional<std::vector<AdId>> idrp_walk(Network& net, const Topology& topo,
                                           AdId src, AdId dst) {
  FlowSpec flow;
  flow.src = src;
  flow.dst = dst;
  std::vector<AdId> path{src};
  std::vector<bool> seen(topo.ad_count(), false);
  seen[src.v] = true;
  AdId cur = src;
  while (cur != dst) {
    auto* node = static_cast<IdrpNode*>(net.node(cur));
    if (!node) return std::nullopt;
    const AdId prev = path.size() >= 2 ? path[path.size() - 2] : kNoAd;
    const auto next = node->forward(flow, prev);
    if (!next || seen[next->v]) return std::nullopt;
    seen[next->v] = true;
    path.push_back(*next);
    cur = *next;
  }
  return path;
}

TEST(Chaos, KeepaliveDetectsCrashAndRoutesReconverge) {
  // No link-state oracle at all: neighbor death must be inferred from
  // keepalive silence, rebirth from hearing the restarted node.
  Figure1 fig = build_figure1();
  const PolicySet policies = make_open_policies(fig.topo);
  Engine engine;
  Network net(engine, fig.topo);
  net.set_node_factory([&policies](AdId) -> std::unique_ptr<Node> {
    auto node = std::make_unique<IdrpNode>(&policies);
    node->set_periodic_refresh(200.0);
    return node;
  });
  for (const Ad& ad : fig.topo.ads()) {
    net.attach(ad.id, std::make_unique<IdrpNode>(&policies));
  }
  net.set_link_notifications(false);
  net.set_keepalive(KeepaliveConfig{.interval_ms = 20.0,
                                    .miss_threshold = 3});
  net.start_all();
  engine.run_until(500.0);

  // Converged: a campus under regional[2] reaches a campus under
  // regional[0].
  const AdId src = fig.campus[4];
  const AdId dst = fig.campus[0];
  ASSERT_TRUE(idrp_walk(net, fig.topo, src, dst).has_value());

  // regional[0] crashes; its campuses become genuinely unreachable.
  net.crash(fig.regional[0]);
  engine.run_until(1'500.0);
  auto* backbone =
      static_cast<IdrpNode*>(net.node(fig.backbone_west));
  ASSERT_NE(backbone, nullptr);
  EXPECT_FALSE(backbone->neighbor_alive(fig.regional[0]))
      << "hold timer should have expired from keepalive silence";
  FlowSpec flow;
  flow.src = fig.backbone_west;
  flow.dst = dst;
  EXPECT_FALSE(backbone->forward(flow).has_value())
      << "routes through the crashed AD must be withdrawn";

  // Cold restart: the backed-off probes revive the adjacency, full-table
  // exchanges rebuild its RIB, routes return.
  net.restart(fig.regional[0]);
  engine.run_until(3'000.0);
  EXPECT_TRUE(backbone->neighbor_alive(fig.regional[0]));
  EXPECT_TRUE(idrp_walk(net, fig.topo, src, dst).has_value())
      << "routes must reconverge after the cold restart";
}

TEST(Chaos, CrashedNodeLosesStateAndGenerationAdvances) {
  Figure1 fig = build_figure1();
  const PolicySet policies = make_open_policies(fig.topo);
  Engine engine;
  Network net(engine, fig.topo);
  net.set_node_factory([&policies](AdId) {
    return std::make_unique<IdrpNode>(&policies);
  });
  for (const Ad& ad : fig.topo.ads()) {
    net.attach(ad.id, std::make_unique<IdrpNode>(&policies));
  }
  net.start_all();
  engine.run();

  auto* before = static_cast<IdrpNode*>(net.node(fig.regional[1]));
  EXPECT_GT(before->loc_rib_routes(), 1u);
  const std::uint64_t gen = net.generation(fig.regional[1]);

  net.crash(fig.regional[1]);
  EXPECT_FALSE(net.alive(fig.regional[1]));
  EXPECT_EQ(net.node(fig.regional[1]), nullptr);
  EXPECT_EQ(net.generation(fig.regional[1]), gen + 1);
  EXPECT_EQ(net.crashes(), 1u);

  net.restart(fig.regional[1]);
  ASSERT_TRUE(net.alive(fig.regional[1]));
  auto* after = static_cast<IdrpNode*>(net.node(fig.regional[1]));
  // Cold start: the fresh node holds at most its own self-route (the
  // allocator may legally reuse the freed block, so compare state, not
  // addresses -- `before` is dangling).
  EXPECT_LE(after->loc_rib_routes(), 1u);
  engine.run();
  EXPECT_GT(after->loc_rib_routes(), 1u)
      << "cold-restarted node rebuilds its RIB from neighbor updates";
}

TEST(Chaos, FaultScheduleIsDeterministicInSeed) {
  auto one_run = [](std::uint64_t seed) {
    Figure1 fig = build_figure1();
    const PolicySet policies = make_open_policies(fig.topo);
    Engine engine;
    Network net(engine, fig.topo);
    for (const Ad& ad : fig.topo.ads()) {
      net.attach(ad.id, std::make_unique<IdrpNode>(&policies));
    }
    FaultConfig faults;
    faults.corrupt_rate = 0.05;
    faults.duplicate_rate = 0.05;
    faults.reorder_rate = 0.10;
    faults.corrupt_deliver_fraction = 0.5;
    net.set_faults(faults, seed);
    net.start_all();
    engine.run();
    return net.total();
  };
  const Counters x = one_run(11);
  const Counters y = one_run(11);
  const Counters z = one_run(12);
  EXPECT_EQ(x.msgs_delivered, y.msgs_delivered);
  EXPECT_EQ(x.msgs_corrupted, y.msgs_corrupted);
  EXPECT_EQ(x.msgs_duplicated, y.msgs_duplicated);
  EXPECT_EQ(x.msgs_reordered, y.msgs_reordered);
  EXPECT_EQ(x.malformed_dropped, y.malformed_dropped);
  EXPECT_GT(x.msgs_corrupted, 0u);
  EXPECT_GT(x.msgs_duplicated, 0u);
  EXPECT_NE(x.msgs_delivered, z.msgs_delivered);
}

TEST(Chaos, SoakAllDesignPointsCleanAndDeterministic) {
  // The acceptance run in miniature: every design point through the full
  // chaos schedule (crashes, corruption, duplication, reordering, no
  // oracle), zero persistent invariant violations, same seed => byte
  // identical counters.
  ChaosParams params;
  params.seed = 3;
  params.horizon_ms = 4'000.0;
  for (const std::string& arch : chaos_design_points()) {
    SCOPED_TRACE(arch);
    const ChaosResult first = run_chaos(arch, params);
    const ChaosResult second = run_chaos(arch, params);
    EXPECT_GT(first.invariants.sweeps, 0u);
    EXPECT_GT(first.invariants.probes, 0u);
    EXPECT_GT(first.node_crashes, 0u) << "schedule must crash somebody";
    EXPECT_GT(first.totals.msgs_corrupted, 0u);
    EXPECT_GT(first.totals.msgs_duplicated, 0u);
    EXPECT_GT(first.totals.msgs_reordered, 0u);
    EXPECT_EQ(first.invariants.persistent_violations(), 0u)
        << "loops=" << first.invariants.persistent_loops
        << " black holes=" << first.invariants.persistent_black_holes
        << " stale=" << first.invariants.persistent_stale_routes;
    EXPECT_EQ(first.counter_fingerprint, second.counter_fingerprint)
        << "chaos must be a pure function of the seed";
  }
}

TEST(Chaos, GbnDeliversInOrderUnderCombinedFaults) {
  // Go-Back-N over ORWG Policy Routes while the network loses, mangles,
  // duplicates and reorders frames and a mid-path link flaps: every
  // message arrives exactly once and in order, or the connection
  // honestly reports failed(). Never silent loss, never a duplicate
  // delivery.
  Figure1 fig = build_figure1();
  const PolicySet policies = make_open_policies(fig.topo);
  Engine engine;
  Network net(engine, fig.topo);
  std::vector<OrwgNode*> nodes;
  for (const Ad& ad : fig.topo.ads()) {
    auto node = std::make_unique<OrwgNode>(&policies);
    nodes.push_back(node.get());
    net.attach(ad.id, std::move(node));
  }
  net.start_all();
  engine.run();  // control plane converges loss-free

  transport::TransportHost sender(*nodes[fig.campus[0].v], engine);
  transport::TransportHost receiver(*nodes[fig.campus[6].v], engine);
  std::vector<std::string> delivered;
  receiver.connect(fig.campus[0])
      .set_message_handler([&](std::vector<std::uint8_t> msg) {
        delivered.emplace_back(msg.begin(), msg.end());
      });
  transport::Connection& conn = sender.connect(fig.campus[6]);
  conn.send({'w'});
  engine.run();
  ASSERT_EQ(delivered.size(), 1u);

  FaultConfig faults;
  faults.loss_rate = 0.10;
  faults.corrupt_rate = 0.10;  // checksum-dropped: behaves as extra loss
  faults.corrupt_deliver_fraction = 0.0;
  faults.duplicate_rate = 0.10;
  faults.reorder_rate = 0.25;
  faults.reorder_extra_ms = 4.0;
  net.set_faults(faults, 77);

  // A link on the PR path flaps twice mid-transfer.
  FailureInjector injector(net);
  const LinkId mid = *fig.topo.find_link(fig.regional[0], fig.backbone_west);
  injector.fail_link_at(mid, 50.0, 300.0);
  injector.fail_link_at(mid, 1'000.0, 200.0);

  const int kMessages = 40;
  for (int i = 0; i < kMessages; ++i) {
    conn.send({static_cast<std::uint8_t>('a' + (i % 26))});
  }
  engine.run();

  EXPECT_GT(net.total().msgs_corrupted, 0u);
  EXPECT_GT(net.total().msgs_duplicated, 0u);
  if (conn.failed()) {
    // Honest failure: whatever did arrive is an in-order prefix.
    EXPECT_LE(delivered.size(), 1u + kMessages);
  } else {
    ASSERT_EQ(delivered.size(), 1u + kMessages);
  }
  for (std::size_t i = 1; i < delivered.size(); ++i) {
    const char expected =
        static_cast<char>('a' + ((static_cast<int>(i) - 1) % 26));
    EXPECT_EQ(delivered[i], std::string(1, expected))
        << "out-of-order or duplicate delivery at index " << i;
  }
}

}  // namespace
}  // namespace idr
