// Partitioner unit tests: make_shard_plan must produce a total,
// deterministic assignment whose cross-shard edge set is exactly the
// boundary, whose lookahead is the true minimum cross-shard delay, and
// whose load balance stays within the LPT bound -- on real scale-profile
// hierarchies and on every degenerate shape (one shard, more shards than
// units, zero-delay links that would otherwise deadlock the window loop).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>
#include <set>
#include <vector>

#include "core/scale_profile.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "sim/shard.hpp"
#include "topology/graph.hpp"

namespace idr {
namespace {

// Every AD assigned exactly once, to a real shard.
void expect_total_assignment(const ShardPlan& plan, const Topology& topo) {
  ASSERT_EQ(plan.shard_of.size(), topo.ad_count());
  for (const std::uint32_t s : plan.shard_of) EXPECT_LT(s, plan.shards);
}

// cross_links is exactly the set of links whose endpoints differ in
// shard, and min_cross_delay_ms is the minimum over that set.
void expect_cross_links_exact(const ShardPlan& plan, const Topology& topo) {
  std::set<std::uint32_t> cross;
  for (const LinkId id : plan.cross_links) cross.insert(id.v);
  double min_delay = std::numeric_limits<double>::infinity();
  for (const Link& link : topo.links()) {
    const bool boundary =
        plan.shard_of_ad(link.a) != plan.shard_of_ad(link.b);
    EXPECT_EQ(cross.count(link.id.v), boundary ? 1u : 0u)
        << "link " << link.id.v << " misclassified";
    if (boundary) min_delay = std::min(min_delay, link.delay_ms);
  }
  EXPECT_EQ(plan.min_cross_delay_ms, min_delay);
}

TEST(ShardPartition, ScaleHierarchyIsTotalBalancedAndBoundaryExact) {
  const ScaleProfile profile = make_scale_profile(2'000, 7);
  for (const std::uint32_t shards : {2u, 4u, 8u}) {
    SCOPED_TRACE(shards);
    const ShardPlan plan = make_scale_shard_plan(profile, shards);
    EXPECT_EQ(plan.shards, shards);
    expect_total_assignment(plan, profile.topo);
    expect_cross_links_exact(plan, profile.topo);

    // LPT over hierarchy units: max shard at most 2x the mean (the
    // classic LPT guarantee is 4/3 - 1/(3m) for independent jobs; 2.0
    // leaves headroom for one oversized regional subtree).
    EXPECT_LE(plan.balance_factor(), 2.0);

    // The lookahead the windows run on is the full legal value here.
    EXPECT_GT(plan.lookahead_ms, 0.0);
    EXPECT_EQ(plan.lookahead_ms, plan.min_cross_delay_ms);
  }
}

TEST(ShardPartition, HierarchyGroupsKeepRegionalSubtreesWhole) {
  const ScaleProfile profile = make_scale_profile(2'000, 7);
  const ShardPlan plan = make_scale_shard_plan(profile, 8);
  // Every metro/campus AD rides with its hierarchical parent: the only
  // links allowed to cross a boundary are backbone-adjacent or lateral.
  for (const LinkId id : plan.cross_links) {
    const Link& link = profile.topo.links()[id.v];
    const AdClass deeper =
        std::max(profile.topo.ad(link.a).cls, profile.topo.ad(link.b).cls);
    if (link.cls == LinkClass::kHierarchical) {
      EXPECT_LE(deeper, AdClass::kRegional)
          << "hierarchical link below a regional AD crossed a boundary";
    }
  }
}

TEST(ShardPartition, AssignmentIsDeterministic) {
  const ScaleProfile profile = make_scale_profile(1'000, 3);
  const ShardPlan a = make_scale_shard_plan(profile, 4);
  const ShardPlan b = make_scale_shard_plan(profile, 4);
  EXPECT_EQ(a.shard_of, b.shard_of);
  EXPECT_EQ(a.lookahead_ms, b.lookahead_ms);
  EXPECT_EQ(a.shard_weight, b.shard_weight);
}

TEST(ShardPartition, SingleShardHasNoBoundary) {
  const ScaleProfile profile = make_scale_profile(500, 1);
  const ShardPlan plan = make_shard_plan(profile.topo, 1);
  expect_total_assignment(plan, profile.topo);
  EXPECT_TRUE(plan.cross_links.empty());
  EXPECT_EQ(plan.min_cross_delay_ms,
            std::numeric_limits<double>::infinity());
  for (const std::uint32_t s : plan.shard_of) EXPECT_EQ(s, 0u);
}

TEST(ShardPartition, MoreShardsThanUnitsLeavesTrailingShardsEmpty) {
  // Two regional subtrees under one backbone: three units at most, so a
  // 16-way request leaves most shards empty -- and the engine must still
  // run windows over them without deadlocking.
  Topology topo;
  const AdId bb = topo.add_ad(AdClass::kBackbone, AdRole::kTransit, "bb");
  for (int r = 0; r < 2; ++r) {
    const AdId reg = topo.add_ad(AdClass::kRegional, AdRole::kTransit);
    topo.add_link(bb, reg, LinkClass::kHierarchical, 10.0);
    for (int c = 0; c < 3; ++c) {
      const AdId campus = topo.add_ad(AdClass::kCampus, AdRole::kStub);
      topo.add_link(reg, campus, LinkClass::kHierarchical, 2.0);
    }
  }
  const ShardPlan plan = make_shard_plan(topo, 16);
  expect_total_assignment(plan, topo);
  expect_cross_links_exact(plan, topo);

  std::set<std::uint32_t> used(plan.shard_of.begin(), plan.shard_of.end());
  EXPECT_LE(used.size(), 3u);

  Engine engine;
  engine.enable_sharding(plan);
  int fired = 0;
  engine.at_node(5.0, bb.v + 1, bb.v, [&] { ++fired; });
  engine.run_until(50.0);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.now(), 50.0);
}

TEST(ShardPartition, ZeroDelayLinksNeverCrossAShardBoundary) {
  // A zero-delay cross-shard link would force lookahead 0 and wedge the
  // window loop; the partitioner must fuse its endpoints into one unit.
  Topology topo;
  std::vector<AdId> ads;
  for (int i = 0; i < 8; ++i) {
    ads.push_back(topo.add_ad(AdClass::kBackbone, AdRole::kTransit));
  }
  // Chain pairs with zero-delay links; join the pairs with slow links.
  for (int i = 0; i < 8; i += 2) {
    topo.add_link(ads[i], ads[i + 1], LinkClass::kLateral, 0.0);
  }
  for (int i = 1; i + 1 < 8; i += 2) {
    topo.add_link(ads[i], ads[i + 1], LinkClass::kLateral, 25.0);
  }
  const ShardPlan plan = make_shard_plan(topo, 4);
  expect_total_assignment(plan, topo);
  expect_cross_links_exact(plan, topo);
  for (int i = 0; i < 8; i += 2) {
    EXPECT_EQ(plan.shard_of_ad(ads[i]), plan.shard_of_ad(ads[i + 1]))
        << "zero-delay pair " << i << " split across shards";
  }
  EXPECT_GT(plan.lookahead_ms, 0.0);
}

TEST(ShardPartition, LookaheadOverrideOnlyShrinks) {
  const ScaleProfile profile = make_scale_profile(500, 1);
  ShardPlanOptions opts;
  opts.lookahead_override_ms = 1e-3;
  const ShardPlan shrunk = make_shard_plan(profile.topo, 4, opts);
  EXPECT_EQ(shrunk.lookahead_ms, 1e-3);

  opts.lookahead_override_ms = 1e12;  // larger than any link delay
  const ShardPlan clamped = make_shard_plan(profile.topo, 4, opts);
  EXPECT_EQ(clamped.lookahead_ms, clamped.min_cross_delay_ms);
}

// --- cross-shard timers at the window edge ------------------------------

class EdgeTimerNode : public Node {
 public:
  explicit EdgeTimerNode(int* fired) : fired_(fired) {}
  void start() override {}
  void on_message(AdId, std::span<const std::uint8_t>) override {
    // Receiving a cross-shard frame arms a guarded timer on the
    // receiver's own shard; the timer's own delay may put it exactly on
    // the next window boundary.
    schedule_guarded(0.0, [this] { ++*fired_; });
  }

 private:
  int* fired_;
};

TEST(ShardPartition, CrossShardFrameArmsTimerOnOwningShardAtWindowEdge) {
  // Two backbone ADs in different shards joined by a link whose delay
  // equals the lookahead: the frame lands exactly at a window bound, and
  // the zero-delay guarded timer it arms must fire on the receiver's
  // shard in the very next window -- the regression for timers scheduled
  // across a shard boundary at the window edge.
  Topology topo;
  const AdId a = topo.add_ad(AdClass::kBackbone, AdRole::kTransit, "a");
  const AdId b = topo.add_ad(AdClass::kBackbone, AdRole::kTransit, "b");
  topo.add_link(a, b, LinkClass::kLateral, 10.0);

  const ShardPlan plan = make_shard_plan(topo, 2);
  ASSERT_NE(plan.shard_of_ad(a), plan.shard_of_ad(b));
  ASSERT_EQ(plan.lookahead_ms, 10.0);

  Engine engine;
  engine.enable_sharding(plan);
  Network net(engine, topo);
  int fired_a = 0;
  int fired_b = 0;
  net.attach(a, std::make_unique<EdgeTimerNode>(&fired_a));
  net.attach(b, std::make_unique<EdgeTimerNode>(&fired_b));

  // Quiesced send: the frame crosses the boundary and arrives at t=10,
  // exactly one lookahead past the send.
  engine.at_node(0.0, a.v + 1, a.v,
                 [&] { net.send(a, b, std::vector<std::uint8_t>{1}); });
  engine.run_until(30.0);
  EXPECT_EQ(fired_b, 1) << "cross-shard frame's guarded timer never fired";
  EXPECT_EQ(fired_a, 0);
}

// Negative space of the ownership discipline: scheduling hazards must
// abort loudly, not silently race. Skipped under TSan -- death tests
// fork, and forking a TSan process with live worker threads hangs.
#if defined(__SANITIZE_THREAD__)
#define IDR_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define IDR_TSAN 1
#endif
#endif
#if !defined(IDR_TSAN)

// Each hazard in a plain function: EXPECT_DEATH's statement argument
// cannot contain top-level commas (the preprocessor splits on them).
enum class Hazard { kNonOwnedStream, kInsideLookahead, kControlInWindow };

void run_hazard(Hazard hazard) {
  Topology topo;
  const AdId a = topo.add_ad(AdClass::kBackbone, AdRole::kTransit, "a");
  const AdId b = topo.add_ad(AdClass::kBackbone, AdRole::kTransit, "b");
  topo.add_link(a, b, LinkClass::kLateral, 10.0);
  const ShardPlan plan = make_shard_plan(topo, 2);
  ASSERT_NE(plan.shard_of_ad(a), plan.shard_of_ad(b));
  Engine engine;
  engine.enable_sharding(plan);
  engine.at_node(1.0, a.v + 1, a.v, [&] {
    switch (hazard) {
      case Hazard::kNonOwnedStream:
        // From inside a's window, schedule onto b's stream: only b's
        // shard may bump b's sequence counter.
        engine.at_node(50.0, b.v + 1, b.v, [] {});
        break;
      case Hazard::kInsideLookahead:
        // Legal stream (a's own), illegal time: an event for b landing
        // within the current window violates the conservative invariant.
        engine.at_node(engine.now() + 0.5, a.v + 1, b.v, [] {});
        break;
      case Hazard::kControlInWindow:
        // Control events may touch any shard, so they are only legal
        // from the serialized coordinator phase, never mid-window.
        engine.at(50.0, [] {});
        break;
    }
  });
  engine.run();
}

TEST(ShardHazardDeathTest, NonOwnedStreamScheduledInsideAWindowAborts) {
  EXPECT_DEATH(run_hazard(Hazard::kNonOwnedStream), "does not own");
}

TEST(ShardHazardDeathTest, CrossShardEventInsideTheLookaheadAborts) {
  EXPECT_DEATH(run_hazard(Hazard::kInsideLookahead), "lookahead violation");
}

TEST(ShardHazardDeathTest, ControlScheduledInsideAWindowAborts) {
  EXPECT_DEATH(run_hazard(Hazard::kControlInWindow), "IDR_CHECK");
}

#endif  // !defined(IDR_TSAN)

}  // namespace
}  // namespace idr
