#include <gtest/gtest.h>

#include "core/adapters.hpp"
#include "core/metrics.hpp"
#include "core/oracle.hpp"
#include "core/scenario.hpp"
#include "policy/generator.hpp"
#include "topology/figure1.hpp"

namespace idr {
namespace {

class ArchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fig_ = build_figure1();
    policies_ = make_open_policies(fig_.topo);
  }
  Figure1 fig_;
  PolicySet policies_;
};

TEST_F(ArchTest, DesignPointsCoverTable1) {
  const auto archs = make_policy_architectures();
  ASSERT_EQ(archs.size(), 7u);
  // The four §5 design points must all be present.
  bool dv_hbh_topology = false, dv_hbh_terms = false;
  bool ls_hbh_terms = false, ls_sr_terms = false, dv_sr_terms = false;
  for (const auto& arch : archs) {
    const DesignPoint dp = arch->design_point();
    if (dp.algorithm == Algorithm::kDistanceVector &&
        dp.decision == Decision::kHopByHop &&
        dp.policy == PolicyExpression::kTopology) {
      dv_hbh_topology = true;
    }
    if (dp.algorithm == Algorithm::kDistanceVector &&
        dp.decision == Decision::kHopByHop &&
        dp.policy == PolicyExpression::kPolicyTerms) {
      dv_hbh_terms = true;
    }
    if (dp.algorithm == Algorithm::kLinkState &&
        dp.decision == Decision::kHopByHop &&
        dp.policy == PolicyExpression::kPolicyTerms) {
      ls_hbh_terms = true;
    }
    if (dp.algorithm == Algorithm::kLinkState &&
        dp.decision == Decision::kSourceRouting &&
        dp.policy == PolicyExpression::kPolicyTerms) {
      ls_sr_terms = true;
    }
    if (dp.algorithm == Algorithm::kDistanceVector &&
        dp.decision == Decision::kSourceRouting) {
      dv_sr_terms = true;
    }
  }
  EXPECT_TRUE(dv_hbh_topology);
  EXPECT_TRUE(dv_hbh_terms);
  EXPECT_TRUE(ls_hbh_terms);
  EXPECT_TRUE(ls_sr_terms);
  EXPECT_TRUE(dv_sr_terms);
}

TEST_F(ArchTest, EveryArchitectureRoutesOpenFigure1) {
  FlowSpec flow{fig_.campus[0], fig_.campus[6]};
  for (auto& arch : make_policy_architectures()) {
    arch->build(fig_.topo, policies_);
    const RouteTrace trace = arch->trace(flow);
    EXPECT_FALSE(trace.looped) << arch->name();
    ASSERT_TRUE(trace.path.has_value()) << arch->name();
    EXPECT_EQ(trace.path->front(), flow.src) << arch->name();
    EXPECT_EQ(trace.path->back(), flow.dst) << arch->name();
  }
}

TEST_F(ArchTest, PolicyAwareArchitecturesProduceLegalRoutes) {
  FlowSpec flow{fig_.campus[1], fig_.campus[5]};
  for (auto& arch : make_policy_architectures()) {
    const PolicyExpression pe = arch->design_point().policy;
    if (pe == PolicyExpression::kNone) continue;
    arch->build(fig_.topo, policies_);
    const RouteTrace trace = arch->trace(flow);
    ASSERT_TRUE(trace.path.has_value()) << arch->name();
    EXPECT_TRUE(policies_.path_is_legal(fig_.topo, flow, *trace.path))
        << arch->name();
  }
}

TEST_F(ArchTest, EgpRejectsCyclicTopology) {
  EgpArchitecture egp;
  EXPECT_FALSE(egp.applicable(fig_.topo));
}

TEST_F(ArchTest, EgpRunsOnTree) {
  Topology tree;
  const AdId root = tree.add_ad(AdClass::kBackbone, AdRole::kTransit);
  const AdId mid = tree.add_ad(AdClass::kRegional, AdRole::kTransit);
  const AdId leaf_a = tree.add_ad(AdClass::kCampus, AdRole::kStub);
  const AdId leaf_b = tree.add_ad(AdClass::kCampus, AdRole::kStub);
  tree.add_link(root, mid, LinkClass::kHierarchical);
  tree.add_link(mid, leaf_a, LinkClass::kHierarchical);
  tree.add_link(root, leaf_b, LinkClass::kHierarchical);
  PolicySet policies = make_open_policies(tree);
  EgpArchitecture egp;
  ASSERT_TRUE(egp.applicable(tree));
  egp.build(tree, policies);
  const RouteTrace trace = egp.trace(FlowSpec{leaf_a, leaf_b});
  ASSERT_TRUE(trace.path.has_value());
  EXPECT_EQ(trace.path->size(), 4u);
}

TEST_F(ArchTest, PerturbReportsReconvergenceCost) {
  IdrpArchitecture idrp;
  idrp.build(fig_.topo, policies_);
  const auto initial = idrp.initial_convergence();
  EXPECT_GT(initial.messages, 0u);
  const LinkId cut =
      *fig_.topo.find_link(fig_.backbone_west, fig_.backbone_east);
  // NOTE: perturb applies to the architecture's private topology copy.
  const ConvergenceStats recon = idrp.perturb(cut, false);
  EXPECT_GT(recon.messages, 0u);
  // The architecture's own copy changed, not the scenario's.
  EXPECT_TRUE(fig_.topo.link(cut).up);
  EXPECT_FALSE(idrp.topo().link(cut).up);
}

TEST_F(ArchTest, StateAndHeaderQueriesWork) {
  for (auto& arch : make_policy_architectures()) {
    arch->build(fig_.topo, policies_);
    // Lazily-computed FIBs (ls-ospf) populate on first use.
    (void)arch->trace(FlowSpec{fig_.campus[0], fig_.campus[6]});
    EXPECT_GT(arch->state_entries(), 0u) << arch->name();
    EXPECT_GT(arch->header_bytes(5), 0u) << arch->name();
  }
  // Source-route headers grow with path length; handle-based ORWG ones
  // do not.
  DvsrArchitecture dvsr;
  OrwgArchitecture orwg;
  EXPECT_GT(dvsr.header_bytes(10), dvsr.header_bytes(3));
  EXPECT_EQ(orwg.header_bytes(10), orwg.header_bytes(3));
}

TEST(Evaluate, ComparesAgainstOracleOnScenario) {
  ScenarioParams params;
  params.seed = 3;
  params.target_ads = 40;
  params.flow_count = 24;
  Scenario scenario = make_scenario(params);

  OrwgArchitecture orwg;
  const ArchEvaluation eval = evaluate_architecture(
      orwg, scenario.topo, scenario.policies, scenario.flows);
  EXPECT_EQ(eval.flows, scenario.flows.size());
  EXPECT_GT(eval.oracle_routes, 0u);
  // The paper's headline: LS + SR + PT finds a legal route whenever one
  // exists (within budget), and never produces an illegal one.
  EXPECT_EQ(eval.legal, eval.oracle_routes);
  EXPECT_EQ(eval.illegal, 0u);
  EXPECT_EQ(eval.missed, 0u);
  EXPECT_EQ(eval.looped, 0u);
  EXPECT_DOUBLE_EQ(eval.availability(), 1.0);
}

TEST(Evaluate, PolicyBlindBaselineViolatesPolicy) {
  ScenarioParams params;
  params.seed = 4;
  params.target_ads = 40;
  params.flow_count = 32;
  params.restrict_prob = 0.5;
  Scenario scenario = make_scenario(params);

  DvArchitecture dv;
  const ArchEvaluation eval = evaluate_architecture(
      dv, scenario.topo, scenario.policies, scenario.flows);
  // RIP-style routing ignores policy entirely: it forwards along
  // shortest paths straight through ADs that forbid the traffic.
  EXPECT_GT(eval.illegal, 0u);
}

TEST(Scenario, DeterministicForSeed) {
  ScenarioParams params;
  params.seed = 9;
  const Scenario a = make_scenario(params);
  const Scenario b = make_scenario(params);
  ASSERT_EQ(a.flows.size(), b.flows.size());
  for (std::size_t i = 0; i < a.flows.size(); ++i) {
    EXPECT_EQ(a.flows[i], b.flows[i]);
  }
  EXPECT_EQ(a.topo.link_count(), b.topo.link_count());
  EXPECT_EQ(a.policies.total_terms(), b.policies.total_terms());
}

TEST(Scenario, FlowsUseEndSystemAds) {
  ScenarioParams params;
  params.seed = 10;
  const Scenario scenario = make_scenario(params);
  for (const FlowSpec& flow : scenario.flows) {
    EXPECT_NE(scenario.topo.ad(flow.src).role, AdRole::kTransit);
    EXPECT_NE(scenario.topo.ad(flow.dst).role, AdRole::kTransit);
    EXPECT_NE(flow.src, flow.dst);
  }
}

}  // namespace
}  // namespace idr
