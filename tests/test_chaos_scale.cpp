// Paper-scale failure & recovery (soak label): run_scale_chaos at 1e3
// ADs must carry a regional partition/heal cleanly for every design
// point -- zero persistent invariant violations, a finite storm-class
// reconvergence time, and a deterministic counter fingerprint -- and
// the damped DV flap storm must both stay clean and measurably cut the
// update churn against the undamped run.
#include <gtest/gtest.h>

#include <string>

#include "core/chaos.hpp"

namespace idr {
namespace {

ScaleChaosParams scale_params(StormFamily storm) {
  ScaleChaosParams params;
  params.target_ads = 1'000;
  params.storm = storm;
  return params;
}

TEST(ChaosScale, PartitionHealsCleanlyAtOneThousandAds) {
  for (const std::string& arch : chaos_design_points()) {
    SCOPED_TRACE(arch);
    const ScaleChaosResult result =
        run_scale_chaos(arch, scale_params(StormFamily::kPartition));
    EXPECT_GT(result.storm_transitions, 0u);
    EXPECT_EQ(result.invariants.persistent_violations(), 0u)
        << "partition/heal left persistent forwarding damage";
    EXPECT_GE(result.reconverge_ms, 0.0) << "never reconverged";
    // The heal is a distinct transition: reconvergence is measured from
    // the LAST transition, so it must fit inside the partition window.
    EXPECT_LE(result.reconverge_ms, 3'000.0);
  }
}

TEST(ChaosScale, RestartStormGracefulRestartProtectsContinuity) {
  // The restart-storm A/B at 1e3 ADs, all four design points: with
  // graceful restart + bounded ingress queues on, forwarding continuity
  // through the staggered transit crashes must beat the cold-restart
  // baseline and every grace window must end in a recovery handover
  // (grace > outage), with zero persistent damage on both sides.
  for (const std::string& arch : chaos_design_points()) {
    SCOPED_TRACE(arch);
    ScaleChaosParams cold = scale_params(StormFamily::kRestartStorm);
    ScaleChaosParams gr = cold;
    gr.gr.enabled = true;
    gr.gr.grace_ms = 2'000.0;  // > restart_down_ms: recovery within grace
    gr.overload.queue_limit = 64;
    gr.overload.service_batch = 16;
    gr.overload.service_interval_ms = 0.5;

    const ScaleChaosResult off = run_scale_chaos(arch, cold);
    const ScaleChaosResult on = run_scale_chaos(arch, gr);
    EXPECT_GT(off.node_crashes, 0u);
    EXPECT_EQ(off.invariants.persistent_violations(), 0u);
    EXPECT_EQ(on.invariants.persistent_violations(), 0u);
    EXPECT_GT(on.gr_recoveries, 0u) << "no grace window saw its recovery";
    EXPECT_EQ(on.gr_flushes, 0u) << "grace > outage must never flush";
    EXPECT_GT(on.invariants.continuity(), off.invariants.continuity())
        << "GR must keep probes flowing that cold restart black-holes";
    EXPECT_GE(on.invariants.continuity(), 0.95);
    // The bounded queues were armed and respected.
    EXPECT_GT(on.overload.enqueued, 0u);
    EXPECT_LE(on.overload.peak_depth, gr.overload.queue_limit);
  }
}

TEST(ChaosScale, RestartStormGraceExpiryFlushesStaleState) {
  // Grace window SHORTER than the outage: every window must expire into
  // a stale flush, and the flush must leave no persistent stale route
  // behind once the network reconverges.
  for (const std::string& arch : chaos_design_points()) {
    SCOPED_TRACE(arch);
    ScaleChaosParams params = scale_params(StormFamily::kRestartStorm);
    params.gr.enabled = true;
    params.gr.grace_ms = 150.0;
    params.restart_down_ms = 600.0;
    const ScaleChaosResult result = run_scale_chaos(arch, params);
    EXPECT_GT(result.gr_flushes, 0u) << "no grace window ever expired";
    EXPECT_EQ(result.gr_recoveries, 0u)
        << "grace < outage must never hand over to a live control plane";
    EXPECT_EQ(result.invariants.persistent_violations(), 0u)
        << "stale state survived the flush";
    EXPECT_GE(result.reconverge_ms, 0.0) << "never reconverged";
  }
}

TEST(ChaosScale, PartitionRunsAreDeterministic) {
  const ScaleChaosParams params = scale_params(StormFamily::kPartition);
  const ScaleChaosResult a = run_scale_chaos("ecma", params);
  const ScaleChaosResult b = run_scale_chaos("ecma", params);
  EXPECT_EQ(a.counter_fingerprint, b.counter_fingerprint);
  EXPECT_EQ(a.reconverge_ms, b.reconverge_ms);
  EXPECT_EQ(a.updates_during_storm, b.updates_during_storm);
}

TEST(ChaosScale, DampedFlapStormStaysCleanAndCutsChurn) {
  for (const std::string& arch : {std::string("ecma"), std::string("idrp")}) {
    SCOPED_TRACE(arch);
    ScaleChaosParams off = scale_params(StormFamily::kFlapStorm);
    ScaleChaosParams on = off;
    on.damping.enabled = true;
    on.damping.half_life_ms = 500.0;

    const ScaleChaosResult undamped = run_scale_chaos(arch, off);
    const ScaleChaosResult damped = run_scale_chaos(arch, on);
    EXPECT_EQ(undamped.invariants.persistent_violations(), 0u);
    EXPECT_EQ(damped.invariants.persistent_violations(), 0u)
        << "damping must not black-hole released routes";
    EXPECT_GE(damped.reconverge_ms, 0.0);
    EXPECT_GT(damped.routes_suppressed, 0u) << "damping never engaged";
    EXPECT_EQ(damped.suppressed_at_end, 0u)
        << "suppressed routes must be released by the quiet tail";
    EXPECT_LT(damped.updates_during_storm, undamped.updates_during_storm)
        << "damping must reduce storm churn";
  }
}

}  // namespace
}  // namespace idr
