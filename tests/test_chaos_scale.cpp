// Paper-scale failure & recovery (soak label): run_scale_chaos at 1e3
// ADs must carry a regional partition/heal cleanly for every design
// point -- zero persistent invariant violations, a finite storm-class
// reconvergence time, and a deterministic counter fingerprint -- and
// the damped DV flap storm must both stay clean and measurably cut the
// update churn against the undamped run.
#include <gtest/gtest.h>

#include <string>

#include "core/chaos.hpp"

namespace idr {
namespace {

ScaleChaosParams scale_params(StormFamily storm) {
  ScaleChaosParams params;
  params.target_ads = 1'000;
  params.storm = storm;
  return params;
}

TEST(ChaosScale, PartitionHealsCleanlyAtOneThousandAds) {
  for (const std::string& arch : chaos_design_points()) {
    SCOPED_TRACE(arch);
    const ScaleChaosResult result =
        run_scale_chaos(arch, scale_params(StormFamily::kPartition));
    EXPECT_GT(result.storm_transitions, 0u);
    EXPECT_EQ(result.invariants.persistent_violations(), 0u)
        << "partition/heal left persistent forwarding damage";
    EXPECT_GE(result.reconverge_ms, 0.0) << "never reconverged";
    // The heal is a distinct transition: reconvergence is measured from
    // the LAST transition, so it must fit inside the partition window.
    EXPECT_LE(result.reconverge_ms, 3'000.0);
  }
}

TEST(ChaosScale, PartitionRunsAreDeterministic) {
  const ScaleChaosParams params = scale_params(StormFamily::kPartition);
  const ScaleChaosResult a = run_scale_chaos("ecma", params);
  const ScaleChaosResult b = run_scale_chaos("ecma", params);
  EXPECT_EQ(a.counter_fingerprint, b.counter_fingerprint);
  EXPECT_EQ(a.reconverge_ms, b.reconverge_ms);
  EXPECT_EQ(a.updates_during_storm, b.updates_during_storm);
}

TEST(ChaosScale, DampedFlapStormStaysCleanAndCutsChurn) {
  for (const std::string& arch : {std::string("ecma"), std::string("idrp")}) {
    SCOPED_TRACE(arch);
    ScaleChaosParams off = scale_params(StormFamily::kFlapStorm);
    ScaleChaosParams on = off;
    on.damping.enabled = true;
    on.damping.half_life_ms = 500.0;

    const ScaleChaosResult undamped = run_scale_chaos(arch, off);
    const ScaleChaosResult damped = run_scale_chaos(arch, on);
    EXPECT_EQ(undamped.invariants.persistent_violations(), 0u);
    EXPECT_EQ(damped.invariants.persistent_violations(), 0u)
        << "damping must not black-hole released routes";
    EXPECT_GE(damped.reconverge_ms, 0.0);
    EXPECT_GT(damped.routes_suppressed, 0u) << "damping never engaged";
    EXPECT_EQ(damped.suppressed_at_end, 0u)
        << "suppressed routes must be released by the quiet tail";
    EXPECT_LT(damped.updates_during_storm, undamped.updates_during_storm)
        << "damping must reduce storm churn";
  }
}

}  // namespace
}  // namespace idr
