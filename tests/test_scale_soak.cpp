// Paper-scale soak (soak label; CI's fast lane skips it with -LE soak):
// stand up the 1e4-AD hierarchical scale profile, converge all four
// design points on the calendar-queue engine, and hold them to the same
// bar as the small-world tests -- an invariant-monitor sweep over
// stub->beacon probes must find zero persistent violations (no loops, no
// black holes, no stale routes), and the whole run must fit in a bounded
// memory footprint.
#include <gtest/gtest.h>

#include <sys/resource.h>

#include <memory>
#include <string>

#include "core/design_harness.hpp"
#include "core/scale_profile.hpp"
#include "sim/engine.hpp"
#include "sim/invariants.hpp"
#include "sim/network.hpp"

namespace idr {
namespace {

constexpr std::uint32_t kTargetAds = 10'000;
constexpr std::uint64_t kProfileSeed = 0x5ca1eULL;  // matches bench_scale
constexpr std::size_t kSamplePairs = 128;
// Process-wide peak-RSS ceiling. The full four-arch sweep at 1e4 ADs
// peaks near 210 MB (BENCH_scale.json); 1 GiB leaves headroom without
// letting a superlinear regression through.
constexpr long kMaxRssKb = 1'048'576;

long peak_rss_kb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;  // KiB on Linux
}

TEST(ScaleSoak, AllDesignPointsConvergeCleanAtTenThousandAds) {
  ScaleProfile profile = make_scale_profile(kTargetAds, kProfileSeed);
  ASSERT_GE(profile.topo.ad_count(), kTargetAds * 9 / 10);

  for (const std::string& arch : design_point_names()) {
    SCOPED_TRACE(arch);
    Engine engine(SchedulerKind::kCalendar);
    Network net(engine, profile.topo);
    const auto factory = make_scale_factory(arch, profile);
    net.set_node_factory(factory);
    for (const Ad& ad : profile.topo.ads()) {
      net.attach(ad.id, factory(ad.id));
    }
    net.start_all();
    engine.run();
    ASSERT_TRUE(engine.empty()) << "did not converge";

    // Post-convergence sweep: sampled sources to beacon destinations
    // (the only originated DV destinations at paper scale). No faults
    // were injected, so any violation is persistent by definition.
    InvariantConfig config;
    config.sample_pairs = kSamplePairs;
    config.dst_pool = profile.beacons;
    const auto probe = make_design_probe(arch, net, profile.topo);
    InvariantMonitor monitor(net, config,
                             [&probe](AdId src, AdId dst) {
                               FlowSpec flow;
                               flow.src = src;
                               flow.dst = dst;
                               return probe(flow);
                             });
    monitor.sweep();
    const InvariantStats& stats = monitor.stats();
    EXPECT_EQ(stats.persistent_violations(), 0u);
    EXPECT_EQ(stats.transient_violations(), 0u);
    EXPECT_GE(stats.probes, kSamplePairs / 2);  // src==dst pairs skip
  }

  EXPECT_LT(peak_rss_kb(), kMaxRssKb);
}

}  // namespace
}  // namespace idr
