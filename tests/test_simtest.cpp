// Deterministic simulation testing: SimCase serialization round-trips,
// same-seed determinism of the differential runner, detection and
// shrinking of a seeded known-bad defect, structured invariant findings,
// and replay of the golden reproducer corpus in data/simtest/.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "sim/invariants.hpp"
#include "simtest/differential.hpp"
#include "simtest/scenario_generator.hpp"
#include "simtest/shrink.hpp"
#include "simtest/simcase.hpp"

namespace idr {
namespace {

std::string read_corpus(const std::string& name) {
  const std::string path = std::string(IDR_DATA_DIR) + "/simtest/" + name;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << "missing corpus file " << path;
  if (!f) return {};
  std::string text;
  char buf[4096];
  std::size_t got;
  while ((got = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, got);
  std::fclose(f);
  return text;
}

SimCase parse_ok(const std::string& text) {
  SimCaseParseResult parsed = parse_sim_case(text);
  const auto* err = std::get_if<SimCaseParseError>(&parsed);
  EXPECT_EQ(err, nullptr) << (err ? err->describe() : "");
  if (err) return {};
  return std::get<SimCase>(std::move(parsed));
}

bool has_signature(const DiffResult& result, const std::string& sig) {
  const auto sigs = result.signatures();
  return std::find(sigs.begin(), sigs.end(), sig) != sigs.end();
}

// --- serialization -----------------------------------------------------

TEST(SimCaseFormat, RoundTripIsByteIdentical) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    SCOPED_TRACE(seed);
    SimCaseParams params;
    params.seed = seed;
    const SimCase original = generate_sim_case(params);
    const std::string first = format_sim_case(original);
    const SimCase reparsed = parse_ok(first);
    EXPECT_EQ(format_sim_case(reparsed), first);

    EXPECT_EQ(reparsed.name, original.name);
    EXPECT_EQ(reparsed.seed, original.seed);
    EXPECT_EQ(reparsed.horizon_ms, original.horizon_ms);
    EXPECT_EQ(reparsed.topo.ad_count(), original.topo.ad_count());
    EXPECT_EQ(reparsed.topo.link_count(), original.topo.link_count());
    EXPECT_EQ(reparsed.flows, original.flows);
    // %g rounds generated event times to 6 significant digits, so text,
    // not the in-memory double, is the canonical form: after one
    // canonicalization pass the structs round-trip exactly.
    ASSERT_EQ(reparsed.events.size(), original.events.size());
    const SimCase again = parse_ok(format_sim_case(reparsed));
    EXPECT_EQ(again.events, reparsed.events);
  }
}

TEST(SimCaseFormat, EveryEventKindSurvivesTheRoundTrip) {
  // Crank the schedule knobs so one case exercises link-down, crash and
  // Byzantine events at once.
  SimCaseParams params;
  params.seed = 11;
  params.byzantine_prob = 1.0;
  params.max_link_events = 4;
  params.max_crash_events = 2;
  params.permanent_failure_prob = 1.0;  // repair_ms = 0 must round-trip too
  params.restart_storm_prob = 1.0;
  const SimCase original = generate_sim_case(params);
  bool saw_link = false, saw_crash = false, saw_byz = false;
  bool saw_restart = false;
  for (const SimEvent& e : original.events) {
    saw_link |= e.kind == SimEvent::Kind::kLinkDown;
    saw_crash |= e.kind == SimEvent::Kind::kCrash;
    saw_byz |= e.kind == SimEvent::Kind::kByzantine;
    if (e.kind == SimEvent::Kind::kRestartStorm) {
      saw_restart = true;
      EXPECT_GT(e.period_ms, 0.0);
      EXPECT_GE(e.cycles, 2u);
    }
  }
  ASSERT_TRUE(saw_link && saw_crash && saw_byz && saw_restart)
      << "generator knobs must force all four event kinds";
  const SimCase reparsed = parse_ok(format_sim_case(original));
  EXPECT_EQ(format_sim_case(reparsed), format_sim_case(original));
  ASSERT_EQ(reparsed.events.size(), original.events.size());
  for (std::size_t i = 0; i < reparsed.events.size(); ++i) {
    EXPECT_EQ(reparsed.events[i].kind, original.events[i].kind);
    EXPECT_EQ(reparsed.events[i].a, original.events[i].a);
    EXPECT_EQ(reparsed.events[i].b, original.events[i].b);
    EXPECT_EQ(reparsed.events[i].ad, original.events[i].ad);
    EXPECT_EQ(reparsed.events[i].misbehavior, original.events[i].misbehavior);
    EXPECT_EQ(reparsed.events[i].victim, original.events[i].victim);
    EXPECT_EQ(reparsed.events[i].cycles, original.events[i].cycles);
    EXPECT_NEAR(reparsed.events[i].at_ms, original.events[i].at_ms, 0.01);
  }
}

TEST(SimCaseFormat, ParseReportsTheOffendingLine) {
  const auto expect_error = [](const std::string& text, std::size_t line) {
    SimCaseParseResult parsed = parse_sim_case(text);
    const auto* err = std::get_if<SimCaseParseError>(&parsed);
    ASSERT_NE(err, nullptr) << text;
    EXPECT_EQ(err->line, line) << err->describe();
  };
  expect_error(
      "case name=x seed=1 horizon-ms=1000\n"
      "ad a campus stub\n"
      "bogus statement\n",
      3);
  expect_error(
      "case name=x seed=1 horizon-ms=1000\n"
      "ad a campus stub\n"
      "ad b campus stub\n"
      "event byzantine at=10 ad=a\n",  // missing kind=
      4);
  expect_error(
      "case name=x seed=1 horizon-ms=1000\n"
      "ad a campus stub\n"
      "ad b campus stub\n"
      "event link-down at=10 a=a b=b\n",  // no such link
      4);
}

TEST(SimCaseFormat, StructuralReductionsStaySerializable) {
  SimCaseParams params;
  params.seed = 4;
  const SimCase original = generate_sim_case(params);
  ASSERT_GE(original.topo.ad_count(), 3u);

  const SimCase smaller = remove_ad(original, AdId{0});
  EXPECT_EQ(smaller.topo.ad_count(), original.topo.ad_count() - 1);
  const std::string text = format_sim_case(smaller);
  EXPECT_EQ(format_sim_case(parse_ok(text)), text);

  const SimCase no_flows = with_flows(original, {});
  EXPECT_TRUE(no_flows.flows.empty());
  EXPECT_EQ(format_sim_case(parse_ok(format_sim_case(no_flows))),
            format_sim_case(no_flows));
}

// --- differential runner ----------------------------------------------

// Satellite S4: the whole run must be a pure function of the seed. Two
// independent executions of the same SimCase agree on the counter
// fingerprint (a digest of every per-AD counter, i.e. the forwarding
// tables' observable behavior) and on the DES event count, per design
// point.
TEST(Differential, SameSeedIsDeterministic) {
  SimCaseParams params;
  params.seed = 3;
  const SimCase c = generate_sim_case(params);
  DiffOptions options;
  options.check_determinism = false;  // we do the double run ourselves
  const DiffResult first = run_differential(c, options);
  const DiffResult second = run_differential(c, options);
  ASSERT_EQ(first.archs.size(), 4u);
  ASSERT_EQ(second.archs.size(), first.archs.size());
  for (std::size_t i = 0; i < first.archs.size(); ++i) {
    SCOPED_TRACE(first.archs[i].arch);
    EXPECT_EQ(first.archs[i].fingerprint, second.archs[i].fingerprint);
    EXPECT_EQ(first.archs[i].events_processed,
              second.archs[i].events_processed);
    EXPECT_EQ(first.archs[i].violations.size(),
              second.archs[i].violations.size());
  }
}

TEST(Differential, GeneratedSeedsReplayClean) {
  // A slice of the acceptance sweep (tools/simtest --seeds 64): generated
  // worlds produce only agreements and paper-sanctioned divergences.
  for (std::uint64_t seed : {1, 2}) {
    SCOPED_TRACE(seed);
    SimCaseParams params;
    params.seed = seed;
    const SimCase c = generate_sim_case(params);
    const DiffResult result = run_differential(c);
    EXPECT_TRUE(result.clean())
        << (result.signatures().empty() ? std::string("(clean)")
                                        : result.signatures().front());
    for (const ArchDiffResult& a : result.archs) {
      EXPECT_EQ(a.flows_total, c.flows.size());
      EXPECT_EQ(a.invariants.persistent_loops, 0u) << a.arch;
    }
  }
}

// The tester must catch a planted defect: an LS-HbH probe that consults
// the default-class FIB for every flow lets traffic from the wrong user
// class cross AUP-restricted transit, which classification must flag as
// a genuine illegal-path violation (never as an expected divergence).
TEST(Differential, InjectedProbeBugIsCaught) {
  SimCaseParams params;
  params.seed = 2;
  const SimCase c = generate_sim_case(params);
  DiffOptions buggy;
  buggy.check_determinism = false;
  buggy.inject_probe_bug = true;
  const DiffResult result = run_differential(c, buggy);
  EXPECT_FALSE(result.clean());
  EXPECT_TRUE(has_signature(result, "ls-hbh:illegal-path"));
  // The defect is confined to LS-HbH: the other design points stay clean.
  for (const ArchDiffResult& a : result.archs) {
    if (a.arch != "ls-hbh") {
      EXPECT_TRUE(a.violations.empty()) << a.arch;
    }
  }
}

// Acceptance: the shrinker reduces the injected-bug failure to a
// reproducer of at most 8 ADs that still fails for the same reason, and
// dropping the bug makes the minimized case pass.
TEST(Differential, ShrinkerMinimizesInjectedBugCase) {
  SimCaseParams params;
  params.seed = 2;
  const SimCase c = generate_sim_case(params);
  DiffOptions buggy;
  buggy.check_determinism = false;
  buggy.inject_probe_bug = true;
  const DiffResult failing = run_differential(c, buggy);
  ASSERT_FALSE(failing.clean());

  const FailurePredicate predicate =
      signature_predicate(failing.signatures(), buggy);
  const ShrinkResult shrunk = shrink_sim_case(c, predicate);
  EXPECT_LE(shrunk.minimized.topo.ad_count(), 8u);
  EXPECT_LT(shrunk.minimized.flows.size(), c.flows.size());
  EXPECT_LE(shrunk.checks, ShrinkOptions{}.max_checks);

  // Still fails, for the same reason, deterministically.
  const DiffResult replay = run_differential(shrunk.minimized, buggy);
  EXPECT_TRUE(has_signature(replay, "ls-hbh:illegal-path"));
  // And the minimized world is healthy without the planted defect.
  DiffOptions fixed;
  fixed.check_determinism = false;
  EXPECT_TRUE(run_differential(shrunk.minimized, fixed).clean());
}

// --- golden corpus -----------------------------------------------------

TEST(Corpus, CleanCasesReplayClean) {
  for (const char* name : {"clean-seed-1.simcase", "clean-seed-2.simcase"}) {
    SCOPED_TRACE(name);
    const std::string text = read_corpus(name);
    ASSERT_FALSE(text.empty());
    const SimCase c = parse_ok(text);
    ASSERT_GT(c.topo.ad_count(), 0u);
    // Checked-in corpus files are canonical serializations.
    EXPECT_EQ(format_sim_case(c), text);
    const DiffResult result = run_differential(c);
    EXPECT_TRUE(result.clean());
  }
}

TEST(Corpus, MinimizedReproducerReplaysDeterministically) {
  const std::string text = read_corpus("buggy-lshh-min.simcase");
  ASSERT_FALSE(text.empty());
  const SimCase c = parse_ok(text);
  ASSERT_GT(c.topo.ad_count(), 0u);
  EXPECT_LE(c.topo.ad_count(), 8u);
  EXPECT_EQ(format_sim_case(c), text);

  // Without the planted defect the world is healthy...
  EXPECT_TRUE(run_differential(c).clean());

  // ...with it, the reproducer trips exactly the recorded signature, on
  // every replay, with a stable fingerprint.
  DiffOptions buggy;
  buggy.check_determinism = false;
  buggy.inject_probe_bug = true;
  const DiffResult first = run_differential(c, buggy);
  const DiffResult second = run_differential(c, buggy);
  const std::vector<std::string> expected{"ls-hbh:illegal-path"};
  EXPECT_EQ(first.signatures(), expected);
  EXPECT_EQ(second.signatures(), expected);
  ASSERT_EQ(first.archs.size(), second.archs.size());
  for (std::size_t i = 0; i < first.archs.size(); ++i) {
    EXPECT_EQ(first.archs[i].fingerprint, second.archs[i].fingerprint)
        << first.archs[i].arch;
  }
}

TEST(Corpus, FullCorpusReplaysIdenticallyOnTheParallelBackend) {
  // Every golden reproducer, replayed through the sharded engine: clean
  // cases stay clean, and every per-arch fingerprint and event total
  // matches the sequential run exactly -- the corpus-level version of the
  // engine-equivalence guarantee.
  for (const char* name : {"clean-seed-1.simcase", "clean-seed-2.simcase",
                           "buggy-lshh-min.simcase"}) {
    SCOPED_TRACE(name);
    const std::string text = read_corpus(name);
    ASSERT_FALSE(text.empty());
    const SimCase c = parse_ok(text);

    DiffOptions options;
    options.check_determinism = false;
    const DiffResult sequential = run_differential(c, options);
    options.shards = 4;
    const DiffResult sharded = run_differential(c, options);

    EXPECT_EQ(sequential.clean(), sharded.clean());
    EXPECT_EQ(sequential.signatures(), sharded.signatures());
    ASSERT_EQ(sequential.archs.size(), sharded.archs.size());
    for (std::size_t i = 0; i < sequential.archs.size(); ++i) {
      SCOPED_TRACE(sequential.archs[i].arch);
      EXPECT_EQ(sequential.archs[i].fingerprint, sharded.archs[i].fingerprint);
      EXPECT_EQ(sequential.archs[i].events_processed,
                sharded.archs[i].events_processed);
    }
  }
}

// --- structured invariant findings (satellite S1) ----------------------

class NullNode : public Node {
 public:
  void on_message(AdId, std::span<const std::uint8_t>) override {}
};

TEST(InvariantFindings, CarryOffendingPairAndPath) {
  // Three-AD chain with synthetic probes: monitor findings must name the
  // offending (src, dst) pair and the walked path, not just bump a
  // counter.
  Topology topo;
  const AdId a = topo.add_ad(AdClass::kBackbone, AdRole::kTransit, "a");
  const AdId b = topo.add_ad(AdClass::kRegional, AdRole::kTransit, "b");
  const AdId c = topo.add_ad(AdClass::kCampus, AdRole::kStub, "c");
  topo.add_link(a, b, LinkClass::kHierarchical);
  topo.add_link(b, c, LinkClass::kHierarchical);

  Engine engine;
  Network net(engine, topo);
  for (const Ad& ad : topo.ads()) {
    net.attach(ad.id, std::make_unique<NullNode>());
  }

  InvariantConfig config;
  config.sample_pairs = 0;  // probe every ordered pair
  InvariantMonitor monitor(net, config, [&](AdId src, AdId dst) {
    Probe probe;
    if (src == a && dst == c) {
      probe.outcome = ProbeOutcome::kLooped;
      probe.path = {a, b, a};
    } else if (src == c && dst == a) {
      probe.outcome = ProbeOutcome::kBlackHole;
      probe.path = {c, b};
    } else {
      probe.outcome = ProbeOutcome::kDelivered;
      probe.path = {src, dst};
    }
    return probe;
  });

  // No fault was ever injected, so violations are persistent immediately.
  monitor.sweep();
  monitor.sweep();  // dedup: re-observing must not add findings

  EXPECT_EQ(monitor.stats().persistent_loops, 1u);
  EXPECT_EQ(monitor.stats().persistent_black_holes, 1u);
  const std::vector<InvariantFinding> findings = monitor.persistent_findings();
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings.size(), monitor.findings().size());

  const InvariantFinding& loop = findings[0];
  EXPECT_EQ(loop.kind, InvariantKind::kLoop);
  EXPECT_STREQ(to_string(loop.kind), "loop");
  EXPECT_TRUE(loop.persistent);
  EXPECT_EQ(loop.src, a);
  EXPECT_EQ(loop.dst, c);
  EXPECT_EQ(loop.path, (std::vector<AdId>{a, b, a}));

  const InvariantFinding& hole = findings[1];
  EXPECT_EQ(hole.kind, InvariantKind::kBlackHole);
  EXPECT_STREQ(to_string(hole.kind), "black-hole");
  EXPECT_EQ(hole.src, c);
  EXPECT_EQ(hole.dst, a);
  EXPECT_EQ(hole.path, (std::vector<AdId>{c, b}));
}

TEST(InvariantFindings, TransientRecordingIsOptInAndCapped) {
  Topology topo;
  const AdId a = topo.add_ad(AdClass::kRegional, AdRole::kTransit, "a");
  const AdId b = topo.add_ad(AdClass::kCampus, AdRole::kStub, "b");
  topo.add_link(a, b, LinkClass::kHierarchical);

  Engine engine;
  Network net(engine, topo);
  for (const Ad& ad : topo.ads()) {
    net.attach(ad.id, std::make_unique<NullNode>());
  }
  const auto looping_probe = [&](AdId src, AdId) {
    Probe probe;
    probe.outcome = ProbeOutcome::kLooped;
    probe.path = {src, src};
    return probe;
  };

  {
    // Default config: transient violations bump counters only.
    InvariantMonitor monitor(net, InvariantConfig{}, looping_probe);
    monitor.note_fault();  // inside the reconvergence window -> transient
    monitor.sweep();
    EXPECT_GT(monitor.stats().transient_loops, 0u);
    EXPECT_TRUE(monitor.findings().empty());
    EXPECT_TRUE(monitor.persistent_findings().empty());
  }
  {
    InvariantConfig config;
    config.record_transient_findings = true;
    config.max_transient_findings = 1;
    InvariantMonitor monitor(net, config, looping_probe);
    monitor.note_fault();
    monitor.sweep();  // two ordered pairs loop, but the cap admits one
    ASSERT_EQ(monitor.findings().size(), 1u);
    EXPECT_FALSE(monitor.findings()[0].persistent);
    EXPECT_TRUE(monitor.persistent_findings().empty());
  }
}

}  // namespace
}  // namespace idr
