#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "policy/generator.hpp"
#include "proto/dvsr/dvsr_node.hpp"
#include "proto/idrp/idrp_node.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "topology/figure1.hpp"

namespace idr {
namespace {

TEST(HourMask, PlainAndWrappedWindows) {
  const std::uint32_t business = hour_window_mask(8, 18);
  EXPECT_TRUE(business & (1u << 8));
  EXPECT_TRUE(business & (1u << 18));
  EXPECT_FALSE(business & (1u << 7));
  const std::uint32_t night = hour_window_mask(22, 4);
  EXPECT_TRUE(night & (1u << 23));
  EXPECT_TRUE(night & (1u << 0));
  EXPECT_FALSE(night & (1u << 12));
  EXPECT_EQ(hour_window_mask(0, 23), kAllHoursMask);
}

TEST(RouteAttrs, PermitsChecksEveryDimension) {
  RouteAttrs attrs;
  attrs.sources = AdSet::of({AdId{1}});
  attrs.qos_mask = qos_bit(Qos::kDefault);
  attrs.uci_mask = uci_bit(UserClass::kResearch);
  attrs.hour_mask = hour_window_mask(8, 18);
  FlowSpec ok{AdId{1}, AdId{9}, Qos::kDefault, UserClass::kResearch, 12};
  EXPECT_TRUE(attrs.permits(ok));
  FlowSpec wrong_src = ok;
  wrong_src.src = AdId{2};
  EXPECT_FALSE(attrs.permits(wrong_src));
  FlowSpec wrong_hour = ok;
  wrong_hour.hour = 3;
  EXPECT_FALSE(attrs.permits(wrong_hour));
}

TEST(RouteAttrs, CoversIsSupersetRelation) {
  RouteAttrs wide;  // any/any/any
  RouteAttrs narrow;
  narrow.sources = AdSet::of({AdId{1}});
  narrow.qos_mask = 1;
  EXPECT_TRUE(wide.covers(narrow));
  EXPECT_FALSE(narrow.covers(wide));
  EXPECT_TRUE(wide.covers(wide));
}

TEST(RouteAttrs, UsableRejectsEmptyDimensions) {
  RouteAttrs attrs;
  EXPECT_TRUE(attrs.usable());
  attrs.qos_mask = 0;
  EXPECT_FALSE(attrs.usable());
  attrs.qos_mask = kAllQosMask;
  attrs.sources = AdSet::none();
  EXPECT_FALSE(attrs.usable());
}

class IdrpTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fig_ = build_figure1();
    policies_ = make_open_policies(fig_.topo);
  }

  void run(IdrpConfig config = {}) {
    net_ = std::make_unique<Network>(engine_, fig_.topo);
    for (const Ad& ad : fig_.topo.ads()) {
      auto node = std::make_unique<IdrpNode>(&policies_, config);
      nodes_.push_back(node.get());
      net_->attach(ad.id, std::move(node));
    }
    net_->start_all();
    engine_.run();
  }

  std::optional<std::vector<AdId>> route(const FlowSpec& flow) {
    std::vector<AdId> path{flow.src};
    AdId cur = flow.src;
    std::size_t guard = 0;
    while (cur != flow.dst) {
      if (++guard > fig_.topo.ad_count()) return std::nullopt;
      const auto next = nodes_[cur.v]->forward(flow);
      if (!next) return std::nullopt;
      path.push_back(*next);
      cur = *next;
    }
    return path;
  }

  Figure1 fig_;
  PolicySet policies_;
  Engine engine_;
  std::unique_ptr<Network> net_;
  std::vector<IdrpNode*> nodes_;
};

TEST_F(IdrpTest, ConvergesAndRoutesAcrossBackbones) {
  run();
  FlowSpec flow{fig_.campus[0], fig_.campus[6]};
  const auto path = route(flow);
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(policies_.path_is_legal(fig_.topo, flow, *path));
}

TEST_F(IdrpTest, PathsNeverContainLoops) {
  run();
  for (const Ad& src : fig_.topo.ads()) {
    for (const Ad& dst : fig_.topo.ads()) {
      if (src.id == dst.id) continue;
      FlowSpec flow{src.id, dst.id};
      const auto path = route(flow);
      if (!path) continue;
      std::set<std::uint32_t> seen;
      for (AdId ad : *path) EXPECT_TRUE(seen.insert(ad.v).second);
    }
  }
}

TEST_F(IdrpTest, StubsNeverTransit) {
  run();
  for (const Ad& src : fig_.topo.ads()) {
    for (const Ad& dst : fig_.topo.ads()) {
      if (src.id == dst.id) continue;
      const auto path = route(FlowSpec{src.id, dst.id});
      if (!path) continue;
      for (std::size_t i = 1; i + 1 < path->size(); ++i) {
        EXPECT_TRUE(fig_.topo.can_transit((*path)[i]));
      }
    }
  }
}

TEST_F(IdrpTest, AupPolicyBlocksCommercialTraffic) {
  apply_aup(policies_, fig_.backbone_west);
  apply_aup(policies_, fig_.backbone_east);
  run();
  // Research traffic crosses the backbones; commercial traffic cannot
  // (and no alternative path exists between west and east campuses).
  FlowSpec research{fig_.campus[0], fig_.campus[7], Qos::kDefault,
                    UserClass::kResearch, 12};
  FlowSpec commercial{fig_.campus[0], fig_.campus[7], Qos::kDefault,
                      UserClass::kCommercial, 12};
  EXPECT_TRUE(route(research).has_value());
  EXPECT_FALSE(route(commercial).has_value());
}

TEST_F(IdrpTest, SourceSpecificTransitRespected) {
  // BB-East only carries traffic sourced by campus0.
  policies_.clear_terms(fig_.backbone_east);
  PolicyTerm t = open_transit_term(fig_.backbone_east);
  t.sources = AdSet::of({fig_.campus[0]});
  policies_.add_term(t);
  run();
  FlowSpec allowed{fig_.campus[0], fig_.campus[7]};
  FlowSpec denied{fig_.campus[1], fig_.campus[7]};
  const auto ok = route(allowed);
  ASSERT_TRUE(ok.has_value());
  EXPECT_TRUE(policies_.path_is_legal(fig_.topo, allowed, *ok));
  // campus1 can still reach campus7? Only via BB-East... the lateral
  // campus1--campus2 link does not help (campus2 is a stub). So denied.
  EXPECT_FALSE(route(denied).has_value());
}

TEST_F(IdrpTest, ReconvergesAfterLinkFailure) {
  run();
  FlowSpec flow{fig_.campus[0], fig_.campus[6]};
  ASSERT_TRUE(route(flow).has_value());
  net_->set_link_state(
      *fig_.topo.find_link(fig_.backbone_west, fig_.backbone_east), false);
  engine_.run();
  const auto path = route(flow);
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(policies_.path_is_legal(fig_.topo, flow, *path));
  // Must now cross the Reg-1 -- Reg-2 lateral link.
  bool lateral = false;
  for (std::size_t i = 0; i + 1 < path->size(); ++i) {
    if (((*path)[i] == fig_.regional[1] && (*path)[i + 1] == fig_.regional[2]) ||
        ((*path)[i] == fig_.regional[2] && (*path)[i + 1] == fig_.regional[1])) {
      lateral = true;
    }
  }
  EXPECT_TRUE(lateral);
}

TEST_F(IdrpTest, RoutesPerDestCapBounds) {
  IdrpConfig config;
  config.routes_per_dest = 1;
  run(config);
  for (IdrpNode* node : nodes_) {
    for (const Ad& ad : fig_.topo.ads()) {
      EXPECT_LE(node->routes_for(ad.id), 1u);
    }
  }
}

TEST_F(IdrpTest, RibCountsPositiveAfterConvergence) {
  run();
  for (IdrpNode* node : nodes_) {
    EXPECT_GT(node->loc_rib_routes(), 0u);
  }
}

class DvsrTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fig_ = build_figure1();
    policies_ = make_open_policies(fig_.topo);
    net_ = std::make_unique<Network>(engine_, fig_.topo);
    for (const Ad& ad : fig_.topo.ads()) {
      auto node = std::make_unique<DvsrNode>(&policies_);
      nodes_.push_back(node.get());
      net_->attach(ad.id, std::move(node));
    }
  }
  void converge() {
    net_->start_all();
    engine_.run();
  }

  Figure1 fig_;
  PolicySet policies_;
  Engine engine_;
  std::unique_ptr<Network> net_;
  std::vector<DvsrNode*> nodes_;
};

TEST_F(DvsrTest, ProducesLegalSourceRoutes) {
  converge();
  FlowSpec flow{fig_.campus[0], fig_.campus[6]};
  const auto path = nodes_[fig_.campus[0].v]->source_route(flow);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->front(), flow.src);
  EXPECT_EQ(path->back(), flow.dst);
  EXPECT_TRUE(policies_.path_is_legal(fig_.topo, flow, *path));
}

TEST_F(DvsrTest, HonorsPrivateAvoidList) {
  // The source refuses BB-West; hop-by-hop IDRP cannot honor this (the
  // criteria are private), but the DV+SR hybrid can -- if an advertised
  // candidate avoids it.
  policies_.source_policy(fig_.campus[0]).avoid.push_back(
      fig_.backbone_west);
  converge();
  FlowSpec flow{fig_.campus[0], fig_.campus[2]};
  const auto path = nodes_[fig_.campus[0].v]->source_route(flow);
  if (path.has_value()) {
    for (AdId ad : *path) EXPECT_NE(ad, fig_.backbone_west);
  }
}

TEST_F(DvsrTest, LimitedToAdvertisedCandidates) {
  // The paper's point (§5.5.2): the source only chooses among advertised
  // paths. With routes_per_dest = 1 the candidate set collapses and an
  // avoid-constrained source may find nothing even though a legal
  // alternative exists in the topology.
  policies_.source_policy(fig_.campus[0]).avoid.push_back(
      fig_.backbone_west);
  converge();
  FlowSpec flow{fig_.campus[0], fig_.campus[6]};
  const auto path = nodes_[fig_.campus[0].v]->source_route(flow);
  // campus0 sits under Reg-0 whose only parent is BB-West; every route
  // east must cross it, so no candidate qualifies.
  EXPECT_FALSE(path.has_value());
}

}  // namespace
}  // namespace idr
