// Route-flap damping: FlapDamper state-machine unit tests (penalty
// accrual, exponential decay, suppress/reuse crossings, release
// bookkeeping, the max-penalty suppression bound) and an ECMA
// integration test that drives a flapping Figure 1 link with damping on
// vs off -- damping must cut the update churn while the released routes
// still reconverge to full reachability, and MRAI batching must compose
// with suppression rather than race it.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <optional>
#include <vector>

#include "proto/common/damping.hpp"
#include "proto/ecma/ecma_node.hpp"
#include "proto/ecma/partial_order.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "topology/figure1.hpp"

namespace idr {
namespace {

DampingConfig test_config() {
  DampingConfig config;
  config.enabled = true;
  config.penalty_per_flap = 1'000.0;
  config.half_life_ms = 500.0;
  config.suppress_threshold = 2'000.0;
  config.reuse_threshold = 750.0;
  config.max_penalty = 8'000.0;
  return config;
}

constexpr std::uint64_t kKey = 42;

TEST(FlapDamper, SuppressionEngagesOnTheCrossingFlap) {
  FlapDamper damper(test_config());
  // 1000, then ~1871 (one fifth of a half-life of decay), then ~2629:
  // the third flap crosses the 2000 threshold and must report it.
  EXPECT_FALSE(damper.note_flap(kKey, 0.0));
  EXPECT_FALSE(damper.would_suppress(kKey, 0.0));
  EXPECT_FALSE(damper.note_flap(kKey, 100.0));
  EXPECT_FALSE(damper.would_suppress(kKey, 100.0));
  EXPECT_TRUE(damper.note_flap(kKey, 200.0));
  EXPECT_TRUE(damper.would_suppress(kKey, 200.0));
  EXPECT_EQ(damper.stats().flaps, 3u);
  EXPECT_EQ(damper.stats().suppress_events, 1u);
  // Further flaps on a suppressed route are recorded but do not report
  // another crossing (their churn is what suppression silences).
  EXPECT_FALSE(damper.note_flap(kKey, 300.0));
  EXPECT_EQ(damper.stats().suppress_events, 1u);
}

TEST(FlapDamper, PenaltyDecaysToReleaseAtTheAnalyticEta) {
  FlapDamper damper(test_config());
  damper.note_flap(kKey, 0.0);
  damper.note_flap(kKey, 100.0);
  damper.note_flap(kKey, 200.0);
  ASSERT_TRUE(damper.would_suppress(kKey, 200.0));

  // eta = last_flap + half_life * log2(penalty / reuse).
  const double penalty = 1'000.0 * std::exp2(-0.4) +
                         1'000.0 * std::exp2(-0.2) + 1'000.0;
  const SimTime eta = 200.0 + 500.0 * std::log2(penalty / 750.0);
  EXPECT_TRUE(damper.would_suppress(kKey, eta - 1.0));
  EXPECT_FALSE(damper.would_suppress(kKey, eta + 1.0));

  // next_release_eta agrees with the closed form.
  const SimTime reported = damper.next_release_eta(200.0);
  EXPECT_NEAR(reported, eta, 1e-6);

  // would_suppress is pure: the key is still in suppressed state, and
  // release_due is what performs (and counts) the release.
  EXPECT_EQ(damper.stats().reuse_events, 0u);
  EXPECT_EQ(damper.release_due(eta + 1.0), 1u);
  EXPECT_EQ(damper.stats().reuse_events, 1u);
  EXPECT_LT(damper.next_release_eta(eta + 1.0), 0.0);
  EXPECT_EQ(damper.release_due(eta + 2.0), 0u);
}

TEST(FlapDamper, MaxPenaltyBoundsSuppressionAfterTheLastFlap) {
  FlapDamper damper(test_config());
  // Hammer the route far past the cap.
  SimTime t = 0.0;
  for (int i = 0; i < 50; ++i, t += 10.0) damper.note_flap(kKey, t);
  const SimTime last = t - 10.0;
  // Bound: half_life * log2(max_penalty / reuse) after the last flap.
  const SimTime bound = 500.0 * std::log2(8'000.0 / 750.0);
  EXPECT_LE(damper.next_release_eta(last) - last, bound + 1e-6);
  EXPECT_FALSE(damper.would_suppress(kKey, last + bound + 1.0));
}

TEST(FlapDamper, DisabledDamperIsInert) {
  DampingConfig config = test_config();
  config.enabled = false;
  FlapDamper damper(config);
  EXPECT_FALSE(damper.note_flap(kKey, 0.0));
  EXPECT_FALSE(damper.note_flap(kKey, 1.0));
  EXPECT_FALSE(damper.note_flap(kKey, 2.0));
  EXPECT_FALSE(damper.would_suppress(kKey, 2.0));
  EXPECT_EQ(damper.stats().flaps, 0u);
}

// --- ECMA integration: flapping link, damping on vs off ----------------

struct EcmaWorld {
  Figure1 fig;
  OrderResult order;
  Engine engine;
  std::unique_ptr<Network> net;
  std::vector<EcmaNode*> nodes;
};

std::unique_ptr<EcmaWorld> make_world(bool damping) {
  auto w = std::make_unique<EcmaWorld>();
  w->fig = build_figure1();
  w->order = compute_partial_order(w->fig.topo, {});
  EXPECT_TRUE(w->order.ok);
  w->net = std::make_unique<Network>(w->engine, w->fig.topo);
  w->net->set_link_notifications(true);
  for (const Ad& ad : w->fig.topo.ads()) {
    EcmaConfig config;
    config.stub = ad.role == AdRole::kStub || ad.role == AdRole::kMultiHomed;
    // MRAI on: suppression decisions must hold inside batched windows.
    config.mrai_ms = 5.0;
    if (damping) {
      config.damping = test_config();
      config.damping.half_life_ms = 200.0;  // quick release for the test
    }
    auto node = std::make_unique<EcmaNode>(&w->order.order, config);
    w->nodes.push_back(node.get());
    w->net->attach(ad.id, std::move(node));
  }
  w->net->start_all();
  w->engine.run();
  EXPECT_TRUE(w->engine.empty());
  return w;
}

std::optional<std::vector<AdId>> walk(const EcmaWorld& w, AdId src,
                                      AdId dst) {
  std::vector<AdId> path{src};
  bool gone_down = false;
  AdId cur = src;
  std::size_t guard = 0;
  while (cur != dst) {
    if (++guard > w.fig.topo.ad_count()) return std::nullopt;
    const auto fwd = w.nodes[cur.v]->forward(dst, Qos::kDefault, gone_down);
    if (!fwd) return std::nullopt;
    gone_down = gone_down || fwd->sets_gone_down;
    path.push_back(fwd->via);
    cur = fwd->via;
  }
  return path;
}

// Flap one regional uplink `cycles` times, then let the world settle
// (release timers included); returns update messages sent after cold
// convergence.
std::uint64_t flap_and_settle(EcmaWorld& w, std::uint32_t cycles) {
  const auto link =
      w.fig.topo.find_link(w.fig.backbone_west, w.fig.regional[0]);
  EXPECT_TRUE(link.has_value());
  const std::uint64_t before = w.net->total().msgs_sent;
  SimTime t = w.engine.now();
  for (std::uint32_t i = 0; i < cycles; ++i) {
    t += 40.0;
    w.engine.at(t, [&w, link] { w.net->set_link_state(*link, false); });
    t += 40.0;
    w.engine.at(t, [&w, link] { w.net->set_link_state(*link, true); });
  }
  w.engine.run();
  EXPECT_TRUE(w.engine.empty());
  return w.net->total().msgs_sent - before;
}

TEST(EcmaDamping, CutsFlapChurnAndStillReconverges) {
  auto undamped = make_world(/*damping=*/false);
  auto damped = make_world(/*damping=*/true);
  const std::uint64_t churn_off = flap_and_settle(*undamped, 8);
  const std::uint64_t churn_on = flap_and_settle(*damped, 8);

  EXPECT_LT(churn_on, churn_off)
      << "damping must reduce update churn under a flapping link";

  // Both worlds must end fully reconverged: the damped one's releases
  // re-advertise every suppressed route once the penalty decays.
  for (const Ad& src : damped->fig.topo.ads()) {
    for (const Ad& dst : damped->fig.topo.ads()) {
      if (src.id == dst.id) continue;
      EXPECT_TRUE(walk(*damped, src.id, dst.id).has_value())
          << "damped: " << damped->fig.topo.ad(src.id).name << " -> "
          << damped->fig.topo.ad(dst.id).name;
      EXPECT_TRUE(walk(*undamped, src.id, dst.id).has_value())
          << "undamped: " << undamped->fig.topo.ad(src.id).name << " -> "
          << undamped->fig.topo.ad(dst.id).name;
    }
  }

  // The damper actually engaged (otherwise the churn comparison above
  // is vacuous) and nothing is left suppressed after the settle.
  std::uint64_t suppress_events = 0;
  std::size_t still_suppressed = 0;
  for (EcmaNode* node : damped->nodes) {
    suppress_events += node->damper().stats().suppress_events;
    still_suppressed +=
        node->damper().suppressed_count(damped->engine.now());
  }
  EXPECT_GT(suppress_events, 0u);
  EXPECT_EQ(still_suppressed, 0u);
}

}  // namespace
}  // namespace idr
