#include <gtest/gtest.h>

#include "topology/algos.hpp"
#include "topology/figure1.hpp"
#include "topology/parse.hpp"

namespace idr {
namespace {

Topology parse_ok(std::string_view text) {
  TopoParseResult result = parse_topology(text);
  EXPECT_TRUE(std::holds_alternative<Topology>(result))
      << std::get<TopoParseError>(result).describe();
  return std::get<Topology>(std::move(result));
}

TopoParseError parse_err(std::string_view text) {
  TopoParseResult result = parse_topology(text);
  EXPECT_TRUE(std::holds_alternative<TopoParseError>(result));
  return std::get<TopoParseError>(std::move(result));
}

TEST(TopoParse, EmptyAndComments) {
  const Topology t = parse_ok("# nothing here\n\n");
  EXPECT_EQ(t.ad_count(), 0u);
}

TEST(TopoParse, AdsAndLinks) {
  const Topology t = parse_ok(
      "ad BB backbone transit\n"
      "ad R regional transit\n"
      "ad C campus stub\n"
      "link BB R hierarchical delay=10 metric=2\n"
      "link R C hierarchical\n");
  ASSERT_EQ(t.ad_count(), 3u);
  ASSERT_EQ(t.link_count(), 2u);
  EXPECT_EQ(t.ad(AdId{0}).cls, AdClass::kBackbone);
  EXPECT_EQ(t.ad(AdId{2}).role, AdRole::kStub);
  const Link& l = t.link(LinkId{0});
  EXPECT_DOUBLE_EQ(l.delay_ms, 10.0);
  EXPECT_EQ(l.metric, 2u);
  EXPECT_DOUBLE_EQ(t.link(LinkId{1}).delay_ms, 1.0);  // defaults
}

TEST(TopoParse, AllClassesRolesKinds) {
  const Topology t = parse_ok(
      "ad A backbone transit\n"
      "ad B regional hybrid\n"
      "ad C metro multihomed\n"
      "ad D campus stub\n"
      "link A B hierarchical\n"
      "link B C lateral\n"
      "link C D bypass\n");
  EXPECT_EQ(t.count_links(LinkClass::kLateral), 1u);
  EXPECT_EQ(t.count_links(LinkClass::kBypass), 1u);
  EXPECT_EQ(t.count_ads(AdRole::kHybrid), 1u);
}

TEST(TopoParse, Errors) {
  EXPECT_EQ(parse_err("ad X nowhere transit\n").line, 1u);
  EXPECT_EQ(parse_err("ad X campus boss\n").line, 1u);
  EXPECT_EQ(parse_err("ad X campus stub\nad X campus stub\n").line, 2u);
  EXPECT_EQ(parse_err("link A B lateral\n").line, 1u);  // unknown ADs
  EXPECT_NE(parse_err("frob\n").message.find("frob"), std::string::npos);
  EXPECT_NE(parse_err("ad A campus stub\nad B campus stub\n"
                      "link A B lateral delay=-3\n")
                .message.find("delay"),
            std::string::npos);
  EXPECT_NE(parse_err("ad A campus stub\nad B campus stub\n"
                      "link A B lateral metric=0\n")
                .message.find("metric"),
            std::string::npos);
  // self link and duplicate link
  parse_err("ad A campus stub\nlink A A lateral\n");
  parse_err(
      "ad A campus stub\nad B campus stub\n"
      "link A B lateral\nlink B A lateral\n");
}

TEST(TopoParse, RoundTripFigure1) {
  const Figure1 fig = build_figure1();
  const std::string text = format_topology(fig.topo);
  const Topology reparsed = parse_ok(text);
  ASSERT_EQ(reparsed.ad_count(), fig.topo.ad_count());
  ASSERT_EQ(reparsed.link_count(), fig.topo.link_count());
  for (const Ad& ad : fig.topo.ads()) {
    const Ad& other = reparsed.ad(ad.id);
    EXPECT_EQ(other.name, ad.name);
    EXPECT_EQ(other.cls, ad.cls);
    EXPECT_EQ(other.role, ad.role);
  }
  for (const Link& l : fig.topo.links()) {
    const Link& other = reparsed.link(l.id);
    EXPECT_EQ(other.a, l.a);
    EXPECT_EQ(other.b, l.b);
    EXPECT_EQ(other.cls, l.cls);
    EXPECT_DOUBLE_EQ(other.delay_ms, l.delay_ms);
    EXPECT_EQ(other.metric, l.metric);
  }
  EXPECT_EQ(has_cycle(reparsed), has_cycle(fig.topo));
}

}  // namespace
}  // namespace idr
