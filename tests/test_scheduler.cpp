// Scheduler unit tests: the calendar-queue backend must implement the
// exact (time, seq) total order of the reference binary heap -- FIFO
// within a timestamp, stable across bucket overflow/resize and the
// sparse-schedule direct-search fallback -- plus the Engine-level
// contracts the protocols lean on: past-scheduling clamps to now(), and
// generation-guarded node timers die with their node.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "topology/graph.hpp"
#include "util/prng.hpp"

namespace idr {
namespace {

using detail::CalendarQueue;
using detail::SimEvent;

SimEvent ev(SimTime t, std::uint64_t seq) {
  return SimEvent{t, kControlStream, seq, {}};
}

// --- CalendarQueue in isolation ---------------------------------------

TEST(CalendarQueue, SameTimestampPopsInSequenceOrder) {
  CalendarQueue q;
  // Interleave two timestamps; within each, seq must decide.
  for (std::uint64_t s = 0; s < 64; ++s) q.push(ev(s % 2 ? 5.0 : 3.0, s));
  ASSERT_EQ(q.size(), 64u);
  SimTime last_t = -1.0;
  std::uint64_t last_seq = 0;
  while (!q.empty()) {
    EXPECT_EQ(q.min_time(), q.min_time());  // peek is stable
    const SimEvent e = q.pop();
    EXPECT_GE(e.t, last_t);
    if (e.t == last_t) {
      EXPECT_GT(e.seq, last_seq);
    }
    last_t = e.t;
    last_seq = e.seq;
  }
}

TEST(CalendarQueue, GrowsAndShrinksAcrossTheLoadFactorBounds) {
  CalendarQueue q;
  EXPECT_EQ(q.bucket_count(), CalendarQueue::kMinBuckets);
  Prng prng(42);
  std::uint64_t seq = 0;
  for (int i = 0; i < 4096; ++i) {
    q.push(ev(static_cast<SimTime>(prng.below(100'000)) * 0.25, seq++));
  }
  // Overflow forced rehashes: > 2 events per bucket triggers a doubling.
  EXPECT_GT(q.bucket_count(), CalendarQueue::kMinBuckets);
  EXPECT_GE(2 * q.bucket_count(), q.size());
  EXPECT_GT(q.width(), 0.0);

  // Draining pops in nondecreasing (t, seq) order and shrinks the ring
  // back down to the floor.
  SimTime last_t = -1.0;
  std::uint64_t last_seq = 0;
  while (!q.empty()) {
    const SimEvent e = q.pop();
    ASSERT_GE(e.t, last_t);
    if (e.t == last_t) {
      ASSERT_GT(e.seq, last_seq);
    }
    last_t = e.t;
    last_seq = e.seq;
  }
  EXPECT_EQ(q.bucket_count(), CalendarQueue::kMinBuckets);
}

TEST(CalendarQueue, SparseFarFutureScheduleUsesTheFallbackCorrectly) {
  // Events many ring-widths apart force the direct-search fallback; order
  // must still be exact, including a same-time tie in the far future.
  CalendarQueue q;
  q.push(ev(1e9, 0));
  q.push(ev(1.0, 1));
  q.push(ev(1e9, 2));
  q.push(ev(5e8, 3));
  EXPECT_EQ(q.pop().seq, 1u);
  EXPECT_EQ(q.pop().seq, 3u);
  EXPECT_EQ(q.pop().seq, 0u);
  EXPECT_EQ(q.pop().seq, 2u);
  EXPECT_TRUE(q.empty());
}

TEST(CalendarQueue, PushBehindTheScanPositionIsStillFound) {
  // Advance the scan deep into the schedule, then push an earlier event
  // (the "scheduled now after the scan moved on" case): it must pop first.
  CalendarQueue q;
  for (std::uint64_t s = 0; s < 32; ++s) {
    q.push(ev(1000.0 + static_cast<SimTime>(s), s));
  }
  while (q.size() > 8) q.pop();
  q.push(ev(0.5, 100));
  EXPECT_EQ(q.min_time(), 0.5);
  EXPECT_EQ(q.pop().seq, 100u);
}

TEST(CalendarQueue, StreamBreaksTimestampTiesBeforeSeq) {
  // The full event key is (t, stream, seq): at one instant the control
  // stream (0) pops first, then AD streams by id, FIFO within each.
  CalendarQueue q;
  q.push(SimEvent{2.0, 7, 0, {}});
  q.push(SimEvent{2.0, kControlStream, 5, {}});
  q.push(SimEvent{2.0, 3, 9, {}});
  q.push(SimEvent{2.0, 3, 2, {}});
  q.push(SimEvent{1.0, 9, 0, {}});
  EXPECT_EQ(q.pop().stream, 9u);  // earlier time wins over any stream
  EXPECT_EQ(q.pop().stream, kControlStream);
  EXPECT_EQ(q.pop().seq, 2u);
  EXPECT_EQ(q.pop().seq, 9u);
  EXPECT_EQ(q.pop().stream, 7u);
  EXPECT_TRUE(q.empty());
}

TEST(Scheduler, NodeStreamsKeepPerStreamFifoAndControlPriority) {
  // at_node events at one instant run control-first then by stream id,
  // independent of scheduling order -- the property that makes the order
  // shard-count-invariant.
  Engine engine;
  std::vector<int> order;
  engine.at_node(5.0, 2, 1, [&] { order.push_back(2); });
  engine.at_node(5.0, 1, 0, [&] { order.push_back(1); });
  engine.at(5.0, [&] { order.push_back(0); });
  engine.at_node(5.0, 1, 0, [&] { order.push_back(3); });  // FIFO within 1
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 3, 2}));
}

// --- the two backends against each other ------------------------------

TEST(Scheduler, BackendsAgreeOnARandomInterleavedSchedule) {
  // Same seeded mix of schedule-now / schedule-later / duplicate
  // timestamps fed to both engines, including events scheduled from
  // inside callbacks; firing order must be identical.
  std::vector<int> reference;
  for (const SchedulerKind kind :
       {SchedulerKind::kCalendar, SchedulerKind::kBinaryHeap}) {
    std::vector<int> order;
    Engine engine(kind);
    Prng prng(7);
    int next_id = 0;
    std::function<void(int)> spawn = [&](int depth) {
      const int id = next_id++;
      const SimTime delay = static_cast<SimTime>(prng.below(8));  // ties!
      engine.after(delay, [&, id, depth] {
        order.push_back(id);
        if (depth > 0) {
          spawn(depth - 1);
          spawn(depth - 1);
        }
      });
    };
    for (int i = 0; i < 16; ++i) spawn(4);
    engine.run();
    if (kind == SchedulerKind::kCalendar) {
      reference = order;
    } else {
      EXPECT_EQ(order, reference);
    }
  }
}

// --- Engine contracts --------------------------------------------------

TEST(Scheduler, AtClampsPastTimestampsToNow) {
#ifndef NDEBUG
  GTEST_SKIP() << "Engine::at asserts on past timestamps in debug builds; "
                  "the clamp is release-mode behavior";
#else
  Engine engine;
  engine.run_until(100.0);
  ASSERT_EQ(engine.now(), 100.0);
  std::vector<int> order;
  engine.at(100.0, [&] { order.push_back(0); });
  engine.at(50.0, [&] { order.push_back(1); });  // past: clamps to 100
  engine.at(100.0, [&] { order.push_back(2); });
  SimTime fired_at = -1.0;
  engine.at(25.0, [&] { fired_at = engine.now(); });
  engine.run();
  // The clamped events run at now(), FIFO with everything else due now.
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(fired_at, 100.0);
  EXPECT_EQ(engine.now(), 100.0);
#endif
}

TEST(Scheduler, RunUntilAdvancesTheClockPastAnEmptyQueue) {
  Engine engine;
  EXPECT_EQ(engine.run_until(40.0), 0u);
  EXPECT_EQ(engine.now(), 40.0);
}

// --- generation-guarded node timers ------------------------------------

class TimerNode : public Node {
 public:
  TimerNode(int* fired, SimTime delay) : fired_(fired), delay_(delay) {}
  void start() override {
    schedule_guarded(delay_, [this] { ++*fired_; });
  }
  void on_message(AdId, std::span<const std::uint8_t>) override {}

 private:
  int* fired_;
  SimTime delay_;
};

TEST(Scheduler, CrashCancelsGuardedTimersAndRestartRearmsThem) {
  Topology topo;
  const AdId a = topo.add_ad(AdClass::kBackbone, AdRole::kTransit, "a");
  const AdId b = topo.add_ad(AdClass::kCampus, AdRole::kStub, "b");
  topo.add_link(a, b, LinkClass::kHierarchical);

  Engine engine;
  Network net(engine, topo);
  int fired_a = 0;
  int fired_b = 0;
  net.set_node_factory([&](AdId ad) -> std::unique_ptr<Node> {
    return std::make_unique<TimerNode>(ad == a ? &fired_a : &fired_b, 10.0);
  });
  net.attach(a, std::make_unique<TimerNode>(&fired_a, 10.0));
  net.attach(b, std::make_unique<TimerNode>(&fired_b, 10.0));
  net.start_all();

  const std::uint64_t gen_before = net.generation(a);
  engine.after(5.0, [&] { net.crash(a); });  // before a's timer fires
  engine.run_until(20.0);
  EXPECT_EQ(fired_a, 0) << "guarded timer outlived its crashed node";
  EXPECT_EQ(fired_b, 1);
  EXPECT_GT(net.generation(a), gen_before);

  // A restarted node is a fresh generation: its own timers run again.
  net.restart(a);
  engine.run_until(40.0);
  EXPECT_EQ(fired_a, 1);
  EXPECT_EQ(fired_b, 1);
}

}  // namespace
}  // namespace idr
