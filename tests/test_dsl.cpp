#include <gtest/gtest.h>

#include "policy/dsl.hpp"
#include "policy/generator.hpp"
#include "topology/figure1.hpp"
#include "topology/generator.hpp"

namespace idr {
namespace {

class DslTest : public ::testing::Test {
 protected:
  void SetUp() override { fig_ = build_figure1(); }

  PolicySet parse_ok(std::string_view text) {
    DslResult result = parse_policies(fig_.topo, text);
    EXPECT_TRUE(std::holds_alternative<PolicySet>(result))
        << std::get<DslError>(result).describe();
    return std::get<PolicySet>(std::move(result));
  }

  DslError parse_err(std::string_view text) {
    DslResult result = parse_policies(fig_.topo, text);
    EXPECT_TRUE(std::holds_alternative<DslError>(result));
    return std::get<DslError>(std::move(result));
  }

  Figure1 fig_;
};

TEST_F(DslTest, EmptyAndComments) {
  const PolicySet p = parse_ok("\n# just a comment\n   \n");
  EXPECT_EQ(p.total_terms(), 0u);
}

TEST_F(DslTest, MinimalTerm) {
  const PolicySet p = parse_ok("term owner=BB-West\n");
  const auto terms = p.terms(fig_.backbone_west);
  ASSERT_EQ(terms.size(), 1u);
  EXPECT_TRUE(terms[0].sources.is_any());
  EXPECT_EQ(terms[0].qos_mask, kAllQosMask);
  EXPECT_EQ(terms[0].cost, 1u);
}

TEST_F(DslTest, FullTerm) {
  const PolicySet p = parse_ok(
      "term owner=Reg-1 id=7 src={Campus-0,Campus-2} dst=* prev=* "
      "next={BB-West} qos={default,low-delay} uci={research} hours=8-18 "
      "cost=3\n");
  const auto terms = p.terms(fig_.regional[1]);
  ASSERT_EQ(terms.size(), 1u);
  const PolicyTerm& t = terms[0];
  EXPECT_EQ(t.id, 7u);
  EXPECT_FALSE(t.sources.is_any());
  EXPECT_TRUE(t.sources.contains(fig_.campus[0]));
  EXPECT_TRUE(t.sources.contains(fig_.campus[2]));
  EXPECT_FALSE(t.sources.contains(fig_.campus[1]));
  EXPECT_TRUE(t.dests.is_any());
  EXPECT_TRUE(t.next_hops.contains(fig_.backbone_west));
  EXPECT_FALSE(t.next_hops.contains(fig_.backbone_east));
  EXPECT_EQ(t.qos_mask, qos_bit(Qos::kDefault) | qos_bit(Qos::kLowDelay));
  EXPECT_EQ(t.uci_mask, uci_bit(UserClass::kResearch));
  EXPECT_EQ(t.hour_begin, 8);
  EXPECT_EQ(t.hour_end, 18);
  EXPECT_EQ(t.cost, 3u);
}

TEST_F(DslTest, SourceStatement) {
  const PolicySet p = parse_ok(
      "source Campus-0 avoid={BB-East} max-hops=12 prefer=hops\n");
  const SourcePolicy& sp = p.source_policy(fig_.campus[0]);
  ASSERT_EQ(sp.avoid.size(), 1u);
  EXPECT_EQ(sp.avoid[0], fig_.backbone_east);
  EXPECT_EQ(sp.max_hops, 12u);
  EXPECT_FALSE(sp.prefer_min_cost);
}

TEST_F(DslTest, MultipleStatements) {
  const PolicySet p = parse_ok(
      "term owner=BB-West cost=1\n"
      "term owner=BB-West uci={research} cost=2   # AUP\n"
      "term owner=BB-East cost=5\n"
      "source Campus-1 avoid={Reg-2}\n");
  EXPECT_EQ(p.terms(fig_.backbone_west).size(), 2u);
  EXPECT_EQ(p.terms(fig_.backbone_east).size(), 1u);
  EXPECT_EQ(p.source_policy(fig_.campus[1]).avoid.size(), 1u);
}

TEST_F(DslTest, ErrorUnknownAd) {
  const DslError e = parse_err("term owner=Nowhere\n");
  EXPECT_EQ(e.line, 1u);
  EXPECT_NE(e.message.find("Nowhere"), std::string::npos);
}

TEST_F(DslTest, ErrorReportsLineNumber) {
  const DslError e = parse_err(
      "term owner=BB-West\n"
      "# fine\n"
      "term owner=BB-East hours=9\n");
  EXPECT_EQ(e.line, 3u);
}

TEST_F(DslTest, ErrorBadKeyword) {
  EXPECT_NE(parse_err("frobnicate all\n").message.find("frobnicate"),
            std::string::npos);
}

TEST_F(DslTest, ErrorMissingOwner) {
  const DslError e = parse_err("term cost=3\n");
  EXPECT_NE(e.message.find("owner"), std::string::npos);
}

TEST_F(DslTest, ErrorBadQos) {
  parse_err("term owner=BB-West qos={warp-speed}\n");
}

TEST_F(DslTest, ErrorBadHours) {
  parse_err("term owner=BB-West hours=8-99\n");
  parse_err("term owner=BB-West hours=noon\n");
}

TEST_F(DslTest, ErrorBadPrefer) {
  parse_err("source Campus-0 prefer=magic\n");
}

TEST_F(DslTest, RoundTripGeneratedPolicies) {
  const PolicySet original = make_provider_customer_policies(fig_.topo);
  const std::string text = format_policies(fig_.topo, original);
  const PolicySet reparsed = parse_ok(text);
  ASSERT_EQ(reparsed.total_terms(), original.total_terms());
  for (const Ad& ad : fig_.topo.ads()) {
    const auto a = original.terms(ad.id);
    const auto b = reparsed.terms(ad.id);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i], b[i]) << fig_.topo.ad(ad.id).name << " term " << i;
    }
  }
}

TEST_F(DslTest, RoundTripSourcePolicies) {
  PolicySet original(fig_.topo.ad_count());
  original.source_policy(fig_.campus[3]).avoid = {fig_.backbone_west};
  original.source_policy(fig_.campus[3]).max_hops = 9;
  original.source_policy(fig_.campus[3]).prefer_min_cost = false;
  const std::string text = format_policies(fig_.topo, original);
  const PolicySet reparsed = parse_ok(text);
  const SourcePolicy& sp = reparsed.source_policy(fig_.campus[3]);
  EXPECT_EQ(sp.avoid, original.source_policy(fig_.campus[3]).avoid);
  EXPECT_EQ(sp.max_hops, 9u);
  EXPECT_FALSE(sp.prefer_min_cost);
}

TEST_F(DslTest, ParsedPoliciesDriveLegality) {
  // An AUP written in the DSL behaves like one built programmatically.
  const PolicySet p = parse_ok(
      "term owner=BB-West uci={research}\n"
      "term owner=BB-East\n"
      "term owner=Reg-0\nterm owner=Reg-1\nterm owner=Reg-2\n"
      "term owner=Reg-3\n");
  FlowSpec research{fig_.campus[0], fig_.campus[6], Qos::kDefault,
                    UserClass::kResearch, 12};
  FlowSpec commercial = research;
  commercial.uci = UserClass::kCommercial;
  const std::vector<AdId> path{fig_.campus[0],  fig_.regional[0],
                               fig_.backbone_west, fig_.backbone_east,
                               fig_.regional[3], fig_.campus[6]};
  EXPECT_TRUE(p.path_is_legal(fig_.topo, research, path));
  EXPECT_FALSE(p.path_is_legal(fig_.topo, commercial, path));
}

TEST_F(DslTest, WrappedHourWindowRoundTrips) {
  const PolicySet p = parse_ok("term owner=BB-West hours=22-4\n");
  const auto terms = p.terms(fig_.backbone_west);
  ASSERT_EQ(terms.size(), 1u);
  EXPECT_TRUE(terms[0].hour_in_window(23));
  EXPECT_TRUE(terms[0].hour_in_window(2));
  EXPECT_FALSE(terms[0].hour_in_window(12));
  const std::string text = format_policies(fig_.topo, p);
  const PolicySet reparsed = parse_ok(text);
  EXPECT_EQ(reparsed.terms(fig_.backbone_west)[0], terms[0]);
}

TEST_F(DslTest, FindAdByName) {
  EXPECT_EQ(find_ad_by_name(fig_.topo, "BB-West"), fig_.backbone_west);
  EXPECT_FALSE(find_ad_by_name(fig_.topo, "nope").has_value());
}

// Round-trip over *generated* policy databases, not just hand-written
// figures: every restricted/AUP/avoid-list shape the scenario and simtest
// generators emit must print to text that parses back to the same
// database, and the printed form must be canonical (format o parse is the
// identity on format's image, byte for byte).
TEST(DslGenerated, RestrictedPoliciesRoundTripByteIdentical) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    SCOPED_TRACE(seed);
    Prng prng(seed);
    const Topology topo = generate_topology_of_size(32, prng);
    RestrictionParams params;
    params.restrict_prob = 0.5;
    params.qos_restrict_prob = 0.4;
    params.uci_restrict_prob = 0.4;
    params.tod_restrict_prob = 0.4;
    PolicySet policies = make_restricted_policies(
        topo, make_provider_customer_policies(topo), params, prng);
    for (const Ad& ad : topo.ads()) {
      if (ad.cls == AdClass::kBackbone) {
        apply_aup(policies, ad.id);
        break;
      }
    }
    add_source_avoidance(topo, policies, 0.3, prng);

    const std::string text = format_policies(topo, policies);
    DslResult parsed = parse_policies(topo, text);
    ASSERT_TRUE(std::holds_alternative<PolicySet>(parsed))
        << std::get<DslError>(parsed).describe();
    const PolicySet& reparsed = std::get<PolicySet>(parsed);
    EXPECT_EQ(format_policies(topo, reparsed), text);
    for (const Ad& ad : topo.ads()) {
      const auto a = policies.terms(ad.id);
      const auto b = reparsed.terms(ad.id);
      ASSERT_EQ(a.size(), b.size()) << ad.name;
      for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i], b[i]) << ad.name << " term " << i;
      }
      EXPECT_EQ(policies.source_policy(ad.id).avoid,
                reparsed.source_policy(ad.id).avoid)
          << ad.name;
      EXPECT_EQ(policies.source_policy(ad.id).max_hops,
                reparsed.source_policy(ad.id).max_hops)
          << ad.name;
    }
  }
}

}  // namespace
}  // namespace idr
