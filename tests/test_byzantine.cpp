// Byzantine-AD fault model: receiver-side defenses, containment, and the
// policy-compliance auditor.
//
// The ECMA tests pin down the smallest interesting attack end to end: a
// regional AD "leaks" by stamping every advertisement down-only, which
// lets an above neighbor install a down-then-up route the up*down* rule
// forbids. Undefended receivers accept the lie; with the receiver-side
// partial-order check armed, the claim is provably impossible (below the
// sender's static down-links-only distance) and is rejected.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "core/chaos.hpp"
#include "proto/ecma/ecma_node.hpp"
#include "proto/ecma/partial_order.hpp"
#include "sim/engine.hpp"
#include "sim/invariants.hpp"
#include "sim/network.hpp"
#include "topology/figure1.hpp"

namespace idr {
namespace {

// --- ECMA receiver-side up/down enforcement ---------------------------

struct EcmaLeakRun {
  Figure1 fig;
  OrderResult order;
  Engine engine;
  std::unique_ptr<Network> net;
  std::vector<EcmaNode*> nodes;
};

// Reg-2 route-leaks from t=0: every advertisement it sends claims
// down-only shape, including its genuine up-then-down route to Reg-3's
// campuses. Reg-1 sits above Reg-2, so down-only claims are exactly what
// it is allowed to import from that neighbor.
std::unique_ptr<EcmaLeakRun> run_ecma_leak(bool defended) {
  auto run = std::make_unique<EcmaLeakRun>();
  run->fig = build_figure1();
  run->order = compute_partial_order(run->fig.topo, {});
  EXPECT_TRUE(run->order.ok);
  run->net = std::make_unique<Network>(run->engine, run->fig.topo);
  for (const Ad& ad : run->fig.topo.ads()) {
    EcmaConfig config;
    config.stub = ad.role == AdRole::kStub || ad.role == AdRole::kMultiHomed;
    config.receiver_order_check = defended;
    auto node = std::make_unique<EcmaNode>(&run->order.order, config);
    run->nodes.push_back(node.get());
    run->net->attach(ad.id, std::move(node));
  }
  ByzantineSpec leak;
  leak.ad = run->fig.regional[2];
  leak.kind = Misbehavior::kRouteLeak;
  leak.start_ms = 0.0;
  run->net->set_misbehavior(leak);
  run->net->start_all();
  run->engine.run();
  return run;
}

TEST(EcmaReceiverDefense, UndefendedReceiverAcceptsLeakedDownThenUpRoute) {
  const auto run = run_ecma_leak(/*defended=*/false);
  EcmaNode* reg1 = run->nodes[run->fig.regional[1].v];
  // A packet at Reg-1 that has already gone down may only follow
  // down-only routes. Honestly there is none toward campus-6 (it needs
  // an up hop through a backbone); the leak fabricates one via Reg-2.
  const auto fwd =
      reg1->forward(run->fig.campus[6], Qos::kDefault, /*gone_down=*/true);
  ASSERT_TRUE(fwd.has_value());
  EXPECT_EQ(fwd->via, run->fig.regional[2]);
  EXPECT_EQ(run->net->total().defense_rejections, 0u);
}

TEST(EcmaReceiverDefense, DefendedReceiverRejectsLeakedDownThenUpRoute) {
  const auto run = run_ecma_leak(/*defended=*/true);
  EcmaNode* reg1 = run->nodes[run->fig.regional[1].v];
  // The static down-links-only distance from Reg-2 to campus-6 is
  // infinite, so any finite down-only claim is a provable lie.
  const auto fwd =
      reg1->forward(run->fig.campus[6], Qos::kDefault, /*gone_down=*/true);
  EXPECT_FALSE(fwd.has_value());
  EXPECT_GT(run->net->total().defense_rejections, 0u);

  // Truthful down-only claims from the same (lying) neighbor still pass:
  // campus-4 really is one down hop below Reg-2.
  const auto ok =
      reg1->forward(run->fig.campus[4], Qos::kDefault, /*gone_down=*/true);
  ASSERT_TRUE(ok.has_value());
  EXPECT_EQ(ok->via, run->fig.regional[2]);
}

// --- chaos-harness Byzantine layer ------------------------------------

ChaosParams byzantine_params(bool defended) {
  ChaosParams params;
  params.seed = 11;
  params.horizon_ms = 6'000.0;
  params.churn_fraction = 0.0;  // every violation is attributable
  params.faults = FaultConfig{};
  params.policy_mode = PolicyMode::kProviderCustomer;
  params.byzantine.count = 4;
  params.byzantine.defended = defended;
  params.audit.sample_pairs = 0;  // audit every honest ordered pair
  return params;
}

TEST(ByzantineChaos, DefendedRunsContainEveryDesignPoint) {
  for (const std::string& arch : chaos_design_points()) {
    SCOPED_TRACE(arch);
    const ChaosResult r = run_chaos(arch, byzantine_params(true));
    EXPECT_TRUE(r.defended);
    EXPECT_EQ(r.byzantine.size(), 4u);
    EXPECT_GT(r.defense_rejections, 0u);
    EXPECT_TRUE(r.audit.contained());
    // No persistent compliance violation survives for any honest pair.
    EXPECT_EQ(r.audit.final_pollution, 0.0);
    EXPECT_EQ(r.invariants.persistent_violations(), 0u);
  }
}

TEST(ByzantineChaos, UndefendedRunsShowBlastRadius) {
  std::uint64_t violation_pairs = 0;
  double worst_pollution = 0.0;
  for (const std::string& arch : chaos_design_points()) {
    SCOPED_TRACE(arch);
    const ChaosResult r = run_chaos(arch, byzantine_params(false));
    EXPECT_FALSE(r.defended);
    EXPECT_EQ(r.defense_rejections, 0u);
    violation_pairs += r.audit.violation_pairs();
    if (r.audit.peak_pollution > worst_pollution) {
      worst_pollution = r.audit.peak_pollution;
    }
  }
  // The same schedule that defended runs contain must, undefended, do
  // real damage -- otherwise the attacks are not actually wired in.
  EXPECT_GT(violation_pairs, 0u);
  EXPECT_GT(worst_pollution, 0.0);
}

TEST(ByzantineChaos, DeterministicAcrossRepeats) {
  for (const bool defended : {false, true}) {
    SCOPED_TRACE(defended ? "defended" : "undefended");
    const ChaosResult a = run_chaos("ls-hbh", byzantine_params(defended));
    const ChaosResult b = run_chaos("ls-hbh", byzantine_params(defended));
    EXPECT_EQ(a.counter_fingerprint, b.counter_fingerprint);
    EXPECT_EQ(a.audit.violation_pairs(), b.audit.violation_pairs());
    EXPECT_EQ(a.audit.peak_pollution, b.audit.peak_pollution);
  }
}

TEST(ByzantineChaos, ScheduleHonorsRequestedKinds) {
  ChaosParams params = byzantine_params(false);
  params.byzantine.count = 2;
  params.byzantine.kinds = {Misbehavior::kBlackHole};
  const ChaosResult r = run_chaos("idrp", params);
  ASSERT_EQ(r.byzantine.size(), 2u);
  for (const ByzantineSpec& spec : r.byzantine) {
    EXPECT_EQ(spec.kind, Misbehavior::kBlackHole);
    EXPECT_FALSE(spec.victim.valid());  // victims are for false-origin only
  }
}

TEST(ByzantineChaos, ByzantineScheduleIsIndependentOfChurnStreams) {
  // The Byzantine draw must not perturb the churn/fault schedule: a run
  // with byzantine.count == 0 keeps the exact counters of the seed's
  // plain chaos run regardless of Byzantine parameters being present.
  ChaosParams plain;
  plain.seed = 3;
  plain.horizon_ms = 4'000.0;
  ChaosParams with_knobs = plain;
  with_knobs.byzantine.detection_delay_ms = 123.0;
  with_knobs.byzantine.onset_ms = 456.0;  // count stays 0
  const ChaosResult a = run_chaos("ecma", plain);
  const ChaosResult b = run_chaos("ecma", with_knobs);
  EXPECT_EQ(a.counter_fingerprint, b.counter_fingerprint);
  EXPECT_TRUE(b.byzantine.empty());
}

// --- InvariantMonitor persistent dedupe -------------------------------

struct IdleNode final : Node {
  void on_message(AdId, std::span<const std::uint8_t>) override {}
};

TEST(InvariantMonitorDedupe, PersistentViolationCountedOncePerPairAndKind) {
  Figure1 fig = build_figure1();
  Engine engine;
  Network net(engine, fig.topo);
  for (const Ad& ad : fig.topo.ads()) {
    net.attach(ad.id, std::make_unique<IdleNode>());
  }
  InvariantConfig config;
  config.cadence_ms = 10.0;
  config.reconverge_window_ms = 1.0;
  config.sample_pairs = 0;  // every ordered pair, every sweep
  // Every probe black-holes while every pair is reachable: the maximal
  // always-broken network.
  InvariantMonitor monitor(net, config, [](AdId src, AdId) {
    Probe probe;
    probe.outcome = ProbeOutcome::kBlackHole;
    probe.path = {src};
    return probe;
  });
  monitor.start(100.0);
  engine.run();

  const std::uint64_t n = fig.topo.ad_count();
  const std::uint64_t pairs = n * (n - 1);
  const InvariantStats& stats = monitor.stats();
  EXPECT_GT(stats.sweeps, 1u);
  // Re-observing the same broken pair on later sweeps must not inflate
  // the persistent count: one per (src, dst, kind), not sweeps * pairs.
  EXPECT_EQ(stats.persistent_black_holes, pairs);
  EXPECT_EQ(stats.persistent_violations(), pairs);
}

}  // namespace
}  // namespace idr
