// Engine equivalence: every alternative backend must be observationally
// identical to the sequential reference. Two axes are cross-checked:
//
//  * scheduler: the calendar queue vs the reference binary heap, both
//    promising the same total order on (time, stream, seq);
//  * execution: the sharded-parallel engine (conservative lookahead
//    windows, 2/4/8 shards, inline and threaded) vs the sequential run.
//
// An entire differential run -- four design points, scripted
// churn/crash/Byzantine schedules, seeded message faults,
// invariant-monitor sweeps -- must come out byte-identical: every flow
// classification count, every violation record, every invariant finding,
// the counter fingerprints and the event totals. Any drift at all means
// a backend reordered two events and is not a drop-in replacement.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "sim/engine.hpp"
#include "sim/invariants.hpp"
#include "simtest/differential.hpp"
#include "simtest/scenario_generator.hpp"
#include "simtest/simcase.hpp"

namespace idr {
namespace {

constexpr std::uint64_t kSeeds = 32;  // acceptance floor: >= 32 seeds

void append_flow(std::ostringstream& out, const FlowSpec& flow) {
  out << flow.src.v << ">" << flow.dst.v << "/"
      << static_cast<int>(flow.qos) << "/" << static_cast<int>(flow.uci)
      << "/" << static_cast<int>(flow.hour);
}

// Full observable surface of one differential run, serialized. Two runs
// are equivalent iff these strings match byte for byte.
std::string transcript(const DiffResult& result) {
  std::ostringstream out;
  out << result.name << " seed=" << result.seed << "\n";
  for (const ArchDiffResult& a : result.archs) {
    out << a.arch << " flows=" << a.flows_total
        << " skipped=" << a.flows_skipped
        << " delivered=" << a.delivered_legal
        << " no-route=" << a.agreed_no_route
        << " expected=" << a.expected_divergences
        << " unknown=" << a.unknown << " fingerprint=" << a.fingerprint
        << " events=" << a.events_processed << "\n";
    for (const DiffFinding& v : a.violations) {
      out << "  violation " << to_string(v.kind) << " ";
      append_flow(out, v.flow);
      out << " path=[";
      for (const AdId hop : v.path) out << hop.v << " ";
      out << "] " << v.detail << "\n";
    }
    const InvariantStats& inv = a.invariants;
    out << "  invariants sweeps=" << inv.sweeps << " probes=" << inv.probes
        << " transient=" << inv.transient_loops << ","
        << inv.transient_black_holes << "," << inv.transient_stale_routes
        << " persistent=" << inv.persistent_loops << ","
        << inv.persistent_black_holes << "," << inv.persistent_stale_routes
        << "\n";
  }
  return out.str();
}

TEST(EngineEquivalence, CalendarAndHeapRunsAreByteIdentical) {
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE(seed);
    SimCaseParams params;
    params.seed = seed;
    const SimCase c = generate_sim_case(params);

    DiffOptions options;
    // Same-seed determinism of one backend is test_simtest's job; here
    // every run budget goes to the cross-backend comparison.
    options.check_determinism = false;

    options.scheduler = SchedulerKind::kCalendar;
    const DiffResult calendar = run_differential(c, options);
    options.scheduler = SchedulerKind::kBinaryHeap;
    const DiffResult heap = run_differential(c, options);

    EXPECT_EQ(transcript(calendar), transcript(heap));
  }
}

TEST(EngineEquivalence, ShardedRunsAreByteIdenticalToSequential) {
  // The tentpole equivalence claim: for every seed and every shard count
  // the conservatively synchronized parallel engine produces the exact
  // sequential transcript. Shard count 1 is the sequential run itself;
  // 2/4/8 partition the case topology and drive the windows inline (the
  // threaded path is covered below -- it executes the same windows).
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    SCOPED_TRACE(seed);
    SimCaseParams params;
    params.seed = seed;
    const SimCase c = generate_sim_case(params);

    DiffOptions options;
    options.check_determinism = false;
    options.shards = 1;
    const std::string reference = transcript(run_differential(c, options));
    for (const std::uint32_t shards : {2u, 4u, 8u}) {
      SCOPED_TRACE(shards);
      options.shards = shards;
      EXPECT_EQ(transcript(run_differential(c, options)), reference);
    }
  }
}

TEST(EngineEquivalence, ThreadedShardsMatchInlineShards) {
  // Real worker threads execute the same per-window schedule the inline
  // coordinator does; a handful of seeds here keeps the TSan job honest
  // without re-running the whole matrix under contention.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE(seed);
    SimCaseParams params;
    params.seed = seed;
    const SimCase c = generate_sim_case(params);

    DiffOptions options;
    options.check_determinism = false;
    options.shards = 4;
    options.threads = 0;
    const std::string inline_run = transcript(run_differential(c, options));
    for (const unsigned threads : {2u, 4u}) {
      SCOPED_TRACE(threads);
      options.threads = threads;
      EXPECT_EQ(transcript(run_differential(c, options)), inline_run);
    }
  }
}

TEST(EngineEquivalence, MinimumLookaheadStressesTheWindowBoundary) {
  // Shrink the window lookahead to (nearly) the minimum legal value so
  // every window closes right at the next event: cross-shard deliveries
  // land exactly on window edges, the case the conservative-sync proof
  // leans on hardest. The transcript must still be byte-identical.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    SCOPED_TRACE(seed);
    SimCaseParams params;
    params.seed = seed;
    const SimCase c = generate_sim_case(params);

    DiffOptions options;
    options.check_determinism = false;
    const std::string reference = transcript(run_differential(c, options));

    options.shards = 4;
    options.lookahead_ms = 1e-3;  // far below any real link delay
    EXPECT_EQ(transcript(run_differential(c, options)), reference);
  }
}

TEST(EngineEquivalence, TranscriptIsSensitiveToTheObservables) {
  // Guard the guard: the transcript must actually distinguish differing
  // results, or the test above proves nothing.
  DiffResult a;
  a.archs.emplace_back();
  a.archs.back().arch = "ecma";
  a.archs.back().fingerprint = 1;
  DiffResult b = a;
  b.archs.back().fingerprint = 2;
  EXPECT_NE(transcript(a), transcript(b));
  b = a;
  b.archs.back().violations.push_back(
      DiffFinding{"ecma", DiffViolation::kLoop, {}, {}, ""});
  EXPECT_NE(transcript(a), transcript(b));
  b = a;
  b.archs.back().invariants.persistent_loops = 1;
  EXPECT_NE(transcript(a), transcript(b));
}

}  // namespace
}  // namespace idr
