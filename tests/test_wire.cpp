#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "policy/term.hpp"
#include "proto/idrp/idrp_node.hpp"
#include "proto/ls/ls_node.hpp"
#include "proto/orwg/lsdb.hpp"
#include "util/prng.hpp"
#include "wire/codec.hpp"

namespace idr {
namespace {

TEST(Codec, ScalarRoundTrip) {
  wire::Writer w;
  w.u8(0xab);
  w.u16(0xbeef);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  wire::Reader r(w.bytes());
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0xbeef);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.done());
}

TEST(Codec, BigEndianOnTheWire) {
  wire::Writer w;
  w.u32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.bytes()[0], 0x01);
  EXPECT_EQ(w.bytes()[3], 0x04);
}

TEST(Codec, StringRoundTrip) {
  wire::Writer w;
  w.str("hello inter-AD world");
  w.str("");
  wire::Reader r(w.bytes());
  EXPECT_EQ(r.str(), "hello inter-AD world");
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.done());
}

TEST(Codec, U32ListRoundTrip) {
  const std::vector<std::uint32_t> values{0, 1, 0xffffffff, 42};
  wire::Writer w;
  w.u32_list(values);
  wire::Reader r(w.bytes());
  EXPECT_EQ(r.u32_list(), values);
  EXPECT_TRUE(r.done());
}

TEST(Codec, TruncatedReadIsStickyFailure) {
  wire::Writer w;
  w.u16(7);
  wire::Reader r(w.bytes());
  EXPECT_EQ(r.u16(), 7);
  EXPECT_EQ(r.u32(), 0u);  // past end
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u8(), 0u);  // still failed
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Codec, TruncatedListFails) {
  wire::Writer w;
  w.u16(10);  // claims 10 entries, provides none
  wire::Reader r(w.bytes());
  EXPECT_TRUE(r.u32_list().empty());
  EXPECT_FALSE(r.ok());
}

TEST(Codec, TruncatedStringFails) {
  wire::Writer w;
  w.u16(100);  // claims 100 bytes
  w.u8('x');
  wire::Reader r(w.bytes());
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(Codec, DoneRequiresFullConsumption) {
  wire::Writer w;
  w.u32(1);
  w.u32(2);
  wire::Reader r(w.bytes());
  r.u32();
  EXPECT_TRUE(r.ok());
  EXPECT_FALSE(r.done());
  r.u32();
  EXPECT_TRUE(r.done());
}

TEST(PduRoundTrip, PolicyTerm) {
  PolicyTerm t;
  t.id = 17;
  t.owner = AdId{3};
  t.sources = AdSet::of({AdId{1}, AdId{2}, AdId{9}});
  t.dests = AdSet::any();
  t.prev_hops = AdSet::of({AdId{4}});
  t.next_hops = AdSet::none();
  t.qos_mask = 0x3;
  t.uci_mask = 0x5;
  t.hour_begin = 22;
  t.hour_end = 4;
  t.cost = 12;

  wire::Writer w;
  t.encode(w);
  wire::Reader r(w.bytes());
  const auto decoded = PolicyTerm::decode(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, t);
  EXPECT_TRUE(r.done());
}

TEST(PduRoundTrip, PolicyTermRejectsBadHours) {
  PolicyTerm t;
  t.owner = AdId{1};
  t.hour_begin = 99;
  wire::Writer w;
  t.encode(w);
  wire::Reader r(w.bytes());
  EXPECT_FALSE(PolicyTerm::decode(r).has_value());
}

TEST(PduRoundTrip, Lsa) {
  Lsa lsa;
  lsa.origin = AdId{5};
  lsa.seq = 99;
  LsAdjacency adj;
  adj.neighbor = AdId{7};
  adj.metric = {1, 2, 3, 4};
  lsa.adjacencies.push_back(adj);

  wire::Writer w;
  lsa.encode(w);
  wire::Reader r(w.bytes());
  const auto decoded = Lsa::decode(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->origin, lsa.origin);
  EXPECT_EQ(decoded->seq, lsa.seq);
  ASSERT_EQ(decoded->adjacencies.size(), 1u);
  EXPECT_EQ(decoded->adjacencies[0].neighbor, AdId{7});
  EXPECT_EQ(decoded->adjacencies[0].metric, adj.metric);
}

TEST(PduRoundTrip, PolicyLsaWithSourcePolicy) {
  PolicyLsa lsa;
  lsa.origin = AdId{2};
  lsa.seq = 3;
  lsa.adjacencies.push_back(PolicyLsaAdjacency{AdId{4}, 10});
  lsa.terms.push_back(open_transit_term(AdId{2}, 0, 5));
  lsa.has_source_policy = true;
  lsa.avoid = {AdId{8}};
  lsa.max_hops = 12;
  lsa.prefer_min_cost = false;

  wire::Writer w;
  lsa.encode(w);
  wire::Reader r(w.bytes());
  const auto decoded = PolicyLsa::decode(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->origin, lsa.origin);
  EXPECT_EQ(decoded->terms.size(), 1u);
  EXPECT_EQ(decoded->terms[0].cost, 5u);
  EXPECT_TRUE(decoded->has_source_policy);
  ASSERT_EQ(decoded->avoid.size(), 1u);
  EXPECT_EQ(decoded->avoid[0], AdId{8});
  EXPECT_EQ(decoded->max_hops, 12u);
  EXPECT_FALSE(decoded->prefer_min_cost);
}

TEST(PduRoundTrip, IdrpRoute) {
  IdrpRoute route;
  route.dst = AdId{9};
  route.path = {AdId{1}, AdId{4}, AdId{9}};
  route.attrs.sources = AdSet::of({AdId{0}, AdId{2}});
  route.attrs.qos_mask = 0x1;
  route.attrs.uci_mask = 0x7;
  route.attrs.hour_mask = hour_window_mask(8, 18);
  route.attrs.cost = 6;

  wire::Writer w;
  route.encode(w);
  wire::Reader r(w.bytes());
  const auto decoded = IdrpRoute::decode(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->dst, route.dst);
  EXPECT_EQ(decoded->path, route.path);
  EXPECT_EQ(decoded->attrs, route.attrs);
}

// Fuzz-ish robustness: decoding random bytes must never crash and must
// signal failure through Reader state rather than garbage acceptance of
// truncated input.
TEST(DecoderRobustness, RandomBytesNeverCrash) {
  Prng prng(0xf22);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> junk(prng.below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(prng.below(256));
    {
      wire::Reader r(junk);
      (void)PolicyTerm::decode(r);
    }
    {
      wire::Reader r(junk);
      (void)PolicyLsa::decode(r);
    }
    {
      wire::Reader r(junk);
      (void)IdrpRoute::decode(r);
    }
    {
      wire::Reader r(junk);
      (void)Lsa::decode(r);
    }
  }
  SUCCEED();
}

// Truncation property: every strict prefix of a valid encoding must fail
// to decode (no silent acceptance of cut-off PDUs).
TEST(DecoderRobustness, AllPrefixesOfPolicyTermFail) {
  PolicyTerm t = open_transit_term(AdId{1}, 2, 3);
  t.sources = AdSet::of({AdId{5}, AdId{6}});
  wire::Writer w;
  t.encode(w);
  const auto& bytes = w.bytes();
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    wire::Reader r(std::span(bytes.data(), len));
    const auto decoded = PolicyTerm::decode(r);
    // Either the decode failed, or it consumed less than the prefix
    // (which strict framing would reject via done()).
    if (decoded.has_value()) {
      EXPECT_FALSE(r.ok() && r.remaining() == 0 && len == bytes.size());
    }
  }
  SUCCEED();
}

}  // namespace
}  // namespace idr
