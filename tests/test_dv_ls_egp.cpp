#include <gtest/gtest.h>

#include <memory>

#include "proto/dv/dv_node.hpp"
#include "proto/egp/egp_node.hpp"
#include "proto/ls/ls_node.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "topology/algos.hpp"
#include "topology/figure1.hpp"

namespace idr {
namespace {

// Harness owning a topology, engine, network and typed nodes.
template <typename NodeT>
struct Net {
  explicit Net(Topology t) : topo(std::move(t)), net(engine, topo) {}

  template <typename... Args>
  void attach_all(Args&&... args) {
    for (const Ad& ad : topo.ads()) {
      auto node = std::make_unique<NodeT>(args...);
      nodes.push_back(node.get());
      net.attach(ad.id, std::move(node));
    }
  }
  void converge() {
    net.start_all();
    engine.run();
  }

  Topology topo;
  Engine engine;
  Network net;
  std::vector<NodeT*> nodes;
};

Topology line(int n) {
  Topology t;
  for (int i = 0; i < n; ++i) t.add_ad(AdClass::kCampus, AdRole::kTransit);
  for (int i = 1; i < n; ++i) {
    t.add_link(AdId{static_cast<std::uint32_t>(i - 1)},
               AdId{static_cast<std::uint32_t>(i)}, LinkClass::kLateral);
  }
  return t;
}

TEST(Dv, ConvergesOnLine) {
  Net<DvNode> net(line(5));
  net.attach_all();
  net.converge();
  EXPECT_EQ(net.nodes[0]->distance(AdId{4}), 4);
  EXPECT_EQ(*net.nodes[0]->next_hop(AdId{4}), AdId{1});
  EXPECT_EQ(net.nodes[4]->distance(AdId{0}), 4);
}

TEST(Dv, ConvergesOnFigure1) {
  Net<DvNode> net(build_figure1().topo);
  net.attach_all();
  net.converge();
  // Every node can reach every other node.
  for (DvNode* node : net.nodes) {
    for (const Ad& ad : net.topo.ads()) {
      EXPECT_LT(node->distance(ad.id), 16);
    }
  }
}

TEST(Dv, RoutesFollowShortestHops) {
  Figure1 fig = build_figure1();
  Net<DvNode> net(fig.topo);
  net.attach_all();
  net.converge();
  for (const Ad& dst : net.topo.ads()) {
    const auto dist = hop_distances(net.topo, dst.id);
    for (const Ad& src : net.topo.ads()) {
      EXPECT_EQ(net.nodes[src.id.v]->distance(dst.id), dist[src.id.v]);
    }
  }
}

TEST(Dv, LinkFailureReconverges) {
  Net<DvNode> net(line(4));
  net.attach_all();
  net.converge();
  EXPECT_EQ(net.nodes[0]->distance(AdId{3}), 3);
  net.net.set_link_state(*net.topo.find_link(AdId{2}, AdId{3}), false);
  net.engine.run();
  // No alternative path: destination becomes unreachable.
  EXPECT_FALSE(net.nodes[0]->next_hop(AdId{3}).has_value());
}

// Triangle with a slow third side plus a pendant destination: when the
// pendant link dies, the slow side keeps stale information circulating
// and the metric for the dead destination counts up in a three-node loop
// (split horizon cannot stop loops of length three). The climb is
// bounded by the configured infinity; shrinking infinity shrinks the
// message storm -- the classic count-to-infinity behaviour the paper
// cites against DV (§4.3).
Topology delayed_triangle() {
  Topology t;
  for (int i = 0; i < 4; ++i) t.add_ad(AdClass::kCampus, AdRole::kTransit);
  t.add_link(AdId{0}, AdId{1}, LinkClass::kLateral, /*delay=*/1.0);
  t.add_link(AdId{1}, AdId{2}, LinkClass::kLateral, /*delay=*/1.0);
  t.add_link(AdId{0}, AdId{2}, LinkClass::kLateral, /*delay=*/50.0);
  t.add_link(AdId{2}, AdId{3}, LinkClass::kLateral, /*delay=*/1.0);
  return t;
}

std::uint64_t reconvergence_msgs(std::uint16_t infinity) {
  DvConfig config;
  config.split_horizon = false;
  config.infinity = infinity;
  Net<DvNode> net(delayed_triangle());
  net.attach_all(config);
  net.converge();
  const auto before = net.net.total().msgs_sent;
  net.net.set_link_state(*net.topo.find_link(AdId{2}, AdId{3}), false);
  net.engine.run();
  // Destination 3 must end unreachable from everywhere.
  for (DvNode* node : net.nodes) {
    if (node == net.nodes[3]) continue;
    EXPECT_FALSE(node->next_hop(AdId{3}).has_value());
  }
  return net.net.total().msgs_sent - before;
}

TEST(Dv, CountToInfinityBoundedByMetricCeiling) {
  const std::uint64_t msgs_small = reconvergence_msgs(8);
  const std::uint64_t msgs_large = reconvergence_msgs(64);
  // The storm grows with the metric ceiling: the protocol is literally
  // counting to infinity.
  EXPECT_LT(msgs_small, msgs_large);
  EXPECT_GT(msgs_large, 3 * msgs_small / 2);
}

TEST(Dv, PoisonedReverseAdvertisesInfinity) {
  DvConfig pr;
  pr.split_horizon = true;
  pr.poisoned_reverse = true;
  Net<DvNode> net(line(3));
  net.attach_all(pr);
  net.converge();
  EXPECT_EQ(net.nodes[0]->distance(AdId{2}), 2);
}

TEST(Ls, ConvergesAndMatchesDijkstra) {
  Figure1 fig = build_figure1();
  Net<LsNode> net(fig.topo);
  net.attach_all();
  net.converge();
  for (LsNode* node : net.nodes) {
    EXPECT_EQ(node->lsdb_size(), net.topo.ad_count());
  }
  // Default QoS uses the administrative metric (all 1): next hops follow
  // hop-count shortest paths.
  const auto path = shortest_path_hops(net.topo, fig.campus[0],
                                       fig.campus[6]);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(*net.nodes[fig.campus[0].v]->next_hop(fig.campus[6],
                                                  Qos::kDefault),
            (*path)[1]);
}

TEST(Ls, QosMetricsDiffer) {
  // Low-delay QoS weights link delay: a low-metric high-delay link should
  // be preferred for default QoS but possibly not for low delay.
  Topology t;
  const AdId a = t.add_ad(AdClass::kCampus, AdRole::kTransit);
  const AdId b = t.add_ad(AdClass::kCampus, AdRole::kTransit);
  const AdId c = t.add_ad(AdClass::kCampus, AdRole::kTransit);
  t.add_link(a, c, LinkClass::kLateral, /*delay=*/100.0, /*metric=*/1);
  t.add_link(a, b, LinkClass::kLateral, /*delay=*/1.0, /*metric=*/5);
  t.add_link(b, c, LinkClass::kLateral, /*delay=*/1.0, /*metric=*/5);
  Net<LsNode> net(t);
  net.attach_all();
  net.converge();
  EXPECT_EQ(*net.nodes[a.v]->next_hop(c, Qos::kDefault), c);
  EXPECT_EQ(*net.nodes[a.v]->next_hop(c, Qos::kLowDelay), b);
}

TEST(Ls, LinkFailureTriggersReflood) {
  Figure1 fig = build_figure1();
  Net<LsNode> net(fig.topo);
  net.attach_all();
  net.converge();
  // Before the cut, BB-West reaches campus0 via Reg-0.
  ASSERT_EQ(*net.nodes[fig.backbone_west.v]->next_hop(fig.campus[0],
                                                      Qos::kDefault),
            fig.regional[0]);
  // Cut campus0's only link: after re-flooding, every node must see it
  // as unreachable.
  const LinkId cut = *net.topo.find_link(fig.regional[0], fig.campus[0]);
  net.net.set_link_state(cut, false);
  net.engine.run();
  const auto next =
      net.nodes[fig.backbone_west.v]->next_hop(fig.campus[0], Qos::kDefault);
  EXPECT_FALSE(next.has_value());
  // And the rest of the topology still routes (re-flood did not wedge).
  EXPECT_TRUE(net.nodes[fig.backbone_west.v]
                  ->next_hop(fig.campus[6], Qos::kDefault)
                  .has_value());
}

TEST(Ls, SpfRunsCounted) {
  Net<LsNode> net(line(3));
  net.attach_all();
  net.converge();
  EXPECT_EQ(net.nodes[0]->spf_runs(), 0u);  // lazy
  (void)net.nodes[0]->next_hop(AdId{2}, Qos::kDefault);
  EXPECT_EQ(net.nodes[0]->spf_runs(), kQosCount);
}

TEST(Egp, ApplicabilityCheck) {
  EXPECT_TRUE(egp_applicable(line(4)));
  EXPECT_FALSE(egp_applicable(build_figure1().topo));
  Topology cyclic = line(3);
  cyclic.add_link(AdId{0}, AdId{2}, LinkClass::kLateral);
  EXPECT_FALSE(egp_applicable(cyclic));
}

TEST(Egp, ConvergesOnTree) {
  // Star of lines: a small tree.
  Topology t;
  const AdId root = t.add_ad(AdClass::kBackbone, AdRole::kTransit);
  std::vector<AdId> leaves;
  for (int i = 0; i < 3; ++i) {
    const AdId mid = t.add_ad(AdClass::kRegional, AdRole::kTransit);
    t.add_link(root, mid, LinkClass::kHierarchical);
    const AdId leaf = t.add_ad(AdClass::kCampus, AdRole::kStub);
    t.add_link(mid, leaf, LinkClass::kHierarchical);
    leaves.push_back(leaf);
  }
  Net<EgpNode> net(t);
  net.attach_all();
  net.converge();
  EXPECT_EQ(net.nodes[leaves[0].v]->distance(leaves[2]), 4);
  EXPECT_TRUE(net.nodes[leaves[0].v]->next_hop(leaves[1]).has_value());
}

TEST(Egp, ExportFilterHidesDestinations) {
  Topology t = line(3);
  Engine engine;
  Network net(engine, t);
  std::vector<EgpNode*> nodes;
  for (const Ad& ad : t.ads()) {
    auto node = std::make_unique<EgpNode>();
    nodes.push_back(node.get());
    net.attach(ad.id, std::move(node));
  }
  // Node 1 only shares its own reachability (stub behaviour): node 0
  // must not learn a route to node 2.
  nodes[1]->set_export_filter({1});
  net.start_all();
  engine.run();
  EXPECT_TRUE(nodes[0]->next_hop(AdId{1}).has_value());
  EXPECT_FALSE(nodes[0]->next_hop(AdId{2}).has_value());
}

TEST(Egp, NeighborBiasDisfavorsRoutes) {
  // Diamond is cyclic, so bias is tested on a line: bias inflates the
  // learned metric.
  Topology t = line(3);
  Engine engine;
  Network net(engine, t);
  std::vector<EgpNode*> nodes;
  for (const Ad& ad : t.ads()) {
    auto node = std::make_unique<EgpNode>();
    nodes.push_back(node.get());
    net.attach(ad.id, std::move(node));
  }
  nodes[0]->set_neighbor_bias(AdId{1}, 10);
  net.start_all();
  engine.run();
  EXPECT_EQ(nodes[0]->distance(AdId{2}), 12);  // 2 hops + bias 10
}

TEST(Egp, WithdrawalOnLinkFailure) {
  Topology t = line(3);
  Engine engine;
  Network net(engine, t);
  std::vector<EgpNode*> nodes;
  for (const Ad& ad : t.ads()) {
    auto node = std::make_unique<EgpNode>();
    nodes.push_back(node.get());
    net.attach(ad.id, std::move(node));
  }
  net.start_all();
  engine.run();
  ASSERT_TRUE(nodes[0]->next_hop(AdId{2}).has_value());
  net.set_link_state(*t.find_link(AdId{1}, AdId{2}), false);
  engine.run();
  EXPECT_FALSE(nodes[0]->next_hop(AdId{2}).has_value());
}

}  // namespace
}  // namespace idr
