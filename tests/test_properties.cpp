// Property-based sweeps over randomized scenarios (parameterized by
// seed): the invariants the paper's argument rests on must hold on every
// generated internet, not just on Figure 1.
#include <gtest/gtest.h>

#include <set>

#include "core/adapters.hpp"
#include "core/metrics.hpp"
#include "core/oracle.hpp"
#include "core/scenario.hpp"
#include "topology/generator.hpp"
#include "proto/ecma/partial_order.hpp"

namespace idr {
namespace {

struct SweepParam {
  std::uint64_t seed;
  std::uint32_t ads;
  double restrict_prob;
};

std::ostream& operator<<(std::ostream& os, const SweepParam& p) {
  return os << "seed" << p.seed << "_ads" << p.ads << "_r"
            << static_cast<int>(p.restrict_prob * 100);
}

class ScenarioSweep : public ::testing::TestWithParam<SweepParam> {
 protected:
  void SetUp() override {
    const SweepParam& p = GetParam();
    ScenarioParams params;
    params.seed = p.seed;
    params.target_ads = p.ads;
    params.restrict_prob = p.restrict_prob;
    params.flow_count = 20;
    scenario_ = make_scenario(params);
  }
  Scenario scenario_;
};

// The paper's central claim, as an invariant: the LS+SR+PT architecture
// finds a legal route exactly when one exists, and never emits an
// illegal or looping route.
TEST_P(ScenarioSweep, OrwgIsCompleteAndSound) {
  OrwgArchitecture orwg;
  const ArchEvaluation eval = evaluate_architecture(
      orwg, scenario_.topo, scenario_.policies, scenario_.flows);
  EXPECT_EQ(eval.legal, eval.oracle_routes);
  EXPECT_EQ(eval.illegal, 0u);
  EXPECT_EQ(eval.missed, 0u);
  EXPECT_EQ(eval.looped, 0u);
}

// Hop-by-hop architectures can be *sound but incomplete*: they must not
// loop, and LSHH must never emit an illegal route (it computes from full
// policy knowledge), but both may miss legal routes.
TEST_P(ScenarioSweep, LshhIsSoundAndLoopFree) {
  LshhArchitecture lshh;
  const ArchEvaluation eval = evaluate_architecture(
      lshh, scenario_.topo, scenario_.policies, scenario_.flows);
  EXPECT_EQ(eval.looped, 0u);
  EXPECT_EQ(eval.illegal, 0u);
}

TEST_P(ScenarioSweep, IdrpNeverLoops) {
  IdrpArchitecture idrp;
  const ArchEvaluation eval = evaluate_architecture(
      idrp, scenario_.topo, scenario_.policies, scenario_.flows);
  EXPECT_EQ(eval.looped, 0u);
  // Availability can be below 1.0 (the paper's complaint), never above.
  EXPECT_LE(eval.legal, eval.oracle_routes);
}

TEST_P(ScenarioSweep, EcmaRoutesAreValleyFreeAndLoopFree) {
  EcmaArchitecture ecma;
  ecma.build(scenario_.topo, scenario_.policies);
  const PartialOrder& order = ecma.order_result().order;
  for (const FlowSpec& flow : scenario_.flows) {
    const RouteTrace trace = ecma.trace(flow);
    EXPECT_FALSE(trace.looped);
    if (!trace.path) continue;
    // Up*down* shape.
    bool went_down = false;
    for (std::size_t i = 0; i + 1 < trace.path->size(); ++i) {
      const bool up = order.is_up((*trace.path)[i], (*trace.path)[i + 1]);
      if (up) {
        EXPECT_FALSE(went_down);
      }
      if (!up) went_down = true;
    }
    // Loop-freedom double check.
    std::set<std::uint32_t> seen;
    for (AdId ad : *trace.path) EXPECT_TRUE(seen.insert(ad.v).second);
  }
}

TEST_P(ScenarioSweep, DvsrSourceRoutesAreLoopFreeAndCandidateBound) {
  DvsrArchitecture dvsr;
  const ArchEvaluation eval = evaluate_architecture(
      dvsr, scenario_.topo, scenario_.policies, scenario_.flows);
  EXPECT_EQ(eval.looped, 0u);
  // §5.5.2: without link state, the source cannot exceed what the path
  // vector advertised.
  EXPECT_LE(eval.legal, eval.oracle_routes);
}

// Oracle self-consistency: every best route it emits passes the
// independent legality predicate.
TEST_P(ScenarioSweep, OracleRoutesAreLegal) {
  const Oracle oracle(scenario_.topo, scenario_.policies);
  for (const FlowSpec& flow : scenario_.flows) {
    const SynthesisResult best = oracle.best_route(flow);
    if (best.found()) {
      EXPECT_TRUE(oracle.is_legal(flow, best.path));
    }
  }
}

// The sweeps above compare architectures against oracle.best_route()'s
// found()/not-found answer, which silently degrades to "no route" if the
// expansion budget runs out mid-search. Assert the tri-state explicitly:
// on every sweep scenario (ads up to 96, restrict_prob up to 0.9) the
// default budget must fully resolve every flow to kExists or kNone, so
// the ground truth the other tests lean on is never a budget guess.
TEST_P(ScenarioSweep, OracleBudgetResolvesEveryFlow) {
  const Oracle oracle(scenario_.topo, scenario_.policies);
  for (const FlowSpec& flow : scenario_.flows) {
    EXPECT_NE(oracle.exists(flow), RouteExistence::kUnknown)
        << "oracle budget exhausted: raise the default expansion budget";
    const SynthesisResult best = oracle.best_route(flow);
    EXPECT_NE(best.outcome, SynthesisOutcome::kBudget)
        << "best_route() hit its budget; found()/missed counts in this "
           "sweep would be guesses";
  }
}

// Availability ordering (statistical form of Table 1's qualitative
// ranking): ORWG >= LSHH and ORWG >= IDRP on every scenario.
TEST_P(ScenarioSweep, AvailabilityOrderingHolds) {
  OrwgArchitecture orwg;
  LshhArchitecture lshh;
  IdrpArchitecture idrp;
  const auto e_orwg = evaluate_architecture(orwg, scenario_.topo,
                                            scenario_.policies,
                                            scenario_.flows);
  const auto e_lshh = evaluate_architecture(lshh, scenario_.topo,
                                            scenario_.policies,
                                            scenario_.flows);
  const auto e_idrp = evaluate_architecture(idrp, scenario_.topo,
                                            scenario_.policies,
                                            scenario_.flows);
  EXPECT_GE(e_orwg.legal, e_lshh.legal);
  EXPECT_GE(e_orwg.legal, e_idrp.legal);
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ScenarioSweep,
    ::testing::Values(SweepParam{1, 32, 0.0}, SweepParam{2, 32, 0.3},
                      SweepParam{3, 48, 0.3}, SweepParam{4, 48, 0.6},
                      SweepParam{5, 64, 0.3}, SweepParam{6, 64, 0.6},
                      SweepParam{7, 24, 0.9}, SweepParam{8, 96, 0.3}));

// Churn: random link failures and repairs. After the network quiesces,
// the architectural invariants must hold again on the surviving
// topology -- the paper's §2.2 requirement that protocols be "somewhat
// adaptive to changes in inter-AD topology".
class ChurnSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChurnSweep, InvariantsHoldAfterChurn) {
  ScenarioParams params;
  params.seed = GetParam();
  params.target_ads = 40;
  params.flow_count = 16;
  params.restrict_prob = 0.3;
  Scenario scenario = make_scenario(params);

  OrwgArchitecture orwg;
  orwg.build(scenario.topo, scenario.policies);
  LshhArchitecture lshh;
  lshh.build(scenario.topo, scenario.policies);

  // The same failure/repair schedule hits both architectures' private
  // topologies.
  Prng prng(GetParam() ^ 0xc0ffee);
  for (int i = 0; i < 12; ++i) {
    const LinkId link{
        static_cast<std::uint32_t>(prng.below(scenario.topo.link_count()))};
    const bool up = i % 3 == 2;  // mostly failures, some repairs
    orwg.perturb(link, up);
    lshh.perturb(link, up);
  }

  // Ground truth over the surviving topology (the architecture's copy).
  const Oracle oracle(orwg.topo(), scenario.policies);
  for (const FlowSpec& flow : scenario.flows) {
    const SynthesisResult best = oracle.best_route(flow);
    const RouteTrace trace = orwg.trace(flow);
    EXPECT_FALSE(trace.looped);
    EXPECT_EQ(trace.path.has_value(), best.found()) << "seed " << GetParam();
    if (trace.path) {
      EXPECT_TRUE(scenario.policies.path_is_legal(orwg.topo(), flow,
                                                  *trace.path));
    }
    const RouteTrace hbh = lshh.trace(flow);
    EXPECT_FALSE(hbh.looped);
    if (hbh.path) {
      EXPECT_TRUE(
          scenario.policies.path_is_legal(lshh.topo(), flow, *hbh.path));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChurnSweep,
                         ::testing::Range<std::uint64_t>(1, 7));

// Partial-order properties over random constraint sets.
class OrderSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(OrderSweep, NegotiationAlwaysTerminatesWithValidOrder) {
  Prng prng(GetParam());
  const Topology topo = generate_topology_of_size(48, prng);
  // Random (frequently conflicting) policy constraints between transits.
  std::vector<AdId> transits;
  for (const Ad& ad : topo.ads()) {
    if (ad.role == AdRole::kTransit) transits.push_back(ad.id);
  }
  std::vector<OrderConstraint> policy;
  for (int i = 0; i < 40; ++i) {
    const AdId a = prng.pick(transits);
    const AdId b = prng.pick(transits);
    if (a == b) continue;
    policy.push_back(OrderConstraint{a, b});
  }
  const OrderResult result = compute_partial_order(topo, policy);
  ASSERT_TRUE(result.ok);
  // The surviving constraints are all satisfied by the ordering.
  std::set<std::pair<std::uint32_t, std::uint32_t>> dropped;
  for (const OrderConstraint& c : result.dropped) {
    dropped.insert({c.above.v, c.below.v});
  }
  for (const OrderConstraint& c : policy) {
    if (dropped.contains({c.above.v, c.below.v})) continue;
    EXPECT_LT(result.order.rank(c.above), result.order.rank(c.below));
  }
  // Structural constraints are never dropped.
  for (const OrderConstraint& c : result.dropped) {
    EXPECT_FALSE(c.structural);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderSweep, ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace idr
