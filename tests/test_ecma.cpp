#include <gtest/gtest.h>

#include <memory>

#include "proto/ecma/ecma_node.hpp"
#include "proto/ecma/partial_order.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "topology/figure1.hpp"

namespace idr {
namespace {

TEST(PartialOrder, StructuralConstraintsFollowHierarchy) {
  const Figure1 fig = build_figure1();
  const auto constraints = structural_constraints(fig.topo);
  // Every hierarchical/bypass link between different classes yields one.
  for (const OrderConstraint& c : constraints) {
    EXPECT_TRUE(c.structural);
    EXPECT_LT(static_cast<int>(fig.topo.ad(c.above).cls),
              static_cast<int>(fig.topo.ad(c.below).cls));
  }
}

TEST(PartialOrder, ComputesWithoutPolicyConstraints) {
  const Figure1 fig = build_figure1();
  const OrderResult result = compute_partial_order(fig.topo, {});
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.negotiation_rounds, 0u);
  // Backbones above regionals above campuses.
  EXPECT_LT(result.order.rank(fig.backbone_west),
            result.order.rank(fig.regional[0]));
  EXPECT_LT(result.order.rank(fig.regional[0]),
            result.order.rank(fig.campus[0]));
}

TEST(PartialOrder, PolicyConstraintShiftsRank) {
  const Figure1 fig = build_figure1();
  // Reg-0 demands to sit above Reg-1 (e.g. it refuses to be transit for
  // its peer). Satisfiable: no conflict.
  std::vector<OrderConstraint> policy{{fig.regional[0], fig.regional[1]}};
  const OrderResult result = compute_partial_order(fig.topo, policy);
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(result.dropped.empty());
  EXPECT_LT(result.order.rank(fig.regional[0]),
            result.order.rank(fig.regional[1]));
}

TEST(PartialOrder, ConflictingPoliciesForceNegotiation) {
  const Figure1 fig = build_figure1();
  // Mutually unsatisfiable: R0 above R1 and R1 above R0.
  std::vector<OrderConstraint> policy{
      {fig.regional[0], fig.regional[1]},
      {fig.regional[1], fig.regional[0]},
  };
  const OrderResult result = compute_partial_order(fig.topo, policy);
  ASSERT_TRUE(result.ok);  // resolved by dropping one
  EXPECT_EQ(result.dropped.size(), 1u);
  EXPECT_EQ(result.negotiation_rounds, 1u);
}

TEST(PartialOrder, UpDownOrientationIsAntisymmetricAndTotal) {
  const Figure1 fig = build_figure1();
  const OrderResult result = compute_partial_order(fig.topo, {});
  for (const Link& l : fig.topo.links()) {
    EXPECT_NE(result.order.is_up(l.a, l.b), result.order.is_up(l.b, l.a));
  }
}

class EcmaTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fig_ = build_figure1();
    order_ = compute_partial_order(fig_.topo, {});
    ASSERT_TRUE(order_.ok);
    net_ = std::make_unique<Network>(engine_, fig_.topo);
    for (const Ad& ad : fig_.topo.ads()) {
      EcmaConfig config;
      config.stub =
          ad.role == AdRole::kStub || ad.role == AdRole::kMultiHomed;
      auto node = std::make_unique<EcmaNode>(&order_.order, config);
      nodes_.push_back(node.get());
      net_->attach(ad.id, std::move(node));
    }
    net_->start_all();
    engine_.run();
  }

  // Walks the data plane with the gone-down marker, as a policy gateway
  // chain would.
  std::optional<std::vector<AdId>> route(AdId src, AdId dst,
                                         Qos qos = Qos::kDefault) {
    std::vector<AdId> path{src};
    bool gone_down = false;
    AdId cur = src;
    std::size_t guard = 0;
    while (cur != dst) {
      if (++guard > fig_.topo.ad_count()) return std::nullopt;
      const auto fwd = nodes_[cur.v]->forward(dst, qos, gone_down);
      if (!fwd) return std::nullopt;
      gone_down = gone_down || fwd->sets_gone_down;
      path.push_back(fwd->via);
      cur = fwd->via;
    }
    return path;
  }

  Figure1 fig_;
  OrderResult order_;
  Engine engine_;
  std::unique_ptr<Network> net_;
  std::vector<EcmaNode*> nodes_;
};

TEST_F(EcmaTest, AllPairsReachableOnFigure1) {
  for (const Ad& src : fig_.topo.ads()) {
    for (const Ad& dst : fig_.topo.ads()) {
      if (src.id == dst.id) continue;
      const auto path = route(src.id, dst.id);
      ASSERT_TRUE(path.has_value())
          << fig_.topo.ad(src.id).name << " -> "
          << fig_.topo.ad(dst.id).name;
    }
  }
}

TEST_F(EcmaTest, RoutesAreUpDownShaped) {
  for (const Ad& src : fig_.topo.ads()) {
    for (const Ad& dst : fig_.topo.ads()) {
      if (src.id == dst.id) continue;
      const auto path = route(src.id, dst.id);
      ASSERT_TRUE(path.has_value());
      // Once a down link is traversed, no up link may follow.
      bool went_down = false;
      for (std::size_t i = 0; i + 1 < path->size(); ++i) {
        const bool up = order_.order.is_up((*path)[i], (*path)[i + 1]);
        if (up) EXPECT_FALSE(went_down) << "valley in ECMA route";
        if (!up) went_down = true;
      }
    }
  }
}

TEST_F(EcmaTest, RoutesNeverTransitStubs) {
  for (const Ad& src : fig_.topo.ads()) {
    for (const Ad& dst : fig_.topo.ads()) {
      if (src.id == dst.id) continue;
      const auto path = route(src.id, dst.id);
      ASSERT_TRUE(path.has_value());
      for (std::size_t i = 1; i + 1 < path->size(); ++i) {
        const AdRole role = fig_.topo.ad((*path)[i]).role;
        EXPECT_NE(role, AdRole::kStub);
        EXPECT_NE(role, AdRole::kMultiHomed);
      }
    }
  }
}

TEST_F(EcmaTest, RoutesAreLoopFree) {
  for (const Ad& src : fig_.topo.ads()) {
    const auto path = route(src.id, fig_.campus[7]);
    if (!path) continue;
    std::set<std::uint32_t> seen;
    for (AdId ad : *path) EXPECT_TRUE(seen.insert(ad.v).second);
  }
}

TEST_F(EcmaTest, ReconvergesAfterFailureWithoutCountToInfinity) {
  const auto before = net_->total().msgs_sent;
  net_->set_link_state(
      *fig_.topo.find_link(fig_.backbone_west, fig_.backbone_east), false);
  engine_.run();
  const auto recon_msgs = net_->total().msgs_sent - before;
  // Partial-order DV converges without bouncing to a metric ceiling: the
  // message count stays modest (well under infinity * nodes).
  EXPECT_LT(recon_msgs, 64u * fig_.topo.ad_count());

  // The paper's expressiveness price, demonstrated: a physical detour to
  // the east (Reg-1 > Reg-2 lateral, then UP into BB-East) exists, but
  // its shape is down-then-up, which the up/down rule forbids. ECMA
  // loses east-west connectivity toward Reg-3's campuses even though the
  // internet is not partitioned.
  EXPECT_FALSE(route(fig_.campus[0], fig_.campus[6]).has_value());

  // Flows whose detour stays shape-valid (up, lateral-down, down) keep
  // working.
  const auto ok = route(fig_.campus[2], fig_.campus[4]);
  ASSERT_TRUE(ok.has_value());
  bool crosses_lateral = false;
  for (std::size_t i = 0; i + 1 < ok->size(); ++i) {
    if (((*ok)[i] == fig_.regional[1] && (*ok)[i + 1] == fig_.regional[2]) ||
        ((*ok)[i] == fig_.regional[2] && (*ok)[i + 1] == fig_.regional[1])) {
      crosses_lateral = true;
    }
  }
  EXPECT_TRUE(crosses_lateral);
}

TEST_F(EcmaTest, LateralLinkUsedWhereShapeAllows) {
  // campus2 (under Reg-1) to campus4 (under Reg-2): the lateral
  // Reg-1 -- Reg-2 link gives an up-down route that avoids backbones.
  const auto path = route(fig_.campus[2], fig_.campus[4]);
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->size(), 4u);  // campus2, Reg-1, Reg-2, campus4
}

TEST_F(EcmaTest, FibCountsPositive) {
  for (EcmaNode* node : nodes_) EXPECT_GT(node->fib_entries(), 0u);
}

}  // namespace
}  // namespace idr
