#include <gtest/gtest.h>

#include <memory>
#include <set>

#include "policy/generator.hpp"
#include "proto/lshh/lshh_node.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "topology/figure1.hpp"

namespace idr {
namespace {

TEST(PolicyLsdbUnit, InsertKeepsNewestPerOrigin) {
  PolicyLsdb db;
  PolicyLsa lsa;
  lsa.origin = AdId{3};
  lsa.seq = 5;
  EXPECT_TRUE(db.insert(lsa));
  EXPECT_EQ(db.version(), 1u);
  lsa.seq = 4;
  EXPECT_FALSE(db.insert(lsa));  // stale
  EXPECT_EQ(db.version(), 1u);
  lsa.seq = 5;
  EXPECT_FALSE(db.insert(lsa));  // duplicate
  lsa.seq = 6;
  EXPECT_TRUE(db.insert(lsa));
  EXPECT_EQ(db.version(), 2u);
  EXPECT_EQ(db.get(AdId{3})->seq, 6u);
  EXPECT_EQ(db.get(AdId{9}), nullptr);
  EXPECT_EQ(db.size(), 1u);
}

TEST(PolicyLsdbUnit, ViewRequiresBidirectionalAdjacency) {
  PolicyLsdb db;
  PolicyLsa a;
  a.origin = AdId{0};
  a.seq = 1;
  a.adjacencies.push_back(PolicyLsaAdjacency{AdId{1}, 4});
  db.insert(a);
  const LsdbView view(db, 2);
  // Only one side advertises the link: unusable.
  int seen = 0;
  view.for_each_neighbor(AdId{0}, [&](AdId, std::uint32_t) { ++seen; });
  EXPECT_EQ(seen, 0);
  PolicyLsa b;
  b.origin = AdId{1};
  b.seq = 1;
  b.adjacencies.push_back(PolicyLsaAdjacency{AdId{0}, 4});
  db.insert(b);
  view.for_each_neighbor(AdId{0}, [&](AdId n, std::uint32_t m) {
    ++seen;
    EXPECT_EQ(n, AdId{1});
    EXPECT_EQ(m, 4u);
  });
  EXPECT_EQ(seen, 1);
}

TEST(PolicyLsdbUnit, TransitCostPicksCheapestPermittingTerm) {
  PolicyLsdb db;
  PolicyLsa lsa;
  lsa.origin = AdId{2};
  lsa.seq = 1;
  PolicyTerm expensive = open_transit_term(AdId{2}, 0, 9);
  PolicyTerm cheap = open_transit_term(AdId{2}, 1, 2);
  cheap.uci_mask = uci_bit(UserClass::kResearch);
  lsa.terms = {expensive, cheap};
  db.insert(lsa);
  const LsdbView view(db, 3);
  FlowSpec research{AdId{0}, AdId{1}, Qos::kDefault, UserClass::kResearch,
                    12};
  FlowSpec commercial = research;
  commercial.uci = UserClass::kCommercial;
  EXPECT_EQ(view.transit_cost(AdId{2}, research, AdId{0}, AdId{1}), 2u);
  EXPECT_EQ(view.transit_cost(AdId{2}, commercial, AdId{0}, AdId{1}), 9u);
  EXPECT_FALSE(
      view.transit_cost(AdId{1}, research, AdId{0}, AdId{2}).has_value());
}

class LshhTest : public ::testing::Test {
 protected:
  void SetUp() override {
    fig_ = build_figure1();
    policies_ = make_open_policies(fig_.topo);
  }

  void converge() {
    net_ = std::make_unique<Network>(engine_, fig_.topo);
    for (const Ad& ad : fig_.topo.ads()) {
      auto node = std::make_unique<LshhNode>(&policies_);
      nodes_.push_back(node.get());
      net_->attach(ad.id, std::move(node));
    }
    net_->start_all();
    engine_.run();
  }

  std::optional<std::vector<AdId>> route(const FlowSpec& flow) {
    std::vector<AdId> path{flow.src};
    AdId cur = flow.src;
    std::size_t guard = 0;
    while (cur != flow.dst) {
      if (++guard > fig_.topo.ad_count()) return std::nullopt;
      const auto next = nodes_[cur.v]->forward(flow);
      if (!next) return std::nullopt;
      path.push_back(*next);
      cur = *next;
    }
    return path;
  }

  Figure1 fig_;
  PolicySet policies_;
  Engine engine_;
  std::unique_ptr<Network> net_;
  std::vector<LshhNode*> nodes_;
};

TEST_F(LshhTest, LsdbFullyFloods) {
  converge();
  for (LshhNode* node : nodes_) {
    EXPECT_EQ(node->lsdb().size(), fig_.topo.ad_count());
  }
}

TEST_F(LshhTest, AllNodesComputeConsistentPaths) {
  converge();
  FlowSpec flow{fig_.campus[0], fig_.campus[6]};
  // Every AD on the path agrees on the successor chain: walking from the
  // source must succeed and stay legal.
  const auto path = route(flow);
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(policies_.path_is_legal(fig_.topo, flow, *path));
}

TEST_F(LshhTest, HonorsPublishedSourcePolicy) {
  policies_.source_policy(fig_.campus[0]).avoid.push_back(
      fig_.backbone_east);
  converge();
  FlowSpec flow{fig_.campus[0], fig_.campus[4]};
  const auto path = route(flow);
  ASSERT_TRUE(path.has_value());
  for (AdId ad : *path) EXPECT_NE(ad, fig_.backbone_east);
  // The source's criteria were necessarily disclosed in its LSA: every
  // other AD can read them (the paper's privacy cost of LS hop-by-hop).
  const PolicyLsa* lsa = nodes_[fig_.campus[7].v]->lsdb().get(fig_.campus[0]);
  ASSERT_NE(lsa, nullptr);
  ASSERT_TRUE(lsa->has_source_policy);
  ASSERT_EQ(lsa->avoid.size(), 1u);
  EXPECT_EQ(lsa->avoid[0], fig_.backbone_east);
}

TEST_F(LshhTest, SourceSpecificPolicyRouting) {
  // BB-West carries only campus0-sourced traffic; campus1 must route
  // around (impossible here except via lateral campus links where legal).
  policies_.clear_terms(fig_.backbone_west);
  PolicyTerm t = open_transit_term(fig_.backbone_west);
  t.sources = AdSet::of({fig_.campus[0]});
  policies_.add_term(t);
  converge();
  const auto ok = route(FlowSpec{fig_.campus[0], fig_.campus[6]});
  ASSERT_TRUE(ok.has_value());
  // campus2's traffic may not cross BB-West. campus2 -> campus4 has the
  // Reg-1/Reg-2 lateral alternative and must use it.
  const auto alt = route(FlowSpec{fig_.campus[2], fig_.campus[4]});
  ASSERT_TRUE(alt.has_value());
  for (AdId ad : *alt) EXPECT_NE(ad, fig_.backbone_west);
}

TEST_F(LshhTest, PerFlowCacheGrowsPerSource) {
  converge();
  // Transit AD caches one entry per (source, dest, class) -- the paper's
  // state-blowup claim for hop-by-hop link state.
  LshhNode* bbw = nodes_[fig_.backbone_west.v];
  const std::size_t before = bbw->cache_entries();
  for (int c = 0; c < 4; ++c) {
    FlowSpec flow{fig_.campus[c], fig_.campus[6]};
    (void)bbw->forward(flow);
  }
  EXPECT_EQ(bbw->cache_entries(), before + 4);
  // Re-asking for a cached flow hits the cache, no new computation.
  const auto comps = bbw->path_computations();
  (void)bbw->forward(FlowSpec{fig_.campus[0], fig_.campus[6]});
  EXPECT_EQ(bbw->path_computations(), comps);
  EXPECT_GT(bbw->cache_hits(), 0u);
}

TEST_F(LshhTest, OffPathNodeDropsPacket) {
  converge();
  FlowSpec flow{fig_.campus[0], fig_.campus[1]};  // both under Reg-0
  // BB-East is nowhere near the agreed path; if a packet strayed there,
  // it must be dropped rather than re-routed inconsistently.
  EXPECT_FALSE(nodes_[fig_.backbone_east.v]->forward(flow).has_value());
}

TEST_F(LshhTest, ReconvergesAfterLinkFailure) {
  converge();
  FlowSpec flow{fig_.campus[0], fig_.campus[6]};
  ASSERT_TRUE(route(flow).has_value());
  net_->set_link_state(
      *fig_.topo.find_link(fig_.backbone_west, fig_.backbone_east), false);
  engine_.run();
  const auto path = route(flow);
  ASSERT_TRUE(path.has_value());
  EXPECT_TRUE(policies_.path_is_legal(fig_.topo, flow, *path));
}

TEST_F(LshhTest, CacheInvalidatedByNewLsa) {
  converge();
  FlowSpec flow{fig_.campus[0], fig_.campus[6]};
  LshhNode* src = nodes_[fig_.campus[0].v];
  (void)src->forward(flow);
  const auto comps = src->path_computations();
  net_->set_link_state(
      *fig_.topo.find_link(fig_.backbone_west, fig_.backbone_east), false);
  engine_.run();
  (void)src->forward(flow);
  EXPECT_GT(src->path_computations(), comps);  // cache was version-stale
}

}  // namespace
}  // namespace idr
