// Ablation: what makes policy route synthesis tractable?
//
// DESIGN.md commits the synthesizer to two devices: destination-distance
// child ordering (with an admissible lower bound) and branch-and-bound
// cost pruning. The paper only says heuristics "must be developed" (§6);
// this bench quantifies how much each one buys by running the same
// oracle-grade searches with each device switched off.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/oracle.hpp"
#include "core/scenario.hpp"
#include "policy/generator.hpp"
#include "topology/generator.hpp"
#include "util/table.hpp"

namespace {

using namespace idr;

struct AblationPoint {
  const char* label;
  bool heuristic;
  bool cost_bound;
};

void report() {
  std::printf("== Ablation: route synthesis heuristics ==\n");
  std::printf("(mean DFS expansions per flow; 32 flows per cell)\n\n");

  const AblationPoint points[] = {
      {"both on (production)", true, true},
      {"no distance ordering", false, true},
      {"no cost bound", true, false},
      {"neither", false, false},
  };

  Table table({"ADs", "restrict", "both on (production)",
               "no distance ordering", "no cost bound", "neither"});
  for (const std::uint32_t ads : {32u, 64u, 96u}) {
    for (const double restrict_prob : {0.0, 0.5}) {
      ScenarioParams params;
      params.seed = 17;
      params.target_ads = ads;
      params.flow_count = 32;
      params.restrict_prob = restrict_prob;
      Scenario scenario = make_scenario(params);
      const GroundTruthView view(scenario.topo, scenario.policies);

      std::vector<std::string> row{Table::integer(ads),
                                   Table::num(restrict_prob, 2)};
      for (const AblationPoint& point : points) {
        std::uint64_t total = 0;
        std::size_t counted = 0;
        for (const FlowSpec& flow : scenario.flows) {
          SynthesisOptions options;
          options.use_distance_heuristic = point.heuristic;
          options.use_cost_bound = point.cost_bound;
          options.expansion_budget = 3'000'000;
          const SynthesisResult result =
              synthesize_route(view, flow, options);
          total += result.expansions;
          ++counted;
        }
        row.push_back(Table::num(
            static_cast<double>(total) / static_cast<double>(counted), 5));
      }
      table.add_row(std::move(row));
    }
  }
  std::printf("%s\n", table.render().c_str());

  // Dense lateral meshes are where pruning earns its keep: path
  // diversity (and therefore the unguided search space) is much larger.
  std::printf("Dense lateral mesh (high path diversity):\n");
  Table dense({"ADs", "both on (production)", "no distance ordering",
               "no cost bound", "neither"});
  for (const std::uint32_t regionals : {8u, 12u, 16u}) {
    GeneratorParams gen;
    gen.backbones = 3;
    gen.regionals_per_backbone = regionals / 3 + 1;
    gen.campuses_per_parent = 2;
    gen.lateral_regional_prob = 0.6;
    gen.bypass_prob = 0.15;
    Prng prng(31 + regionals);
    Topology topo = generate_topology(gen, prng);
    const PolicySet policies = make_open_policies(topo);
    const GroundTruthView view(topo, policies);
    Prng flow_prng(5);
    const auto flows = sample_flows(topo, 24, flow_prng);

    std::vector<std::string> row{
        Table::integer(static_cast<long long>(topo.ad_count()))};
    for (const AblationPoint& point : points) {
      std::uint64_t total = 0;
      for (const FlowSpec& flow : flows) {
        SynthesisOptions options;
        options.use_distance_heuristic = point.heuristic;
        options.use_cost_bound = point.cost_bound;
        options.expansion_budget = 5'000'000;
        total += synthesize_route(view, flow, options).expansions;
      }
      row.push_back(Table::num(
          static_cast<double>(total) / static_cast<double>(flows.size()),
          5));
    }
    dense.add_row(std::move(row));
  }
  std::printf("%s\n", dense.render().c_str());
  std::printf(
      "Reading: on sparse hierarchies the devices buy a steady 40-90%%;\n"
      "on dense lateral meshes -- the topologies the paper says must be\n"
      "accommodated -- unguided exhaustive search blows up combinatorially\n"
      "while the guided, bounded search stays flat. This is the concrete\n"
      "form of the paper's \"heuristics for pruning ... must be\n"
      "developed\".\n");
}

void BM_SynthesisConfigured(benchmark::State& state) {
  ScenarioParams params;
  params.seed = 17;
  params.target_ads = 64;
  params.flow_count = 16;
  Scenario scenario = make_scenario(params);
  const GroundTruthView view(scenario.topo, scenario.policies);
  SynthesisOptions options;
  options.use_distance_heuristic = state.range(0) != 0;
  options.use_cost_bound = state.range(1) != 0;
  std::size_t i = 0;
  for (auto _ : state) {
    const FlowSpec& flow = scenario.flows[i++ % scenario.flows.size()];
    benchmark::DoNotOptimize(synthesize_route(view, flow, options).cost);
  }
}
BENCHMARK(BM_SynthesisConfigured)
    ->Args({1, 1})
    ->Args({0, 1})
    ->Args({1, 0})
    ->Args({0, 0});

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
