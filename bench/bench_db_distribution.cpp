// E-db -- database distribution strategies (paper §6, open issue #3):
// "database distribution strategies to provide the needed information
// for route computation while minimizing routing-data distribution
// overhead."
//
// The ORWG control plane floods policy LSAs. This bench compares
// immediate per-LSA flooding against batched flooding (LSAs accepted
// within a window coalesce into one message per neighbor) across
// topology sizes, measuring messages, bytes, and the convergence-delay
// price of batching.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/adapters.hpp"
#include "core/scenario.hpp"
#include "util/table.hpp"

namespace {

using namespace idr;

void report() {
  std::printf("== E-db: LSA distribution strategies ==\n\n");
  Table table({"ADs", "batch window(ms)", "conv msgs", "conv KB",
               "conv time(ms)"});
  for (const std::uint32_t ads : {32u, 64u, 128u}) {
    ScenarioParams params;
    params.seed = 23;
    params.target_ads = ads;
    params.flow_count = 4;
    Scenario scenario = make_scenario(params);
    for (const double window : {0.0, 5.0, 25.0}) {
      OrwgConfig config;
      config.lsa_batch_ms = window;
      OrwgArchitecture arch(config);
      arch.build(scenario.topo, scenario.policies);
      const auto conv = arch.initial_convergence();
      table.add_row(
          {Table::integer(ads), Table::num(window, 3),
           Table::integer(static_cast<long long>(conv.messages)),
           Table::num(static_cast<double>(conv.bytes) / 1024.0, 5),
           Table::num(conv.time_ms, 4)});
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: batching collapses the per-LSA message storm (fewer,\n"
      "larger messages; framing overhead amortizes) at the cost of\n"
      "slower convergence -- each hop holds accepted LSAs for up to the\n"
      "window before re-flooding. The knob is the distribution-overhead\n"
      "vs freshness tradeoff the paper's open issue describes.\n");
}

void BM_ConvergeWithBatching(benchmark::State& state) {
  ScenarioParams params;
  params.seed = 23;
  params.target_ads = 64;
  params.flow_count = 4;
  Scenario scenario = make_scenario(params);
  OrwgConfig config;
  config.lsa_batch_ms = static_cast<double>(state.range(0));
  for (auto _ : state) {
    OrwgArchitecture arch(config);
    arch.build(scenario.topo, scenario.policies);
    benchmark::DoNotOptimize(arch.initial_convergence().messages);
  }
}
BENCHMARK(BM_ConvergeWithBatching)->Arg(0)->Arg(25)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
