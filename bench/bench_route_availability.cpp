// E-avail -- route availability vs policy restrictiveness (paper §5.1,
// §5.2, §5.4).
//
// The paper claims hop-by-hop designs leave legal routes unusable ("no
// available route when in fact a legal route exists") while the LS+SR+PT
// design "allows an AD to discover a valid route if one in fact exists".
// This bench sweeps the restrictiveness of transit policies and reports,
// per architecture, the fraction of oracle-confirmed-routable flows for
// which the architecture delivers a legal route.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/adapters.hpp"
#include "core/metrics.hpp"
#include "core/scenario.hpp"
#include "util/table.hpp"

namespace {

using namespace idr;

void report() {
  std::printf("== E-avail: route availability vs policy restrictiveness ==\n");
  std::printf("(fraction of flows with a legal route that each design\n"
              " actually serves; averaged over 3 seeds, 48-AD internets)\n\n");

  Table table({"restrictiveness", "ecma", "idrp", "ls-hbh", "orwg", "dv-sr",
               "flows w/ legal route"});
  for (const double restrict_prob : {0.0, 0.2, 0.4, 0.6, 0.8}) {
    double avail[5] = {};
    std::size_t oracle_total = 0;
    constexpr int kSeeds = 3;
    for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
      ScenarioParams params;
      params.seed = seed;
      params.target_ads = 48;
      params.flow_count = 48;
      params.restrict_prob = restrict_prob;
      params.source_selectivity = 0.5;
      Scenario scenario = make_scenario(params);

      std::unique_ptr<RoutingArchitecture> archs[5];
      archs[0] = std::make_unique<EcmaArchitecture>();
      archs[1] = std::make_unique<IdrpArchitecture>();
      archs[2] = std::make_unique<LshhArchitecture>();
      archs[3] = std::make_unique<OrwgArchitecture>();
      archs[4] = std::make_unique<DvsrArchitecture>();
      for (int i = 0; i < 5; ++i) {
        const ArchEvaluation eval = evaluate_architecture(
            *archs[i], scenario.topo, scenario.policies, scenario.flows);
        avail[i] += eval.availability();
        if (i == 0) oracle_total += eval.oracle_routes;
      }
    }
    table.add_row({Table::num(restrict_prob, 2), Table::num(avail[0] / kSeeds, 3),
                   Table::num(avail[1] / kSeeds, 3),
                   Table::num(avail[2] / kSeeds, 3),
                   Table::num(avail[3] / kSeeds, 3),
                   Table::num(avail[4] / kSeeds, 3),
                   Table::integer(static_cast<long long>(oracle_total))});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: orwg stays at 1.0 across the sweep (finds a legal route\n"
      "whenever one exists). idrp/dv-sr fall off as policies become more\n"
      "source-specific (candidate routes not advertised); ecma cannot\n"
      "express the policies, so its \"availability\" counts only routes\n"
      "that happen to be legal. ls-hbh tracks orwg while every AD on the\n"
      "path repeats the computation (see E-state).\n");
}

void BM_AvailabilitySweepPoint(benchmark::State& state) {
  ScenarioParams params;
  params.seed = 1;
  params.target_ads = 48;
  params.flow_count = 16;
  params.restrict_prob = static_cast<double>(state.range(0)) / 100.0;
  Scenario scenario = make_scenario(params);
  for (auto _ : state) {
    IdrpArchitecture idrp;
    const ArchEvaluation eval = evaluate_architecture(
        idrp, scenario.topo, scenario.policies, scenario.flows);
    benchmark::DoNotOptimize(eval.legal);
  }
}
BENCHMARK(BM_AvailabilitySweepPoint)->Arg(0)->Arg(40)->Arg(80)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
