// bench_chaos_scale: paper-scale failure & recovery baseline
// (BENCH_chaos_scale.json).
//
// Runs every storm family (flap storm, withdrawal storm, regional
// partition/heal, transit-core outage) over the hierarchical scale
// profile for each of the four design points with recovery knobs OFF,
// then adds a damping A/B pair for the DV family (ECMA, IDRP) under the
// flap storm so the update-churn drop from route-flap damping is a
// tracked number. One JSON row per (arch, storm, damping) cell carries
// the figures the CI gate (tools/check_bench_chaos_scale.py) and
// EXPERIMENTS.md track: injected transitions, convergence and
// storm-class reconvergence times, control-plane churn during/after the
// storm, blast radius, persistent/transient invariant counts, damper
// accounting, and peak RSS.
//
// Standalone binary (not google-benchmark): one deterministic run per
// cell is the measurement; same seed, same storm schedule, same counter
// fingerprint.
//
// Peak-RSS caveat: getrusage(RUSAGE_SELF).ru_maxrss is a process-wide
// high-water mark; each row reports the mark after its run, which is
// only meaningful relative to earlier rows.

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/chaos.hpp"
#include "util/check.hpp"

namespace {

long peak_rss_kb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;  // KiB on Linux
}

struct Row {
  idr::ScaleChaosResult res;
  bool damping = false;
  double wall_ms = 0.0;
  long rss_after_kb = 0;
  // Undamped updates_during_storm / damped updates_during_storm for the
  // matching undamped cell (damped rows only; 0 when not applicable).
  double churn_drop = 0.0;
};

Row run_cell(const std::string& arch, const idr::ScaleChaosParams& params,
             bool damping) {
  Row row;
  row.damping = damping;
  const auto t0 = std::chrono::steady_clock::now();
  row.res = idr::run_scale_chaos(arch, params);
  const auto t1 = std::chrono::steady_clock::now();
  row.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  row.rss_after_kb = peak_rss_kb();
  std::fprintf(stderr,
               "%-6s %-14s damping=%d transitions=%-4zu conv=%7.1fms "
               "reconv=%8.1fms storm_msgs=%-8llu persistent=%llu\n",
               row.res.arch.c_str(), idr::to_string(row.res.storm), damping,
               row.res.storm_transitions, row.res.converge_ms,
               row.res.reconverge_ms,
               static_cast<unsigned long long>(row.res.updates_during_storm),
               static_cast<unsigned long long>(
                   row.res.invariants.persistent_violations()));
  return row;
}

void emit(std::FILE* out, const std::vector<Row>& rows,
          const idr::ScaleChaosParams& base) {
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"bench_chaos_scale/v1\",\n");
  std::fprintf(out, "  \"profile_seed\": %llu,\n",
               static_cast<unsigned long long>(base.seed));
  std::fprintf(out, "  \"beacons\": %u,\n", base.beacon_count);
  std::fprintf(out, "  \"runs\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const idr::ScaleChaosResult& s = r.res;
    const double blast =
        s.invariants.fault_classes.size() > 1
            ? s.invariants.fault_classes[1].peak_blast
            : 0.0;
    std::fprintf(
        out,
        "    {\"arch\": \"%s\", \"storm\": \"%s\", \"ads\": %u, "
        "\"transit_ads\": %u, \"damping\": %s, \"ls_holddown_ms\": %.1f, "
        "\"storm_transitions\": %zu, \"converge_ms\": %.3f, "
        "\"reconverge_ms\": %.3f, \"storm_msgs\": %llu, "
        "\"post_storm_msgs\": %llu, \"storm_msgs_per_sec\": %.1f, "
        "\"churn_drop\": %.2f, \"peak_blast\": %.4f, "
        "\"transient_violations\": %llu, \"persistent_violations\": %llu, "
        "\"flaps\": %llu, \"routes_suppressed\": %llu, "
        "\"routes_reused\": %llu, \"suppressed_at_end\": %zu, "
        "\"ls_originations_suppressed\": %llu, "
        "\"counter_fingerprint\": %llu, \"wall_ms\": %.3f, "
        "\"rss_after_kb\": %ld}%s\n",
        s.arch.c_str(), idr::to_string(s.storm), s.ads, s.transit_ads,
        r.damping ? "true" : "false",
        0.0,  // LS hold-down A/B lives in chaos_soak, not the bench grid
        s.storm_transitions, s.converge_ms, s.reconverge_ms,
        static_cast<unsigned long long>(s.updates_during_storm),
        static_cast<unsigned long long>(s.updates_after_storm),
        s.updates_per_sec_storm, r.churn_drop, blast,
        static_cast<unsigned long long>(
            s.invariants.transient_violations()),
        static_cast<unsigned long long>(
            s.invariants.persistent_violations()),
        static_cast<unsigned long long>(s.flaps_recorded),
        static_cast<unsigned long long>(s.routes_suppressed),
        static_cast<unsigned long long>(s.routes_reused),
        s.suppressed_at_end,
        static_cast<unsigned long long>(s.ls_originations_suppressed),
        static_cast<unsigned long long>(s.counter_fingerprint), r.wall_ms,
        r.rss_after_kb, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t ads = 10'000;
  std::string out_path = "BENCH_chaos_scale.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ads") == 0 && i + 1 < argc) {
      ads = static_cast<std::uint32_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--ads N] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  idr::ScaleChaosParams base;
  base.target_ads = ads;
  // Longer flap storm than the soak default: suppression needs ~3
  // transitions per link to engage, and the damping A/B ratio below is
  // only meaningful once the suppressed steady state dominates the
  // pre-suppression waves (undamped churn grows linearly with cycle
  // count, damped churn plateaus once every flapping key is suppressed).
  base.flap_cycles = 24;

  std::vector<Row> rows;
  // Recovery-off sweep: every storm family x every design point. The
  // restart storm has its own A/B bench (bench_restart, emitting
  // BENCH_restart.json), so this grid stays the original 4x4.
  for (const idr::StormFamily storm : idr::storm_families()) {
    if (storm == idr::StormFamily::kRestartStorm) continue;
    for (const std::string& arch : idr::chaos_design_points()) {
      idr::ScaleChaosParams params = base;
      params.storm = storm;
      rows.push_back(run_cell(arch, params, /*damping=*/false));
    }
  }
  // Damping A/B for the DV family under the flap storm: the damped cell
  // reuses the undamped cell's churn for the drop ratio.
  for (const std::string& arch : {std::string("ecma"), std::string("idrp")}) {
    idr::ScaleChaosParams params = base;
    params.storm = idr::StormFamily::kFlapStorm;
    params.damping.enabled = true;
    params.damping.half_life_ms = 500.0;
    Row damped = run_cell(arch, params, /*damping=*/true);
    for (const Row& r : rows) {
      if (r.res.arch == arch && r.res.storm == idr::StormFamily::kFlapStorm &&
          !r.damping && damped.res.updates_during_storm > 0) {
        damped.churn_drop =
            static_cast<double>(r.res.updates_during_storm) /
            static_cast<double>(damped.res.updates_during_storm);
      }
    }
    rows.push_back(std::move(damped));
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  emit(out, rows, base);
  std::fclose(out);
  return 0;
}
