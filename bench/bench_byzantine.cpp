// E-byzantine -- blast radius and containment under Byzantine ADs.
//
// Four transit-capable ADs misbehave from a fixed seed, covering the
// whole taxonomy: a route leak (advertising transit its registered
// policy forbids), a false-origin hijack of an honest stub, a forwarding
// black hole, and a path-attribute tamperer. Policies are
// provider/customer (a leak needs a transit promise to break); churn and
// delivery faults are off so every polluted pair is attributable to
// misbehavior.
//
// Each design point runs the same schedule twice: undefended, then with
// its defense armed (ECMA receiver-side partial-order enforcement, IDRP
// neighbor-consistency clamping against registered terms, LS+HbH origin
// authentication + registry-validated computation, ORWG authenticated
// LSAs + registry-validated route servers), with detected misbehavers
// quarantined 400 ms after onset. The policy-compliance auditor sweeps
// every honest (src, dst) pair and reports blast radius (polluted
// fraction: peak / final) and time-to-containment.
//
// The run FAILS (exit 1) if any defended row is left uncontained, shows
// residual pollution or persistent invariant violations, fires no
// defense rejections, or if either run of a pair is not byte-identical
// with its repeat (determinism).
#include <benchmark/benchmark.h>

#include <cinttypes>
#include <cstdio>
#include <string>

#include "core/chaos.hpp"
#include "util/table.hpp"

namespace {

using namespace idr;

int g_failures = 0;

ChaosParams byzantine_params(bool defended) {
  ChaosParams params;
  params.seed = 11;
  params.horizon_ms = 8'000.0;
  params.churn_fraction = 0.0;
  params.faults = FaultConfig{};
  params.policy_mode = PolicyMode::kProviderCustomer;
  params.byzantine.count = 4;
  params.byzantine.defended = defended;
  params.audit.sample_pairs = 0;  // every honest ordered pair
  return params;
}

void report() {
  std::printf("== E-byzantine: route leaks, hijacks and tampering ==\n\n");

  Table table({"architecture", "mode", "rejections", "hijack", "leak",
               "blackhole", "collateral", "peak poll%", "final poll%",
               "contain(ms)", "persistent"});
  bool schedule_shown = false;
  for (const std::string& arch : chaos_design_points()) {
    for (const bool defended : {false, true}) {
      const ChaosParams params = byzantine_params(defended);
      const ChaosResult r = run_chaos(arch, params);
      const ChaosResult repeat = run_chaos(arch, params);
      if (!schedule_shown) {
        schedule_shown = true;
        std::printf("schedule (seed %" PRIu64 "):", params.seed);
        for (const ByzantineSpec& spec : r.byzantine) {
          std::printf(" ad%u=%s", spec.ad.v, to_string(spec.kind));
          if (spec.victim.valid()) std::printf("->ad%u", spec.victim.v);
        }
        std::printf("  (onset %.0f ms, detection %.0f ms)\n\n",
                    params.byzantine.onset_ms,
                    params.byzantine.detection_delay_ms);
      }

      const AuditStats& audit = r.audit;
      const InvariantStats& inv = r.invariants;
      table.add_row(
          {arch, defended ? "defended" : "undefended",
           Table::integer(static_cast<long long>(r.defense_rejections)),
           Table::integer(static_cast<long long>(audit.hijacked_pairs)),
           Table::integer(static_cast<long long>(audit.leaked_pairs)),
           Table::integer(static_cast<long long>(audit.black_holed_pairs)),
           Table::integer(static_cast<long long>(audit.collateral_pairs)),
           Table::num(100.0 * audit.peak_pollution),
           Table::num(100.0 * audit.final_pollution),
           audit.contained() ? Table::num(audit.containment_ms) : "never",
           Table::integer(static_cast<long long>(inv.persistent_violations()))});

      if (r.counter_fingerprint != repeat.counter_fingerprint) {
        std::fprintf(stderr,
                     "FAIL [%s %s]: non-deterministic (%016" PRIx64
                     " vs %016" PRIx64 ")\n",
                     arch.c_str(), defended ? "defended" : "undefended",
                     r.counter_fingerprint, repeat.counter_fingerprint);
        ++g_failures;
      }
      if (defended) {
        if (!audit.contained() || audit.final_pollution != 0.0) {
          std::fprintf(stderr,
                       "FAIL [%s defended]: not contained "
                       "(containment=%.1f ms, final pollution=%.4f)\n",
                       arch.c_str(), audit.containment_ms,
                       audit.final_pollution);
          ++g_failures;
        }
        if (inv.persistent_violations() != 0) {
          std::fprintf(stderr,
                       "FAIL [%s defended]: %" PRIu64
                       " persistent invariant violations\n",
                       arch.c_str(), inv.persistent_violations());
          ++g_failures;
        }
        if (r.defense_rejections == 0) {
          std::fprintf(stderr,
                       "FAIL [%s defended]: defenses never fired\n",
                       arch.c_str());
          ++g_failures;
        }
      } else if (audit.contained() && audit.violation_pairs() == 0) {
        // The undefended run should show SOME damage for this schedule;
        // all-clean means the attacks are not wired in.
        std::fprintf(stderr,
                     "FAIL [%s undefended]: no pollution observed -- "
                     "Byzantine schedule had no effect\n",
                     arch.c_str());
        ++g_failures;
      }
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: undefended rows measure blast radius -- the polluted\n"
      "fraction of honest (src,dst) pairs -- which is never contained.\n"
      "Defended rows must fire rejections, finish with zero pollution\n"
      "and zero persistent violations, and report the containment time\n"
      "(detection delay + reconvergence). Source-routed ORWG keeps the\n"
      "smallest radius: one consistent map per source, validated against\n"
      "the registry; hop-by-hop LS is widest (everyone recomputes from\n"
      "the tampered database).\n");
}

void BM_ByzantineDefendedOrwg(benchmark::State& state) {
  // Wall-clock cost of one defended Byzantine run (ORWG, Figure 1),
  // including the full-pair compliance audit.
  for (auto _ : state) {
    const ChaosResult r = run_chaos("orwg", byzantine_params(true));
    benchmark::DoNotOptimize(r.counter_fingerprint);
  }
}
BENCHMARK(BM_ByzantineDefendedOrwg)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  if (g_failures != 0) {
    std::fprintf(stderr, "bench_byzantine: %d failure(s)\n", g_failures);
    return 1;
  }
  return 0;
}
