// E-ecma-po -- maintaining the ECMA global partial ordering (paper
// §5.1.1).
//
// The paper's two objections to ECMA: (1) a single partial ordering
// cannot express arbitrary combinations of policies ("policies of
// different ADs may not be mutually satisfiable"), and (2) the ordering
// must be recomputed and renegotiated centrally whenever policy changes.
// We sweep the density of AD-submitted ordering constraints and measure
// how many survive, how many negotiation rounds the authority needs, and
// (with google-benchmark) the recomputation cost itself.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "proto/ecma/partial_order.hpp"
#include "topology/generator.hpp"
#include "util/prng.hpp"
#include "util/table.hpp"

namespace {

using namespace idr;

std::vector<OrderConstraint> random_constraints(const Topology& topo,
                                                std::size_t count,
                                                Prng& prng) {
  std::vector<AdId> transits;
  for (const Ad& ad : topo.ads()) {
    if (ad.role == AdRole::kTransit) transits.push_back(ad.id);
  }
  std::vector<OrderConstraint> out;
  while (out.size() < count) {
    const AdId a = prng.pick(transits);
    const AdId b = prng.pick(transits);
    if (a == b) continue;
    out.push_back(OrderConstraint{a, b});
  }
  return out;
}

void report() {
  std::printf("== E-ecma-po: global partial ordering maintenance ==\n");
  std::printf("(128-AD internet; random 'X above Y' policy constraints\n"
              " between transit ADs; 5 seeds per row)\n\n");

  Table table({"constraints", "satisfiable frac", "dropped (mean)",
               "negotiation rounds (mean)"});
  Prng seed_prng(77);
  Topology topo = generate_topology_of_size(128, seed_prng);

  for (const std::size_t count : {4u, 8u, 16u, 32u, 64u, 128u}) {
    double dropped = 0, rounds = 0, satisfiable = 0;
    constexpr int kSeeds = 5;
    for (int s = 0; s < kSeeds; ++s) {
      Prng prng(1000 + count * 10 + static_cast<unsigned>(s));
      const auto constraints = random_constraints(topo, count, prng);
      const OrderResult result = compute_partial_order(topo, constraints);
      dropped += static_cast<double>(result.dropped.size());
      rounds += static_cast<double>(result.negotiation_rounds);
      satisfiable += static_cast<double>(count - result.dropped.size()) /
                     static_cast<double>(count);
    }
    table.add_row({Table::integer(static_cast<long long>(count)),
                   Table::num(satisfiable / kSeeds, 3),
                   Table::num(dropped / kSeeds, 3),
                   Table::num(rounds / kSeeds, 3)});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: as ADs submit more ordering constraints, an increasing\n"
      "fraction is mutually unsatisfiable and must be negotiated away --\n"
      "each negotiation round being a centrally-coordinated policy\n"
      "revision across autonomous administrations. Every policy change\n"
      "re-triggers the global recomputation measured below.\n");
}

void BM_RecomputePartialOrder(benchmark::State& state) {
  const auto ads = static_cast<std::uint32_t>(state.range(0));
  const auto constraints_count = static_cast<std::size_t>(state.range(1));
  Prng prng(9);
  Topology topo = generate_topology_of_size(ads, prng);
  const auto constraints = random_constraints(topo, constraints_count, prng);
  for (auto _ : state) {
    const OrderResult result = compute_partial_order(topo, constraints);
    benchmark::DoNotOptimize(result.negotiation_rounds);
  }
}
BENCHMARK(BM_RecomputePartialOrder)
    ->Args({64, 16})
    ->Args({256, 64})
    ->Args({1024, 256});

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
