// Figure 1 -- "Example Internet Topology".
//
// Reproduces the paper's reference topology as a concrete instance and
// reports its census (AD classes, roles, link classes), plus the same
// census for generated internets at increasing scale, demonstrating the
// §2.1 model: hierarchy + persistent lateral and bypass links, stub /
// multi-homed / transit / hybrid roles, and the path diversity the
// non-hierarchical links create. Ends with a google-benchmark timing of
// topology generation.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "topology/algos.hpp"
#include "topology/figure1.hpp"
#include "topology/generator.hpp"
#include "util/table.hpp"

namespace {

using namespace idr;

void census_row(Table& table, const std::string& name, const Topology& t) {
  const DegreeStats deg = degree_stats(t);
  table.add_row({
      name,
      Table::integer(static_cast<long long>(t.ad_count())),
      Table::integer(static_cast<long long>(t.count_ads(AdClass::kBackbone))),
      Table::integer(static_cast<long long>(t.count_ads(AdClass::kRegional))),
      Table::integer(static_cast<long long>(t.count_ads(AdClass::kCampus))),
      Table::integer(static_cast<long long>(t.count_ads(AdRole::kStub))),
      Table::integer(
          static_cast<long long>(t.count_ads(AdRole::kMultiHomed))),
      Table::integer(static_cast<long long>(t.count_ads(AdRole::kHybrid))),
      Table::integer(static_cast<long long>(t.link_count())),
      Table::integer(
          static_cast<long long>(t.count_links(LinkClass::kLateral))),
      Table::integer(
          static_cast<long long>(t.count_links(LinkClass::kBypass))),
      Table::num(deg.mean, 3),
      has_cycle(t) ? "yes" : "no",
  });
}

void report() {
  std::printf("== Figure 1: example internet topology ==\n\n");
  Table table({"topology", "ADs", "bb", "reg", "campus", "stub", "mhomed",
               "hybrid", "links", "lateral", "bypass", "mean deg",
               "cyclic"});

  const Figure1 fig = build_figure1();
  census_row(table, "figure-1", fig.topo);
  for (std::uint32_t n : {64u, 256u, 1024u}) {
    Prng prng(1000 + n);
    census_row(table, "generated-" + std::to_string(n),
               generate_topology_of_size(n, prng));
  }
  std::printf("%s\n", table.render().c_str());

  // Path diversity created by lateral/bypass links (the property that
  // breaks EGP's tree assumption and motivates loop-free-by-design
  // routing).
  std::printf("Path diversity on figure-1 (edge-disjoint paths):\n");
  Table div({"pair", "disjoint paths", "shortest (ADs)"});
  const std::pair<AdId, AdId> pairs[] = {
      {fig.campus[0], fig.campus[6]},
      {fig.campus[2], fig.campus[4]},
      {fig.multihomed, fig.backbone_east},
      {fig.bypass_campus, fig.backbone_east},
  };
  for (const auto& [a, b] : pairs) {
    const auto sp = shortest_path_hops(fig.topo, a, b);
    div.add_row({fig.topo.ad(a).name + " <-> " + fig.topo.ad(b).name,
                 Table::integer(edge_disjoint_paths(fig.topo, a, b)),
                 sp ? Table::integer(static_cast<long long>(sp->size()))
                    : "inf"});
  }
  std::printf("%s\n", div.render().c_str());
}

void BM_GenerateTopology(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t seed = 1;
  for (auto _ : state) {
    Prng prng(seed++);
    Topology t = generate_topology_of_size(n, prng);
    benchmark::DoNotOptimize(t.link_count());
  }
}
BENCHMARK(BM_GenerateTopology)->Arg(64)->Arg(256)->Arg(1024);

void BM_BuildFigure1(benchmark::State& state) {
  for (auto _ : state) {
    Figure1 fig = build_figure1();
    benchmark::DoNotOptimize(fig.topo.link_count());
  }
}
BENCHMARK(BM_BuildFigure1);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
