// Table 1 -- "Design Space for Inter-AD Routing", made executable.
//
// All implementable points of the paper's 2x2x2 design space (algorithm x
// decision location x policy expression), plus the pre-policy baselines
// of §3, run over the same scenario (generated hierarchy + lateral/bypass
// links, provider/customer policies with random source-specific
// restrictions, common flow sample). Columns measure the §5 comparative
// claims: route availability against the ground-truth oracle, illegal
// (policy-violating) routes, loops, convergence traffic, state,
// computation, and per-packet header cost. The four design points the
// paper rejects as impractical are listed with the paper's reasons.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/adapters.hpp"
#include "core/metrics.hpp"
#include "core/scenario.hpp"
#include "util/table.hpp"

namespace {

using namespace idr;

void report() {
  ScenarioParams params;
  params.seed = 42;
  params.target_ads = 64;
  params.flow_count = 96;
  params.restrict_prob = 0.35;
  params.source_selectivity = 0.6;
  params.aup_on_first_backbone = true;
  Scenario scenario = make_scenario(params);

  std::printf("== Table 1: design space for inter-AD routing ==\n");
  std::printf(
      "scenario: %zu ADs, %zu links, %zu policy terms, %zu flows\n\n",
      scenario.topo.ad_count(), scenario.topo.link_count(),
      scenario.policies.total_terms(), scenario.flows.size());

  Table table({"architecture", "algorithm", "decision", "policy",
               "avail", "illegal", "looped", "missed", "conv msgs",
               "conv KB", "state", "computations", "hdr bytes"});
  for (auto& arch : make_policy_architectures()) {
    const ArchEvaluation eval = evaluate_architecture(
        *arch, scenario.topo, scenario.policies, scenario.flows);
    const DesignPoint dp = arch->design_point();
    table.add_row({
        arch->name(),
        to_string(dp.algorithm),
        to_string(dp.decision),
        to_string(dp.policy),
        Table::num(eval.availability(), 3),
        Table::integer(static_cast<long long>(eval.illegal)),
        Table::integer(static_cast<long long>(eval.looped)),
        Table::integer(static_cast<long long>(eval.missed)),
        Table::integer(static_cast<long long>(eval.convergence.messages)),
        Table::num(static_cast<double>(eval.convergence.bytes) / 1024.0, 4),
        Table::integer(static_cast<long long>(eval.state)),
        Table::integer(static_cast<long long>(eval.computations)),
        Table::integer(static_cast<long long>(eval.header_bytes)),
    });
  }
  // EGP: admission-checked, not run (the scenario topology is cyclic).
  EgpArchitecture egp;
  table.add_row({"egp", "distance-vector", "hop-by-hop", "none",
                 egp.applicable(scenario.topo) ? "?" : "n/a (cyclic topology)",
                 "-", "-", "-", "-", "-", "-", "-", "-"});
  std::printf("%s\n", table.render().c_str());

  std::printf(
      "Design points the paper excludes (§5.5), not implemented by design:\n"
      "  link-state + policy-in-topology (x2): flooding presumes the\n"
      "    unrestricted information flow that topological policy removes;\n"
      "  distance-vector + source-routing + policy-in-topology: source\n"
      "    routing without link state gives the source no information to\n"
      "    exploit (the dv-sr row above implements the §5.5.2 hybrid that\n"
      "    IS discussed: path-vector-informed source routes).\n\n"
      "Reading (paper's conclusions): orwg (link state + source routing +\n"
      "policy terms) attains availability 1.0 with zero illegal routes;\n"
      "hop-by-hop rows miss legal routes (ecma cannot express the\n"
      "source-specific policies at all, so it emits policy-violating\n"
      "routes; idrp is capped by advertised route diversity); the\n"
      "policy-blind baselines violate policy freely.\n");
}

void BM_EvaluateOrwgOnScenario(benchmark::State& state) {
  ScenarioParams params;
  params.seed = 42;
  params.target_ads = 48;
  params.flow_count = 16;
  Scenario scenario = make_scenario(params);
  for (auto _ : state) {
    OrwgArchitecture orwg;
    const ArchEvaluation eval = evaluate_architecture(
        orwg, scenario.topo, scenario.policies, scenario.flows);
    benchmark::DoNotOptimize(eval.legal);
  }
}
BENCHMARK(BM_EvaluateOrwgOnScenario)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
