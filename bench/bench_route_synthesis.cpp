// E-synth -- route synthesis strategies (paper §5.4.1 and open issue #1
// in §6: "Simulation of route synthesis for realistic internets should
// be conducted to explore tradeoffs in synthesis strategies and effects
// of internet topology and policies").
//
// We compare the three strategies the paper sketches on a skewed
// workload (most traffic goes to a few popular destinations):
//   * on-demand: synthesize at first use, full budget;
//   * precompute: bulk precompute toward every destination under a
//     pruned per-destination budget (the paper's pruning heuristic),
//     misses fall back to on-demand;
//   * hybrid: precompute only the popular destinations.
// Reported per strategy: total search expansions, syntheses performed at
// request time (the setup-latency proxy), and cache hit rate. A second
// table sweeps topology size and policy restrictiveness to show how
// synthesis cost scales -- the tradeoff study the paper calls for.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/adapters.hpp"
#include "core/scenario.hpp"
#include "util/table.hpp"

namespace {

using namespace idr;

struct Workload {
  Scenario scenario;
  std::vector<FlowSpec> requests;  // skewed toward popular destinations
  std::vector<AdId> popular;
};

Workload make_workload(std::uint64_t seed, std::uint32_t ads,
                       double restrict_prob) {
  Workload w;
  ScenarioParams params;
  params.seed = seed;
  params.target_ads = ads;
  params.restrict_prob = restrict_prob;
  params.flow_count = 8;  // unused; we build our own request stream
  w.scenario = make_scenario(params);

  Prng prng(seed ^ 0xabcdef);
  std::vector<AdId> endpoints;
  for (const Ad& ad : w.scenario.topo.ads()) {
    if (ad.role != AdRole::kTransit) endpoints.push_back(ad.id);
  }
  // 4 popular destinations receive ~70% of requests.
  for (int i = 0; i < 4; ++i) w.popular.push_back(prng.pick(endpoints));
  for (int i = 0; i < 160; ++i) {
    FlowSpec flow;
    flow.src = prng.pick(endpoints);
    flow.dst = prng.bernoulli(0.7) ? w.popular[prng.below(4)]
                                   : prng.pick(endpoints);
    if (flow.src == flow.dst) continue;
    w.requests.push_back(flow);
  }
  return w;
}

struct StrategyResult {
  std::uint64_t expansions = 0;
  std::uint64_t request_time_synths = 0;
  std::uint64_t hits = 0;
  std::uint64_t failures = 0;
};

StrategyResult run_strategy(const Workload& w, SynthesisStrategy strategy) {
  OrwgConfig config;
  config.route_server.strategy = strategy;
  OrwgArchitecture arch(config);
  arch.build(w.scenario.topo, w.scenario.policies);

  // Precomputation phase (not charged to request latency).
  std::uint64_t precompute_expansions = 0;
  if (strategy != SynthesisStrategy::kOnDemand) {
    std::vector<AdId> dests;
    if (strategy == SynthesisStrategy::kPrecompute) {
      for (const Ad& ad : w.scenario.topo.ads()) dests.push_back(ad.id);
    } else {
      dests = w.popular;
    }
    for (OrwgNode* node : arch.nodes()) {
      node->route_server().precompute(dests);
    }
    for (OrwgNode* node : arch.nodes()) {
      precompute_expansions += node->route_server().total_expansions();
    }
  }

  StrategyResult result;
  std::uint64_t synths_before = 0;
  for (OrwgNode* node : arch.nodes()) {
    synths_before += node->route_server().synth_calls();
  }
  for (const FlowSpec& flow : w.requests) {
    if (!arch.nodes()[flow.src.v]->policy_route(flow)) ++result.failures;
  }
  for (OrwgNode* node : arch.nodes()) {
    const RouteServer& rs = node->route_server();
    result.expansions += rs.total_expansions();
    result.request_time_synths += rs.synth_calls();
    result.hits += rs.cache_hits();
  }
  result.request_time_synths -= synths_before;
  return result;
}

void report() {
  std::printf("== E-synth: route synthesis strategy tradeoffs ==\n");
  std::printf("(64-AD internet, 160 requests, 70%% to 4 popular dests)\n\n");

  const Workload w = make_workload(11, 64, 0.3);
  Table table({"strategy", "total expansions", "request-time synths",
               "cache hits", "hit rate", "failures"});
  const std::pair<const char*, SynthesisStrategy> strategies[] = {
      {"on-demand", SynthesisStrategy::kOnDemand},
      {"precompute-all (pruned)", SynthesisStrategy::kPrecompute},
      {"hybrid (popular only)", SynthesisStrategy::kHybrid},
  };
  for (const auto& [name, strategy] : strategies) {
    const StrategyResult r = run_strategy(w, strategy);
    const double denom =
        static_cast<double>(r.hits + r.request_time_synths);
    table.add_row({name,
                   Table::integer(static_cast<long long>(r.expansions)),
                   Table::integer(
                       static_cast<long long>(r.request_time_synths)),
                   Table::integer(static_cast<long long>(r.hits)),
                   denom > 0 ? Table::num(static_cast<double>(r.hits) / denom, 3)
                             : "n/a",
                   Table::integer(static_cast<long long>(r.failures))});
  }
  std::printf("%s\n", table.render().c_str());

  std::printf("Synthesis cost vs internet size and policy mix\n");
  std::printf("(mean DFS expansions per on-demand synthesis):\n");
  Table sweep({"ADs", "restrict=0.0", "restrict=0.4", "restrict=0.8"});
  for (const std::uint32_t ads : {32u, 64u, 128u, 256u}) {
    std::vector<std::string> row{Table::integer(ads)};
    for (const double restrict_prob : {0.0, 0.4, 0.8}) {
      const Workload wl = make_workload(20 + ads, ads, restrict_prob);
      const StrategyResult r = run_strategy(wl, SynthesisStrategy::kOnDemand);
      row.push_back(
          r.request_time_synths
              ? Table::num(static_cast<double>(r.expansions) /
                               static_cast<double>(r.request_time_synths),
                           4)
              : "n/a");
    }
    sweep.add_row(std::move(row));
  }
  std::printf("%s\n", sweep.render().c_str());
  std::printf(
      "Reading: precomputing everything costs orders of magnitude more\n"
      "search than the request stream needs (the paper: intractable at\n"
      "scale); pure on-demand pays every synthesis at request time; the\n"
      "hybrid captures most hits for a fraction of the precompute work --\n"
      "the combination the paper recommends.\n");
}

void BM_SingleSynthesis(benchmark::State& state) {
  const Workload w = make_workload(11, static_cast<std::uint32_t>(state.range(0)), 0.3);
  OrwgArchitecture arch;
  arch.build(w.scenario.topo, w.scenario.policies);
  std::size_t i = 0;
  for (auto _ : state) {
    const FlowSpec& flow = w.requests[i++ % w.requests.size()];
    // Fresh synthesis each time: use the oracle-style direct search.
    OrwgNode* node = arch.nodes()[flow.src.v];
    benchmark::DoNotOptimize(node->policy_route(flow));
  }
}
BENCHMARK(BM_SingleSynthesis)->Arg(64)->Arg(128);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
