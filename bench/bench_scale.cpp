// bench_scale: paper-scale engine baseline (BENCH_scale.json).
//
// Stands up the hierarchical scale profile (core/scale_profile.*) at AD
// counts 1e2..1e5 for each of the four design points, runs each internet
// to full convergence on the calendar-queue engine, and emits one JSON
// row per (arch, size) with the throughput/overhead numbers the CI
// regression gate (tools/check_bench_scale.py) and EXPERIMENTS.md track:
// events processed, wall time, events/sec, control-plane messages and
// bytes (bytes/event), simulated convergence time, peak RSS, and the
// delivered fraction of sampled stub->beacon probes.
//
// Standalone binary (not google-benchmark): one converged run per cell
// is the measurement; determinism comes from the fixed profile seed.
//
// Peak-RSS caveat: getrusage(RUSAGE_SELF).ru_maxrss is a process-wide
// high-water mark, so sizes run ascending and each row reports the mark
// before and after its run; the per-run delta is only meaningful for the
// largest size so far.

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/design_harness.hpp"
#include "core/scale_profile.hpp"
#include "sim/engine.hpp"
#include "sim/invariants.hpp"
#include "sim/network.hpp"
#include "util/check.hpp"
#include "util/prng.hpp"

namespace {

constexpr std::uint64_t kProfileSeed = 0x5ca1eULL;
constexpr std::uint32_t kBeacons = 64;
constexpr std::size_t kProbes = 256;
constexpr std::size_t kMaxEvents = 2'000'000'000;

long peak_rss_kb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;  // KiB on Linux
}

struct Row {
  std::string arch;
  std::uint32_t ads = 0;
  std::uint32_t transit_ads = 0;
  std::size_t links = 0;
  std::uint64_t events = 0;
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;
  double bytes_per_event = 0.0;
  double convergence_ms = 0.0;  // simulated time of the last event
  std::size_t probes = 0;
  std::size_t probe_delivered = 0;
  long rss_before_kb = 0;
  long rss_after_kb = 0;
};

Row run_cell(const std::string& arch, idr::ScaleProfile& profile) {
  Row row;
  row.arch = arch;
  row.ads = static_cast<std::uint32_t>(profile.topo.ad_count());
  row.transit_ads = static_cast<std::uint32_t>(profile.transits.size());
  row.links = profile.topo.link_count();
  row.rss_before_kb = peak_rss_kb();

  idr::Engine engine(idr::SchedulerKind::kCalendar);
  idr::Network net(engine, profile.topo);
  const auto factory = idr::make_scale_factory(arch, profile);
  net.set_node_factory(factory);
  for (const idr::Ad& ad : profile.topo.ads()) {
    net.attach(ad.id, factory(ad.id));
  }

  const auto t0 = std::chrono::steady_clock::now();
  net.start_all();
  row.events = engine.run(kMaxEvents);
  const auto t1 = std::chrono::steady_clock::now();
  IDR_CHECK_MSG(engine.empty(), "scale run hit the event cap");

  row.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  row.events_per_sec =
      row.wall_ms > 0.0 ? row.events / (row.wall_ms / 1e3) : 0.0;
  row.convergence_ms = engine.now();
  row.msgs_sent = net.total().msgs_sent;
  row.bytes_sent = net.total().bytes_sent;
  row.bytes_per_event =
      row.events > 0 ? static_cast<double>(row.bytes_sent) /
                           static_cast<double>(row.events)
                     : 0.0;

  // Data-plane sanity at the converged horizon: sampled stub->beacon
  // probes through the design's own forwarding walk.
  const auto probe = idr::make_design_probe(arch, net, profile.topo);
  idr::Prng prng(kProfileSeed ^ 0x9e3779b97f4a7c15ULL);
  const std::size_t n = profile.topo.ad_count();
  for (std::size_t i = 0; i < kProbes; ++i) {
    const idr::AdId src{static_cast<std::uint32_t>(prng.below(n))};
    const idr::AdId dst =
        profile.beacons[prng.below(profile.beacons.size())];
    if (src == dst) continue;
    idr::FlowSpec flow;
    flow.src = src;
    flow.dst = dst;
    ++row.probes;
    if (probe(flow).outcome == idr::ProbeOutcome::kDelivered) {
      ++row.probe_delivered;
    }
  }
  row.rss_after_kb = peak_rss_kb();
  return row;
}

void emit(std::FILE* out, const std::vector<Row>& rows) {
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"bench_scale/v1\",\n");
  std::fprintf(out, "  \"profile_seed\": %llu,\n",
               static_cast<unsigned long long>(kProfileSeed));
  std::fprintf(out, "  \"beacons\": %u,\n", kBeacons);
  std::fprintf(out, "  \"runs\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        out,
        "    {\"arch\": \"%s\", \"ads\": %u, \"transit_ads\": %u, "
        "\"links\": %zu, \"events\": %llu, \"wall_ms\": %.3f, "
        "\"events_per_sec\": %.1f, \"msgs_sent\": %llu, "
        "\"bytes_sent\": %llu, \"bytes_per_event\": %.2f, "
        "\"convergence_ms\": %.3f, \"probes\": %zu, "
        "\"probe_delivered\": %zu, \"rss_before_kb\": %ld, "
        "\"rss_after_kb\": %ld}%s\n",
        r.arch.c_str(), r.ads, r.transit_ads, r.links,
        static_cast<unsigned long long>(r.events), r.wall_ms,
        r.events_per_sec, static_cast<unsigned long long>(r.msgs_sent),
        static_cast<unsigned long long>(r.bytes_sent), r.bytes_per_event,
        r.convergence_ms, r.probes, r.probe_delivered, r.rss_before_kb,
        r.rss_after_kb, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t max_ads = 100'000;
  std::string out_path = "BENCH_scale.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-ads") == 0 && i + 1 < argc) {
      max_ads = static_cast<std::uint32_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--max-ads N] [--out PATH]\n",
                   argv[0]);
      return 2;
    }
  }

  std::vector<Row> rows;
  for (const std::uint32_t size : {100u, 1'000u, 10'000u, 100'000u}) {
    if (size > max_ads) break;  // ascending: RSS high-water stays honest
    idr::ScaleProfile profile =
        idr::make_scale_profile(size, kProfileSeed, kBeacons);
    for (const std::string& arch : idr::design_point_names()) {
      rows.push_back(run_cell(arch, profile));
      const Row& r = rows.back();
      std::fprintf(stderr,
                   "%-6s ads=%-7u events=%-10llu wall=%8.1fms "
                   "ev/s=%12.0f conv=%8.1fms delivered=%zu/%zu\n",
                   r.arch.c_str(), r.ads,
                   static_cast<unsigned long long>(r.events), r.wall_ms,
                   r.events_per_sec, r.convergence_ms, r.probe_delivered,
                   r.probes);
    }
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  emit(out, rows);
  std::fclose(out);
  return 0;
}
