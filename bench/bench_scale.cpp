// bench_scale: paper-scale engine baseline (BENCH_scale.json) and the
// sharded-parallel engine bench (--threads -> BENCH_parallel.json).
//
// Baseline mode stands up the hierarchical scale profile
// (core/scale_profile.*) at AD counts 1e2..1e5 for each of the four
// design points, runs each internet to full convergence on the
// calendar-queue engine, and emits one JSON row per (arch, size) with
// the throughput/overhead numbers the CI regression gate
// (tools/check_bench_scale.py) and EXPERIMENTS.md track: events
// processed, wall time, events/sec, control-plane messages and bytes
// (bytes/event), simulated convergence time, peak RSS, and the
// delivered fraction of sampled stub->beacon probes.
//
// Parallel mode (--threads T1,T2,...) runs the largest size on the
// 8-shard conservative-window engine at each thread count and emits
// BENCH_parallel.json for tools/check_bench_parallel.py. Two speedups
// are reported per design point:
//   * critical_path_speedup -- deterministic available parallelism,
//     (parallel + control events) / (per-window busiest shard + control
//     events): host-independent, identical on every machine;
//   * wall speedup per thread count -- the measured ratio, meaningful
//     only when the host actually has that many cores (host_cpus is
//     recorded so the gate can tell).
// Every parallel run must reproduce the sequential fingerprint and
// event count exactly; the bench records the comparison per cell.
//
// Standalone binary (not google-benchmark): one converged run per cell
// is the measurement; determinism comes from the fixed profile seed.
//
// Peak-RSS caveat: getrusage(RUSAGE_SELF).ru_maxrss is a process-wide
// high-water mark, so sizes run ascending and each row reports the mark
// before and after its run; the per-run delta is only meaningful for the
// largest size so far.

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/design_harness.hpp"
#include "core/scale_profile.hpp"
#include "sim/engine.hpp"
#include "sim/invariants.hpp"
#include "sim/network.hpp"
#include "sim/shard.hpp"
#include "util/check.hpp"
#include "util/prng.hpp"

namespace {

constexpr std::uint64_t kProfileSeed = 0x5ca1eULL;
constexpr std::uint32_t kBeacons = 64;
constexpr std::size_t kProbes = 256;
constexpr std::size_t kMaxEvents = 2'000'000'000;

long peak_rss_kb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;  // KiB on Linux
}

struct Row {
  std::string arch;
  std::uint32_t ads = 0;
  std::uint32_t transit_ads = 0;
  std::size_t links = 0;
  std::uint64_t events = 0;
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;
  double bytes_per_event = 0.0;
  double convergence_ms = 0.0;  // simulated time of the last event
  std::size_t probes = 0;
  std::size_t probe_delivered = 0;
  long rss_before_kb = 0;
  long rss_after_kb = 0;
};

Row run_cell(const std::string& arch, idr::ScaleProfile& profile) {
  Row row;
  row.arch = arch;
  row.ads = static_cast<std::uint32_t>(profile.topo.ad_count());
  row.transit_ads = static_cast<std::uint32_t>(profile.transits.size());
  row.links = profile.topo.link_count();
  row.rss_before_kb = peak_rss_kb();

  idr::Engine engine(idr::SchedulerKind::kCalendar);
  idr::Network net(engine, profile.topo);
  const auto factory = idr::make_scale_factory(arch, profile);
  net.set_node_factory(factory);
  for (const idr::Ad& ad : profile.topo.ads()) {
    net.attach(ad.id, factory(ad.id));
  }

  const auto t0 = std::chrono::steady_clock::now();
  net.start_all();
  row.events = engine.run(kMaxEvents);
  const auto t1 = std::chrono::steady_clock::now();
  IDR_CHECK_MSG(engine.empty(), "scale run hit the event cap");

  row.wall_ms =
      std::chrono::duration<double, std::milli>(t1 - t0).count();
  row.events_per_sec =
      row.wall_ms > 0.0 ? row.events / (row.wall_ms / 1e3) : 0.0;
  row.convergence_ms = engine.now();
  row.msgs_sent = net.total().msgs_sent;
  row.bytes_sent = net.total().bytes_sent;
  row.bytes_per_event =
      row.events > 0 ? static_cast<double>(row.bytes_sent) /
                           static_cast<double>(row.events)
                     : 0.0;

  // Data-plane sanity at the converged horizon: sampled stub->beacon
  // probes through the design's own forwarding walk.
  const auto probe = idr::make_design_probe(arch, net, profile.topo);
  idr::Prng prng(kProfileSeed ^ 0x9e3779b97f4a7c15ULL);
  const std::size_t n = profile.topo.ad_count();
  for (std::size_t i = 0; i < kProbes; ++i) {
    const idr::AdId src{static_cast<std::uint32_t>(prng.below(n))};
    const idr::AdId dst =
        profile.beacons[prng.below(profile.beacons.size())];
    if (src == dst) continue;
    idr::FlowSpec flow;
    flow.src = src;
    flow.dst = dst;
    ++row.probes;
    if (probe(flow).outcome == idr::ProbeOutcome::kDelivered) {
      ++row.probe_delivered;
    }
  }
  row.rss_after_kb = peak_rss_kb();
  return row;
}

void emit(std::FILE* out, const std::vector<Row>& rows) {
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"bench_scale/v1\",\n");
  std::fprintf(out, "  \"profile_seed\": %llu,\n",
               static_cast<unsigned long long>(kProfileSeed));
  std::fprintf(out, "  \"beacons\": %u,\n", kBeacons);
  std::fprintf(out, "  \"runs\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    std::fprintf(
        out,
        "    {\"arch\": \"%s\", \"ads\": %u, \"transit_ads\": %u, "
        "\"links\": %zu, \"events\": %llu, \"wall_ms\": %.3f, "
        "\"events_per_sec\": %.1f, \"msgs_sent\": %llu, "
        "\"bytes_sent\": %llu, \"bytes_per_event\": %.2f, "
        "\"convergence_ms\": %.3f, \"probes\": %zu, "
        "\"probe_delivered\": %zu, \"rss_before_kb\": %ld, "
        "\"rss_after_kb\": %ld}%s\n",
        r.arch.c_str(), r.ads, r.transit_ads, r.links,
        static_cast<unsigned long long>(r.events), r.wall_ms,
        r.events_per_sec, static_cast<unsigned long long>(r.msgs_sent),
        static_cast<unsigned long long>(r.bytes_sent), r.bytes_per_event,
        r.convergence_ms, r.probes, r.probe_delivered, r.rss_before_kb,
        r.rss_after_kb, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

// --- parallel mode (--threads) ------------------------------------------

constexpr std::uint32_t kParallelShards = 8;

struct ParallelCell {
  unsigned threads = 0;  // 0 = inline windows on the driving thread
  double wall_ms = 0.0;
  double events_per_sec = 0.0;
  double wall_speedup = 0.0;  // sequential wall / this wall
  bool fingerprint_match = false;
  bool events_match = false;
};

struct ParallelRun {
  std::string arch;
  std::uint32_t ads = 0;
  std::uint64_t events = 0;       // sequential reference
  double seq_wall_ms = 0.0;
  double seq_events_per_sec = 0.0;
  std::uint64_t windows = 0;
  std::uint64_t control_events = 0;
  double lookahead_ms = 0.0;
  double balance_factor = 0.0;
  double critical_path_speedup = 0.0;
  std::vector<ParallelCell> cells;
};

struct ConvergedRun {
  std::uint64_t events = 0;
  double wall_ms = 0.0;
  std::uint64_t fingerprint = 0;
  idr::ParallelStats stats;
};

ConvergedRun run_converged(const std::string& arch,
                           idr::ScaleProfile& profile,
                           const idr::ShardPlan* plan, unsigned threads) {
  idr::Engine engine(idr::SchedulerKind::kCalendar);
  if (plan) engine.enable_sharding(*plan, threads);
  idr::Network net(engine, profile.topo);
  const auto factory = idr::make_scale_factory(arch, profile);
  net.set_node_factory(factory);
  for (const idr::Ad& ad : profile.topo.ads()) {
    net.attach(ad.id, factory(ad.id));
  }
  const auto t0 = std::chrono::steady_clock::now();
  net.start_all();
  ConvergedRun run;
  run.events = engine.run(kMaxEvents);
  const auto t1 = std::chrono::steady_clock::now();
  IDR_CHECK_MSG(engine.empty(), "scale run hit the event cap");
  run.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  run.fingerprint = idr::counter_fingerprint(net, profile.topo);
  if (const idr::ParallelStats* stats = engine.parallel_stats()) {
    run.stats = *stats;
  }
  return run;
}

ParallelRun run_parallel_arch(const std::string& arch,
                              idr::ScaleProfile& profile,
                              const std::vector<unsigned>& thread_counts) {
  ParallelRun out;
  out.arch = arch;
  out.ads = static_cast<std::uint32_t>(profile.topo.ad_count());

  const ConvergedRun seq = run_converged(arch, profile, nullptr, 0);
  out.events = seq.events;
  out.seq_wall_ms = seq.wall_ms;
  out.seq_events_per_sec =
      seq.wall_ms > 0.0 ? seq.events / (seq.wall_ms / 1e3) : 0.0;

  const idr::ShardPlan plan =
      idr::make_scale_shard_plan(profile, kParallelShards);
  out.lookahead_ms = plan.lookahead_ms;
  out.balance_factor = plan.balance_factor();

  for (const unsigned threads : thread_counts) {
    const ConvergedRun par = run_converged(arch, profile, &plan, threads);
    ParallelCell cell;
    cell.threads = threads;
    cell.wall_ms = par.wall_ms;
    cell.events_per_sec =
        par.wall_ms > 0.0 ? par.events / (par.wall_ms / 1e3) : 0.0;
    cell.wall_speedup = par.wall_ms > 0.0 ? seq.wall_ms / par.wall_ms : 0.0;
    cell.fingerprint_match = par.fingerprint == seq.fingerprint;
    cell.events_match = par.events == seq.events;
    out.cells.push_back(cell);
    // The stats are thread-count-independent; keep the last run's copy.
    out.windows = par.stats.windows;
    out.control_events = par.stats.control_events;
    out.critical_path_speedup = par.stats.critical_path_speedup();
    std::fprintf(stderr,
                 "%-6s shards=%u threads=%u wall=%8.1fms speedup=%5.2fx "
                 "cp-speedup=%5.2fx fp=%s events=%s\n",
                 arch.c_str(), kParallelShards, threads, par.wall_ms,
                 cell.wall_speedup, out.critical_path_speedup,
                 cell.fingerprint_match ? "match" : "MISMATCH",
                 cell.events_match ? "match" : "MISMATCH");
  }
  return out;
}

void emit_parallel(std::FILE* out, const std::vector<ParallelRun>& runs) {
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"bench_parallel/v1\",\n");
  std::fprintf(out, "  \"profile_seed\": %llu,\n",
               static_cast<unsigned long long>(kProfileSeed));
  std::fprintf(out, "  \"shards\": %u,\n", kParallelShards);
  std::fprintf(out, "  \"host_cpus\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(out, "  \"runs\": [\n");
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const ParallelRun& r = runs[i];
    std::fprintf(out,
                 "    {\"arch\": \"%s\", \"ads\": %u, \"events\": %llu, "
                 "\"seq_wall_ms\": %.3f, \"seq_events_per_sec\": %.1f, "
                 "\"windows\": %llu, \"control_events\": %llu, "
                 "\"lookahead_ms\": %.3f, \"balance_factor\": %.3f, "
                 "\"critical_path_speedup\": %.3f, \"threads\": [\n",
                 r.arch.c_str(), r.ads,
                 static_cast<unsigned long long>(r.events), r.seq_wall_ms,
                 r.seq_events_per_sec,
                 static_cast<unsigned long long>(r.windows),
                 static_cast<unsigned long long>(r.control_events),
                 r.lookahead_ms, r.balance_factor, r.critical_path_speedup);
    for (std::size_t j = 0; j < r.cells.size(); ++j) {
      const ParallelCell& c = r.cells[j];
      std::fprintf(out,
                   "      {\"threads\": %u, \"wall_ms\": %.3f, "
                   "\"events_per_sec\": %.1f, \"wall_speedup\": %.3f, "
                   "\"fingerprint_match\": %s, \"events_match\": %s}%s\n",
                   c.threads, c.wall_ms, c.events_per_sec, c.wall_speedup,
                   c.fingerprint_match ? "true" : "false",
                   c.events_match ? "true" : "false",
                   j + 1 < r.cells.size() ? "," : "");
    }
    std::fprintf(out, "    ]}%s\n", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t max_ads = 100'000;
  std::string out_path;
  std::vector<unsigned> thread_counts;  // non-empty => parallel mode
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--max-ads") == 0 && i + 1 < argc) {
      max_ads = static_cast<std::uint32_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      for (const char* p = argv[++i]; *p != '\0';) {
        thread_counts.push_back(
            static_cast<unsigned>(std::strtoul(p, const_cast<char**>(&p), 10)));
        if (*p == ',') ++p;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--max-ads N] [--out PATH] [--threads T1,T2,..]\n",
                   argv[0]);
      return 2;
    }
  }
  if (out_path.empty()) {
    out_path =
        thread_counts.empty() ? "BENCH_scale.json" : "BENCH_parallel.json";
  }

  if (!thread_counts.empty()) {
    // Parallel mode: the largest requested size only, 8 shards, one run
    // per (arch, thread count) against the sequential reference.
    idr::ScaleProfile profile =
        idr::make_scale_profile(max_ads, kProfileSeed, kBeacons);
    std::vector<ParallelRun> runs;
    for (const std::string& arch : idr::design_point_names()) {
      runs.push_back(run_parallel_arch(arch, profile, thread_counts));
    }
    std::FILE* out = std::fopen(out_path.c_str(), "w");
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    emit_parallel(out, runs);
    std::fclose(out);
    return 0;
  }

  std::vector<Row> rows;
  for (const std::uint32_t size : {100u, 1'000u, 10'000u, 100'000u}) {
    if (size > max_ads) break;  // ascending: RSS high-water stays honest
    idr::ScaleProfile profile =
        idr::make_scale_profile(size, kProfileSeed, kBeacons);
    for (const std::string& arch : idr::design_point_names()) {
      rows.push_back(run_cell(arch, profile));
      const Row& r = rows.back();
      std::fprintf(stderr,
                   "%-6s ads=%-7u events=%-10llu wall=%8.1fms "
                   "ev/s=%12.0f conv=%8.1fms delivered=%zu/%zu\n",
                   r.arch.c_str(), r.ads,
                   static_cast<unsigned long long>(r.events), r.wall_ms,
                   r.events_per_sec, r.convergence_ms, r.probe_delivered,
                   r.probes);
    }
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  emit(out, rows);
  std::fclose(out);
  return 0;
}
