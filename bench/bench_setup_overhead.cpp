// E-setup -- Policy Route setup cost and header amortization (paper
// §5.4.1).
//
// The paper's design avoids "the latency of the Policy Route setup
// process and the header-length overhead of the source route" by
// assigning a handle at setup time. This bench sends flows of increasing
// length over ORWG and reports the measured setup latency, per-packet
// overhead amortized over the flow, and the comparison against (a) a
// naive source-routing data plane that carries the full route in every
// packet (dv-sr style) and (b) the fixed hop-by-hop header.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/adapters.hpp"
#include "core/scenario.hpp"
#include "policy/generator.hpp"
#include "topology/figure1.hpp"
#include "util/table.hpp"

namespace {

using namespace idr;

void report() {
  std::printf("== E-setup: PR setup amortization and header overhead ==\n\n");

  Figure1 fig = build_figure1();
  const PolicySet policies = make_open_policies(fig.topo);

  OrwgArchitecture orwg;
  orwg.build(fig.topo, policies);
  DvsrArchitecture dvsr;
  IdrpArchitecture idrp;

  const FlowSpec flow{fig.campus[0], fig.campus[6]};
  const auto route = orwg.trace(flow);
  const std::size_t path_len = route.path ? route.path->size() : 6;
  std::printf("flow %s, policy route of %zu ADs\n\n",
              flow.describe(fig.topo).c_str(), path_len);

  Table table({"packets in flow", "setup latency(ms)",
               "orwg bytes/pkt (amortized)", "dv-sr bytes/pkt",
               "idrp hbh bytes/pkt", "PG validations"});
  for (const std::uint32_t packets : {1u, 10u, 100u, 1000u}) {
    // Fresh network per row so setup happens exactly once.
    OrwgArchitecture arch;
    arch.build(fig.topo, policies);
    auto* src = arch.nodes()[flow.src.v];
    auto* dst = arch.nodes()[flow.dst.v];
    arch.network().reset_counters();
    src->send_flow(flow, packets);
    arch.network().engine().run();

    const double setup_ms = src->setup_latency_ms().count() > 0
                                ? src->setup_latency_ms().mean()
                                : 0.0;
    // Overhead = header bytes per data packet + setup packets amortized.
    const double orwg_per_pkt =
        static_cast<double>(arch.setup_header_bytes(path_len)) /
            static_cast<double>(packets) +
        static_cast<double>(arch.header_bytes(path_len));
    std::uint64_t validations = 0;
    for (OrwgNode* node : arch.nodes()) {
      validations += node->gateway().data_validated();
    }
    table.add_row({
        Table::integer(packets),
        Table::num(setup_ms, 4),
        Table::num(orwg_per_pkt, 4),
        Table::integer(static_cast<long long>(dvsr.header_bytes(path_len))),
        Table::integer(static_cast<long long>(idrp.header_bytes(path_len))),
        Table::integer(static_cast<long long>(validations)),
    });
    if (dst->delivered() != packets) {
      std::printf("WARNING: delivered %llu of %u packets\n",
                  static_cast<unsigned long long>(dst->delivered()), packets);
    }
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: the setup packet's source-route header is paid once; by\n"
      "~10 packets the handle scheme beats carrying the route in every\n"
      "packet (dv-sr column), approaching the fixed hop-by-hop header\n"
      "while preserving source control. Setup latency equals one RTT over\n"
      "the policy route, as the paper's virtual-circuit analogy implies.\n");
}

void BM_SetupAndSend(benchmark::State& state) {
  Figure1 fig = build_figure1();
  const PolicySet policies = make_open_policies(fig.topo);
  const FlowSpec flow{fig.campus[0], fig.campus[6]};
  const auto packets = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    OrwgArchitecture arch;
    arch.build(fig.topo, policies);
    arch.nodes()[flow.src.v]->send_flow(flow, packets);
    arch.network().engine().run();
    benchmark::DoNotOptimize(arch.nodes()[flow.dst.v]->delivered());
  }
}
BENCHMARK(BM_SetupAndSend)->Arg(1)->Arg(100)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
