// E-state -- state and computation blowup as policies become
// source-specific (paper §5.2.1, §5.3, §5.4).
//
// The paper's scaling argument: with hop-by-hop routing, source-specific
// policy "effectively replicates the routing table per forwarding entity
// for each QOS, UCI, source combination" (IDRP) or forces "a separate
// spanning tree for each potential source of traffic" (LS hop-by-hop),
// while source routing "relieves transit ADs of this burden". We sweep
// the number of distinct source-specific policy groups that transit ADs
// discriminate among and measure, after routing a fixed flow sample:
//   * IDRP: RIB routes held per AD (state), and the availability cliff
//     when routes_per_dest is capped;
//   * LS-HbH: route computations and per-flow cache entries at transit
//     ADs;
//   * ORWG: route-server syntheses (at sources only) and PG handle state.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/adapters.hpp"
#include "core/metrics.hpp"
#include "core/scenario.hpp"
#include "topology/generator.hpp"
#include "util/table.hpp"

namespace {

using namespace idr;

// Policies where every regional discriminates among `groups` disjoint
// source groups (each PT serves one group).
PolicySet make_grouped_policies(const Topology& topo, std::uint32_t groups,
                                Prng& prng) {
  PolicySet policies = make_open_policies(topo);
  if (groups <= 1) return policies;
  // Partition all ADs into groups.
  std::vector<std::vector<AdId>> partition(groups);
  for (const Ad& ad : topo.ads()) {
    partition[prng.below(groups)].push_back(ad.id);
  }
  for (const Ad& ad : topo.ads()) {
    if (ad.role != AdRole::kTransit || ad.cls == AdClass::kBackbone) continue;
    policies.clear_terms(ad.id);
    for (std::uint32_t g = 0; g < groups; ++g) {
      PolicyTerm t = open_transit_term(ad.id, g, /*cost=*/1 + g);
      t.sources = AdSet::of(partition[g]);
      policies.add_term(t);
    }
  }
  return policies;
}

void report() {
  std::printf("== E-state: cost of source-specific policy granularity ==\n");
  std::printf("(48-AD internet, 64-flow sample, per-architecture totals)\n\n");

  Table table({"groups", "idrp RIB routes", "idrp avail(k=4)",
               "idrp avail(k=1)", "lshh computations", "lshh cache",
               "orwg syntheses", "orwg PG handles", "orwg avail"});

  for (const std::uint32_t groups : {1u, 2u, 4u, 8u}) {
    Prng prng(100 + groups);
    Topology topo = generate_topology_of_size(48, prng);
    const PolicySet policies = make_grouped_policies(topo, groups, prng);
    Prng flow_prng(9);
    const auto flows = sample_flows(topo, 64, flow_prng);

    IdrpArchitecture idrp_wide(IdrpConfig{.routes_per_dest = 4});
    IdrpArchitecture idrp_narrow(IdrpConfig{.routes_per_dest = 1});
    LshhArchitecture lshh;
    OrwgArchitecture orwg;

    const auto e_wide =
        evaluate_architecture(idrp_wide, topo, policies, flows);
    const auto e_narrow =
        evaluate_architecture(idrp_narrow, topo, policies, flows);
    const auto e_lshh = evaluate_architecture(lshh, topo, policies, flows);
    const auto e_orwg = evaluate_architecture(orwg, topo, policies, flows);

    // Drive real Policy Route setups so the PG handle state is populated
    // (evaluate_architecture only traces the control plane).
    for (const FlowSpec& flow : flows) {
      orwg.nodes()[flow.src.v]->send_flow(flow, 1);
    }
    orwg.network().engine().run();
    std::uint64_t pg_handles = 0;
    for (OrwgNode* node : orwg.nodes()) {
      pg_handles += node->gateway().installed();
    }
    table.add_row({
        Table::integer(groups),
        Table::integer(static_cast<long long>(e_wide.state)),
        Table::num(e_wide.availability(), 3),
        Table::num(e_narrow.availability(), 3),
        Table::integer(static_cast<long long>(e_lshh.computations)),
        Table::integer(static_cast<long long>(e_lshh.state)),
        Table::integer(static_cast<long long>(e_orwg.computations)),
        Table::integer(static_cast<long long>(pg_handles)),
        Table::num(e_orwg.availability(), 3),
    });
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: IDRP's RIB grows with policy groups and its availability\n"
      "collapses when the multi-route cap (k=1) cannot represent the\n"
      "policy diversity -- the paper's \"does not scale as policies become\n"
      "more fine grained\". LS-HbH availability holds but transit ADs pay\n"
      "in per-source computations/cache. ORWG keeps availability at 1.0\n"
      "with computation only at sources.\n");
}

void BM_GroupedPolicyEvaluation(benchmark::State& state) {
  const auto groups = static_cast<std::uint32_t>(state.range(0));
  Prng prng(100 + groups);
  Topology topo = generate_topology_of_size(32, prng);
  const PolicySet policies = make_grouped_policies(topo, groups, prng);
  Prng flow_prng(9);
  const auto flows = sample_flows(topo, 16, flow_prng);
  for (auto _ : state) {
    LshhArchitecture lshh;
    const auto eval = evaluate_architecture(lshh, topo, policies, flows);
    benchmark::DoNotOptimize(eval.computations);
  }
}
BENCHMARK(BM_GroupedPolicyEvaluation)->Arg(1)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
