// E-scale -- protocol overhead growth with internet size (paper §2.2).
//
// The paper targets ~1e5 ADs and asks which designs' control overhead
// survives that scale. We sweep simulated internets from 32 to 512 ADs
// and measure initial-convergence messages/bytes and per-AD state for
// each architecture, then print per-AD averages whose growth trend is
// the quantity of interest (absolute numbers are simulator-scale).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/adapters.hpp"
#include "core/scenario.hpp"
#include "util/table.hpp"

namespace {

using namespace idr;

void report() {
  std::printf("== E-scale: control overhead vs internet size ==\n\n");
  Table table({"ADs", "architecture", "conv msgs", "conv KB",
               "msgs/AD", "KB/AD", "state/AD"});

  for (const std::uint32_t ads : {32u, 64u, 128u, 256u, 512u}) {
    ScenarioParams params;
    params.seed = 5;
    params.target_ads = ads;
    params.flow_count = 4;  // flows are irrelevant here
    params.restrict_prob = 0.2;
    Scenario scenario = make_scenario(params);
    const auto n = static_cast<double>(scenario.topo.ad_count());

    auto run = [&](std::unique_ptr<RoutingArchitecture> arch) {
      // Path-vector full-table churn is O(N^2) messages, each O(N) routes
      // carrying O(N)-sized source sets: the very blowup the paper
      // predicts (§5.2.1). At simulator scale it exhausts memory beyond
      // ~128 ADs, so the row is reported as such rather than simulated.
      if (arch->design_point().algorithm == Algorithm::kDistanceVector &&
          arch->design_point().policy == PolicyExpression::kPolicyTerms &&
          ads > 128) {
        table.add_row({Table::integer(ads), arch->name(),
                       "(blowup: skipped)", "", "", "", ""});
        return;
      }
      arch->build(scenario.topo, scenario.policies);
      const auto conv = arch->initial_convergence();
      table.add_row(
          {Table::integer(ads), arch->name(),
           Table::integer(static_cast<long long>(conv.messages)),
           Table::num(static_cast<double>(conv.bytes) / 1024.0, 5),
           Table::num(static_cast<double>(conv.messages) / n, 4),
           Table::num(static_cast<double>(conv.bytes) / 1024.0 / n, 4),
           Table::num(static_cast<double>(arch->state_entries()) / n, 4)});
    };
    run(std::make_unique<DvArchitecture>());
    run(std::make_unique<EcmaArchitecture>());
    run(std::make_unique<IdrpArchitecture>());
    run(std::make_unique<LshhArchitecture>());
    run(std::make_unique<OrwgArchitecture>());
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: DV-family per-AD message cost grows with N (full tables\n"
      "ripple); the path vector additionally carries O(path) per route\n"
      "and multiplies by policy diversity -- the blowup the paper\n"
      "predicts at 1e5 ADs. Link-state flooding bytes grow with total\n"
      "links but per-AD state stays proportional to the database, and\n"
      "ORWG adds no per-flow transit state until PRs are set up.\n"
      "Extrapolation to the paper's 1e5-AD internet follows the same\n"
      "trend lines; the simulation stops at 512 ADs.\n");
}

void BM_ConvergenceAtScale(benchmark::State& state) {
  const auto ads = static_cast<std::uint32_t>(state.range(0));
  ScenarioParams params;
  params.seed = 5;
  params.target_ads = ads;
  params.flow_count = 4;
  Scenario scenario = make_scenario(params);
  for (auto _ : state) {
    OrwgArchitecture orwg;
    orwg.build(scenario.topo, scenario.policies);
    benchmark::DoNotOptimize(orwg.initial_convergence().messages);
  }
}
BENCHMARK(BM_ConvergenceAtScale)->Arg(64)->Arg(256)
    ->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
