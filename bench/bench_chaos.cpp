// E-chaos -- robustness of the four design points under continuous churn
// (paper §2.2: inter-AD routing must tolerate a topology that changes
// underneath it, without trusting every party to behave).
//
// Each design point runs the same seeded chaos schedule over Figure 1:
// link flaps, node crashes with cold restarts, frame corruption,
// duplication and reordering, keepalive-based failure detection (the
// oracle notifications are off). The invariant monitor reports transient
// violations (allowed, while news propagates) vs persistent ones (a
// correctness failure -- must be zero) and the fault-to-clean-sweep
// reconvergence time.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "core/chaos.hpp"
#include "util/table.hpp"

namespace {

using namespace idr;

void report() {
  std::printf("== E-chaos: invariants under crash/fault churn ==\n\n");
  ChaosParams params;
  params.seed = 7;

  Table table({"architecture", "msgs", "KB", "malformed", "transient viol",
               "persistent viol", "reconv p50(ms)", "reconv max(ms)"});
  for (const std::string& arch : chaos_design_points()) {
    const ChaosResult r = run_chaos(arch, params);
    const InvariantStats& inv = r.invariants;
    table.add_row(
        {arch, Table::integer(static_cast<long long>(r.totals.msgs_sent)),
         Table::integer(static_cast<long long>(r.totals.bytes_sent / 1024)),
         Table::integer(static_cast<long long>(r.totals.malformed_dropped)),
         Table::integer(static_cast<long long>(inv.transient_violations())),
         Table::integer(static_cast<long long>(inv.persistent_violations())),
         inv.reconverge_ms.count() > 0
             ? Table::num(inv.reconverge_ms.median())
             : "-",
         inv.reconverge_ms.count() > 0 ? Table::num(inv.reconverge_ms.max())
                                       : "-"});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: persistent violations must be zero for every row -- the\n"
      "protocols reconverge after every crash/flap burst despite lost,\n"
      "mangled, duplicated and reordered frames, and detect dead\n"
      "neighbors from keepalive silence alone. Transient violations are\n"
      "the price of propagation delay; the reconv columns bound it.\n");
}

void BM_ChaosSoakIdrp(benchmark::State& state) {
  // Wall-clock cost of one full chaos run (IDRP, Figure 1).
  for (auto _ : state) {
    ChaosParams params;
    params.seed = 7;
    const ChaosResult r = run_chaos("idrp", params);
    benchmark::DoNotOptimize(r.counter_fingerprint);
  }
}
BENCHMARK(BM_ChaosSoakIdrp)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
