// E-conv -- convergence behaviour after inter-AD topology change (paper
// §4.3, §5.1.1, §2.2).
//
// The paper's claims: distance vector converges slowly and counts to
// infinity; ECMA's partial ordering "prevents the count to infinity
// phenomenon" and yields rapid convergence whose effect "weakens for ADs
// farther away"; link state floods and settles. Replayed here on (a) a
// deliberately pathological cyclic topology, (b) Figure 1, and (c) a
// generated 64-AD internet, measuring messages and simulated time to
// re-quiescence after a link failure.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "core/adapters.hpp"
#include "core/scenario.hpp"
#include "topology/generator.hpp"
#include "policy/generator.hpp"
#include "topology/figure1.hpp"
#include "util/table.hpp"

namespace {

using namespace idr;

struct Case {
  std::string name;
  Topology topo;
  PolicySet policies;
  LinkId cut;
};

Case pathological_ring() {
  // A ring of transit ADs: the classic bad case for plain DV.
  Case c;
  c.name = "ring-8";
  std::vector<AdId> ids;
  for (int i = 0; i < 8; ++i) {
    ids.push_back(c.topo.add_ad(AdClass::kRegional, AdRole::kTransit));
  }
  for (int i = 0; i < 8; ++i) {
    c.topo.add_link(ids[static_cast<std::size_t>(i)],
                    ids[static_cast<std::size_t>((i + 1) % 8)],
                    LinkClass::kLateral);
  }
  c.policies = make_open_policies(c.topo);
  c.cut = *c.topo.find_link(ids[0], ids[1]);
  return c;
}

Case figure1_case() {
  Case c;
  c.name = "figure-1";
  Figure1 fig = build_figure1();
  c.topo = fig.topo;
  c.policies = make_open_policies(c.topo);
  c.cut = *c.topo.find_link(fig.backbone_west, fig.backbone_east);
  return c;
}

Case generated_case() {
  Case c;
  c.name = "generated-64";
  Prng prng(7);
  c.topo = generate_topology_of_size(64, prng);
  c.policies = make_open_policies(c.topo);
  // Cut the first backbone-backbone link.
  for (const Link& l : c.topo.links()) {
    if (c.topo.ad(l.a).cls == AdClass::kBackbone &&
        c.topo.ad(l.b).cls == AdClass::kBackbone) {
      c.cut = l.id;
      break;
    }
  }
  return c;
}

void report() {
  std::printf("== E-conv: reconvergence after a link failure ==\n\n");
  Table table({"topology", "architecture", "initial msgs", "reconv msgs",
               "reconv KB", "reconv time(ms)"});

  for (Case c : {pathological_ring(), figure1_case(), generated_case()}) {
    auto run = [&](std::unique_ptr<RoutingArchitecture> arch) {
      arch->build(c.topo, c.policies);
      const auto initial = arch->initial_convergence();
      const auto recon = arch->perturb(c.cut, false);
      table.add_row(
          {c.name, arch->name(),
           Table::integer(static_cast<long long>(initial.messages)),
           Table::integer(static_cast<long long>(recon.messages)),
           Table::num(static_cast<double>(recon.bytes) / 1024.0, 4),
           Table::num(recon.time_ms, 4)});
    };
    run(std::make_unique<DvArchitecture>(DvConfig{.split_horizon = false}));
    run(std::make_unique<DvArchitecture>(DvConfig{.split_horizon = true}));
    run(std::make_unique<EcmaArchitecture>());
    run(std::make_unique<IdrpArchitecture>());
    run(std::make_unique<LshhArchitecture>());
    run(std::make_unique<OrwgArchitecture>());
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: on the ring, plain DV pays the count-to-infinity tax\n"
      "(compare its reconv msgs against every other row); the ECMA\n"
      "partial ordering and the path vector suppress it; link-state\n"
      "flooding (ls-hbh, orwg) settles in one flood. EGP is absent: every\n"
      "topology here is cyclic, which EGP's admission check rejects.\n");
}

void BM_ReconvergeAfterFailure(benchmark::State& state) {
  // Wall-clock cost of one simulated failure/reconvergence cycle (IDRP,
  // Figure 1).
  for (auto _ : state) {
    Case c = figure1_case();
    IdrpArchitecture idrp;
    idrp.build(c.topo, c.policies);
    const auto recon = idrp.perturb(c.cut, false);
    benchmark::DoNotOptimize(recon.messages);
  }
}
BENCHMARK(BM_ReconvergeAfterFailure)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
