// bench_restart: graceful restart & control-plane overload protection
// A/B under the restart storm (BENCH_restart.json).
//
// For each design point, three cells over the hierarchical scale
// profile, all driven by the same staggered transit-core crash/restart
// schedule (StormFamily::kRestartStorm):
//
//   * cold      -- no graceful restart, no overload protection: every
//                  crash is observed immediately, neighbors withdraw,
//                  the restarted node resyncs from scratch. The
//                  forwarding-continuity baseline the GR cell is
//                  measured against.
//   * gr        -- graceful restart (grace window longer than the
//                  outage, so every window ends in a recovery handover)
//                  plus bounded class-prioritized ingress queues and
//                  deterministic tail drop. The gate cell: continuity
//                  through the storm must stay >= 99% and no persistent
//                  invariant violations may survive.
//   * gr-flush  -- grace window SHORTER than the outage: every grace
//                  window expires before the node returns, exercising
//                  the stale-flush path. The gate here is correctness
//                  (zero persistent stale-route violations after the
//                  flush), not continuity.
//
// Continuity is InvariantStats::continuity(): of the probes sent while
// node churn was in flight whose endpoints were up and which a
// transit-aliveness-blind ground truth says should have been
// deliverable (the GR promise), the fraction actually delivered over
// fresh paths. Cold cells keep the same denominator, which is what
// makes the gap attributable to GR.
//
// Standalone binary (not google-benchmark): one deterministic run per
// cell is the measurement; same seed, same storm schedule, same counter
// fingerprint. Peak-RSS caveat as in bench_chaos_scale.

#include <sys/resource.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/chaos.hpp"
#include "util/check.hpp"

namespace {

long peak_rss_kb() {
  rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;  // KiB on Linux
}

struct Row {
  idr::ScaleChaosResult res;
  std::string mode;  // "cold" | "gr" | "gr-flush"
  double wall_ms = 0.0;
  long rss_after_kb = 0;
};

Row run_cell(const std::string& arch, const std::string& mode,
             const idr::ScaleChaosParams& params) {
  Row row;
  row.mode = mode;
  const auto t0 = std::chrono::steady_clock::now();
  row.res = idr::run_scale_chaos(arch, params);
  const auto t1 = std::chrono::steady_clock::now();
  row.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  row.rss_after_kb = peak_rss_kb();
  std::fprintf(
      stderr,
      "%-6s %-8s crashes=%-3zu continuity=%6.2f%% (%llu/%llu) "
      "reconv=%8.1fms persistent=%llu recoveries=%llu flushes=%llu "
      "peak_q=%zu drops=%llu\n",
      row.res.arch.c_str(), mode.c_str(), row.res.node_crashes,
      100.0 * row.res.invariants.continuity(),
      static_cast<unsigned long long>(row.res.invariants.continuity_ok),
      static_cast<unsigned long long>(row.res.invariants.continuity_probes),
      row.res.reconverge_ms,
      static_cast<unsigned long long>(
          row.res.invariants.persistent_violations()),
      static_cast<unsigned long long>(row.res.gr_recoveries),
      static_cast<unsigned long long>(row.res.gr_flushes),
      row.res.overload.peak_depth,
      static_cast<unsigned long long>(row.res.overload.dropped_total()));
  return row;
}

void emit(std::FILE* out, const std::vector<Row>& rows,
          const idr::ScaleChaosParams& base) {
  std::fprintf(out, "{\n");
  std::fprintf(out, "  \"schema\": \"bench_restart/v1\",\n");
  std::fprintf(out, "  \"profile_seed\": %llu,\n",
               static_cast<unsigned long long>(base.seed));
  std::fprintf(out, "  \"beacons\": %u,\n", base.beacon_count);
  std::fprintf(out, "  \"restart_nodes\": %zu,\n", base.restart_nodes);
  std::fprintf(out, "  \"restart_waves\": %u,\n", base.restart_waves);
  std::fprintf(out, "  \"runs\": [\n");
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const Row& r = rows[i];
    const idr::ScaleChaosResult& s = r.res;
    std::fprintf(
        out,
        "    {\"arch\": \"%s\", \"mode\": \"%s\", \"ads\": %u, "
        "\"transit_ads\": %u, \"node_crashes\": %zu, "
        "\"converge_ms\": %.3f, \"reconverge_ms\": %.3f, "
        "\"continuity_pct\": %.4f, \"continuity_probes\": %llu, "
        "\"continuity_ok\": %llu, "
        "\"transient_violations\": %llu, \"persistent_violations\": %llu, "
        "\"gr_recoveries\": %llu, \"gr_flushes\": %llu, "
        "\"gr_stale_flushed\": %llu, \"gr_resyncs\": %llu, "
        "\"gr_retained\": %llu, \"gr_memoized\": %llu, "
        "\"queue_enqueued\": %llu, \"queue_served\": %llu, "
        "\"peak_queue_depth\": %zu, "
        "\"dropped_keepalive\": %llu, \"dropped_withdrawal\": %llu, "
        "\"dropped_update\": %llu, \"dropped_refresh\": %llu, "
        "\"cleared_on_crash\": %llu, "
        "\"storm_msgs\": %llu, \"post_storm_msgs\": %llu, "
        "\"counter_fingerprint\": %llu, \"wall_ms\": %.3f, "
        "\"rss_after_kb\": %ld}%s\n",
        s.arch.c_str(), r.mode.c_str(), s.ads, s.transit_ads, s.node_crashes,
        s.converge_ms, s.reconverge_ms, 100.0 * s.invariants.continuity(),
        static_cast<unsigned long long>(s.invariants.continuity_probes),
        static_cast<unsigned long long>(s.invariants.continuity_ok),
        static_cast<unsigned long long>(s.invariants.transient_violations()),
        static_cast<unsigned long long>(s.invariants.persistent_violations()),
        static_cast<unsigned long long>(s.gr_recoveries),
        static_cast<unsigned long long>(s.gr_flushes),
        static_cast<unsigned long long>(s.gr_stale_flushed),
        static_cast<unsigned long long>(s.gr_resyncs),
        static_cast<unsigned long long>(s.gr_retained),
        static_cast<unsigned long long>(s.gr_memoized),
        static_cast<unsigned long long>(s.overload.enqueued),
        static_cast<unsigned long long>(s.overload.served),
        s.overload.peak_depth,
        static_cast<unsigned long long>(
            s.overload.dropped[static_cast<std::size_t>(
                idr::MsgClass::kKeepalive)]),
        static_cast<unsigned long long>(
            s.overload.dropped[static_cast<std::size_t>(
                idr::MsgClass::kWithdrawal)]),
        static_cast<unsigned long long>(
            s.overload.dropped[static_cast<std::size_t>(
                idr::MsgClass::kUpdate)]),
        static_cast<unsigned long long>(
            s.overload.dropped[static_cast<std::size_t>(
                idr::MsgClass::kRefresh)]),
        static_cast<unsigned long long>(s.overload.cleared_on_crash),
        static_cast<unsigned long long>(s.updates_during_storm),
        static_cast<unsigned long long>(s.updates_after_storm),
        static_cast<unsigned long long>(s.counter_fingerprint), r.wall_ms,
        r.rss_after_kb, i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(out, "  ]\n}\n");
}

}  // namespace

int main(int argc, char** argv) {
  std::uint32_t ads = 10'000;
  std::string out_path = "BENCH_restart.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--ads") == 0 && i + 1 < argc) {
      ads = static_cast<std::uint32_t>(std::atol(argv[++i]));
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::fprintf(stderr, "usage: %s [--ads N] [--out PATH]\n", argv[0]);
      return 2;
    }
  }

  idr::ScaleChaosParams base;
  base.target_ads = ads;
  base.storm = idr::StormFamily::kRestartStorm;

  // The overload knobs of the protected cells: bounded queues sized for
  // storm churn (not cold bring-up -- the driver arms them on the
  // settled network), strict class priority, deterministic tail drop.
  idr::OverloadConfig overload;
  overload.queue_limit = 64;
  overload.service_batch = 16;
  overload.service_interval_ms = 0.5;

  std::vector<Row> rows;
  for (const std::string& arch : idr::chaos_design_points()) {
    {
      idr::ScaleChaosParams params = base;  // cold: both knobs off
      rows.push_back(run_cell(arch, "cold", params));
    }
    {
      idr::ScaleChaosParams params = base;
      params.gr.enabled = true;
      params.gr.grace_ms = 2'000.0;  // > restart_down_ms: recovery in grace
      params.overload = overload;
      rows.push_back(run_cell(arch, "gr", params));
    }
    {
      idr::ScaleChaosParams params = base;
      params.gr.enabled = true;
      params.gr.grace_ms = 150.0;      // < outage: every grace expires...
      params.restart_down_ms = 600.0;  // ...and the stale flush must run
      params.overload = overload;
      rows.push_back(run_cell(arch, "gr-flush", params));
    }
  }

  std::FILE* out = std::fopen(out_path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
    return 1;
  }
  emit(out, rows, base);
  std::fclose(out);
  return 0;
}
