// E-abstraction -- the cost/benefit of routing at a coarser granularity
// (paper §4.1: "As with any abstraction or hierarchical routing, some
// optimality may be lost. Nonetheless the benefits of this abstraction
// far outweigh its costs"; §5.1.1 notes grouping ADs into a hierarchy as
// the scaling path).
//
// Clusters ADs by hierarchy, aggregates their advertisements
// optimistically, and compares two-level (cluster route + corridor
// expansion, flat fallback) against flat synthesis: search work saved,
// advertisement footprint saved, stretch paid, and how often optimism
// forces the fallback.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "cluster/aggregate.hpp"
#include "cluster/hierarchical.hpp"
#include "core/oracle.hpp"
#include "core/scenario.hpp"
#include "util/table.hpp"

namespace {

using namespace idr;

void report() {
  std::printf("== E-abstraction: cluster-granularity routing ==\n\n");
  Table table({"ADs", "clusters", "advert footprint", "expansions",
               "mean stretch", "fallbacks", "routes found"});

  for (const std::uint32_t ads : {64u, 128u, 256u}) {
    ScenarioParams params;
    params.seed = 13;
    params.target_ads = ads;
    params.flow_count = 48;
    params.restrict_prob = 0.3;
    Scenario scenario = make_scenario(params);
    const Clustering clustering = cluster_by_hierarchy(scenario.topo);
    const ClusterGraph graph =
        aggregate(scenario.topo, scenario.policies, clustering);
    const AbstractionFootprint fp =
        footprint(scenario.topo, scenario.policies, graph);
    const Oracle oracle(scenario.topo, scenario.policies);

    std::uint64_t flat_expansions = 0;
    std::uint64_t hier_expansions = 0;
    std::size_t fallbacks = 0;
    std::size_t found = 0;
    double stretch_sum = 0.0;
    std::size_t stretch_n = 0;
    for (const FlowSpec& flow : scenario.flows) {
      const SourcePolicy& sp = scenario.policies.source_policy(flow.src);
      SynthesisOptions options;
      options.max_hops = sp.max_hops;
      options.avoid = sp.avoid;
      options.minimize_cost = sp.prefer_min_cost;
      const HierarchicalResult hier = synthesize_hierarchical(
          scenario.topo, scenario.policies, clustering, graph, flow,
          options);
      const SynthesisResult flat = oracle.best_route(flow);
      flat_expansions += flat.expansions;
      hier_expansions += hier.total_expansions();
      if (hier.used_fallback) ++fallbacks;
      if (hier.result.found()) {
        ++found;
        if (flat.found() && flat.cost > 0) {
          stretch_sum += static_cast<double>(hier.result.cost) /
                         static_cast<double>(flat.cost);
          ++stretch_n;
        }
      }
    }

    char footprint_cell[64];
    std::snprintf(footprint_cell, sizeof footprint_cell,
                  "%zu+%zu+%zu vs %zu+%zu+%zu", fp.cluster_nodes,
                  fp.cluster_links, fp.cluster_terms, fp.flat_nodes,
                  fp.flat_links, fp.flat_terms);
    char exp_cell[64];
    std::snprintf(exp_cell, sizeof exp_cell, "%llu vs %llu flat",
                  static_cast<unsigned long long>(hier_expansions),
                  static_cast<unsigned long long>(flat_expansions));
    table.add_row({Table::integer(ads),
                   Table::integer(clustering.count()),
                   footprint_cell,
                   exp_cell,
                   stretch_n ? Table::num(stretch_sum /
                                              static_cast<double>(stretch_n),
                                          4)
                             : "n/a",
                   Table::integer(static_cast<long long>(fallbacks)),
                   Table::integer(static_cast<long long>(found))});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf(
      "Reading: the benefit is the advertised database -- an order of\n"
      "magnitude fewer nodes/links/terms to flood, store and keep fresh\n"
      "(the §2.2 scale problem). The cost is measured too: stretch stays\n"
      "within ~1%% of optimal, no routes are lost (corridor failures fall\n"
      "back to flat search; after one-hop corridor fattening that is\n"
      "rare), and the two-level search does modestly more expansion work\n"
      "than guided flat search on these sparse hierarchies. §4.1's \"some\n"
      "optimality may be lost [but] benefits far outweigh costs\",\n"
      "quantified one level up from ADs.\n");
}

void BM_HierarchicalVsFlat(benchmark::State& state) {
  ScenarioParams params;
  params.seed = 13;
  params.target_ads = 128;
  params.flow_count = 16;
  Scenario scenario = make_scenario(params);
  const Clustering clustering = cluster_by_hierarchy(scenario.topo);
  const ClusterGraph graph =
      aggregate(scenario.topo, scenario.policies, clustering);
  const bool hierarchical = state.range(0) != 0;
  const GroundTruthView flat_view(scenario.topo, scenario.policies);
  std::size_t i = 0;
  for (auto _ : state) {
    const FlowSpec& flow = scenario.flows[i++ % scenario.flows.size()];
    if (hierarchical) {
      benchmark::DoNotOptimize(
          synthesize_hierarchical(scenario.topo, scenario.policies,
                                  clustering, graph, flow)
              .result.cost);
    } else {
      benchmark::DoNotOptimize(synthesize_route(flat_view, flow).cost);
    }
  }
}
BENCHMARK(BM_HierarchicalVsFlat)->Arg(1)->Arg(0);

}  // namespace

int main(int argc, char** argv) {
  report();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
