// Network-byte-order wire codec.
//
// Every protocol PDU in this repository is encoded to bytes and decoded on
// receipt, so the message/byte counters reported by the benchmarks reflect
// real serialized sizes rather than in-memory struct sizes, and so codecs
// can be round-trip and fuzz tested like a real implementation's.
//
// Writer appends big-endian fields to a growable buffer. Reader consumes
// them with sticky failure: after the first out-of-bounds read every later
// read returns zero values and ok() stays false, so decoders can be written
// straight-line and check ok() once at the end.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace idr::wire {

class Writer {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  // Length-prefixed (u16) byte string.
  void str(std::string_view v);
  // Length-prefixed (u16) list of u32 values.
  void u32_list(std::span<const std::uint32_t> values);
  void raw(std::span<const std::uint8_t> bytes);

  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const noexcept {
    return buf_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() noexcept {
    return std::move(buf_);
  }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

  // Reuse the buffer across encodes (hot paths keep one Writer and clear
  // it per PDU instead of reallocating).
  void clear() noexcept { buf_.clear(); }
  void reserve(std::size_t n) { buf_.reserve(n); }

 private:
  std::vector<std::uint8_t> buf_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> bytes) noexcept
      : data_(bytes) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  std::string str();
  std::vector<std::uint32_t> u32_list();

  // Allocation-free variants for hot decode paths.
  // View into the underlying buffer (valid while the buffer lives).
  std::string_view str_view();
  // Decode a u32 list into `out` (cleared first); false on short read.
  bool u32_list_into(std::vector<std::uint32_t>& out);

  // True iff no read has run past the end of the buffer so far.
  [[nodiscard]] bool ok() const noexcept { return ok_; }
  // True iff ok() and the whole buffer was consumed (strict decoders).
  [[nodiscard]] bool done() const noexcept {
    return ok_ && pos_ == data_.size();
  }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return ok_ ? data_.size() - pos_ : 0;
  }

 private:
  [[nodiscard]] bool take(std::size_t n) noexcept {
    if (!ok_ || data_.size() - pos_ < n) {
      ok_ = false;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace idr::wire
