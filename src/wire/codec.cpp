#include "wire/codec.hpp"

#include "util/check.hpp"

namespace idr::wire {

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::u32(std::uint32_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v >> 24));
  buf_.push_back(static_cast<std::uint8_t>(v >> 16));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
  buf_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::u64(std::uint64_t v) {
  u32(static_cast<std::uint32_t>(v >> 32));
  u32(static_cast<std::uint32_t>(v));
}

void Writer::str(std::string_view v) {
  IDR_CHECK_MSG(v.size() <= 0xffff, "string too long for u16 length prefix");
  u16(static_cast<std::uint16_t>(v.size()));
  buf_.insert(buf_.end(), v.begin(), v.end());
}

void Writer::u32_list(std::span<const std::uint32_t> values) {
  IDR_CHECK_MSG(values.size() <= 0xffff, "list too long for u16 length prefix");
  u16(static_cast<std::uint16_t>(values.size()));
  for (std::uint32_t v : values) u32(v);
}

void Writer::raw(std::span<const std::uint8_t> bytes) {
  buf_.insert(buf_.end(), bytes.begin(), bytes.end());
}

std::uint8_t Reader::u8() {
  if (!take(1)) return 0;
  return data_[pos_++];
}

std::uint16_t Reader::u16() {
  if (!take(2)) return 0;
  const std::uint16_t v = static_cast<std::uint16_t>(
      (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  if (!take(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + static_cast<std::size_t>(i)];
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  const std::uint64_t hi = u32();
  const std::uint64_t lo = u32();
  return (hi << 32) | lo;
}

std::string Reader::str() {
  const std::uint16_t len = u16();
  if (!take(len)) return {};
  std::string out(reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return out;
}

std::vector<std::uint32_t> Reader::u32_list() {
  const std::uint16_t len = u16();
  if (!take(static_cast<std::size_t>(len) * 4)) return {};
  std::vector<std::uint32_t> out;
  out.reserve(len);
  for (std::uint16_t i = 0; i < len; ++i) out.push_back(u32());
  return out;
}

std::string_view Reader::str_view() {
  const std::uint16_t len = u16();
  if (!take(len)) return {};
  const std::string_view out(
      reinterpret_cast<const char*>(data_.data() + pos_), len);
  pos_ += len;
  return out;
}

bool Reader::u32_list_into(std::vector<std::uint32_t>& out) {
  out.clear();
  const std::uint16_t len = u16();
  if (!take(static_cast<std::size_t>(len) * 4)) return false;
  out.reserve(len);
  for (std::uint16_t i = 0; i < len; ++i) out.push_back(u32());
  return true;
}

}  // namespace idr::wire
