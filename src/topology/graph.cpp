#include "topology/graph.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace idr {

const char* to_string(AdClass c) noexcept {
  switch (c) {
    case AdClass::kBackbone: return "backbone";
    case AdClass::kRegional: return "regional";
    case AdClass::kMetro: return "metro";
    case AdClass::kCampus: return "campus";
  }
  return "?";
}

const char* to_string(AdRole r) noexcept {
  switch (r) {
    case AdRole::kStub: return "stub";
    case AdRole::kMultiHomed: return "multihomed";
    case AdRole::kTransit: return "transit";
    case AdRole::kHybrid: return "hybrid";
  }
  return "?";
}

const char* to_string(LinkClass c) noexcept {
  switch (c) {
    case LinkClass::kHierarchical: return "hierarchical";
    case LinkClass::kLateral: return "lateral";
    case LinkClass::kBypass: return "bypass";
  }
  return "?";
}

AdId Topology::add_ad(AdClass cls, AdRole role, std::string name) {
  const AdId id{static_cast<std::uint32_t>(ads_.size())};
  if (name.empty()) {
    name = std::string(to_string(cls)) + "-" + std::to_string(id.v);
  }
  ads_.push_back(Ad{id, cls, role, std::move(name)});
  adj_.emplace_back();
  return id;
}

namespace {
std::uint64_t pair_key(AdId x, AdId y) noexcept {
  if (y < x) std::swap(x, y);
  return (static_cast<std::uint64_t>(x.v) << 32) | y.v;
}
}  // namespace

LinkId Topology::add_link(AdId x, AdId y, LinkClass cls, double delay_ms,
                          std::uint32_t metric) {
  IDR_CHECK(x.v < ads_.size() && y.v < ads_.size());
  IDR_CHECK_MSG(x != y, "self links are not allowed");
  IDR_CHECK_MSG(!find_link(x, y).has_value(), "duplicate inter-AD link");
  if (y < x) std::swap(x, y);
  const LinkId id{static_cast<std::uint32_t>(links_.size())};
  const auto slot_a = static_cast<std::uint32_t>(adj_[x.v].size());
  const auto slot_b = static_cast<std::uint32_t>(adj_[y.v].size());
  links_.push_back(
      Link{id, x, y, cls, delay_ms, metric, /*up=*/true, slot_a, slot_b});
  adj_[x.v].push_back(Adjacency{y, id});
  adj_[y.v].push_back(Adjacency{x, id});
  link_index_.try_emplace(pair_key(x, y), id);
  return id;
}

const Ad& Topology::ad(AdId id) const {
  IDR_CHECK(id.v < ads_.size());
  return ads_[id.v];
}

Ad& Topology::ad(AdId id) {
  IDR_CHECK(id.v < ads_.size());
  return ads_[id.v];
}

const Link& Topology::link(LinkId id) const {
  IDR_CHECK(id.v < links_.size());
  return links_[id.v];
}

std::span<const Adjacency> Topology::neighbors(AdId id) const {
  IDR_CHECK(id.v < adj_.size());
  return adj_[id.v];
}

std::vector<Adjacency> Topology::live_neighbors(AdId id) const {
  std::vector<Adjacency> out;
  for (const Adjacency& adj : neighbors(id)) {
    if (link(adj.link).up) out.push_back(adj);
  }
  return out;
}

std::optional<LinkId> Topology::find_link(AdId x, AdId y) const {
  if (x.v >= adj_.size() || y.v >= adj_.size() || x == y) return std::nullopt;
  if (const LinkId* id = link_index_.find(pair_key(x, y))) return *id;
  return std::nullopt;
}

std::uint32_t Topology::adjacency_slot(LinkId link_id, AdId from) const {
  const Link& l = link(link_id);
  IDR_CHECK(l.a == from || l.b == from);
  return l.a == from ? l.slot_a : l.slot_b;
}

void Topology::set_link_up(LinkId id, bool up) {
  IDR_CHECK(id.v < links_.size());
  links_[id.v].up = up;
}

AdId Topology::peer(LinkId link_id, AdId from) const {
  const Link& l = link(link_id);
  IDR_CHECK(l.a == from || l.b == from);
  return l.a == from ? l.b : l.a;
}

std::size_t Topology::count_ads(AdClass cls) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(ads_.begin(), ads_.end(),
                    [cls](const Ad& a) { return a.cls == cls; }));
}

std::size_t Topology::count_ads(AdRole role) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(ads_.begin(), ads_.end(),
                    [role](const Ad& a) { return a.role == role; }));
}

std::size_t Topology::count_links(LinkClass cls) const noexcept {
  return static_cast<std::size_t>(
      std::count_if(links_.begin(), links_.end(),
                    [cls](const Link& l) { return l.cls == cls; }));
}

}  // namespace idr
