#include "topology/algos.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>
#include <unordered_set>

#include "util/check.hpp"

namespace idr {
namespace {

constexpr std::uint32_t kUnreached = std::numeric_limits<std::uint32_t>::max();

}  // namespace

Components connected_components(const Topology& topo) {
  Components result;
  result.component_of.assign(topo.ad_count(), kUnreached);
  for (std::uint32_t start = 0; start < topo.ad_count(); ++start) {
    if (result.component_of[start] != kUnreached) continue;
    const std::uint32_t comp = result.count++;
    std::deque<AdId> frontier{AdId{start}};
    result.component_of[start] = comp;
    while (!frontier.empty()) {
      const AdId cur = frontier.front();
      frontier.pop_front();
      for (const Adjacency& adj : topo.neighbors(cur)) {
        if (!topo.link(adj.link).up) continue;
        if (result.component_of[adj.neighbor.v] != kUnreached) continue;
        result.component_of[adj.neighbor.v] = comp;
        frontier.push_back(adj.neighbor);
      }
    }
  }
  return result;
}

bool is_connected(const Topology& topo) {
  if (topo.ad_count() == 0) return true;
  return connected_components(topo).count == 1;
}

bool has_cycle(const Topology& topo) {
  // Undirected cycle detection via BFS forest with parent links.
  std::vector<std::uint32_t> parent(topo.ad_count(), kUnreached);
  std::vector<bool> seen(topo.ad_count(), false);
  for (std::uint32_t start = 0; start < topo.ad_count(); ++start) {
    if (seen[start]) continue;
    seen[start] = true;
    std::deque<AdId> frontier{AdId{start}};
    while (!frontier.empty()) {
      const AdId cur = frontier.front();
      frontier.pop_front();
      for (const Adjacency& adj : topo.neighbors(cur)) {
        if (!topo.link(adj.link).up) continue;
        if (!seen[adj.neighbor.v]) {
          seen[adj.neighbor.v] = true;
          parent[adj.neighbor.v] = cur.v;
          frontier.push_back(adj.neighbor);
        } else if (parent[cur.v] != adj.neighbor.v) {
          return true;  // reached an already-seen AD that is not our parent
        }
      }
    }
  }
  return false;
}

std::optional<std::vector<AdId>> shortest_path_hops(const Topology& topo,
                                                    AdId src, AdId dst) {
  IDR_CHECK(src.v < topo.ad_count() && dst.v < topo.ad_count());
  std::vector<std::uint32_t> parent(topo.ad_count(), kUnreached);
  std::vector<bool> seen(topo.ad_count(), false);
  std::deque<AdId> frontier{src};
  seen[src.v] = true;
  while (!frontier.empty()) {
    const AdId cur = frontier.front();
    frontier.pop_front();
    if (cur == dst) break;
    for (const Adjacency& adj : topo.neighbors(cur)) {
      if (!topo.link(adj.link).up || seen[adj.neighbor.v]) continue;
      seen[adj.neighbor.v] = true;
      parent[adj.neighbor.v] = cur.v;
      frontier.push_back(adj.neighbor);
    }
  }
  if (!seen[dst.v]) return std::nullopt;
  std::vector<AdId> path;
  for (std::uint32_t at = dst.v; at != kUnreached; at = parent[at]) {
    path.push_back(AdId{at});
    if (at == src.v) break;
  }
  std::reverse(path.begin(), path.end());
  return path;
}

std::vector<std::uint32_t> hop_distances(const Topology& topo, AdId src) {
  std::vector<std::uint32_t> dist(topo.ad_count(), kUnreached);
  dist[src.v] = 0;
  std::deque<AdId> frontier{src};
  while (!frontier.empty()) {
    const AdId cur = frontier.front();
    frontier.pop_front();
    for (const Adjacency& adj : topo.neighbors(cur)) {
      if (!topo.link(adj.link).up) continue;
      if (dist[adj.neighbor.v] != kUnreached) continue;
      dist[adj.neighbor.v] = dist[cur.v] + 1;
      frontier.push_back(adj.neighbor);
    }
  }
  return dist;
}

std::optional<MetricPath> shortest_path_metric(const Topology& topo, AdId src,
                                               AdId dst) {
  constexpr std::uint64_t kInf = std::numeric_limits<std::uint64_t>::max();
  std::vector<std::uint64_t> dist(topo.ad_count(), kInf);
  std::vector<std::uint32_t> parent(topo.ad_count(), kUnreached);
  using Entry = std::pair<std::uint64_t, std::uint32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[src.v] = 0;
  heap.emplace(0, src.v);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d != dist[u]) continue;
    if (u == dst.v) break;
    for (const Adjacency& adj : topo.neighbors(AdId{u})) {
      const Link& l = topo.link(adj.link);
      if (!l.up) continue;
      const std::uint64_t nd = d + l.metric;
      if (nd < dist[adj.neighbor.v]) {
        dist[adj.neighbor.v] = nd;
        parent[adj.neighbor.v] = u;
        heap.emplace(nd, adj.neighbor.v);
      }
    }
  }
  if (dist[dst.v] == kInf) return std::nullopt;
  MetricPath result;
  result.cost = dist[dst.v];
  for (std::uint32_t at = dst.v; at != kUnreached; at = parent[at]) {
    result.path.push_back(AdId{at});
    if (at == src.v) break;
  }
  std::reverse(result.path.begin(), result.path.end());
  return result;
}

std::uint32_t edge_disjoint_paths(const Topology& topo, AdId src, AdId dst) {
  if (src == dst) return 0;
  // Unit-capacity max flow by repeated BFS augmentation over an adjacency
  // structure with removable edges.
  std::unordered_set<std::uint32_t> removed;  // link ids consumed by paths
  std::uint32_t count = 0;
  for (;;) {
    std::vector<std::uint32_t> parent_ad(topo.ad_count(), kUnreached);
    std::vector<std::uint32_t> parent_link(topo.ad_count(), kUnreached);
    std::vector<bool> seen(topo.ad_count(), false);
    std::deque<AdId> frontier{src};
    seen[src.v] = true;
    while (!frontier.empty() && !seen[dst.v]) {
      const AdId cur = frontier.front();
      frontier.pop_front();
      for (const Adjacency& adj : topo.neighbors(cur)) {
        if (!topo.link(adj.link).up || removed.contains(adj.link.v)) continue;
        if (seen[adj.neighbor.v]) continue;
        seen[adj.neighbor.v] = true;
        parent_ad[adj.neighbor.v] = cur.v;
        parent_link[adj.neighbor.v] = adj.link.v;
        frontier.push_back(adj.neighbor);
      }
    }
    if (!seen[dst.v]) break;
    for (std::uint32_t at = dst.v; at != src.v; at = parent_ad[at]) {
      removed.insert(parent_link[at]);
    }
    ++count;
  }
  return count;
}

DegreeStats degree_stats(const Topology& topo) {
  DegreeStats stats;
  if (topo.ad_count() == 0) return stats;
  stats.min = std::numeric_limits<std::uint32_t>::max();
  double total = 0.0;
  for (const Ad& a : topo.ads()) {
    const auto deg = static_cast<std::uint32_t>(topo.neighbors(a.id).size());
    total += deg;
    stats.min = std::min(stats.min, deg);
    stats.max = std::max(stats.max, deg);
  }
  stats.mean = total / static_cast<double>(topo.ad_count());
  return stats;
}

bool is_loop_free(const std::vector<AdId>& path) {
  std::unordered_set<std::uint32_t> seen;
  for (const AdId& ad : path) {
    if (!seen.insert(ad.v).second) return false;
  }
  return true;
}

bool path_is_connected(const Topology& topo, const std::vector<AdId>& path) {
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto link = topo.find_link(path[i], path[i + 1]);
    if (!link || !topo.link(*link).up) return false;
  }
  return true;
}

}  // namespace idr
