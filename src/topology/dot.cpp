#include "topology/dot.hpp"

#include <algorithm>

namespace idr {
namespace {

const char* fill_for(AdClass cls) {
  switch (cls) {
    case AdClass::kBackbone: return "#c6dbef";
    case AdClass::kRegional: return "#e5f5e0";
    case AdClass::kMetro: return "#fee6ce";
    case AdClass::kCampus: return "#f2f0f7";
  }
  return "#ffffff";
}

const char* shape_for(AdRole role) {
  switch (role) {
    case AdRole::kTransit: return "box";
    case AdRole::kHybrid: return "hexagon";
    case AdRole::kStub: return "ellipse";
    case AdRole::kMultiHomed: return "doublecircle";
  }
  return "ellipse";
}

bool on_path(std::span<const AdId> path, AdId ad) {
  return std::find(path.begin(), path.end(), ad) != path.end();
}

bool edge_on_path(std::span<const AdId> path, AdId a, AdId b) {
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    if ((path[i] == a && path[i + 1] == b) ||
        (path[i] == b && path[i + 1] == a)) {
      return true;
    }
  }
  return false;
}

}  // namespace

std::string to_dot(const Topology& topo, const DotOptions& options) {
  std::string out = "graph interad {\n";
  out += "  layout=dot;\n  rankdir=TB;\n  node [style=filled];\n";
  for (const Ad& ad : topo.ads()) {
    out += "  n" + std::to_string(ad.id.v) + " [label=\"" + ad.name +
           "\" shape=" + shape_for(ad.role) + " fillcolor=\"" +
           fill_for(ad.cls) + "\"";
    if (on_path(options.highlight_path, ad.id)) {
      out += " penwidth=3 color=\"#d62728\"";
    }
    out += "];\n";
  }
  for (const Link& l : topo.links()) {
    if (!l.up && !options.show_down_links) continue;
    out += "  n" + std::to_string(l.a.v) + " -- n" + std::to_string(l.b.v) +
           " [";
    if (!l.up) {
      out += "style=dashed color=gray";
    } else if (edge_on_path(options.highlight_path, l.a, l.b)) {
      out += "penwidth=3 color=\"#d62728\"";
    } else {
      switch (l.cls) {
        case LinkClass::kHierarchical: out += "color=black"; break;
        case LinkClass::kLateral: out += "style=dotted color=blue"; break;
        case LinkClass::kBypass: out += "style=bold color=darkgreen"; break;
      }
    }
    out += "];\n";
  }
  out += "}\n";
  return out;
}

}  // namespace idr
