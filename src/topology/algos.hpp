// Graph algorithms over the inter-AD topology: connectivity, cycles,
// shortest paths (policy-free), and structural statistics. These are the
// policy-free primitives; policy-constrained search lives in core/oracle
// and proto/orwg/route_server.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "topology/graph.hpp"

namespace idr {

// Connected components over live links. Returns component index per AD
// (size == ad_count()) and the number of components.
struct Components {
  std::vector<std::uint32_t> component_of;
  std::uint32_t count = 0;
};
Components connected_components(const Topology& topo);

bool is_connected(const Topology& topo);

// True iff the live inter-AD graph contains a cycle. EGP (paper §3)
// requires an acyclic inter-AD graph; this is its admission check.
bool has_cycle(const Topology& topo);

// Hop-count shortest path over live links ignoring policy; empty if
// unreachable. Returned path includes both endpoints.
std::optional<std::vector<AdId>> shortest_path_hops(const Topology& topo,
                                                    AdId src, AdId dst);

// Hop distance matrix row: distance from src to every AD (UINT32_MAX if
// unreachable), over live links.
std::vector<std::uint32_t> hop_distances(const Topology& topo, AdId src);

// Dijkstra over link metrics; returns total metric cost and path.
struct MetricPath {
  std::uint64_t cost = 0;
  std::vector<AdId> path;
};
std::optional<MetricPath> shortest_path_metric(const Topology& topo, AdId src,
                                               AdId dst);

// Number of pairwise edge-disjoint paths between two ADs (via repeated
// BFS path removal on a copy; exact max-flow with unit capacities).
std::uint32_t edge_disjoint_paths(const Topology& topo, AdId src, AdId dst);

// Structural statistics used by the Figure-1 bench.
struct DegreeStats {
  double mean = 0.0;
  std::uint32_t min = 0;
  std::uint32_t max = 0;
};
DegreeStats degree_stats(const Topology& topo);

// A path is AD-loop-free iff no AD appears twice.
bool is_loop_free(const std::vector<AdId>& path);

// True iff consecutive path elements are joined by live links.
bool path_is_connected(const Topology& topo, const std::vector<AdId>& path);

}  // namespace idr
