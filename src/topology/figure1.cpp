#include "topology/figure1.hpp"

#include "topology/algos.hpp"
#include "util/check.hpp"

namespace idr {

Figure1 build_figure1() {
  Figure1 fig;
  Topology& t = fig.topo;

  fig.backbone_west = t.add_ad(AdClass::kBackbone, AdRole::kTransit, "BB-West");
  fig.backbone_east = t.add_ad(AdClass::kBackbone, AdRole::kTransit, "BB-East");
  t.add_link(fig.backbone_west, fig.backbone_east, LinkClass::kHierarchical,
             25.0);

  const char* regional_names[4] = {"Reg-0", "Reg-1", "Reg-2", "Reg-3"};
  for (int r = 0; r < 4; ++r) {
    fig.regional[r] =
        t.add_ad(AdClass::kRegional, AdRole::kTransit, regional_names[r]);
    const AdId parent = r < 2 ? fig.backbone_west : fig.backbone_east;
    t.add_link(parent, fig.regional[r], LinkClass::kHierarchical, 10.0);
  }

  for (int c = 0; c < 8; ++c) {
    fig.campus[c] = t.add_ad(AdClass::kCampus, AdRole::kStub,
                             "Campus-" + std::to_string(c));
    t.add_link(fig.regional[c / 2], fig.campus[c], LinkClass::kHierarchical,
               3.0);
  }

  // Lateral link between two mid-hierarchy regionals (spans the backbones).
  fig.lateral_regional = t.add_link(fig.regional[1], fig.regional[2],
                                    LinkClass::kLateral, 12.0);

  // Lateral link between two campuses in different regionals.
  fig.lateral_campus =
      t.add_link(fig.campus[1], fig.campus[2], LinkClass::kLateral, 4.0);
  // A campus with a private inter-AD link is still a stub unless it agrees
  // to carry transit; campus[1]/campus[2] become multi-homed stubs.
  t.ad(fig.campus[1]).role = AdRole::kMultiHomed;
  t.ad(fig.campus[2]).role = AdRole::kMultiHomed;

  // Multi-homed campus: homed to Reg-1 and Reg-2.
  fig.multihomed =
      t.add_ad(AdClass::kCampus, AdRole::kMultiHomed, "Campus-MH");
  t.add_link(fig.regional[1], fig.multihomed, LinkClass::kHierarchical, 3.0);
  t.add_link(fig.regional[2], fig.multihomed, LinkClass::kHierarchical, 3.0);

  // Bypass: a campus under Reg-3 buys a direct link to the east backbone.
  fig.bypass_campus =
      t.add_ad(AdClass::kCampus, AdRole::kHybrid, "Campus-Bypass");
  t.add_link(fig.regional[3], fig.bypass_campus, LinkClass::kHierarchical,
             3.0);
  fig.bypass = t.add_link(fig.bypass_campus, fig.backbone_east,
                          LinkClass::kBypass, 8.0);

  IDR_CHECK(is_connected(t));
  IDR_CHECK(has_cycle(t));  // Figure 1 is deliberately non-tree (paper §2.1)
  return fig;
}

}  // namespace idr
