// Textual topology format, the configuration-side twin of the policy
// language (policy/dsl.hpp). One statement per line, '#' comments:
//
//   ad BB-West backbone transit
//   ad Campus-0 campus stub
//   link BB-West Reg-0 hierarchical delay=10 metric=1
//
// AD classes: backbone | regional | metro | campus.
// Roles:      transit | stub | multihomed | hybrid.
// Link kinds: hierarchical | lateral | bypass.
// parse_topology() returns the Topology or a diagnostic; format_topology()
// renders one back (round-trip tested).
#pragma once

#include <string>
#include <string_view>
#include <variant>

#include "topology/graph.hpp"

namespace idr {

struct TopoParseError {
  std::size_t line = 0;  // 1-based
  std::string message;

  [[nodiscard]] std::string describe() const {
    return "line " + std::to_string(line) + ": " + message;
  }
};

using TopoParseResult = std::variant<Topology, TopoParseError>;

TopoParseResult parse_topology(std::string_view text);
std::string format_topology(const Topology& topo);

}  // namespace idr
