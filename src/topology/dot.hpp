// Graphviz (DOT) export of an inter-AD topology, optionally with a
// highlighted route -- used by the examples to visualize the paper's
// Figure-1 world and the policy routes computed over it.
#pragma once

#include <span>
#include <string>

#include "topology/graph.hpp"

namespace idr {

struct DotOptions {
  // ADs on this path get a bold outline; its links are colored.
  std::span<const AdId> highlight_path;
  bool show_down_links = true;  // render down links dashed gray
};

std::string to_dot(const Topology& topo, const DotOptions& options = {});

}  // namespace idr
