// Inter-AD topology model (paper §2.1).
//
// Nodes are Administrative Domains (ADs); we deliberately do not model
// intra-AD structure (paper §4.1: inter-AD routes are sequences of ADs).
// ADs are classed by hierarchy level (backbone / regional / metropolitan /
// campus) and by transit role (stub / multi-homed stub / transit / hybrid).
// Links are classed as hierarchical (parent-child in the hierarchy),
// lateral (same-level shortcut), or bypass (level-skipping shortcut), the
// three link kinds of the paper's Figure 1.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "util/dense_map.hpp"

namespace idr {

// Strong identifier for an Administrative Domain.
struct AdId {
  std::uint32_t v = kInvalid;

  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  [[nodiscard]] constexpr bool valid() const noexcept { return v != kInvalid; }
  constexpr auto operator<=>(const AdId&) const noexcept = default;
};

// Sentinel used where "no previous/next AD" is meant (path endpoints).
inline constexpr AdId kNoAd{AdId::kInvalid};

struct LinkId {
  std::uint32_t v = 0xffffffffu;
  [[nodiscard]] constexpr bool valid() const noexcept {
    return v != 0xffffffffu;
  }
  constexpr auto operator<=>(const LinkId&) const noexcept = default;
};

enum class AdClass : std::uint8_t {
  kBackbone = 0,   // long-haul backbone network
  kRegional = 1,   // regional network
  kMetro = 2,      // metropolitan network
  kCampus = 3,     // campus network
};

// Transit role (paper §2.1 definitions).
enum class AdRole : std::uint8_t {
  kStub = 0,        // no transit for anyone outside the AD
  kMultiHomed = 1,  // stub with >1 inter-AD connection, disallows transit
  kTransit = 2,     // primary function is transit service
  kHybrid = 3,      // limited transit (access + some transit)
};

enum class LinkClass : std::uint8_t {
  kHierarchical = 0,
  kLateral = 1,
  kBypass = 2,
};

const char* to_string(AdClass c) noexcept;
const char* to_string(AdRole r) noexcept;
const char* to_string(LinkClass c) noexcept;

struct Ad {
  AdId id;
  AdClass cls = AdClass::kCampus;
  AdRole role = AdRole::kStub;
  std::string name;
};

struct Link {
  LinkId id;
  AdId a;  // endpoints; undirected, a.v < b.v by construction
  AdId b;
  LinkClass cls = LinkClass::kHierarchical;
  double delay_ms = 1.0;   // propagation + processing delay for the DES
  std::uint32_t metric = 1;  // administrative metric (cost proxy)
  bool up = true;
  // Position of this link in each endpoint's adjacency list, so per-link
  // receiver state (e.g. neighbor liveness) can live in a dense array
  // indexed by adjacency slot instead of a hash map keyed by AdId.
  std::uint32_t slot_a = 0;
  std::uint32_t slot_b = 0;
};

// An entry in an AD's adjacency list.
struct Adjacency {
  AdId neighbor;
  LinkId link;
};

// The inter-AD graph. Undirected multigraph is not needed: at most one
// link per AD pair (the paper's "virtual gateway" abstraction aggregates
// parallel physical gateways into one inter-AD connection).
class Topology {
 public:
  AdId add_ad(AdClass cls, AdRole role, std::string name = {});

  // Adds an undirected link; at most one link per pair (checked).
  LinkId add_link(AdId x, AdId y, LinkClass cls, double delay_ms = 1.0,
                  std::uint32_t metric = 1);

  [[nodiscard]] std::size_t ad_count() const noexcept { return ads_.size(); }
  [[nodiscard]] std::size_t link_count() const noexcept {
    return links_.size();
  }

  [[nodiscard]] const Ad& ad(AdId id) const;
  [[nodiscard]] Ad& ad(AdId id);
  [[nodiscard]] const Link& link(LinkId id) const;
  [[nodiscard]] const std::vector<Ad>& ads() const noexcept { return ads_; }
  [[nodiscard]] const std::vector<Link>& links() const noexcept {
    return links_;
  }

  // Neighbors of an AD (including those across down links; callers that
  // care about liveness must check link(adj.link).up).
  [[nodiscard]] std::span<const Adjacency> neighbors(AdId id) const;

  // Live neighbors only (links that are up).
  [[nodiscard]] std::vector<Adjacency> live_neighbors(AdId id) const;

  // O(1) via a hash index over packed endpoint pairs.
  [[nodiscard]] std::optional<LinkId> find_link(AdId x, AdId y) const;

  // Adjacency-list position of the link from->peer in `from`'s list.
  [[nodiscard]] std::uint32_t adjacency_slot(LinkId link, AdId from) const;

  void set_link_up(LinkId id, bool up);

  // Other endpoint of `link` as seen from `from`.
  [[nodiscard]] AdId peer(LinkId link, AdId from) const;

  // True if the AD may carry transit traffic at all (role is transit or
  // hybrid). Stub and multi-homed ADs never carry transit (paper §2.1).
  [[nodiscard]] bool can_transit(AdId id) const {
    const AdRole r = ad(id).role;
    return r == AdRole::kTransit || r == AdRole::kHybrid;
  }

  // Census helpers used by the Figure-1 bench and tests.
  [[nodiscard]] std::size_t count_ads(AdClass cls) const noexcept;
  [[nodiscard]] std::size_t count_ads(AdRole role) const noexcept;
  [[nodiscard]] std::size_t count_links(LinkClass cls) const noexcept;

 private:
  std::vector<Ad> ads_;
  std::vector<Link> links_;
  std::vector<std::vector<Adjacency>> adj_;
  // Packed (a.v << 32 | b.v) with a.v < b.v -> LinkId, for O(1) find_link.
  DenseMap<std::uint64_t, LinkId> link_index_;
};

}  // namespace idr

template <>
struct std::hash<idr::AdId> {
  std::size_t operator()(const idr::AdId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.v);
  }
};

template <>
struct std::hash<idr::LinkId> {
  std::size_t operator()(const idr::LinkId& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.v);
  }
};
