// Concrete construction of the paper's Figure 1 ("Example Internet
// Topology"): backbone, regional and campus networks connected by
// hierarchical links, plus one regional-regional lateral link, one
// campus-campus lateral link, and a campus-to-backbone bypass link, with a
// multi-homed campus. The figure in the paper is schematic; this builder
// realizes it as a specific named instance used by tests, examples and the
// Figure-1 bench.
#pragma once

#include "topology/graph.hpp"

namespace idr {

struct Figure1 {
  Topology topo;
  // Named handles into the topology for tests/examples.
  AdId backbone_west;   // "NSF-West"-style long haul backbone
  AdId backbone_east;   // second long haul backbone
  AdId regional[4];     // R0,R1 under west; R2,R3 under east
  AdId campus[8];       // two per regional
  AdId multihomed;      // campus homed to two regionals (R1 and R2)
  AdId bypass_campus;   // campus with a direct backbone link
  LinkId lateral_regional;  // R1 -- R2
  LinkId lateral_campus;    // campus[1] -- campus[2]
  LinkId bypass;            // bypass_campus -- backbone_east
};

Figure1 build_figure1();

}  // namespace idr
