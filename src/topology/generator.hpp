// Synthetic inter-AD topology generator matching the paper's model (§2.1):
// a backbone / regional / metro / campus hierarchy augmented with lateral
// links (same level) and bypass links (level skipping). The paper argues
// such non-hierarchical links persist for technical, economic and political
// reasons, and that routing must accommodate them; the generator therefore
// parameterizes their density so benchmarks can sweep it.
#pragma once

#include <cstdint>

#include "topology/graph.hpp"
#include "util/prng.hpp"

namespace idr {

struct GeneratorParams {
  // Hierarchy shape.
  std::uint32_t backbones = 2;
  std::uint32_t regionals_per_backbone = 4;
  std::uint32_t metros_per_regional = 0;   // 0: campuses attach to regionals
  std::uint32_t campuses_per_parent = 4;   // per regional (or per metro)

  // Backbone core connectivity: every backbone pair linked with this
  // probability (plus a ring to guarantee core connectivity).
  double backbone_mesh_prob = 1.0;

  // Non-hierarchical augmentation (paper Figure 1).
  double lateral_regional_prob = 0.15;  // regional-to-regional shortcut
  double lateral_campus_prob = 0.02;    // campus-to-campus shortcut
  double bypass_prob = 0.03;            // campus directly to a backbone

  // Fraction of campuses that are multi-homed (second hierarchical parent)
  // and fraction of campuses that are hybrid (carry limited transit).
  double multihome_prob = 0.1;
  double hybrid_prob = 0.05;

  // Link delays (ms) by level, randomized +/- 50%.
  double backbone_delay_ms = 20.0;
  double regional_delay_ms = 8.0;
  double campus_delay_ms = 2.0;

  [[nodiscard]] std::uint32_t total_ads() const noexcept {
    const std::uint32_t metros =
        backbones * regionals_per_backbone * metros_per_regional;
    const std::uint32_t campus_parents =
        metros_per_regional == 0 ? backbones * regionals_per_backbone : metros;
    return backbones + backbones * regionals_per_backbone + metros +
           campus_parents * campuses_per_parent;
  }
};

// Generates a connected topology; deterministic for a given params+prng
// state. Roles: backbones/regionals/metros are kTransit; campuses are
// kStub, kMultiHomed (if multi-homed) or kHybrid per the probabilities.
Topology generate_topology(const GeneratorParams& params, Prng& prng);

// Convenience: approximately `target_ads` ADs with default shape ratios.
Topology generate_topology_of_size(std::uint32_t target_ads, Prng& prng);

}  // namespace idr
