#include "topology/generator.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "topology/algos.hpp"
#include "util/check.hpp"

namespace idr {
namespace {

double jitter(double base, Prng& prng) {
  return base * prng.uniform_real(0.5, 1.5);
}

}  // namespace

Topology generate_topology(const GeneratorParams& params, Prng& prng) {
  IDR_CHECK(params.backbones >= 1);
  IDR_CHECK(params.regionals_per_backbone >= 1);
  Topology topo;

  // --- Backbone core ---
  std::vector<AdId> backbones;
  backbones.reserve(params.backbones);
  for (std::uint32_t i = 0; i < params.backbones; ++i) {
    backbones.push_back(topo.add_ad(AdClass::kBackbone, AdRole::kTransit));
  }
  // Ring guarantees a connected core even with mesh_prob = 0.
  for (std::uint32_t i = 1; i < params.backbones; ++i) {
    topo.add_link(backbones[i - 1], backbones[i], LinkClass::kHierarchical,
                  jitter(params.backbone_delay_ms, prng));
  }
  if (params.backbones > 2) {
    topo.add_link(backbones.back(), backbones.front(),
                  LinkClass::kHierarchical,
                  jitter(params.backbone_delay_ms, prng));
  }
  for (std::uint32_t i = 0; i < params.backbones; ++i) {
    for (std::uint32_t j = i + 1; j < params.backbones; ++j) {
      if (topo.find_link(backbones[i], backbones[j])) continue;
      if (prng.bernoulli(params.backbone_mesh_prob)) {
        topo.add_link(backbones[i], backbones[j], LinkClass::kHierarchical,
                      jitter(params.backbone_delay_ms, prng));
      }
    }
  }

  // --- Regionals ---
  std::vector<AdId> regionals;
  for (AdId bb : backbones) {
    for (std::uint32_t r = 0; r < params.regionals_per_backbone; ++r) {
      const AdId reg = topo.add_ad(AdClass::kRegional, AdRole::kTransit);
      topo.add_link(bb, reg, LinkClass::kHierarchical,
                    jitter(params.regional_delay_ms, prng));
      regionals.push_back(reg);
    }
  }

  // --- Metros (optional level) ---
  std::vector<AdId> campus_parents;
  if (params.metros_per_regional > 0) {
    for (AdId reg : regionals) {
      for (std::uint32_t m = 0; m < params.metros_per_regional; ++m) {
        const AdId metro = topo.add_ad(AdClass::kMetro, AdRole::kTransit);
        topo.add_link(reg, metro, LinkClass::kHierarchical,
                      jitter(params.regional_delay_ms, prng));
        campus_parents.push_back(metro);
      }
    }
  } else {
    campus_parents = regionals;
  }

  // --- Campuses ---
  std::vector<AdId> campuses;
  for (AdId parent : campus_parents) {
    for (std::uint32_t c = 0; c < params.campuses_per_parent; ++c) {
      AdRole role = AdRole::kStub;
      if (prng.bernoulli(params.hybrid_prob)) role = AdRole::kHybrid;
      const AdId campus = topo.add_ad(AdClass::kCampus, role);
      topo.add_link(parent, campus, LinkClass::kHierarchical,
                    jitter(params.campus_delay_ms, prng));
      campuses.push_back(campus);
    }
  }

  // --- Multi-homing: a second hierarchical parent ---
  for (AdId campus : campuses) {
    if (!prng.bernoulli(params.multihome_prob)) continue;
    if (campus_parents.size() < 2) break;
    for (int attempt = 0; attempt < 8; ++attempt) {
      const AdId parent = prng.pick(campus_parents);
      if (topo.find_link(campus, parent)) continue;
      topo.add_link(campus, parent, LinkClass::kHierarchical,
                    jitter(params.campus_delay_ms, prng));
      if (topo.ad(campus).role == AdRole::kStub) {
        topo.ad(campus).role = AdRole::kMultiHomed;
      }
      break;
    }
  }

  // --- Lateral links ---
  for (std::size_t i = 0; i < regionals.size(); ++i) {
    for (std::size_t j = i + 1; j < regionals.size(); ++j) {
      if (topo.find_link(regionals[i], regionals[j])) continue;
      if (prng.bernoulli(params.lateral_regional_prob)) {
        topo.add_link(regionals[i], regionals[j], LinkClass::kLateral,
                      jitter(params.regional_delay_ms, prng));
      }
    }
  }
  if (campuses.size() >= 2 && params.lateral_campus_prob > 0.0) {
    // Expected lateral campus links = prob * #campuses; sampled directly
    // rather than over all O(n^2) pairs.
    const auto want = static_cast<std::size_t>(std::llround(
        params.lateral_campus_prob * static_cast<double>(campuses.size())));
    for (std::size_t k = 0; k < want; ++k) {
      for (int attempt = 0; attempt < 8; ++attempt) {
        const AdId x = prng.pick(campuses);
        const AdId y = prng.pick(campuses);
        if (x == y || topo.find_link(x, y)) continue;
        topo.add_link(x, y, LinkClass::kLateral,
                      jitter(params.campus_delay_ms, prng));
        break;
      }
    }
  }

  // --- Bypass links: campus straight to a backbone ---
  for (AdId campus : campuses) {
    if (!prng.bernoulli(params.bypass_prob)) continue;
    const AdId bb = prng.pick(backbones);
    if (topo.find_link(campus, bb)) continue;
    topo.add_link(campus, bb, LinkClass::kBypass,
                  jitter(params.regional_delay_ms, prng));
  }

  IDR_CHECK_MSG(is_connected(topo), "generator must produce connected graph");
  return topo;
}

Topology generate_topology_of_size(std::uint32_t target_ads, Prng& prng) {
  IDR_CHECK(target_ads >= 8);
  GeneratorParams params;
  // Shape: ~1/16 transit (matches the paper's expectation that transit ADs
  // are ~1e2 out of 1e5, i.e. rare), rest campuses.
  params.backbones = std::max<std::uint32_t>(2, target_ads / 256);
  params.regionals_per_backbone =
      std::max<std::uint32_t>(2, target_ads / (params.backbones * 16));
  const std::uint32_t parents = params.backbones * params.regionals_per_backbone;
  const std::uint32_t remaining =
      target_ads > params.backbones + parents
          ? target_ads - params.backbones - parents
          : parents;
  params.campuses_per_parent = std::max<std::uint32_t>(1, remaining / parents);
  return generate_topology(params, prng);
}

}  // namespace idr
