#include "topology/parse.hpp"

#include <cctype>
#include <charconv>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <unordered_map>
#include <vector>

namespace idr {
namespace {

std::string_view trim(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

std::vector<std::string_view> split_ws(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() &&
           std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    if (i >= line.size()) break;
    const std::size_t start = i;
    while (i < line.size() &&
           !std::isspace(static_cast<unsigned char>(line[i]))) {
      ++i;
    }
    out.push_back(line.substr(start, i - start));
  }
  return out;
}

std::optional<AdClass> parse_class(std::string_view s) {
  if (s == "backbone") return AdClass::kBackbone;
  if (s == "regional") return AdClass::kRegional;
  if (s == "metro") return AdClass::kMetro;
  if (s == "campus") return AdClass::kCampus;
  return std::nullopt;
}

std::optional<AdRole> parse_role(std::string_view s) {
  if (s == "transit") return AdRole::kTransit;
  if (s == "stub") return AdRole::kStub;
  if (s == "multihomed") return AdRole::kMultiHomed;
  if (s == "hybrid") return AdRole::kHybrid;
  return std::nullopt;
}

std::optional<LinkClass> parse_link_class(std::string_view s) {
  if (s == "hierarchical") return LinkClass::kHierarchical;
  if (s == "lateral") return LinkClass::kLateral;
  if (s == "bypass") return LinkClass::kBypass;
  return std::nullopt;
}

std::optional<double> parse_double(std::string_view s) {
  // std::from_chars for double is inconsistently available; parse by hand
  // into a bounded buffer.
  char buf[64];
  if (s.empty() || s.size() >= sizeof buf) return std::nullopt;
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  char* end = nullptr;
  const double v = std::strtod(buf, &end);
  if (end != buf + s.size()) return std::nullopt;
  return v;
}

}  // namespace

TopoParseResult parse_topology(std::string_view text) {
  Topology topo;
  std::unordered_map<std::string, AdId> by_name;
  std::size_t line_no = 0;
  while (!text.empty()) {
    ++line_no;
    const std::size_t nl = text.find('\n');
    std::string_view line = text.substr(0, nl);
    text.remove_prefix(nl == std::string_view::npos ? text.size() : nl + 1);
    if (const std::size_t hash = line.find('#');
        hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    line = trim(line);
    if (line.empty()) continue;
    const auto fields = split_ws(line);

    if (fields[0] == "ad") {
      if (fields.size() != 4) {
        return TopoParseError{line_no, "expected: ad <name> <class> <role>"};
      }
      const std::string name(fields[1]);
      if (by_name.contains(name)) {
        return TopoParseError{line_no, "duplicate AD '" + name + "'"};
      }
      const auto cls = parse_class(fields[2]);
      if (!cls) {
        return TopoParseError{line_no,
                              "unknown class '" + std::string(fields[2]) +
                                  "'"};
      }
      const auto role = parse_role(fields[3]);
      if (!role) {
        return TopoParseError{line_no,
                              "unknown role '" + std::string(fields[3]) +
                                  "'"};
      }
      by_name[name] = topo.add_ad(*cls, *role, name);
    } else if (fields[0] == "link") {
      if (fields.size() < 4) {
        return TopoParseError{
            line_no, "expected: link <a> <b> <kind> [delay=..] [metric=..]"};
      }
      const auto a = by_name.find(std::string(fields[1]));
      const auto b = by_name.find(std::string(fields[2]));
      if (a == by_name.end()) {
        return TopoParseError{line_no,
                              "unknown AD '" + std::string(fields[1]) + "'"};
      }
      if (b == by_name.end()) {
        return TopoParseError{line_no,
                              "unknown AD '" + std::string(fields[2]) + "'"};
      }
      const auto cls = parse_link_class(fields[3]);
      if (!cls) {
        return TopoParseError{
            line_no, "unknown link kind '" + std::string(fields[3]) + "'"};
      }
      double delay = 1.0;
      std::uint32_t metric = 1;
      for (std::size_t i = 4; i < fields.size(); ++i) {
        const std::string_view field = fields[i];
        const std::size_t eq = field.find('=');
        if (eq == std::string_view::npos) {
          return TopoParseError{
              line_no, "expected key=value, got '" + std::string(field) + "'"};
        }
        const std::string_view key = field.substr(0, eq);
        const std::string_view value = field.substr(eq + 1);
        if (key == "delay") {
          const auto v = parse_double(value);
          if (!v || *v <= 0.0) {
            return TopoParseError{line_no, "bad delay"};
          }
          delay = *v;
        } else if (key == "metric") {
          std::uint32_t m = 0;
          const auto [p, ec] =
              std::from_chars(value.data(), value.data() + value.size(), m);
          if (ec != std::errc() || p != value.data() + value.size() ||
              m == 0) {
            return TopoParseError{line_no, "bad metric"};
          }
          metric = m;
        } else {
          return TopoParseError{
              line_no, "unknown link attribute '" + std::string(key) + "'"};
        }
      }
      if (a->second == b->second) {
        return TopoParseError{line_no, "self link"};
      }
      if (topo.find_link(a->second, b->second)) {
        return TopoParseError{line_no, "duplicate link"};
      }
      topo.add_link(a->second, b->second, *cls, delay, metric);
    } else {
      return TopoParseError{
          line_no, "unknown statement '" + std::string(fields[0]) + "'"};
    }
  }
  return topo;
}

std::string format_topology(const Topology& topo) {
  std::string out;
  for (const Ad& ad : topo.ads()) {
    out += "ad " + ad.name + " ";
    out += to_string(ad.cls);
    out += " ";
    out += to_string(ad.role);
    out += "\n";
  }
  char buf[64];
  for (const Link& l : topo.links()) {
    out += "link " + topo.ad(l.a).name + " " + topo.ad(l.b).name + " ";
    out += to_string(l.cls);
    std::snprintf(buf, sizeof buf, " delay=%g metric=%u\n", l.delay_ms,
                  l.metric);
    out += buf;
  }
  return out;
}

}  // namespace idr
