// A Go-Back-N reliable transport over ORWG Policy Routes.
//
// The paper is explicit that the PR data plane is an unreliable datagram
// service: "Packets may be delivered out of order ... Sequencing and
// reliability are left to the transport layer to do as required by the
// application" (§5.4.1). This module is that transport layer: a
// cumulative-ACK Go-Back-N ARQ whose segments ride established Policy
// Routes in both directions (ACKs take the reverse flow's own PR,
// exercising PR sharing across host pairs).
//
// TransportHost wraps an OrwgNode, demultiplexes inbound segments by
// peer AD, and owns per-peer sender/receiver state. Timers run on the
// simulation engine.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "proto/orwg/orwg_node.hpp"
#include "sim/engine.hpp"

namespace idr::transport {

struct GbnConfig {
  std::uint32_t window = 8;
  double retransmit_timeout_ms = 600.0;
  std::uint32_t max_retransmit_rounds = 50;  // give-up bound
};

// One reliable byte-message stream to a single peer AD.
class Connection {
 public:
  using MessageHandler =
      std::function<void(std::vector<std::uint8_t> message)>;

  Connection(OrwgNode& node, Engine& engine, FlowSpec flow, GbnConfig config);

  // Queue a message for reliable in-order delivery.
  void send(std::vector<std::uint8_t> message);

  // Invoked (at the remote Connection) for each in-order message.
  void set_message_handler(MessageHandler handler) {
    handler_ = std::move(handler);
  }

  [[nodiscard]] bool idle() const noexcept {
    return outbox_.empty() && in_flight_ == 0;
  }
  [[nodiscard]] std::uint64_t messages_sent() const noexcept {
    return messages_sent_;
  }
  [[nodiscard]] std::uint64_t messages_delivered() const noexcept {
    return messages_delivered_;
  }
  [[nodiscard]] std::uint64_t retransmissions() const noexcept {
    return retransmissions_;
  }
  [[nodiscard]] std::uint64_t duplicates_discarded() const noexcept {
    return duplicates_discarded_;
  }
  [[nodiscard]] bool failed() const noexcept { return failed_; }

  // Internal: raw segment arrived from the peer (called by
  // TransportHost).
  void on_segment(std::span<const std::uint8_t> segment);

 private:
  static constexpr std::uint8_t kData = 1;
  static constexpr std::uint8_t kAck = 2;

  void pump();                     // fill the window from the outbox
  void transmit(std::uint32_t seq);
  void arm_timer();
  void send_ack();

  OrwgNode& node_;
  Engine& engine_;
  FlowSpec flow_;          // this end -> peer
  FlowSpec reverse_flow_;  // peer -> this end (for context only)
  GbnConfig config_;

  // Sender state.
  std::deque<std::vector<std::uint8_t>> outbox_;  // not yet in window
  std::vector<std::vector<std::uint8_t>> window_;  // seq base_..base_+n-1
  std::uint32_t base_ = 0;       // oldest unacked sequence
  std::uint32_t next_seq_ = 0;   // next fresh sequence
  std::uint32_t in_flight_ = 0;  // window_.size() convenience
  std::uint64_t timer_generation_ = 0;
  std::uint32_t rounds_ = 0;
  bool failed_ = false;

  // Receiver state.
  std::uint32_t expected_ = 0;  // next in-order sequence
  MessageHandler handler_;

  std::uint64_t messages_sent_ = 0;
  std::uint64_t messages_delivered_ = 0;
  std::uint64_t retransmissions_ = 0;
  std::uint64_t duplicates_discarded_ = 0;
};

// Wraps one OrwgNode: installs itself as the node's delivery handler and
// routes segments to per-peer Connections.
class TransportHost {
 public:
  TransportHost(OrwgNode& node, Engine& engine, GbnConfig config = {});

  // Connection to `peer` for the given traffic class (created on first
  // use; one per peer AD + class).
  Connection& connect(AdId peer, TrafficClass tc = {});

  [[nodiscard]] std::size_t connections() const noexcept {
    return connections_.size();
  }

 private:
  OrwgNode& node_;
  Engine& engine_;
  GbnConfig config_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Connection>>
      connections_;
};

}  // namespace idr::transport
