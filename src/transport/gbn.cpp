#include "transport/gbn.hpp"

#include "util/check.hpp"
#include "wire/codec.hpp"

namespace idr::transport {
namespace {

std::vector<std::uint8_t> frame(std::uint8_t type, std::uint32_t seq,
                                std::span<const std::uint8_t> payload) {
  wire::Writer w;
  w.u8(type);
  w.u32(seq);
  w.u16(static_cast<std::uint16_t>(payload.size()));
  w.raw(payload);
  return std::move(w).take();
}

}  // namespace

Connection::Connection(OrwgNode& node, Engine& engine, FlowSpec flow,
                       GbnConfig config)
    : node_(node), engine_(engine), flow_(flow), config_(config) {
  reverse_flow_ = flow;
  std::swap(reverse_flow_.src, reverse_flow_.dst);
  IDR_CHECK(config_.window >= 1);
}

void Connection::send(std::vector<std::uint8_t> message) {
  IDR_CHECK_MSG(message.size() <= 0xffff, "message too large for a segment");
  outbox_.push_back(std::move(message));
  pump();
}

void Connection::pump() {
  if (failed_) return;
  const bool was_empty = in_flight_ == 0;
  while (in_flight_ < config_.window && !outbox_.empty()) {
    window_.push_back(std::move(outbox_.front()));
    outbox_.pop_front();
    ++in_flight_;
    ++messages_sent_;
    transmit(next_seq_++);
  }
  if (was_empty && in_flight_ > 0) arm_timer();
}

void Connection::transmit(std::uint32_t seq) {
  IDR_CHECK(seq >= base_ && seq < base_ + in_flight_);
  const auto& payload = window_[seq - base_];
  node_.send_data(flow_, seq, frame(kData, seq, payload));
}

void Connection::arm_timer() {
  const std::uint64_t generation = ++timer_generation_;
  engine_.after(config_.retransmit_timeout_ms, [this, generation] {
    if (generation != timer_generation_ || in_flight_ == 0 || failed_) {
      return;
    }
    if (++rounds_ > config_.max_retransmit_rounds) {
      failed_ = true;
      window_.clear();
      outbox_.clear();
      in_flight_ = 0;
      return;
    }
    // Go-Back-N: retransmit the entire window.
    for (std::uint32_t seq = base_; seq < base_ + in_flight_; ++seq) {
      transmit(seq);
      ++retransmissions_;
    }
    arm_timer();
  });
}

void Connection::send_ack() {
  node_.send_data(flow_, expected_, frame(kAck, expected_, {}));
}

void Connection::on_segment(std::span<const std::uint8_t> segment) {
  wire::Reader r(segment);
  const std::uint8_t type = r.u8();
  const std::uint32_t seq = r.u32();
  const std::uint16_t len = r.u16();
  std::vector<std::uint8_t> payload(len);
  for (auto& b : payload) b = r.u8();
  if (!r.ok()) return;  // corrupt segment: drop, ARQ recovers

  if (type == kAck) {
    // Cumulative: everything below `seq` is acknowledged.
    if (seq > base_) {
      const std::uint32_t acked =
          std::min(seq - base_, static_cast<std::uint32_t>(in_flight_));
      window_.erase(window_.begin(),
                    window_.begin() + static_cast<long>(acked));
      base_ += acked;
      in_flight_ -= acked;
      rounds_ = 0;
      ++timer_generation_;  // cancel outstanding timer
      if (in_flight_ > 0) arm_timer();
      pump();
    }
    return;
  }
  if (type != kData) return;

  if (seq == expected_) {
    ++expected_;
    ++messages_delivered_;
    if (handler_) handler_(std::move(payload));
  } else {
    ++duplicates_discarded_;  // out-of-order or duplicate: GBN discards
  }
  send_ack();
}

TransportHost::TransportHost(OrwgNode& node, Engine& engine,
                             GbnConfig config)
    : node_(node), engine_(engine), config_(config) {
  node_.set_delivery_handler([this](const FlowSpec& flow, std::uint32_t,
                                    std::span<const std::uint8_t> payload) {
    // Inbound flow runs peer -> us; our connection to that peer sends
    // us -> peer with the same traffic class.
    Connection& conn = connect(flow.src, traffic_class_of(flow));
    conn.on_segment(payload);
  });
}

Connection& TransportHost::connect(AdId peer, TrafficClass tc) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(peer.v) << 32) | tc.index();
  auto it = connections_.find(key);
  if (it == connections_.end()) {
    FlowSpec flow;
    flow.src = node_.id();
    flow.dst = peer;
    flow.qos = tc.qos;
    flow.uci = tc.uci;
    flow.hour = tc.hour;
    it = connections_
             .emplace(key, std::make_unique<Connection>(node_, engine_,
                                                        flow, config_))
             .first;
  }
  return *it->second;
}

}  // namespace idr::transport
