#include "proto/dvsr/dvsr_node.hpp"

#include <algorithm>

namespace idr {

std::optional<std::vector<AdId>> DvsrNode::source_route(
    const FlowSpec& flow) const {
  const std::vector<IdrpRoute>* candidates = routes(flow.dst);
  if (!candidates) return std::nullopt;
  const SourcePolicy& sp = policies().source_policy(self());

  const IdrpRoute* best = nullptr;
  for (const IdrpRoute& route : *candidates) {
    if (route.path.empty()) continue;
    if (!route.attrs.permits(flow)) continue;
    if (route.path.size() + 1 > sp.max_hops) continue;
    // Apply the source's private criteria over the candidate's full path
    // (the capability hop-by-hop forwarding lacks).
    const bool avoided = std::any_of(
        route.path.begin(), route.path.end() - 1,
        [&](AdId ad) { return sp.avoids(ad); });
    if (avoided) continue;
    const auto link = topo().find_link(self(), route.path.front());
    if (!link || !topo().link(*link).up) continue;
    if (!best) {
      best = &route;
      continue;
    }
    const bool better =
        sp.prefer_min_cost
            ? (route.attrs.cost < best->attrs.cost ||
               (route.attrs.cost == best->attrs.cost &&
                route.path.size() < best->path.size()))
            : route.path.size() < best->path.size();
    if (better) best = &route;
  }
  if (!best) return std::nullopt;
  std::vector<AdId> path;
  path.reserve(best->path.size() + 1);
  path.push_back(self());
  path.insert(path.end(), best->path.begin(), best->path.end());
  return path;
}

}  // namespace idr
