// Distance vector + source routing hybrid (paper §5.5.2): "a protocol
// like BGP in which the source uses the full AD path information it
// receives in routing updates to create a source route."
//
// The control plane is IDRP's path vector with policy attributes; the
// difference is at the source: instead of handing the packet to the
// hop-by-hop FIB, the source chooses among its advertised candidate
// paths, applies its own private route-selection criteria (which
// hop-by-hop IDRP cannot honor remotely), and stamps the full AD path
// into the packet. The paper's verdict -- "little advantage ... without
// also using a link state scheme" -- is measurable here: the candidate
// set is limited to what neighbors chose to advertise, so legal routes
// invisible to the path vector stay unusable.
#pragma once

#include <optional>
#include <vector>

#include "proto/idrp/idrp_node.hpp"

namespace idr {

class DvsrNode : public IdrpNode {
 public:
  DvsrNode(const PolicySet* policies, IdrpConfig config = {})
      : IdrpNode(policies, config) {}

  // Full AD-level source route for the flow: the best advertised
  // candidate that permits the flow and satisfies this AD's own
  // route-selection criteria (avoid list, hop budget). Includes self as
  // the first element. nullopt if no advertised candidate qualifies.
  [[nodiscard]] std::optional<std::vector<AdId>> source_route(
      const FlowSpec& flow) const;
};

}  // namespace idr
