// IDRP / BGP-2 style protocol (paper §5.2, §5.2.1): distance vector
// (path vector) hop-by-hop routing with explicit policy attributes.
//
//  * Updates carry the full AD path; a receiver discards any route whose
//    path already contains it (loop suppression without a partial order).
//  * Updates carry policy attributes aggregated along the path: the set
//    of source ADs permitted to use the route, permitted QoS/UCI classes,
//    a time-of-day mask and accumulated cost. An AD re-advertising a
//    route intersects these with its own Policy Terms, possibly yielding
//    several differently-constrained routes per destination.
//  * Each AD may keep and advertise multiple routes per destination
//    (capped by routes_per_dest); the paper's scaling objection is that
//    this cap must grow with policy granularity, which the
//    policy-granularity bench measures.
//  * Per-neighbor full-table updates with implicit withdrawal (a route
//    absent from the latest update from a neighbor is gone).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "policy/database.hpp"
#include "policy/flow.hpp"
#include "policy/term.hpp"
#include "proto/common/damping.hpp"
#include "proto/common/node.hpp"
#include "util/dense_map.hpp"

namespace idr {

// Hour-of-day bitmask helpers (bit h set = hour h permitted).
constexpr std::uint32_t kAllHoursMask = 0x00ffffffu;
std::uint32_t hour_window_mask(std::uint8_t begin, std::uint8_t end) noexcept;

// Policy attributes of an advertised route, aggregated along the path.
struct RouteAttrs {
  AdSet sources;  // source ADs permitted to use the route
  std::uint8_t qos_mask = kAllQosMask;
  std::uint8_t uci_mask = kAllUciMask;
  std::uint32_t hour_mask = kAllHoursMask;
  std::uint32_t cost = 0;

  [[nodiscard]] bool permits(const FlowSpec& flow) const noexcept;
  // True iff `this` permits every flow `other` permits (and is therefore
  // redundant if also no better in length/cost terms).
  [[nodiscard]] bool covers(const RouteAttrs& other) const noexcept;
  [[nodiscard]] bool usable() const noexcept;  // permits anything at all

  void encode(wire::Writer& w) const;
  static RouteAttrs decode(wire::Reader& r);

  friend bool operator==(const RouteAttrs&, const RouteAttrs&) = default;
};

struct IdrpRoute {
  AdId dst;
  std::vector<AdId> path;  // next hop first, dst last; never contains self
  RouteAttrs attrs;

  void encode(wire::Writer& w) const;
  static std::optional<IdrpRoute> decode(wire::Reader& r);
};

struct IdrpConfig {
  // Max routes retained/advertised per destination (paper: must grow with
  // policy granularity for sources to keep finding usable routes).
  std::uint32_t routes_per_dest = 4;
  // Receiver-side Byzantine defense (self-in-path suppression is always
  // on; this adds neighbor-consistency): the path must actually end at
  // the claimed destination, every consecutive pair on it must be
  // statically adjacent, and a transit route from a neighbor is clamped
  // to that neighbor's *registered* Policy Terms (the paper's §2.3
  // assurance model: policy registration is verifiable out of band) --
  // a route no registered term of the sender could have produced is
  // rejected. Rejections are counted via note_defense_rejection.
  bool defend = false;
  // Originate reachability for this AD. At paper scale only sampled
  // beacon ADs originate (all-pairs path-vector state is infeasible at
  // 1e5 ADs); every AD still re-advertises and carries transit.
  bool originate = true;
  // Min route advertisement interval: coalesce change-triggered
  // advertisements into one update per window (0 = immediate, the
  // historical behavior).
  double mrai_ms = 0.0;
  // When our own Policy Terms are previous-hop-agnostic, every neighbor
  // off the advertised paths receives a byte-identical update; encode it
  // once and share the payload (paper scale: a regional AD has ~1e3 stub
  // neighbors). Off by default to keep per-neighbor encode exact.
  bool shared_updates = false;
  // Route-flap damping (off by default): per-destination penalty on
  // every selected-route-set change; suppressed destinations are omitted
  // from updates (implicit withdrawal) while local forwarding keeps
  // them, until the penalty decays to the reuse threshold.
  DampingConfig damping;
  // Graceful restart (off by default): when a neighbor crashes into a
  // grace window, its Adj-RIB-in is retained (no reselect, so the
  // identical-update suppression keeps downstream quiet) instead of
  // erased; a guarded timer erases it at grace expiry unless a fresh
  // full-table update from the resynced neighbor replaced it first.
  GrConfig gr;
};

class IdrpNode : public ProtoNode {
 public:
  // `policies` is the global PolicySet; each node reads ONLY its own
  // terms from it (its configured import/export policy).
  IdrpNode(const PolicySet* policies, IdrpConfig config = {})
      : policies_(policies), config_(config) {}

  void start() override;
  void on_message(AdId from, std::span<const std::uint8_t> bytes) override;
  void on_link_change(AdId neighbor, bool up) override;

  // Re-send the full Adj-RIB-out to every neighbor every `ms` (0 disables,
  // the default), bypassing the identical-update suppression: a triggered
  // update lost on the unreliable datagram service would otherwise leave
  // the neighbor stale forever. Call before attach/start.
  void set_periodic_refresh(double ms) noexcept { periodic_refresh_ms_ = ms; }

  // Forwarding: first selected route for dst whose attributes permit the
  // flow, whose next hop is reachable and -- when we are a transit AD for
  // this packet (`prev` is the adjacent AD it arrived from) -- for which
  // one of our own Policy Terms permits the actual (prev, next) pair.
  // Returns the next hop.
  [[nodiscard]] std::optional<AdId> forward(const FlowSpec& flow,
                                            AdId prev = kNoAd) const;

  // The selected route a source would use for this flow (full path view,
  // used by the DV+source-routing hybrid and by diagnostics).
  [[nodiscard]] const IdrpRoute* select(const FlowSpec& flow) const;

  // All selected routes for a destination (nullptr if none) -- used by
  // the DV+source-routing hybrid, which picks among them at the source.
  [[nodiscard]] const std::vector<IdrpRoute>* routes(AdId dst) const;

  [[nodiscard]] std::size_t loc_rib_routes() const noexcept;
  [[nodiscard]] std::size_t adj_rib_routes() const noexcept;
  [[nodiscard]] std::size_t routes_for(AdId dst) const;
  [[nodiscard]] FlapDamper& damper() noexcept { return damper_; }
  // GR accounting: neighbor RIBs erased at grace expiry resp. full-table
  // resyncs advertised toward a recovered neighbor.
  [[nodiscard]] std::uint64_t gr_stale_flushed() const noexcept {
    return gr_stale_flushed_;
  }
  [[nodiscard]] std::uint64_t gr_resyncs() const noexcept {
    return gr_resyncs_;
  }

  static constexpr std::uint8_t kMsgUpdate = 1;

 protected:
  [[nodiscard]] const PolicySet& policies() const noexcept {
    return *policies_;
  }

 private:
  void reselect_and_maybe_advertise();
  void advertise(MsgClass cls = MsgClass::kUpdate);
  void trigger_advertise();
  void schedule_refresh();
  void flush_stale(AdId neighbor);
  void note_dst_flaps();
  void maybe_schedule_release_check();
  // Defense filter for one received route (config_.defend only): checks
  // neighbor consistency and clamps to the sender's registered terms,
  // appending the surviving copies to `kept`.
  void defend_and_keep(AdId from, IdrpRoute route,
                       std::vector<IdrpRoute>& kept);
  // Non-const: evaluating damping suppression at encode time performs
  // reuse-threshold releases as a side effect.
  [[nodiscard]] std::vector<std::uint8_t> encode_for(AdId neighbor);
  [[nodiscard]] std::uint64_t rib_signature() const;

  const PolicySet* policies_;
  IdrpConfig config_;
  FlapDamper damper_{config_.damping};
  double periodic_refresh_ms_ = 0.0;
  std::uint64_t gr_stale_flushed_ = 0;
  std::uint64_t gr_resyncs_ = 0;
  // Neighbors whose Adj-RIB-in is graceful-restart stale (retained while
  // the neighbor restarts; awaiting a resync update or the flush timer).
  std::unordered_set<std::uint32_t> stale_nbrs_;
  // adj-RIB-in: routes as received, per neighbor (dense, insertion
  // ordered: iteration order is a function of the event sequence only).
  DenseMap<std::uint32_t, std::vector<IdrpRoute>> adj_rib_in_;
  // loc-RIB: selected routes per destination.
  DenseMap<std::uint32_t, std::vector<IdrpRoute>> loc_rib_;
  std::uint64_t last_advertised_signature_ = 0;
  bool advertise_scheduled_ = false;  // an MRAI window is already open
  bool release_check_scheduled_ = false;  // a damping release timer is set
  // Per-destination signature of the selected route set, maintained only
  // while damping is enabled (change = one flap for that destination).
  DenseMap<std::uint32_t, std::uint64_t> dst_sig_;
  // Per-neighbor hash of the last update actually sent; identical
  // re-advertisements are suppressed (real path-vector implementations
  // do the same, and it keeps triggered-update churn honest).
  DenseMap<std::uint32_t, std::uint64_t> last_sent_hash_;
};

}  // namespace idr
