#include "proto/idrp/idrp_node.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/prng.hpp"

namespace idr {

std::uint32_t hour_window_mask(std::uint8_t begin, std::uint8_t end) noexcept {
  std::uint32_t mask = 0;
  for (std::uint8_t h = 0; h < 24; ++h) {
    const bool in = begin <= end ? (h >= begin && h <= end)
                                 : (h >= begin || h <= end);
    if (in) mask |= 1u << h;
  }
  return mask;
}

namespace {

AdSet intersect_sets(const AdSet& a, const AdSet& b) {
  if (a.is_any()) return b;
  if (b.is_any()) return a;
  std::vector<AdId> out;
  std::set_intersection(a.members().begin(), a.members().end(),
                        b.members().begin(), b.members().end(),
                        std::back_inserter(out));
  return AdSet::of(std::move(out));
}

bool set_covers(const AdSet& outer, const AdSet& inner) {
  if (outer.is_any()) return true;
  if (inner.is_any()) return false;
  return std::includes(outer.members().begin(), outer.members().end(),
                       inner.members().begin(), inner.members().end());
}

}  // namespace

bool RouteAttrs::permits(const FlowSpec& flow) const noexcept {
  if ((qos_mask & qos_bit(flow.qos)) == 0) return false;
  if ((uci_mask & uci_bit(flow.uci)) == 0) return false;
  if ((hour_mask & (1u << flow.hour)) == 0) return false;
  return sources.contains(flow.src);
}

bool RouteAttrs::covers(const RouteAttrs& other) const noexcept {
  if (!set_covers(sources, other.sources)) return false;
  if ((qos_mask & other.qos_mask) != other.qos_mask) return false;
  if ((uci_mask & other.uci_mask) != other.uci_mask) return false;
  if ((hour_mask & other.hour_mask) != other.hour_mask) return false;
  return true;
}

bool RouteAttrs::usable() const noexcept {
  if (qos_mask == 0 || uci_mask == 0 || hour_mask == 0) return false;
  return sources.is_any() || !sources.members().empty();
}

void RouteAttrs::encode(wire::Writer& w) const {
  sources.encode(w);
  w.u8(qos_mask);
  w.u8(uci_mask);
  w.u32(hour_mask);
  w.u32(cost);
}

RouteAttrs RouteAttrs::decode(wire::Reader& r) {
  RouteAttrs a;
  a.sources = AdSet::decode(r);
  a.qos_mask = r.u8();
  a.uci_mask = r.u8();
  a.hour_mask = r.u32();
  a.cost = r.u32();
  return a;
}

void IdrpRoute::encode(wire::Writer& w) const {
  w.u32(dst.v);
  std::vector<std::uint32_t> raw;
  raw.reserve(path.size());
  for (AdId ad : path) raw.push_back(ad.v);
  w.u32_list(raw);
  attrs.encode(w);
}

std::optional<IdrpRoute> IdrpRoute::decode(wire::Reader& r) {
  IdrpRoute route;
  route.dst = AdId{r.u32()};
  for (std::uint32_t v : r.u32_list()) route.path.push_back(AdId{v});
  route.attrs = RouteAttrs::decode(r);
  if (!r.ok()) return std::nullopt;
  return route;
}

void IdrpNode::start() {
  if (config_.originate) {
    // Originate own reachability: an empty path means "this AD".
    IdrpRoute origin;
    origin.dst = self();
    loc_rib_[self().v] = {origin};
    advertise();
  }
  schedule_refresh();
}

void IdrpNode::schedule_refresh() {
  if (periodic_refresh_ms_ <= 0.0) return;
  schedule_guarded(periodic_refresh_ms_, [this] {
    // Bypass the identical-update suppression: the point of the refresh
    // is to repair a neighbor that missed a triggered update.
    last_sent_hash_.clear();
    advertise(MsgClass::kRefresh);
    schedule_refresh();
  });
}

std::vector<std::uint8_t> IdrpNode::encode_for(AdId neighbor) {
  // A Byzantine/misconfigured AD lies at this advertisement point:
  //   * route leak -- learned routes are re-advertised with wide-open
  //     attributes, skipping the Policy Term intersection entirely;
  //   * tamper     -- the path is shortened to a claimed direct
  //     adjacency with the destination (path-vector length fraud);
  //   * false origin -- a path=[self] origin claim for the victim is
  //     appended after the honest routes.
  const Misbehavior mis = net().active_misbehavior(self());
  const SimTime now = net().engine().now();
  wire::Writer w;
  w.u8(kMsgUpdate);
  wire::Writer body;
  std::uint16_t count = 0;
  const auto own_terms = policies_->terms(self());
  for (const auto [dst_v, routes] : loc_rib_) {
    const AdId dst{dst_v};
    // A damped destination is simply left out: per-neighbor full-table
    // updates make omission an implicit withdrawal, so downstream churn
    // stops after one stable update while we keep forwarding locally.
    // Pure query only -- releases happen solely in the release timer,
    // whose re-advertisement reaches every neighbor (a mid-encode release
    // would revive the dst for some neighbors and not others).
    if (damper_.enabled() && dst != self() &&
        damper_.would_suppress(dst_v, now)) {
      continue;
    }
    std::uint32_t emitted_for_dst = 0;
    for (const IdrpRoute& route : routes) {
      if (emitted_for_dst >= config_.routes_per_dest) break;
      // Sender-side loop suppression.
      if (std::find(route.path.begin(), route.path.end(), neighbor) !=
          route.path.end()) {
        continue;
      }
      if (dst == self()) {
        // Terminating traffic needs no transit PT.
        IdrpRoute adv;
        adv.dst = self();
        adv.path = {self()};
        adv.encode(body);
        ++count;
        ++emitted_for_dst;
        continue;
      }
      IDR_CHECK(!route.path.empty());
      if (mis == Misbehavior::kRouteLeak) {
        IdrpRoute adv;
        adv.dst = dst;
        adv.path.reserve(route.path.size() + 1);
        adv.path.push_back(self());
        adv.path.insert(adv.path.end(), route.path.begin(),
                        route.path.end());
        adv.attrs = RouteAttrs{};  // wide open: every source/QoS/UCI/hour
        adv.attrs.cost = route.attrs.cost;
        adv.encode(body);
        ++count;
        ++emitted_for_dst;
        continue;
      }
      if (mis == Misbehavior::kTamper) {
        IdrpRoute adv;
        adv.dst = dst;
        adv.path = {self(), dst};  // claims a direct adjacency
        adv.attrs = route.attrs;
        adv.encode(body);
        ++count;
        ++emitted_for_dst;
        continue;
      }
      // Transit: we may re-advertise only under our own Policy Terms that
      // accept traffic arriving from `neighbor` and departing toward the
      // route's next hop, bound for `dst`.
      const AdId next = route.path.front();
      for (const PolicyTerm& t : own_terms) {
        if (emitted_for_dst >= config_.routes_per_dest) break;
        if (!t.prev_hops.contains(neighbor)) continue;
        if (!t.next_hops.contains(next)) continue;
        if (!t.dests.contains(dst)) continue;
        RouteAttrs attrs = route.attrs;
        attrs.sources = intersect_sets(attrs.sources, t.sources);
        attrs.qos_mask &= t.qos_mask;
        attrs.uci_mask &= t.uci_mask;
        attrs.hour_mask &= hour_window_mask(t.hour_begin, t.hour_end);
        attrs.cost += t.cost;
        if (!attrs.usable()) continue;
        IdrpRoute adv;
        adv.dst = dst;
        adv.path.reserve(route.path.size() + 1);
        adv.path.push_back(self());
        adv.path.insert(adv.path.end(), route.path.begin(),
                        route.path.end());
        adv.attrs = std::move(attrs);
        adv.encode(body);
        ++count;
        ++emitted_for_dst;
      }
    }
  }
  if (mis == Misbehavior::kFalseOrigin) {
    const AdId victim = net().misbehavior_victim(self());
    if (victim.valid() && victim != self() && victim != neighbor) {
      IdrpRoute adv;
      adv.dst = victim;
      adv.path = {self()};  // "the victim is me" -- shortest possible claim
      adv.encode(body);
      ++count;
    }
  }
  w.u16(count);
  w.raw(body.bytes());
  return std::move(w).take();
}

namespace {

std::uint64_t fnv1a(std::span<const std::uint8_t> bytes) noexcept {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::uint8_t b : bytes) hash = (hash ^ b) * 0x100000001b3ULL;
  return hash;
}

}  // namespace

void IdrpNode::advertise(MsgClass cls) {
  // Shared fast path: with previous-hop-agnostic terms, encode_for only
  // depends on the neighbor through sender-side loop suppression, which
  // the receiver re-checks anyway (self-in-path rejection). One generic
  // encode (no suppression) then serves every neighbor.
  bool generic_ok = config_.shared_updates;
  if (generic_ok) {
    for (const PolicyTerm& t : policies_->terms(self())) {
      if (!t.prev_hops.is_any()) {
        generic_ok = false;
        break;
      }
    }
  }
  Payload shared;
  std::uint64_t shared_hash = 0;
  for (const Adjacency& adj : live_neighbors()) {
    if (generic_ok) {
      if (!shared) {
        shared = make_payload(encode_for(kNoAd));
        shared_hash = fnv1a(*shared);
      }
      auto [sent, inserted] = last_sent_hash_.try_emplace(adj.neighbor.v, 0);
      if (!inserted && sent == shared_hash) continue;
      sent = shared_hash;
      net().send(self(), adj.neighbor, shared, cls);
      continue;
    }
    std::vector<std::uint8_t> update = encode_for(adj.neighbor);
    const std::uint64_t hash = fnv1a(update);
    auto [sent, inserted] = last_sent_hash_.try_emplace(adj.neighbor.v, 0);
    if (!inserted && sent == hash) continue;  // nothing new for them
    sent = hash;
    net().send(self(), adj.neighbor, std::move(update), cls);
  }
}

void IdrpNode::trigger_advertise() {
  if (config_.mrai_ms <= 0.0) {
    advertise();
    return;
  }
  if (advertise_scheduled_) return;
  advertise_scheduled_ = true;
  schedule_guarded(config_.mrai_ms, [this] {
    advertise_scheduled_ = false;
    advertise();
  });
}

void IdrpNode::on_message(AdId from, std::span<const std::uint8_t> bytes) {
  // Parse the whole update before replacing the adj-RIB-in: a truncated
  // PDU must not masquerade as a (shorter) full-state update and
  // implicitly withdraw routes the sender still advertises.
  wire::Reader r(bytes);
  const std::uint8_t type = r.u8();
  const std::uint16_t count = r.u16();
  if (!r.ok() || type != kMsgUpdate) {
    drop_malformed();
    return;
  }
  std::vector<IdrpRoute> received;
  received.reserve(count);
  bool decode_failed = false;
  for (std::uint16_t i = 0; i < count; ++i) {
    auto route = IdrpRoute::decode(r);
    if (!route) {
      decode_failed = true;
      break;
    }
    // Receiver-side validation: path must start at the sender, must not
    // contain us (AD loop), and must serve at least one flow.
    if (route->path.empty() || route->path.front() != from) continue;
    if (std::find(route->path.begin(), route->path.end(), self()) !=
        route->path.end()) {
      continue;
    }
    if (route->dst == self()) continue;
    if (!route->attrs.usable()) continue;
    if (config_.defend) {
      defend_and_keep(from, std::move(*route), received);
    } else {
      received.push_back(std::move(*route));
    }
  }
  if (decode_failed || !r.ok()) {
    drop_malformed();
    return;
  }
  adj_rib_in_[from.v] = std::move(received);
  stale_nbrs_.erase(from.v);  // a full-table update IS the GR resync
  reselect_and_maybe_advertise();
}

void IdrpNode::defend_and_keep(AdId from, IdrpRoute route,
                               std::vector<IdrpRoute>& kept) {
  // Neighbor-consistency rejection. The path must really end at the
  // claimed destination (a false-origin path=[liar] for someone else's
  // dst fails here) and every consecutive pair on it must be statically
  // adjacent (a tampered "direct adjacency" shortcut fails here).
  if (route.path.back() != route.dst) {
    net().note_defense_rejection(self());
    return;
  }
  for (std::size_t i = 0; i + 1 < route.path.size(); ++i) {
    if (!topo().find_link(route.path[i], route.path[i + 1])) {
      net().note_defense_rejection(self());
      return;
    }
  }
  if (route.path.size() == 1) {
    kept.push_back(std::move(route));  // origin route: dst == from
    return;
  }
  // Transit route: clamp to the sender's *registered* Policy Terms,
  // mirroring what an honest `from` would have computed in encode_for.
  // An honest advertisement survives unchanged (its producing term's
  // clamp is the identity on it); a leaked wide-open one is narrowed to
  // what `from` was actually allowed to say -- and rejected outright if
  // no registered term of `from` covers this (prev=us, next, dst) at all
  // (a stub has no terms, so any transit route from it dies here).
  const AdId next = route.path[1];
  bool any = false;
  for (const PolicyTerm& t : policies_->terms(from)) {
    if (!t.prev_hops.contains(self())) continue;
    if (!t.next_hops.contains(next)) continue;
    if (!t.dests.contains(route.dst)) continue;
    IdrpRoute clamped = route;
    clamped.attrs.sources = intersect_sets(route.attrs.sources, t.sources);
    clamped.attrs.qos_mask = route.attrs.qos_mask & t.qos_mask;
    clamped.attrs.uci_mask = route.attrs.uci_mask & t.uci_mask;
    clamped.attrs.hour_mask =
        route.attrs.hour_mask & hour_window_mask(t.hour_begin, t.hour_end);
    if (!clamped.attrs.usable()) continue;
    kept.push_back(std::move(clamped));
    any = true;
  }
  if (!any) net().note_defense_rejection(self());
}

void IdrpNode::on_link_change(AdId neighbor, bool up) {
  if (up) {
    // The session state is void: a fresh neighbor must receive our full
    // table even if it is byte-identical to the last one sent. With GR
    // this is the resync toward the restarted neighbor.
    last_sent_hash_.erase(neighbor.v);
    if (config_.gr.enabled) ++gr_resyncs_;
    advertise();
    return;
  }
  if (config_.gr.enabled && net().in_grace(neighbor)) {
    // Graceful restart: retain the neighbor's Adj-RIB-in and skip the
    // reselect -- no churn propagates downstream. The neighbor's resync
    // update (a full table, implicit withdrawal semantics) supersedes
    // the retained state wholesale; otherwise the flush timer erases it
    // just past grace expiry.
    if (adj_rib_in_.find(neighbor.v) &&
        stale_nbrs_.insert(neighbor.v).second) {
      schedule_guarded(config_.gr.grace_ms + 0.1,
                       [this, neighbor] { flush_stale(neighbor); });
    }
    return;
  }
  last_sent_hash_.erase(neighbor.v);
  adj_rib_in_.erase(neighbor.v);
  reselect_and_maybe_advertise();
}

void IdrpNode::flush_stale(AdId neighbor) {
  if (net().in_grace(neighbor)) {
    // The neighbor crashed again and its grace window was extended;
    // retry after the extension.
    schedule_guarded(config_.gr.grace_ms + 0.1,
                     [this, neighbor] { flush_stale(neighbor); });
    return;
  }
  if (stale_nbrs_.erase(neighbor.v) == 0) return;  // resynced in time
  ++gr_stale_flushed_;
  last_sent_hash_.erase(neighbor.v);
  adj_rib_in_.erase(neighbor.v);
  reselect_and_maybe_advertise();
}

void IdrpNode::reselect_and_maybe_advertise() {
  // Rebuild loc-RIB from all adj-RIBs-in, keeping up to routes_per_dest
  // policy-diverse routes per destination.
  DenseMap<std::uint32_t, std::vector<IdrpRoute>> fresh;
  if (config_.originate) {
    IdrpRoute origin;
    origin.dst = self();
    fresh[self().v] = {origin};
  }

  DenseMap<std::uint32_t, std::vector<const IdrpRoute*>> candidates;
  for (const auto [nbr, routes] : adj_rib_in_) {
    // Routes from unreachable neighbors are unusable.
    const auto link = topo().find_link(self(), AdId{nbr});
    if (!link || !topo().link(*link).up) continue;
    for (const IdrpRoute& route : routes) {
      candidates[route.dst.v].push_back(&route);
    }
  }
  for (auto [dst, cands] : candidates) {
    std::stable_sort(cands.begin(), cands.end(),
              [](const IdrpRoute* a, const IdrpRoute* b) {
                if (a->path.size() != b->path.size()) {
                  return a->path.size() < b->path.size();
                }
                return a->attrs.cost < b->attrs.cost;
              });
    std::vector<IdrpRoute>& kept = fresh[dst];
    for (const IdrpRoute* cand : cands) {
      if (kept.size() >= config_.routes_per_dest) break;
      const bool redundant = std::any_of(
          kept.begin(), kept.end(), [&](const IdrpRoute& k) {
            return k.attrs.covers(cand->attrs);
          });
      if (!redundant) kept.push_back(*cand);
    }
    if (kept.empty()) fresh.erase(dst);
  }

  loc_rib_ = std::move(fresh);
  if (damper_.enabled()) note_dst_flaps();
  const std::uint64_t sig = rib_signature();
  if (sig != last_advertised_signature_) {
    last_advertised_signature_ = sig;
    trigger_advertise();
  }
}

namespace {

std::uint64_t dst_routes_signature(std::uint32_t dst,
                                   const std::vector<IdrpRoute>& routes) {
  std::uint64_t s = dst;
  for (const IdrpRoute& route : routes) {
    for (AdId ad : route.path) s = splitmix64(s) ^ ad.v;
    s = splitmix64(s) ^ route.attrs.cost;
    s = splitmix64(s) ^ route.attrs.qos_mask;
    s = splitmix64(s) ^ route.attrs.uci_mask;
    s = splitmix64(s) ^ route.attrs.hour_mask;
    s = splitmix64(s) ^
        (route.attrs.sources.is_any() ? 0xffffu
                                      : route.attrs.sources.members().size());
    for (AdId m : route.attrs.sources.members()) s = splitmix64(s) ^ m.v;
  }
  return s;
}

}  // namespace

std::uint64_t IdrpNode::rib_signature() const {
  const SimTime now = net().engine().now();
  std::uint64_t acc = 0x9e3779b97f4a7c15ULL;
  for (const auto [dst, routes] : loc_rib_) {
    // Suppressed destinations are omitted from updates, so a change
    // confined to one must not look like an advertisable change -- that
    // is where damping cuts the flap cascade. (Pure query: signatures
    // must not mutate damper state.)
    if (damper_.enabled() && damper_.would_suppress(dst, now)) continue;
    // order-independent combine across destinations
    std::uint64_t s = dst_routes_signature(dst, routes);
    acc ^= splitmix64(s);
  }
  return acc;
}

void IdrpNode::note_dst_flaps() {
  // One flap per destination whose selected route set changed in this
  // reselection (appearance, disappearance, or any path/attr change).
  const SimTime now = net().engine().now();
  DenseMap<std::uint32_t, std::uint64_t> fresh_sigs;
  for (const auto [dst, routes] : loc_rib_) {
    fresh_sigs[dst] = dst_routes_signature(dst, routes);
  }
  for (const auto [dst, sig] : fresh_sigs) {
    if (AdId{dst} == self()) continue;
    const std::uint64_t* old = dst_sig_.find(dst);
    // A destination appearing for the first time is initial learning,
    // not a flap (RFC 2439 shape) -- cold start accrues no penalty.
    if (old && *old != sig) damper_.note_flap(dst, now);
  }
  for (const auto [dst, sig] : dst_sig_) {
    (void)sig;
    if (AdId{dst} == self()) continue;
    if (!fresh_sigs.find(dst)) damper_.note_flap(dst, now);
  }
  dst_sig_ = std::move(fresh_sigs);
  maybe_schedule_release_check();
}

void IdrpNode::maybe_schedule_release_check() {
  if (release_check_scheduled_) return;
  const SimTime now = net().engine().now();
  const SimTime eta = damper_.next_release_eta(now);
  if (eta < 0.0) return;
  // A hair past the analytic release time, so the update this timer
  // triggers observes the destination already below the reuse threshold.
  release_check_scheduled_ = true;
  schedule_guarded(std::max(eta - now, 0.0) + 0.1, [this] {
    release_check_scheduled_ = false;
    // Release directly: encode only queries destinations still in the
    // loc-RIB, so the timer must not depend on it to clear due
    // suppressions.
    if (damper_.release_due(net().engine().now()) > 0) trigger_advertise();
    maybe_schedule_release_check();
  });
}

std::optional<AdId> IdrpNode::forward(const FlowSpec& flow, AdId prev) const {
  const std::vector<IdrpRoute>* selected = loc_rib_.find(flow.dst.v);
  if (!selected) return std::nullopt;
  for (const IdrpRoute& route : *selected) {
    if (route.path.empty()) continue;  // origin route (we are dst)
    if (!route.attrs.permits(flow)) continue;
    const auto link = topo().find_link(self(), route.path.front());
    if (!link || !topo().link(*link).up) continue;
    // Transit packets must additionally satisfy our own policy for the
    // concrete (prev, next) transition they make through us -- unless we
    // are the leaker: a route-leaking AD carries the transit traffic its
    // illegal advertisements attracted (that is what makes a leak a leak
    // rather than a black hole).
    if (self() != flow.src && prev.valid() &&
        !net().misbehaving_as(self(), Misbehavior::kRouteLeak) &&
        !policies_->transit_cost(self(), flow, prev, route.path.front())) {
      continue;
    }
    return route.path.front();
  }
  return std::nullopt;
}

const IdrpRoute* IdrpNode::select(const FlowSpec& flow) const {
  const std::vector<IdrpRoute>* selected = loc_rib_.find(flow.dst.v);
  if (!selected) return nullptr;
  for (const IdrpRoute& route : *selected) {
    if (route.path.empty()) continue;  // origin route (we are dst)
    if (!route.attrs.permits(flow)) continue;
    const auto link = topo().find_link(self(), route.path.front());
    if (!link || !topo().link(*link).up) continue;
    return &route;
  }
  return nullptr;
}

const std::vector<IdrpRoute>* IdrpNode::routes(AdId dst) const {
  return loc_rib_.find(dst.v);
}

std::size_t IdrpNode::loc_rib_routes() const noexcept {
  std::size_t n = 0;
  for (const auto [dst, routes] : loc_rib_) n += routes.size();
  return n;
}

std::size_t IdrpNode::adj_rib_routes() const noexcept {
  std::size_t n = 0;
  for (const auto [nbr, routes] : adj_rib_in_) n += routes.size();
  return n;
}

std::size_t IdrpNode::routes_for(AdId dst) const {
  const std::vector<IdrpRoute>* r = loc_rib_.find(dst.v);
  return r ? r->size() : 0;
}

}  // namespace idr
