// EGP baseline (paper §3, RFC 827 era): exchanges reachability across
// ADs with a severe restriction -- the inter-AD graph must be acyclic.
// egp_applicable() is the admission check; the Table-1 bench uses it to
// show EGP cannot even be deployed on the paper's Figure-1 topology.
// Within a tree, reachability propagation with per-neighbor exclusion
// (exact split horizon on a tree) yields loop-free routes. EGP's "policy"
// is limited to per-destination advertisement filters and neighbor metric
// biasing (§3), both modeled here.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "proto/common/node.hpp"

namespace idr {

// True iff EGP may run on this topology (no cycles among live links).
bool egp_applicable(const Topology& topo);

class EgpNode : public ProtoNode {
 public:
  void start() override;
  void on_message(AdId from, std::span<const std::uint8_t> bytes) override;
  void on_link_change(AdId neighbor, bool up) override;

  // Reachability filter: only advertise these destinations to anyone
  // (empty = advertise everything). This is EGP's "share part of your
  // connectivity database" notion of policy.
  void set_export_filter(std::unordered_set<std::uint32_t> allowed);

  // Bias added to all routes learned from a neighbor (favoring /
  // disfavoring particular transit ADs, §3).
  void set_neighbor_bias(AdId neighbor, std::uint16_t bias);

  [[nodiscard]] std::optional<AdId> next_hop(AdId dst) const;
  [[nodiscard]] std::uint16_t distance(AdId dst) const;

  static constexpr std::uint8_t kMsgReach = 1;
  static constexpr std::uint16_t kInfinity = 0xffff;

 private:
  struct Route {
    std::uint16_t metric = kInfinity;
    AdId via;
  };

  void advertise();
  [[nodiscard]] std::vector<std::uint8_t> encode_for(AdId neighbor) const;

  std::unordered_map<std::uint32_t, Route> routes_;
  std::unordered_set<std::uint32_t> export_filter_;  // empty = all
  std::unordered_map<std::uint32_t, std::uint16_t> neighbor_bias_;
};

}  // namespace idr
