#include "proto/egp/egp_node.hpp"

#include <algorithm>

#include "topology/algos.hpp"
#include "util/check.hpp"

namespace idr {

bool egp_applicable(const Topology& topo) { return !has_cycle(topo); }

void EgpNode::start() {
  routes_[self().v] = Route{0, self()};
  advertise();
}

void EgpNode::set_export_filter(std::unordered_set<std::uint32_t> allowed) {
  export_filter_ = std::move(allowed);
}

void EgpNode::set_neighbor_bias(AdId neighbor, std::uint16_t bias) {
  neighbor_bias_[neighbor.v] = bias;
}

std::vector<std::uint8_t> EgpNode::encode_for(AdId neighbor) const {
  wire::Writer w;
  w.u8(kMsgReach);
  wire::Writer body;
  std::uint16_t count = 0;
  for (const auto& [dst, route] : routes_) {
    // Unreachable destinations are advertised explicitly at infinity so
    // neighbors with alternatives can detect the regression and help
    // (see the repair heuristic below).
    // On a tree, exact split horizon: never advertise back to the
    // neighbor the route was learned from.
    if (route.via == neighbor && dst != self().v) continue;
    if (!export_filter_.empty() && dst != self().v &&
        !export_filter_.contains(dst)) {
      continue;
    }
    body.u32(dst);
    body.u16(route.metric);
    ++count;
  }
  w.u16(count);
  w.raw(body.bytes());
  return std::move(w).take();
}

void EgpNode::advertise() {
  for (const Adjacency& adj : live_neighbors()) {
    net().send(self(), adj.neighbor, encode_for(adj.neighbor));
  }
}

void EgpNode::on_message(AdId from, std::span<const std::uint8_t> bytes) {
  // Parse the whole update before applying: EGP full-state updates imply
  // withdrawals for absent destinations, so acting on a truncated PDU
  // would withdraw routes the sender still has. Count and drop instead.
  wire::Reader r(bytes);
  const std::uint8_t type = r.u8();
  const std::uint16_t count = r.u16();
  std::vector<std::pair<std::uint32_t, std::uint16_t>> entries;
  if (r.ok() && type == kMsgReach) {
    entries.reserve(count);
    for (std::uint16_t i = 0; i < count && r.ok(); ++i) {
      const std::uint32_t dst = r.u32();
      const std::uint16_t adv = r.u16();
      if (r.ok()) entries.emplace_back(dst, adv);
    }
  }
  if (!r.ok() || type != kMsgReach || entries.size() != count) {
    drop_malformed();
    return;
  }
  std::uint16_t bias = 0;
  if (const auto it = neighbor_bias_.find(from.v);
      it != neighbor_bias_.end()) {
    bias = it->second;
  }
  // Destinations previously learned from `from` but absent from this
  // update have been withdrawn (EGP full-state updates).
  std::unordered_map<std::uint32_t, std::uint16_t> their;
  bool changed = false;
  for (const auto& [dst, adv] : entries) {
    if (dst == self().v) continue;
    their[dst] = adv;
    const auto metric = static_cast<std::uint16_t>(
        std::min<std::uint32_t>(adv + 1u + bias, kInfinity));
    auto it = routes_.find(dst);
    if (it == routes_.end()) {
      if (metric < kInfinity) {
        routes_[dst] = Route{metric, from};
        changed = true;
      }
    } else if (it->second.via == from) {
      if (it->second.metric != metric) {
        it->second.metric = metric;
        changed = true;
      }
    } else if (metric < it->second.metric) {
      it->second = Route{metric, from};
      changed = true;
    }
  }
  for (auto& [dst, route] : routes_) {
    if (route.via == from && dst != self().v && !their.contains(dst) &&
        route.metric < kInfinity) {
      route.metric = kInfinity;
      changed = true;
    }
  }
  if (changed) advertise();

  // Repair heuristic: offer our table when the neighbor explicitly
  // advertised a metric strictly worse than what we could legitimately
  // offer it. Absent destinations are not treated as lagging (absence is
  // usually split-horizon suppression; see DvNode for the rationale).
  bool help = false;
  for (const auto& [dst, adv] : their) {
    if (dst == from.v) continue;
    const auto it = routes_.find(dst);
    if (it == routes_.end()) continue;
    const Route& route = it->second;
    if (route.metric >= kInfinity) continue;
    if (route.via == from && dst != self().v) continue;  // split horizon
    if (!export_filter_.empty() && dst != self().v &&
        !export_filter_.contains(dst)) {
      continue;
    }
    if (route.metric + 1u < adv) {
      help = true;
      break;
    }
  }
  if (help) net().send(self(), from, encode_for(from));
}

void EgpNode::on_link_change(AdId neighbor, bool up) {
  if (up) {
    advertise();
    return;
  }
  bool changed = false;
  for (auto& [dst, route] : routes_) {
    if (route.via == neighbor && route.metric < kInfinity) {
      route.metric = kInfinity;
      changed = true;
    }
  }
  if (changed) advertise();
}

std::optional<AdId> EgpNode::next_hop(AdId dst) const {
  const auto it = routes_.find(dst.v);
  if (it == routes_.end() || it->second.metric >= kInfinity) {
    return std::nullopt;
  }
  return it->second.via;
}

std::uint16_t EgpNode::distance(AdId dst) const {
  const auto it = routes_.find(dst.v);
  if (it == routes_.end()) return kInfinity;
  return it->second.metric;
}

}  // namespace idr
