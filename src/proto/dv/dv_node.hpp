// Traditional Bellman-Ford distance-vector protocol (RIP-like), the
// paper's §4.3 baseline. Intentionally exhibits the classic pathologies
// the paper cites -- slow convergence and count-to-infinity -- unless
// split horizon / poisoned reverse are enabled, so the convergence bench
// can show them against ECMA's partial-order suppression and link state.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "proto/common/node.hpp"

namespace idr {

struct DvConfig {
  std::uint16_t infinity = 16;       // RIP-style small infinity
  bool split_horizon = false;
  bool poisoned_reverse = false;     // implies split horizon semantics
  bool triggered_updates = true;
  double periodic_interval_ms = 0.0;  // 0: no periodic refresh
};

class DvNode : public ProtoNode {
 public:
  explicit DvNode(DvConfig config = {}) : config_(config) {}

  void start() override;
  void on_message(AdId from, std::span<const std::uint8_t> bytes) override;
  void on_link_change(AdId neighbor, bool up) override;

  [[nodiscard]] std::optional<AdId> next_hop(AdId dst) const;
  [[nodiscard]] std::uint16_t distance(AdId dst) const;
  [[nodiscard]] std::size_t route_count() const noexcept {
    return routes_.size();
  }
  [[nodiscard]] std::uint64_t updates_sent() const noexcept {
    return updates_sent_;
  }

  static constexpr std::uint8_t kMsgVector = 1;

 private:
  struct Route {
    std::uint16_t metric;
    AdId via;
  };

  void broadcast_vector();
  void schedule_periodic();
  [[nodiscard]] std::vector<std::uint8_t> encode_vector_for(AdId neighbor);

  DvConfig config_;
  std::unordered_map<std::uint32_t, Route> routes_;  // dst -> route
  std::uint64_t updates_sent_ = 0;
};

}  // namespace idr
