#include "proto/dv/dv_node.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/log.hpp"

namespace idr {

void DvNode::start() {
  routes_[self().v] = Route{0, self()};
  broadcast_vector();
  if (config_.periodic_interval_ms > 0.0) schedule_periodic();
}

void DvNode::schedule_periodic() {
  schedule_guarded(config_.periodic_interval_ms, [this]() {
    broadcast_vector();
    schedule_periodic();
  });
}

std::vector<std::uint8_t> DvNode::encode_vector_for(AdId neighbor) {
  wire::Writer w;
  w.u8(kMsgVector);
  std::uint16_t count = 0;
  wire::Writer body;
  for (const auto& [dst, route] : routes_) {
    std::uint16_t metric = route.metric;
    if (config_.split_horizon && route.via == neighbor && dst != self().v) {
      if (!config_.poisoned_reverse) continue;  // suppress
      metric = config_.infinity;                // poison
    }
    body.u32(dst);
    body.u16(metric);
    ++count;
  }
  w.u16(count);
  w.raw(body.bytes());
  return std::move(w).take();
}

void DvNode::broadcast_vector() {
  ++updates_sent_;
  for (const Adjacency& adj : live_neighbors()) {
    net().send(self(), adj.neighbor, encode_vector_for(adj.neighbor));
  }
}

void DvNode::on_message(AdId from, std::span<const std::uint8_t> bytes) {
  // Parse the whole update before applying any of it: a truncated or
  // bit-flipped PDU is counted and dropped, never partially installed.
  wire::Reader r(bytes);
  const std::uint8_t type = r.u8();
  const std::uint16_t count = r.u16();
  std::vector<std::pair<std::uint32_t, std::uint16_t>> entries;
  if (r.ok() && type == kMsgVector) {
    entries.reserve(count);
    for (std::uint16_t i = 0; i < count && r.ok(); ++i) {
      const std::uint32_t dst = r.u32();
      const std::uint16_t adv = r.u16();
      if (r.ok()) entries.emplace_back(dst, adv);
    }
  }
  if (!r.ok() || type != kMsgVector || entries.size() != count) {
    drop_malformed();
    return;
  }

  bool changed = false;
  std::unordered_map<std::uint32_t, std::uint16_t> their;
  for (const auto& [dst, adv] : entries) {
    their[dst] = std::min(adv, their.contains(dst) ? their[dst] : adv);
    if (dst == self().v) continue;
    const std::uint16_t metric = static_cast<std::uint16_t>(
        std::min<std::uint32_t>(adv + 1u, config_.infinity));
    auto it = routes_.find(dst);
    if (it == routes_.end()) {
      if (metric < config_.infinity) {
        routes_[dst] = Route{metric, from};
        changed = true;
      }
      continue;
    }
    Route& route = it->second;
    if (route.via == from) {
      // Update from the current next hop is authoritative, better or worse.
      if (route.metric != metric) {
        route.metric = metric;
        changed = true;
      }
    } else if (metric < route.metric) {
      route = Route{metric, from};
      changed = true;
    }
  }
  if (changed && config_.triggered_updates) broadcast_vector();

  // Repair heuristic (stands in for RIP's periodic refresh in the
  // event-driven simulation): if the neighbor explicitly advertised a
  // metric strictly worse than what we could offer it (e.g. it just
  // poisoned its only route), offer our table. Destinations absent from
  // the update are deliberately NOT treated as lagging -- absence may
  // mean split-horizon suppression, and helping on absence ping-pongs
  // forever. Helping only on explicit regressions guarantees every help
  // causes a strict improvement at the receiver, so the exchange
  // terminates.
  bool help = false;
  for (const auto& [dst, theirs] : their) {
    if (dst == from.v || dst == self().v) continue;
    const auto it = routes_.find(dst);
    if (it == routes_.end()) continue;
    const Route& route = it->second;
    if (route.metric >= config_.infinity) continue;
    if (config_.split_horizon && route.via == from) continue;
    if (route.metric + 1u < theirs) {
      help = true;
      break;
    }
  }
  if (help) net().send(self(), from, encode_vector_for(from));
}

void DvNode::on_link_change(AdId neighbor, bool up) {
  if (up) {
    broadcast_vector();
    return;
  }
  bool changed = false;
  for (auto& [dst, route] : routes_) {
    if (route.via == neighbor && route.metric < config_.infinity) {
      route.metric = config_.infinity;
      changed = true;
    }
  }
  if (changed && config_.triggered_updates) broadcast_vector();
}

std::optional<AdId> DvNode::next_hop(AdId dst) const {
  const auto it = routes_.find(dst.v);
  if (it == routes_.end() || it->second.metric >= config_.infinity) {
    return std::nullopt;
  }
  return it->second.via;
}

std::uint16_t DvNode::distance(AdId dst) const {
  const auto it = routes_.find(dst.v);
  if (it == routes_.end()) return config_.infinity;
  return it->second.metric;
}

}  // namespace idr
