#include "proto/common/node.hpp"

// ProtoNode is header-only; this file anchors it in the build graph.
