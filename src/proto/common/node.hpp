// Shared base for protocol nodes: access to self/topology, neighbor
// enumeration, and PDU send helpers. Every concrete protocol PDU begins
// with a one-byte message type defined by that protocol.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "sim/network.hpp"
#include "topology/graph.hpp"
#include "wire/codec.hpp"

namespace idr {

class ProtoNode : public Node {
 protected:
  [[nodiscard]] AdId self() const noexcept { return self_; }
  [[nodiscard]] Network& net() noexcept { return *net_; }
  [[nodiscard]] const Network& net() const noexcept { return *net_; }
  [[nodiscard]] const Topology& topo() const noexcept { return net_->topo(); }

  // Neighbors this node considers usable: the link is up AND (when
  // keepalive is enabled) the hold timer has not declared the neighbor
  // dead. Filtering dead neighbors here is what lets the link-state
  // protocols stop advertising an adjacency to a crashed neighbor.
  [[nodiscard]] std::vector<Adjacency> live_neighbors() const {
    std::vector<Adjacency> out = net_->topo().live_neighbors(self_);
    std::erase_if(out, [this](const Adjacency& adj) {
      return !neighbor_alive(adj.neighbor);
    });
    return out;
  }

  // Allocation-free live_neighbors(): visits the same adjacencies in the
  // same order without materializing a vector. This is the hot broadcast
  // path at paper scale (1e5 ADs x every flood/refresh).
  template <typename Fn>
  void for_each_live_neighbor(Fn&& fn) const {
    for (const Adjacency& adj : net_->topo().neighbors(self_)) {
      if (!net_->topo().link(adj.link).up) continue;
      if (!neighbor_alive(adj.neighbor)) continue;
      fn(adj);
    }
  }

  // Count-and-drop for a PDU that failed to decode or carried an unknown
  // message type: never abort on wire input.
  void drop_malformed() { net_->note_malformed(self_); }

  // Send an encoded PDU to an adjacent AD.
  void send_pdu(AdId to, wire::Writer&& w,
                MsgClass cls = MsgClass::kUpdate) {
    net_->send(self_, to, std::move(w).take(), cls);
  }

  // Send the same bytes to every live neighbor except `except`. The
  // encoded frame is shared across all receivers (one allocation).
  void send_to_neighbors(const std::vector<std::uint8_t>& bytes,
                         AdId except = kNoAd,
                         MsgClass cls = MsgClass::kUpdate) {
    Payload payload;
    for_each_live_neighbor([&](const Adjacency& adj) {
      if (adj.neighbor == except) return;
      if (!payload) payload = make_payload(bytes);
      net_->send(self_, adj.neighbor, payload, cls);
    });
  }
};

}  // namespace idr
