// Message and byte accounting. All overhead numbers reported by the
// benchmarks come from these counters, fed by real encoded PDU sizes.
#pragma once

#include <cstdint>

namespace idr {

struct Counters {
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t msgs_delivered = 0;
  std::uint64_t msgs_dropped = 0;  // sent over a down link

  Counters& operator+=(const Counters& other) noexcept {
    msgs_sent += other.msgs_sent;
    bytes_sent += other.bytes_sent;
    msgs_delivered += other.msgs_delivered;
    msgs_dropped += other.msgs_dropped;
    return *this;
  }
};

}  // namespace idr
