// Message and byte accounting. All overhead numbers reported by the
// benchmarks come from these counters, fed by real encoded PDU sizes.
#pragma once

#include <cstdint>

namespace idr {

struct Counters {
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t msgs_delivered = 0;
  std::uint64_t msgs_dropped = 0;  // sent over a down link
  // Adversarial-fault accounting (receiver side): frames mangled,
  // duplicated, or delayed out of order by the network fault model, and
  // PDUs the receiving protocol parsed, rejected, and dropped instead of
  // aborting on.
  std::uint64_t msgs_corrupted = 0;
  std::uint64_t msgs_duplicated = 0;
  std::uint64_t msgs_reordered = 0;
  std::uint64_t malformed_dropped = 0;
  // Control-plane advertisements a protocol's Byzantine defense rejected
  // (or clamped away): forged origins, leaked routes, infeasible shapes,
  // bad auth tags. Zero unless a defense toggle is armed.
  std::uint64_t defense_rejections = 0;

  Counters& operator+=(const Counters& other) noexcept {
    msgs_sent += other.msgs_sent;
    bytes_sent += other.bytes_sent;
    msgs_delivered += other.msgs_delivered;
    msgs_dropped += other.msgs_dropped;
    msgs_corrupted += other.msgs_corrupted;
    msgs_duplicated += other.msgs_duplicated;
    msgs_reordered += other.msgs_reordered;
    malformed_dropped += other.malformed_dropped;
    defense_rejections += other.defense_rejections;
    return *this;
  }
};

}  // namespace idr
