#include "proto/common/damping.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace idr {

double FlapDamper::decayed(const RouteState& s, SimTime now) const {
  if (now <= s.updated_at) return s.penalty;
  const double halves = (now - s.updated_at) / config_.half_life_ms;
  return s.penalty * std::exp2(-halves);
}

SimTime FlapDamper::release_delay(const RouteState& s, SimTime now) const {
  const double penalty = decayed(s, now);
  if (penalty <= config_.reuse_threshold) return 0.0;
  return config_.half_life_ms *
         std::log2(penalty / config_.reuse_threshold);
}

bool FlapDamper::note_flap(std::uint64_t key, SimTime now) {
  if (!config_.enabled) return false;
  ++stats_.flaps;
  RouteState& s = routes_[key];
  s.penalty = std::min(decayed(s, now) + config_.penalty_per_flap,
                       config_.max_penalty);
  s.updated_at = now;
  if (!s.suppressed && s.penalty >= config_.suppress_threshold) {
    s.suppressed = true;
    s.suppressed_since = now;
    ++stats_.suppress_events;
    return true;
  }
  return false;
}

bool FlapDamper::suppressed(std::uint64_t key, SimTime now) {
  if (!config_.enabled) return false;
  RouteState* s = routes_.find(key);
  if (!s) return false;
  if (!s->suppressed) return false;
  if (decayed(*s, now) <= config_.reuse_threshold) {
    s->suppressed = false;
    ++stats_.reuse_events;
    stats_.suppressed_ms += now - s->suppressed_since;
    return false;
  }
  return true;
}

bool FlapDamper::would_suppress(std::uint64_t key, SimTime now) const {
  if (!config_.enabled) return false;
  const RouteState* s = routes_.find(key);
  return s && s->suppressed && decayed(*s, now) > config_.reuse_threshold;
}

SimTime FlapDamper::next_release_eta(SimTime now) const {
  SimTime eta = -1.0;
  for (const auto [key, s] : routes_) {
    (void)key;
    if (!s.suppressed) continue;
    const SimTime t = now + release_delay(s, now);
    if (eta < 0.0 || t < eta) eta = t;
  }
  return eta;
}

std::size_t FlapDamper::release_due(SimTime now) {
  std::vector<std::uint64_t> keys;
  for (const auto [key, s] : routes_) {
    if (s.suppressed) keys.push_back(key);
  }
  std::size_t released = 0;
  for (const std::uint64_t key : keys) {
    if (!suppressed(key, now)) ++released;
  }
  return released;
}

std::size_t FlapDamper::suppressed_count(SimTime now) {
  std::size_t n = 0;
  // Walk a key snapshot: suppressed() may release entries, and DenseMap
  // iteration must not observe concurrent state rewrites mid-walk.
  std::vector<std::uint64_t> keys;
  keys.reserve(routes_.size());
  for (const auto [key, s] : routes_) {
    (void)s;
    keys.push_back(key);
  }
  for (const std::uint64_t key : keys) {
    if (suppressed(key, now)) ++n;
  }
  return n;
}

}  // namespace idr
