#include "proto/common/counters.hpp"

// Counters is a plain aggregate; this translation unit exists so the
// header has a home in the library and stays in the build graph.
