// Route-flap damping for the DV family (RFC 2439 shape, per-route
// figure of merit): every time a route's selected state changes the
// route accrues `penalty_per_flap`; the penalty decays exponentially
// with `half_life_ms`. While the penalty is at or above
// `suppress_threshold` the route is SUPPRESSED: the node keeps using it
// for its own forwarding (local repair is not the problem flapping
// causes) but stops advertising it, so the churn a flapping link
// generates dies at the first damping hop instead of re-triggering a
// network-wide update wave per transition. Once the penalty decays to
// `reuse_threshold` the route is released and re-advertised.
//
// The damper composes with MRAI batching: flaps are recorded at
// RIB-apply time (every selected-state change counts, even several
// within one MRAI window), while suppression is evaluated at encode
// time (whatever update the MRAI window finally emits reflects the
// then-current suppression state).
//
// Off by default (enabled = false): no flat-topology transcript changes.
#pragma once

#include <cstdint>

#include "sim/engine.hpp"
#include "util/dense_map.hpp"

namespace idr {

struct DampingConfig {
  bool enabled = false;
  double penalty_per_flap = 1'000.0;
  double half_life_ms = 1'000.0;
  double suppress_threshold = 2'000.0;
  double reuse_threshold = 750.0;
  // Penalty ceiling; bounds the maximum suppression time after the last
  // flap to half_life_ms * log2(max_penalty / reuse_threshold).
  double max_penalty = 8'000.0;
};

struct DampingStats {
  std::uint64_t flaps = 0;            // selected-state changes recorded
  std::uint64_t suppress_events = 0;  // below -> at/above suppress crossings
  std::uint64_t reuse_events = 0;     // suppressed -> released crossings
  SimTime suppressed_ms = 0.0;        // total route-suppression time
};

class FlapDamper {
 public:
  explicit FlapDamper(DampingConfig config) : config_(config) {}

  [[nodiscard]] bool enabled() const noexcept { return config_.enabled; }

  // Record one selected-state change for the route keyed `key` at `now`.
  // Returns true when this flap pushed the route INTO suppression: that
  // crossing must still be advertised (the withdrawal neighbors key off);
  // only changes to an already-suppressed route stay silent.
  bool note_flap(std::uint64_t key, SimTime now);

  // Is the route currently suppressed? Decays the penalty to `now` and
  // performs the reuse-threshold release as a side effect, so callers
  // (encode paths, release timers) always see the up-to-date state.
  [[nodiscard]] bool suppressed(std::uint64_t key, SimTime now);

  // Pure suppression query (no release bookkeeping): true while the
  // key's decayed penalty still holds it above the reuse threshold.
  // Signature / change-gating paths use this so a const verdict never
  // mutates damper state.
  [[nodiscard]] bool would_suppress(std::uint64_t key, SimTime now) const;

  // Earliest time any currently-suppressed route will cross the reuse
  // threshold; < 0 when nothing is suppressed. Drives the release timer
  // that re-advertises damped routes (without it a released route would
  // stay withheld until the next unrelated trigger).
  [[nodiscard]] SimTime next_release_eta(SimTime now) const;

  // Decay and release every route whose penalty has reached the reuse
  // threshold; returns how many were released. Release timers call this
  // directly: the encode paths only query keys they still carry, so a
  // route that dropped out of the table (an IDRP destination with no
  // surviving candidate, say) would otherwise stay suppressed forever
  // and pin the timer.
  std::size_t release_due(SimTime now);

  [[nodiscard]] std::size_t suppressed_count(SimTime now);
  [[nodiscard]] const DampingStats& stats() const noexcept { return stats_; }

 private:
  struct RouteState {
    double penalty = 0.0;
    SimTime updated_at = 0.0;
    bool suppressed = false;
    SimTime suppressed_since = 0.0;
  };

  [[nodiscard]] double decayed(const RouteState& s, SimTime now) const;
  // ms from now until `s` decays to the reuse threshold.
  [[nodiscard]] SimTime release_delay(const RouteState& s,
                                      SimTime now) const;

  DampingConfig config_;
  DampingStats stats_;
  DenseMap<std::uint64_t, RouteState> routes_;
};

}  // namespace idr
