// Policy link-state database shared by the two link-state policy
// architectures (paper §5.3 LS hop-by-hop and §5.4 ORWG source routing).
//
// A Policy LSA is an AD's flooded advertisement: its live inter-AD
// adjacencies (with metrics) and its transit Policy Terms. The LSHH
// variant additionally publishes the origin's source route-selection
// criteria -- the consistency price of hop-by-hop link state the paper
// calls out in §5.3 (every AD must know the source's selection criteria
// to replicate its decision); ORWG deliberately omits them, keeping
// source policy private.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "core/synthesis.hpp"
#include "util/prng.hpp"
#include "policy/database.hpp"
#include "policy/term.hpp"
#include "topology/graph.hpp"
#include "util/dense_map.hpp"
#include "wire/codec.hpp"

namespace idr {

struct PolicyLsaAdjacency {
  AdId neighbor;
  std::uint32_t metric = 1;
};

struct PolicyLsa {
  AdId origin;
  std::uint32_t seq = 0;
  std::vector<PolicyLsaAdjacency> adjacencies;
  std::vector<PolicyTerm> terms;

  // Published source route-selection criteria (LSHH only).
  bool has_source_policy = false;
  std::vector<AdId> avoid;
  std::uint32_t max_hops = 32;
  bool prefer_min_cost = true;

  // Hierarchical (paper-scale) mode: stub ADs attached to this transit
  // origin. Stubs originate no LSA of their own; the flooded database
  // stays O(transit ADs) and stub reachability rides on the attachment
  // listing (empty in flat mode).
  std::vector<AdId> attached_stubs;

  // Origin authentication tag (paper §2.3: "the level of assurance
  // provided by the mechanisms will affect greatly the kind of policies
  // that ADs express"; security itself is cited to Estrin & Tsudik).
  // Zero when authentication is off. The tag is a toy MAC -- a keyed
  // hash over the LSA content -- standing in for a real one; what we
  // reproduce is the architectural effect, not the cryptography.
  std::uint64_t auth = 0;

  void encode(wire::Writer& w) const;
  static std::optional<PolicyLsa> decode(wire::Reader& r);
  [[nodiscard]] std::size_t encoded_size() const;
};

// Keyed tag over the LSA's content (auth field excluded).
std::uint64_t lsa_auth_tag(const PolicyLsa& lsa, std::uint64_t key);

class PolicyLsdb {
 public:
  // Inserts if newer than the stored LSA for the origin; returns whether
  // the database changed (callers flood exactly when it did).
  bool insert(PolicyLsa lsa);

  [[nodiscard]] const PolicyLsa* get(AdId origin) const;
  [[nodiscard]] std::size_t size() const noexcept { return lsas_.size(); }
  [[nodiscard]] std::size_t total_terms() const noexcept;
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto [origin, lsa] : lsas_) {
      (void)origin;
      fn(lsa);
    }
  }

 private:
  DenseMap<std::uint32_t, PolicyLsa> lsas_;
  std::uint64_t version_ = 0;  // bumped on every accepted insert
};

// SynthesisView over a PolicyLsdb. A link is usable only if both
// endpoints currently advertise it (bidirectional check); transit
// permission comes from the advertised Policy Terms -- unless a
// `registry` is supplied, in which case transit permission is taken
// from that configured PolicySet instead of from what the origin
// *claims* in its LSA. The registry stands in for out-of-band policy
// registration (the paper's §2.3 assurance spectrum): it is the
// defense that stops a route-leaking AD from widening its own transit
// policy simply by lying in its advertisement.
class LsdbView final : public SynthesisView {
 public:
  explicit LsdbView(const PolicyLsdb& db, std::size_t ad_count,
                    const PolicySet* registry = nullptr)
      : db_(db), ad_count_(ad_count), registry_(registry) {}

  [[nodiscard]] std::size_t ad_count() const override { return ad_count_; }
  void for_each_neighbor(
      AdId ad, const std::function<void(AdId, std::uint32_t)>& fn)
      const override;
  [[nodiscard]] std::optional<std::uint32_t> transit_cost(
      AdId ad, const FlowSpec& flow, AdId prev, AdId next) const override;

 private:
  const PolicyLsdb& db_;
  std::size_t ad_count_;
  const PolicySet* registry_ = nullptr;
};

}  // namespace idr
