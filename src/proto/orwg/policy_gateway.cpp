#include "proto/orwg/policy_gateway.hpp"

#include <algorithm>
#include <unordered_set>

namespace idr {

PolicyGateway::Verdict PolicyGateway::validate_and_install(
    PrHandle handle, const FlowSpec& flow, const std::vector<AdId>& path,
    std::size_t position) {
  if (position >= path.size() || path[position] != self_) {
    ++setups_rejected_;
    return Verdict::kMalformedPath;
  }
  if (validation_) {
    if (path.front() != flow.src || path.back() != flow.dst) {
      ++setups_rejected_;
      return Verdict::kMalformedPath;
    }
    std::unordered_set<std::uint32_t> seen;
    for (const AdId& ad : path) {
      if (!seen.insert(ad.v).second) {
        ++setups_rejected_;
        return Verdict::kMalformedPath;
      }
    }
  }
  const AdId prev = position == 0 ? kNoAd : path[position - 1];
  const AdId next = position + 1 == path.size() ? kNoAd : path[position + 1];
  // Endpoints carry their own traffic; intermediates must hold a
  // permitting local Policy Term (checked against the AD's *own* policy
  // database, not the flooded copy -- local policy is authoritative).
  std::uint32_t unit_cost = 0;
  if (validation_ && position != 0 && position + 1 != path.size()) {
    if (!topo_->can_transit(self_)) {
      ++setups_rejected_;
      return Verdict::kPolicyViolation;
    }
    const auto cost = policies_->transit_cost(self_, flow, prev, next);
    if (!cost) {
      ++setups_rejected_;
      return Verdict::kPolicyViolation;
    }
    unit_cost = *cost;  // the admitting PT's price, charged per packet
  }
  cache_[handle.v] = SetupState{flow, prev, next, unit_cost, 0, 0};
  ++setups_accepted_;
  return Verdict::kAccepted;
}

const SetupState* PolicyGateway::lookup(PrHandle handle, AdId arrived_from,
                                        AdId claimed_src,
                                        std::size_t bytes) {
  const auto it = cache_.find(handle.v);
  if (it == cache_.end()) {
    ++data_rejected_;
    return nullptr;
  }
  SetupState& state = it->second;
  if (state.prev != arrived_from || state.flow.src != claimed_src) {
    ++data_rejected_;
    return nullptr;
  }
  ++data_validated_;
  state.packets += 1;
  state.bytes += bytes;
  return &state;
}

std::vector<PolicyGateway::Invoice> PolicyGateway::invoices() const {
  std::unordered_map<std::uint32_t, Invoice> by_source;
  for (const auto& [handle, state] : cache_) {
    (void)handle;
    if (state.unit_cost == 0 || state.packets == 0) continue;
    Invoice& invoice = by_source[state.flow.src.v];
    invoice.source = state.flow.src;
    invoice.packets += state.packets;
    invoice.bytes += state.bytes;
    invoice.amount += state.packets * state.unit_cost;
  }
  std::vector<Invoice> out;
  out.reserve(by_source.size());
  for (auto& [src, invoice] : by_source) out.push_back(invoice);
  std::sort(out.begin(), out.end(),
            [](const Invoice& a, const Invoice& b) {
              return a.source < b.source;
            });
  return out;
}

std::uint64_t PolicyGateway::total_revenue() const noexcept {
  std::uint64_t total = 0;
  for (const auto& [handle, state] : cache_) {
    (void)handle;
    total += state.packets * state.unit_cost;
  }
  return total;
}

const SetupState* PolicyGateway::peek(PrHandle handle) const {
  const auto it = cache_.find(handle.v);
  return it == cache_.end() ? nullptr : &it->second;
}

void PolicyGateway::remove(PrHandle handle) { cache_.erase(handle.v); }

std::size_t PolicyGateway::flush() {
  const std::size_t n = cache_.size();
  cache_.clear();
  return n;
}

}  // namespace idr
