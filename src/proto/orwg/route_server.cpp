#include "proto/orwg/route_server.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/check.hpp"

namespace idr {

bool view_path_is_legal(const SynthesisView& view, const FlowSpec& flow,
                        std::span<const AdId> path,
                        const SynthesisOptions& options) {
  if (path.size() < 2) return false;
  if (path.front() != flow.src || path.back() != flow.dst) return false;
  if (path.size() > options.max_hops) return false;
  std::unordered_set<std::uint32_t> seen;
  for (const AdId& ad : path) {
    if (!seen.insert(ad.v).second) return false;
  }
  for (std::size_t i = 1; i + 1 < path.size(); ++i) {
    if (std::find(options.avoid.begin(), options.avoid.end(), path[i]) !=
        options.avoid.end()) {
      return false;
    }
  }
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    bool live = false;
    view.for_each_neighbor(path[i], [&](AdId nbr, std::uint32_t) {
      if (nbr == path[i + 1]) live = true;
    });
    if (!live) return false;
  }
  for (std::size_t i = 1; i + 1 < path.size(); ++i) {
    if (!view.transit_cost(path[i], flow, path[i - 1], path[i + 1])) {
      return false;
    }
  }
  return true;
}

SynthesisOptions RouteServer::options(std::uint64_t budget) const {
  SynthesisOptions opt;
  opt.max_hops = source_policy_->max_hops;
  opt.avoid = source_policy_->avoid;
  opt.minimize_cost = source_policy_->prefer_min_cost;
  opt.expansion_budget = budget;
  return opt;
}

bool RouteServer::still_valid(const FlowSpec& flow,
                              const CacheEntry& entry) const {
  const LsdbView view(*db_, ad_count_, config_.registry);
  return view_path_is_legal(view, flow, entry.path, options(0));
}

std::optional<RouteServer::Result> RouteServer::route(const FlowSpec& flow) {
  IDR_CHECK_MSG(flow.src == self_, "route server serves its own AD only");
  const std::uint64_t key = cache_key(flow);
  if (const auto it = cache_.find(key); it != cache_.end()) {
    CacheEntry& entry = it->second;
    if (entry.db_version == db_->version()) {
      ++cache_hits_;
      return Result{entry.path, entry.cost, /*from_cache=*/true};
    }
    // Database moved on: revalidate the cached PR (cheap) before falling
    // back to resynthesis (expensive).
    ++revalidations_;
    if (still_valid(flow, entry)) {
      entry.db_version = db_->version();
      ++cache_hits_;
      return Result{entry.path, entry.cost, /*from_cache=*/true};
    }
    cache_.erase(it);
  }

  ++synth_calls_;
  const LsdbView view(*db_, ad_count_, config_.registry);
  const SynthesisResult result =
      synthesize_route(view, flow, options(config_.on_demand_budget));
  total_expansions_ += result.expansions;
  if (!result.found()) return std::nullopt;
  cache_[key] = CacheEntry{result.path, result.cost, db_->version()};
  return Result{result.path, result.cost, /*from_cache=*/false};
}

std::optional<RouteServer::Result> RouteServer::route_avoiding(
    const FlowSpec& flow,
    std::span<const std::pair<AdId, AdId>> dead_links) {
  IDR_CHECK_MSG(flow.src == self_, "route server serves its own AD only");
  ++synth_calls_;
  const LsdbView view(*db_, ad_count_, config_.registry);
  SynthesisOptions opt = options(config_.on_demand_budget);
  opt.avoid_links.assign(dead_links.begin(), dead_links.end());
  const SynthesisResult result = synthesize_route(view, flow, opt);
  total_expansions_ += result.expansions;
  if (!result.found()) return std::nullopt;
  cache_[cache_key(flow)] =
      CacheEntry{result.path, result.cost, db_->version()};
  return Result{result.path, result.cost, /*from_cache=*/false};
}

void RouteServer::precompute(const std::vector<AdId>& dests) {
  if (config_.strategy == SynthesisStrategy::kOnDemand) return;
  const LsdbView view(*db_, ad_count_, config_.registry);
  for (AdId dst : dests) {
    if (dst == self_) continue;
    FlowSpec flow;
    flow.src = self_;
    flow.dst = dst;
    const std::uint64_t key = cache_key(flow);
    if (cache_.contains(key)) continue;
    ++synth_calls_;
    const SynthesisResult result =
        synthesize_route(view, flow, options(config_.precompute_budget));
    total_expansions_ += result.expansions;
    if (result.found()) {
      cache_[key] = CacheEntry{result.path, result.cost, db_->version()};
    }
  }
}

}  // namespace idr
