// ORWG Route Server (paper §5.4.1): synthesizes Policy Routes from the
// flooded policy/topology database on behalf of its AD's hosts.
//
// The paper prescribes "a combination of precomputation and on-demand
// computation": precomputation with pruning heuristics (bounded expansion
// budgets) covers popular destinations, and on-demand synthesis handles
// the misses. Synthesized routes are cached; because PRs are long-lived
// the cache is revalidated cheaply against the current database version
// (walk the path; check links and PTs still permit) instead of being
// recomputed, and only resynthesized when revalidation fails.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/synthesis.hpp"
#include "proto/orwg/lsdb.hpp"

namespace idr {

enum class SynthesisStrategy : std::uint8_t {
  kOnDemand = 0,    // synthesize at first use only
  kPrecompute = 1,  // bulk precompute; misses fail over to on-demand
  kHybrid = 2,      // precompute popular destinations + on-demand misses
};

struct RouteServerConfig {
  SynthesisStrategy strategy = SynthesisStrategy::kOnDemand;
  std::uint64_t on_demand_budget = 500'000;
  // Pruned budget per destination during precomputation (the paper's
  // "heuristics to prune the search").
  std::uint64_t precompute_budget = 25'000;
  // Registered ground-truth policy (nullptr = trust LSA-advertised
  // terms). The route-leak defense for source-routed designs: routes
  // are synthesized and revalidated against what each AD *registered*,
  // so a lying LSA cannot attract other sources' Policy Routes.
  const PolicySet* registry = nullptr;
};

class RouteServer {
 public:
  RouteServer(AdId self, const PolicyLsdb* db, std::size_t ad_count,
              const SourcePolicy* source_policy, RouteServerConfig config)
      : self_(self),
        db_(db),
        ad_count_(ad_count),
        source_policy_(source_policy),
        config_(config) {}

  struct Result {
    std::vector<AdId> path;
    std::uint64_t cost = 0;
    bool from_cache = false;
  };

  // A Policy Route for the flow (flow.src must be this AD), from cache if
  // still valid, else synthesized on demand.
  [[nodiscard]] std::optional<Result> route(const FlowSpec& flow);

  // Fast repair (paper §5.4.1: PRs break when policy/topology changes):
  // synthesize around links a data-plane error reported dead, bypassing
  // the (possibly stale) cache; the fresh route replaces the cached one.
  [[nodiscard]] std::optional<Result> route_avoiding(
      const FlowSpec& flow,
      std::span<const std::pair<AdId, AdId>> dead_links);

  // Precompute routes toward the given destinations for the default
  // traffic class, under the pruned budget.
  void precompute(const std::vector<AdId>& dests);

  // Statistics.
  [[nodiscard]] std::uint64_t synth_calls() const noexcept {
    return synth_calls_;
  }
  [[nodiscard]] std::uint64_t cache_hits() const noexcept {
    return cache_hits_;
  }
  [[nodiscard]] std::uint64_t revalidations() const noexcept {
    return revalidations_;
  }
  [[nodiscard]] std::uint64_t total_expansions() const noexcept {
    return total_expansions_;
  }
  [[nodiscard]] std::size_t cache_size() const noexcept {
    return cache_.size();
  }

 private:
  struct CacheEntry {
    std::vector<AdId> path;
    std::uint64_t cost = 0;
    std::uint64_t db_version = 0;  // PolicyLsdb version at (re)validation
  };

  [[nodiscard]] static std::uint64_t cache_key(const FlowSpec& flow) noexcept {
    return (static_cast<std::uint64_t>(flow.dst.v) << 32) |
           traffic_class_of(flow).index();
  }
  [[nodiscard]] SynthesisOptions options(std::uint64_t budget) const;
  [[nodiscard]] bool still_valid(const FlowSpec& flow,
                                 const CacheEntry& entry) const;

  AdId self_;
  const PolicyLsdb* db_;
  std::size_t ad_count_;
  const SourcePolicy* source_policy_;
  RouteServerConfig config_;
  std::unordered_map<std::uint64_t, CacheEntry> cache_;
  std::uint64_t synth_calls_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t revalidations_ = 0;
  std::uint64_t total_expansions_ = 0;
};

// Path legality from a view's perspective (used for cache revalidation
// and by LSHH): loop-free, every consecutive hop is a live view link,
// every intermediate AD's advertised PTs permit the flow in context, and
// the path respects the supplied options (avoid list, hop budget).
bool view_path_is_legal(const SynthesisView& view, const FlowSpec& flow,
                        std::span<const AdId> path,
                        const SynthesisOptions& options);

}  // namespace idr
