#include "proto/orwg/orwg_node.hpp"

#include <algorithm>
#include <bit>

#include "util/check.hpp"

namespace idr {
namespace {

void encode_flow(wire::Writer& w, const FlowSpec& flow) {
  w.u32(flow.src.v);
  w.u32(flow.dst.v);
  w.u8(static_cast<std::uint8_t>(flow.qos));
  w.u8(static_cast<std::uint8_t>(flow.uci));
  w.u8(flow.hour);
}

FlowSpec decode_flow(wire::Reader& r) {
  FlowSpec flow;
  flow.src = AdId{r.u32()};
  flow.dst = AdId{r.u32()};
  flow.qos = static_cast<Qos>(r.u8());
  flow.uci = static_cast<UserClass>(r.u8());
  flow.hour = r.u8();
  return flow;
}

void encode_path(wire::Writer& w, const std::vector<AdId>& path) {
  std::vector<std::uint32_t> raw;
  raw.reserve(path.size());
  for (AdId ad : path) raw.push_back(ad.v);
  w.u32_list(raw);
}

std::vector<AdId> decode_path(wire::Reader& r) {
  std::vector<AdId> path;
  for (std::uint32_t v : r.u32_list()) path.push_back(AdId{v});
  return path;
}

}  // namespace

void OrwgNode::start() {
  gateway_ = std::make_unique<PolicyGateway>(self(), &topo(), policies_);
  route_server_ = std::make_unique<RouteServer>(
      self(), &lsdb_, topo().ad_count(), &policies_->source_policy(self()),
      config_.route_server);
  originate_lsa();
  schedule_refresh();
}

void OrwgNode::schedule_refresh() {
  if (config_.periodic_refresh_ms <= 0.0) return;
  schedule_guarded(config_.periodic_refresh_ms, [this] {
    originate_lsa(MsgClass::kRefresh);
    schedule_refresh();
  });
}

void OrwgNode::sign_lsa(PolicyLsa& lsa) const {
  // Signed with OUR key whatever the LSA claims as origin, so a forged
  // victim-LSA carries a tag the victim's key cannot verify.
  if (config_.lsa_keys && self().v < config_.lsa_keys->size()) {
    lsa.auth = lsa_auth_tag(lsa, (*config_.lsa_keys)[self().v]);
  }
}

void OrwgNode::originate_lsa(MsgClass cls) {
  // Hierarchical mode: stubs are silent; their reachability rides on the
  // attachment listings in their transit neighbors' LSAs.
  if (config_.hierarchical && !is_transit()) return;
  PolicyLsa lsa;
  lsa.origin = self();
  lsa.seq = ++my_seq_;
  for (const Adjacency& adj : live_neighbors()) {
    if (config_.hierarchical && !topo().can_transit(adj.neighbor)) {
      lsa.attached_stubs.push_back(adj.neighbor);
      continue;
    }
    lsa.adjacencies.push_back(
        PolicyLsaAdjacency{adj.neighbor, topo().link(adj.link).metric});
  }
  const auto terms = policies_->terms(self());
  lsa.terms.assign(terms.begin(), terms.end());
  // Source route-selection criteria stay private (contrast LSHH).
  const Misbehavior mis = net().active_misbehavior(self());
  if (mis == Misbehavior::kRouteLeak) {
    // Route leak: advertise unconditional transit in place of the
    // registered terms, attracting other sources' Policy Routes.
    lsa.terms.clear();
    lsa.terms.push_back(open_transit_term(self(), 999));
  }
  sign_lsa(lsa);
  lsdb_.insert(lsa);
  flood_lsa(lsa, kNoAd, cls);
  if (mis == Misbehavior::kFalseOrigin) forge_victim_lsa();
}

void OrwgNode::originate_if_changed() {
  // Hold-down re-flood scoping: a window that ends with the same link
  // view the database already describes (the link flapped down and back)
  // originates nothing -- no seq bump, no network-wide re-flood.
  if (config_.hierarchical && !is_transit()) return;
  if (const PolicyLsa* current = lsdb_.get(self())) {
    std::vector<PolicyLsaAdjacency> adjs;
    std::vector<AdId> stubs;
    for (const Adjacency& adj : live_neighbors()) {
      if (config_.hierarchical && !topo().can_transit(adj.neighbor)) {
        stubs.push_back(adj.neighbor);
        continue;
      }
      adjs.push_back(
          PolicyLsaAdjacency{adj.neighbor, topo().link(adj.link).metric});
    }
    const bool same =
        adjs.size() == current->adjacencies.size() &&
        stubs.size() == current->attached_stubs.size() &&
        std::equal(adjs.begin(), adjs.end(), current->adjacencies.begin(),
                   [](const PolicyLsaAdjacency& a,
                      const PolicyLsaAdjacency& b) {
                     return a.neighbor == b.neighbor && a.metric == b.metric;
                   }) &&
        std::equal(stubs.begin(), stubs.end(),
                   current->attached_stubs.begin());
    if (same) {
      ++originations_suppressed_;
      return;
    }
  }
  originate_lsa();
}

void OrwgNode::forge_victim_lsa() {
  // LS origin forgery (hijack): flood an LSA claiming to BE the victim,
  // sequence-leapfrogged past the victim's fight-back, with no
  // adjacencies -- every undefended route server drops the victim from
  // its map.
  const AdId victim = net().misbehavior_victim(self());
  if (!victim.valid() || victim == self()) return;
  PolicyLsa forged;
  forged.origin = victim;
  const PolicyLsa* have = lsdb_.get(victim);
  forged.seq = (have ? have->seq : 0) + 64;
  sign_lsa(forged);  // our key, not the victim's -- detectably wrong
  lsdb_.insert(forged);
  flood_lsa(forged, kNoAd);
}

void OrwgNode::accept_lsa(PolicyLsa lsa, AdId from) {
  if (config_.lsa_keys) {
    if (lsa.origin.v >= config_.lsa_keys->size() ||
        lsa.auth != lsa_auth_tag(lsa, (*config_.lsa_keys)[lsa.origin.v])) {
      ++lsas_rejected_auth_;
      net().note_defense_rejection(self());
      return;
    }
  }
  if (lsa.origin == self()) {
    // Sequence-number recovery after a cold restart: our own pre-crash
    // LSA came back ahead of our (reset) counter. Strictly greater: an
    // echo of our current instance must not re-trigger origination.
    if (lsa.seq > my_seq_) {
      my_seq_ = lsa.seq;
      originate_lsa();
    }
    return;
  }
  if (const PolicyLsa* have = lsdb_.get(lsa.origin);
      have && lsa.seq < have->seq && from.valid()) {
    // Answer a stale copy with the newer database copy (OSPF's rule).
    // This is what makes cold-restart recovery robust on an unreliable
    // service: if the one-shot DB sync carrying the origin's pre-crash
    // LSA is lost, every periodic refresh it sends at a low sequence
    // number re-triggers this reply until fight-back succeeds.
    wire::Writer w;
    w.u8(kMsgLsa);
    have->encode(w);
    send_pdu(from, std::move(w));
    return;
  }
  if (lsdb_.insert(lsa)) flood_lsa(lsa, from);
}

void OrwgNode::flood_lsa(const PolicyLsa& lsa, AdId except, MsgClass cls) {
  if (config_.lsa_batch_ms <= 0.0) {
    wire::Writer w;
    w.u8(kMsgLsa);
    lsa.encode(w);
    if (!config_.hierarchical) {
      send_to_neighbors(w.bytes(), except, cls);
      return;
    }
    // Stub-suppressed flooding: the flood only visits the transit
    // subgraph (stubs keep no database).
    Payload payload;
    for_each_live_neighbor([&](const Adjacency& adj) {
      if (adj.neighbor == except) return;
      if (!topo().can_transit(adj.neighbor)) return;
      if (!payload) payload = make_payload(w.bytes());
      net().send(self(), adj.neighbor, payload, cls);
    });
    return;
  }
  pending_floods_.emplace_back(lsa, except);
  if (!flush_scheduled_) {
    flush_scheduled_ = true;
    schedule_guarded(config_.lsa_batch_ms, [this] { flush_pending_floods(); });
  }
}

void OrwgNode::flush_pending_floods() {
  flush_scheduled_ = false;
  const auto batch = std::move(pending_floods_);
  pending_floods_.clear();
  if (batch.empty()) return;
  for (const Adjacency& adj : live_neighbors()) {
    if (config_.hierarchical && !topo().can_transit(adj.neighbor)) continue;
    wire::Writer w;
    w.u8(kMsgLsaBatch);
    std::uint16_t count = 0;
    wire::Writer body;
    for (const auto& [lsa, except] : batch) {
      if (except == adj.neighbor) continue;
      lsa.encode(body);
      ++count;
    }
    if (count == 0) continue;
    w.u16(count);
    w.raw(body.bytes());
    send_pdu(adj.neighbor, std::move(w));
  }
}

void OrwgNode::on_link_change(AdId neighbor, bool up) {
  if (!up && config_.gr.enabled && net().in_grace(neighbor)) {
    // Graceful restart: the in-grace neighbor still counts as alive, so
    // re-originating now would change nothing -- skip it (database and
    // route-server cache stay frozen) and re-examine just past grace
    // expiry. A resync-in-time makes the re-examination a no-op; a
    // re-crash arms a later timer covering the extended window.
    ++gr_retained_;
    schedule_guarded(config_.gr.grace_ms + 0.1,
                     [this] { originate_if_changed(); });
    return;
  }
  if (up && config_.gr.enabled) ++gr_resyncs_;
  if (config_.link_holddown_ms > 0.0) {
    if (!holddown_scheduled_) {
      holddown_scheduled_ = true;
      schedule_guarded(config_.link_holddown_ms, [this] {
        holddown_scheduled_ = false;
        originate_if_changed();
      });
    }
  } else {
    originate_lsa();
  }
  if (config_.hierarchical && !topo().can_transit(neighbor)) return;
  if (up && neighbor.valid()) {
    // DB sync for a neighbor that just (re)appeared, so a cold-restarted
    // route server rebuilds the full map instead of only hearing future
    // changes.
    lsdb_.for_each([&](const PolicyLsa& lsa) {
      wire::Writer w;
      w.u8(kMsgLsa);
      lsa.encode(w);
      send_pdu(neighbor, std::move(w));
    });
  }
}

// --- Policy Route establishment ---------------------------------------------

void OrwgNode::note_gr_cache_hit(bool from_cache) {
  if (from_cache && config_.gr.enabled && net().in_grace_count() > 0) {
    ++gr_memoized_;
  }
}

bool OrwgNode::establish_pr(const FlowSpec& flow, PendingPr pending) {
  std::optional<std::vector<AdId>> route_path;
  if (config_.hierarchical) {
    route_path = policy_route(flow);
  } else if (const auto route = route_server_->route(flow)) {
    note_gr_cache_hit(route->from_cache);
    route_path = route->path;
  }
  if (!route_path || route_path->size() < 2) {
    ++route_failures_;
    return false;
  }
  const PrHandle handle{(static_cast<std::uint64_t>(self().v) << 32) |
                        ++next_handle_};
  const auto verdict =
      gateway_->validate_and_install(handle, flow, *route_path, 0);
  IDR_CHECK(verdict == PolicyGateway::Verdict::kAccepted);
  pending.flow = flow;
  pending.path = std::move(*route_path);
  pending.setup_sent_at = net().engine().now();
  pending_[handle.v] = std::move(pending);
  transmit_setup(handle);
  schedule_setup_retry(handle);
  return true;
}

void OrwgNode::transmit_setup(PrHandle handle) {
  const auto it = pending_.find(handle.v);
  if (it == pending_.end()) return;
  const PendingPr& pr = it->second;
  wire::Writer w;
  w.u8(kMsgSetup);
  w.u64(handle.v);
  encode_flow(w, pr.flow);
  encode_path(w, pr.path);
  w.u16(1);  // position of the receiving AD on the path
  send_pdu(pr.path[1], std::move(w));
}

void OrwgNode::schedule_setup_retry(PrHandle handle) {
  schedule_guarded(config_.setup_retry_ms, [this, handle] {
    const auto it = pending_.find(handle.v);
    if (it == pending_.end()) return;  // acked or nakked meanwhile
    if (++it->second.retries > config_.setup_max_retries) {
      ++setup_timeouts_;
      gateway_->remove(handle);
      pending_.erase(it);
      return;
    }
    transmit_setup(handle);
    schedule_setup_retry(handle);
  });
}

bool OrwgNode::send_flow(const FlowSpec& flow, std::uint32_t packets) {
  IDR_CHECK(flow.src == self());
  const std::uint64_t key = flow_key(flow);
  if (const auto it = active_.find(key); it != active_.end()) {
    send_data_packets(it->second, flow, packets);
    return true;
  }
  if (const auto pit = std::find_if(
          pending_.begin(), pending_.end(),
          [&](const auto& kv) { return flow_key(kv.second.flow) == key; });
      pit != pending_.end()) {
    pit->second.packets_waiting += packets;
    return true;
  }
  PendingPr pending;
  pending.packets_waiting = packets;
  return establish_pr(flow, std::move(pending));
}

bool OrwgNode::send_data(const FlowSpec& flow, std::uint32_t seq,
                         std::vector<std::uint8_t> payload) {
  IDR_CHECK(flow.src == self());
  const std::uint64_t key = flow_key(flow);
  if (const auto it = active_.find(key); it != active_.end()) {
    send_one_data(it->second.path, it->second.handle, self(), seq, payload);
    return true;
  }
  if (const auto pit = std::find_if(
          pending_.begin(), pending_.end(),
          [&](const auto& kv) { return flow_key(kv.second.flow) == key; });
      pit != pending_.end()) {
    pit->second.queued.emplace_back(seq, std::move(payload));
    return true;
  }
  PendingPr pending;
  pending.queued.emplace_back(seq, std::move(payload));
  return establish_pr(flow, std::move(pending));
}

void OrwgNode::teardown(const FlowSpec& flow) {
  const auto it = active_.find(flow_key(flow));
  if (it == active_.end()) return;
  const PrHandle handle = it->second.handle;
  const std::vector<AdId> path = it->second.path;
  active_.erase(it);
  gateway_->remove(handle);
  wire::Writer w;
  w.u8(kMsgTeardown);
  w.u64(handle.v);
  send_pdu(path[1], std::move(w));
}

std::optional<std::vector<AdId>> OrwgNode::policy_route(
    const FlowSpec& flow) {
  if (config_.hierarchical) {
    if (is_transit()) return hierarchical_route(flow);
    // A stub has no database; its route-server query goes to its transit
    // parent (lowest-id live transit neighbor -- the same deterministic
    // choice every other AD derives from the attachment rule).
    std::optional<AdId> parent;
    for (const Adjacency& adj : live_neighbors()) {
      if (adj.neighbor == flow.dst) return std::vector<AdId>{self(), flow.dst};
      if (topo().can_transit(adj.neighbor) &&
          (!parent || adj.neighbor < *parent)) {
        parent = adj.neighbor;
      }
    }
    if (!parent) return std::nullopt;
    // forwarding_node: during the parent's grace window the query is
    // answered by its frozen pre-crash instance -- the route server
    // serving memoized synthesis from the stale snapshot.
    auto* p = static_cast<OrwgNode*>(net().forwarding_node(*parent));
    if (!p) return std::nullopt;
    return p->hierarchical_route(flow);
  }
  const auto route = route_server_->route(flow);
  if (!route) return std::nullopt;
  note_gr_cache_hit(route->from_cache);
  return route->path;
}

AdId OrwgNode::attachment(AdId ad) {
  if (lsdb_.get(ad)) return ad;  // transit ADs own themselves
  if (attach_version_ != lsdb_.version()) {
    attach_.clear();
    lsdb_.for_each([&](const PolicyLsa& lsa) {
      for (AdId stub : lsa.attached_stubs) {
        auto [owner, inserted] = attach_.try_emplace(stub.v, lsa.origin.v);
        if (!inserted && lsa.origin.v < owner) owner = lsa.origin.v;
      }
    });
    attach_version_ = lsdb_.version();
  }
  const std::uint32_t* owner = attach_.find(ad.v);
  return owner ? AdId{*owner} : kNoAd;
}

std::optional<std::vector<AdId>> OrwgNode::hierarchical_route(
    const FlowSpec& flow) {
  const AdId owner_src = attachment(flow.src);
  const AdId owner_dst = attachment(flow.dst);
  if (!owner_src.valid() || !owner_dst.valid()) return std::nullopt;
  std::vector<AdId> path;
  if (owner_src == owner_dst) {
    // Both endpoints hang off the same transit AD.
    path.push_back(flow.src);
    if (flow.src != owner_src && flow.dst != owner_dst) {
      path.push_back(owner_src);
    }
    path.push_back(flow.dst);
    return path;
  }
  FlowSpec synth = flow;
  synth.src = owner_src;
  synth.dst = owner_dst;
  const auto route = route_server_->route(synth);
  if (!route) return std::nullopt;
  note_gr_cache_hit(route->from_cache);
  if (flow.src != owner_src) path.push_back(flow.src);
  path.insert(path.end(), route->path.begin(), route->path.end());
  if (flow.dst != owner_dst) path.push_back(flow.dst);
  return path;
}

void OrwgNode::precompute_all() {
  std::vector<AdId> dests;
  dests.reserve(topo().ad_count());
  for (const Ad& ad : topo().ads()) dests.push_back(ad.id);
  route_server_->precompute(dests);
}

// --- Data plane --------------------------------------------------------------

void OrwgNode::send_one_data(const std::vector<AdId>& path, PrHandle handle,
                             AdId claimed_src, std::uint32_t seq,
                             std::span<const std::uint8_t> payload) {
  wire::Writer w;
  w.u8(kMsgData);
  w.u64(handle.v);
  w.u32(claimed_src.v);
  w.u32(seq);
  w.u64(std::bit_cast<std::uint64_t>(net().engine().now()));
  w.u16(static_cast<std::uint16_t>(payload.size()));
  w.raw(payload);
  net().send(self(), path[1], std::move(w).take());
}

void OrwgNode::send_data_packets(const ActivePr& pr, const FlowSpec& flow,
                                 std::uint32_t packets) {
  const std::vector<std::uint8_t> padding(config_.default_payload_bytes, 0);
  for (std::uint32_t i = 0; i < packets; ++i) {
    send_one_data(pr.path, pr.handle, flow.src, ++data_seq_, padding);
  }
}

void OrwgNode::send_error(PrHandle handle, AdId to, AdId report_from,
                          AdId dead_next) {
  wire::Writer w;
  w.u8(kMsgError);
  w.u64(handle.v);
  w.u32(report_from.v);
  w.u32(dead_next.v);
  send_pdu(to, std::move(w));
}

void OrwgNode::fail_active_pr(PrHandle handle, AdId report_from,
                              AdId dead_next) {
  ++pr_errors_;
  gateway_->remove(handle);
  const auto it =
      std::find_if(active_.begin(), active_.end(), [&](const auto& kv) {
        return kv.second.handle == handle;
      });
  if (it == active_.end()) return;
  const FlowSpec flow = it->second.flow;
  active_.erase(it);

  // Fast repair (IDPR-style): the error names the dead link, which the
  // flooded database may not reflect yet; resynthesize around it and set
  // the replacement PR up immediately.
  if (!report_from.valid() || !dead_next.valid()) return;
  const std::pair<AdId, AdId> dead{report_from, dead_next};
  const auto repaired = route_server_->route_avoiding(flow, {&dead, 1});
  if (!repaired) return;
  ++pr_repairs_;
  const PrHandle fresh{(static_cast<std::uint64_t>(self().v) << 32) |
                       ++next_handle_};
  const auto verdict =
      gateway_->validate_and_install(fresh, flow, repaired->path, 0);
  IDR_CHECK(verdict == PolicyGateway::Verdict::kAccepted);
  PendingPr pending;
  pending.flow = flow;
  pending.path = repaired->path;
  pending.setup_sent_at = net().engine().now();
  pending_[fresh.v] = std::move(pending);
  transmit_setup(fresh);
  schedule_setup_retry(fresh);
}

// --- Message dispatch ---------------------------------------------------------

void OrwgNode::on_message(AdId from, std::span<const std::uint8_t> bytes) {
  wire::Reader r(bytes);
  const std::uint8_t type = r.u8();
  if (!r.ok()) {
    drop_malformed();
    return;
  }
  switch (type) {
    case kMsgLsa: {
      auto lsa = PolicyLsa::decode(r);
      if (!lsa.has_value()) {
        drop_malformed();
        return;
      }
      accept_lsa(std::move(*lsa), from);
      break;
    }
    case kMsgLsaBatch: {
      // Decode the whole batch before accepting any LSA from it: a batch
      // truncated mid-LSA must not partially apply.
      const std::uint16_t count = r.u16();
      std::vector<PolicyLsa> lsas;
      if (r.ok()) {
        lsas.reserve(count);
        for (std::uint16_t i = 0; i < count && r.ok(); ++i) {
          auto lsa = PolicyLsa::decode(r);
          if (!lsa.has_value()) break;
          lsas.push_back(std::move(*lsa));
        }
      }
      if (!r.ok() || lsas.size() != count) {
        drop_malformed();
        return;
      }
      for (PolicyLsa& lsa : lsas) accept_lsa(std::move(lsa), from);
      break;
    }
    case kMsgSetup:
      handle_setup(from, r);
      break;
    case kMsgData:
      handle_data(from, r);
      break;
    case kMsgAck:
      handle_ack(r);
      break;
    case kMsgNak:
      handle_nak(r);
      break;
    case kMsgTeardown:
      handle_teardown(r);
      break;
    case kMsgError:
      handle_error(r);
      break;
    default:
      // Unknown message type (stray or bit-flipped frame): count + drop.
      drop_malformed();
  }
}

void OrwgNode::handle_setup(AdId from, wire::Reader& r) {
  const PrHandle handle{r.u64()};
  const FlowSpec flow = decode_flow(r);
  const std::vector<AdId> path = decode_path(r);
  const std::uint16_t position = r.u16();
  if (!r.ok()) {
    drop_malformed();
    return;
  }

  auto verdict = gateway_->validate_and_install(handle, flow, path, position);
  if (verdict != PolicyGateway::Verdict::kAccepted &&
      net().misbehaving_as(self(), Misbehavior::kRouteLeak)) {
    // Route leak, source-routed style: the complicit gateway installs the
    // setup its registered Policy Terms would have refused.
    gateway_->set_validation(false);
    verdict = gateway_->validate_and_install(handle, flow, path, position);
    gateway_->set_validation(true);
  }
  if (verdict != PolicyGateway::Verdict::kAccepted) {
    wire::Writer w;
    w.u8(kMsgNak);
    w.u64(handle.v);
    w.u8(static_cast<std::uint8_t>(verdict));
    send_pdu(from, std::move(w));
    return;
  }
  if (position + 1u == path.size()) {
    // We are the destination: confirm the PR back toward the source.
    wire::Writer w;
    w.u8(kMsgAck);
    w.u64(handle.v);
    send_pdu(from, std::move(w));
    return;
  }
  wire::Writer w;
  w.u8(kMsgSetup);
  w.u64(handle.v);
  encode_flow(w, flow);
  encode_path(w, path);
  w.u16(static_cast<std::uint16_t>(position + 1));
  send_pdu(path[position + 1], std::move(w));
}

void OrwgNode::handle_ack(wire::Reader& r) {
  const PrHandle handle{r.u64()};
  if (!r.ok()) {
    drop_malformed();
    return;
  }
  const SetupState* state = gateway_->peek(handle);
  if (!state) return;  // PR vanished while the ack was in flight
  if (state->prev.valid()) {
    wire::Writer w;
    w.u8(kMsgAck);
    w.u64(handle.v);
    send_pdu(state->prev, std::move(w));
    return;
  }
  // We are the source: the PR is established.
  const auto it = pending_.find(handle.v);
  if (it == pending_.end()) return;  // duplicate ack (setup was retried)
  PendingPr pr = std::move(it->second);
  pending_.erase(it);
  setup_latency_ms_.add(net().engine().now() - pr.setup_sent_at);
  ActivePr active{handle, pr.flow, pr.path};
  active_[flow_key(pr.flow)] = active;
  if (pr.packets_waiting > 0) {
    send_data_packets(active, pr.flow, pr.packets_waiting);
  }
  for (auto& [seq, payload] : pr.queued) {
    send_one_data(active.path, handle, self(), seq, payload);
  }
}

void OrwgNode::handle_nak(wire::Reader& r) {
  const PrHandle handle{r.u64()};
  const std::uint8_t reason = r.u8();
  if (!r.ok()) {
    drop_malformed();
    return;
  }
  const SetupState* state = gateway_->peek(handle);
  if (!state) return;
  const AdId prev = state->prev;
  gateway_->remove(handle);
  if (prev.valid()) {
    wire::Writer w;
    w.u8(kMsgNak);
    w.u64(handle.v);
    w.u8(reason);
    send_pdu(prev, std::move(w));
    return;
  }
  // We are the source: the setup failed downstream.
  ++setup_naks_;
  const auto it = pending_.find(handle.v);
  if (it != pending_.end()) {
    active_.erase(flow_key(it->second.flow));
    pending_.erase(it);
  }
}

void OrwgNode::handle_teardown(wire::Reader& r) {
  const PrHandle handle{r.u64()};
  if (!r.ok()) {
    drop_malformed();
    return;
  }
  const SetupState* state = gateway_->peek(handle);
  if (!state) return;
  const AdId next = state->next;
  gateway_->remove(handle);
  if (next.valid()) {
    wire::Writer w;
    w.u8(kMsgTeardown);
    w.u64(handle.v);
    send_pdu(next, std::move(w));
  }
}

void OrwgNode::handle_error(wire::Reader& r) {
  const PrHandle handle{r.u64()};
  const AdId report_from{r.u32()};
  const AdId dead_next{r.u32()};
  if (!r.ok()) {
    drop_malformed();
    return;
  }
  const SetupState* state = gateway_->peek(handle);
  if (!state) return;
  const AdId prev = state->prev;
  if (prev.valid()) {
    gateway_->remove(handle);
    send_error(handle, prev, report_from, dead_next);
    return;
  }
  // We are the source: the PR broke mid-flow; repair it.
  fail_active_pr(handle, report_from, dead_next);
}

void OrwgNode::handle_data(AdId from, wire::Reader& r) {
  const PrHandle handle{r.u64()};
  const AdId claimed_src{r.u32()};
  const std::uint32_t seq = r.u32();
  const auto sent_at = std::bit_cast<double>(r.u64());
  const std::uint16_t payload_len = r.u16();
  if (!r.ok()) {
    drop_malformed();
    return;
  }

  const SetupState* state =
      gateway_->lookup(handle, from, claimed_src, payload_len);
  if (!state) {
    ++data_drops_;
    // Unknown handle: this AD holds no state for the PR -- typically
    // because a restart wiped its gateway table while upstream ADs (and
    // the source) still believe the PR is established. Silence here
    // would strand the source retransmitting into a black hole, so
    // report the broken PR back the way the data came; each upstream
    // hop unwinds its own state and the source re-establishes. kNoAd as
    // dead_next tells the source no link actually died -- plain
    // resynthesis, no route_avoiding exclusion.
    if (from.valid()) {
      send_error(handle, from, self(), kNoAd);
    }
    return;
  }
  if (!state->next.valid()) {
    ++delivered_;
    delivery_latency_ms_.add(net().engine().now() - sent_at);
    if (delivery_handler_) {
      std::vector<std::uint8_t> payload(payload_len);
      for (auto& b : payload) b = r.u8();
      if (r.ok()) {
        delivery_handler_(state->flow, seq, payload);
      } else {
        drop_malformed();
      }
    }
    return;
  }
  wire::Writer w;
  w.u8(kMsgData);
  w.u64(handle.v);
  w.u32(claimed_src.v);
  w.u32(seq);
  w.u64(std::bit_cast<std::uint64_t>(sent_at));
  w.u16(payload_len);
  std::vector<std::uint8_t> payload(payload_len);
  for (auto& b : payload) b = r.u8();
  if (!r.ok()) {
    drop_malformed();
    return;
  }
  if (net().drops_traffic(self(), state->flow.dst)) {
    // Forwarding black hole (or hijacked destination): accept the packet
    // into the PR, then silently discard it -- no error report, so the
    // source cannot repair around us.
    ++data_drops_;
    return;
  }
  w.raw(payload);
  const AdId next = state->next;
  if (!net().send(self(), next, std::move(w).take())) {
    // The onward link is dead: report the broken PR -- including which
    // link broke -- back to the source, which repairs by synthesizing a
    // fresh policy route around it.
    const AdId prev = state->prev;
    if (prev.valid()) {
      gateway_->remove(handle);
      send_error(handle, prev, self(), next);
    } else {
      fail_active_pr(handle, self(), next);
    }
  }
}

}  // namespace idr
