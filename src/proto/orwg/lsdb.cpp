#include "proto/orwg/lsdb.hpp"

namespace idr {

void PolicyLsa::encode(wire::Writer& w) const {
  w.u32(origin.v);
  w.u32(seq);
  w.u16(static_cast<std::uint16_t>(adjacencies.size()));
  for (const PolicyLsaAdjacency& adj : adjacencies) {
    w.u32(adj.neighbor.v);
    w.u32(adj.metric);
  }
  w.u16(static_cast<std::uint16_t>(terms.size()));
  for (const PolicyTerm& t : terms) t.encode(w);
  w.u8(has_source_policy ? 1 : 0);
  if (has_source_policy) {
    std::vector<std::uint32_t> raw;
    raw.reserve(avoid.size());
    for (AdId ad : avoid) raw.push_back(ad.v);
    w.u32_list(raw);
    w.u32(max_hops);
    w.u8(prefer_min_cost ? 1 : 0);
  }
  {
    std::vector<std::uint32_t> raw;
    raw.reserve(attached_stubs.size());
    for (AdId ad : attached_stubs) raw.push_back(ad.v);
    w.u32_list(raw);
  }
  w.u64(auth);
}

std::optional<PolicyLsa> PolicyLsa::decode(wire::Reader& r) {
  PolicyLsa lsa;
  lsa.origin = AdId{r.u32()};
  lsa.seq = r.u32();
  const std::uint16_t adj_count = r.u16();
  for (std::uint16_t i = 0; i < adj_count && r.ok(); ++i) {
    PolicyLsaAdjacency adj;
    adj.neighbor = AdId{r.u32()};
    adj.metric = r.u32();
    lsa.adjacencies.push_back(adj);
  }
  const std::uint16_t term_count = r.u16();
  for (std::uint16_t i = 0; i < term_count && r.ok(); ++i) {
    auto term = PolicyTerm::decode(r);
    if (!term) return std::nullopt;
    lsa.terms.push_back(std::move(*term));
  }
  lsa.has_source_policy = r.u8() != 0;
  if (lsa.has_source_policy) {
    for (std::uint32_t v : r.u32_list()) lsa.avoid.push_back(AdId{v});
    lsa.max_hops = r.u32();
    lsa.prefer_min_cost = r.u8() != 0;
  }
  for (std::uint32_t v : r.u32_list()) lsa.attached_stubs.push_back(AdId{v});
  lsa.auth = r.u64();
  if (!r.ok()) return std::nullopt;
  return lsa;
}

std::uint64_t lsa_auth_tag(const PolicyLsa& lsa, std::uint64_t key) {
  PolicyLsa unsigned_copy = lsa;
  unsigned_copy.auth = 0;
  wire::Writer w;
  unsigned_copy.encode(w);
  std::uint64_t state = key ^ 0x5851f42d4c957f2dULL;
  std::uint64_t tag = 0;
  for (std::uint8_t b : w.bytes()) {
    state ^= b;
    tag ^= splitmix64(state);
  }
  // Never collide with the "unauthenticated" sentinel.
  return tag == 0 ? 1 : tag;
}

std::size_t PolicyLsa::encoded_size() const {
  wire::Writer w;
  encode(w);
  return w.size();
}

bool PolicyLsdb::insert(PolicyLsa lsa) {
  const PolicyLsa* have = lsas_.find(lsa.origin.v);
  if (have && have->seq >= lsa.seq) return false;
  lsas_[lsa.origin.v] = std::move(lsa);
  ++version_;
  return true;
}

const PolicyLsa* PolicyLsdb::get(AdId origin) const {
  return lsas_.find(origin.v);
}

std::size_t PolicyLsdb::total_terms() const noexcept {
  std::size_t n = 0;
  for (const auto [origin, lsa] : lsas_) {
    (void)origin;
    n += lsa.terms.size();
  }
  return n;
}

void LsdbView::for_each_neighbor(
    AdId ad, const std::function<void(AdId, std::uint32_t)>& fn) const {
  const PolicyLsa* lsa = db_.get(ad);
  if (!lsa) return;
  for (const PolicyLsaAdjacency& adj : lsa->adjacencies) {
    // Bidirectional check: the neighbor must advertise the link back.
    const PolicyLsa* back = db_.get(adj.neighbor);
    if (!back) continue;
    bool confirmed = false;
    for (const PolicyLsaAdjacency& rev : back->adjacencies) {
      if (rev.neighbor == ad) {
        confirmed = true;
        break;
      }
    }
    if (confirmed) fn(adj.neighbor, adj.metric);
  }
}

std::optional<std::uint32_t> LsdbView::transit_cost(AdId ad,
                                                    const FlowSpec& flow,
                                                    AdId prev,
                                                    AdId next) const {
  if (registry_) {
    // Registered (ground-truth) policy overrides whatever the origin
    // claims in its LSA: an AD cannot widen its transit policy by lying.
    return registry_->transit_cost(ad, flow, prev, next);
  }
  const PolicyLsa* lsa = db_.get(ad);
  if (!lsa) return std::nullopt;
  std::optional<std::uint32_t> best;
  for (const PolicyTerm& t : lsa->terms) {
    if (!t.permits(flow, prev, next)) continue;
    if (!best || t.cost < *best) best = t.cost;
  }
  return best;
}

}  // namespace idr
