// ORWG Policy Gateway (paper §5.4.1): the border entity that validates
// Policy Route setups against the AD's local Policy Terms and maintains
// the handle cache -- "routing tables that are filled on demand".
//
// A setup packet carries the full policy route; the PG of each AD on the
// path checks that the route conforms to the local policy terms, caches
// the (handle -> prev/next/flow) binding and forwards the setup. Data
// packets carry only the handle; the PG validates each against the cached
// setup state (e.g. "is it coming from the AD specified in the cached PT
// setup information") and forwards.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "policy/database.hpp"
#include "policy/flow.hpp"
#include "topology/graph.hpp"

namespace idr {

struct PrHandle {
  std::uint64_t v = 0;
  friend bool operator==(const PrHandle&, const PrHandle&) = default;
};

struct SetupState {
  FlowSpec flow;
  AdId prev;  // kNoAd at the source AD
  AdId next;  // kNoAd at the destination AD
  // Charging (paper §2.3 lists "charging and accounting policies"): the
  // per-packet price of the cheapest Policy Term that admitted this PR,
  // and the usage metered against it.
  std::uint32_t unit_cost = 0;
  std::uint64_t packets = 0;
  std::uint64_t bytes = 0;
};

class PolicyGateway {
 public:
  PolicyGateway(AdId self, const Topology* topo, const PolicySet* policies)
      : self_(self), topo_(topo), policies_(policies) {}

  enum class Verdict : std::uint8_t {
    kAccepted = 0,
    kPolicyViolation = 1,  // no local PT permits the flow in context
    kMalformedPath = 2,    // we are not on the path / path has a loop
  };

  // Validate a setup for `flow` along `path` where we sit at `position`,
  // and install the handle on success.
  Verdict validate_and_install(PrHandle handle, const FlowSpec& flow,
                               const std::vector<AdId>& path,
                               std::size_t position);

  // Per-packet validation: the handle must be installed and the packet
  // must arrive from the cached previous AD carrying the cached source.
  // Validated packets are metered against the PR for accounting.
  [[nodiscard]] const SetupState* lookup(PrHandle handle, AdId arrived_from,
                                         AdId claimed_src,
                                         std::size_t bytes = 0);

  // Accounting roll-up: what each source AD owes this AD for validated
  // transit usage (packets x admitting-PT cost).
  struct Invoice {
    AdId source;
    std::uint64_t packets = 0;
    std::uint64_t bytes = 0;
    std::uint64_t amount = 0;  // packets x unit_cost accumulated
  };
  [[nodiscard]] std::vector<Invoice> invoices() const;
  [[nodiscard]] std::uint64_t total_revenue() const noexcept;

  // Toggle setup-time policy validation. Off models a misconfigured or
  // complicit gateway that installs whatever setup it is handed (the
  // ORWG route-leak failure mode); structural checks that the handle
  // cache itself needs (position/self on path) still apply.
  void set_validation(bool enabled) noexcept { validation_ = enabled; }
  [[nodiscard]] bool validation() const noexcept { return validation_; }

  // Setup state by handle without per-packet validation (ack/nak routing).
  [[nodiscard]] const SetupState* peek(PrHandle handle) const;

  void remove(PrHandle handle);
  // Drop all installed PRs (local policy changed; cached validations are
  // void). Returns how many were dropped.
  std::size_t flush();

  [[nodiscard]] std::size_t installed() const noexcept {
    return cache_.size();
  }
  [[nodiscard]] std::uint64_t setups_accepted() const noexcept {
    return setups_accepted_;
  }
  [[nodiscard]] std::uint64_t setups_rejected() const noexcept {
    return setups_rejected_;
  }
  [[nodiscard]] std::uint64_t data_validated() const noexcept {
    return data_validated_;
  }
  [[nodiscard]] std::uint64_t data_rejected() const noexcept {
    return data_rejected_;
  }

 private:
  AdId self_;
  const Topology* topo_;
  const PolicySet* policies_;
  bool validation_ = true;
  std::unordered_map<std::uint64_t, SetupState> cache_;
  std::uint64_t setups_accepted_ = 0;
  std::uint64_t setups_rejected_ = 0;
  std::uint64_t data_validated_ = 0;
  std::uint64_t data_rejected_ = 0;
};

}  // namespace idr
