// ORWG / IDPR-style node (paper §5.4.1): link state + source routing +
// explicit policy terms -- the architecture the paper concludes is best
// able to meet inter-AD policy routing requirements.
//
// Control plane: floods policy LSAs (adjacencies + the AD's transit
// Policy Terms; source route-selection criteria stay private). A Route
// Server synthesizes Policy Routes from the database. Data plane: the
// first packet toward a (destination, traffic class) acts as a Policy
// Route *setup* carrying the full AD-level source route; each AD's Policy
// Gateway validates the route against its local policy terms, caches the
// handle binding and forwards. Subsequent data packets carry only the
// 8-byte handle (avoiding the source-route header length the paper flags
// as the cost of source routing), are validated per-packet against the
// cached setup state, and are forwarded without any route computation at
// transit ADs.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "policy/database.hpp"
#include "proto/common/node.hpp"
#include "proto/orwg/lsdb.hpp"
#include "proto/orwg/policy_gateway.hpp"
#include "proto/orwg/route_server.hpp"
#include "util/stats.hpp"

namespace idr {

struct OrwgConfig {
  RouteServerConfig route_server;
  std::uint16_t default_payload_bytes = 512;
  // Setup packets are retransmitted until acked/nakked (they may be lost
  // on the unreliable datagram service).
  double setup_retry_ms = 400.0;
  std::uint32_t setup_max_retries = 5;
  // Database distribution strategy (paper §6): 0 floods each LSA in its
  // own message immediately; > 0 batches LSAs accepted within the window
  // into one message per neighbor, trading propagation delay for
  // messages (measured by bench_db_distribution).
  double lsa_batch_ms = 0.0;
  // Re-originate our LSA every periodic_refresh_ms (0 disables). The
  // fresh sequence number re-floods network-wide, repairing any database
  // hole a lost or corrupted flood left behind.
  double periodic_refresh_ms = 0.0;
  // LSA origin authentication (paper §2.3's assurance dimension): when
  // set, points at a per-AD key table (index = AdId); LSAs are tagged by
  // their origin and verified at every receiver; forgeries are dropped.
  const std::vector<std::uint64_t>* lsa_keys = nullptr;
  // Paper-scale hierarchical mode: only transit ADs originate LSAs (with
  // their attached stubs listed), floods and DB syncs skip stub
  // neighbors, and a stub's route-server query is answered by its transit
  // parent -- the paper's model of the Route Server as the provider-side
  // entity a stub consults. Databases stay O(transit ADs).
  bool hierarchical = false;
  // Hold-down for link-change-triggered re-origination (0 = immediate,
  // the historical behavior). Link transitions within the window
  // coalesce into at most one origination, and a window that ends with
  // LSA content identical to the database copy (the link flapped down
  // and back) re-floods nothing at all. Periodic refresh bypasses this
  // (it must bump seq).
  double link_holddown_ms = 0.0;
  // Graceful restart (off by default): a neighbor crashing into a grace
  // window keeps its adjacency (no re-origination -- the database, and
  // with it the route server's db_version-keyed cache, stays frozen, so
  // Policy Routes are served memoized from the stale snapshot) until the
  // restarted neighbor's link-up resync or the post-grace re-examination.
  GrConfig gr;
};

class OrwgNode : public ProtoNode {
 public:
  explicit OrwgNode(const PolicySet* policies, OrwgConfig config = {})
      : policies_(policies), config_(config) {}

  void start() override;
  void on_message(AdId from, std::span<const std::uint8_t> bytes) override;
  void on_link_change(AdId neighbor, bool up) override;

  // Send `packets` data packets of this flow. The first use of a
  // (destination, traffic class) synthesizes a Policy Route and runs the
  // setup exchange; later packets ride the established PR by handle.
  // Returns false if the route server found no Policy Route.
  bool send_flow(const FlowSpec& flow, std::uint32_t packets);

  // Send one data packet carrying real application payload (transport
  // layer entry point). Queued behind the setup when the PR is not yet
  // established. Returns false if no Policy Route exists.
  bool send_data(const FlowSpec& flow, std::uint32_t seq,
                 std::vector<std::uint8_t> payload);

  // Tear the flow's Policy Route down along its path (paper: PRs are
  // long-lived, but policy or topology change eventually retires them).
  void teardown(const FlowSpec& flow);

  // Application hook invoked at the destination AD for every delivered
  // data packet.
  using DeliveryHandler = std::function<void(
      const FlowSpec& flow, std::uint32_t seq,
      std::span<const std::uint8_t> payload)>;
  void set_delivery_handler(DeliveryHandler handler) {
    delivery_handler_ = std::move(handler);
  }

  // The Policy Route the route server would use for this flow (no setup).
  [[nodiscard]] std::optional<std::vector<AdId>> policy_route(
      const FlowSpec& flow);

  // Ask the route server to precompute routes to all destinations.
  void precompute_all();

  [[nodiscard]] RouteServer& route_server() { return *route_server_; }
  [[nodiscard]] PolicyGateway& gateway() { return *gateway_; }
  [[nodiscard]] const PolicyLsdb& lsdb() const noexcept { return lsdb_; }

  // Data-plane statistics (as destination / as source).
  [[nodiscard]] std::uint64_t delivered() const noexcept {
    return delivered_;
  }
  [[nodiscard]] const Summary& delivery_latency_ms() const noexcept {
    return delivery_latency_ms_;
  }
  [[nodiscard]] const Summary& setup_latency_ms() const noexcept {
    return setup_latency_ms_;
  }
  [[nodiscard]] std::uint64_t route_failures() const noexcept {
    return route_failures_;
  }
  [[nodiscard]] std::uint64_t setup_naks() const noexcept {
    return setup_naks_;
  }
  [[nodiscard]] std::uint64_t data_drops() const noexcept {
    return data_drops_;
  }

  static constexpr std::uint8_t kMsgLsa = 1;
  static constexpr std::uint8_t kMsgSetup = 2;
  static constexpr std::uint8_t kMsgData = 3;
  static constexpr std::uint8_t kMsgAck = 4;
  static constexpr std::uint8_t kMsgNak = 5;
  static constexpr std::uint8_t kMsgTeardown = 6;
  static constexpr std::uint8_t kMsgError = 7;
  static constexpr std::uint8_t kMsgLsaBatch = 8;

 private:
  struct ActivePr {
    PrHandle handle;
    FlowSpec flow;
    std::vector<AdId> path;
  };
  struct PendingPr {
    FlowSpec flow;
    std::vector<AdId> path;
    std::uint32_t packets_waiting = 0;
    std::vector<std::pair<std::uint32_t, std::vector<std::uint8_t>>> queued;
    SimTime setup_sent_at = 0.0;
    std::uint32_t retries = 0;
  };

  void originate_lsa(MsgClass cls = MsgClass::kUpdate);
  void originate_if_changed();
  // Hierarchical helpers: owning transit AD of a (possibly stub) AD, the
  // stub's deterministic parent, and the end-to-end AD path composed from
  // a transit-level synthesis between the two attachments.
  [[nodiscard]] bool is_transit() const { return topo().can_transit(self()); }
  [[nodiscard]] AdId attachment(AdId ad);
  [[nodiscard]] std::optional<std::vector<AdId>> hierarchical_route(
      const FlowSpec& flow);
  void forge_victim_lsa();
  void sign_lsa(PolicyLsa& lsa) const;
  void flood_lsa(const PolicyLsa& lsa, AdId except,
                 MsgClass cls = MsgClass::kUpdate);
  void schedule_refresh();
  void flush_pending_floods();
  bool establish_pr(const FlowSpec& flow, PendingPr pending);
  void transmit_setup(PrHandle handle);
  void schedule_setup_retry(PrHandle handle);
  void send_data_packets(const ActivePr& pr, const FlowSpec& flow,
                         std::uint32_t packets);
  void send_one_data(const std::vector<AdId>& path, PrHandle handle,
                     AdId claimed_src, std::uint32_t seq,
                     std::span<const std::uint8_t> payload);
  void fail_active_pr(PrHandle handle, AdId report_from, AdId dead_next);
  void send_error(PrHandle handle, AdId to, AdId report_from, AdId dead_next);
  void handle_setup(AdId from, wire::Reader& r);
  void handle_data(AdId from, wire::Reader& r);
  void handle_ack(wire::Reader& r);
  void handle_nak(wire::Reader& r);
  void handle_teardown(wire::Reader& r);
  void handle_error(wire::Reader& r);

  [[nodiscard]] static std::uint64_t flow_key(const FlowSpec& flow) noexcept {
    return (static_cast<std::uint64_t>(flow.dst.v) << 32) |
           traffic_class_of(flow).index();
  }

  const PolicySet* policies_;
  OrwgConfig config_;
  PolicyLsdb lsdb_;
  std::uint32_t my_seq_ = 0;
  std::vector<std::pair<PolicyLsa, AdId>> pending_floods_;
  bool flush_scheduled_ = false;
  bool holddown_scheduled_ = false;  // a hold-down window is already open
  std::uint64_t originations_suppressed_ = 0;
  std::unique_ptr<RouteServer> route_server_;
  std::unique_ptr<PolicyGateway> gateway_;
  std::unordered_map<std::uint64_t, ActivePr> active_;    // by flow key
  std::unordered_map<std::uint64_t, PendingPr> pending_;  // by handle
  std::uint64_t next_handle_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t route_failures_ = 0;
  std::uint64_t setup_naks_ = 0;
  std::uint64_t setup_timeouts_ = 0;
  std::uint64_t data_drops_ = 0;
  std::uint64_t pr_errors_ = 0;  // data-plane errors received at source
  std::uint32_t data_seq_ = 0;
  Summary delivery_latency_ms_;
  Summary setup_latency_ms_;
  DeliveryHandler delivery_handler_;

 public:
  [[nodiscard]] std::uint64_t setup_timeouts() const noexcept {
    return setup_timeouts_;
  }
  [[nodiscard]] std::uint64_t pr_errors() const noexcept {
    return pr_errors_;
  }
  [[nodiscard]] std::uint64_t pr_repairs() const noexcept {
    return pr_repairs_;
  }
  [[nodiscard]] std::uint64_t lsas_rejected_auth() const noexcept {
    return lsas_rejected_auth_;
  }
  [[nodiscard]] std::uint64_t originations_suppressed() const noexcept {
    return originations_suppressed_;
  }
  // GR accounting: adjacency retentions entered on a neighbor crash,
  // database resyncs pushed to a recovered neighbor, and Policy Routes
  // served from the route server's memoized (db_version-frozen) cache
  // while at least one neighbor was inside a grace window.
  [[nodiscard]] std::uint64_t gr_retained() const noexcept {
    return gr_retained_;
  }
  [[nodiscard]] std::uint64_t gr_resyncs() const noexcept {
    return gr_resyncs_;
  }
  [[nodiscard]] std::uint64_t gr_memoized() const noexcept {
    return gr_memoized_;
  }

 private:
  // Verify + insert + (on acceptance) re-flood one received LSA.
  void accept_lsa(PolicyLsa lsa, AdId from);
  // Counts a route-server answer served from cache during a grace window
  // (the "memoized synthesis from the stale snapshot" the GR design
  // promises for the source-routing family).
  void note_gr_cache_hit(bool from_cache);

  std::uint64_t pr_repairs_ = 0;  // errors healed by immediate resynthesis
  std::uint64_t lsas_rejected_auth_ = 0;
  std::uint64_t gr_retained_ = 0;
  std::uint64_t gr_resyncs_ = 0;
  std::uint64_t gr_memoized_ = 0;
  // Lazily rebuilt stub -> owning transit AD index (hierarchical mode).
  DenseMap<std::uint32_t, std::uint32_t> attach_;
  std::uint64_t attach_version_ = ~0ull;
};

}  // namespace idr
