#include "proto/lshh/lshh_node.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace idr {

void LshhNode::start() {
  originate_lsa();
  schedule_refresh();
}

void LshhNode::schedule_refresh() {
  if (periodic_refresh_ms_ <= 0.0) return;
  schedule_guarded(periodic_refresh_ms_, [this] {
    originate_lsa();
    schedule_refresh();
  });
}

void LshhNode::originate_lsa() {
  PolicyLsa lsa;
  lsa.origin = self();
  lsa.seq = ++my_seq_;
  for (const Adjacency& adj : live_neighbors()) {
    lsa.adjacencies.push_back(
        PolicyLsaAdjacency{adj.neighbor, topo().link(adj.link).metric});
  }
  const auto terms = policies_->terms(self());
  lsa.terms.assign(terms.begin(), terms.end());
  // Hop-by-hop consistency forces sources to publish their private
  // route-selection criteria (paper §5.3).
  const SourcePolicy& sp = policies_->source_policy(self());
  lsa.has_source_policy = true;
  lsa.avoid = sp.avoid;
  lsa.max_hops = sp.max_hops;
  lsa.prefer_min_cost = sp.prefer_min_cost;
  lsdb_.insert(lsa);
  flood_lsa(lsa, kNoAd);
}

void LshhNode::flood_lsa(const PolicyLsa& lsa, AdId except) {
  wire::Writer w;
  w.u8(kMsgLsa);
  lsa.encode(w);
  send_to_neighbors(w.bytes(), except);
}

void LshhNode::on_message(AdId from, std::span<const std::uint8_t> bytes) {
  wire::Reader r(bytes);
  const std::uint8_t type = r.u8();
  if (!r.ok() || type != kMsgLsa) {
    drop_malformed();
    return;
  }
  auto lsa = PolicyLsa::decode(r);
  if (!lsa.has_value()) {
    drop_malformed();
    return;
  }
  if (lsa->origin == self()) {
    // Sequence-number recovery after a cold restart: our own pre-crash
    // LSA came back ahead of our (reset) counter. Strictly greater: an
    // echo of our current instance must not re-trigger origination.
    if (lsa->seq > my_seq_) {
      my_seq_ = lsa->seq;
      originate_lsa();
    }
    return;
  }
  if (const PolicyLsa* have = lsdb_.get(lsa->origin);
      have && lsa->seq < have->seq && from.valid()) {
    // Answer a stale copy with the newer database copy (OSPF's rule), so
    // a cold-restarted origin whose one-shot DB sync was lost keeps being
    // told its pre-crash sequence number on every refresh it emits.
    wire::Writer w;
    w.u8(kMsgLsa);
    have->encode(w);
    send_pdu(from, std::move(w));
    return;
  }
  if (lsdb_.insert(*lsa)) flood_lsa(*lsa, from);
}

void LshhNode::on_link_change(AdId neighbor, bool up) {
  originate_lsa();
  if (up && neighbor.valid()) {
    // DB sync for a neighbor that just (re)appeared, so a cold-restarted
    // node rebuilds the full map instead of only hearing future changes.
    lsdb_.for_each([&](const PolicyLsa& lsa) {
      wire::Writer w;
      w.u8(kMsgLsa);
      lsa.encode(w);
      send_pdu(neighbor, std::move(w));
    });
  }
}

std::optional<AdId> LshhNode::forward(const FlowSpec& flow) {
  const std::uint64_t key = cache_key(flow);
  if (const auto it = cache_.find(key); it != cache_.end()) {
    if (it->second.db_version == lsdb_.version()) {
      ++cache_hits_;
      return it->second.next;
    }
    cache_.erase(it);
  }

  // Replicate the source's route computation: same database, same
  // deterministic search, same (published) source selection criteria.
  SynthesisOptions options;
  if (const PolicyLsa* src_lsa = lsdb_.get(flow.src);
      src_lsa && src_lsa->has_source_policy) {
    options.avoid = src_lsa->avoid;
    options.max_hops = src_lsa->max_hops;
    options.minimize_cost = src_lsa->prefer_min_cost;
  }
  ++path_computations_;
  const LsdbView view(lsdb_, topo().ad_count());
  const SynthesisResult result = synthesize_route(view, flow, options);
  total_expansions_ += result.expansions;

  std::optional<AdId> next;
  if (result.found()) {
    const auto at =
        std::find(result.path.begin(), result.path.end(), self());
    if (at != result.path.end() && at + 1 != result.path.end()) {
      next = *(at + 1);
    }
    // If we are not on the agreed path, the packet should never have
    // reached us; drop (next stays nullopt).
  }
  cache_[key] = CacheEntry{next, lsdb_.version()};
  return next;
}

}  // namespace idr
