#include "proto/lshh/lshh_node.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace idr {

void LshhNode::start() {
  originate_lsa();
  schedule_refresh();
}

void LshhNode::schedule_refresh() {
  if (periodic_refresh_ms_ <= 0.0) return;
  schedule_guarded(periodic_refresh_ms_, [this] {
    originate_lsa(MsgClass::kRefresh);
    schedule_refresh();
  });
}

void LshhNode::sign_lsa(PolicyLsa& lsa) const {
  // Signed with OUR key, whatever the LSA claims as origin: a forged
  // LSA for a victim therefore carries a tag the victim's key cannot
  // verify, which is exactly what the auth defense catches.
  if (config_.lsa_keys && self().v < config_.lsa_keys->size()) {
    lsa.auth = lsa_auth_tag(lsa, (*config_.lsa_keys)[self().v]);
  }
}

void LshhNode::originate_lsa(MsgClass cls) {
  // Hierarchical mode: stubs are silent; their reachability rides on the
  // attachment listings in their transit neighbors' LSAs.
  if (config_.hierarchical && !is_transit()) return;
  PolicyLsa lsa;
  lsa.origin = self();
  lsa.seq = ++my_seq_;
  for (const Adjacency& adj : live_neighbors()) {
    if (config_.hierarchical && !topo().can_transit(adj.neighbor)) {
      lsa.attached_stubs.push_back(adj.neighbor);
      continue;
    }
    lsa.adjacencies.push_back(
        PolicyLsaAdjacency{adj.neighbor, topo().link(adj.link).metric});
  }
  const auto terms = policies_->terms(self());
  lsa.terms.assign(terms.begin(), terms.end());
  // Hop-by-hop consistency forces sources to publish their private
  // route-selection criteria (paper §5.3).
  const SourcePolicy& sp = policies_->source_policy(self());
  lsa.has_source_policy = true;
  lsa.avoid = sp.avoid;
  lsa.max_hops = sp.max_hops;
  lsa.prefer_min_cost = sp.prefer_min_cost;
  const Misbehavior mis = net().active_misbehavior(self());
  if (mis == Misbehavior::kRouteLeak) {
    // Route leak, link-state style: advertise unconditional transit in
    // place of the registered terms (999 marks the lie in dumps; cost 1
    // keeps the claim consistent with what honest cost-1 terms look
    // like, so undefended receivers take the bait).
    lsa.terms.clear();
    lsa.terms.push_back(open_transit_term(self(), 999));
  }
  sign_lsa(lsa);
  lsdb_.insert(lsa);
  flood_lsa(lsa, kNoAd, cls);
  if (mis == Misbehavior::kFalseOrigin) forge_victim_lsa();
}

void LshhNode::originate_if_changed() {
  // Hold-down re-flood scoping: a window that ends with the same link
  // view the database already describes (the link flapped down and back)
  // originates nothing -- no seq bump, no network-wide re-flood.
  if (config_.hierarchical && !is_transit()) return;
  if (const PolicyLsa* current = lsdb_.get(self())) {
    std::vector<PolicyLsaAdjacency> adjs;
    std::vector<AdId> stubs;
    for (const Adjacency& adj : live_neighbors()) {
      if (config_.hierarchical && !topo().can_transit(adj.neighbor)) {
        stubs.push_back(adj.neighbor);
        continue;
      }
      adjs.push_back(
          PolicyLsaAdjacency{adj.neighbor, topo().link(adj.link).metric});
    }
    const bool same =
        adjs.size() == current->adjacencies.size() &&
        stubs.size() == current->attached_stubs.size() &&
        std::equal(adjs.begin(), adjs.end(), current->adjacencies.begin(),
                   [](const PolicyLsaAdjacency& a,
                      const PolicyLsaAdjacency& b) {
                     return a.neighbor == b.neighbor && a.metric == b.metric;
                   }) &&
        std::equal(stubs.begin(), stubs.end(),
                   current->attached_stubs.begin());
    if (same) {
      ++originations_suppressed_;
      return;
    }
  }
  originate_lsa();
}

void LshhNode::forge_victim_lsa() {
  // LS origin forgery: flood an LSA claiming to BE the victim, with a
  // sequence number far ahead of the victim's real one so it wins the
  // newer-seq race at every undefended receiver. No adjacencies: the
  // victim simply vanishes from every computed path.
  const AdId victim = net().misbehavior_victim(self());
  if (!victim.valid() || victim == self()) return;
  PolicyLsa forged;
  forged.origin = victim;
  const PolicyLsa* have = lsdb_.get(victim);
  forged.seq = (have ? have->seq : 0) + 64;  // outruns origin fight-back
  forged.has_source_policy = true;
  sign_lsa(forged);  // our key, not the victim's -- detectably wrong
  lsdb_.insert(forged);
  flood_lsa(forged, kNoAd);
}

void LshhNode::flood_lsa(const PolicyLsa& lsa, AdId except, MsgClass cls) {
  wire::Writer w;
  w.u8(kMsgLsa);
  lsa.encode(w);
  if (!config_.hierarchical) {
    send_to_neighbors(w.bytes(), except, cls);
    return;
  }
  // Stub-suppressed flooding: stubs keep no database, so the flood only
  // visits the transit subgraph.
  Payload payload;
  for_each_live_neighbor([&](const Adjacency& adj) {
    if (adj.neighbor == except) return;
    if (!topo().can_transit(adj.neighbor)) return;
    if (!payload) payload = make_payload(w.bytes());
    net().send(self(), adj.neighbor, payload, cls);
  });
}

void LshhNode::on_message(AdId from, std::span<const std::uint8_t> bytes) {
  wire::Reader r(bytes);
  const std::uint8_t type = r.u8();
  if (!r.ok() || type != kMsgLsa) {
    drop_malformed();
    return;
  }
  auto lsa = PolicyLsa::decode(r);
  if (!lsa.has_value()) {
    drop_malformed();
    return;
  }
  if (config_.lsa_keys) {
    // Origin authentication: the tag must verify under the *origin's*
    // key. Kills both forged-origin LSAs (signed with the wrong key)
    // and LSAs whose content was tampered with in transit (stale tag).
    if (lsa->origin.v >= config_.lsa_keys->size() ||
        lsa->auth != lsa_auth_tag(*lsa, (*config_.lsa_keys)[lsa->origin.v])) {
      ++lsas_rejected_auth_;
      net().note_defense_rejection(self());
      return;
    }
  }
  if (lsa->origin == self()) {
    // Sequence-number recovery after a cold restart: our own pre-crash
    // LSA came back ahead of our (reset) counter. Strictly greater: an
    // echo of our current instance must not re-trigger origination.
    if (lsa->seq > my_seq_) {
      my_seq_ = lsa->seq;
      originate_lsa();
    }
    return;
  }
  if (const PolicyLsa* have = lsdb_.get(lsa->origin);
      have && lsa->seq < have->seq && from.valid()) {
    // Answer a stale copy with the newer database copy (OSPF's rule), so
    // a cold-restarted origin whose one-shot DB sync was lost keeps being
    // told its pre-crash sequence number on every refresh it emits.
    wire::Writer w;
    w.u8(kMsgLsa);
    have->encode(w);
    send_pdu(from, std::move(w));
    return;
  }
  if (lsdb_.insert(*lsa)) {
    if (net().misbehaving_as(self(), Misbehavior::kTamper) &&
        lsa->origin != self()) {
      // Path-attribute tampering at the re-flood point: strip the
      // origin's adjacencies and bump the sequence so the mutilated
      // copy beats the original downstream. The auth tag goes stale,
      // which is precisely what the origin-authentication defense
      // detects; undefended receivers eat it.
      PolicyLsa mangled = *lsa;
      mangled.adjacencies.clear();
      ++mangled.seq;
      flood_lsa(mangled, from);
      return;
    }
    flood_lsa(*lsa, from);
  }
}

void LshhNode::on_link_change(AdId neighbor, bool up) {
  // Forwarding choices consult live_neighbors() as well as the database,
  // and for stubs the database version never moves -- so every adjacency
  // liveness change must invalidate the cache itself. (During a GR grace
  // window the recomputation sees the same retained adjacency and lands
  // on the same answer; the epoch bump only costs one recompute per key.)
  ++live_epoch_;
  if (!up && config_.gr.enabled && net().in_grace(neighbor)) {
    // Graceful restart: the in-grace neighbor still counts as alive
    // (Node::neighbor_alive), so a re-origination now would change
    // nothing -- skip it entirely (no seq bump, no flood) and re-examine
    // just past grace expiry. If the neighbor resynced in time the
    // re-examination suppresses itself (identical content); if not, it
    // originates the LSA that finally withdraws the adjacency. A
    // re-crash during grace lands here again and arms a later timer, so
    // the early one fires harmlessly inside the extended window.
    ++gr_retained_;
    schedule_guarded(config_.gr.grace_ms + 0.1,
                     [this] { originate_if_changed(); });
    return;
  }
  if (up && config_.gr.enabled) ++gr_resyncs_;
  if (config_.link_holddown_ms > 0.0) {
    if (!holddown_scheduled_) {
      holddown_scheduled_ = true;
      schedule_guarded(config_.link_holddown_ms, [this] {
        holddown_scheduled_ = false;
        originate_if_changed();
      });
    }
  } else {
    originate_lsa();
  }
  if (config_.hierarchical && !topo().can_transit(neighbor)) return;
  if (up && neighbor.valid()) {
    // DB sync for a neighbor that just (re)appeared, so a cold-restarted
    // node rebuilds the full map instead of only hearing future changes.
    lsdb_.for_each([&](const PolicyLsa& lsa) {
      wire::Writer w;
      w.u8(kMsgLsa);
      lsa.encode(w);
      send_pdu(neighbor, std::move(w));
    });
  }
}

std::optional<AdId> LshhNode::forward(const FlowSpec& flow) {
  const std::uint64_t key = cache_key(flow);
  if (const CacheEntry* e = cache_.find(key)) {
    if (e->db_version == lsdb_.version() && e->live_epoch == live_epoch_) {
      ++cache_hits_;
      return e->next;
    }
    cache_.erase(key);
  }
  const std::optional<AdId> next =
      config_.hierarchical ? hierarchical_next(flow) : flat_next(flow);
  cache_[key] = CacheEntry{next, lsdb_.version(), live_epoch_};
  return next;
}

std::optional<AdId> LshhNode::flat_next(const FlowSpec& flow) {
  // Replicate the source's route computation: same database, same
  // deterministic search, same (published) source selection criteria.
  SynthesisOptions options;
  if (const PolicyLsa* src_lsa = lsdb_.get(flow.src);
      src_lsa && src_lsa->has_source_policy) {
    options.avoid = src_lsa->avoid;
    options.max_hops = src_lsa->max_hops;
    options.minimize_cost = src_lsa->prefer_min_cost;
  }
  ++path_computations_;
  const LsdbView view(lsdb_, topo().ad_count(), config_.registry);
  const SynthesisResult result = synthesize_route(view, flow, options);
  total_expansions_ += result.expansions;

  std::optional<AdId> next;
  if (result.found()) {
    const auto at =
        std::find(result.path.begin(), result.path.end(), self());
    if (at != result.path.end() && at + 1 != result.path.end()) {
      next = *(at + 1);
    }
    // If we are not on the agreed path, the packet should never have
    // reached us; drop (next stays nullopt).
  }
  return next;
}

AdId LshhNode::attachment(AdId ad) {
  if (lsdb_.get(ad)) return ad;  // transit ADs own themselves
  if (attach_version_ != lsdb_.version()) {
    attach_.clear();
    lsdb_.for_each([&](const PolicyLsa& lsa) {
      for (AdId stub : lsa.attached_stubs) {
        auto [owner, inserted] = attach_.try_emplace(stub.v, lsa.origin.v);
        if (!inserted && lsa.origin.v < owner) owner = lsa.origin.v;
      }
    });
    attach_version_ = lsdb_.version();
  }
  const std::uint32_t* owner = attach_.find(ad.v);
  return owner ? AdId{*owner} : kNoAd;
}

std::optional<AdId> LshhNode::hierarchical_next(const FlowSpec& flow) {
  if (!is_transit()) {
    // Stub: deliver to an adjacent destination, else hand the packet to
    // the lowest-id live transit neighbor (the deterministic parent every
    // other AD also derives from the attachment rule).
    std::optional<AdId> parent;
    for (const Adjacency& adj : live_neighbors()) {
      if (adj.neighbor == flow.dst) return flow.dst;
      if (topo().can_transit(adj.neighbor) &&
          (!parent || adj.neighbor < *parent)) {
        parent = adj.neighbor;
      }
    }
    return parent;
  }
  const AdId owner_dst = attachment(flow.dst);
  if (!owner_dst.valid()) return std::nullopt;
  if (owner_dst == self()) {
    // Last transit hop: the destination is our attached stub.
    for (const Adjacency& adj : live_neighbors()) {
      if (adj.neighbor == flow.dst) return flow.dst;
    }
    return std::nullopt;
  }
  const AdId owner_src = attachment(flow.src);
  if (!owner_src.valid()) return std::nullopt;
  // Route between the attachments over the transit-only database; the
  // stub endpoints ride the first/last hierarchical link.
  FlowSpec synth = flow;
  synth.src = owner_src;
  synth.dst = owner_dst;
  SynthesisOptions options;
  if (const PolicyLsa* src_lsa = lsdb_.get(synth.src);
      src_lsa && src_lsa->has_source_policy) {
    options.avoid = src_lsa->avoid;
    options.max_hops = src_lsa->max_hops;
    options.minimize_cost = src_lsa->prefer_min_cost;
  }
  ++path_computations_;
  const LsdbView view(lsdb_, topo().ad_count(), config_.registry);
  const SynthesisResult result = synthesize_route(view, synth, options);
  total_expansions_ += result.expansions;
  if (!result.found()) return std::nullopt;
  if (self() == owner_src && result.path.size() == 1) {
    // Degenerate same-owner case is handled above; a one-hop path here
    // means src and dst attach to the same transit AD.
    return std::nullopt;
  }
  const auto at = std::find(result.path.begin(), result.path.end(), self());
  if (at == result.path.end() || at + 1 == result.path.end()) {
    // Not on the agreed transit path (or we ARE owner_dst, handled
    // above): inconsistency, drop.
    return std::nullopt;
  }
  return *(at + 1);
}

}  // namespace idr
