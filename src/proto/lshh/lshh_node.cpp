#include "proto/lshh/lshh_node.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace idr {

void LshhNode::start() { originate_lsa(); }

void LshhNode::originate_lsa() {
  PolicyLsa lsa;
  lsa.origin = self();
  lsa.seq = ++my_seq_;
  for (const Adjacency& adj : live_neighbors()) {
    lsa.adjacencies.push_back(
        PolicyLsaAdjacency{adj.neighbor, topo().link(adj.link).metric});
  }
  const auto terms = policies_->terms(self());
  lsa.terms.assign(terms.begin(), terms.end());
  // Hop-by-hop consistency forces sources to publish their private
  // route-selection criteria (paper §5.3).
  const SourcePolicy& sp = policies_->source_policy(self());
  lsa.has_source_policy = true;
  lsa.avoid = sp.avoid;
  lsa.max_hops = sp.max_hops;
  lsa.prefer_min_cost = sp.prefer_min_cost;
  lsdb_.insert(lsa);
  flood_lsa(lsa, kNoAd);
}

void LshhNode::flood_lsa(const PolicyLsa& lsa, AdId except) {
  wire::Writer w;
  w.u8(kMsgLsa);
  lsa.encode(w);
  send_to_neighbors(w.bytes(), except);
}

void LshhNode::on_message(AdId from, std::span<const std::uint8_t> bytes) {
  wire::Reader r(bytes);
  IDR_CHECK(r.u8() == kMsgLsa);
  auto lsa = PolicyLsa::decode(r);
  IDR_CHECK_MSG(lsa.has_value(), "malformed policy LSA");
  if (lsdb_.insert(*lsa)) flood_lsa(*lsa, from);
}

void LshhNode::on_link_change(AdId /*neighbor*/, bool /*up*/) {
  originate_lsa();
}

std::optional<AdId> LshhNode::forward(const FlowSpec& flow) {
  const std::uint64_t key = cache_key(flow);
  if (const auto it = cache_.find(key); it != cache_.end()) {
    if (it->second.db_version == lsdb_.version()) {
      ++cache_hits_;
      return it->second.next;
    }
    cache_.erase(it);
  }

  // Replicate the source's route computation: same database, same
  // deterministic search, same (published) source selection criteria.
  SynthesisOptions options;
  if (const PolicyLsa* src_lsa = lsdb_.get(flow.src);
      src_lsa && src_lsa->has_source_policy) {
    options.avoid = src_lsa->avoid;
    options.max_hops = src_lsa->max_hops;
    options.minimize_cost = src_lsa->prefer_min_cost;
  }
  ++path_computations_;
  const LsdbView view(lsdb_, topo().ad_count());
  const SynthesisResult result = synthesize_route(view, flow, options);
  total_expansions_ += result.expansions;

  std::optional<AdId> next;
  if (result.found()) {
    const auto at =
        std::find(result.path.begin(), result.path.end(), self());
    if (at != result.path.end() && at + 1 != result.path.end()) {
      next = *(at + 1);
    }
    // If we are not on the agreed path, the packet should never have
    // reached us; drop (next stays nullopt).
  }
  cache_[key] = CacheEntry{next, lsdb_.version()};
  return next;
}

}  // namespace idr
