// Link state + hop-by-hop + explicit policy terms (paper §5.3).
//
// Policy LSAs flood to every AD, so any AD *can* compute a legal route
// for any (source, flow) -- but because forwarding is hop-by-hop, every
// AD along the route must repeat the source's computation and reach the
// identical answer. That imposes the two costs the paper identifies:
//   1. per-source computation/state at transit ADs (a spanning tree per
//      traffic source rather than one per destination), and
//   2. sources must publish their route-selection criteria in their LSAs
//      (otherwise other ADs cannot replicate their decision), giving up
//      the privacy that source routing would preserve.
// Both are measured by the policy-granularity bench. Consistency is
// achieved by the deterministic shared synthesis procedure; during
// database convergence, inconsistent answers (and hence transient loops
// or drops) are possible and are counted by the convergence bench.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "policy/database.hpp"
#include "proto/common/node.hpp"
#include "proto/orwg/lsdb.hpp"
#include "util/dense_map.hpp"

namespace idr {

struct LshhConfig {
  // Origin-authentication keys, indexed by AdId (nullptr = auth off).
  // With auth on, every received LSA's toy MAC is verified against the
  // *origin's* key: a forged LSA signed by the liar's own key -- or a
  // re-flooded LSA whose content was tampered with in transit -- is
  // rejected and counted (lsas_rejected_auth + note_defense_rejection).
  const std::vector<std::uint64_t>* lsa_keys = nullptr;
  // Registered ground-truth policy for transit permission during path
  // synthesis (nullptr = trust the terms advertised in LSAs). This is
  // the route-leak defense: an AD cannot widen its transit policy by
  // advertising terms it never registered.
  const PolicySet* registry = nullptr;
  // Paper-scale hierarchical mode (§2: ~1e5 ADs, ~1e2 transit ADs): only
  // transit ADs originate LSAs (listing their attached stubs), floods
  // skip stub neighbors, stubs default-route to their lowest-id live
  // transit neighbor, and transit ADs route between stub *attachments*
  // over the transit-only database. The database and every FIB stay
  // O(transit ADs) instead of O(all ADs).
  bool hierarchical = false;
  // Hold-down for link-change-triggered re-origination (0 = immediate,
  // the historical behavior). Link transitions within the window
  // coalesce into at most one origination, and a window that ends with
  // LSA content identical to the database copy (the link flapped down
  // and back) re-floods nothing at all -- the re-flood scoping that
  // keeps a flapping access link from re-flooding the transit core per
  // transition. Periodic refresh bypasses this (it must bump seq).
  double link_holddown_ms = 0.0;
  // Graceful restart (off by default): a neighbor that crashes into a
  // grace window stays in live_neighbors() (Node::neighbor_alive treats
  // in-grace as up), so the adjacency is *retained* -- no re-origination,
  // no network-wide re-flood -- until either the restarted neighbor's
  // link-up resync or the guarded post-grace re-examination drops it.
  GrConfig gr;
};

class LshhNode : public ProtoNode {
 public:
  explicit LshhNode(const PolicySet* policies, LshhConfig config = {})
      : policies_(policies), config_(config) {}

  void start() override;
  void on_message(AdId from, std::span<const std::uint8_t> bytes) override;
  void on_link_change(AdId neighbor, bool up) override;

  // Re-originate our LSA every `ms` (0 disables, the default). The fresh
  // sequence number re-floods network-wide, repairing any database hole a
  // lost or corrupted flood left behind. Call before attach/start.
  void set_periodic_refresh(double ms) noexcept { periodic_refresh_ms_ = ms; }

  // Hop-by-hop forwarding decision for a packet of `flow` currently at
  // this AD: recompute (or fetch from the per-flow cache) the globally
  // agreed path for the flow and return our successor on it. nullopt if
  // no legal route, or if this AD is not on the computed path (the
  // inconsistency case -- the packet is dropped).
  [[nodiscard]] std::optional<AdId> forward(const FlowSpec& flow);

  [[nodiscard]] const PolicyLsdb& lsdb() const noexcept { return lsdb_; }
  [[nodiscard]] std::uint64_t path_computations() const noexcept {
    return path_computations_;
  }
  [[nodiscard]] std::uint64_t cache_hits() const noexcept {
    return cache_hits_;
  }
  [[nodiscard]] std::size_t cache_entries() const noexcept {
    return cache_.size();
  }
  [[nodiscard]] std::uint64_t total_expansions() const noexcept {
    return total_expansions_;
  }
  [[nodiscard]] std::uint64_t lsas_rejected_auth() const noexcept {
    return lsas_rejected_auth_;
  }
  [[nodiscard]] std::uint64_t originations_suppressed() const noexcept {
    return originations_suppressed_;
  }
  // GR accounting: adjacency retentions entered on a neighbor crash resp.
  // database resyncs pushed to a recovered neighbor.
  [[nodiscard]] std::uint64_t gr_retained() const noexcept {
    return gr_retained_;
  }
  [[nodiscard]] std::uint64_t gr_resyncs() const noexcept {
    return gr_resyncs_;
  }

  static constexpr std::uint8_t kMsgLsa = 1;

 private:
  struct CacheEntry {
    std::optional<AdId> next;
    std::uint64_t db_version = 0;
    // Adjacency-liveness epoch at computation time. The database version
    // alone cannot invalidate a stub's cache: stubs keep no database, so
    // a next hop (or negative result) computed while the parent transit
    // was dead would otherwise be served forever once it returns.
    std::uint64_t live_epoch = 0;
  };

  void originate_lsa(MsgClass cls = MsgClass::kUpdate);
  void originate_if_changed();
  void forge_victim_lsa();
  void sign_lsa(PolicyLsa& lsa) const;
  void flood_lsa(const PolicyLsa& lsa, AdId except,
                 MsgClass cls = MsgClass::kUpdate);
  void schedule_refresh();
  [[nodiscard]] bool is_transit() const { return topo().can_transit(self()); }
  // Transit AD a stub rides on: the lowest origin listing it as attached
  // (every transit AD computes the same owner from the same database,
  // which is what keeps hierarchical hop-by-hop forwarding consistent).
  [[nodiscard]] AdId attachment(AdId ad);
  [[nodiscard]] std::optional<AdId> flat_next(const FlowSpec& flow);
  [[nodiscard]] std::optional<AdId> hierarchical_next(const FlowSpec& flow);
  [[nodiscard]] static std::uint64_t cache_key(const FlowSpec& flow) noexcept {
    // Source-specific key: hop-by-hop policy routing cannot collapse
    // sources (the paper's state-blowup point).
    return (static_cast<std::uint64_t>(flow.src.v) << 40) ^
           (static_cast<std::uint64_t>(flow.dst.v) << 12) ^
           traffic_class_of(flow).index();
  }

  const PolicySet* policies_;
  LshhConfig config_;
  PolicyLsdb lsdb_;
  double periodic_refresh_ms_ = 0.0;
  std::uint32_t my_seq_ = 0;
  bool holddown_scheduled_ = false;  // a hold-down window is already open
  std::uint64_t live_epoch_ = 0;     // bumped on every on_link_change
  std::uint64_t originations_suppressed_ = 0;
  std::uint64_t gr_retained_ = 0;
  std::uint64_t gr_resyncs_ = 0;
  DenseMap<std::uint64_t, CacheEntry> cache_;
  // Lazily rebuilt stub -> owning transit AD index (hierarchical mode).
  DenseMap<std::uint32_t, std::uint32_t> attach_;
  std::uint64_t attach_version_ = ~0ull;
  std::uint64_t path_computations_ = 0;
  std::uint64_t cache_hits_ = 0;
  std::uint64_t total_expansions_ = 0;
  std::uint64_t lsas_rejected_auth_ = 0;
};

}  // namespace idr
