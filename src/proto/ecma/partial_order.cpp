#include "proto/ecma/partial_order.hpp"

#include <algorithm>
#include <deque>

#include "util/check.hpp"

namespace idr {

std::uint32_t PartialOrder::rank(AdId ad) const {
  IDR_CHECK(ad.v < rank_.size());
  return rank_[ad.v];
}

bool PartialOrder::is_up(AdId from, AdId to) const {
  const std::uint32_t rf = rank(from);
  const std::uint32_t rt = rank(to);
  if (rt != rf) return rt < rf;
  return to.v < from.v;  // deterministic tie-break keeps orientation acyclic
}

std::vector<OrderConstraint> structural_constraints(const Topology& topo) {
  std::vector<OrderConstraint> constraints;
  for (const Link& l : topo.links()) {
    if (l.cls == LinkClass::kLateral) continue;  // peers; no constraint
    const auto ca = static_cast<std::uint8_t>(topo.ad(l.a).cls);
    const auto cb = static_cast<std::uint8_t>(topo.ad(l.b).cls);
    if (ca == cb) continue;
    const AdId above = ca < cb ? l.a : l.b;
    const AdId below = ca < cb ? l.b : l.a;
    constraints.push_back(OrderConstraint{above, below, /*structural=*/true});
  }
  return constraints;
}

namespace {

// Attempts a layering. On success fills `ranks`. On failure returns the
// index (into `constraints`) of a droppable (non-structural) constraint
// participating in a cycle, or -1 if only structural constraints remain
// in cycles.
long try_layer(std::size_t ad_count,
               const std::vector<OrderConstraint>& constraints,
               std::vector<std::uint32_t>& ranks) {
  // Kahn topological layering over the constraint graph.
  std::vector<std::vector<std::uint32_t>> out(ad_count);  // above -> below
  std::vector<std::uint32_t> indegree(ad_count, 0);
  for (const OrderConstraint& c : constraints) {
    out[c.above.v].push_back(c.below.v);
    ++indegree[c.below.v];
  }
  ranks.assign(ad_count, 0);
  std::deque<std::uint32_t> frontier;
  for (std::uint32_t v = 0; v < ad_count; ++v) {
    if (indegree[v] == 0) frontier.push_back(v);
  }
  std::size_t placed = 0;
  while (!frontier.empty()) {
    const std::uint32_t u = frontier.front();
    frontier.pop_front();
    ++placed;
    for (std::uint32_t v : out[u]) {
      ranks[v] = std::max(ranks[v], ranks[u] + 1);
      if (--indegree[v] == 0) frontier.push_back(v);
    }
  }
  if (placed == ad_count) return -2;  // success
  // Some ADs remain in a cycle (indegree > 0). Find a non-structural
  // constraint between two such ADs to drop.
  for (std::size_t i = 0; i < constraints.size(); ++i) {
    const OrderConstraint& c = constraints[i];
    if (c.structural) continue;
    if (indegree[c.below.v] > 0 && (indegree[c.above.v] > 0)) {
      return static_cast<long>(i);
    }
  }
  // Fall back: any non-structural constraint into the cyclic region.
  for (std::size_t i = 0; i < constraints.size(); ++i) {
    if (!constraints[i].structural && indegree[constraints[i].below.v] > 0) {
      return static_cast<long>(i);
    }
  }
  return -1;  // cycle made purely of structural constraints: unsatisfiable
}

}  // namespace

OrderResult compute_partial_order(const Topology& topo,
                                  std::vector<OrderConstraint> policy) {
  OrderResult result;
  std::vector<OrderConstraint> constraints = structural_constraints(topo);
  constraints.insert(constraints.end(), policy.begin(), policy.end());

  std::vector<std::uint32_t> ranks;
  for (;;) {
    const long outcome = try_layer(topo.ad_count(), constraints, ranks);
    if (outcome == -2) {
      result.order = PartialOrder{std::move(ranks)};
      result.ok = true;
      return result;
    }
    if (outcome == -1) {
      result.ok = false;  // structural conflict: should not happen
      return result;
    }
    // Negotiation round: the authority asks the offending AD to withdraw
    // its constraint (paper: "negotiate with the ADs involved to revise
    // their policies").
    ++result.negotiation_rounds;
    result.dropped.push_back(constraints[static_cast<std::size_t>(outcome)]);
    constraints.erase(constraints.begin() + outcome);
  }
}

}  // namespace idr
