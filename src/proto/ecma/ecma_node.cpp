#include "proto/ecma/ecma_node.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace idr {

void EcmaNode::start() {
  if (config_.originate) {
    for (std::uint8_t q = 0; q < kQosCount; ++q) {
      if ((config_.qos_mask & (1u << q)) == 0) continue;
      Entry& e = rib_[key(self(), static_cast<Qos>(q))];
      // The empty path is trivially down-only (and trivially valid).
      e.best = Route{0, self(), true};
      e.best_down = Route{0, self(), true};
    }
  }
  if (!rib_.empty()) broadcast();
  schedule_refresh();
}

void EcmaNode::schedule_refresh() {
  if (periodic_refresh_ms_ <= 0.0) return;
  schedule_guarded(periodic_refresh_ms_, [this] {
    broadcast(MsgClass::kRefresh);
    schedule_refresh();
  });
}

bool EcmaNode::advertisable(AdId dst) const {
  if (dst == self()) return true;
  if (config_.stub) return false;
  if (!config_.export_dsts.empty() && !config_.export_dsts.contains(dst.v)) {
    return false;
  }
  return true;
}

std::vector<std::uint8_t> EcmaNode::encode_for(AdId /*neighbor*/) const {
  // Both route shapes are advertised, marked with the types of links they
  // traverse (paper §5.1.1: "routes described in distance vector updates
  // are marked as to the types of links traversed"); the receiver applies
  // the up/down usability rule for its own side of the link.
  //
  // A Byzantine/misconfigured AD lies here, at the advertisement point:
  //   * route leak  -- every route is marked down-only (hiding traversed
  //     up links breaks the receiver's up*down* usability filter) and the
  //     stub/export restrictions are ignored;
  //   * tamper      -- all metrics are zeroed, pulling traffic in;
  //   * false origin -- metric-0 reachability for the victim is appended.
  const Misbehavior mis = net().active_misbehavior(self());
  const SimTime now = net().engine().now();
  wire::Writer w;
  w.u8(kMsgUpdate);
  wire::Writer body;
  std::uint16_t count = 0;
  for (const auto [k, entry] : rib_) {
    const AdId dst{static_cast<std::uint32_t>(k >> 8)};
    const auto qos = static_cast<std::uint8_t>(k & 0xff);
    if (mis != Misbehavior::kRouteLeak && !advertisable(dst)) continue;
    // A damped key is advertised at infinity (a stable withdrawal): the
    // flap's churn dies here while local forwarding keeps the route.
    // Pure query only: a targeted encode (help, link-up refresh) must not
    // consume a pending release, or the release timer would find nothing
    // due and the network-wide re-advertisement would never happen.
    const bool damped = damper_.enabled() && dst != self() &&
                        damper_.would_suppress(k, now);
    for (const Route* r : {&entry.best, &entry.best_down}) {
      // A stale (graceful-restart retained) slot stays out of updates
      // entirely: not poisoned -- absence means "no change" to an ECMA
      // receiver -- and not advertised as usable either.
      if (r->stale) continue;
      const bool valid = r->valid(config_.infinity) && !damped;
      std::uint8_t down_only = r->down_only ? 1 : 0;
      std::uint16_t metric = valid ? r->metric : config_.infinity;
      if (mis == Misbehavior::kRouteLeak) down_only = 1;
      if (mis == Misbehavior::kTamper && valid) metric = 0;
      body.u32(dst.v);
      body.u8(qos);
      body.u8(down_only);
      body.u16(metric);
      ++count;
    }
  }
  if (mis == Misbehavior::kFalseOrigin) {
    const AdId victim = net().misbehavior_victim(self());
    if (victim.valid() && victim != self()) {
      for (std::uint8_t q = 0; q < kQosCount; ++q) {
        if ((config_.qos_mask & (1u << q)) == 0) continue;
        for (const std::uint8_t down_only : {0, 1}) {
          body.u32(victim.v);
          body.u8(q);
          body.u8(down_only);
          body.u16(0);
          ++count;
        }
      }
    }
  }
  w.u16(count);
  w.raw(body.bytes());
  return std::move(w).take();
}

const EcmaNode::SenderBound& EcmaNode::sender_bound(AdId from) {
  const auto it = sender_bounds_.find(from.v);
  if (it != sender_bounds_.end()) return it->second;
  SenderBound bound;
  const std::size_t n = topo().ad_count();
  // Plain BFS twice: once over every static link, once over down hops
  // only (a down hop from a's side is any a->b with is_up(a, b) false).
  for (const bool down_only : {false, true}) {
    std::vector<std::uint16_t>& dist = down_only ? bound.down_dist : bound.dist;
    dist.assign(n, 0xffff);
    dist[from.v] = 0;
    std::vector<AdId> frontier{from};
    while (!frontier.empty()) {
      std::vector<AdId> next_frontier;
      for (const AdId cur : frontier) {
        for (const Adjacency& adj : topo().neighbors(cur)) {
          if (down_only && order_->is_up(cur, adj.neighbor)) continue;
          if (dist[adj.neighbor.v] != 0xffff) continue;
          dist[adj.neighbor.v] =
              static_cast<std::uint16_t>(dist[cur.v] + 1);
          next_frontier.push_back(adj.neighbor);
        }
      }
      frontier = std::move(next_frontier);
    }
  }
  return sender_bounds_.emplace(from.v, std::move(bound)).first->second;
}

bool EcmaNode::defense_accepts(const SenderBound& bound, AdId from, AdId dst,
                               bool adv_down_only, std::uint16_t adv) const {
  if (dst != from) {
    // Role legality: a stub/multihomed AD never advertises transit
    // routes; a hybrid only for its own neighbors.
    const AdRole role = topo().ad(from).role;
    if (role == AdRole::kStub || role == AdRole::kMultiHomed) return false;
    if (role == AdRole::kHybrid && !topo().find_link(from, dst)) return false;
  }
  if (adv < bound.dist[dst.v]) return false;
  if (adv_down_only && adv < bound.down_dist[dst.v]) return false;
  return true;
}

void EcmaNode::broadcast(MsgClass cls) {
  // encode_for ignores the neighbor (full-table updates, receiver-side
  // usability filtering), so one encode serves every adjacency.
  Payload payload;
  for_each_live_neighbor([&](const Adjacency& adj) {
    if (!payload) payload = make_payload(encode_for(adj.neighbor));
    net().send(self(), adj.neighbor, payload, cls);
  });
}

void EcmaNode::trigger_broadcast() {
  if (config_.mrai_ms <= 0.0) {
    broadcast();
    return;
  }
  if (broadcast_scheduled_) return;
  broadcast_scheduled_ = true;
  schedule_guarded(config_.mrai_ms, [this] {
    broadcast_scheduled_ = false;
    broadcast();
  });
}

void EcmaNode::on_message(AdId from, std::span<const std::uint8_t> bytes) {
  // Parse the whole update before touching the RIB: a truncated or
  // corrupted PDU is counted and dropped, never partially applied.
  wire::Reader r(bytes);
  const std::uint8_t type = r.u8();
  const std::uint16_t count = r.u16();
  struct RawEntry {
    AdId dst;
    std::uint8_t qos_raw;
    bool adv_down_only;
    std::uint16_t adv;
  };
  std::vector<RawEntry> entries;
  if (r.ok() && type == kMsgUpdate) {
    entries.reserve(count);
    for (std::uint16_t i = 0; i < count && r.ok(); ++i) {
      RawEntry e;
      e.dst = AdId{r.u32()};
      e.qos_raw = r.u8();
      e.adv_down_only = r.u8() != 0;
      e.adv = r.u16();
      if (r.ok()) entries.push_back(e);
    }
  }
  if (!r.ok() || type != kMsgUpdate || entries.size() != count) {
    drop_malformed();
    return;
  }
  // Link self -> from: "from is below us" means that link is a down link
  // from our side, hence an up link from theirs.
  const bool from_is_below = neighbor_is_below(from);

  // Collect, per (dst, qos), the best usable candidate for each of our
  // two slots before touching the RIB (a single neighbor now advertises
  // up to two routes per key).
  struct Candidates {
    Route any{0xffff, kNoAd, false};
    Route down{0xffff, kNoAd, false};
    // Best metric the neighbor claims for this key regardless of shape
    // (used by the help heuristic below).
    std::uint16_t their_best = 0xffff;
  };
  DenseMap<std::uint64_t, Candidates> per_key;
  const SenderBound* bound =
      config_.receiver_order_check ? &sender_bound(from) : nullptr;
  for (const RawEntry& entry : entries) {
    const AdId dst = entry.dst;
    const std::uint8_t qos_raw = entry.qos_raw;
    const bool adv_down_only = entry.adv_down_only;
    const std::uint16_t adv = entry.adv;
    if (dst == self()) continue;
    if (qos_raw >= kQosCount) continue;
    if (dst.v >= topo().ad_count()) continue;
    const auto qos = static_cast<Qos>(qos_raw);
    if ((config_.qos_mask & qos_bit(qos)) == 0) continue;
    if (bound && adv < config_.infinity &&
        !defense_accepts(*bound, from, dst, adv_down_only, adv)) {
      // Provably illegal claim: drop the entry entirely (it must not
      // even feed the help heuristic's view of the neighbor).
      net().note_defense_rejection(self());
      continue;
    }

    Candidates& cand = per_key[key(dst, qos)];
    cand.their_best = std::min(cand.their_best, adv);
    // Up/down rule: reaching `from` over a down link means the remainder
    // must be down-only.
    const bool usable = !from_is_below || adv_down_only;
    if (!usable || adv >= config_.infinity) continue;
    const auto metric = static_cast<std::uint16_t>(
        std::min<std::uint32_t>(adv + 1u, config_.infinity));
    if (metric >= config_.infinity) continue;
    // Our resulting route's shape.
    const bool down_only = from_is_below && adv_down_only;
    if (metric < cand.any.metric) cand.any = Route{metric, from, down_only};
    if (down_only && metric < cand.down.metric) {
      cand.down = Route{metric, from, true};
    }
  }

  bool changed = false;
  auto apply = [&](Route& slot, const Route& candidate) -> bool {
    const bool qualifies = candidate.metric < config_.infinity;
    if (slot.valid(config_.infinity) && slot.via == from) {
      // The via is talking (again): any stale-retained entry through it
      // is refreshed, whether or not the metric moved.
      slot.stale = false;
      // Authoritative update from the current next hop.
      const Route revised =
          qualifies ? candidate : Route{config_.infinity, from, false};
      if (revised.metric != slot.metric ||
          revised.down_only != slot.down_only || revised.via != slot.via) {
        slot = revised;
        return true;
      }
    } else if (qualifies && candidate.metric < slot.metric) {
      slot = candidate;
      return true;
    }
    return false;
  };
  for (const auto [k, cand] : per_key) {
    Entry& entry = rib_[k];
    const bool had_route = entry.best.valid(config_.infinity) ||
                           entry.best_down.valid(config_.infinity);
    bool key_changed = apply(entry.best, cand.any);
    key_changed |= apply(entry.best_down, cand.down);
    if (key_changed) {
      // First learning a destination is not a flap (RFC 2439 shape):
      // only changes to previously-valid state accrue penalty, so cold
      // start converges penalty-free.
      const bool newly_suppressed = had_route && note_route_flap(k);
      // A change confined to an already-suppressed key does not alter
      // what we advertise (the key encodes at infinity either way), so
      // it must not trigger an update wave -- this is where damping cuts
      // the flap cascade. The crossing INTO suppression still broadcasts
      // once: that update is the withdrawal neighbors key off.
      if (newly_suppressed || !damper_.enabled() ||
          !damper_.would_suppress(k, net().engine().now())) {
        changed = true;
      }
    }
  }

  if (changed) trigger_broadcast();

  // Repair heuristic: if the neighbor explicitly advertised a route
  // strictly worse than what we could offer it (+1 hop) -- typically a
  // just-poisoned entry at infinity -- offer our table directly. This
  // replaces RIP-style periodic refresh in the event-driven simulation.
  // Keys absent from the neighbor's update are NOT treated as lagging
  // (absence can be a stub/export filter); helping only on explicit
  // regressions makes every help a strict improvement at the receiver,
  // which bounds the exchange.
  bool help = false;
  for (const auto [k, cand] : per_key) {
    const AdId dst{static_cast<std::uint32_t>(k >> 8)};
    if (dst == from) continue;
    if (!advertisable(dst)) continue;
    const Entry* e = rib_.find(k);
    if (!e) continue;
    // What `from` could use from us: any shape if they reach us over an
    // up link (we are above them, i.e. from is below), else down-only.
    const Route& offered = from_is_below ? e->best : e->best_down;
    if (!offered.valid(config_.infinity) || offered.via == from) continue;
    // A suppressed key encodes at infinity, so "helping" with it would
    // send nothing usable -- the offer must reflect the encoded view.
    if (damper_.enabled() &&
        damper_.would_suppress(k, net().engine().now())) {
      continue;
    }
    if (offered.metric + 1u < cand.their_best) {
      help = true;
      break;
    }
  }
  if (help) net().send(self(), from, encode_for(from));
}

void EcmaNode::on_link_change(AdId neighbor, bool up) {
  if (up) {
    if (damper_.enabled() || config_.gr.enabled) {
      // A link-up does not change our RIB, so a network-wide broadcast
      // would be byte-identical to what every other neighbor already
      // holds; only the recovered neighbor needs the table refresh.
      // Under GR this targeted table is the incremental resync a
      // restarted neighbor rebuilds its RIB from.
      if (config_.gr.enabled) ++gr_resyncs_;
      net().send(self(), neighbor, encode_for(neighbor));
    } else {
      broadcast();
    }
    return;
  }
  if (config_.gr.enabled && net().in_grace(neighbor)) {
    // Graceful restart: the neighbor crashed into a grace window. Keep
    // its routes in the FIB (its frozen data plane still forwards) but
    // flag them stale so they drop out of our updates; poison whatever
    // its resync has not refreshed once grace expires.
    bool any = false;
    for (auto [k, entry] : rib_) {
      (void)k;
      for (Route* slot : {&entry.best, &entry.best_down}) {
        if (slot->valid(config_.infinity) && slot->via == neighbor &&
            slot->via != self()) {
          slot->stale = true;
          any = true;
        }
      }
    }
    if (any) {
      schedule_guarded(config_.gr.grace_ms + 0.1,
                       [this, neighbor] { flush_stale(neighbor); });
    }
    return;
  }
  bool changed = false;
  for (auto [k, entry] : rib_) {
    bool key_changed = false;
    for (Route* slot : {&entry.best, &entry.best_down}) {
      if (slot->valid(config_.infinity) && slot->via == neighbor &&
          slot->via != self()) {
        slot->metric = config_.infinity;
        key_changed = true;
      }
    }
    if (key_changed) {
      // Poisoned routes were valid by definition, so this is a flap; a
      // crossing into suppression must still be broadcast (see above).
      const bool newly_suppressed = note_route_flap(k);
      if (newly_suppressed || !damper_.enabled() ||
          !damper_.would_suppress(k, net().engine().now())) {
        changed = true;
      }
    }
  }
  if (changed) broadcast(MsgClass::kWithdrawal);
}

void EcmaNode::flush_stale(AdId neighbor) {
  if (net().in_grace(neighbor)) {
    // The neighbor crashed again and its grace window was extended;
    // retry after the extension.
    schedule_guarded(config_.gr.grace_ms + 0.1,
                     [this, neighbor] { flush_stale(neighbor); });
    return;
  }
  // Grace expired. If the neighbor resynced in time every stale flag was
  // cleared by its refreshed advertisements and this is a no-op; what is
  // still flagged was never re-advertised and gets the deferred poison.
  bool changed = false;
  for (auto [k, entry] : rib_) {
    bool key_changed = false;
    for (Route* slot : {&entry.best, &entry.best_down}) {
      if (slot->stale && slot->via == neighbor) {
        slot->metric = config_.infinity;
        slot->stale = false;
        key_changed = true;
        ++gr_stale_flushed_;
      }
    }
    if (key_changed) {
      const bool newly_suppressed = note_route_flap(k);
      if (newly_suppressed || !damper_.enabled() ||
          !damper_.would_suppress(k, net().engine().now())) {
        changed = true;
      }
    }
  }
  if (changed) broadcast(MsgClass::kWithdrawal);
}

bool EcmaNode::note_route_flap(std::uint64_t k) {
  if (!damper_.enabled()) return false;
  const bool newly_suppressed = damper_.note_flap(k, net().engine().now());
  maybe_schedule_release_check();
  return newly_suppressed;
}

void EcmaNode::maybe_schedule_release_check() {
  if (release_check_scheduled_) return;
  const SimTime now = net().engine().now();
  const SimTime eta = damper_.next_release_eta(now);
  if (eta < 0.0) return;
  // A hair past the analytic release time, so the encode that this timer
  // triggers observes the key already below the reuse threshold.
  release_check_scheduled_ = true;
  schedule_guarded(std::max(eta - now, 0.0) + 0.1, [this] {
    release_check_scheduled_ = false;
    // Release directly: encode only queries keys still in the table, so
    // the timer must not depend on it to clear due suppressions.
    if (damper_.release_due(net().engine().now()) > 0) trigger_broadcast();
    maybe_schedule_release_check();
  });
}

std::optional<EcmaNode::Forwarding> EcmaNode::forward(AdId dst, Qos qos,
                                                      bool gone_down) const {
  const Entry* e = rib_.find(key(dst, qos));
  if (!e) return std::nullopt;
  const Route& r = gone_down ? e->best_down : e->best;
  if (!r.valid(config_.infinity) || r.via == self()) return std::nullopt;
  // Traversing a down link sets the packet's gone-down marker.
  const bool link_is_down = neighbor_is_below(r.via);
  return Forwarding{r.via, link_is_down};
}

std::uint16_t EcmaNode::distance(AdId dst, Qos qos) const {
  const Entry* e = rib_.find(key(dst, qos));
  if (!e) return config_.infinity;
  return e->best.metric;
}

std::size_t EcmaNode::fib_entries() const noexcept {
  std::size_t n = 0;
  for (const auto [k, entry] : rib_) {
    (void)k;
    if (entry.best.valid(config_.infinity)) ++n;
    if (entry.best_down.valid(config_.infinity)) ++n;
  }
  return n;
}

}  // namespace idr
