// The ECMA/NIST partial ordering (paper §5.1.1).
//
// ECMA suppresses DV looping and count-to-infinity by imposing a global
// partial ordering on ADs: every inter-AD link is labelled "up" or "down"
// and once a packet traverses a down link it may never traverse another
// up link. The ordering must be computed and maintained by a central
// authority from the ADs' policy requirements; policies that cannot
// coexist in a single ordering force negotiation (the paper's core
// scalability objection). This module implements that authority:
// structural constraints derived from the hierarchy plus AD-submitted
// policy constraints, cycle (conflict) detection, and negotiation rounds
// that drop conflicting policy constraints until an ordering exists.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/graph.hpp"

namespace idr {

// "above must sit strictly higher than below in the ordering."
struct OrderConstraint {
  AdId above;
  AdId below;
  bool structural = false;  // derived from hierarchy (never negotiable)

  friend bool operator==(const OrderConstraint&,
                         const OrderConstraint&) = default;
};

class PartialOrder {
 public:
  PartialOrder() = default;
  explicit PartialOrder(std::vector<std::uint32_t> ranks)
      : rank_(std::move(ranks)) {}

  [[nodiscard]] std::uint32_t rank(AdId ad) const;

  // Direction of the link from `from` toward `to`. "Up" means toward a
  // higher-ranked AD (numerically smaller rank). Equal ranks are broken
  // by AD id so the induced orientation is a total order (acyclic).
  [[nodiscard]] bool is_up(AdId from, AdId to) const;

  [[nodiscard]] bool empty() const noexcept { return rank_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return rank_.size(); }

 private:
  std::vector<std::uint32_t> rank_;  // indexed by AdId; 0 = top
};

struct OrderResult {
  PartialOrder order;
  // Policy constraints that had to be dropped in negotiation because no
  // single ordering could satisfy them all.
  std::vector<OrderConstraint> dropped;
  std::size_t negotiation_rounds = 0;
  bool ok = false;  // false only if structural constraints conflict
};

// Structural constraints implied by the topology: across each hierarchical
// or bypass link the AD of higher hierarchy class sits above the other.
std::vector<OrderConstraint> structural_constraints(const Topology& topo);

// Central-authority computation: layer the constraint graph (longest-path
// ranks). If the constraints contain a cycle, drop one policy constraint
// on the cycle per negotiation round and retry.
OrderResult compute_partial_order(const Topology& topo,
                                  std::vector<OrderConstraint> policy);

}  // namespace idr
