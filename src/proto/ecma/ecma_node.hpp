// ECMA/NIST inter-AD routing (paper §5.1.1): distance vector, hop-by-hop,
// policy embedded in topology via the partial ordering's up/down rule.
//
// Mechanics implemented exactly as the paper describes:
//  * every link is up or down per the global PartialOrder;
//  * a route's shape must be up*down* (once down, never up again);
//  * routing updates carry a "down-only" flag so neighbors can tell which
//    routes remain usable after a down-link traversal;
//  * each AD keeps, per (destination, QoS), its best valid route of any
//    shape and its best down-only route -- the two FIBs hop-by-hop
//    forwarding needs, because a packet that has traversed a down link may
//    only follow down-only routes;
//  * per-QoS FIBs; a neighbor that does not support a QoS gets an
//    infinite metric for it;
//  * destination-specific export filters (an AD may serve transit for a
//    subset of destinations only).
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "policy/flow.hpp"
#include "policy/term.hpp"
#include "proto/common/damping.hpp"
#include "proto/common/node.hpp"
#include "proto/ecma/partial_order.hpp"
#include "util/dense_map.hpp"

namespace idr {

struct EcmaConfig {
  std::uint16_t infinity = 64;
  std::uint8_t qos_mask = kAllQosMask;  // QoS classes this AD supports
  // Destinations this AD will advertise transit for (empty = all).
  std::unordered_set<std::uint32_t> export_dsts;
  // Stub behaviour: advertise only own reachability (no transit routes).
  bool stub = false;
  // Originate reachability for this AD at all. At paper scale (~1e5 ADs)
  // all-pairs DV state is infeasible and unnecessary; the scale profile
  // has only a sampled set of beacon ADs originate, so RIBs stay
  // O(beacons) while every AD still participates in transit.
  bool originate = true;
  // Receiver-side Byzantine defense (the sender-side up/down rule is what
  // a misconfigured or lying AD violates): every incoming advertisement is
  // checked against static-topology lower bounds -- a claimed metric below
  // the sender's static distance to dst is impossible, a down-only claim
  // below the sender's static down-links-only distance is a leaked
  // down-then-up route, and a transit advertisement from a stub/multihomed
  // role (or a hybrid for a non-neighbor dst) violates its known role.
  // Rejections are counted via Network::note_defense_rejection.
  bool receiver_order_check = false;
  // Min route advertisement interval: coalesce change-triggered
  // broadcasts into one update per window (0 = advertise immediately,
  // the historical behavior). At paper scale every beacon arrival would
  // otherwise trigger a separate full-table broadcast.
  double mrai_ms = 0.0;
  // Route-flap damping (off by default): per-(dst, qos) penalty on every
  // selected-route change; suppressed keys are advertised at infinity
  // (local forwarding keeps the route) until the penalty decays to the
  // reuse threshold, at which point a release timer re-advertises them.
  DampingConfig damping;
  // Graceful restart (off by default): when a neighbor crashes into a
  // grace window, its routes are stale-flagged -- kept in the FIB and
  // excluded from re-advertisement -- instead of poisoned; a guarded
  // timer poisons whatever the neighbor's resync has not refreshed by
  // grace expiry.
  GrConfig gr;
};

class EcmaNode : public ProtoNode {
 public:
  // All nodes share one immutable PartialOrder (computed by the central
  // authority before the protocol starts -- the paper's deployment model).
  EcmaNode(const PartialOrder* order, EcmaConfig config)
      : order_(order), config_(std::move(config)) {}

  void start() override;
  void on_message(AdId from, std::span<const std::uint8_t> bytes) override;
  void on_link_change(AdId neighbor, bool up) override;

  // Re-broadcast the full table every `ms` (0 disables, the default).
  // Triggered updates ride an unreliable datagram service, so a lost (or
  // checksum-discarded) update would otherwise leave a neighbor stale
  // forever; the periodic refresh bounds that staleness. Call before
  // attach/start.
  void set_periodic_refresh(double ms) noexcept { periodic_refresh_ms_ = ms; }

  // Forwarding decision for a packet toward dst with the given QoS that
  // has (or has not) already traversed a down link. Returns the neighbor
  // to forward to and whether the packet's gone-down flag must be set.
  struct Forwarding {
    AdId via;
    bool sets_gone_down;
  };
  [[nodiscard]] std::optional<Forwarding> forward(AdId dst, Qos qos,
                                                  bool gone_down) const;

  [[nodiscard]] std::uint16_t distance(AdId dst, Qos qos) const;
  [[nodiscard]] std::size_t fib_entries() const noexcept;
  [[nodiscard]] const PartialOrder& order() const noexcept { return *order_; }
  [[nodiscard]] FlapDamper& damper() noexcept { return damper_; }
  // GR accounting: RIB slots poisoned at grace expiry resp. targeted
  // resync tables sent to a recovered neighbor.
  [[nodiscard]] std::uint64_t gr_stale_flushed() const noexcept {
    return gr_stale_flushed_;
  }
  [[nodiscard]] std::uint64_t gr_resyncs() const noexcept {
    return gr_resyncs_;
  }

  static constexpr std::uint8_t kMsgUpdate = 1;

 private:
  struct Route {
    std::uint16_t metric = 0xffff;
    AdId via;
    bool down_only = false;
    // Graceful-restart retention: the via is restarting; keep forwarding
    // over this route but stop advertising it until refreshed or flushed.
    bool stale = false;
    [[nodiscard]] bool valid(std::uint16_t infinity) const noexcept {
      return metric < infinity;
    }
  };
  struct Entry {
    Route best;       // best valid route of any shape (up*down*)
    Route best_down;  // best route using down links only
  };

  [[nodiscard]] static std::uint64_t key(AdId dst, Qos qos) noexcept {
    return (static_cast<std::uint64_t>(dst.v) << 8) |
           static_cast<std::uint8_t>(qos);
  }

  void broadcast(MsgClass cls = MsgClass::kUpdate);
  void trigger_broadcast();
  void schedule_refresh();
  void flush_stale(AdId neighbor);
  // Returns true when this flap newly suppressed the key (see
  // FlapDamper::note_flap): the crossing must still be broadcast.
  bool note_route_flap(std::uint64_t k);
  void maybe_schedule_release_check();
  [[nodiscard]] bool advertisable(AdId dst) const;
  // Damping is consulted via the pure would_suppress only: all releases
  // are performed by the release timer, which always re-broadcasts.
  [[nodiscard]] std::vector<std::uint8_t> encode_for(AdId neighbor) const;

  // Static per-sender distance lower bounds for the receiver-side
  // defense, computed lazily over the full (state-independent) topology:
  // live distances can only be >= these, so any advertisement below them
  // is a provable lie.
  struct SenderBound {
    std::vector<std::uint16_t> dist;       // any-shape hops from sender
    std::vector<std::uint16_t> down_dist;  // down-links-only hops
  };
  [[nodiscard]] const SenderBound& sender_bound(AdId from);
  [[nodiscard]] bool defense_accepts(const SenderBound& bound, AdId from,
                                     AdId dst, bool adv_down_only,
                                     std::uint16_t adv) const;
  std::unordered_map<std::uint32_t, SenderBound> sender_bounds_;
  [[nodiscard]] bool neighbor_is_below(AdId neighbor) const {
    // Link self -> neighbor is a down link from our perspective.
    return !order_->is_up(self(), neighbor);
  }

  const PartialOrder* order_;
  EcmaConfig config_;
  FlapDamper damper_{config_.damping};
  double periodic_refresh_ms_ = 0.0;
  std::uint64_t gr_stale_flushed_ = 0;
  std::uint64_t gr_resyncs_ = 0;
  bool broadcast_scheduled_ = false;  // an MRAI window is already open
  bool release_check_scheduled_ = false;  // a damping release timer is set
  // Struct-of-arrays FIB keyed by (dst, qos); contiguous iteration is the
  // encode hot path and insertion-order walks keep runs deterministic.
  DenseMap<std::uint64_t, Entry> rib_;
  // Last advertised route per neighbor direction is recomputed on demand;
  // full-table triggered updates keep the protocol simple and honest.
};

}  // namespace idr
