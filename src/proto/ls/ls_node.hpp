// Link-state IGP baseline (OSPF/IS-IS-like, paper §3): nodes flood link
// state advertisements carrying one metric per QoS class and each node
// repeats a Dijkstra computation per QoS over its LSDB. Demonstrates the
// paper's observation that per-QoS replication is tolerable for a handful
// of classes but is the mechanism that fails to scale to per-source policy.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "policy/flow.hpp"
#include "proto/common/node.hpp"

namespace idr {

// One adjacency inside an LSA: neighbor plus a metric per QoS class.
struct LsAdjacency {
  AdId neighbor;
  std::array<std::uint16_t, kQosCount> metric{};
};

struct Lsa {
  AdId origin;
  std::uint32_t seq = 0;
  std::vector<LsAdjacency> adjacencies;

  void encode(wire::Writer& w) const;
  static std::optional<Lsa> decode(wire::Reader& r);
};

class LsNode : public ProtoNode {
 public:
  void start() override;
  void on_message(AdId from, std::span<const std::uint8_t> bytes) override;
  void on_link_change(AdId neighbor, bool up) override;

  // Next hop toward dst for the given QoS; recomputes lazily after LSDB
  // changes. nullopt if unreachable.
  [[nodiscard]] std::optional<AdId> next_hop(AdId dst, Qos qos);

  [[nodiscard]] std::size_t lsdb_size() const noexcept { return lsdb_.size(); }
  [[nodiscard]] std::size_t fib_size() const noexcept {
    std::size_t n = 0;
    for (const auto& table : next_hop_) n += table.size();
    return n;
  }
  [[nodiscard]] std::uint64_t spf_runs() const noexcept { return spf_runs_; }
  [[nodiscard]] std::uint64_t lsas_originated() const noexcept {
    return lsas_originated_;
  }

  static constexpr std::uint8_t kMsgLsa = 1;

 private:
  void originate_lsa();
  void flood(const Lsa& lsa, AdId except);
  void recompute(Qos qos);

  std::unordered_map<std::uint32_t, Lsa> lsdb_;  // origin -> newest LSA
  std::uint32_t my_seq_ = 0;
  bool dirty_ = true;
  // next_hop_[qos][dst] -> via (kNoAd when unreachable).
  std::array<std::unordered_map<std::uint32_t, AdId>, kQosCount> next_hop_;
  std::uint64_t spf_runs_ = 0;
  std::uint64_t lsas_originated_ = 0;
};

}  // namespace idr
