#include "proto/ls/ls_node.hpp"

#include <limits>
#include <queue>

#include "util/check.hpp"

namespace idr {

void Lsa::encode(wire::Writer& w) const {
  w.u32(origin.v);
  w.u32(seq);
  w.u16(static_cast<std::uint16_t>(adjacencies.size()));
  for (const LsAdjacency& adj : adjacencies) {
    w.u32(adj.neighbor.v);
    for (std::uint16_t m : adj.metric) w.u16(m);
  }
}

std::optional<Lsa> Lsa::decode(wire::Reader& r) {
  Lsa lsa;
  lsa.origin = AdId{r.u32()};
  lsa.seq = r.u32();
  const std::uint16_t count = r.u16();
  for (std::uint16_t i = 0; i < count && r.ok(); ++i) {
    LsAdjacency adj;
    adj.neighbor = AdId{r.u32()};
    for (auto& m : adj.metric) m = r.u16();
    lsa.adjacencies.push_back(adj);
  }
  if (!r.ok()) return std::nullopt;
  return lsa;
}

void LsNode::start() { originate_lsa(); }

void LsNode::originate_lsa() {
  Lsa lsa;
  lsa.origin = self();
  lsa.seq = ++my_seq_;
  ++lsas_originated_;
  for (const Adjacency& adj : live_neighbors()) {
    LsAdjacency entry;
    entry.neighbor = adj.neighbor;
    const std::uint16_t base =
        static_cast<std::uint16_t>(topo().link(adj.link).metric);
    // Per-QoS metrics: the delay-sensitive class weights the link's delay,
    // others use the administrative metric (a simple but honest model of
    // OSPF TOS metrics).
    for (std::size_t q = 0; q < kQosCount; ++q) entry.metric[q] = base;
    entry.metric[static_cast<std::size_t>(Qos::kLowDelay)] =
        static_cast<std::uint16_t>(
            std::min(65535.0, topo().link(adj.link).delay_ms + 1.0));
    lsa.adjacencies.push_back(entry);
  }
  lsdb_[self().v] = lsa;
  dirty_ = true;
  flood(lsa, kNoAd);
}

void LsNode::flood(const Lsa& lsa, AdId except) {
  wire::Writer w;
  w.u8(kMsgLsa);
  lsa.encode(w);
  send_to_neighbors(w.bytes(), except);
}

void LsNode::on_message(AdId from, std::span<const std::uint8_t> bytes) {
  wire::Reader r(bytes);
  const std::uint8_t type = r.u8();
  if (!r.ok() || type != kMsgLsa) {
    drop_malformed();
    return;
  }
  auto lsa = Lsa::decode(r);
  if (!lsa.has_value()) {
    drop_malformed();
    return;
  }
  if (lsa->origin == self()) {
    // Our own pre-crash LSA echoed back with a sequence number ahead of
    // ours (we restarted cold and our counter reset): jump past it and
    // re-originate, so the reborn adjacency set supersedes the stale one
    // network-wide (OSPF's sequence-number recovery). Strictly greater:
    // an echo of our *current* instance (seq equal) must not trigger a
    // re-origination loop.
    if (lsa->seq > my_seq_) {
      my_seq_ = lsa->seq;
      originate_lsa();
    }
    return;
  }
  auto it = lsdb_.find(lsa->origin.v);
  if (it != lsdb_.end() && it->second.seq >= lsa->seq) {
    if (it->second.seq > lsa->seq) {
      // Answer a stale copy with the newer database copy (OSPF's rule),
      // so a cold-restarted origin whose one-shot DB sync was lost keeps
      // being told its pre-crash sequence number on every refresh.
      wire::Writer w;
      w.u8(kMsgLsa);
      it->second.encode(w);
      send_pdu(from, std::move(w));
    }
    return;
  }
  lsdb_[lsa->origin.v] = *lsa;
  dirty_ = true;
  flood(*lsa, from);
}

void LsNode::on_link_change(AdId neighbor, bool up) {
  originate_lsa();
  if (up && neighbor.valid()) {
    // Database synchronization for a neighbor that just (re)appeared: a
    // cold-restarted node only ever hears LSAs flooded after its rebirth,
    // so send it the whole database (OSPF's DB exchange, simplified).
    for (const auto& [origin, lsa] : lsdb_) {
      (void)origin;
      wire::Writer w;
      w.u8(kMsgLsa);
      lsa.encode(w);
      send_pdu(neighbor, std::move(w));
    }
  }
}

void LsNode::recompute(Qos qos) {
  const auto q = static_cast<std::size_t>(qos);
  next_hop_[q].clear();
  ++spf_runs_;
  // Dijkstra over the LSDB view. An edge is usable only if both endpoints
  // advertise it (bidirectional check, as in OSPF).
  std::unordered_map<std::uint32_t, std::uint64_t> dist;
  std::unordered_map<std::uint32_t, std::uint32_t> parent;
  using Entry = std::pair<std::uint64_t, std::uint32_t>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap;
  dist[self().v] = 0;
  heap.emplace(0, self().v);
  auto advertises = [&](std::uint32_t from, std::uint32_t to,
                        std::uint16_t& metric_out) {
    const auto it = lsdb_.find(from);
    if (it == lsdb_.end()) return false;
    for (const LsAdjacency& adj : it->second.adjacencies) {
      if (adj.neighbor.v == to) {
        metric_out = adj.metric[q];
        return true;
      }
    }
    return false;
  };
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d != dist[u]) continue;
    const auto it = lsdb_.find(u);
    if (it == lsdb_.end()) continue;
    for (const LsAdjacency& adj : it->second.adjacencies) {
      std::uint16_t back_metric = 0;
      if (!advertises(adj.neighbor.v, u, back_metric)) continue;
      const std::uint64_t nd = d + adj.metric[q];
      const auto dit = dist.find(adj.neighbor.v);
      if (dit == dist.end() || nd < dit->second) {
        dist[adj.neighbor.v] = nd;
        parent[adj.neighbor.v] = u;
        heap.emplace(nd, adj.neighbor.v);
      }
    }
  }
  for (const auto& [dst, d] : dist) {
    (void)d;
    if (dst == self().v) continue;
    // Walk back to find the first hop from self.
    std::uint32_t at = dst;
    while (parent.contains(at) && parent[at] != self().v) at = parent[at];
    if (parent.contains(at)) next_hop_[q][dst] = AdId{at};
  }
}

std::optional<AdId> LsNode::next_hop(AdId dst, Qos qos) {
  if (dirty_) {
    for (std::uint8_t q = 0; q < kQosCount; ++q) {
      recompute(static_cast<Qos>(q));
    }
    dirty_ = false;
  }
  const auto& table = next_hop_[static_cast<std::size_t>(qos)];
  const auto it = table.find(dst.v);
  if (it == table.end()) return std::nullopt;
  return it->second;
}

}  // namespace idr
