#include "core/metrics.hpp"

#include <cmath>

namespace idr {

ArchEvaluation evaluate_architecture(RoutingArchitecture& arch,
                                     const Topology& topo,
                                     const PolicySet& policies,
                                     std::span<const FlowSpec> flows) {
  ArchEvaluation eval;
  eval.arch = arch.name();
  eval.design_point = arch.design_point().describe();
  eval.flows = flows.size();

  if (!arch.applicable(topo)) {
    eval.applicable = false;
    return eval;
  }
  if (!arch.built()) arch.build(topo, policies);
  eval.convergence = arch.initial_convergence();

  const Oracle oracle(topo, policies);
  double stretch_sum = 0.0;
  std::size_t stretch_count = 0;
  double path_len_sum = 0.0;

  for (const FlowSpec& flow : flows) {
    const SynthesisResult best = oracle.best_route(flow);
    const bool oracle_has = best.found();
    if (oracle_has) ++eval.oracle_routes;

    const RouteTrace trace = arch.trace(flow);
    if (trace.looped) {
      ++eval.looped;
      continue;
    }
    if (!trace.path) {
      if (oracle_has) ++eval.missed;
      continue;
    }
    ++eval.found;
    path_len_sum += static_cast<double>(trace.path->size());
    const auto cost = policies.path_cost(topo, flow, *trace.path);
    if (cost.has_value()) {
      ++eval.legal;
      if (oracle_has && best.cost > 0) {
        stretch_sum += static_cast<double>(*cost) /
                       static_cast<double>(best.cost);
        ++stretch_count;
      }
    } else {
      ++eval.illegal;
    }
  }

  eval.mean_stretch =
      stretch_count == 0 ? 0.0
                         : stretch_sum / static_cast<double>(stretch_count);
  eval.mean_path_len =
      eval.found == 0 ? 0.0
                      : path_len_sum / static_cast<double>(eval.found);
  eval.state = arch.state_entries();
  eval.computations = arch.computations();
  eval.header_bytes = arch.header_bytes(
      static_cast<std::size_t>(std::lround(eval.mean_path_len)));
  return eval;
}

}  // namespace idr
