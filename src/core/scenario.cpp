#include "core/scenario.hpp"

#include "topology/generator.hpp"
#include "util/check.hpp"

namespace idr {

std::vector<FlowSpec> sample_flows(const Topology& topo, std::size_t count,
                                   Prng& prng) {
  std::vector<AdId> endpoints;
  for (const Ad& ad : topo.ads()) {
    if (ad.role != AdRole::kTransit) endpoints.push_back(ad.id);
  }
  IDR_CHECK_MSG(endpoints.size() >= 2, "need at least two end-system ADs");
  std::vector<FlowSpec> flows;
  flows.reserve(count);
  while (flows.size() < count) {
    FlowSpec flow;
    flow.src = prng.pick(endpoints);
    flow.dst = prng.pick(endpoints);
    if (flow.src == flow.dst) continue;
    // Mostly default-class traffic, with a tail exercising the policy
    // dimensions (QoS, user class, time of day).
    if (prng.bernoulli(0.3)) {
      flow.qos = static_cast<Qos>(prng.below(kQosCount));
    }
    if (prng.bernoulli(0.4)) {
      flow.uci = static_cast<UserClass>(prng.below(kUserClassCount));
    }
    flow.hour = prng.bernoulli(0.3)
                    ? static_cast<std::uint8_t>(prng.below(24))
                    : 12;
    flows.push_back(flow);
  }
  return flows;
}

Scenario make_scenario(const ScenarioParams& params) {
  Prng prng(params.seed);
  Scenario scenario;
  scenario.name = "ads" + std::to_string(params.target_ads) + "-seed" +
                  std::to_string(params.seed);
  scenario.topo = generate_topology_of_size(params.target_ads, prng);

  PolicySet base = params.provider_customer
                       ? make_provider_customer_policies(scenario.topo)
                       : make_open_policies(scenario.topo);
  RestrictionParams restrict;
  restrict.restrict_prob = params.restrict_prob;
  restrict.source_selectivity = params.source_selectivity;
  restrict.terms_per_ad = params.terms_per_ad;
  scenario.policies =
      make_restricted_policies(scenario.topo, base, restrict, prng);
  if (params.aup_on_first_backbone) {
    for (const Ad& ad : scenario.topo.ads()) {
      if (ad.cls == AdClass::kBackbone) {
        apply_aup(scenario.policies, ad.id);
        break;
      }
    }
  }
  add_source_avoidance(scenario.topo, scenario.policies,
                       params.avoid_fraction, prng);

  scenario.flows = sample_flows(scenario.topo, params.flow_count, prng);
  return scenario;
}

}  // namespace idr
