#include "core/scale_profile.hpp"

#include <algorithm>
#include <memory>

#include "core/design_harness.hpp"
#include "proto/ecma/ecma_node.hpp"
#include "proto/idrp/idrp_node.hpp"
#include "proto/lshh/lshh_node.hpp"
#include "proto/orwg/orwg_node.hpp"
#include "util/check.hpp"
#include "util/prng.hpp"

namespace idr {

GeneratorParams scale_params(std::uint32_t target_ads) {
  IDR_CHECK(target_ads >= 16);
  GeneratorParams p;
  p.metros_per_regional = 0;
  // Pure hierarchy: stubs stay stubs (the hierarchical LS modes and the
  // stub default-route both depend on it), and the transit core carries
  // all lateral structure.
  p.lateral_campus_prob = 0.0;
  p.bypass_prob = 0.0;
  p.multihome_prob = 0.0;
  p.hybrid_prob = 0.0;
  if (target_ads <= 200) {
    p.backbones = 2;
    p.regionals_per_backbone = 4;
  } else if (target_ads <= 2'000) {
    p.backbones = 3;
    p.regionals_per_backbone = 8;
  } else {
    // Paper shape: ~1e2 transit ADs however many stubs hang below.
    p.backbones = 4;
    p.regionals_per_backbone = 25;
  }
  const std::uint32_t parents = p.backbones * p.regionals_per_backbone;
  const std::uint32_t transit = p.backbones + parents;
  const std::uint32_t stubs = target_ads > transit ? target_ads - transit : parents;
  p.campuses_per_parent = std::max<std::uint32_t>(1u, stubs / parents);
  return p;
}

ScaleProfile make_scale_profile(std::uint32_t target_ads, std::uint64_t seed,
                                std::uint32_t beacon_count) {
  ScaleProfile profile;
  Prng prng(seed);
  profile.topo = generate_topology(scale_params(target_ads), prng);

  profile.policies.resize(profile.topo.ad_count());
  std::vector<AdId> stubs;
  for (const Ad& ad : profile.topo.ads()) {
    if (profile.topo.can_transit(ad.id)) {
      profile.transits.push_back(ad.id);
      profile.policies.add_term(open_transit_term(ad.id));
    } else {
      stubs.push_back(ad.id);
    }
  }
  profile.order = compute_partial_order(profile.topo, {});
  IDR_CHECK_MSG(profile.order.ok, "scale profile: partial order failed");

  // Stratified beacon sample over the stub population: every region of
  // the id space contributes, so probes cross the whole hierarchy.
  beacon_count = std::min<std::uint32_t>(
      beacon_count, static_cast<std::uint32_t>(stubs.size()));
  IDR_CHECK(beacon_count > 0);
  profile.is_beacon.assign(profile.topo.ad_count(), 0);
  const std::size_t step = std::max<std::size_t>(1, stubs.size() / beacon_count);
  for (std::size_t i = 0;
       i < stubs.size() && profile.beacons.size() < beacon_count; i += step) {
    profile.beacons.push_back(stubs[i]);
    profile.is_beacon[stubs[i].v] = 1;
  }
  return profile;
}

Network::NodeFactory make_scale_factory(const std::string& arch,
                                        const ScaleProfile& profile,
                                        double periodic_refresh_ms) {
  ScaleFactoryOptions options;
  options.periodic_refresh_ms = periodic_refresh_ms;
  return make_scale_factory(arch, profile, options);
}

Network::NodeFactory make_scale_factory(const std::string& arch,
                                        const ScaleProfile& profile,
                                        const ScaleFactoryOptions& options) {
  const ScaleProfile* p = &profile;
  const double refresh = options.periodic_refresh_ms;
  const DampingConfig damping = options.damping;
  const double holddown = options.ls_holddown_ms;
  const GrConfig gr = options.gr;
  if (arch == "ecma") {
    return [p, refresh, damping, gr](AdId ad) -> std::unique_ptr<Node> {
      EcmaConfig config;
      config.qos_mask = 1;  // single traffic class at scale
      config.stub = is_stub_role(p->topo, ad);
      config.originate = p->is_beacon[ad.v] != 0;
      config.mrai_ms = 10.0;  // coalesce the per-beacon update waves
      config.damping = damping;
      config.gr = gr;
      auto node = std::make_unique<EcmaNode>(&p->order.order, config);
      node->set_periodic_refresh(refresh);
      return node;
    };
  }
  if (arch == "idrp") {
    return [p, refresh, damping, gr](AdId ad) -> std::unique_ptr<Node> {
      IdrpConfig config;
      config.routes_per_dest = 1;  // one route per beacon destination
      config.originate = p->is_beacon[ad.v] != 0;
      config.mrai_ms = 10.0;
      config.shared_updates = true;  // open terms: one encode per wave
      config.damping = damping;
      config.gr = gr;
      auto node = std::make_unique<IdrpNode>(&p->policies, config);
      node->set_periodic_refresh(refresh);
      return node;
    };
  }
  if (arch == "ls-hbh") {
    return [p, refresh, holddown, gr](AdId) -> std::unique_ptr<Node> {
      LshhConfig config;
      config.hierarchical = true;
      config.link_holddown_ms = holddown;
      config.gr = gr;
      auto node = std::make_unique<LshhNode>(&p->policies, config);
      node->set_periodic_refresh(refresh);
      return node;
    };
  }
  if (arch == "orwg") {
    return [p, refresh, holddown, gr](AdId) -> std::unique_ptr<Node> {
      OrwgConfig config;
      config.hierarchical = true;
      config.periodic_refresh_ms = refresh;
      config.link_holddown_ms = holddown;
      config.gr = gr;
      return std::make_unique<OrwgNode>(&p->policies, config);
    };
  }
  IDR_CHECK_MSG(false, "unknown design point");
  return {};
}

ShardPlan make_scale_shard_plan(const ScaleProfile& profile,
                                std::uint32_t shards) {
  ShardPlanOptions opts;
  opts.hierarchy_groups = true;
  return make_shard_plan(profile.topo, shards, opts);
}

}  // namespace idr
