#include "core/impact.hpp"

#include <algorithm>
#include <cstdio>

namespace idr {
namespace {

bool path_crosses(const std::vector<AdId>& path, AdId ad) {
  return std::find(path.begin(), path.end(), ad) != path.end();
}

}  // namespace

ImpactReport analyze_policy_change(const Topology& topo,
                                   const PolicySet& current, AdId ad,
                                   std::span<const PolicyTerm> proposed_terms,
                                   std::span<const FlowSpec> flows) {
  PolicySet proposed(topo.ad_count());
  for (const Ad& each : topo.ads()) {
    proposed.source_policy(each.id) = current.source_policy(each.id);
    if (each.id == ad) continue;
    for (const PolicyTerm& t : current.terms(each.id)) proposed.add_term(t);
  }
  for (PolicyTerm t : proposed_terms) {
    t.owner = ad;  // proposals always belong to the changing AD
    proposed.add_term(std::move(t));
  }

  const Oracle before(topo, current);
  const Oracle after(topo, proposed);

  ImpactReport report;
  report.changed_ad = ad;
  report.flows = flows.size();
  for (const FlowSpec& flow : flows) {
    FlowImpact impact;
    impact.flow = flow;
    const SynthesisResult rb = before.best_route(flow);
    const SynthesisResult ra = after.best_route(flow);
    report.expansions_before += rb.expansions;
    report.expansions_after += ra.expansions;
    impact.routable_before = rb.found();
    impact.routable_after = ra.found();
    if (rb.found()) {
      impact.cost_before = rb.cost;
      impact.crossed_ad_before = path_crosses(rb.path, ad);
      if (impact.crossed_ad_before) ++report.transit_before;
    }
    if (ra.found()) {
      impact.cost_after = ra.cost;
      impact.crossed_ad_after = path_crosses(ra.path, ad);
      if (impact.crossed_ad_after) ++report.transit_after;
    }
    if (impact.routable_before && !impact.routable_after) ++report.lost_route;
    if (!impact.routable_before && impact.routable_after) {
      ++report.gained_route;
    }
    if (impact.routable_before && impact.routable_after) {
      if (impact.cost_after > impact.cost_before) ++report.cost_increased;
      if (impact.cost_after < impact.cost_before) ++report.cost_decreased;
    }
    report.details.push_back(std::move(impact));
  }
  return report;
}

std::string ImpactReport::summary(const Topology& topo) const {
  char buf[512];
  std::snprintf(
      buf, sizeof buf,
      "policy change at %s over %zu sampled flows:\n"
      "  routes lost: %zu, gained: %zu\n"
      "  cost increased: %zu, decreased: %zu\n"
      "  transit flows crossing %s: %zu -> %zu\n"
      "  oracle search expansions: %llu -> %llu\n",
      topo.ad(changed_ad).name.c_str(), flows, lost_route, gained_route,
      cost_increased, cost_decreased, topo.ad(changed_ad).name.c_str(),
      transit_before, transit_after,
      static_cast<unsigned long long>(expansions_before),
      static_cast<unsigned long long>(expansions_after));
  return buf;
}

}  // namespace idr
