// Concrete RoutingArchitecture adapters, one per protocol family -- the
// executable rows of the paper's Table 1 plus the pre-policy baselines
// of §3. Each adapter instantiates its protocol's nodes over the scenario
// topology and maps the common harness queries (trace / state /
// computations / header cost) onto the protocol's own structures.
#pragma once

#include <memory>
#include <vector>

#include "core/architecture.hpp"
#include "proto/dv/dv_node.hpp"
#include "proto/dvsr/dvsr_node.hpp"
#include "proto/ecma/ecma_node.hpp"
#include "proto/egp/egp_node.hpp"
#include "proto/idrp/idrp_node.hpp"
#include "proto/ls/ls_node.hpp"
#include "proto/lshh/lshh_node.hpp"
#include "proto/orwg/orwg_node.hpp"

namespace idr {

// --- Pre-policy baselines (paper §3) ---

class DvArchitecture final : public RoutingArchitecture {
 public:
  explicit DvArchitecture(DvConfig config = {.split_horizon = true})
      : config_(config) {}
  [[nodiscard]] std::string name() const override {
    return config_.split_horizon ? "dv-rip" : "dv-plain";
  }
  [[nodiscard]] DesignPoint design_point() const override {
    return {Algorithm::kDistanceVector, Decision::kHopByHop,
            PolicyExpression::kNone};
  }
  [[nodiscard]] RouteTrace trace(const FlowSpec& flow) override;
  [[nodiscard]] std::size_t state_entries() const override;
  [[nodiscard]] std::uint64_t computations() const override { return 0; }
  [[nodiscard]] std::size_t header_bytes(std::size_t) const override {
    return 9;  // type + src + dst
  }

 protected:
  void attach_nodes() override;

 private:
  DvConfig config_;
  std::vector<DvNode*> nodes_;
};

class LsArchitecture final : public RoutingArchitecture {
 public:
  [[nodiscard]] std::string name() const override { return "ls-ospf"; }
  [[nodiscard]] DesignPoint design_point() const override {
    return {Algorithm::kLinkState, Decision::kHopByHop,
            PolicyExpression::kNone};
  }
  [[nodiscard]] RouteTrace trace(const FlowSpec& flow) override;
  [[nodiscard]] std::size_t state_entries() const override;
  [[nodiscard]] std::uint64_t computations() const override;
  [[nodiscard]] std::size_t header_bytes(std::size_t) const override {
    return 10;  // type + src + dst + qos
  }

 protected:
  void attach_nodes() override;

 private:
  std::vector<LsNode*> nodes_;
};

class EgpArchitecture final : public RoutingArchitecture {
 public:
  [[nodiscard]] std::string name() const override { return "egp"; }
  [[nodiscard]] DesignPoint design_point() const override {
    return {Algorithm::kDistanceVector, Decision::kHopByHop,
            PolicyExpression::kNone};
  }
  [[nodiscard]] bool applicable(const Topology& topo) const override;
  [[nodiscard]] RouteTrace trace(const FlowSpec& flow) override;
  [[nodiscard]] std::size_t state_entries() const override;
  [[nodiscard]] std::uint64_t computations() const override { return 0; }
  [[nodiscard]] std::size_t header_bytes(std::size_t) const override {
    return 9;
  }

 protected:
  void attach_nodes() override;

 private:
  std::vector<EgpNode*> nodes_;
};

// --- The paper's four detailed design points (§5.1-§5.4) ---

// §5.1: distance vector, hop-by-hop, policy in topology (partial order).
class EcmaArchitecture final : public RoutingArchitecture {
 public:
  [[nodiscard]] std::string name() const override { return "ecma"; }
  [[nodiscard]] DesignPoint design_point() const override {
    return {Algorithm::kDistanceVector, Decision::kHopByHop,
            PolicyExpression::kTopology};
  }
  [[nodiscard]] RouteTrace trace(const FlowSpec& flow) override;
  [[nodiscard]] std::size_t state_entries() const override;
  [[nodiscard]] std::uint64_t computations() const override { return 0; }
  [[nodiscard]] std::size_t header_bytes(std::size_t) const override {
    return 11;  // type + src + dst + qos + gone-down marker
  }
  [[nodiscard]] const OrderResult& order_result() const noexcept {
    return order_;
  }

 protected:
  void attach_nodes() override;

 private:
  OrderResult order_;
  std::vector<EcmaNode*> nodes_;
};

// §5.2: distance vector (path vector), hop-by-hop, explicit policy terms.
class IdrpArchitecture final : public RoutingArchitecture {
 public:
  explicit IdrpArchitecture(IdrpConfig config = {}) : config_(config) {}
  [[nodiscard]] std::string name() const override { return "idrp"; }
  [[nodiscard]] DesignPoint design_point() const override {
    return {Algorithm::kDistanceVector, Decision::kHopByHop,
            PolicyExpression::kPolicyTerms};
  }
  [[nodiscard]] RouteTrace trace(const FlowSpec& flow) override;
  [[nodiscard]] std::size_t state_entries() const override;
  [[nodiscard]] std::uint64_t computations() const override { return 0; }
  [[nodiscard]] std::size_t header_bytes(std::size_t) const override {
    return 16;  // type + src + dst + qos + uci + hour + attr-class id
  }
  [[nodiscard]] const std::vector<IdrpNode*>& nodes() const noexcept {
    return nodes_;
  }

 protected:
  void attach_nodes() override;

 private:
  IdrpConfig config_;
  std::vector<IdrpNode*> nodes_;
};

// §5.3: link state, hop-by-hop, explicit policy terms.
class LshhArchitecture final : public RoutingArchitecture {
 public:
  [[nodiscard]] std::string name() const override { return "ls-hbh"; }
  [[nodiscard]] DesignPoint design_point() const override {
    return {Algorithm::kLinkState, Decision::kHopByHop,
            PolicyExpression::kPolicyTerms};
  }
  [[nodiscard]] RouteTrace trace(const FlowSpec& flow) override;
  [[nodiscard]] std::size_t state_entries() const override;
  [[nodiscard]] std::uint64_t computations() const override;
  [[nodiscard]] std::size_t header_bytes(std::size_t) const override {
    return 15;  // type + src + dst + qos + uci + hour
  }
  [[nodiscard]] const std::vector<LshhNode*>& nodes() const noexcept {
    return nodes_;
  }

 protected:
  void attach_nodes() override;

 private:
  std::vector<LshhNode*> nodes_;
};

// §5.4: link state, source routing, explicit policy terms (ORWG/IDPR).
class OrwgArchitecture final : public RoutingArchitecture {
 public:
  explicit OrwgArchitecture(OrwgConfig config = {}) : config_(config) {}
  [[nodiscard]] std::string name() const override { return "orwg"; }
  [[nodiscard]] DesignPoint design_point() const override {
    return {Algorithm::kLinkState, Decision::kSourceRouting,
            PolicyExpression::kPolicyTerms};
  }
  [[nodiscard]] RouteTrace trace(const FlowSpec& flow) override;
  [[nodiscard]] std::size_t state_entries() const override;
  [[nodiscard]] std::uint64_t computations() const override;
  // Established PRs forward on an 8-byte handle, not the full route.
  [[nodiscard]] std::size_t header_bytes(std::size_t) const override {
    return 27;  // type + handle + src + seq + timestamp + length
  }
  [[nodiscard]] std::size_t setup_header_bytes(std::size_t path_len) const {
    return 22 + 4 * path_len;  // setup carries the full policy route
  }
  [[nodiscard]] const std::vector<OrwgNode*>& nodes() const noexcept {
    return nodes_;
  }

 protected:
  void attach_nodes() override;

 private:
  OrwgConfig config_;
  std::vector<OrwgNode*> nodes_;
};

// §5.5.2: distance vector + source routing hybrid.
class DvsrArchitecture final : public RoutingArchitecture {
 public:
  explicit DvsrArchitecture(IdrpConfig config = {}) : config_(config) {}
  [[nodiscard]] std::string name() const override { return "dv-sr"; }
  [[nodiscard]] DesignPoint design_point() const override {
    return {Algorithm::kDistanceVector, Decision::kSourceRouting,
            PolicyExpression::kPolicyTerms};
  }
  [[nodiscard]] RouteTrace trace(const FlowSpec& flow) override;
  [[nodiscard]] std::size_t state_entries() const override;
  [[nodiscard]] std::uint64_t computations() const override { return 0; }
  [[nodiscard]] std::size_t header_bytes(std::size_t path_len) const override {
    return 15 + 4 * path_len;  // every packet carries the source route
  }

 protected:
  void attach_nodes() override;

 private:
  IdrpConfig config_;
  std::vector<DvsrNode*> nodes_;
};

// All seven architectures (EGP excluded: it is inapplicable on cyclic
// topologies; instantiate it explicitly where a tree is guaranteed).
std::vector<std::unique_ptr<RoutingArchitecture>> make_policy_architectures();

}  // namespace idr
