#include "core/chaos.hpp"

#include <algorithm>
#include <memory>
#include <queue>
#include <utility>

#include "core/synthesis.hpp"
#include "policy/generator.hpp"
#include "proto/ecma/ecma_node.hpp"
#include "proto/ecma/partial_order.hpp"
#include "proto/idrp/idrp_node.hpp"
#include "proto/lshh/lshh_node.hpp"
#include "proto/orwg/orwg_node.hpp"
#include "sim/failure.hpp"
#include "topology/figure1.hpp"
#include "util/check.hpp"

namespace idr {
namespace {

bool is_stub_role(const Topology& topo, AdId ad) {
  const AdRole role = topo.ad(ad).role;
  return role == AdRole::kStub || role == AdRole::kMultiHomed;
}

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) noexcept {
  h ^= v;
  return h * 0x100000001b3ULL;
}

// Hop-by-hop probe walk shared by the FIB-driven design points. `next_fn`
// asks the node currently holding the packet for its successor; a crashed
// node on the way (or no forwarding choice) is a black hole, a revisited
// AD is a loop. A transit AD that is quarantined or actively dropping
// traffic toward dst (Byzantine black hole / hijack) swallows the packet:
// the walk records the control plane's choice, the drop is the data
// plane's fate.
template <typename NextFn>
Probe walk_probe(const Network& net, const Topology& topo, AdId src,
                 AdId dst, NextFn&& next_fn) {
  Probe probe;
  probe.path.push_back(src);
  std::vector<bool> seen(topo.ad_count(), false);
  seen[src.v] = true;
  AdId cur = src;
  while (cur != dst) {
    if (cur != src &&
        (net.is_quarantined(cur) || net.drops_traffic(cur, dst))) {
      probe.outcome = ProbeOutcome::kBlackHole;
      return probe;
    }
    const std::optional<AdId> next = next_fn(cur, probe.path);
    if (!next) {
      probe.outcome = ProbeOutcome::kBlackHole;
      return probe;
    }
    if (seen[next->v] || probe.path.size() > topo.ad_count()) {
      probe.outcome = ProbeOutcome::kLooped;
      return probe;
    }
    seen[next->v] = true;
    probe.path.push_back(*next);
    cur = *next;
  }
  probe.outcome = ProbeOutcome::kDelivered;
  return probe;
}

// A node the ground-truth oracles must route around. Two notions:
//
//   * quarantine_only = false (the invariant monitor's view): also skip
//     ADs actively swallowing traffic toward this destination -- no
//     protocol can be blamed for failing to route through a Byzantine
//     black hole it has no way to detect;
//   * quarantine_only = true (the auditor's view): skip only quarantined
//     ADs. Blast radius must count pairs an active dropper breaks, so
//     "honest reachability" pretends the misbehaving AD would have
//     forwarded -- until containment administratively removes it.
//
// Misbehaving-but-forwarding ADs (leak, tamper) are never excluded:
// ground truth holds them to their registered policy, which is exactly
// what the defended protocols converge to.
bool unusable_for(const Network& net, AdId ad, AdId dst,
                  bool quarantine_only) {
  if (net.is_quarantined(ad)) return true;
  return !quarantine_only && net.drops_traffic(ad, dst);
}

// Ground truth for ECMA: a destination is reachable only over an up*down*
// shaped walk (paper §5.1.1) through ADs willing to transit, between live
// nodes over live links. BFS over (AD, gone-down) states.
bool ecma_reachable(const Network& net, const Topology& topo,
                    const PartialOrder& order, AdId src, AdId dst,
                    bool quarantine_only = false) {
  const std::size_t n = topo.ad_count();
  std::vector<bool> seen(n * 2, false);
  std::queue<std::pair<AdId, bool>> queue;
  queue.emplace(src, false);
  seen[src.v * 2] = true;
  while (!queue.empty()) {
    const auto [cur, gone_down] = queue.front();
    queue.pop();
    if (cur == dst) return true;
    if (cur != src) {
      // Transit shaping mirrors the ECMA adapter: stub/multi-homed ADs
      // never transit; hybrids transit only toward their own neighbors.
      if (is_stub_role(topo, cur)) continue;
      if (topo.ad(cur).role == AdRole::kHybrid &&
          !topo.find_link(cur, dst)) {
        continue;
      }
    }
    for (const Adjacency& adj : topo.live_neighbors(cur)) {
      if (!net.alive(adj.neighbor)) continue;
      if (unusable_for(net, adj.neighbor, dst, quarantine_only)) continue;
      const bool hop_is_up = order.is_up(cur, adj.neighbor);
      if (gone_down && hop_is_up) continue;  // up after down: illegal shape
      const bool next_gone_down = gone_down || !hop_is_up;
      const std::size_t state = adj.neighbor.v * 2 + (next_gone_down ? 1 : 0);
      if (!seen[state]) {
        seen[state] = true;
        queue.emplace(adj.neighbor, next_gone_down);
      }
    }
  }
  return false;
}

// Ground truth for the policy-term design points: a route exists iff the
// synthesis oracle finds one over the live topology and real policy
// database, avoiding crashed ADs.
bool policy_reachable(const Network& net, const Topology& topo,
                      const PolicySet& policies, AdId src, AdId dst,
                      bool quarantine_only = false) {
  FlowSpec flow;
  flow.src = src;
  flow.dst = dst;
  SynthesisOptions options;
  options.first_found = true;
  options.expansion_budget = 200'000;
  for (const Ad& ad : topo.ads()) {
    if (!net.alive(ad.id) || unusable_for(net, ad.id, dst, quarantine_only)) {
      options.avoid.push_back(ad.id);
    }
  }
  const GroundTruthView view(topo, policies);
  return synthesize_route(view, flow, options).found();
}

std::uint64_t counter_fingerprint(const Network& net, const Topology& topo) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const Ad& ad : topo.ads()) {
    const Counters& c = net.counters(ad.id);
    h = fnv_mix(h, c.msgs_sent);
    h = fnv_mix(h, c.bytes_sent);
    h = fnv_mix(h, c.msgs_delivered);
    h = fnv_mix(h, c.msgs_dropped);
    h = fnv_mix(h, c.msgs_corrupted);
    h = fnv_mix(h, c.msgs_duplicated);
    h = fnv_mix(h, c.msgs_reordered);
    h = fnv_mix(h, c.malformed_dropped);
    h = fnv_mix(h, c.defense_rejections);
  }
  return h;
}

}  // namespace

const std::vector<std::string>& chaos_design_points() {
  static const std::vector<std::string> kPoints = {"ecma", "idrp", "ls-hbh",
                                                   "orwg"};
  return kPoints;
}

ChaosResult run_chaos(const std::string& arch, const ChaosParams& params) {
  Figure1 fig = build_figure1();
  Topology& topo = fig.topo;
  const PolicySet policies = params.policy_mode == PolicyMode::kProviderCustomer
                                 ? make_provider_customer_policies(topo)
                                 : make_open_policies(topo);

  Engine engine;
  Network net(engine, topo);

  // --- Byzantine schedule (independent seeded stream, so the fault /
  // churn schedules of non-Byzantine runs with the same seed are
  // untouched) ---------------------------------------------------------
  const bool defended =
      params.byzantine.defended && params.byzantine.count > 0;
  std::vector<std::uint64_t> lsa_keys;
  std::vector<ByzantineSpec> byz_schedule;
  if (params.byzantine.count > 0) {
    std::uint64_t byz_state = params.seed ^ 0xb42a47f00dULL;
    Prng byz_prng(splitmix64(byz_state));
    std::vector<AdId> candidates;
    for (const Ad& ad : topo.ads()) {
      if (topo.can_transit(ad.id)) candidates.push_back(ad.id);
    }
    byz_prng.shuffle(candidates);
    const std::size_t count =
        std::min(params.byzantine.count, candidates.size());
    static constexpr Misbehavior kTaxonomy[] = {
        Misbehavior::kRouteLeak, Misbehavior::kFalseOrigin,
        Misbehavior::kBlackHole, Misbehavior::kTamper};
    std::vector<bool> is_byz(topo.ad_count(), false);
    for (std::size_t i = 0; i < count; ++i) is_byz[candidates[i].v] = true;
    // Hijack victims: honest stub/multi-homed ADs (the paper's "edge"
    // ADs -- the classic victims of a false-origin announcement).
    std::vector<AdId> honest_stubs;
    for (const Ad& ad : topo.ads()) {
      if (is_stub_role(topo, ad.id) && !is_byz[ad.id.v]) {
        honest_stubs.push_back(ad.id);
      }
    }
    for (std::size_t i = 0; i < count; ++i) {
      ByzantineSpec spec;
      spec.ad = candidates[i];
      spec.kind =
          params.byzantine.kinds.empty()
              ? kTaxonomy[i % 4]
              : params.byzantine.kinds[i % params.byzantine.kinds.size()];
      spec.start_ms = params.byzantine.onset_ms;
      if (spec.kind == Misbehavior::kFalseOrigin && !honest_stubs.empty()) {
        spec.victim = byz_prng.pick(honest_stubs);
      }
      byz_schedule.push_back(spec);
    }
  }
  if (defended) {
    // Per-AD LSA authentication keys (modeled shared-secret registry).
    std::uint64_t key_state = params.seed ^ 0x6b657973ULL;
    lsa_keys.resize(topo.ad_count());
    for (auto& key : lsa_keys) {
      key = splitmix64(key_state);
      if (key == 0) key = 1;
    }
  }

  // --- per-design-point node factory (also used for cold restarts) ----
  OrderResult order;
  Network::NodeFactory factory;
  if (arch == "ecma") {
    order = compute_partial_order(topo, {});
    IDR_CHECK_MSG(order.ok, "structural ordering conflict on Figure 1");
    factory = [&topo, &order, &params,
               defended](AdId ad) -> std::unique_ptr<Node> {
      EcmaConfig config;
      config.stub = is_stub_role(topo, ad);
      config.receiver_order_check = defended;
      if (topo.ad(ad).role == AdRole::kHybrid) {
        for (const Adjacency& adj : topo.neighbors(ad)) {
          config.export_dsts.insert(adj.neighbor.v);
        }
      }
      auto node = std::make_unique<EcmaNode>(&order.order, std::move(config));
      node->set_periodic_refresh(params.periodic_refresh_ms);
      return node;
    };
  } else if (arch == "idrp") {
    factory = [&policies, &params, defended](AdId) -> std::unique_ptr<Node> {
      IdrpConfig config;
      config.defend = defended;
      auto node = std::make_unique<IdrpNode>(&policies, config);
      node->set_periodic_refresh(params.periodic_refresh_ms);
      return node;
    };
  } else if (arch == "ls-hbh") {
    factory = [&policies, &params, &lsa_keys,
               defended](AdId) -> std::unique_ptr<Node> {
      LshhConfig config;
      config.lsa_keys = defended ? &lsa_keys : nullptr;
      config.registry = defended ? &policies : nullptr;
      auto node = std::make_unique<LshhNode>(&policies, config);
      node->set_periodic_refresh(params.periodic_refresh_ms);
      return node;
    };
  } else if (arch == "orwg") {
    factory = [&policies, &params, &lsa_keys,
               defended](AdId) -> std::unique_ptr<Node> {
      OrwgConfig config;
      config.periodic_refresh_ms = params.periodic_refresh_ms;
      config.lsa_keys = defended ? &lsa_keys : nullptr;
      config.route_server.registry = defended ? &policies : nullptr;
      return std::make_unique<OrwgNode>(&policies, config);
    };
  } else {
    IDR_CHECK_MSG(false, "unknown chaos design point");
  }

  net.set_node_factory(factory);
  for (const Ad& ad : topo.ads()) net.attach(ad.id, factory(ad.id));
  net.set_link_notifications(params.link_notifications);
  std::uint64_t seed_state = params.seed;
  net.set_faults(params.faults, splitmix64(seed_state));
  if (params.keepalive.interval_ms > 0.0) net.set_keepalive(params.keepalive);
  for (const ByzantineSpec& spec : byz_schedule) {
    net.set_misbehavior(spec);
    if (defended) {
      // Containment: the defenses' rejection counters make misbehavior
      // visible; detection_delay_ms later the misbehaving AD is
      // administratively quarantined (modeled operator response).
      engine.at(spec.start_ms + params.byzantine.detection_delay_ms,
                [&net, ad = spec.ad] { net.quarantine(ad); });
    }
  }
  net.start_all();

  // --- probe + ground truth -------------------------------------------
  InvariantMonitor::ProbeFn probe;
  if (arch == "ecma") {
    probe = [&net, &topo](AdId src, AdId dst) {
      bool gone_down = false;
      return walk_probe(
          net, topo, src, dst,
          [&](AdId cur, const std::vector<AdId>&) -> std::optional<AdId> {
            auto* node = static_cast<EcmaNode*>(net.node(cur));
            if (!node) return std::nullopt;  // walked into a crashed AD
            const auto fwd = node->forward(dst, Qos::kDefault, gone_down);
            if (!fwd) return std::nullopt;
            gone_down = gone_down || fwd->sets_gone_down;
            return fwd->via;
          });
    };
  } else if (arch == "idrp") {
    probe = [&net, &topo](AdId src, AdId dst) {
      FlowSpec flow;
      flow.src = src;
      flow.dst = dst;
      return walk_probe(
          net, topo, src, dst,
          [&](AdId cur,
              const std::vector<AdId>& path) -> std::optional<AdId> {
            auto* node = static_cast<IdrpNode*>(net.node(cur));
            if (!node) return std::nullopt;
            const AdId prev =
                path.size() >= 2 ? path[path.size() - 2] : kNoAd;
            return node->forward(flow, prev);
          });
    };
  } else if (arch == "ls-hbh") {
    probe = [&net, &topo](AdId src, AdId dst) {
      FlowSpec flow;
      flow.src = src;
      flow.dst = dst;
      return walk_probe(
          net, topo, src, dst,
          [&](AdId cur, const std::vector<AdId>&) -> std::optional<AdId> {
            auto* node = static_cast<LshhNode*>(net.node(cur));
            if (!node) return std::nullopt;
            return node->forward(flow);
          });
    };
  } else {  // orwg: source-routed, the route server answers at the source
    probe = [&net](AdId src, AdId dst) {
      Probe p;
      auto* node = static_cast<OrwgNode*>(net.node(src));
      if (!node) return p;  // monitor skips dead endpoints anyway
      FlowSpec flow;
      flow.src = src;
      flow.dst = dst;
      auto path = node->policy_route(flow);
      if (!path) {
        p.path.push_back(src);
        return p;  // kBlackHole
      }
      p.path = std::move(*path);
      // The setup would succeed, but a quarantined or traffic-dropping
      // AD on the source route swallows the data packets.
      for (std::size_t i = 1; i + 1 < p.path.size(); ++i) {
        if (net.is_quarantined(p.path[i]) ||
            net.drops_traffic(p.path[i], dst)) {
          return p;  // kBlackHole
        }
      }
      p.outcome = ProbeOutcome::kDelivered;
      return p;
    };
  }

  InvariantMonitor::ReachableFn reachable;
  if (arch == "ecma") {
    reachable = [&net, &topo, &order](AdId src, AdId dst) {
      return ecma_reachable(net, topo, order.order, src, dst);
    };
  } else {
    reachable = [&net, &topo, &policies](AdId src, AdId dst) {
      return policy_reachable(net, topo, policies, src, dst);
    };
  }

  InvariantMonitor monitor(net, params.invariants, probe);
  monitor.set_reachable_fn(reachable);
  net.set_churn_observer([&monitor] { monitor.note_fault(); });
  monitor.start(params.horizon_ms);

  // --- policy-compliance auditor (Byzantine runs only) ----------------
  std::unique_ptr<PolicyComplianceAuditor> auditor;
  if (!byz_schedule.empty()) {
    PolicyComplianceAuditor::ComplianceFn compliant;
    if (arch == "ecma") {
      // ECMA's policy is structural: the delivered walk must be up*down*
      // shaped and every intermediate must be transit-willing (mirrors
      // ecma_reachable's shaping).
      compliant = [&topo, &order](AdId, AdId dst,
                                  const std::vector<AdId>& path) {
        bool gone_down = false;
        for (std::size_t i = 0; i + 1 < path.size(); ++i) {
          const AdId cur = path[i];
          if (i > 0) {
            if (is_stub_role(topo, cur)) return false;
            if (topo.ad(cur).role == AdRole::kHybrid &&
                !topo.find_link(cur, dst)) {
              return false;
            }
          }
          const bool up = order.order.is_up(cur, path[i + 1]);
          if (gone_down && up) return false;
          if (!up) gone_down = true;
        }
        return true;
      };
    } else {
      compliant = [&topo, &policies](AdId src, AdId dst,
                                     const std::vector<AdId>& path) {
        FlowSpec flow;
        flow.src = src;
        flow.dst = dst;
        return policies.path_is_legal(topo, flow, path);
      };
    }
    // Pollution is measured against what SHOULD be reachable: the
    // topology with every AD behaving (droppers included), minus
    // anything containment already quarantined.
    InvariantMonitor::ReachableFn honest_reachable;
    if (arch == "ecma") {
      honest_reachable = [&net, &topo, &order](AdId src, AdId dst) {
        return ecma_reachable(net, topo, order.order, src, dst,
                              /*quarantine_only=*/true);
      };
    } else {
      honest_reachable = [&net, &topo, &policies](AdId src, AdId dst) {
        return policy_reachable(net, topo, policies, src, dst,
                                /*quarantine_only=*/true);
      };
    }
    AuditConfig audit_config = params.audit;
    audit_config.onset_ms = params.byzantine.onset_ms;
    auditor = std::make_unique<PolicyComplianceAuditor>(
        net, audit_config, probe, std::move(honest_reachable),
        std::move(compliant));
    auditor->start(params.horizon_ms);
  }

  // --- seeded churn schedule ------------------------------------------
  FailureInjector injector(net);
  const SimTime churn_end = params.horizon_ms * params.churn_fraction;
  Prng link_prng(splitmix64(seed_state));
  Prng node_prng(splitmix64(seed_state));
  injector.random_failures(link_prng, params.link_mean_uptime_ms,
                           params.link_mean_downtime_ms, churn_end);
  injector.random_crashes(node_prng, params.node_mean_uptime_ms,
                          params.node_mean_downtime_ms, churn_end);

  // Keepalives reschedule forever, so drive to the horizon rather than
  // draining the queue.
  engine.run_until(params.horizon_ms);

  ChaosResult result;
  result.arch = arch;
  result.invariants = monitor.stats();
  result.totals = net.total();
  result.losses = net.losses();
  result.link_failures = injector.failures_injected();
  result.node_crashes = injector.crashes_injected();
  result.counter_fingerprint = counter_fingerprint(net, topo);
  result.byzantine = byz_schedule;
  result.defended = defended;
  if (auditor) result.audit = auditor->stats();
  result.defense_rejections = result.totals.defense_rejections;
  return result;
}

}  // namespace idr
