#include "core/chaos.hpp"

#include <algorithm>
#include <memory>
#include <utility>

#include "core/design_harness.hpp"
#include "policy/generator.hpp"
#include "proto/ecma/partial_order.hpp"
#include "sim/failure.hpp"
#include "topology/figure1.hpp"
#include "util/check.hpp"

namespace idr {

const std::vector<std::string>& chaos_design_points() {
  return design_point_names();
}

ChaosResult run_chaos(const std::string& arch, const ChaosParams& params) {
  Figure1 fig = build_figure1();
  Topology& topo = fig.topo;
  const PolicySet policies = params.policy_mode == PolicyMode::kProviderCustomer
                                 ? make_provider_customer_policies(topo)
                                 : make_open_policies(topo);

  Engine engine;
  Network net(engine, topo);

  // --- Byzantine schedule (independent seeded stream, so the fault /
  // churn schedules of non-Byzantine runs with the same seed are
  // untouched) ---------------------------------------------------------
  const bool defended =
      params.byzantine.defended && params.byzantine.count > 0;
  std::vector<std::uint64_t> lsa_keys;
  std::vector<ByzantineSpec> byz_schedule;
  if (params.byzantine.count > 0) {
    std::uint64_t byz_state = params.seed ^ 0xb42a47f00dULL;
    Prng byz_prng(splitmix64(byz_state));
    std::vector<AdId> candidates;
    for (const Ad& ad : topo.ads()) {
      if (topo.can_transit(ad.id)) candidates.push_back(ad.id);
    }
    byz_prng.shuffle(candidates);
    const std::size_t count =
        std::min(params.byzantine.count, candidates.size());
    static constexpr Misbehavior kTaxonomy[] = {
        Misbehavior::kRouteLeak, Misbehavior::kFalseOrigin,
        Misbehavior::kBlackHole, Misbehavior::kTamper};
    std::vector<bool> is_byz(topo.ad_count(), false);
    for (std::size_t i = 0; i < count; ++i) is_byz[candidates[i].v] = true;
    // Hijack victims: honest stub/multi-homed ADs (the paper's "edge"
    // ADs -- the classic victims of a false-origin announcement).
    std::vector<AdId> honest_stubs;
    for (const Ad& ad : topo.ads()) {
      if (is_stub_role(topo, ad.id) && !is_byz[ad.id.v]) {
        honest_stubs.push_back(ad.id);
      }
    }
    for (std::size_t i = 0; i < count; ++i) {
      ByzantineSpec spec;
      spec.ad = candidates[i];
      spec.kind =
          params.byzantine.kinds.empty()
              ? kTaxonomy[i % 4]
              : params.byzantine.kinds[i % params.byzantine.kinds.size()];
      spec.start_ms = params.byzantine.onset_ms;
      if (spec.kind == Misbehavior::kFalseOrigin && !honest_stubs.empty()) {
        spec.victim = byz_prng.pick(honest_stubs);
      }
      byz_schedule.push_back(spec);
    }
  }
  if (defended) {
    // Per-AD LSA authentication keys (modeled shared-secret registry).
    std::uint64_t key_state = params.seed ^ 0x6b657973ULL;
    lsa_keys.resize(topo.ad_count());
    for (auto& key : lsa_keys) {
      key = splitmix64(key_state);
      if (key == 0) key = 1;
    }
  }

  // --- per-design-point node factory (also used for cold restarts) ----
  OrderResult order;
  if (arch == "ecma") {
    order = compute_partial_order(topo, {});
    IDR_CHECK_MSG(order.ok, "structural ordering conflict on Figure 1");
  }
  HarnessConfig harness;
  harness.defended = defended;
  harness.periodic_refresh_ms = params.periodic_refresh_ms;
  harness.lsa_keys = &lsa_keys;
  Network::NodeFactory factory =
      make_design_factory(arch, topo, policies, &order, harness);

  net.set_node_factory(factory);
  for (const Ad& ad : topo.ads()) net.attach(ad.id, factory(ad.id));
  net.set_link_notifications(params.link_notifications);
  std::uint64_t seed_state = params.seed;
  net.set_faults(params.faults, splitmix64(seed_state));
  if (params.keepalive.interval_ms > 0.0) net.set_keepalive(params.keepalive);
  for (const ByzantineSpec& spec : byz_schedule) {
    net.set_misbehavior(spec);
    if (defended) {
      // Containment: the defenses' rejection counters make misbehavior
      // visible; detection_delay_ms later the misbehaving AD is
      // administratively quarantined (modeled operator response).
      engine.at(spec.start_ms + params.byzantine.detection_delay_ms,
                [&net, ad = spec.ad] { net.quarantine(ad); });
    }
  }
  net.start_all();

  // --- probe + ground truth -------------------------------------------
  InvariantMonitor::ProbeFn probe =
      make_pair_probe(make_design_probe(arch, net, topo));
  InvariantMonitor::ReachableFn reachable =
      make_design_reachable(arch, net, topo, policies, &order);

  InvariantMonitor monitor(net, params.invariants, probe);
  monitor.set_reachable_fn(reachable);
  net.set_churn_observer([&monitor] { monitor.note_fault(); });
  monitor.start(params.horizon_ms);

  // --- policy-compliance auditor (Byzantine runs only) ----------------
  std::unique_ptr<PolicyComplianceAuditor> auditor;
  if (!byz_schedule.empty()) {
    // Pollution is measured against what SHOULD be reachable: the
    // topology with every AD behaving (droppers included), minus
    // anything containment already quarantined.
    AuditConfig audit_config = params.audit;
    audit_config.onset_ms = params.byzantine.onset_ms;
    auditor = std::make_unique<PolicyComplianceAuditor>(
        net, audit_config, probe,
        make_design_reachable(arch, net, topo, policies, &order,
                              /*quarantine_only=*/true),
        make_design_compliance(arch, topo, policies, &order));
    auditor->start(params.horizon_ms);
  }

  // --- seeded churn schedule ------------------------------------------
  FailureInjector injector(net);
  const SimTime churn_end = params.horizon_ms * params.churn_fraction;
  Prng link_prng(splitmix64(seed_state));
  Prng node_prng(splitmix64(seed_state));
  injector.random_failures(link_prng, params.link_mean_uptime_ms,
                           params.link_mean_downtime_ms, churn_end);
  injector.random_crashes(node_prng, params.node_mean_uptime_ms,
                          params.node_mean_downtime_ms, churn_end);

  // Keepalives reschedule forever, so drive to the horizon rather than
  // draining the queue.
  engine.run_until(params.horizon_ms);

  ChaosResult result;
  result.arch = arch;
  result.invariants = monitor.stats();
  result.totals = net.total();
  result.losses = net.losses();
  result.link_failures = injector.failures_injected();
  result.node_crashes = injector.crashes_injected();
  result.counter_fingerprint = counter_fingerprint(net, topo);
  result.byzantine = byz_schedule;
  result.defended = defended;
  if (auditor) result.audit = auditor->stats();
  result.defense_rejections = result.totals.defense_rejections;
  return result;
}

}  // namespace idr
