#include "core/chaos.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <utility>

#include "core/design_harness.hpp"
#include "core/scale_profile.hpp"
#include "policy/generator.hpp"
#include "proto/ecma/ecma_node.hpp"
#include "proto/ecma/partial_order.hpp"
#include "proto/idrp/idrp_node.hpp"
#include "proto/lshh/lshh_node.hpp"
#include "proto/orwg/orwg_node.hpp"
#include "sim/failure.hpp"
#include "topology/figure1.hpp"
#include "util/check.hpp"
#include "util/prng.hpp"

namespace idr {

const std::vector<std::string>& chaos_design_points() {
  return design_point_names();
}

ChaosResult run_chaos(const std::string& arch, const ChaosParams& params) {
  Figure1 fig = build_figure1();
  Topology& topo = fig.topo;
  const PolicySet policies = params.policy_mode == PolicyMode::kProviderCustomer
                                 ? make_provider_customer_policies(topo)
                                 : make_open_policies(topo);

  Engine engine;
  Network net(engine, topo);

  // --- Byzantine schedule (independent seeded stream, so the fault /
  // churn schedules of non-Byzantine runs with the same seed are
  // untouched) ---------------------------------------------------------
  const bool defended =
      params.byzantine.defended && params.byzantine.count > 0;
  std::vector<std::uint64_t> lsa_keys;
  std::vector<ByzantineSpec> byz_schedule;
  if (params.byzantine.count > 0) {
    std::uint64_t byz_state = params.seed ^ 0xb42a47f00dULL;
    Prng byz_prng(splitmix64(byz_state));
    std::vector<AdId> candidates;
    for (const Ad& ad : topo.ads()) {
      if (topo.can_transit(ad.id)) candidates.push_back(ad.id);
    }
    byz_prng.shuffle(candidates);
    const std::size_t count =
        std::min(params.byzantine.count, candidates.size());
    static constexpr Misbehavior kTaxonomy[] = {
        Misbehavior::kRouteLeak, Misbehavior::kFalseOrigin,
        Misbehavior::kBlackHole, Misbehavior::kTamper};
    std::vector<bool> is_byz(topo.ad_count(), false);
    for (std::size_t i = 0; i < count; ++i) is_byz[candidates[i].v] = true;
    // Hijack victims: honest stub/multi-homed ADs (the paper's "edge"
    // ADs -- the classic victims of a false-origin announcement).
    std::vector<AdId> honest_stubs;
    for (const Ad& ad : topo.ads()) {
      if (is_stub_role(topo, ad.id) && !is_byz[ad.id.v]) {
        honest_stubs.push_back(ad.id);
      }
    }
    for (std::size_t i = 0; i < count; ++i) {
      ByzantineSpec spec;
      spec.ad = candidates[i];
      spec.kind =
          params.byzantine.kinds.empty()
              ? kTaxonomy[i % 4]
              : params.byzantine.kinds[i % params.byzantine.kinds.size()];
      spec.start_ms = params.byzantine.onset_ms;
      if (spec.kind == Misbehavior::kFalseOrigin && !honest_stubs.empty()) {
        spec.victim = byz_prng.pick(honest_stubs);
      }
      byz_schedule.push_back(spec);
    }
  }
  if (defended) {
    // Per-AD LSA authentication keys (modeled shared-secret registry).
    std::uint64_t key_state = params.seed ^ 0x6b657973ULL;
    lsa_keys.resize(topo.ad_count());
    for (auto& key : lsa_keys) {
      key = splitmix64(key_state);
      if (key == 0) key = 1;
    }
  }

  // --- per-design-point node factory (also used for cold restarts) ----
  OrderResult order;
  if (arch == "ecma") {
    order = compute_partial_order(topo, {});
    IDR_CHECK_MSG(order.ok, "structural ordering conflict on Figure 1");
  }
  HarnessConfig harness;
  harness.defended = defended;
  harness.periodic_refresh_ms = params.periodic_refresh_ms;
  harness.lsa_keys = &lsa_keys;
  Network::NodeFactory factory =
      make_design_factory(arch, topo, policies, &order, harness);

  net.set_node_factory(factory);
  for (const Ad& ad : topo.ads()) net.attach(ad.id, factory(ad.id));
  net.set_link_notifications(params.link_notifications);
  std::uint64_t seed_state = params.seed;
  net.set_faults(params.faults, splitmix64(seed_state));
  if (params.keepalive.interval_ms > 0.0) net.set_keepalive(params.keepalive);
  for (const ByzantineSpec& spec : byz_schedule) {
    net.set_misbehavior(spec);
    if (defended) {
      // Containment: the defenses' rejection counters make misbehavior
      // visible; detection_delay_ms later the misbehaving AD is
      // administratively quarantined (modeled operator response).
      engine.at(spec.start_ms + params.byzantine.detection_delay_ms,
                [&net, ad = spec.ad] { net.quarantine(ad); });
    }
  }
  net.start_all();

  // --- probe + ground truth -------------------------------------------
  InvariantMonitor::ProbeFn probe =
      make_pair_probe(make_design_probe(arch, net, topo));
  InvariantMonitor::ReachableFn reachable =
      make_design_reachable(arch, net, topo, policies, &order);

  InvariantMonitor monitor(net, params.invariants, probe);
  monitor.set_reachable_fn(reachable);
  const std::size_t link_cls = monitor.register_fault_class("link");
  const std::size_t node_cls = monitor.register_fault_class("node");
  const SimTime link_window = params.reconverge.link_ms;
  const SimTime node_window = params.reconverge.node_ms;
  net.set_churn_observer(
      [&monitor, link_cls, node_cls, link_window,
       node_window](Network::ChurnKind kind) {
        if (kind == Network::ChurnKind::kNode) {
          monitor.note_fault(node_cls, node_window);
        } else {
          monitor.note_fault(link_cls, link_window);
        }
      });
  monitor.start(params.horizon_ms);

  // --- policy-compliance auditor (Byzantine runs only) ----------------
  std::unique_ptr<PolicyComplianceAuditor> auditor;
  if (!byz_schedule.empty()) {
    // Pollution is measured against what SHOULD be reachable: the
    // topology with every AD behaving (droppers included), minus
    // anything containment already quarantined.
    AuditConfig audit_config = params.audit;
    audit_config.onset_ms = params.byzantine.onset_ms;
    auditor = std::make_unique<PolicyComplianceAuditor>(
        net, audit_config, probe,
        make_design_reachable(arch, net, topo, policies, &order,
                              /*quarantine_only=*/true),
        make_design_compliance(arch, topo, policies, &order));
    auditor->start(params.horizon_ms);
  }

  // --- seeded churn schedule ------------------------------------------
  FailureInjector injector(net);
  const SimTime churn_end = params.horizon_ms * params.churn_fraction;
  Prng link_prng(splitmix64(seed_state));
  Prng node_prng(splitmix64(seed_state));
  injector.random_failures(link_prng, params.link_mean_uptime_ms,
                           params.link_mean_downtime_ms, churn_end);
  injector.random_crashes(node_prng, params.node_mean_uptime_ms,
                          params.node_mean_downtime_ms, churn_end);

  // Keepalives reschedule forever, so drive to the horizon rather than
  // draining the queue.
  engine.run_until(params.horizon_ms);

  ChaosResult result;
  result.arch = arch;
  result.invariants = monitor.stats();
  result.totals = net.total();
  result.losses = net.losses();
  result.link_failures = injector.failures_injected();
  result.node_crashes = injector.crashes_injected();
  result.counter_fingerprint = counter_fingerprint(net, topo);
  result.byzantine = byz_schedule;
  result.defended = defended;
  if (auditor) result.audit = auditor->stats();
  result.defense_rejections = result.totals.defense_rejections;
  return result;
}

// --- Paper-scale failure & recovery ----------------------------------

const char* to_string(StormFamily family) {
  switch (family) {
    case StormFamily::kFlapStorm: return "flap-storm";
    case StormFamily::kWithdrawStorm: return "withdraw-storm";
    case StormFamily::kPartition: return "partition";
    case StormFamily::kCoreOutage: return "core-outage";
    case StormFamily::kRestartStorm: return "restart-storm";
  }
  return "?";
}

const std::vector<StormFamily>& storm_families() {
  static const std::vector<StormFamily> kAll = {
      StormFamily::kFlapStorm, StormFamily::kWithdrawStorm,
      StormFamily::kPartition, StormFamily::kCoreOutage,
      StormFamily::kRestartStorm};
  return kAll;
}

ScaleChaosResult run_scale_chaos(const std::string& arch,
                                 const ScaleChaosParams& params) {
  ScaleProfile profile =
      make_scale_profile(params.target_ads, params.seed, params.beacon_count);
  Topology& topo = profile.topo;

  Engine engine(SchedulerKind::kCalendar);
  Network net(engine, topo);
  ScaleFactoryOptions fopts;
  fopts.damping = params.damping;
  fopts.ls_holddown_ms = params.ls_holddown_ms;
  fopts.gr = params.gr;
  Network::NodeFactory factory = make_scale_factory(arch, profile, fopts);
  net.set_node_factory(factory);
  for (const Ad& ad : topo.ads()) net.attach(ad.id, factory(ad.id));
  // Storms are pure link events and failure detection is the oracle's
  // job here: per-link keepalive probing at 1e4+ ADs would bury the
  // storm under liveness traffic (bench_chaos soaks the keepalive path
  // at Figure 1 scale).
  net.set_link_notifications(true);
  if (params.storm == StormFamily::kRestartStorm) {
    // Node outages are real crashes here, observed through the crash
    // oracle (the GR restart-signaling model: down = enter grace, up =
    // recovery signal triggering the resync).
    net.set_crash_notifications(true);
    if (params.gr.enabled) net.set_graceful_restart(params.gr);
  }
  net.start_all();

  ScaleChaosResult result;
  result.arch = arch;
  result.storm = params.storm;
  result.ads = static_cast<std::uint32_t>(topo.ad_count());
  result.transit_ads = static_cast<std::uint32_t>(profile.transits.size());

  // Cold convergence first: the storm hits a settled network.
  engine.run();
  IDR_CHECK_MSG(engine.empty(), "scale chaos: cold start did not converge");
  result.converge_ms = engine.now();
  if (params.storm == StormFamily::kRestartStorm &&
      params.overload.enabled()) {
    // Arm the bounded ingress queues on the settled network: the storm,
    // not cold bring-up, is the overload scenario under test.
    net.set_overload(params.overload);
  }

  // --- monitor: beacon destinations, stratified source slice ----------
  InvariantConfig inv = params.invariants;
  inv.dst_pool = profile.beacons;
  if (inv.src_pool.empty()) {
    const std::size_t want = 256;
    const std::size_t step =
        std::max<std::size_t>(1, topo.ad_count() / want);
    for (std::size_t v = 0; v < topo.ad_count(); v += step) {
      inv.src_pool.push_back(AdId{static_cast<std::uint32_t>(v)});
    }
  }
  InvariantMonitor monitor(
      net, inv, make_pair_probe(make_design_probe(arch, net, topo)));
  // Pure hierarchy: every live path is up*down*-shaped, so BFS ground
  // truth (the monitor's default) is exact for all four design points.
  const std::size_t storm_cls =
      monitor.register_fault_class(to_string(params.storm));

  SimTime window = params.invariants.reconverge_window_ms;
  switch (params.storm) {
    case StormFamily::kFlapStorm: window = params.windows.flap_ms; break;
    case StormFamily::kWithdrawStorm:
      window = params.windows.withdraw_ms;
      break;
    case StormFamily::kPartition:
      window = params.windows.partition_ms;
      break;
    case StormFamily::kCoreOutage:
      window = params.windows.core_outage_ms;
      break;
    case StormFamily::kRestartStorm:
      window = params.windows.restart_ms;
      // The grace window is designed-in retention: a flush at its expiry
      // legitimately re-opens convergence that long after the crash.
      if (params.gr.enabled) window += params.gr.grace_ms;
      break;
  }
  if (params.damping.enabled) {
    // A damped route is EXPECTED to stay dark past the last transition:
    // its unreachability window is bounded by the worst-case release
    // time, so fold that bound into the grace window rather than calling
    // the mechanism's designed behavior a persistent violation.
    window += params.damping.half_life_ms *
                  std::log2(params.damping.max_penalty /
                            params.damping.reuse_threshold) +
              200.0;
  }
  window += params.ls_holddown_ms;  // held-down originations lag the fault

  net.set_churn_observer([&monitor, storm_cls, window](Network::ChurnKind) {
    monitor.note_fault(storm_cls, window);
  });

  // --- storm schedule --------------------------------------------------
  FailureInjector injector(net);
  const SimTime t0 = result.converge_ms + params.onset_delay_ms;
  result.storm_begin_ms = t0;
  SimTime last = t0;
  std::uint64_t storm_state = params.seed ^ 0x73746f726dULL;  // "storm"
  Prng prng(splitmix64(storm_state));

  // Churn snapshot at storm begin: scheduled BEFORE any injector event
  // at the same timestamp (same-time events run in insertion order).
  std::uint64_t msgs_at_begin = 0;
  engine.at(t0,
            [&net, &msgs_at_begin] { msgs_at_begin = net.total().msgs_sent; });

  switch (params.storm) {
    case StormFamily::kFlapStorm: {
      std::vector<LinkId> core_links;
      for (const Link& l : topo.links()) {
        if (topo.can_transit(l.a) && topo.can_transit(l.b)) {
          core_links.push_back(l.id);
        }
      }
      prng.shuffle(core_links);
      const std::size_t n = std::min(params.flap_links, core_links.size());
      IDR_CHECK_MSG(n > 0, "scale chaos: no transit-transit links to flap");
      const SimTime down_ms =
          params.flap_period_ms * std::clamp(params.flap_duty, 0.01, 0.99);
      for (std::size_t i = 0; i < n; ++i) {
        // Random phase so the per-link processes interleave instead of
        // beating in lockstep.
        const SimTime phase =
            params.flap_period_ms *
            (static_cast<double>(prng.below(1024)) / 1024.0);
        injector.flap_link(core_links[i], t0 + phase, params.flap_period_ms,
                           params.flap_duty, params.flap_cycles);
        last = std::max(last, t0 + phase +
                                  (params.flap_cycles - 1) *
                                      params.flap_period_ms +
                                  down_ms);
      }
      break;
    }
    case StormFamily::kWithdrawStorm: {
      std::vector<AdId> pool = profile.beacons;
      prng.shuffle(pool);
      const std::size_t n = std::min(params.withdraw_beacons, pool.size());
      IDR_CHECK_MSG(n > 0, "scale chaos: no beacons to withdraw");
      for (std::uint32_t w = 0; w < params.withdraw_waves; ++w) {
        const SimTime wave_at =
            t0 + w * (params.withdraw_down_ms + params.withdraw_gap_ms);
        for (std::size_t i = 0; i < n; ++i) {
          // Single-homed stubs: the one access link is the beacon's
          // entire attachment; down = the destination goes dark.
          const auto adjs = topo.neighbors(pool[i]);
          IDR_CHECK_MSG(!adjs.empty(), "beacon with no access link");
          injector.fail_link_at(adjs.front().link, wave_at,
                                params.withdraw_down_ms);
        }
        last = std::max(last, wave_at + params.withdraw_down_ms);
      }
      break;
    }
    case StormFamily::kPartition: {
      // Cut the first regional's entire transit attachment (uplink plus
      // any core laterals): its campus subtree is off the backbone until
      // the heal.
      AdId regional = kNoAd;
      for (const Ad& ad : topo.ads()) {
        if (ad.cls == AdClass::kRegional) {
          regional = ad.id;
          break;
        }
      }
      IDR_CHECK_MSG(regional.valid(), "scale chaos: no regional AD");
      std::size_t cut = 0;
      for (const Adjacency& adj : topo.neighbors(regional)) {
        if (topo.can_transit(adj.neighbor)) {
          injector.fail_link_at(adj.link, t0, params.outage_ms);
          ++cut;
        }
      }
      IDR_CHECK_MSG(cut > 0, "scale chaos: regional had no uplink");
      last = t0 + params.outage_ms;
      break;
    }
    case StormFamily::kCoreOutage: {
      AdId backbone = kNoAd;
      for (const Ad& ad : topo.ads()) {
        if (ad.cls == AdClass::kBackbone) {
          backbone = ad.id;
          break;
        }
      }
      IDR_CHECK_MSG(backbone.valid(), "scale chaos: no backbone AD");
      injector.fail_node_links_at(backbone, t0, params.outage_ms);
      last = t0 + params.outage_ms;
      break;
    }
    case StormFamily::kRestartStorm: {
      std::vector<AdId> pool = profile.transits;
      prng.shuffle(pool);
      const std::size_t n = std::min(params.restart_nodes, pool.size());
      IDR_CHECK_MSG(n > 0, "scale chaos: no transit ADs to restart");
      for (std::uint32_t w = 0; w < params.restart_waves; ++w) {
        const SimTime wave_at =
            t0 + w * (params.restart_down_ms + params.restart_gap_ms);
        for (std::size_t i = 0; i < n; ++i) {
          // Staggered, not synchronized: each AD's crash lands a little
          // after the previous one's, the overload queues see a rolling
          // wave rather than one impulse.
          const SimTime at = wave_at + i * params.restart_stagger_ms;
          injector.crash_node_at(pool[i], at, params.restart_down_ms);
          last = std::max(last, at + params.restart_down_ms);
        }
      }
      break;
    }
  }
  result.storm_end_ms = last;

  // Storm-window churn is measured to a fixed settle probe shortly after
  // the last transition, so the damped/undamped comparison integrates
  // the same interval.
  const SimTime settle_at = last + 200.0;
  std::uint64_t msgs_at_settle = 0;
  engine.at(settle_at, [&net, &msgs_at_settle] {
    msgs_at_settle = net.total().msgs_sent;
  });

  const SimTime horizon =
      last + std::max(params.tail_ms, window + 1'000.0);
  result.horizon_ms = horizon;
  monitor.start(horizon);

  // No keepalives, no periodic refresh: the queue drains once every
  // storm reaction, release timer and monitor sweep has fired.
  engine.run();
  IDR_CHECK_MSG(engine.empty(), "scale chaos: run hit the event cap");

  result.invariants = monitor.stats();
  result.persistent_findings = monitor.persistent_findings();
  result.totals = net.total();
  result.counter_fingerprint = counter_fingerprint(net, topo);
  result.storm_transitions =
      injector.failures_injected() + injector.crashes_injected();
  result.node_crashes = injector.crashes_injected();
  result.overload = net.overload_stats();
  result.gr_recoveries = net.gr_recoveries();
  result.gr_flushes = net.gr_flushes();
  result.updates_during_storm = msgs_at_settle - msgs_at_begin;
  result.updates_after_storm = result.totals.msgs_sent - msgs_at_settle;
  result.updates_per_sec_storm =
      settle_at > t0 ? result.updates_during_storm / ((settle_at - t0) / 1e3)
                     : 0.0;

  const auto& cls_stats = result.invariants.fault_classes[storm_cls];
  if (monitor.awaiting_clean_sweep()) {
    result.reconverge_ms = -1.0;  // never reconverged before the horizon
  } else if (cls_stats.reconverge_ms.count() > 0) {
    result.reconverge_ms = cls_stats.reconverge_ms.max();
  } else {
    result.reconverge_ms = 0.0;  // no sweep ever saw the storm dirty
  }

  const SimTime end_now = engine.now();
  for (const Ad& ad : topo.ads()) {
    Node* node = net.node(ad.id);
    if (!node) continue;
    FlapDamper* damper = nullptr;
    if (arch == "ecma") {
      auto* n = static_cast<EcmaNode*>(node);
      damper = &n->damper();
      result.gr_stale_flushed += n->gr_stale_flushed();
      result.gr_resyncs += n->gr_resyncs();
    } else if (arch == "idrp") {
      auto* n = static_cast<IdrpNode*>(node);
      damper = &n->damper();
      result.gr_stale_flushed += n->gr_stale_flushed();
      result.gr_resyncs += n->gr_resyncs();
    } else if (arch == "ls-hbh") {
      auto* n = static_cast<LshhNode*>(node);
      result.ls_originations_suppressed += n->originations_suppressed();
      result.gr_retained += n->gr_retained();
      result.gr_resyncs += n->gr_resyncs();
    } else if (arch == "orwg") {
      auto* n = static_cast<OrwgNode*>(node);
      result.ls_originations_suppressed += n->originations_suppressed();
      result.gr_retained += n->gr_retained();
      result.gr_resyncs += n->gr_resyncs();
      result.gr_memoized += n->gr_memoized();
    }
    if (damper) {
      const DampingStats& ds = damper->stats();
      result.flaps_recorded += ds.flaps;
      result.routes_suppressed += ds.suppress_events;
      result.routes_reused += ds.reuse_events;
      result.suppressed_ms_total += ds.suppressed_ms;
      result.suppressed_at_end += damper->suppressed_count(end_now);
    }
  }
  return result;
}

}  // namespace idr
