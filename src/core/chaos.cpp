#include "core/chaos.hpp"

#include <algorithm>
#include <memory>
#include <queue>
#include <utility>

#include "core/synthesis.hpp"
#include "policy/generator.hpp"
#include "proto/ecma/ecma_node.hpp"
#include "proto/ecma/partial_order.hpp"
#include "proto/idrp/idrp_node.hpp"
#include "proto/lshh/lshh_node.hpp"
#include "proto/orwg/orwg_node.hpp"
#include "sim/failure.hpp"
#include "topology/figure1.hpp"
#include "util/check.hpp"

namespace idr {
namespace {

bool is_stub_role(const Topology& topo, AdId ad) {
  const AdRole role = topo.ad(ad).role;
  return role == AdRole::kStub || role == AdRole::kMultiHomed;
}

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) noexcept {
  h ^= v;
  return h * 0x100000001b3ULL;
}

// Hop-by-hop probe walk shared by the FIB-driven design points. `next_fn`
// asks the node currently holding the packet for its successor; a crashed
// node on the way (or no forwarding choice) is a black hole, a revisited
// AD is a loop.
template <typename NextFn>
Probe walk_probe(const Topology& topo, AdId src, AdId dst, NextFn&& next_fn) {
  Probe probe;
  probe.path.push_back(src);
  std::vector<bool> seen(topo.ad_count(), false);
  seen[src.v] = true;
  AdId cur = src;
  while (cur != dst) {
    const std::optional<AdId> next = next_fn(cur, probe.path);
    if (!next) {
      probe.outcome = ProbeOutcome::kBlackHole;
      return probe;
    }
    if (seen[next->v] || probe.path.size() > topo.ad_count()) {
      probe.outcome = ProbeOutcome::kLooped;
      return probe;
    }
    seen[next->v] = true;
    probe.path.push_back(*next);
    cur = *next;
  }
  probe.outcome = ProbeOutcome::kDelivered;
  return probe;
}

// Ground truth for ECMA: a destination is reachable only over an up*down*
// shaped walk (paper §5.1.1) through ADs willing to transit, between live
// nodes over live links. BFS over (AD, gone-down) states.
bool ecma_reachable(const Network& net, const Topology& topo,
                    const PartialOrder& order, AdId src, AdId dst) {
  const std::size_t n = topo.ad_count();
  std::vector<bool> seen(n * 2, false);
  std::queue<std::pair<AdId, bool>> queue;
  queue.emplace(src, false);
  seen[src.v * 2] = true;
  while (!queue.empty()) {
    const auto [cur, gone_down] = queue.front();
    queue.pop();
    if (cur == dst) return true;
    if (cur != src) {
      // Transit shaping mirrors the ECMA adapter: stub/multi-homed ADs
      // never transit; hybrids transit only toward their own neighbors.
      if (is_stub_role(topo, cur)) continue;
      if (topo.ad(cur).role == AdRole::kHybrid &&
          !topo.find_link(cur, dst)) {
        continue;
      }
    }
    for (const Adjacency& adj : topo.live_neighbors(cur)) {
      if (!net.alive(adj.neighbor)) continue;
      const bool hop_is_up = order.is_up(cur, adj.neighbor);
      if (gone_down && hop_is_up) continue;  // up after down: illegal shape
      const bool next_gone_down = gone_down || !hop_is_up;
      const std::size_t state = adj.neighbor.v * 2 + (next_gone_down ? 1 : 0);
      if (!seen[state]) {
        seen[state] = true;
        queue.emplace(adj.neighbor, next_gone_down);
      }
    }
  }
  return false;
}

// Ground truth for the policy-term design points: a route exists iff the
// synthesis oracle finds one over the live topology and real policy
// database, avoiding crashed ADs.
bool policy_reachable(const Network& net, const Topology& topo,
                      const PolicySet& policies, AdId src, AdId dst) {
  FlowSpec flow;
  flow.src = src;
  flow.dst = dst;
  SynthesisOptions options;
  options.first_found = true;
  options.expansion_budget = 200'000;
  for (const Ad& ad : topo.ads()) {
    if (!net.alive(ad.id)) options.avoid.push_back(ad.id);
  }
  const GroundTruthView view(topo, policies);
  return synthesize_route(view, flow, options).found();
}

std::uint64_t counter_fingerprint(const Network& net, const Topology& topo) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const Ad& ad : topo.ads()) {
    const Counters& c = net.counters(ad.id);
    h = fnv_mix(h, c.msgs_sent);
    h = fnv_mix(h, c.bytes_sent);
    h = fnv_mix(h, c.msgs_delivered);
    h = fnv_mix(h, c.msgs_dropped);
    h = fnv_mix(h, c.msgs_corrupted);
    h = fnv_mix(h, c.msgs_duplicated);
    h = fnv_mix(h, c.msgs_reordered);
    h = fnv_mix(h, c.malformed_dropped);
  }
  return h;
}

}  // namespace

const std::vector<std::string>& chaos_design_points() {
  static const std::vector<std::string> kPoints = {"ecma", "idrp", "ls-hbh",
                                                   "orwg"};
  return kPoints;
}

ChaosResult run_chaos(const std::string& arch, const ChaosParams& params) {
  Figure1 fig = build_figure1();
  Topology& topo = fig.topo;
  const PolicySet policies = make_open_policies(topo);

  Engine engine;
  Network net(engine, topo);

  // --- per-design-point node factory (also used for cold restarts) ----
  OrderResult order;
  Network::NodeFactory factory;
  if (arch == "ecma") {
    order = compute_partial_order(topo, {});
    IDR_CHECK_MSG(order.ok, "structural ordering conflict on Figure 1");
    factory = [&topo, &order, &params](AdId ad) -> std::unique_ptr<Node> {
      EcmaConfig config;
      config.stub = is_stub_role(topo, ad);
      if (topo.ad(ad).role == AdRole::kHybrid) {
        for (const Adjacency& adj : topo.neighbors(ad)) {
          config.export_dsts.insert(adj.neighbor.v);
        }
      }
      auto node = std::make_unique<EcmaNode>(&order.order, std::move(config));
      node->set_periodic_refresh(params.periodic_refresh_ms);
      return node;
    };
  } else if (arch == "idrp") {
    factory = [&policies, &params](AdId) -> std::unique_ptr<Node> {
      auto node = std::make_unique<IdrpNode>(&policies);
      node->set_periodic_refresh(params.periodic_refresh_ms);
      return node;
    };
  } else if (arch == "ls-hbh") {
    factory = [&policies, &params](AdId) -> std::unique_ptr<Node> {
      auto node = std::make_unique<LshhNode>(&policies);
      node->set_periodic_refresh(params.periodic_refresh_ms);
      return node;
    };
  } else if (arch == "orwg") {
    factory = [&policies, &params](AdId) -> std::unique_ptr<Node> {
      OrwgConfig config;
      config.periodic_refresh_ms = params.periodic_refresh_ms;
      return std::make_unique<OrwgNode>(&policies, config);
    };
  } else {
    IDR_CHECK_MSG(false, "unknown chaos design point");
  }

  net.set_node_factory(factory);
  for (const Ad& ad : topo.ads()) net.attach(ad.id, factory(ad.id));
  net.set_link_notifications(params.link_notifications);
  std::uint64_t seed_state = params.seed;
  net.set_faults(params.faults, splitmix64(seed_state));
  if (params.keepalive.interval_ms > 0.0) net.set_keepalive(params.keepalive);
  net.start_all();

  // --- probe + ground truth -------------------------------------------
  InvariantMonitor::ProbeFn probe;
  if (arch == "ecma") {
    probe = [&net, &topo](AdId src, AdId dst) {
      bool gone_down = false;
      return walk_probe(
          topo, src, dst,
          [&](AdId cur, const std::vector<AdId>&) -> std::optional<AdId> {
            auto* node = static_cast<EcmaNode*>(net.node(cur));
            if (!node) return std::nullopt;  // walked into a crashed AD
            const auto fwd = node->forward(dst, Qos::kDefault, gone_down);
            if (!fwd) return std::nullopt;
            gone_down = gone_down || fwd->sets_gone_down;
            return fwd->via;
          });
    };
  } else if (arch == "idrp") {
    probe = [&net, &topo](AdId src, AdId dst) {
      FlowSpec flow;
      flow.src = src;
      flow.dst = dst;
      return walk_probe(
          topo, src, dst,
          [&](AdId cur,
              const std::vector<AdId>& path) -> std::optional<AdId> {
            auto* node = static_cast<IdrpNode*>(net.node(cur));
            if (!node) return std::nullopt;
            const AdId prev =
                path.size() >= 2 ? path[path.size() - 2] : kNoAd;
            return node->forward(flow, prev);
          });
    };
  } else if (arch == "ls-hbh") {
    probe = [&net, &topo](AdId src, AdId dst) {
      FlowSpec flow;
      flow.src = src;
      flow.dst = dst;
      return walk_probe(
          topo, src, dst,
          [&](AdId cur, const std::vector<AdId>&) -> std::optional<AdId> {
            auto* node = static_cast<LshhNode*>(net.node(cur));
            if (!node) return std::nullopt;
            return node->forward(flow);
          });
    };
  } else {  // orwg: source-routed, the route server answers at the source
    probe = [&net](AdId src, AdId dst) {
      Probe p;
      auto* node = static_cast<OrwgNode*>(net.node(src));
      if (!node) return p;  // monitor skips dead endpoints anyway
      FlowSpec flow;
      flow.src = src;
      flow.dst = dst;
      auto path = node->policy_route(flow);
      if (!path) {
        p.path.push_back(src);
        return p;  // kBlackHole
      }
      p.outcome = ProbeOutcome::kDelivered;
      p.path = std::move(*path);
      return p;
    };
  }

  InvariantMonitor monitor(net, params.invariants, std::move(probe));
  if (arch == "ecma") {
    monitor.set_reachable_fn([&net, &topo, &order](AdId src, AdId dst) {
      return ecma_reachable(net, topo, order.order, src, dst);
    });
  } else {
    monitor.set_reachable_fn([&net, &topo, &policies](AdId src, AdId dst) {
      return policy_reachable(net, topo, policies, src, dst);
    });
  }
  net.set_churn_observer([&monitor] { monitor.note_fault(); });
  monitor.start(params.horizon_ms);

  // --- seeded churn schedule ------------------------------------------
  FailureInjector injector(net);
  const SimTime churn_end = params.horizon_ms * params.churn_fraction;
  Prng link_prng(splitmix64(seed_state));
  Prng node_prng(splitmix64(seed_state));
  injector.random_failures(link_prng, params.link_mean_uptime_ms,
                           params.link_mean_downtime_ms, churn_end);
  injector.random_crashes(node_prng, params.node_mean_uptime_ms,
                          params.node_mean_downtime_ms, churn_end);

  // Keepalives reschedule forever, so drive to the horizon rather than
  // draining the queue.
  engine.run_until(params.horizon_ms);

  ChaosResult result;
  result.arch = arch;
  result.invariants = monitor.stats();
  result.totals = net.total();
  result.losses = net.losses();
  result.link_failures = injector.failures_injected();
  result.node_crashes = injector.crashes_injected();
  result.counter_fingerprint = counter_fingerprint(net, topo);
  return result;
}

}  // namespace idr
