// Scenario construction: a topology, a policy mix, and a flow sample --
// the common input every architecture is evaluated on. Deterministic in
// the seed.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "policy/database.hpp"
#include "policy/generator.hpp"
#include "topology/graph.hpp"
#include "util/prng.hpp"

namespace idr {

struct Scenario {
  std::string name;
  Topology topo;
  PolicySet policies;
  std::vector<FlowSpec> flows;
};

struct ScenarioParams {
  std::uint64_t seed = 1;
  std::uint32_t target_ads = 64;
  std::size_t flow_count = 64;

  // Policy mix.
  bool provider_customer = true;  // else fully open transit
  bool aup_on_first_backbone = false;
  double restrict_prob = 0.25;         // fraction of transits restricted
  double source_selectivity = 0.6;     // sources allowed per restricted PT
  double avoid_fraction = 0.1;         // stubs with an avoid-list entry
  std::uint32_t terms_per_ad = 3;
};

Scenario make_scenario(const ScenarioParams& params);

// Random end-system flows: endpoints drawn from non-transit ADs (stub /
// multi-homed / hybrid), mostly default traffic class with a tail of
// QoS/UCI/time variation.
std::vector<FlowSpec> sample_flows(const Topology& topo, std::size_t count,
                                   Prng& prng);

}  // namespace idr
