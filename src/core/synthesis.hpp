// Policy route synthesis (paper §5.4.1, §6).
//
// Finding a least-cost AD-loop-free path subject to Policy Terms is the
// computationally hard heart of the link-state policy architectures: a
// PT constrains the (previous AD, next AD) transition through its owner,
// which makes this a forbidden-transition path problem (NP-hard in
// general; the paper: "Precomputation of all policy routes in a large
// internet is computationally intractable"). We implement a depth-first
// branch-and-bound over simple paths with:
//   * policy-free BFS distance to the destination as both an admissible
//     cost lower bound and a child-ordering heuristic,
//   * a node-expansion budget so callers can trade completeness for time
//     (the paper's precomputation-pruning heuristics),
//   * deterministic ordering, so every AD running the same search over
//     the same database derives the same route (the consistency
//     requirement of hop-by-hop link state, §5.3).
//
// The search runs against an abstract SynthesisView so the same code
// serves the ground-truth oracle (real Topology + PolicySet) and the
// protocol-eye view (reconstructed from flooded policy LSAs).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "policy/database.hpp"
#include "policy/flow.hpp"
#include "topology/graph.hpp"

namespace idr {

// What a route synthesizer may assume about the internet.
class SynthesisView {
 public:
  virtual ~SynthesisView() = default;

  [[nodiscard]] virtual std::size_t ad_count() const = 0;

  // Enumerate live neighbors of `ad` with the link metric.
  virtual void for_each_neighbor(
      AdId ad,
      const std::function<void(AdId neighbor, std::uint32_t metric)>& fn)
      const = 0;

  // Cheapest Policy Term of `ad` permitting `flow` to transit from `prev`
  // to `next`; nullopt if transit is not permitted.
  [[nodiscard]] virtual std::optional<std::uint32_t> transit_cost(
      AdId ad, const FlowSpec& flow, AdId prev, AdId next) const = 0;
};

// Ground truth: the real topology and policy database.
class GroundTruthView final : public SynthesisView {
 public:
  GroundTruthView(const Topology& topo, const PolicySet& policies)
      : topo_(topo), policies_(policies) {}

  [[nodiscard]] std::size_t ad_count() const override {
    return topo_.ad_count();
  }
  void for_each_neighbor(
      AdId ad, const std::function<void(AdId, std::uint32_t)>& fn)
      const override;
  [[nodiscard]] std::optional<std::uint32_t> transit_cost(
      AdId ad, const FlowSpec& flow, AdId prev, AdId next) const override;

 private:
  const Topology& topo_;
  const PolicySet& policies_;
};

struct SynthesisOptions {
  std::uint32_t max_hops = 32;        // max ADs on the path, inclusive
  std::vector<AdId> avoid;            // source route-selection criteria
  bool minimize_cost = true;          // false: minimize AD hops
  std::uint64_t expansion_budget = 2'000'000;  // node expansions
  bool first_found = false;           // stop at the first legal route

  // Links to route around (undirected AD pairs): used for fast Policy
  // Route repair when a data-plane error names a dead link the flooded
  // database does not know about yet.
  std::vector<std::pair<AdId, AdId>> avoid_links;

  // Ablation switches (measured by bench_synthesis_ablation): the
  // destination-distance child ordering / admissible lower bound, and
  // the branch-and-bound cost pruning. Production callers leave both on.
  bool use_distance_heuristic = true;
  bool use_cost_bound = true;
};

enum class SynthesisOutcome : std::uint8_t {
  kFound = 0,       // best route under the options returned
  kNoRoute = 1,     // search exhausted: no legal route exists
  kBudget = 2,      // budget exceeded before exhaustion (result unknown or
                    // possibly sub-optimal if a route was found first)
};

struct SynthesisResult {
  SynthesisOutcome outcome = SynthesisOutcome::kNoRoute;
  std::vector<AdId> path;  // src..dst when a route was found
  std::uint64_t cost = 0;  // PT costs + link metrics along path
  std::uint64_t expansions = 0;

  [[nodiscard]] bool found() const noexcept { return !path.empty(); }
};

SynthesisResult synthesize_route(const SynthesisView& view,
                                 const FlowSpec& flow,
                                 const SynthesisOptions& options = {});

// Policy-free hop distances to `dst` over the view's live links (the
// heuristic the search uses; exposed for tests and benches).
std::vector<std::uint32_t> distances_to(const SynthesisView& view, AdId dst);

}  // namespace idr
