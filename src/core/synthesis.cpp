#include "core/synthesis.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "util/check.hpp"

namespace idr {

void GroundTruthView::for_each_neighbor(
    AdId ad, const std::function<void(AdId, std::uint32_t)>& fn) const {
  for (const Adjacency& adj : topo_.neighbors(ad)) {
    const Link& l = topo_.link(adj.link);
    if (!l.up) continue;
    fn(adj.neighbor, l.metric);
  }
}

std::optional<std::uint32_t> GroundTruthView::transit_cost(
    AdId ad, const FlowSpec& flow, AdId prev, AdId next) const {
  if (!topo_.can_transit(ad)) return std::nullopt;
  return policies_.transit_cost(ad, flow, prev, next);
}

std::vector<std::uint32_t> distances_to(const SynthesisView& view, AdId dst) {
  constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();
  std::vector<std::uint32_t> dist(view.ad_count(), kInf);
  if (dst.v >= dist.size()) return dist;
  dist[dst.v] = 0;
  std::deque<AdId> frontier{dst};
  while (!frontier.empty()) {
    const AdId cur = frontier.front();
    frontier.pop_front();
    view.for_each_neighbor(cur, [&](AdId nbr, std::uint32_t) {
      if (dist[nbr.v] != kInf) return;
      dist[nbr.v] = dist[cur.v] + 1;
      frontier.push_back(nbr);
    });
  }
  return dist;
}

namespace {

constexpr std::uint32_t kInf = std::numeric_limits<std::uint32_t>::max();

class Searcher {
 public:
  Searcher(const SynthesisView& view, const FlowSpec& flow,
           const SynthesisOptions& options)
      : view_(view),
        flow_(flow),
        options_(options),
        dist_to_dst_(distances_to(view, flow.dst)),
        visited_(view.ad_count(), false) {
    for (AdId ad : options_.avoid) {
      if (ad.v < visited_.size()) visited_[ad.v] = true;  // never enter
    }
    // Avoid lists constrain transit only; endpoints are always allowed.
    if (flow.src.v < visited_.size()) visited_[flow.src.v] = false;
    if (flow.dst.v < visited_.size()) visited_[flow.dst.v] = false;
  }

  SynthesisResult run() {
    if (flow_.src.v >= view_.ad_count() || flow_.dst.v >= view_.ad_count() ||
        flow_.src == flow_.dst) {
      return result_;
    }
    // An avoided source/destination is a contradiction only for transit;
    // endpoints are always allowed.
    visited_[flow_.src.v] = true;
    path_.push_back(flow_.src);
    dfs(flow_.src, kNoAd, 0);
    if (result_.found()) {
      result_.outcome = budget_hit_ ? SynthesisOutcome::kBudget
                                    : SynthesisOutcome::kFound;
    } else {
      result_.outcome = budget_hit_ ? SynthesisOutcome::kBudget
                                    : SynthesisOutcome::kNoRoute;
    }
    return result_;
  }

 private:
  struct Child {
    AdId ad;
    std::uint64_t step_cost;
    std::uint32_t heuristic;
  };

  void dfs(AdId cur, AdId prev, std::uint64_t cost) {
    if (done_) return;
    if (++result_.expansions > options_.expansion_budget) {
      budget_hit_ = true;
      done_ = true;
      return;
    }
    if (cur == flow_.dst) {
      if (!result_.found() || cost < result_.cost) {
        result_.path = path_;
        result_.cost = cost;
        if (options_.first_found) done_ = true;
      }
      return;
    }
    if (path_.size() >= options_.max_hops) return;
    // Reachability: a node the destination cannot be reached from (over
    // live links, ignoring policy) is a dead end regardless of options.
    if (dist_to_dst_[cur.v] == kInf) return;
    // Admissible bound: every remaining hop costs at least 1.
    if (options_.use_cost_bound && result_.found() &&
        cost + (options_.use_distance_heuristic ? dist_to_dst_[cur.v] : 1) >=
            result_.cost) {
      return;
    }

    // Collect feasible extensions cur -> n. If cur is not the source it
    // is a transit AD for this step and must have a permitting PT for
    // (prev, n); the step cost includes that PT's cost.
    std::vector<Child> children;
    view_.for_each_neighbor(cur, [&](AdId n, std::uint32_t link_metric) {
      if (visited_[n.v]) return;
      if (dist_to_dst_[n.v] == kInf) return;
      for (const auto& [x, y] : options_.avoid_links) {
        if ((x == cur && y == n) || (x == n && y == cur)) return;
      }
      std::uint64_t step = link_metric;
      if (cur != flow_.src) {
        const auto pt_cost = view_.transit_cost(cur, flow_, prev, n);
        if (!pt_cost) return;
        step += options_.minimize_cost ? *pt_cost : 0;
      }
      if (!options_.minimize_cost) step = 1;  // hop counting
      children.push_back(Child{n, step, dist_to_dst_[n.v]});
    });
    // Deterministic best-first child ordering: toward the destination,
    // ties by id. Determinism is what lets all LSHH nodes agree. With
    // the heuristic ablated, order by id alone (still deterministic).
    if (options_.use_distance_heuristic) {
      std::sort(children.begin(), children.end(),
                [](const Child& a, const Child& b) {
                  if (a.heuristic != b.heuristic) {
                    return a.heuristic < b.heuristic;
                  }
                  if (a.step_cost != b.step_cost) {
                    return a.step_cost < b.step_cost;
                  }
                  return a.ad < b.ad;
                });
    } else {
      std::sort(children.begin(), children.end(),
                [](const Child& a, const Child& b) { return a.ad < b.ad; });
    }
    for (const Child& child : children) {
      if (done_) return;
      visited_[child.ad.v] = true;
      path_.push_back(child.ad);
      dfs(child.ad, cur, cost + child.step_cost);
      path_.pop_back();
      visited_[child.ad.v] = false;
    }
  }

  const SynthesisView& view_;
  const FlowSpec& flow_;
  const SynthesisOptions& options_;
  std::vector<std::uint32_t> dist_to_dst_;
  std::vector<bool> visited_;
  std::vector<AdId> path_;
  SynthesisResult result_;
  bool budget_hit_ = false;
  bool done_ = false;
};

}  // namespace

SynthesisResult synthesize_route(const SynthesisView& view,
                                 const FlowSpec& flow,
                                 const SynthesisOptions& options) {
  IDR_CHECK(options.max_hops >= 2);
  Searcher searcher(view, flow, options);
  return searcher.run();
}

}  // namespace idr
