#include "core/architecture.hpp"

#include "util/check.hpp"

namespace idr {

const char* to_string(Algorithm a) noexcept {
  switch (a) {
    case Algorithm::kDistanceVector: return "distance-vector";
    case Algorithm::kLinkState: return "link-state";
  }
  return "?";
}

const char* to_string(Decision d) noexcept {
  switch (d) {
    case Decision::kHopByHop: return "hop-by-hop";
    case Decision::kSourceRouting: return "source-routing";
  }
  return "?";
}

const char* to_string(PolicyExpression p) noexcept {
  switch (p) {
    case PolicyExpression::kNone: return "none";
    case PolicyExpression::kTopology: return "topology";
    case PolicyExpression::kPolicyTerms: return "policy-terms";
  }
  return "?";
}

std::string DesignPoint::describe() const {
  std::string out = to_string(algorithm);
  out += " / ";
  out += to_string(decision);
  out += " / ";
  out += to_string(policy);
  return out;
}

void RoutingArchitecture::build(const Topology& topo,
                                const PolicySet& policies) {
  IDR_CHECK_MSG(!built(), "build() may only be called once");
  topo_ = topo;  // private copy: protocols flip link state independently
  policies_ = &policies;
  engine_ = std::make_unique<Engine>();
  net_ = std::make_unique<Network>(*engine_, topo_);
  attach_nodes();
  net_->start_all();
  const std::size_t events = engine_->run();
  initial_convergence_ = ConvergenceStats{
      net_->last_delivery_time(), net_->total().msgs_sent,
      net_->total().bytes_sent, events};
}

ConvergenceStats RoutingArchitecture::perturb(LinkId link, bool up) {
  IDR_CHECK(built());
  const Counters before = net_->total();
  const SimTime start = engine_->now();
  net_->set_link_state(link, up);
  const std::size_t events = engine_->run();
  const Counters after = net_->total();
  return ConvergenceStats{
      net_->last_delivery_time() > start ? net_->last_delivery_time() - start
                                         : 0.0,
      after.msgs_sent - before.msgs_sent, after.bytes_sent - before.bytes_sent,
      events};
}

}  // namespace idr
