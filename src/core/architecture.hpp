// The executable design space (paper Table 1).
//
// Every inter-AD routing proposal is positioned by three decisions:
// routing algorithm (distance vector / link state), location of the
// routing decision (hop-by-hop / source), and expression of policy (in
// the topology / explicit policy terms). RoutingArchitecture is the
// common harness: build the protocol over a scenario topology, run the
// control plane to convergence inside the simulator, then interrogate the
// data plane -- what path would a given flow's packets actually take, how
// much state and computation does each AD hold, what does a packet header
// cost. The scenario runner compares every architecture against the
// ground-truth oracle on identical inputs.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "policy/database.hpp"
#include "policy/flow.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "topology/graph.hpp"

namespace idr {

enum class Algorithm : std::uint8_t { kDistanceVector, kLinkState };
enum class Decision : std::uint8_t { kHopByHop, kSourceRouting };
enum class PolicyExpression : std::uint8_t {
  kNone,        // policy-blind baseline protocols (RIP/OSPF/EGP class)
  kTopology,    // policy embedded in topology (ECMA partial ordering)
  kPolicyTerms  // explicit policy terms in routing exchanges
};

struct DesignPoint {
  Algorithm algorithm;
  Decision decision;
  PolicyExpression policy;

  [[nodiscard]] std::string describe() const;
};

struct ConvergenceStats {
  SimTime time_ms = 0.0;        // last protocol delivery before quiescence
  std::uint64_t messages = 0;   // protocol messages sent
  std::uint64_t bytes = 0;      // encoded bytes sent
  std::size_t events = 0;       // simulator events processed
};

// Result of tracing one flow through an architecture's data plane.
struct RouteTrace {
  std::optional<std::vector<AdId>> path;  // src..dst on success
  bool looped = false;  // forwarding revisited an AD / exceeded hop cap
};

class RoutingArchitecture {
 public:
  virtual ~RoutingArchitecture() = default;

  [[nodiscard]] virtual std::string name() const = 0;
  [[nodiscard]] virtual DesignPoint design_point() const = 0;

  // Instantiate protocol nodes over a private copy of `topo`, start them,
  // and run the control plane to quiescence. May be called once.
  void build(const Topology& topo, const PolicySet& policies);

  // Apply a link state change and re-run to quiescence; returns the
  // re-convergence cost alone.
  ConvergenceStats perturb(LinkId link, bool up);

  // Trace the AD-level path of one flow through the data plane.
  [[nodiscard]] virtual RouteTrace trace(const FlowSpec& flow) = 0;

  // Total control/forwarding state entries across all ADs (RIB routes,
  // FIB entries, flow caches, PR handles -- whatever the architecture
  // keeps to forward packets).
  [[nodiscard]] virtual std::size_t state_entries() const = 0;

  // Route computations performed (SPF runs / syntheses); 0 for protocols
  // whose computation is implicit in update processing.
  [[nodiscard]] virtual std::uint64_t computations() const = 0;

  // Per-data-packet header bytes on a path of the given length.
  [[nodiscard]] virtual std::size_t header_bytes(
      std::size_t path_len) const = 0;

  // True if the protocol can run on this topology at all (EGP cannot on
  // cyclic graphs).
  [[nodiscard]] virtual bool applicable(const Topology& topo) const {
    (void)topo;
    return true;
  }

  [[nodiscard]] const ConvergenceStats& initial_convergence() const noexcept {
    return initial_convergence_;
  }
  [[nodiscard]] Network& network() { return *net_; }
  [[nodiscard]] Topology& topo() { return topo_; }
  [[nodiscard]] const PolicySet& policies() const { return *policies_; }
  [[nodiscard]] bool built() const noexcept { return net_ != nullptr; }

 protected:
  // Subclass hook: attach one node per AD to network().
  virtual void attach_nodes() = 0;

  // Walk a hop-by-hop data plane: repeatedly ask `next` for the successor
  // until dst, drop (nullopt) or a loop. Shared by the HbH adapters.
  template <typename NextFn>
  [[nodiscard]] RouteTrace walk(const FlowSpec& flow, NextFn&& next) const {
    RouteTrace result;
    std::vector<AdId> path{flow.src};
    std::vector<bool> seen(topo_.ad_count(), false);
    seen[flow.src.v] = true;
    AdId cur = flow.src;
    while (cur != flow.dst) {
      const std::optional<AdId> hop = next(cur, path);
      if (!hop) return result;  // dropped: no route at this AD
      if (seen[hop->v]) {
        result.looped = true;
        return result;
      }
      seen[hop->v] = true;
      path.push_back(*hop);
      cur = *hop;
      if (path.size() > topo_.ad_count()) {
        result.looped = true;
        return result;
      }
    }
    result.path = std::move(path);
    return result;
  }

  Topology topo_;  // private copy; protocols mutate link state through it
  const PolicySet* policies_ = nullptr;
  std::unique_ptr<Engine> engine_;
  std::unique_ptr<Network> net_;
  ConvergenceStats initial_convergence_;
};

const char* to_string(Algorithm a) noexcept;
const char* to_string(Decision d) noexcept;
const char* to_string(PolicyExpression p) noexcept;

}  // namespace idr
