#include "core/oracle.hpp"

namespace idr {

SynthesisOptions Oracle::options_for(const FlowSpec& flow,
                                     std::uint64_t budget,
                                     bool first_found) const {
  const SourcePolicy& sp = policies_.source_policy(flow.src);
  SynthesisOptions options;
  options.max_hops = sp.max_hops;
  options.avoid = sp.avoid;
  options.minimize_cost = sp.prefer_min_cost;
  options.expansion_budget = budget;
  options.first_found = first_found;
  return options;
}

SynthesisResult Oracle::best_route(const FlowSpec& flow,
                                   std::uint64_t expansion_budget) const {
  return synthesize_route(view_, flow,
                          options_for(flow, expansion_budget, false));
}

RouteExistence Oracle::exists(const FlowSpec& flow,
                              std::uint64_t expansion_budget) const {
  const SynthesisResult result = synthesize_route(
      view_, flow, options_for(flow, expansion_budget, true));
  if (result.found()) return RouteExistence::kExists;
  return result.outcome == SynthesisOutcome::kBudget
             ? RouteExistence::kUnknown
             : RouteExistence::kNone;
}

}  // namespace idr
