#include "core/adapters.hpp"

#include <unordered_set>

#include "proto/ecma/partial_order.hpp"
#include "util/check.hpp"

namespace idr {
namespace {

// Per-AD stub/hybrid shaping shared by the adapters that must derive
// policy from roles (the architectures that cannot read Policy Terms).
bool is_stub_role(const Topology& topo, AdId ad) {
  const AdRole role = topo.ad(ad).role;
  return role == AdRole::kStub || role == AdRole::kMultiHomed;
}

}  // namespace

// --- DV (RIP baseline) ---

void DvArchitecture::attach_nodes() {
  nodes_.clear();
  for (const Ad& ad : topo_.ads()) {
    auto node = std::make_unique<DvNode>(config_);
    nodes_.push_back(node.get());
    net_->attach(ad.id, std::move(node));
  }
}

RouteTrace DvArchitecture::trace(const FlowSpec& flow) {
  return walk(flow, [&](AdId cur, const std::vector<AdId>&) {
    return nodes_[cur.v]->next_hop(flow.dst);
  });
}

std::size_t DvArchitecture::state_entries() const {
  std::size_t n = 0;
  for (const DvNode* node : nodes_) n += node->route_count();
  return n;
}

// --- LS (OSPF baseline) ---

void LsArchitecture::attach_nodes() {
  nodes_.clear();
  for (const Ad& ad : topo_.ads()) {
    auto node = std::make_unique<LsNode>();
    nodes_.push_back(node.get());
    net_->attach(ad.id, std::move(node));
  }
}

RouteTrace LsArchitecture::trace(const FlowSpec& flow) {
  return walk(flow, [&](AdId cur, const std::vector<AdId>&) {
    return nodes_[cur.v]->next_hop(flow.dst, flow.qos);
  });
}

std::size_t LsArchitecture::state_entries() const {
  std::size_t n = 0;
  for (const LsNode* node : nodes_) n += node->fib_size();
  return n;
}

std::uint64_t LsArchitecture::computations() const {
  std::uint64_t n = 0;
  for (const LsNode* node : nodes_) n += node->spf_runs();
  return n;
}

// --- EGP ---

bool EgpArchitecture::applicable(const Topology& topo) const {
  return egp_applicable(topo);
}

void EgpArchitecture::attach_nodes() {
  IDR_CHECK_MSG(egp_applicable(topo_),
                "EGP requires an acyclic inter-AD topology");
  nodes_.clear();
  for (const Ad& ad : topo_.ads()) {
    auto node = std::make_unique<EgpNode>();
    if (is_stub_role(topo_, ad.id)) {
      // Stubs advertise only their own reachability.
      node->set_export_filter({ad.id.v});
    }
    nodes_.push_back(node.get());
    net_->attach(ad.id, std::move(node));
  }
}

RouteTrace EgpArchitecture::trace(const FlowSpec& flow) {
  return walk(flow, [&](AdId cur, const std::vector<AdId>&) {
    return nodes_[cur.v]->next_hop(flow.dst);
  });
}

std::size_t EgpArchitecture::state_entries() const {
  std::size_t n = 0;
  for (const EgpNode* node : nodes_) {
    for (const Ad& ad : topo_.ads()) {
      if (node->next_hop(ad.id)) ++n;
    }
  }
  return n;
}

// --- ECMA ---

void EcmaArchitecture::attach_nodes() {
  order_ = compute_partial_order(topo_, {});
  IDR_CHECK_MSG(order_.ok, "structural ordering conflict");
  nodes_.clear();
  for (const Ad& ad : topo_.ads()) {
    EcmaConfig config;
    config.stub = is_stub_role(topo_, ad.id);
    if (ad.role == AdRole::kHybrid) {
      // ECMA can express destination filters only: a hybrid AD serves
      // transit solely toward its own neighbors.
      for (const Adjacency& adj : topo_.neighbors(ad.id)) {
        config.export_dsts.insert(adj.neighbor.v);
      }
    }
    auto node = std::make_unique<EcmaNode>(&order_.order, std::move(config));
    nodes_.push_back(node.get());
    net_->attach(ad.id, std::move(node));
  }
}

RouteTrace EcmaArchitecture::trace(const FlowSpec& flow) {
  RouteTrace result;
  std::vector<AdId> path{flow.src};
  std::vector<bool> seen(topo_.ad_count(), false);
  seen[flow.src.v] = true;
  bool gone_down = false;
  AdId cur = flow.src;
  while (cur != flow.dst) {
    const auto fwd = nodes_[cur.v]->forward(flow.dst, flow.qos, gone_down);
    if (!fwd) return result;
    if (seen[fwd->via.v]) {
      result.looped = true;
      return result;
    }
    gone_down = gone_down || fwd->sets_gone_down;
    seen[fwd->via.v] = true;
    path.push_back(fwd->via);
    cur = fwd->via;
    if (path.size() > topo_.ad_count()) {
      result.looped = true;
      return result;
    }
  }
  result.path = std::move(path);
  return result;
}

std::size_t EcmaArchitecture::state_entries() const {
  std::size_t n = 0;
  for (const EcmaNode* node : nodes_) n += node->fib_entries();
  return n;
}

// --- IDRP ---

void IdrpArchitecture::attach_nodes() {
  nodes_.clear();
  for (const Ad& ad : topo_.ads()) {
    auto node = std::make_unique<IdrpNode>(policies_, config_);
    nodes_.push_back(node.get());
    net_->attach(ad.id, std::move(node));
  }
}

RouteTrace IdrpArchitecture::trace(const FlowSpec& flow) {
  return walk(flow, [&](AdId cur, const std::vector<AdId>& path) {
    const AdId prev = path.size() >= 2 ? path[path.size() - 2] : kNoAd;
    return nodes_[cur.v]->forward(flow, prev);
  });
}

std::size_t IdrpArchitecture::state_entries() const {
  std::size_t n = 0;
  for (const IdrpNode* node : nodes_) {
    n += node->loc_rib_routes() + node->adj_rib_routes();
  }
  return n;
}

// --- LSHH ---

void LshhArchitecture::attach_nodes() {
  nodes_.clear();
  for (const Ad& ad : topo_.ads()) {
    auto node = std::make_unique<LshhNode>(policies_);
    nodes_.push_back(node.get());
    net_->attach(ad.id, std::move(node));
  }
}

RouteTrace LshhArchitecture::trace(const FlowSpec& flow) {
  return walk(flow, [&](AdId cur, const std::vector<AdId>&) {
    return nodes_[cur.v]->forward(flow);
  });
}

std::size_t LshhArchitecture::state_entries() const {
  std::size_t n = 0;
  for (const LshhNode* node : nodes_) {
    n += node->cache_entries() + node->lsdb().size();
  }
  return n;
}

std::uint64_t LshhArchitecture::computations() const {
  std::uint64_t n = 0;
  for (const LshhNode* node : nodes_) n += node->path_computations();
  return n;
}

// --- ORWG ---

void OrwgArchitecture::attach_nodes() {
  nodes_.clear();
  for (const Ad& ad : topo_.ads()) {
    auto node = std::make_unique<OrwgNode>(policies_, config_);
    nodes_.push_back(node.get());
    net_->attach(ad.id, std::move(node));
  }
}

RouteTrace OrwgArchitecture::trace(const FlowSpec& flow) {
  RouteTrace result;
  auto path = nodes_[flow.src.v]->policy_route(flow);
  if (path) result.path = std::move(*path);
  return result;  // source routes cannot loop (synthesis is simple-path)
}

std::size_t OrwgArchitecture::state_entries() const {
  std::size_t n = 0;
  for (OrwgNode* node : nodes_) {
    n += node->route_server().cache_size() + node->gateway().installed() +
         node->lsdb().size();
  }
  return n;
}

std::uint64_t OrwgArchitecture::computations() const {
  std::uint64_t n = 0;
  for (OrwgNode* node : nodes_) n += node->route_server().synth_calls();
  return n;
}

// --- DV + source routing hybrid ---

void DvsrArchitecture::attach_nodes() {
  nodes_.clear();
  for (const Ad& ad : topo_.ads()) {
    auto node = std::make_unique<DvsrNode>(policies_, config_);
    nodes_.push_back(node.get());
    net_->attach(ad.id, std::move(node));
  }
}

RouteTrace DvsrArchitecture::trace(const FlowSpec& flow) {
  RouteTrace result;
  auto path = nodes_[flow.src.v]->source_route(flow);
  if (path) result.path = std::move(*path);
  return result;
}

std::size_t DvsrArchitecture::state_entries() const {
  std::size_t n = 0;
  for (const DvsrNode* node : nodes_) {
    n += node->loc_rib_routes() + node->adj_rib_routes();
  }
  return n;
}

std::vector<std::unique_ptr<RoutingArchitecture>> make_policy_architectures() {
  std::vector<std::unique_ptr<RoutingArchitecture>> archs;
  archs.push_back(std::make_unique<DvArchitecture>());
  archs.push_back(std::make_unique<LsArchitecture>());
  archs.push_back(std::make_unique<EcmaArchitecture>());
  archs.push_back(std::make_unique<IdrpArchitecture>());
  archs.push_back(std::make_unique<LshhArchitecture>());
  archs.push_back(std::make_unique<OrwgArchitecture>());
  archs.push_back(std::make_unique<DvsrArchitecture>());
  return archs;
}

}  // namespace idr
