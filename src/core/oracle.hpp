// Ground-truth legal-route oracle. Evaluating the paper's central claim
// ("a link-state source-routing architecture lets the source discover a
// valid route if one in fact exists, while hop-by-hop designs may not")
// requires an arbiter of what routes exist. The oracle searches the real
// topology and policy database exhaustively (within a generous expansion
// budget) and reports existence and the best legal route, honoring the
// source AD's own route-selection criteria.
#pragma once

#include "core/synthesis.hpp"
#include "policy/database.hpp"
#include "topology/graph.hpp"

namespace idr {

enum class RouteExistence : std::uint8_t {
  kExists = 0,
  kNone = 1,
  kUnknown = 2,  // search budget exhausted before an answer
};

class Oracle {
 public:
  Oracle(const Topology& topo, const PolicySet& policies)
      : topo_(topo), policies_(policies), view_(topo, policies) {}

  // Best legal route for the flow (min cost), honoring the source AD's
  // avoid list and hop budget.
  [[nodiscard]] SynthesisResult best_route(
      const FlowSpec& flow,
      std::uint64_t expansion_budget = 4'000'000) const;

  [[nodiscard]] RouteExistence exists(
      const FlowSpec& flow,
      std::uint64_t expansion_budget = 4'000'000) const;

  // Validates a concrete path against ground truth.
  [[nodiscard]] bool is_legal(const FlowSpec& flow,
                              std::span<const AdId> path) const {
    return policies_.path_is_legal(topo_, flow, path);
  }

 private:
  [[nodiscard]] SynthesisOptions options_for(const FlowSpec& flow,
                                             std::uint64_t budget,
                                             bool first_found) const;

  const Topology& topo_;
  const PolicySet& policies_;
  GroundTruthView view_;
};

}  // namespace idr
