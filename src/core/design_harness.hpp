// Shared per-design-point harness: everything needed to stand up one of
// the paper's four detailed design points (ECMA, IDRP, LS-HbH, ORWG) over
// an arbitrary scenario and interrogate its data plane from the outside.
//
// Both adversarial drivers build on this: the chaos layer (core/chaos.*)
// runs the Figure 1 internetwork through randomized churn, and the
// deterministic simulation-testing subsystem (simtest/*) runs generated
// internets through scripted schedules and cross-checks every design
// point against the ground-truth oracle. Keeping the node factories,
// forwarding-walk probes and per-design ground-truth reachability in one
// place guarantees the two drivers argue about the same protocols.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "policy/database.hpp"
#include "policy/flow.hpp"
#include "proto/ecma/partial_order.hpp"
#include "sim/invariants.hpp"
#include "sim/network.hpp"
#include "topology/graph.hpp"

namespace idr {

// The four design points every adversarial driver exercises.
const std::vector<std::string>& design_point_names();
[[nodiscard]] bool is_design_point(const std::string& arch);

// Stub/multi-homed roles never transit (paper §2.1); shared by the
// adapters that derive policy from roles.
[[nodiscard]] bool is_stub_role(const Topology& topo, AdId ad);

// Engine backend selection shared by the differential runner and the
// scale benches: scheduler choice plus the optional sharded-parallel
// execution mode. shards <= 1 keeps the engine sequential (the
// reference backend); shards > 1 partitions the topology along the
// hierarchy and runs conservative lookahead windows -- inline on the
// driver thread when threads == 0, or on `threads` workers. Results are
// byte-identical across all of these for the same seed.
struct EngineBackend {
  SchedulerKind scheduler = SchedulerKind::kCalendar;
  std::uint32_t shards = 1;
  unsigned threads = 0;
  // Shrink the window lookahead below the topology's minimum cross-shard
  // delay (window-boundary stress in tests); 0 keeps the partitioner's
  // value. Never enlarges it.
  double lookahead_ms = 0.0;
};

// Partition `topo` and enable sharding on a freshly constructed engine
// per `backend` (no-op when shards <= 1). Must run before the Network is
// built: per-shard delivery aggregates are sized at Network construction.
void apply_engine_backend(Engine& engine, const Topology& topo,
                          const EngineBackend& backend);

struct HarnessConfig {
  // Arm the per-design-point Byzantine defenses (ECMA receiver-side
  // partial-order enforcement, IDRP clamping, LS/LSHH origin auth, ORWG
  // registry-validated synthesis).
  bool defended = false;
  // Periodic full-state refresh per node; 0 disables.
  double periodic_refresh_ms = 300.0;
  // Per-AD LSA authentication keys for the defended LS designs; must
  // outlive the factory. Ignored when null or not defended.
  const std::vector<std::uint64_t>* lsa_keys = nullptr;
};

// Node factory for `arch` over (topo, policies). `order` is required for
// "ecma" (and must outlive the factory), ignored otherwise. The returned
// factory is also suitable for Network::set_node_factory (cold restarts).
Network::NodeFactory make_design_factory(const std::string& arch,
                                         const Topology& topo,
                                         const PolicySet& policies,
                                         const OrderResult* order,
                                         const HarnessConfig& config);

// Flow-granular forwarding-walk probe: walks `arch`'s current data plane
// for one flow (hop-by-hop FIB walk, or the route server's answer for
// ORWG) and reports delivery / loop / black hole plus the hops taken. A
// quarantined or traffic-dropping AD on the way swallows the packet.
using FlowProbeFn = std::function<Probe(const FlowSpec&)>;
FlowProbeFn make_design_probe(const std::string& arch, Network& net,
                              const Topology& topo);

// The (src, dst) probe shape the InvariantMonitor wants: the flow probe
// at default traffic class.
InvariantMonitor::ProbeFn make_pair_probe(FlowProbeFn probe);

// Ground truth for ECMA: a destination is reachable only over an
// up*down*-shaped walk (paper §5.1.1) through ADs willing to transit,
// between live nodes over live links. With quarantine_only, actively
// traffic-dropping (but unquarantined) ADs still count as usable -- the
// auditor's honest-reachability view.
[[nodiscard]] bool ecma_reachable(const Network& net, const Topology& topo,
                                  const PartialOrder& order, AdId src,
                                  AdId dst, bool quarantine_only = false);

// Ground truth for the policy-term design points: a route exists iff the
// synthesis oracle finds one over the live topology and real policy
// database, avoiding crashed / quarantined / traffic-dropping ADs.
[[nodiscard]] bool policy_reachable(const Network& net, const Topology& topo,
                                    const PolicySet& policies, AdId src,
                                    AdId dst, bool quarantine_only = false);

// Per-design ground-truth reachability for the InvariantMonitor.
InvariantMonitor::ReachableFn make_design_reachable(
    const std::string& arch, const Network& net, const Topology& topo,
    const PolicySet& policies, const OrderResult* order,
    bool quarantine_only = false);

// Per-design path-compliance predicate: is this delivered src..dst path
// legal under the design's own notion of policy (the ECMA partial order /
// the Policy Term database)?
using PathComplianceFn = std::function<bool(
    AdId src, AdId dst, const std::vector<AdId>& path)>;
PathComplianceFn make_design_compliance(const std::string& arch,
                                        const Topology& topo,
                                        const PolicySet& policies,
                                        const OrderResult* order);

// FNV-1a fingerprint over every AD's message counters: two runs of the
// same seed must produce identical fingerprints (determinism gate).
[[nodiscard]] std::uint64_t counter_fingerprint(const Network& net,
                                                const Topology& topo);

}  // namespace idr
