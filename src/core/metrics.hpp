// Architecture evaluation against ground truth: for a scenario and a flow
// sample, how often does each architecture deliver a route, is that route
// actually legal under the real policies, how often does it miss a route
// the oracle proves exists, and what does it pay in convergence traffic,
// state and computation. These are the measured versions of the paper's
// §5 comparative claims.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/architecture.hpp"
#include "core/oracle.hpp"

namespace idr {

struct ArchEvaluation {
  std::string arch;
  std::string design_point;
  bool applicable = true;

  std::size_t flows = 0;
  std::size_t oracle_routes = 0;  // flows for which a legal route exists
  std::size_t found = 0;          // architecture produced a path
  std::size_t legal = 0;          // ...and it is legal under ground truth
  std::size_t illegal = 0;        // produced a policy-violating/broken path
  std::size_t looped = 0;         // forwarding looped
  std::size_t missed = 0;         // legal route exists, none produced

  // legal / oracle_routes: the paper's route-availability criterion.
  [[nodiscard]] double availability() const noexcept {
    return oracle_routes == 0
               ? 1.0
               : static_cast<double>(legal) /
                     static_cast<double>(oracle_routes);
  }
  // Mean cost ratio vs the oracle's best legal route, over legal paths.
  double mean_stretch = 0.0;

  ConvergenceStats convergence;
  std::size_t state = 0;
  std::uint64_t computations = 0;
  double mean_path_len = 0.0;
  std::size_t header_bytes = 0;  // per data packet at the mean path length
};

// Builds the architecture over (topo, policies) if needed, traces every
// flow, and scores against the oracle.
ArchEvaluation evaluate_architecture(RoutingArchitecture& arch,
                                     const Topology& topo,
                                     const PolicySet& policies,
                                     std::span<const FlowSpec> flows);

}  // namespace idr
