// Paper-scale deployment profile (paper §2.1: ~1e5 ADs of which only
// ~1e2 are transit). A flat all-pairs run is infeasible and unfaithful at
// that size -- the paper's internet is hierarchical -- so this profile
// stands up the four design points the way they would actually deploy:
//
//  * topology: pure backbone/regional/campus hierarchy (no campus
//    laterals or bypasses; every campus is a single-homed stub), with
//    the transit core held near 1e2 ADs at every size;
//  * DV family (ECMA, IDRP): only a stratified sample of `beacon` stub
//    ADs originates reachability, so RIBs are O(beacons) while every AD
//    still participates in transit and the protocols' dynamics are
//    exercised network-wide;
//  * LS family (LS-HbH, ORWG): hierarchical mode -- transit-only
//    flooding with stubs listed as attachments, databases O(transit).
//
// Used by bench_scale (the BENCH_scale.json baseline) and the scale soak
// test; kept in core/ so both argue about the same deployment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "policy/database.hpp"
#include "proto/common/damping.hpp"
#include "proto/ecma/partial_order.hpp"
#include "sim/network.hpp"
#include "sim/shard.hpp"
#include "topology/generator.hpp"
#include "topology/graph.hpp"

namespace idr {

struct ScaleProfile {
  Topology topo;
  PolicySet policies;      // open transit at every transit AD
  OrderResult order;       // ECMA's partial order (structural only)
  std::vector<AdId> beacons;   // originating DV destinations (stubs)
  std::vector<AdId> transits;  // every transit-capable AD
  std::vector<char> is_beacon;  // indexed by AdId
};

// Hierarchy shape for `target_ads` total ADs with the transit core capped
// near the paper's 1e2 (exact counts are deterministic in target_ads).
[[nodiscard]] GeneratorParams scale_params(std::uint32_t target_ads);

// Deterministic profile: topology from (params, seed), open-transit
// policies, partial order, and `beacon_count` stratified stub beacons.
[[nodiscard]] ScaleProfile make_scale_profile(std::uint32_t target_ads,
                                              std::uint64_t seed,
                                              std::uint32_t beacon_count = 64);

// Node factory for one design point over the profile (profile must
// outlive the factory). DV nodes originate only at beacons; LS nodes run
// hierarchical. `periodic_refresh_ms` as in HarnessConfig (0 disables).
[[nodiscard]] Network::NodeFactory make_scale_factory(
    const std::string& arch, const ScaleProfile& profile,
    double periodic_refresh_ms = 0.0);

// Recovery knobs for the chaos-at-scale runs. Defaults reproduce the
// plain factory exactly, so bench_scale baselines are unaffected.
struct ScaleFactoryOptions {
  double periodic_refresh_ms = 0.0;
  DampingConfig damping;          // DV family (ECMA, IDRP)
  double ls_holddown_ms = 0.0;    // LS family (LS-HbH, ORWG)
  GrConfig gr;                    // graceful restart, all four families
};

[[nodiscard]] Network::NodeFactory make_scale_factory(
    const std::string& arch, const ScaleProfile& profile,
    const ScaleFactoryOptions& options);

// Hierarchy-aware shard plan over the profile's topology: regional
// subtrees stay whole (a region's metros and campuses ride with their
// regional AD), backbone ADs are individually placeable. This is the
// partition bench_scale --threads and the parallel soaks run; pass it to
// Engine::enable_sharding before constructing the Network.
[[nodiscard]] ShardPlan make_scale_shard_plan(const ScaleProfile& profile,
                                              std::uint32_t shards);

}  // namespace idr
