#include "core/design_harness.hpp"

#include <memory>
#include <optional>
#include <queue>
#include <utility>

#include "core/synthesis.hpp"
#include "sim/shard.hpp"
#include "proto/ecma/ecma_node.hpp"
#include "proto/idrp/idrp_node.hpp"
#include "proto/lshh/lshh_node.hpp"
#include "proto/orwg/orwg_node.hpp"
#include "util/check.hpp"

namespace idr {
namespace {

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) noexcept {
  h ^= v;
  return h * 0x100000001b3ULL;
}

// Hop-by-hop probe walk shared by the FIB-driven design points. `next_fn`
// asks the node currently holding the packet for its successor; a crashed
// node on the way (or no forwarding choice) is a black hole, a revisited
// AD is a loop. A transit AD that is quarantined or actively dropping
// traffic toward dst (Byzantine black hole / hijack) swallows the packet:
// the walk records the control plane's choice, the drop is the data
// plane's fate.
template <typename NextFn>
Probe walk_probe(const Network& net, const Topology& topo, AdId src,
                 AdId dst, NextFn&& next_fn) {
  Probe probe;
  probe.path.push_back(src);
  std::vector<bool> seen(topo.ad_count(), false);
  seen[src.v] = true;
  AdId cur = src;
  while (cur != dst) {
    if (cur != src &&
        (net.is_quarantined(cur) || net.drops_traffic(cur, dst))) {
      probe.outcome = ProbeOutcome::kBlackHole;
      return probe;
    }
    const std::optional<AdId> next = next_fn(cur, probe.path);
    if (!next) {
      probe.outcome = ProbeOutcome::kBlackHole;
      return probe;
    }
    if (seen[next->v] || probe.path.size() > topo.ad_count()) {
      probe.outcome = ProbeOutcome::kLooped;
      return probe;
    }
    seen[next->v] = true;
    probe.path.push_back(*next);
    cur = *next;
  }
  probe.outcome = ProbeOutcome::kDelivered;
  return probe;
}

// A node the ground-truth oracles must route around. Two notions:
//
//   * quarantine_only = false (the invariant monitor's view): also skip
//     ADs actively swallowing traffic toward this destination -- no
//     protocol can be blamed for failing to route through a Byzantine
//     black hole it has no way to detect;
//   * quarantine_only = true (the auditor's view): skip only quarantined
//     ADs. Blast radius must count pairs an active dropper breaks, so
//     "honest reachability" pretends the misbehaving AD would have
//     forwarded -- until containment administratively removes it.
//
// Misbehaving-but-forwarding ADs (leak, tamper) are never excluded:
// ground truth holds them to their registered policy, which is exactly
// what the defended protocols converge to.
bool unusable_for(const Network& net, AdId ad, AdId dst,
                  bool quarantine_only) {
  if (net.is_quarantined(ad)) return true;
  return !quarantine_only && net.drops_traffic(ad, dst);
}

}  // namespace

const std::vector<std::string>& design_point_names() {
  static const std::vector<std::string> kPoints = {"ecma", "idrp", "ls-hbh",
                                                   "orwg"};
  return kPoints;
}

bool is_design_point(const std::string& arch) {
  for (const std::string& name : design_point_names()) {
    if (name == arch) return true;
  }
  return false;
}

void apply_engine_backend(Engine& engine, const Topology& topo,
                          const EngineBackend& backend) {
  if (backend.shards <= 1) return;
  ShardPlanOptions opts;
  opts.lookahead_override_ms = backend.lookahead_ms;
  engine.enable_sharding(make_shard_plan(topo, backend.shards, opts),
                         backend.threads);
}

bool is_stub_role(const Topology& topo, AdId ad) {
  const AdRole role = topo.ad(ad).role;
  return role == AdRole::kStub || role == AdRole::kMultiHomed;
}

Network::NodeFactory make_design_factory(const std::string& arch,
                                         const Topology& topo,
                                         const PolicySet& policies,
                                         const OrderResult* order,
                                         const HarnessConfig& config) {
  const bool defended = config.defended;
  const double refresh = config.periodic_refresh_ms;
  const std::vector<std::uint64_t>* lsa_keys =
      defended ? config.lsa_keys : nullptr;
  if (arch == "ecma") {
    IDR_CHECK_MSG(order != nullptr, "ecma factory needs the partial order");
    return [&topo, order, refresh, defended](AdId ad) -> std::unique_ptr<Node> {
      EcmaConfig ecma_config;
      ecma_config.stub = is_stub_role(topo, ad);
      ecma_config.receiver_order_check = defended;
      if (topo.ad(ad).role == AdRole::kHybrid) {
        for (const Adjacency& adj : topo.neighbors(ad)) {
          ecma_config.export_dsts.insert(adj.neighbor.v);
        }
      }
      auto node =
          std::make_unique<EcmaNode>(&order->order, std::move(ecma_config));
      node->set_periodic_refresh(refresh);
      return node;
    };
  }
  if (arch == "idrp") {
    return [&policies, refresh, defended](AdId) -> std::unique_ptr<Node> {
      IdrpConfig idrp_config;
      idrp_config.defend = defended;
      auto node = std::make_unique<IdrpNode>(&policies, idrp_config);
      node->set_periodic_refresh(refresh);
      return node;
    };
  }
  if (arch == "ls-hbh") {
    return [&policies, lsa_keys, refresh,
            defended](AdId) -> std::unique_ptr<Node> {
      LshhConfig lshh_config;
      lshh_config.lsa_keys = lsa_keys;
      lshh_config.registry = defended ? &policies : nullptr;
      auto node = std::make_unique<LshhNode>(&policies, lshh_config);
      node->set_periodic_refresh(refresh);
      return node;
    };
  }
  if (arch == "orwg") {
    return [&policies, lsa_keys, refresh,
            defended](AdId) -> std::unique_ptr<Node> {
      OrwgConfig orwg_config;
      orwg_config.periodic_refresh_ms = refresh;
      orwg_config.lsa_keys = lsa_keys;
      orwg_config.route_server.registry = defended ? &policies : nullptr;
      return std::make_unique<OrwgNode>(&policies, orwg_config);
    };
  }
  IDR_CHECK_MSG(false, "unknown design point");
  return {};
}

FlowProbeFn make_design_probe(const std::string& arch, Network& net,
                              const Topology& topo) {
  if (arch == "ecma") {
    return [&net, &topo](const FlowSpec& flow) {
      bool gone_down = false;
      return walk_probe(
          net, topo, flow.src, flow.dst,
          [&](AdId cur, const std::vector<AdId>&) -> std::optional<AdId> {
            // forwarding_node: an in-grace AD answers from its frozen
            // pre-crash FIB (graceful restart); a hard-down AD is null.
            auto* node = static_cast<EcmaNode*>(net.forwarding_node(cur));
            if (!node) return std::nullopt;  // walked into a crashed AD
            const auto fwd = node->forward(flow.dst, flow.qos, gone_down);
            if (!fwd) return std::nullopt;
            gone_down = gone_down || fwd->sets_gone_down;
            return fwd->via;
          });
    };
  }
  if (arch == "idrp") {
    return [&net, &topo](const FlowSpec& flow) {
      return walk_probe(
          net, topo, flow.src, flow.dst,
          [&](AdId cur,
              const std::vector<AdId>& path) -> std::optional<AdId> {
            auto* node = static_cast<IdrpNode*>(net.forwarding_node(cur));
            if (!node) return std::nullopt;
            const AdId prev = path.size() >= 2 ? path[path.size() - 2] : kNoAd;
            return node->forward(flow, prev);
          });
    };
  }
  if (arch == "ls-hbh") {
    return [&net, &topo](const FlowSpec& flow) {
      return walk_probe(
          net, topo, flow.src, flow.dst,
          [&](AdId cur, const std::vector<AdId>&) -> std::optional<AdId> {
            auto* node = static_cast<LshhNode*>(net.forwarding_node(cur));
            if (!node) return std::nullopt;
            return node->forward(flow);
          });
    };
  }
  if (arch == "orwg") {
    // Source-routed: the route server answers at the source.
    return [&net](const FlowSpec& flow) {
      Probe p;
      auto* node = static_cast<OrwgNode*>(net.forwarding_node(flow.src));
      if (!node) return p;  // callers skip dead endpoints anyway
      auto path = node->policy_route(flow);
      if (!path) {
        p.path.push_back(flow.src);
        return p;  // kBlackHole
      }
      p.path = std::move(*path);
      // The setup would succeed, but a quarantined or traffic-dropping
      // AD on the source route swallows the data packets.
      for (std::size_t i = 1; i + 1 < p.path.size(); ++i) {
        if (net.is_quarantined(p.path[i]) ||
            net.drops_traffic(p.path[i], flow.dst)) {
          return p;  // kBlackHole
        }
      }
      p.outcome = ProbeOutcome::kDelivered;
      return p;
    };
  }
  IDR_CHECK_MSG(false, "unknown design point");
  return {};
}

InvariantMonitor::ProbeFn make_pair_probe(FlowProbeFn probe) {
  return [probe = std::move(probe)](AdId src, AdId dst) {
    FlowSpec flow;
    flow.src = src;
    flow.dst = dst;
    return probe(flow);
  };
}

bool ecma_reachable(const Network& net, const Topology& topo,
                    const PartialOrder& order, AdId src, AdId dst,
                    bool quarantine_only) {
  const std::size_t n = topo.ad_count();
  std::vector<bool> seen(n * 2, false);
  std::queue<std::pair<AdId, bool>> queue;
  queue.emplace(src, false);
  seen[src.v * 2] = true;
  while (!queue.empty()) {
    const auto [cur, gone_down] = queue.front();
    queue.pop();
    if (cur == dst) return true;
    if (cur != src) {
      // Transit shaping mirrors the ECMA adapter: stub/multi-homed ADs
      // never transit; hybrids transit only toward their own neighbors.
      if (is_stub_role(topo, cur)) continue;
      if (topo.ad(cur).role == AdRole::kHybrid &&
          !topo.find_link(cur, dst)) {
        continue;
      }
    }
    for (const Adjacency& adj : topo.live_neighbors(cur)) {
      if (!net.usable(adj.neighbor)) continue;
      if (unusable_for(net, adj.neighbor, dst, quarantine_only)) continue;
      const bool hop_is_up = order.is_up(cur, adj.neighbor);
      if (gone_down && hop_is_up) continue;  // up after down: illegal shape
      const bool next_gone_down = gone_down || !hop_is_up;
      const std::size_t state = adj.neighbor.v * 2 + (next_gone_down ? 1 : 0);
      if (!seen[state]) {
        seen[state] = true;
        queue.emplace(adj.neighbor, next_gone_down);
      }
    }
  }
  return false;
}

bool policy_reachable(const Network& net, const Topology& topo,
                      const PolicySet& policies, AdId src, AdId dst,
                      bool quarantine_only) {
  FlowSpec flow;
  flow.src = src;
  flow.dst = dst;
  SynthesisOptions options;
  options.first_found = true;
  options.expansion_budget = 200'000;
  for (const Ad& ad : topo.ads()) {
    if (!net.usable(ad.id) || unusable_for(net, ad.id, dst, quarantine_only)) {
      options.avoid.push_back(ad.id);
    }
  }
  const GroundTruthView view(topo, policies);
  return synthesize_route(view, flow, options).found();
}

InvariantMonitor::ReachableFn make_design_reachable(
    const std::string& arch, const Network& net, const Topology& topo,
    const PolicySet& policies, const OrderResult* order,
    bool quarantine_only) {
  if (arch == "ecma") {
    IDR_CHECK_MSG(order != nullptr, "ecma reachability needs the order");
    return [&net, &topo, order, quarantine_only](AdId src, AdId dst) {
      return ecma_reachable(net, topo, order->order, src, dst,
                            quarantine_only);
    };
  }
  return [&net, &topo, &policies, quarantine_only](AdId src, AdId dst) {
    return policy_reachable(net, topo, policies, src, dst, quarantine_only);
  };
}

PathComplianceFn make_design_compliance(const std::string& arch,
                                        const Topology& topo,
                                        const PolicySet& policies,
                                        const OrderResult* order) {
  if (arch == "ecma") {
    // ECMA's policy is structural: the delivered walk must be up*down*
    // shaped and every intermediate must be transit-willing (mirrors
    // ecma_reachable's shaping).
    IDR_CHECK_MSG(order != nullptr, "ecma compliance needs the order");
    return [&topo, order](AdId, AdId dst, const std::vector<AdId>& path) {
      bool gone_down = false;
      for (std::size_t i = 0; i + 1 < path.size(); ++i) {
        const AdId cur = path[i];
        if (i > 0) {
          if (is_stub_role(topo, cur)) return false;
          if (topo.ad(cur).role == AdRole::kHybrid &&
              !topo.find_link(cur, dst)) {
            return false;
          }
        }
        const bool up = order->order.is_up(cur, path[i + 1]);
        if (gone_down && up) return false;
        if (!up) gone_down = true;
      }
      return true;
    };
  }
  return [&topo, &policies](AdId src, AdId dst,
                            const std::vector<AdId>& path) {
    FlowSpec flow;
    flow.src = src;
    flow.dst = dst;
    return policies.path_is_legal(topo, flow, path);
  };
}

std::uint64_t counter_fingerprint(const Network& net, const Topology& topo) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (const Ad& ad : topo.ads()) {
    const Counters& c = net.counters(ad.id);
    h = fnv_mix(h, c.msgs_sent);
    h = fnv_mix(h, c.bytes_sent);
    h = fnv_mix(h, c.msgs_delivered);
    h = fnv_mix(h, c.msgs_dropped);
    h = fnv_mix(h, c.msgs_corrupted);
    h = fnv_mix(h, c.msgs_duplicated);
    h = fnv_mix(h, c.msgs_reordered);
    h = fnv_mix(h, c.malformed_dropped);
    h = fnv_mix(h, c.defense_rejections);
  }
  return h;
}

}  // namespace idr
