// Policy impact analysis -- the network management tool the paper's
// conclusion demands (§6): "it will be imperative for these
// administrators to have available network management tools to assist
// them in predicting the impact of their policies on the service
// received from the routing architecture."
//
// Given the current internet (topology + policies) and a *proposed*
// replacement of one AD's policy terms, the analyzer evaluates a flow
// sample against the ground-truth oracle before and after and reports:
// which flows lose their only legal route, which gain one, how best-route
// costs shift, how much transit revenue-carrying traffic the AD itself
// would attract or shed, and how route-synthesis effort changes.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/oracle.hpp"
#include "policy/database.hpp"
#include "topology/graph.hpp"

namespace idr {

struct FlowImpact {
  FlowSpec flow;
  bool routable_before = false;
  bool routable_after = false;
  std::uint64_t cost_before = 0;  // valid when routable_before
  std::uint64_t cost_after = 0;   // valid when routable_after
  bool crossed_ad_before = false;  // best route crossed the changed AD
  bool crossed_ad_after = false;
};

struct ImpactReport {
  AdId changed_ad;
  std::size_t flows = 0;
  std::size_t lost_route = 0;    // routable before, not after
  std::size_t gained_route = 0;  // not routable before, routable after
  std::size_t cost_increased = 0;
  std::size_t cost_decreased = 0;
  // Transit load on the changed AD (flows whose best route crosses it).
  std::size_t transit_before = 0;
  std::size_t transit_after = 0;
  // Route-synthesis effort (oracle search expansions, a proxy for the
  // route-computation overhead the paper warns administrators about).
  std::uint64_t expansions_before = 0;
  std::uint64_t expansions_after = 0;
  std::vector<FlowImpact> details;

  [[nodiscard]] std::string summary(const Topology& topo) const;
};

// Evaluates the impact of replacing `ad`'s policy terms with
// `proposed_terms` over the given flow sample. Neither input PolicySet is
// modified; the proposal is applied to a copy.
ImpactReport analyze_policy_change(const Topology& topo,
                                   const PolicySet& current, AdId ad,
                                   std::span<const PolicyTerm> proposed_terms,
                                   std::span<const FlowSpec> flows);

}  // namespace idr
