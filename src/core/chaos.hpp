// Chaos harness: runs one of the paper's four design points over the
// Figure 1 internetwork while links flap, nodes crash and restart cold,
// and every frame is subject to adversarial delivery faults (loss,
// corruption, duplication, reordering) -- with the instantaneous
// link-state oracle switched OFF, so protocols must detect failures from
// their own keepalive hold timers. An InvariantMonitor sweeps forwarding
// state throughout and classifies loops / black holes / stale routes as
// transient (within the reconvergence window of a fault) or persistent
// (a real correctness failure).
//
// The whole run is a pure function of ChaosParams::seed: same seed, same
// fault schedule, same message trace, byte-identical counters. The soak
// tool runs every design point twice per seed and fails loudly if the
// counter fingerprints differ.
//
// Orthogonal to the delivery faults, a Byzantine schedule can mark whole
// ADs as misbehaving (false-origin hijack, route leak, path-attribute
// tampering, forwarding black hole). With defenses off the run measures
// blast radius; with defenses on every design point's receiver-side
// defense is armed, detected traffic-droppers are quarantined after a
// detection delay, and a PolicyComplianceAuditor checks that no honest
// (src, dst) pair is left persistently polluted.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "proto/common/counters.hpp"
#include "sim/invariants.hpp"
#include "sim/network.hpp"

namespace idr {

// Transit-policy shape for the run. Byzantine route-leak experiments need
// kProviderCustomer: with fully open policies there is no transit promise
// a leaker could break.
enum class PolicyMode : std::uint8_t {
  kOpen = 0,
  kProviderCustomer = 1,
};

struct ByzantineParams {
  // How many ADs misbehave (drawn from the transit-capable ADs on an
  // independent seeded stream; 0 disables the Byzantine layer).
  std::size_t count = 0;
  // Arm the per-design-point defenses (ECMA receiver-side partial-order
  // enforcement, IDRP neighbor-consistency clamping, LS/LSHH origin
  // authentication, ORWG registry-validated synthesis) and quarantine
  // misbehaving ADs detection_delay_ms after onset.
  bool defended = false;
  SimTime onset_ms = 1'000.0;
  SimTime detection_delay_ms = 400.0;
  // Misbehavior kinds assigned round-robin to the chosen ADs; empty =
  // the full taxonomy {leak, false-origin, black hole, tamper}.
  std::vector<Misbehavior> kinds;
};

struct ChaosParams {
  std::uint64_t seed = 1;
  SimTime horizon_ms = 10'000.0;

  PolicyMode policy_mode = PolicyMode::kOpen;
  ByzantineParams byzantine;
  // Auditor knobs (onset_ms is overridden with byzantine.onset_ms).
  AuditConfig audit;

  // Churn is injected in [0, horizon * churn_fraction]; the rest of the
  // run is a quiet tail in which every violation counts as persistent
  // once the reconvergence window has elapsed.
  double churn_fraction = 0.4;
  SimTime link_mean_uptime_ms = 1'500.0;
  SimTime link_mean_downtime_ms = 250.0;
  SimTime node_mean_uptime_ms = 4'000.0;
  SimTime node_mean_downtime_ms = 300.0;

  FaultConfig faults{
      .loss_rate = 0.0,  // corruption + checksum already behaves as loss
      .corrupt_rate = 0.02,
      .duplicate_rate = 0.02,
      .reorder_rate = 0.05,
      .reorder_extra_ms = 5.0,
      // The modeled datagram checksum catches every flip; mangled frames
      // are counted and dropped at the interface. Decoder robustness
      // against frames that evade the checksum is covered separately by
      // the wire fuzz tests.
      .corrupt_deliver_fraction = 0.0,
  };

  KeepaliveConfig keepalive{
      .interval_ms = 30.0,
      // 4 misses: with ~2% frame corruption a 3-miss hold timer false-
      // positives a healthy neighbor once in a few hundred seconds.
      .miss_threshold = 4,
      .backoff_factor = 2.0,
      .max_probe_interval_ms = 0.0,  // 8 * interval
  };

  // Periodic full-state refresh per node; bounds the staleness left by a
  // lost/corrupted triggered update (see set_periodic_refresh).
  double periodic_refresh_ms = 300.0;

  // Instantaneous link-state oracle. Off by default: failure detection is
  // the keepalive machinery's job.
  bool link_notifications = false;

  InvariantConfig invariants{
      .cadence_ms = 100.0,
      .reconverge_window_ms = 1'500.0,
      .sample_pairs = 48,
      .sample_seed = 0x5eedf00dULL,
  };
};

struct ChaosResult {
  std::string arch;
  InvariantStats invariants;
  Counters totals;
  std::uint64_t losses = 0;          // in-flight drops (loss + checksum)
  std::size_t link_failures = 0;     // link-down events injected
  std::size_t node_crashes = 0;      // crash events injected
  std::uint64_t counter_fingerprint = 0;  // FNV-1a over per-AD counters

  // Byzantine layer (empty / zero when byzantine.count == 0).
  std::vector<ByzantineSpec> byzantine;
  bool defended = false;
  AuditStats audit;
  std::uint64_t defense_rejections = 0;
};

// The four design points the chaos soak exercises.
const std::vector<std::string>& chaos_design_points();

// Run `arch` ("ecma" | "idrp" | "ls-hbh" | "orwg") through the seeded
// churn schedule over the Figure 1 topology with open policies.
ChaosResult run_chaos(const std::string& arch, const ChaosParams& params);

}  // namespace idr
