// Chaos harness: runs one of the paper's four design points over the
// Figure 1 internetwork while links flap, nodes crash and restart cold,
// and every frame is subject to adversarial delivery faults (loss,
// corruption, duplication, reordering) -- with the instantaneous
// link-state oracle switched OFF, so protocols must detect failures from
// their own keepalive hold timers. An InvariantMonitor sweeps forwarding
// state throughout and classifies loops / black holes / stale routes as
// transient (within the reconvergence window of a fault) or persistent
// (a real correctness failure).
//
// The whole run is a pure function of ChaosParams::seed: same seed, same
// fault schedule, same message trace, byte-identical counters. The soak
// tool runs every design point twice per seed and fails loudly if the
// counter fingerprints differ.
//
// Orthogonal to the delivery faults, a Byzantine schedule can mark whole
// ADs as misbehaving (false-origin hijack, route leak, path-attribute
// tampering, forwarding black hole). With defenses off the run measures
// blast radius; with defenses on every design point's receiver-side
// defense is armed, detected traffic-droppers are quarantined after a
// detection delay, and a PolicyComplianceAuditor checks that no honest
// (src, dst) pair is left persistently polluted.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "proto/common/counters.hpp"
#include "proto/common/damping.hpp"
#include "sim/invariants.hpp"
#include "sim/network.hpp"

namespace idr {

// Transit-policy shape for the run. Byzantine route-leak experiments need
// kProviderCustomer: with fully open policies there is no transit promise
// a leaker could break.
enum class PolicyMode : std::uint8_t {
  kOpen = 0,
  kProviderCustomer = 1,
};

struct ByzantineParams {
  // How many ADs misbehave (drawn from the transit-capable ADs on an
  // independent seeded stream; 0 disables the Byzantine layer).
  std::size_t count = 0;
  // Arm the per-design-point defenses (ECMA receiver-side partial-order
  // enforcement, IDRP neighbor-consistency clamping, LS/LSHH origin
  // authentication, ORWG registry-validated synthesis) and quarantine
  // misbehaving ADs detection_delay_ms after onset.
  bool defended = false;
  SimTime onset_ms = 1'000.0;
  SimTime detection_delay_ms = 400.0;
  // Misbehavior kinds assigned round-robin to the chosen ADs; empty =
  // the full taxonomy {leak, false-origin, black hole, tamper}.
  std::vector<Misbehavior> kinds;
};

struct ChaosParams {
  std::uint64_t seed = 1;
  SimTime horizon_ms = 10'000.0;

  PolicyMode policy_mode = PolicyMode::kOpen;
  ByzantineParams byzantine;
  // Auditor knobs (onset_ms is overridden with byzantine.onset_ms).
  AuditConfig audit;

  // Churn is injected in [0, horizon * churn_fraction]; the rest of the
  // run is a quiet tail in which every violation counts as persistent
  // once the reconvergence window has elapsed.
  double churn_fraction = 0.4;
  SimTime link_mean_uptime_ms = 1'500.0;
  SimTime link_mean_downtime_ms = 250.0;
  SimTime node_mean_uptime_ms = 4'000.0;
  SimTime node_mean_downtime_ms = 300.0;

  FaultConfig faults{
      .loss_rate = 0.0,  // corruption + checksum already behaves as loss
      .corrupt_rate = 0.02,
      .duplicate_rate = 0.02,
      .reorder_rate = 0.05,
      .reorder_extra_ms = 5.0,
      // The modeled datagram checksum catches every flip; mangled frames
      // are counted and dropped at the interface. Decoder robustness
      // against frames that evade the checksum is covered separately by
      // the wire fuzz tests.
      .corrupt_deliver_fraction = 0.0,
  };

  KeepaliveConfig keepalive{
      .interval_ms = 30.0,
      // 4 misses: with ~2% frame corruption a 3-miss hold timer false-
      // positives a healthy neighbor once in a few hundred seconds.
      .miss_threshold = 4,
      .backoff_factor = 2.0,
      .max_probe_interval_ms = 0.0,  // 8 * interval
  };

  // Periodic full-state refresh per node; bounds the staleness left by a
  // lost/corrupted triggered update (see set_periodic_refresh).
  double periodic_refresh_ms = 300.0;

  // Instantaneous link-state oracle. Off by default: failure detection is
  // the keepalive machinery's job.
  bool link_notifications = false;

  InvariantConfig invariants{
      .cadence_ms = 100.0,
      .reconverge_window_ms = 1'500.0,
      .sample_pairs = 48,
      .sample_seed = 0x5eedf00dULL,
  };

  // Per-failure-class reconvergence grace windows. A node cold-restart
  // legitimately needs more slack than a single link transition; a
  // negative value falls back to invariants.reconverge_window_ms, so the
  // defaults leave every existing run byte-identical.
  struct ReconvergeWindows {
    SimTime link_ms = -1.0;
    SimTime node_ms = -1.0;
  };
  ReconvergeWindows reconverge;
};

struct ChaosResult {
  std::string arch;
  InvariantStats invariants;
  Counters totals;
  std::uint64_t losses = 0;          // in-flight drops (loss + checksum)
  std::size_t link_failures = 0;     // link-down events injected
  std::size_t node_crashes = 0;      // crash events injected
  std::uint64_t counter_fingerprint = 0;  // FNV-1a over per-AD counters

  // Byzantine layer (empty / zero when byzantine.count == 0).
  std::vector<ByzantineSpec> byzantine;
  bool defended = false;
  AuditStats audit;
  std::uint64_t defense_rejections = 0;
};

// The four design points the chaos soak exercises.
const std::vector<std::string>& chaos_design_points();

// Run `arch` ("ecma" | "idrp" | "ls-hbh" | "orwg") through the seeded
// churn schedule over the Figure 1 topology with open policies.
ChaosResult run_chaos(const std::string& arch, const ChaosParams& params);

// --- Paper-scale failure & recovery ----------------------------------
//
// Storm scenario families over the core/scale_profile deployment (pure
// hierarchy, ~1e2 transit core, beacon-originated DV destinations).
// Failure detection uses the instantaneous link-state oracle instead of
// keepalives: storms are injected as link transitions (a node outage is
// all of its links going dark), and per-link keepalive probing at 1e4+
// ADs would drown the event queue in liveness traffic that bench_chaos
// already soaks at small scale.

enum class StormFamily : std::uint8_t {
  kFlapStorm = 0,      // seeded per-link flap processes on transit links
  kWithdrawStorm = 1,  // batches of beacon stubs going dark and returning
  kPartition = 2,      // a regional subtree cut off the backbone, healed
  kCoreOutage = 3,     // a transit-core (backbone) node failure + repair
  // Staggered transit-core node crash/restart cycles driven through the
  // crash oracle (Network::set_crash_notifications), with graceful
  // restart and ingress overload protection as A/B knobs. Benched by
  // bench_restart (BENCH_restart.json), not bench_chaos_scale.
  kRestartStorm = 4,
};

[[nodiscard]] const char* to_string(StormFamily family);
// All four families, in enum order (bench/soak iteration order).
[[nodiscard]] const std::vector<StormFamily>& storm_families();

struct ScaleChaosParams {
  std::uint64_t seed = 0x5ca1eULL;  // profile seed (bench_scale's)
  std::uint32_t target_ads = 10'000;
  std::uint32_t beacon_count = 64;

  StormFamily storm = StormFamily::kFlapStorm;
  SimTime onset_delay_ms = 200.0;  // quiet gap between convergence and storm
  SimTime tail_ms = 4'000.0;       // quiet tail after the last transition

  // Flap storm: `flap_links` transit-transit links each run a seeded flap
  // process (random phase) with this period/duty for `flap_cycles`.
  // Suppression needs ~3 transitions per link to engage, so the cycle
  // count sets how much of the storm the damped tail amortizes.
  std::size_t flap_links = 8;
  SimTime flap_period_ms = 200.0;
  double flap_duty = 0.5;
  std::uint32_t flap_cycles = 10;

  // Withdrawal storm: `withdraw_beacons` beacon access links drop for
  // `withdraw_down_ms`, in `withdraw_waves` waves `withdraw_gap_ms` apart.
  std::size_t withdraw_beacons = 8;
  SimTime withdraw_down_ms = 400.0;
  std::uint32_t withdraw_waves = 2;
  SimTime withdraw_gap_ms = 400.0;

  // Partition / core outage: time the uplink(s) stay down before healing.
  SimTime outage_ms = 600.0;

  // Restart storm: `restart_nodes` seeded-shuffled transit ADs crash
  // (soft state lost) and restart cold `restart_down_ms` later, staggered
  // `restart_stagger_ms` apart, in `restart_waves` waves separated by
  // `restart_gap_ms`. Failure detection uses the crash oracle.
  std::size_t restart_nodes = 8;
  std::uint32_t restart_waves = 2;
  SimTime restart_down_ms = 300.0;
  SimTime restart_gap_ms = 500.0;
  SimTime restart_stagger_ms = 40.0;

  // Recovery knobs, all off by default (existing behavior unchanged).
  DampingConfig damping;        // DV family (ECMA, IDRP)
  SimTime ls_holddown_ms = 0.0; // LS family (LS-HbH, ORWG)
  GrConfig gr;                  // graceful restart (restart storm)
  OverloadConfig overload;      // bounded class-prioritized ingress queues

  // Per-storm-class reconvergence grace windows (measured from the LAST
  // transition of the storm; every transition extends the deadline).
  struct StormWindows {
    SimTime flap_ms = 2'000.0;
    SimTime withdraw_ms = 2'000.0;
    SimTime partition_ms = 3'000.0;
    SimTime core_outage_ms = 3'000.0;
    // Restart storm; when GR is on, the grace window is added on top
    // (a flush at grace expiry legitimately re-opens convergence).
    SimTime restart_ms = 3'000.0;
  };
  StormWindows windows;

  InvariantConfig invariants{
      .cadence_ms = 250.0,
      .reconverge_window_ms = 1'500.0,
      .sample_pairs = 64,
      .sample_seed = 0x5eedf00dULL,
      // dst_pool / src_pool are filled by the driver from the profile.
  };
};

struct ScaleChaosResult {
  std::string arch;
  StormFamily storm = StormFamily::kFlapStorm;
  std::uint32_t ads = 0;
  std::uint32_t transit_ads = 0;

  InvariantStats invariants;
  // Deduplicated persistent violations with their probe walks -- what a
  // failing gate prints for diagnosis.
  std::vector<InvariantFinding> persistent_findings;
  Counters totals;
  std::uint64_t counter_fingerprint = 0;

  SimTime converge_ms = 0.0;     // cold start -> drained queue
  SimTime storm_begin_ms = 0.0;  // first scheduled transition
  SimTime storm_end_ms = 0.0;    // last scheduled transition
  SimTime horizon_ms = 0.0;
  std::size_t storm_transitions = 0;  // link down events injected

  // Control-plane churn: messages sent inside / after the storm window,
  // and the normalized updates/sec over the storm (sim time).
  std::uint64_t updates_during_storm = 0;
  std::uint64_t updates_after_storm = 0;
  double updates_per_sec_storm = 0.0;

  // Storm-class reconvergence (from the last transition to the first
  // all-clean sweep); < 0 = never reconverged (a gate failure).
  SimTime reconverge_ms = -1.0;

  // Recovery-mechanism accounting, aggregated over all nodes.
  std::uint64_t flaps_recorded = 0;       // DV damper state changes
  std::uint64_t routes_suppressed = 0;    // suppress-threshold crossings
  std::uint64_t routes_reused = 0;        // reuse-threshold releases
  SimTime suppressed_ms_total = 0.0;      // damped-route unreachability
  std::size_t suppressed_at_end = 0;      // still damped at the horizon
  std::uint64_t ls_originations_suppressed = 0;  // hold-down no-op windows

  // Restart-storm accounting (all zero for the link-event families).
  std::size_t node_crashes = 0;       // crash events injected
  OverloadStats overload;             // ingress queueing, drops by class
  std::uint64_t gr_recoveries = 0;    // grace windows ended by a restart
  std::uint64_t gr_flushes = 0;       // grace windows that expired
  std::uint64_t gr_stale_flushed = 0; // DV stale entries/RIBs poisoned
  std::uint64_t gr_resyncs = 0;       // resyncs toward recovered nodes
  std::uint64_t gr_retained = 0;      // LS adjacency retentions entered
  std::uint64_t gr_memoized = 0;      // ORWG cache answers inside grace
};

// Run one storm family over the scale profile for `arch`. Deterministic
// in (arch, params): same seed, same storm schedule, same fingerprint.
ScaleChaosResult run_scale_chaos(const std::string& arch,
                                 const ScaleChaosParams& params);

}  // namespace idr
