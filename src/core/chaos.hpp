// Chaos harness: runs one of the paper's four design points over the
// Figure 1 internetwork while links flap, nodes crash and restart cold,
// and every frame is subject to adversarial delivery faults (loss,
// corruption, duplication, reordering) -- with the instantaneous
// link-state oracle switched OFF, so protocols must detect failures from
// their own keepalive hold timers. An InvariantMonitor sweeps forwarding
// state throughout and classifies loops / black holes / stale routes as
// transient (within the reconvergence window of a fault) or persistent
// (a real correctness failure).
//
// The whole run is a pure function of ChaosParams::seed: same seed, same
// fault schedule, same message trace, byte-identical counters. The soak
// tool runs every design point twice per seed and fails loudly if the
// counter fingerprints differ.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "proto/common/counters.hpp"
#include "sim/invariants.hpp"
#include "sim/network.hpp"

namespace idr {

struct ChaosParams {
  std::uint64_t seed = 1;
  SimTime horizon_ms = 10'000.0;

  // Churn is injected in [0, horizon * churn_fraction]; the rest of the
  // run is a quiet tail in which every violation counts as persistent
  // once the reconvergence window has elapsed.
  double churn_fraction = 0.4;
  SimTime link_mean_uptime_ms = 1'500.0;
  SimTime link_mean_downtime_ms = 250.0;
  SimTime node_mean_uptime_ms = 4'000.0;
  SimTime node_mean_downtime_ms = 300.0;

  FaultConfig faults{
      .loss_rate = 0.0,  // corruption + checksum already behaves as loss
      .corrupt_rate = 0.02,
      .duplicate_rate = 0.02,
      .reorder_rate = 0.05,
      .reorder_extra_ms = 5.0,
      // The modeled datagram checksum catches every flip; mangled frames
      // are counted and dropped at the interface. Decoder robustness
      // against frames that evade the checksum is covered separately by
      // the wire fuzz tests.
      .corrupt_deliver_fraction = 0.0,
  };

  KeepaliveConfig keepalive{
      .interval_ms = 30.0,
      // 4 misses: with ~2% frame corruption a 3-miss hold timer false-
      // positives a healthy neighbor once in a few hundred seconds.
      .miss_threshold = 4,
      .backoff_factor = 2.0,
      .max_probe_interval_ms = 0.0,  // 8 * interval
  };

  // Periodic full-state refresh per node; bounds the staleness left by a
  // lost/corrupted triggered update (see set_periodic_refresh).
  double periodic_refresh_ms = 300.0;

  // Instantaneous link-state oracle. Off by default: failure detection is
  // the keepalive machinery's job.
  bool link_notifications = false;

  InvariantConfig invariants{
      .cadence_ms = 100.0,
      .reconverge_window_ms = 1'500.0,
      .sample_pairs = 48,
      .sample_seed = 0x5eedf00dULL,
  };
};

struct ChaosResult {
  std::string arch;
  InvariantStats invariants;
  Counters totals;
  std::uint64_t losses = 0;          // in-flight drops (loss + checksum)
  std::size_t link_failures = 0;     // link-down events injected
  std::size_t node_crashes = 0;      // crash events injected
  std::uint64_t counter_fingerprint = 0;  // FNV-1a over per-AD counters
};

// The four design points the chaos soak exercises.
const std::vector<std::string>& chaos_design_points();

// Run `arch` ("ecma" | "idrp" | "ls-hbh" | "orwg") through the seeded
// churn schedule over the Figure 1 topology with open policies.
ChaosResult run_chaos(const std::string& arch, const ChaosParams& params);

}  // namespace idr
