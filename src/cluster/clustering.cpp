#include "cluster/clustering.hpp"

#include <deque>

#include "util/check.hpp"

namespace idr {

ClusterId Clustering::add_cluster() {
  members_.emplace_back();
  return ClusterId{static_cast<std::uint32_t>(members_.size() - 1)};
}

void Clustering::assign(AdId ad, ClusterId cluster) {
  IDR_CHECK(ad.v < cluster_of_.size());
  IDR_CHECK(cluster.v < members_.size());
  IDR_CHECK_MSG(cluster_of_[ad.v] == ClusterId{},
                "AD already assigned to a cluster");
  cluster_of_[ad.v] = cluster;
  members_[cluster.v].push_back(ad);
}

ClusterId Clustering::cluster_of(AdId ad) const {
  IDR_CHECK(ad.v < cluster_of_.size());
  return cluster_of_[ad.v];
}

const std::vector<AdId>& Clustering::members(ClusterId cluster) const {
  IDR_CHECK(cluster.v < members_.size());
  return members_[cluster.v];
}

bool Clustering::complete() const noexcept {
  for (const ClusterId& c : cluster_of_) {
    if (c == ClusterId{}) return false;
  }
  return true;
}

Clustering cluster_by_hierarchy(const Topology& topo) {
  Clustering clustering(topo.ad_count());
  // Pass 1: every backbone is its own cluster.
  for (const Ad& ad : topo.ads()) {
    if (ad.cls == AdClass::kBackbone) {
      clustering.assign(ad.id, clustering.add_cluster());
    }
  }
  // Pass 2: each regional anchors a cluster holding its hierarchical
  // subtree. First-parent-wins for multi-homed members.
  for (const Ad& ad : topo.ads()) {
    if (ad.cls != AdClass::kRegional) continue;
    const ClusterId cluster = clustering.add_cluster();
    clustering.assign(ad.id, cluster);
    std::deque<AdId> frontier{ad.id};
    while (!frontier.empty()) {
      const AdId cur = frontier.front();
      frontier.pop_front();
      for (const Adjacency& adj : topo.neighbors(cur)) {
        if (topo.link(adj.link).cls != LinkClass::kHierarchical) continue;
        const Ad& peer = topo.ad(adj.neighbor);
        if (static_cast<std::uint8_t>(peer.cls) <=
            static_cast<std::uint8_t>(topo.ad(cur).cls)) {
          continue;  // not a hierarchical child
        }
        if (clustering.cluster_of(peer.id) != ClusterId{}) continue;
        clustering.assign(peer.id, cluster);
        frontier.push_back(peer.id);
      }
    }
  }
  // Pass 3: strays (e.g. campuses hanging directly off a backbone via a
  // bypass-only attachment) join their first neighbor's cluster, or get
  // a singleton cluster.
  for (const Ad& ad : topo.ads()) {
    if (clustering.cluster_of(ad.id) != ClusterId{}) continue;
    ClusterId home{};
    for (const Adjacency& adj : topo.neighbors(ad.id)) {
      const ClusterId c = clustering.cluster_of(adj.neighbor);
      if (c != ClusterId{}) {
        home = c;
        break;
      }
    }
    if (home == ClusterId{}) home = clustering.add_cluster();
    clustering.assign(ad.id, home);
  }
  IDR_CHECK(clustering.complete());
  return clustering;
}

}  // namespace idr
