// Aggregation of a clustered internet into a cluster-level graph with
// optimistically-aggregated policy: the information a super-domain would
// advertise about itself instead of flooding every member's LSA.
//
// Aggregation is deliberately *optimistic* (union of member capabilities,
// source/destination constraints widened to "any"): a cluster-level
// route is a hypothesis that must be validated by AD-level expansion
// inside the corridor it defines -- exactly how the abstraction loses
// "some optimality" (§4.1) and occasionally a route; the E-abstraction
// bench quantifies both.
#pragma once

#include "cluster/clustering.hpp"
#include "policy/database.hpp"
#include "topology/graph.hpp"

namespace idr {

struct ClusterGraph {
  // One cluster-level "AD" per cluster; AdId value == ClusterId value.
  Topology topo;
  PolicySet policies;

  [[nodiscard]] AdId node_of(ClusterId cluster) const {
    return AdId{cluster.v};
  }
};

ClusterGraph aggregate(const Topology& topo, const PolicySet& policies,
                       const Clustering& clustering);

// Rough byte sizes of the information each level would flood: the
// state-reduction half of the abstraction tradeoff.
struct AbstractionFootprint {
  std::size_t flat_nodes = 0;
  std::size_t flat_links = 0;
  std::size_t flat_terms = 0;
  std::size_t cluster_nodes = 0;
  std::size_t cluster_links = 0;
  std::size_t cluster_terms = 0;
};
AbstractionFootprint footprint(const Topology& topo,
                               const PolicySet& policies,
                               const ClusterGraph& clusters);

}  // namespace idr
