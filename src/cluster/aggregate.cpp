#include "cluster/aggregate.hpp"

#include <algorithm>
#include <map>

#include "util/check.hpp"

namespace idr {

ClusterGraph aggregate(const Topology& topo, const PolicySet& policies,
                       const Clustering& clustering) {
  ClusterGraph graph;

  // Cluster-level nodes: class is the highest (numerically lowest) class
  // among members; role is transit if any member can transit.
  for (std::uint32_t c = 0; c < clustering.count(); ++c) {
    const auto& members = clustering.members(ClusterId{c});
    IDR_CHECK(!members.empty());
    AdClass best_class = AdClass::kCampus;
    bool transit = false;
    for (AdId member : members) {
      const Ad& ad = topo.ad(member);
      if (static_cast<std::uint8_t>(ad.cls) <
          static_cast<std::uint8_t>(best_class)) {
        best_class = ad.cls;
      }
      if (topo.can_transit(member)) transit = true;
    }
    const AdId node = graph.topo.add_ad(
        best_class, transit ? AdRole::kTransit : AdRole::kStub,
        "cluster-" + std::to_string(c));
    IDR_CHECK(node.v == c);
  }

  // Cluster-level links: best (min metric / min delay) live inter-cluster
  // member link per cluster pair.
  struct Best {
    std::uint32_t metric = 0;
    double delay = 0.0;
    LinkClass cls = LinkClass::kHierarchical;
    bool set = false;
  };
  std::map<std::pair<std::uint32_t, std::uint32_t>, Best> best_links;
  for (const Link& l : topo.links()) {
    if (!l.up) continue;
    const ClusterId ca = clustering.cluster_of(l.a);
    const ClusterId cb = clustering.cluster_of(l.b);
    if (ca == cb) continue;
    const auto key = std::minmax(ca.v, cb.v);
    Best& best = best_links[{key.first, key.second}];
    if (!best.set || l.metric < best.metric) {
      best = Best{l.metric, l.delay_ms, l.cls, true};
    }
  }
  for (const auto& [key, best] : best_links) {
    graph.topo.add_link(AdId{key.first}, AdId{key.second}, best.cls,
                        best.delay, best.metric);
  }

  // Aggregated policy: one optimistic term per transit cluster -- union
  // of member QoS/UCI capability, widest hour coverage, cheapest cost.
  graph.policies.resize(graph.topo.ad_count());
  for (std::uint32_t c = 0; c < clustering.count(); ++c) {
    std::uint8_t qos_mask = 0;
    std::uint8_t uci_mask = 0;
    bool full_day = false;
    std::uint8_t begin = 23, end = 0;
    std::uint32_t min_cost = 0;
    bool any = false;
    for (AdId member : clustering.members(ClusterId{c})) {
      if (!topo.can_transit(member)) continue;
      for (const PolicyTerm& t : policies.terms(member)) {
        qos_mask |= t.qos_mask;
        uci_mask |= t.uci_mask;
        if (t.hour_begin == 0 && t.hour_end == 23) full_day = true;
        begin = std::min(begin, t.hour_begin);
        end = std::max(end, t.hour_end);
        min_cost = any ? std::min(min_cost, t.cost) : t.cost;
        any = true;
      }
    }
    if (!any) continue;  // pure-stub cluster: no transit advertised
    PolicyTerm aggregated = open_transit_term(AdId{c}, 0, min_cost);
    aggregated.qos_mask = qos_mask;
    aggregated.uci_mask = uci_mask;
    if (!full_day) {
      aggregated.hour_begin = begin;
      aggregated.hour_end = end;
    }
    graph.policies.add_term(std::move(aggregated));
  }
  return graph;
}

AbstractionFootprint footprint(const Topology& topo,
                               const PolicySet& policies,
                               const ClusterGraph& clusters) {
  AbstractionFootprint result;
  result.flat_nodes = topo.ad_count();
  result.flat_links = topo.link_count();
  result.flat_terms = policies.total_terms();
  result.cluster_nodes = clusters.topo.ad_count();
  result.cluster_links = clusters.topo.link_count();
  result.cluster_terms = clusters.policies.total_terms();
  return result;
}

}  // namespace idr
