#include "cluster/hierarchical.hpp"

namespace idr {

void CorridorView::for_each_neighbor(
    AdId ad, const std::function<void(AdId, std::uint32_t)>& fn) const {
  if (!allowed_[clustering_.cluster_of(ad).v]) return;
  base_.for_each_neighbor(ad, [&](AdId neighbor, std::uint32_t metric) {
    if (allowed_[clustering_.cluster_of(neighbor).v]) fn(neighbor, metric);
  });
}

std::optional<std::uint32_t> CorridorView::transit_cost(AdId ad,
                                                        const FlowSpec& flow,
                                                        AdId prev,
                                                        AdId next) const {
  if (!allowed_[clustering_.cluster_of(ad).v]) return std::nullopt;
  return base_.transit_cost(ad, flow, prev, next);
}

HierarchicalResult synthesize_hierarchical(const Topology& topo,
                                           const PolicySet& policies,
                                           const Clustering& clustering,
                                           const ClusterGraph& clusters,
                                           const FlowSpec& flow,
                                           const SynthesisOptions& options) {
  HierarchicalResult out;

  // Level 1: route the flow at cluster granularity.
  FlowSpec cluster_flow = flow;
  cluster_flow.src = clusters.node_of(clustering.cluster_of(flow.src));
  cluster_flow.dst = clusters.node_of(clustering.cluster_of(flow.dst));
  const GroundTruthView cluster_view(clusters.topo, clusters.policies);

  std::vector<bool> corridor(clustering.count(), false);
  if (cluster_flow.src == cluster_flow.dst) {
    // Intra-cluster flow: the corridor is the home cluster alone.
    corridor[cluster_flow.src.v] = true;
  } else {
    SynthesisOptions cluster_options = options;
    cluster_options.avoid.clear();  // avoid lists name ADs, not clusters
    const SynthesisResult cluster_route =
        synthesize_route(cluster_view, cluster_flow, cluster_options);
    out.cluster_expansions = cluster_route.expansions;
    if (cluster_route.found()) {
      for (AdId cluster_node : cluster_route.path) {
        corridor[cluster_node.v] = true;
      }
    }
  }

  // Level 2: exact AD-level search inside the corridor; if the
  // optimistic corridor has no legal expansion, fatten it by one cluster
  // hop (detours usually live next door) before giving up on it.
  const GroundTruthView flat_view(topo, policies);
  bool corridor_nonempty = false;
  for (bool b : corridor) corridor_nonempty = corridor_nonempty || b;
  if (corridor_nonempty) {
    for (int attempt = 0; attempt < 2; ++attempt) {
      const CorridorView corridor_view(flat_view, clustering, corridor);
      const SynthesisResult refined =
          synthesize_route(corridor_view, flow, options);
      out.corridor_expansions += refined.expansions;
      if (refined.found()) {
        out.result = refined;
        return out;
      }
      if (attempt == 0) {
        // Fatten: add every cluster adjacent (in the cluster graph) to
        // the current corridor.
        std::vector<bool> fattened = corridor;
        for (std::uint32_t c = 0; c < clustering.count(); ++c) {
          if (!corridor[c]) continue;
          for (const Adjacency& adj :
               clusters.topo.neighbors(AdId{c})) {
            fattened[adj.neighbor.v] = true;
          }
        }
        if (fattened == corridor) break;  // nothing to widen
        corridor = std::move(fattened);
      }
    }
  }

  // Optimistic aggregation misled us (or found nothing): fall back to
  // the flat search so correctness never regresses.
  out.used_fallback = true;
  out.result = synthesize_route(flat_view, flow, options);
  out.fallback_expansions = out.result.expansions;
  return out;
}

}  // namespace idr
