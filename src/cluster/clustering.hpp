// Clustering ADs into super-domains (paper §4.1 and §5.1.1's logical
// clusters; §6 lists "database distribution strategies" and scaling as
// open issues -- grouping ADs and aggregating their advertisements is
// the classic answer, and Table 1's policy-in-topology column notes the
// approach "lends itself well to scaling, as it allows ADs to be grouped
// into a hierarchy").
//
// A Clustering partitions the AD set. cluster_by_hierarchy() produces
// the natural partition of the paper's internet model: each backbone is
// its own cluster; each regional anchors a cluster containing its
// hierarchical subtree (metros and campuses). Multi-homed members join
// their first parent's cluster.
#pragma once

#include <cstdint>
#include <vector>

#include "topology/graph.hpp"

namespace idr {

struct ClusterId {
  std::uint32_t v = 0xffffffffu;
  constexpr auto operator<=>(const ClusterId&) const noexcept = default;
};

class Clustering {
 public:
  explicit Clustering(std::size_t ad_count)
      : cluster_of_(ad_count, ClusterId{}) {}

  ClusterId add_cluster();
  void assign(AdId ad, ClusterId cluster);

  [[nodiscard]] ClusterId cluster_of(AdId ad) const;
  [[nodiscard]] std::uint32_t count() const noexcept {
    return static_cast<std::uint32_t>(members_.size());
  }
  [[nodiscard]] const std::vector<AdId>& members(ClusterId cluster) const;
  [[nodiscard]] bool complete() const noexcept;  // every AD assigned

 private:
  std::vector<ClusterId> cluster_of_;
  std::vector<std::vector<AdId>> members_;
};

Clustering cluster_by_hierarchy(const Topology& topo);

}  // namespace idr
