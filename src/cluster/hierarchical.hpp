// Two-level (hierarchical) policy route synthesis:
//   1. solve the flow at cluster granularity over the aggregated graph;
//   2. expand the winning cluster sequence by running the exact AD-level
//      search inside the corridor of those clusters only.
// Because aggregation is optimistic, the corridor expansion can fail; the
// synthesizer then falls back to the flat (full-topology) search and
// reports that it did. The E-abstraction bench measures the search-work
// saved, the stretch paid, and the fallback rate -- the quantitative
// form of §4.1's "some optimality may be lost [but] the benefits of this
// abstraction far outweigh its costs".
#pragma once

#include "cluster/aggregate.hpp"
#include "core/synthesis.hpp"

namespace idr {

struct HierarchicalResult {
  SynthesisResult result;              // final AD-level route
  std::uint64_t cluster_expansions = 0;   // level-1 search work
  std::uint64_t corridor_expansions = 0;  // level-2 search work
  std::uint64_t fallback_expansions = 0;  // flat search work (fallback only)
  bool used_fallback = false;

  [[nodiscard]] std::uint64_t total_expansions() const noexcept {
    return cluster_expansions + corridor_expansions + fallback_expansions;
  }
};

HierarchicalResult synthesize_hierarchical(
    const Topology& topo, const PolicySet& policies,
    const Clustering& clustering, const ClusterGraph& clusters,
    const FlowSpec& flow, const SynthesisOptions& options = {});

// SynthesisView restricted to ADs inside an allowed cluster set.
class CorridorView final : public SynthesisView {
 public:
  CorridorView(const SynthesisView& base, const Clustering& clustering,
               std::vector<bool> allowed_clusters)
      : base_(base),
        clustering_(clustering),
        allowed_(std::move(allowed_clusters)) {}

  [[nodiscard]] std::size_t ad_count() const override {
    return base_.ad_count();
  }
  void for_each_neighbor(
      AdId ad, const std::function<void(AdId, std::uint32_t)>& fn)
      const override;
  [[nodiscard]] std::optional<std::uint32_t> transit_cost(
      AdId ad, const FlowSpec& flow, AdId prev, AdId next) const override;

 private:
  const SynthesisView& base_;
  const Clustering& clustering_;
  std::vector<bool> allowed_;
};

}  // namespace idr
