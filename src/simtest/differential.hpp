// DifferentialRunner: the back half of the deterministic simulation-
// testing loop. One SimCase is executed on each of the paper's four
// detailed design points (ECMA, IDRP, LS-HbH, ORWG) -- identical world,
// identical scripted schedule -- and every flow's final forwarding
// outcome is classified against ground truth:
//
//   * agreement            -- delivered a legal fresh route, or correctly
//                             found no route where none exists;
//   * expected divergence  -- a miss or policy-blind delivery the paper
//                             itself predicts (hop-by-hop route
//                             unavailability for IDRP/LS-HbH, ECMA's
//                             expressiveness gap, source-criteria
//                             violations no hop-by-hop design can honor);
//   * genuine violation    -- an illegal or stale delivered path, a
//                             forwarding loop, a black hole where the
//                             design's own ground truth has a route, or
//                             nondeterminism between two runs of the same
//                             seed;
//   * unknown              -- the oracle's search budget ran out.
//
// The expected/genuine split is the paper's comparison matrix turned into
// an executable conformance check: ORWG is held to completeness ("the
// source can discover a valid route if one in fact exists"), the
// hop-by-hop designs are not, and nobody is allowed to loop.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/oracle.hpp"
#include "sim/invariants.hpp"
#include "simtest/simcase.hpp"

namespace idr {

enum class DiffViolation : std::uint8_t {
  kIllegalPath = 0,     // delivered a path ground truth forbids
  kLoop = 1,            // forwarding loop at the horizon, or persistent
  kBlackHole = 2,       // no route delivered although one exists
  kStaleRoute = 3,      // delivered across dead links / crashed ADs
  kNondeterminism = 4,  // two runs of the same seed disagreed
};

[[nodiscard]] const char* to_string(DiffViolation v);

struct DiffFinding {
  std::string arch;
  DiffViolation kind = DiffViolation::kIllegalPath;
  FlowSpec flow;            // offending flow (monitor findings: default
                            // traffic class between src and dst)
  std::vector<AdId> path;   // forwarding walk that exhibited it
  std::string detail;

  // Shrinker predicates key on this: stable across AD renumbering.
  [[nodiscard]] std::string signature() const {
    return arch + ":" + to_string(kind);
  }
};

struct ArchDiffResult {
  std::string arch;
  std::size_t flows_total = 0;
  std::size_t flows_skipped = 0;  // dead / misbehaving endpoint
  std::size_t delivered_legal = 0;
  std::size_t agreed_no_route = 0;
  std::size_t expected_divergences = 0;
  std::size_t unknown = 0;  // oracle budget exhausted
  std::vector<DiffFinding> violations;
  std::uint64_t fingerprint = 0;       // counter fingerprint at horizon
  std::uint64_t events_processed = 0;  // DES events for the whole run
  InvariantStats invariants;
};

struct DiffOptions {
  // Design points to run; empty = all four.
  std::vector<std::string> archs;
  // Execute every (case, arch) twice and flag any difference in
  // fingerprint, event count or per-flow outcome as nondeterminism.
  bool check_determinism = true;
  // Ground-truth search budget per flow (tri-state: exhaustion reports
  // the flow as unknown rather than guessing).
  std::uint64_t oracle_budget = 2'000'000;
  // Invariant-monitor cadence during the run; 0 disables mid-run sweeps.
  SimTime monitor_cadence_ms = 100.0;
  // Testing the tester: make the LS-HbH probe ignore the flow's traffic
  // class (queries the default-class FIB for every flow), a seeded
  // known-bad defect the shrinker acceptance tests minimize.
  bool inject_probe_bug = false;
  // Event-scheduler backend; the engine-equivalence tests run the same
  // seed under both backends and require identical results.
  SchedulerKind scheduler = SchedulerKind::kCalendar;
  // Sharded-parallel backend: partition each case's topology into
  // `shards` conservative-window shards (1 = sequential reference).
  // threads == 0 drives the shards inline on the caller's thread, which
  // is byte-identical to the threaded run by construction; either way
  // the result must match the sequential backend exactly.
  std::uint32_t shards = 1;
  unsigned threads = 0;
  // Testing-only window-lookahead shrink; 0 keeps the topology minimum.
  double lookahead_ms = 0.0;
};

struct DiffResult {
  std::string name;
  std::uint64_t seed = 0;
  std::vector<ArchDiffResult> archs;

  [[nodiscard]] bool clean() const {
    for (const ArchDiffResult& a : archs) {
      if (!a.violations.empty()) return false;
    }
    return true;
  }
  [[nodiscard]] std::size_t violation_count() const {
    std::size_t n = 0;
    for (const ArchDiffResult& a : archs) n += a.violations.size();
    return n;
  }
  // Sorted unique "arch:kind" strings -- the shrinker's reproduction key.
  [[nodiscard]] std::vector<std::string> signatures() const;
};

DiffResult run_differential(const SimCase& c, const DiffOptions& options = {});

}  // namespace idr
