#include "simtest/scenario_generator.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "policy/generator.hpp"
#include "topology/generator.hpp"
#include "util/prng.hpp"

namespace idr {

SimCase generate_sim_case(const SimCaseParams& params) {
  SimCase c;
  c.name = "seed-" + std::to_string(params.seed);
  c.seed = params.seed;
  c.horizon_ms = params.horizon_ms;

  // Independent streams per dimension: adding one more crash event must
  // not reshuffle the topology of the next seed's world.
  std::uint64_t topo_state = params.seed ^ 0x746f706fULL;     // "topo"
  std::uint64_t policy_state = params.seed ^ 0x706f6c69ULL;   // "poli"
  std::uint64_t flow_state = params.seed ^ 0x666c6f77ULL;     // "flow"
  std::uint64_t sched_state = params.seed ^ 0x7363686dULL;    // "schm"
  std::uint64_t fault_state = params.seed ^ 0x66617565ULL;    // "faue"
  std::uint64_t flap_state = params.seed ^ 0x666c6170ULL;     // "flap"
  std::uint64_t restart_state = params.seed ^ 0x72737472ULL;  // "rstr"

  // --- topology ---------------------------------------------------------
  Prng topo_prng(splitmix64(topo_state));
  const std::uint32_t span = params.max_ads >= params.min_ads
                                 ? params.max_ads - params.min_ads + 1
                                 : 1;
  const std::uint32_t target =
      params.min_ads + static_cast<std::uint32_t>(topo_prng.below(span));
  c.topo = generate_topology_of_size(std::max(8u, target), topo_prng);

  // --- policies ---------------------------------------------------------
  Prng policy_prng(splitmix64(policy_state));
  RestrictionParams restrict;
  restrict.restrict_prob = params.restrict_prob;
  restrict.source_selectivity = params.source_selectivity;
  c.policies = make_restricted_policies(
      c.topo, make_provider_customer_policies(c.topo), restrict, policy_prng);
  if (policy_prng.bernoulli(params.aup_prob)) {
    for (const Ad& ad : c.topo.ads()) {
      if (ad.cls == AdClass::kBackbone) {
        apply_aup(c.policies, ad.id);
        break;
      }
    }
  }
  add_source_avoidance(c.topo, c.policies, params.avoid_fraction, policy_prng);

  // --- flows ------------------------------------------------------------
  Prng flow_prng(splitmix64(flow_state));
  c.flows = sample_flows(c.topo, params.flow_count, flow_prng);

  // --- message-fault intensity ------------------------------------------
  Prng fault_prng(splitmix64(fault_state));
  c.duplicate_rate = fault_prng.uniform01() * params.max_duplicate_rate;
  c.reorder_rate = fault_prng.uniform01() * params.max_reorder_rate;

  // --- scripted schedule ------------------------------------------------
  Prng sched_prng(splitmix64(sched_state));
  const SimTime churn_begin = 0.1 * params.horizon_ms;
  const SimTime churn_end = params.churn_fraction * params.horizon_ms;
  auto churn_time = [&] {
    return churn_begin + sched_prng.uniform01() * (churn_end - churn_begin);
  };

  const std::uint32_t link_events =
      params.max_link_events == 0
          ? 0
          : static_cast<std::uint32_t>(
                sched_prng.below(params.max_link_events + 1));
  for (std::uint32_t i = 0; i < link_events && c.topo.link_count() > 0; ++i) {
    const Link& link =
        c.topo.links()[sched_prng.below(c.topo.link_count())];
    SimEvent e;
    e.kind = SimEvent::Kind::kLinkDown;
    e.at_ms = churn_time();
    e.a = link.a;
    e.b = link.b;
    if (!sched_prng.bernoulli(params.permanent_failure_prob)) {
      e.repair_ms =
          e.at_ms + 100.0 + sched_prng.uniform01() * (churn_end - e.at_ms);
    }
    c.events.push_back(e);
  }

  const std::uint32_t crash_events =
      params.max_crash_events == 0
          ? 0
          : static_cast<std::uint32_t>(
                sched_prng.below(params.max_crash_events + 1));
  for (std::uint32_t i = 0; i < crash_events; ++i) {
    SimEvent e;
    e.kind = SimEvent::Kind::kCrash;
    e.at_ms = churn_time();
    e.ad = AdId{static_cast<std::uint32_t>(sched_prng.below(
        c.topo.ad_count()))};
    // Crashed nodes always restart: a cold-started RIB rebuilt from
    // scratch is the interesting case, a permanently dead node is just a
    // smaller topology.
    e.repair_ms =
        e.at_ms + 150.0 + sched_prng.uniform01() * (churn_end - e.at_ms);
    c.events.push_back(e);
  }

  if (sched_prng.bernoulli(params.byzantine_prob)) {
    std::vector<AdId> transits;
    std::vector<AdId> stubs;
    for (const Ad& ad : c.topo.ads()) {
      if (c.topo.can_transit(ad.id)) transits.push_back(ad.id);
      else stubs.push_back(ad.id);
    }
    if (!transits.empty()) {
      SimEvent e;
      e.kind = SimEvent::Kind::kByzantine;
      e.at_ms = churn_time();
      e.ad = sched_prng.pick(transits);
      static constexpr Misbehavior kTaxonomy[] = {
          Misbehavior::kRouteLeak, Misbehavior::kFalseOrigin,
          Misbehavior::kBlackHole, Misbehavior::kTamper};
      e.misbehavior = kTaxonomy[sched_prng.below(4)];
      if (e.misbehavior == Misbehavior::kFalseOrigin) {
        if (stubs.empty()) {
          e.misbehavior = Misbehavior::kRouteLeak;
        } else {
          e.victim = sched_prng.pick(stubs);
        }
      }
      c.events.push_back(e);
    }
  }

  // --- link-flap storm --------------------------------------------------
  Prng flap_prng(splitmix64(flap_state));
  if (flap_prng.bernoulli(params.flap_storm_prob) &&
      c.topo.link_count() > 0) {
    const Link& link =
        c.topo.links()[flap_prng.below(c.topo.link_count())];
    SimEvent e;
    e.kind = SimEvent::Kind::kLinkFlap;
    e.at_ms = churn_begin +
              flap_prng.uniform01() * (churn_end - churn_begin) * 0.5;
    e.a = link.a;
    e.b = link.b;
    // Period comfortably above the keepalive detection floor, cycle count
    // small enough that the storm ends inside the churn window.
    e.period_ms = 150.0 + flap_prng.uniform01() * 150.0;
    const std::uint32_t span_cycles =
        params.max_flap_cycles > 2 ? params.max_flap_cycles - 1 : 1;
    e.cycles = 2 + static_cast<std::uint32_t>(flap_prng.below(span_cycles));
    c.events.push_back(e);
  }

  // --- restart storm ----------------------------------------------------
  Prng restart_prng(splitmix64(restart_state));
  if (restart_prng.bernoulli(params.restart_storm_prob)) {
    // Transit ADs make the interesting storms (their outage reroutes
    // everyone behind them); fall back to any AD on all-stub topologies.
    std::vector<AdId> transits;
    for (const Ad& ad : c.topo.ads()) {
      if (c.topo.can_transit(ad.id)) transits.push_back(ad.id);
    }
    SimEvent e;
    e.kind = SimEvent::Kind::kRestartStorm;
    e.ad = transits.empty()
               ? AdId{static_cast<std::uint32_t>(
                     restart_prng.below(c.topo.ad_count()))}
               : restart_prng.pick(transits);
    e.at_ms = churn_begin +
              restart_prng.uniform01() * (churn_end - churn_begin) * 0.5;
    // Down phase (half the period) long enough for keepalive detection,
    // cycle count small enough that the storm ends inside churn.
    e.period_ms = 300.0 + restart_prng.uniform01() * 300.0;
    const std::uint32_t span_cycles =
        params.max_restart_cycles > 2 ? params.max_restart_cycles - 1 : 1;
    e.cycles =
        2 + static_cast<std::uint32_t>(restart_prng.below(span_cycles));
    c.events.push_back(e);
  }

  std::stable_sort(c.events.begin(), c.events.end(),
                   [](const SimEvent& x, const SimEvent& y) {
                     return x.at_ms < y.at_ms;
                   });
  return c;
}

}  // namespace idr
