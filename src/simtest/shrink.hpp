// Delta-debugging shrinker for failing SimCases. Given a case on which a
// failure predicate holds (typically "these violation signatures
// reproduce under run_differential"), the shrinker minimizes across every
// dimension of the world while the predicate keeps holding:
//
//   * scripted events (ddmin over the schedule),
//   * probed flows (ddmin),
//   * policy terms (ddmin over the flattened database),
//   * links, then whole ADs (greedy structural removal with id remap),
//   * the time horizon (geometric shortening).
//
// The passes repeat to a fixpoint, so a 60-AD soak failure comes back as
// a handful of ADs and events -- small enough to read, check into
// data/simtest/ and replay forever as a regression test.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "simtest/differential.hpp"
#include "simtest/simcase.hpp"

namespace idr {

using FailurePredicate = std::function<bool(const SimCase&)>;

struct ShrinkOptions {
  // Hard budget on predicate evaluations (each one is a differential
  // run); the shrinker returns its best-so-far when exhausted.
  std::size_t max_checks = 400;
  bool shrink_horizon = true;
  SimTime min_horizon_ms = 500.0;
};

struct ShrinkResult {
  SimCase minimized;
  std::size_t checks = 0;  // predicate evaluations spent
  std::size_t rounds = 0;  // full fixpoint rounds completed
};

ShrinkResult shrink_sim_case(const SimCase& failing,
                             const FailurePredicate& fails,
                             const ShrinkOptions& options = {});

// Canonical predicate: the given violation signatures ("arch:kind", as
// produced by DiffResult::signatures()) all still reproduce. Signatures
// survive AD renumbering, which src/dst-based keys would not.
FailurePredicate signature_predicate(std::vector<std::string> signatures,
                                     DiffOptions options);

}  // namespace idr
