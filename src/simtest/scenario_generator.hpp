// Seeded SimCase generation: the front half of the deterministic
// simulation-testing loop. One seed fans out (via independent splitmix64
// streams) into a random topology, a random restricted policy mix, a
// random flow sample and a random scripted churn / crash / Byzantine
// schedule -- every dimension the paper's comparative claims range over.
// The same seed always yields the byte-identical SimCase.
#pragma once

#include <cstdint>

#include "simtest/simcase.hpp"

namespace idr {

struct SimCaseParams {
  std::uint64_t seed = 1;

  // Topology size range (uniform); generate_topology_of_size needs >= 8.
  std::uint32_t min_ads = 10;
  std::uint32_t max_ads = 28;

  // Policy mix knobs (fed to make_restricted_policies).
  double restrict_prob = 0.3;
  double source_selectivity = 0.6;
  double avoid_fraction = 0.15;
  double aup_prob = 0.25;  // research-only AUP on the first backbone

  // Flow sample size.
  std::size_t flow_count = 24;

  // Schedule shape. Events land in [0.1, churn_fraction] * horizon so a
  // quiet tail remains for reconvergence before outcomes are read.
  SimTime horizon_ms = 4000.0;
  double churn_fraction = 0.5;
  std::uint32_t max_link_events = 4;
  std::uint32_t max_crash_events = 2;
  double permanent_failure_prob = 0.3;  // link-down with no repair
  double byzantine_prob = 0.25;         // chance of one Byzantine AD
  // Chance of one link-flap storm (a link cycling down/up several times
  // in quick succession -- the schedule shape route-flap damping exists
  // for). Drawn from its own splitmix64 stream, so flipping this knob
  // never reshuffles the other schedule dimensions of an existing seed.
  double flap_storm_prob = 0.2;
  std::uint32_t max_flap_cycles = 4;  // 2..max cycles per storm
  // Chance of one restart storm (an AD crash/restarting several times in
  // quick succession -- the graceful-restart schedule shape). Also drawn
  // from its own splitmix64 stream for the same reason.
  double restart_storm_prob = 0.2;
  std::uint32_t max_restart_cycles = 3;  // 2..max cycles per storm

  // Message-fault intensity ceilings (rates drawn uniformly below these).
  double max_duplicate_rate = 0.02;
  double max_reorder_rate = 0.05;
};

// Deterministic in params (pure function of the seed and knobs).
SimCase generate_sim_case(const SimCaseParams& params);

}  // namespace idr
