#include "simtest/differential.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <utility>

#include "core/design_harness.hpp"
#include "core/synthesis.hpp"
#include "proto/ecma/partial_order.hpp"
#include "sim/engine.hpp"
#include "sim/failure.hpp"
#include "sim/network.hpp"
#include "util/prng.hpp"

namespace idr {

const char* to_string(DiffViolation v) {
  switch (v) {
    case DiffViolation::kIllegalPath: return "illegal-path";
    case DiffViolation::kLoop: return "loop";
    case DiffViolation::kBlackHole: return "black-hole";
    case DiffViolation::kStaleRoute: return "stale-route";
    case DiffViolation::kNondeterminism: return "nondeterminism";
  }
  return "?";
}

std::vector<std::string> DiffResult::signatures() const {
  std::vector<std::string> out;
  for (const ArchDiffResult& a : archs) {
    for (const DiffFinding& f : a.violations) out.push_back(f.signature());
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

namespace {

// Endpoint the conformance claims do not cover: dead, quarantined or
// misbehaving ADs get no availability guarantees.
bool skip_endpoint(const Network& net, AdId ad) {
  return !net.alive(ad) || net.is_quarantined(ad) || net.misbehaving(ad);
}

bool path_is_fresh(const Network& net, const Topology& topo,
                   const std::vector<AdId>& path) {
  for (const AdId ad : path) {
    if (!net.alive(ad)) return false;
  }
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto link = topo.find_link(path[i], path[i + 1]);
    if (!link || !topo.link(*link).up) return false;
  }
  return true;
}

// Transit-side legality only: loop-free, live links, every intermediate
// AD willing per its Policy Terms -- but the *source's* route-selection
// criteria (avoid list, hop budget) are NOT checked. A path that is
// transit-legal yet source-illegal is precisely the divergence the paper
// sanctions for hop-by-hop designs: "policies of the source ... cannot be
// supported by hop-by-hop routing" (§5.2).
bool transit_legal(const Topology& topo, const PolicySet& policies,
                   const FlowSpec& flow, const std::vector<AdId>& path) {
  if (path.size() < 2 || path.front() != flow.src || path.back() != flow.dst) {
    return false;
  }
  std::vector<bool> seen(topo.ad_count(), false);
  for (const AdId ad : path) {
    if (seen[ad.v]) return false;
    seen[ad.v] = true;
  }
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    const auto link = topo.find_link(path[i], path[i + 1]);
    if (!link || !topo.link(*link).up) return false;
  }
  for (std::size_t i = 1; i + 1 < path.size(); ++i) {
    if (!policies.ad_permits_transit(topo, path[i], flow, path[i - 1],
                                     path[i + 1])) {
      return false;
    }
  }
  return true;
}

// Tri-state ground truth for one flow over the network's *current* state:
// honors the source's route-selection criteria and routes around dead /
// quarantined / traffic-dropping ADs, exactly what a correct protocol
// could still have converged to.
RouteExistence flow_truth(const Network& net, const Topology& topo,
                          const PolicySet& policies, const FlowSpec& flow,
                          std::uint64_t budget) {
  const SourcePolicy& sp = policies.source_policy(flow.src);
  SynthesisOptions options;
  options.max_hops = sp.max_hops;
  options.avoid = sp.avoid;
  options.first_found = true;
  options.expansion_budget = budget;
  for (const Ad& ad : topo.ads()) {
    if (ad.id == flow.src || ad.id == flow.dst) continue;
    if (!net.alive(ad.id) || net.is_quarantined(ad.id) ||
        net.drops_traffic(ad.id, flow.dst)) {
      options.avoid.push_back(ad.id);
    }
  }
  const GroundTruthView view(topo, policies);
  const SynthesisResult r = synthesize_route(view, flow, options);
  if (r.found()) return RouteExistence::kExists;
  return r.outcome == SynthesisOutcome::kBudget ? RouteExistence::kUnknown
                                                : RouteExistence::kNone;
}

struct ArchRunOutput {
  ArchDiffResult result;
  std::vector<Probe> probes;  // per flow, for the determinism cross-check
  bool order_conflict = false;
};

ArchRunOutput run_one(const std::string& arch, const SimCase& c,
                      const DiffOptions& options) {
  ArchRunOutput out;
  out.result.arch = arch;
  out.result.flows_total = c.flows.size();

  // The Network mutates link state; every run gets a private copy so the
  // SimCase itself stays pristine (and re-runnable).
  Topology topo = c.topo;
  const PolicySet& policies = c.policies;

  OrderResult order;
  if (arch == "ecma") {
    order = compute_partial_order(topo, {});
    if (!order.ok) {
      // Structurally unorderable world: ECMA cannot be configured at all.
      // Treated as "no claims checked" rather than a protocol violation.
      out.order_conflict = true;
      out.result.flows_skipped = c.flows.size();
      return out;
    }
  }

  Engine engine(options.scheduler);
  EngineBackend backend;
  backend.scheduler = options.scheduler;
  backend.shards = options.shards;
  backend.threads = options.threads;
  backend.lookahead_ms = options.lookahead_ms;
  apply_engine_backend(engine, topo, backend);
  Network net(engine, topo);

  std::vector<ByzantineSpec> byz;
  for (const SimEvent& e : c.events) {
    if (e.kind != SimEvent::Kind::kByzantine) continue;
    ByzantineSpec spec;
    spec.ad = e.ad;
    spec.kind = e.misbehavior;
    spec.victim = e.victim;
    spec.start_ms = e.at_ms;
    byz.push_back(spec);
  }
  const bool defended = !byz.empty();
  std::vector<std::uint64_t> lsa_keys;
  if (defended) {
    std::uint64_t key_state = c.seed ^ 0x6b657973ULL;
    lsa_keys.resize(topo.ad_count());
    for (auto& key : lsa_keys) {
      key = splitmix64(key_state);
      if (key == 0) key = 1;
    }
  }

  HarnessConfig harness;
  harness.defended = defended;
  harness.periodic_refresh_ms = c.periodic_refresh_ms;
  harness.lsa_keys = &lsa_keys;
  Network::NodeFactory factory =
      make_design_factory(arch, topo, policies, &order, harness);
  net.set_node_factory(factory);
  for (const Ad& ad : topo.ads()) net.attach(ad.id, factory(ad.id));

  // Failures are detected the deployable way: no oracle link
  // notifications, only keepalive timeouts plus periodic refresh.
  net.set_link_notifications(false);
  FaultConfig faults;
  faults.duplicate_rate = c.duplicate_rate;
  faults.reorder_rate = c.reorder_rate;
  faults.reorder_extra_ms = c.reorder_extra_ms;
  std::uint64_t seed_state = c.seed;
  net.set_faults(faults, splitmix64(seed_state));
  if (c.keepalive_interval_ms > 0.0) {
    KeepaliveConfig keepalive;
    keepalive.interval_ms = c.keepalive_interval_ms;
    keepalive.miss_threshold = c.keepalive_misses;
    net.set_keepalive(keepalive);
  }
  net.start_all();

  FlowProbeFn flow_probe = make_design_probe(arch, net, topo);
  if (options.inject_probe_bug && arch == "ls-hbh") {
    // Known-bad defect for shrinker acceptance: consult the default-class
    // FIB regardless of the flow's actual traffic class.
    flow_probe = [inner = std::move(flow_probe)](const FlowSpec& flow) {
      FlowSpec blunted = flow;
      blunted.qos = Qos::kDefault;
      blunted.uci = UserClass::kResearch;
      blunted.hour = 12;
      return inner(blunted);
    };
  }
  InvariantMonitor::ProbeFn pair_probe = make_pair_probe(flow_probe);

  std::unique_ptr<InvariantMonitor> monitor;
  if (options.monitor_cadence_ms > 0.0) {
    InvariantConfig mon_config;
    mon_config.cadence_ms = options.monitor_cadence_ms;
    monitor = std::make_unique<InvariantMonitor>(net, mon_config, pair_probe);
    monitor->set_reachable_fn(
        make_design_reachable(arch, net, topo, policies, &order));
    net.set_churn_observer(
        [&m = *monitor](Network::ChurnKind) { m.note_fault(); });
    monitor->start(c.horizon_ms);
  }

  // --- scripted schedule ------------------------------------------------
  FailureInjector injector(net);
  for (const SimEvent& e : c.events) {
    switch (e.kind) {
      case SimEvent::Kind::kLinkDown: {
        const auto link = topo.find_link(e.a, e.b);
        if (link) {
          injector.fail_link_at(
              *link, e.at_ms,
              e.repair_ms > e.at_ms ? e.repair_ms - e.at_ms : 0.0);
        }
        break;
      }
      case SimEvent::Kind::kCrash:
        injector.crash_node_at(
            e.ad, e.at_ms,
            e.repair_ms > e.at_ms ? e.repair_ms - e.at_ms : 0.0);
        break;
      case SimEvent::Kind::kByzantine:
        break;  // configured below
      case SimEvent::Kind::kLinkFlap: {
        const auto link = topo.find_link(e.a, e.b);
        if (link) {
          injector.flap_link(*link, e.at_ms, e.period_ms, /*duty=*/0.5,
                             e.cycles);
        }
        break;
      }
      case SimEvent::Kind::kRestartStorm:
        injector.restart_storm(e.ad, e.at_ms, e.period_ms, /*duty=*/0.5,
                               e.cycles);
        break;
    }
  }
  for (const ByzantineSpec& spec : byz) {
    net.set_misbehavior(spec);
    // Onset and containment both perturb the world: give the monitor its
    // reconvergence grace window around each.
    engine.at(spec.start_ms, [&] {
      if (monitor) monitor->note_fault();
    });
    engine.at(spec.start_ms + c.detection_delay_ms, [&net, ad = spec.ad,
                                                     &monitor] {
      net.quarantine(ad);
      if (monitor) monitor->note_fault();
    });
  }

  engine.run_until(c.horizon_ms);

  // --- classification at the horizon ------------------------------------
  PathComplianceFn ecma_compliant;
  if (arch == "ecma") {
    ecma_compliant = make_design_compliance(arch, topo, policies, &order);
  }
  auto add_violation = [&](DiffViolation kind, const FlowSpec& flow,
                           std::vector<AdId> path, std::string detail) {
    DiffFinding f;
    f.arch = arch;
    f.kind = kind;
    f.flow = flow;
    f.path = std::move(path);
    f.detail = std::move(detail);
    out.result.violations.push_back(std::move(f));
  };

  for (const FlowSpec& flow : c.flows) {
    if (skip_endpoint(net, flow.src) || skip_endpoint(net, flow.dst)) {
      ++out.result.flows_skipped;
      out.probes.emplace_back();  // placeholder keeps indices aligned
      continue;
    }
    const Probe probe = flow_probe(flow);
    out.probes.push_back(probe);
    switch (probe.outcome) {
      case ProbeOutcome::kLooped:
        add_violation(DiffViolation::kLoop, flow, probe.path,
                      "forwarding loop at the horizon");
        break;
      case ProbeOutcome::kDelivered: {
        if (!path_is_fresh(net, topo, probe.path)) {
          add_violation(DiffViolation::kStaleRoute, flow, probe.path,
                        "delivered across dead links or crashed ADs");
          break;
        }
        if (arch == "ecma") {
          if (!ecma_compliant(flow.src, flow.dst, probe.path)) {
            add_violation(DiffViolation::kIllegalPath, flow, probe.path,
                          "violates the up*down* partial-order shape");
          } else if (policies.path_is_legal(topo, flow, probe.path)) {
            ++out.result.delivered_legal;
          } else {
            // Policy-blind delivery: ECMA's topology-embedded policy
            // cannot express Policy Terms (the paper's expressiveness
            // critique) -- sanctioned divergence, not a bug.
            ++out.result.expected_divergences;
          }
        } else if (policies.path_is_legal(topo, flow, probe.path)) {
          ++out.result.delivered_legal;
        } else if ((arch == "idrp" || arch == "ls-hbh") &&
                   transit_legal(topo, policies, flow, probe.path)) {
          // Source criteria violated but transit policy honored: the
          // hop-by-hop designs have no channel for remote source
          // preferences (§5.2) -- sanctioned divergence.
          ++out.result.expected_divergences;
        } else {
          add_violation(DiffViolation::kIllegalPath, flow, probe.path,
                        "delivered path violates ground-truth policy");
        }
        break;
      }
      case ProbeOutcome::kBlackHole: {
        if (arch == "ecma") {
          if (ecma_reachable(net, topo, order.order, flow.src, flow.dst)) {
            add_violation(DiffViolation::kBlackHole, flow, probe.path,
                          "ECMA-reachable destination not forwarded to");
          } else {
            // Not ECMA-expressible; does a Policy-Term route exist that
            // ECMA cannot represent (expressiveness gap), or is the pair
            // genuinely partitioned?
            switch (flow_truth(net, topo, policies, flow,
                               options.oracle_budget)) {
              case RouteExistence::kExists:
                ++out.result.expected_divergences;
                break;
              case RouteExistence::kNone:
                ++out.result.agreed_no_route;
                break;
              case RouteExistence::kUnknown:
                ++out.result.unknown;
                break;
            }
          }
          break;
        }
        switch (flow_truth(net, topo, policies, flow, options.oracle_budget)) {
          case RouteExistence::kNone:
            ++out.result.agreed_no_route;
            break;
          case RouteExistence::kUnknown:
            ++out.result.unknown;
            break;
          case RouteExistence::kExists:
            if (arch == "orwg") {
              // The paper's completeness claim: the source-routing
              // architecture finds a valid route whenever one exists.
              add_violation(DiffViolation::kBlackHole, flow, probe.path,
                            "legal route exists but ORWG found none");
            } else {
              // Hop-by-hop route unavailability -- the sanctioned miss.
              ++out.result.expected_divergences;
            }
            break;
        }
        break;
      }
    }
  }

  // --- persistent mid-run findings from the invariant monitor -----------
  if (monitor) {
    out.result.invariants = monitor->stats();
    for (const InvariantFinding& f : monitor->persistent_findings()) {
      FlowSpec flow;  // monitor probes run at the default traffic class
      flow.src = f.src;
      flow.dst = f.dst;
      switch (f.kind) {
        case InvariantKind::kLoop:
          add_violation(DiffViolation::kLoop, flow, f.path,
                        "persistent loop during the run");
          break;
        case InvariantKind::kStaleRoute:
          add_violation(DiffViolation::kStaleRoute, flow, f.path,
                        "persistent stale route during the run");
          break;
        case InvariantKind::kBlackHole:
          // Availability mid-run is only a hard claim for the designs
          // held to completeness; for them, confirm against the final
          // state before calling it genuine (later churn may have
          // removed the route again).
          if (arch == "ecma") {
            if (ecma_reachable(net, topo, order.order, f.src, f.dst)) {
              add_violation(DiffViolation::kBlackHole, flow, f.path,
                            "persistent black hole during the run");
            }
          } else if (arch == "orwg") {
            if (flow_truth(net, topo, policies, flow,
                           options.oracle_budget) ==
                RouteExistence::kExists) {
              add_violation(DiffViolation::kBlackHole, flow, f.path,
                            "persistent black hole during the run");
            }
          } else {
            ++out.result.expected_divergences;  // HbH miss
          }
          break;
      }
    }
  }

  out.result.fingerprint = counter_fingerprint(net, topo);
  out.result.events_processed = engine.events_processed();
  return out;
}

bool same_probes(const std::vector<Probe>& a, const std::vector<Probe>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].outcome != b[i].outcome || a[i].path != b[i].path) return false;
  }
  return true;
}

}  // namespace

DiffResult run_differential(const SimCase& c, const DiffOptions& options) {
  DiffResult result;
  result.name = c.name;
  result.seed = c.seed;
  const std::vector<std::string>& archs =
      options.archs.empty() ? design_point_names() : options.archs;
  for (const std::string& arch : archs) {
    ArchRunOutput first = run_one(arch, c, options);
    if (options.check_determinism && !first.order_conflict) {
      const ArchRunOutput second = run_one(arch, c, options);
      if (first.result.fingerprint != second.result.fingerprint ||
          first.result.events_processed != second.result.events_processed ||
          !same_probes(first.probes, second.probes)) {
        DiffFinding f;
        f.arch = arch;
        f.kind = DiffViolation::kNondeterminism;
        f.detail = "two runs of seed " + std::to_string(c.seed) +
                   " diverged (fingerprint " +
                   std::to_string(first.result.fingerprint) + " vs " +
                   std::to_string(second.result.fingerprint) + ")";
        first.result.violations.push_back(std::move(f));
      }
    }
    result.archs.push_back(std::move(first.result));
  }
  return result;
}

}  // namespace idr
