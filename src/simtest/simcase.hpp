// SimCase: one fully replayable simulation-testing world. A case bundles
// everything a differential run needs -- topology, policy database, flow
// sample, fault-model knobs and the scripted churn / crash / Byzantine
// schedule -- into a single value with a textual serialization, so a
// failing case can be shrunk, written to disk, attached to a bug report
// and replayed bit-for-bit by a test.
//
// The format is line-oriented and keyword-discriminated, reusing the
// repo's existing configuration languages verbatim for the two big
// sections (topology/parse.hpp for `ad`/`link` lines, policy/dsl.hpp for
// `term`/`source` lines):
//
//   case name=seed-42 seed=42 horizon-ms=4000
//   faults duplicate=0.01 reorder=0.05 reorder-extra-ms=5
//          keepalive-ms=30 misses=4 refresh-ms=300 detect-ms=150
//   (one line; wrapped here for width)
//   ad backbone-0 backbone transit
//   link backbone-0 regional-2 hierarchical delay=10 metric=1
//   term owner=regional-2 src=* dst=* ...
//   source campus-7 avoid={backbone-1} max-hops=12
//   flow src=campus-7 dst=campus-9 qos=default uci=research hour=12
//   event link-down at=500 a=backbone-0 b=regional-2 repair-ms=900
//   event crash at=800 ad=regional-3 restart-ms=1200
//   event byzantine at=1000 ad=regional-2 kind=route-leak
//   event link-flap at=600 a=backbone-0 b=regional-2 period-ms=200 cycles=3
//   event restart-storm at=700 ad=backbone-0 period-ms=400 cycles=2
//
// parse_sim_case(format_sim_case(c)) reproduces c, and re-serializing is
// byte-identical (round-trip tested).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "policy/database.hpp"
#include "policy/flow.hpp"
#include "sim/engine.hpp"
#include "sim/network.hpp"
#include "topology/graph.hpp"

namespace idr {

// One scripted event in a SimCase schedule.
struct SimEvent {
  enum class Kind : std::uint8_t {
    kLinkDown = 0,   // fail link (a, b) at at_ms; repair_ms 0 = never
    kCrash = 1,      // crash `ad` at at_ms; restart at repair_ms (0 = never)
    kByzantine = 2,  // `ad` starts misbehaving as `misbehavior` at at_ms
    kLinkFlap = 3,   // link (a, b) flaps: `cycles` down/up pairs starting
                     // at at_ms, one pair per period_ms (50% duty)
    kRestartStorm = 4,  // `ad` crash/restarts repeatedly: `cycles`
                        // crash-then-recover pairs starting at at_ms, one
                        // per period_ms (down for half, back for half)
  };

  Kind kind = Kind::kLinkDown;
  SimTime at_ms = 0.0;
  AdId a;  // link endpoints (kLinkDown, kLinkFlap)
  AdId b;
  SimTime repair_ms = 0.0;  // absolute repair/restart time; 0 = permanent
  AdId ad;                  // subject AD (kCrash, kByzantine)
  Misbehavior misbehavior = Misbehavior::kNone;
  AdId victim;  // false-origin hijack target; invalid otherwise
  SimTime period_ms = 0.0;    // flap cycle length (kLinkFlap)
  std::uint32_t cycles = 0;   // flap cycle count (kLinkFlap)

  friend bool operator==(const SimEvent&, const SimEvent&) = default;
};

// A complete replayable world. Deterministic: running a SimCase twice
// produces identical traces (the only randomness left -- duplicate /
// reorder fault decisions -- is drawn from `seed`).
struct SimCase {
  std::string name;
  std::uint64_t seed = 0;
  SimTime horizon_ms = 4000.0;

  // Message-fault model. Only duplication and reordering: both leave
  // eventual delivery intact, so a quiescent network at the horizon is a
  // protocol property, not luck.
  double duplicate_rate = 0.0;
  double reorder_rate = 0.0;
  double reorder_extra_ms = 5.0;

  // Liveness machinery (link notifications stay off; failures are
  // detected the deployable way, by keepalive timeout + refresh).
  SimTime keepalive_interval_ms = 30.0;
  std::uint32_t keepalive_misses = 4;
  SimTime periodic_refresh_ms = 300.0;
  // Quarantine lag after a Byzantine onset (defenses are always armed).
  SimTime detection_delay_ms = 150.0;

  Topology topo;
  PolicySet policies;
  std::vector<FlowSpec> flows;
  std::vector<SimEvent> events;  // sorted by at_ms on generation
};

struct SimCaseParseError {
  std::size_t line = 0;  // 1-based
  std::string message;

  [[nodiscard]] std::string describe() const {
    return "line " + std::to_string(line) + ": " + message;
  }
};

using SimCaseParseResult = std::variant<SimCase, SimCaseParseError>;

std::string format_sim_case(const SimCase& c);
SimCaseParseResult parse_sim_case(std::string_view text);

// --- shrinking support -------------------------------------------------
//
// Structural reductions used by the delta-debugging shrinker. Each
// returns a new, self-consistent SimCase; they never mutate the input.

// Removes one AD: drops its links, flows and events touching it, remaps
// every surviving AdId (ids are dense), rewrites policy terms (dropping
// terms owned by the victim, and pruning it from AdSets / avoid lists).
[[nodiscard]] SimCase remove_ad(const SimCase& c, AdId victim);

// Removes one link (and any link-down events scripted for it).
[[nodiscard]] SimCase remove_link(const SimCase& c, AdId a, AdId b);

// Rebuilds the case with a subset of policy terms / flows / events.
[[nodiscard]] SimCase with_terms(const SimCase& c,
                                 const std::vector<PolicyTerm>& terms);
[[nodiscard]] SimCase with_flows(const SimCase& c,
                                 const std::vector<FlowSpec>& flows);
[[nodiscard]] SimCase with_events(const SimCase& c,
                                  const std::vector<SimEvent>& events);

}  // namespace idr
