#include "simtest/shrink.hpp"

#include <algorithm>
#include <utility>

namespace idr {
namespace {

// Zeller's ddmin, minimizing a list while `fails(subset)` keeps holding.
// `check` is the budget-counted predicate over candidate item subsets.
template <typename T>
std::vector<T> ddmin(std::vector<T> items,
                     const std::function<bool(const std::vector<T>&)>& check) {
  if (items.empty()) return items;
  std::size_t granularity = 2;
  while (items.size() >= 2) {
    const std::size_t chunk =
        std::max<std::size_t>(1, items.size() / granularity);
    bool reduced = false;
    for (std::size_t begin = 0; begin < items.size(); begin += chunk) {
      // Complement: everything except [begin, begin+chunk).
      std::vector<T> complement;
      complement.reserve(items.size());
      for (std::size_t i = 0; i < items.size(); ++i) {
        if (i < begin || i >= begin + chunk) complement.push_back(items[i]);
      }
      if (complement.size() < items.size() && check(complement)) {
        items = std::move(complement);
        granularity = std::max<std::size_t>(2, granularity - 1);
        reduced = true;
        break;
      }
    }
    if (!reduced) {
      if (granularity >= items.size()) break;
      granularity = std::min(items.size(), granularity * 2);
    }
  }
  // Final 1-minimality pass: drop single items while possible.
  if (items.size() == 1) {
    std::vector<T> empty;
    if (check(empty)) items.clear();
  }
  return items;
}

std::vector<PolicyTerm> all_terms(const SimCase& c) {
  std::vector<PolicyTerm> out;
  for (const Ad& ad : c.topo.ads()) {
    for (const PolicyTerm& term : c.policies.terms(ad.id)) {
      out.push_back(term);
    }
  }
  return out;
}

}  // namespace

FailurePredicate signature_predicate(std::vector<std::string> signatures,
                                     DiffOptions options) {
  std::sort(signatures.begin(), signatures.end());
  signatures.erase(std::unique(signatures.begin(), signatures.end()),
                   signatures.end());
  // Only the implicated design points need to run, and one run suffices
  // (determinism is a property of the original case, verified up front).
  if (options.archs.empty()) {
    std::vector<std::string> archs;
    for (const std::string& sig : signatures) {
      const std::size_t colon = sig.find(':');
      if (colon != std::string::npos) archs.push_back(sig.substr(0, colon));
    }
    std::sort(archs.begin(), archs.end());
    archs.erase(std::unique(archs.begin(), archs.end()), archs.end());
    options.archs = std::move(archs);
  }
  options.check_determinism = false;
  return [signatures = std::move(signatures),
          options = std::move(options)](const SimCase& c) {
    const std::vector<std::string> got =
        run_differential(c, options).signatures();
    return std::includes(got.begin(), got.end(), signatures.begin(),
                         signatures.end());
  };
}

ShrinkResult shrink_sim_case(const SimCase& failing,
                             const FailurePredicate& fails,
                             const ShrinkOptions& options) {
  ShrinkResult result;
  result.minimized = failing;
  SimCase& best = result.minimized;

  auto check = [&](const SimCase& candidate) {
    if (result.checks >= options.max_checks) return false;
    ++result.checks;
    return fails(candidate);
  };

  bool progress = true;
  while (progress && result.checks < options.max_checks) {
    progress = false;
    ++result.rounds;

    // 1. Schedule events.
    if (!best.events.empty()) {
      const std::function<bool(const std::vector<SimEvent>&)> ev_check =
          [&](const std::vector<SimEvent>& subset) {
            return check(with_events(best, subset));
          };
      std::vector<SimEvent> events = ddmin(best.events, ev_check);
      if (events.size() < best.events.size()) {
        best = with_events(best, events);
        progress = true;
      }
    }

    // 2. Flows.
    if (!best.flows.empty()) {
      const std::function<bool(const std::vector<FlowSpec>&)> flow_check =
          [&](const std::vector<FlowSpec>& subset) {
            return check(with_flows(best, subset));
          };
      std::vector<FlowSpec> flows = ddmin(best.flows, flow_check);
      if (flows.size() < best.flows.size()) {
        best = with_flows(best, flows);
        progress = true;
      }
    }

    // 3. Policy terms.
    {
      const std::vector<PolicyTerm> terms = all_terms(best);
      if (!terms.empty()) {
        const std::function<bool(const std::vector<PolicyTerm>&)> term_check =
            [&](const std::vector<PolicyTerm>& subset) {
              return check(with_terms(best, subset));
            };
        std::vector<PolicyTerm> kept = ddmin(terms, term_check);
        if (kept.size() < terms.size()) {
          best = with_terms(best, kept);
          progress = true;
        }
      }
    }

    // 4. Links (greedy, highest id first so indices stay stable).
    for (std::size_t i = best.topo.link_count(); i-- > 0;) {
      if (result.checks >= options.max_checks) break;
      const Link& link = best.topo.links()[i];
      SimCase candidate = remove_link(best, link.a, link.b);
      if (check(candidate)) {
        best = std::move(candidate);
        progress = true;
      }
    }

    // 5. Whole ADs (greedy; remove_ad renumbers, so restart the scan
    //    after every success).
    {
      bool removed = true;
      while (removed && best.topo.ad_count() > 2 &&
             result.checks < options.max_checks) {
        removed = false;
        for (std::size_t i = best.topo.ad_count(); i-- > 0;) {
          if (result.checks >= options.max_checks) break;
          SimCase candidate =
              remove_ad(best, AdId{static_cast<std::uint32_t>(i)});
          if (check(candidate)) {
            best = std::move(candidate);
            progress = true;
            removed = true;
            break;
          }
        }
      }
    }

    // 6. Horizon.
    if (options.shrink_horizon) {
      while (best.horizon_ms > options.min_horizon_ms &&
             result.checks < options.max_checks) {
        SimCase candidate = best;
        candidate.horizon_ms =
            std::max(options.min_horizon_ms, best.horizon_ms * 0.7);
        if (candidate.horizon_ms >= best.horizon_ms) break;
        if (!check(candidate)) break;
        best = std::move(candidate);
        progress = true;
      }
    }
  }
  return result;
}

}  // namespace idr
