#include "simtest/simcase.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <sstream>
#include <utility>

#include "policy/dsl.hpp"
#include "topology/parse.hpp"

namespace idr {

namespace {

std::string fmt_double(double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

const char* event_keyword(SimEvent::Kind kind) {
  switch (kind) {
    case SimEvent::Kind::kLinkDown: return "link-down";
    case SimEvent::Kind::kCrash: return "crash";
    case SimEvent::Kind::kByzantine: return "byzantine";
    case SimEvent::Kind::kLinkFlap: return "link-flap";
    case SimEvent::Kind::kRestartStorm: return "restart-storm";
  }
  return "?";
}

std::optional<Qos> qos_from(std::string_view s) {
  for (std::uint8_t q = 0; q < kQosCount; ++q) {
    if (s == to_string(static_cast<Qos>(q))) return static_cast<Qos>(q);
  }
  return std::nullopt;
}

std::optional<UserClass> uci_from(std::string_view s) {
  for (std::uint8_t u = 0; u < kUserClassCount; ++u) {
    if (s == to_string(static_cast<UserClass>(u))) {
      return static_cast<UserClass>(u);
    }
  }
  return std::nullopt;
}

std::optional<Misbehavior> misbehavior_from(std::string_view s) {
  for (std::uint8_t m = 1; m <= 4; ++m) {
    if (s == to_string(static_cast<Misbehavior>(m))) {
      return static_cast<Misbehavior>(m);
    }
  }
  return std::nullopt;
}

// One "key=value" token; returns false on malformed input.
bool split_kv(std::string_view token, std::string_view& key,
              std::string_view& value) {
  const std::size_t eq = token.find('=');
  if (eq == std::string_view::npos || eq == 0) return false;
  key = token.substr(0, eq);
  value = token.substr(eq + 1);
  return true;
}

std::vector<std::string_view> tokenize(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    std::size_t j = i;
    while (j < line.size() && line[j] != ' ' && line[j] != '\t') ++j;
    if (j > i) out.push_back(line.substr(i, j - i));
    i = j;
  }
  return out;
}

struct KvScanner {
  std::string* error;
  bool parsed_double(std::string_view value, double& out) const {
    char* end = nullptr;
    const std::string owned(value);
    out = std::strtod(owned.c_str(), &end);
    if (end != owned.c_str() + owned.size()) {
      *error = "bad number '" + owned + "'";
      return false;
    }
    return true;
  }
  bool parsed_u64(std::string_view value, std::uint64_t& out) const {
    char* end = nullptr;
    const std::string owned(value);
    out = std::strtoull(owned.c_str(), &end, 10);
    if (end != owned.c_str() + owned.size()) {
      *error = "bad integer '" + owned + "'";
      return false;
    }
    return true;
  }
};

}  // namespace

std::string format_sim_case(const SimCase& c) {
  std::string out;
  out += "case name=" + c.name + " seed=" + std::to_string(c.seed) +
         " horizon-ms=" + fmt_double(c.horizon_ms) + "\n";
  out += "faults duplicate=" + fmt_double(c.duplicate_rate) +
         " reorder=" + fmt_double(c.reorder_rate) +
         " reorder-extra-ms=" + fmt_double(c.reorder_extra_ms) +
         " keepalive-ms=" + fmt_double(c.keepalive_interval_ms) +
         " misses=" + std::to_string(c.keepalive_misses) +
         " refresh-ms=" + fmt_double(c.periodic_refresh_ms) +
         " detect-ms=" + fmt_double(c.detection_delay_ms) + "\n";
  out += format_topology(c.topo);
  out += format_policies(c.topo, c.policies);
  for (const FlowSpec& flow : c.flows) {
    out += "flow src=" + c.topo.ad(flow.src).name +
           " dst=" + c.topo.ad(flow.dst).name + " qos=";
    out += to_string(flow.qos);
    out += " uci=";
    out += to_string(flow.uci);
    out += " hour=" + std::to_string(flow.hour) + "\n";
  }
  for (const SimEvent& e : c.events) {
    out += "event ";
    out += event_keyword(e.kind);
    out += " at=" + fmt_double(e.at_ms);
    switch (e.kind) {
      case SimEvent::Kind::kLinkDown:
        out += " a=" + c.topo.ad(e.a).name + " b=" + c.topo.ad(e.b).name +
               " repair-ms=" + fmt_double(e.repair_ms);
        break;
      case SimEvent::Kind::kCrash:
        out += " ad=" + c.topo.ad(e.ad).name +
               " restart-ms=" + fmt_double(e.repair_ms);
        break;
      case SimEvent::Kind::kByzantine:
        out += " ad=" + c.topo.ad(e.ad).name + " kind=";
        out += to_string(e.misbehavior);
        if (e.misbehavior == Misbehavior::kFalseOrigin) {
          out += " victim=" + c.topo.ad(e.victim).name;
        }
        break;
      case SimEvent::Kind::kLinkFlap:
        out += " a=" + c.topo.ad(e.a).name + " b=" + c.topo.ad(e.b).name +
               " period-ms=" + fmt_double(e.period_ms) +
               " cycles=" + std::to_string(e.cycles);
        break;
      case SimEvent::Kind::kRestartStorm:
        out += " ad=" + c.topo.ad(e.ad).name +
               " period-ms=" + fmt_double(e.period_ms) +
               " cycles=" + std::to_string(e.cycles);
        break;
    }
    out += "\n";
  }
  return out;
}

SimCaseParseResult parse_sim_case(std::string_view text) {
  SimCase c;
  bool saw_case = false;

  // The topology and policy sections reuse the existing languages: their
  // lines are collected verbatim and handed to parse_topology /
  // parse_policies, remembering original line numbers for diagnostics.
  std::string topo_text;
  std::vector<std::size_t> topo_lines;
  std::string policy_text;
  std::vector<std::size_t> policy_lines;
  struct Deferred {
    std::size_t line;
    std::string text;
  };
  std::vector<Deferred> flow_lines;
  std::vector<Deferred> event_lines;

  std::size_t line_no = 0;
  std::size_t pos = 0;
  std::string err;
  const KvScanner scan{&err};
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view line = text.substr(
        pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
    ++line_no;
    if (const std::size_t hash = line.find('#');
        hash != std::string_view::npos) {
      line = line.substr(0, hash);
    }
    const std::vector<std::string_view> tokens = tokenize(line);
    if (tokens.empty()) continue;
    const std::string_view head = tokens[0];

    auto fail = [&](std::string message) -> SimCaseParseResult {
      return SimCaseParseError{line_no, std::move(message)};
    };

    if (head == "ad" || head == "link") {
      topo_text.append(line);
      topo_text += '\n';
      topo_lines.push_back(line_no);
      continue;
    }
    if (head == "term" || head == "source") {
      policy_text.append(line);
      policy_text += '\n';
      policy_lines.push_back(line_no);
      continue;
    }
    if (head == "flow") {
      flow_lines.push_back({line_no, std::string(line)});
      continue;
    }
    if (head == "event") {
      event_lines.push_back({line_no, std::string(line)});
      continue;
    }
    if (head == "case") {
      saw_case = true;
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        std::string_view key, value;
        if (!split_kv(tokens[i], key, value)) {
          return fail("expected key=value, got '" + std::string(tokens[i]) +
                      "'");
        }
        if (key == "name") {
          c.name = std::string(value);
        } else if (key == "seed") {
          std::uint64_t v;
          if (!scan.parsed_u64(value, v)) return fail(err);
          c.seed = v;
        } else if (key == "horizon-ms") {
          if (!scan.parsed_double(value, c.horizon_ms)) return fail(err);
        } else {
          return fail("unknown case attribute '" + std::string(key) + "'");
        }
      }
      continue;
    }
    if (head == "faults") {
      for (std::size_t i = 1; i < tokens.size(); ++i) {
        std::string_view key, value;
        if (!split_kv(tokens[i], key, value)) {
          return fail("expected key=value, got '" + std::string(tokens[i]) +
                      "'");
        }
        double* dst = nullptr;
        if (key == "duplicate") dst = &c.duplicate_rate;
        else if (key == "reorder") dst = &c.reorder_rate;
        else if (key == "reorder-extra-ms") dst = &c.reorder_extra_ms;
        else if (key == "keepalive-ms") dst = &c.keepalive_interval_ms;
        else if (key == "refresh-ms") dst = &c.periodic_refresh_ms;
        else if (key == "detect-ms") dst = &c.detection_delay_ms;
        if (dst != nullptr) {
          if (!scan.parsed_double(value, *dst)) return fail(err);
          continue;
        }
        if (key == "misses") {
          std::uint64_t v;
          if (!scan.parsed_u64(value, v)) return fail(err);
          c.keepalive_misses = static_cast<std::uint32_t>(v);
          continue;
        }
        return fail("unknown faults attribute '" + std::string(key) + "'");
      }
      continue;
    }
    return fail("unknown statement '" + std::string(head) + "'");
  }

  if (!saw_case) return SimCaseParseError{1, "missing 'case' header"};

  TopoParseResult topo = parse_topology(topo_text);
  if (const auto* e = std::get_if<TopoParseError>(&topo)) {
    const std::size_t original =
        e->line >= 1 && e->line <= topo_lines.size() ? topo_lines[e->line - 1]
                                                     : 0;
    return SimCaseParseError{original, e->message};
  }
  c.topo = std::move(std::get<Topology>(topo));

  DslResult policies = parse_policies(c.topo, policy_text);
  if (const auto* e = std::get_if<DslError>(&policies)) {
    const std::size_t original = e->line >= 1 && e->line <= policy_lines.size()
                                     ? policy_lines[e->line - 1]
                                     : 0;
    return SimCaseParseError{original, e->message};
  }
  c.policies = std::move(std::get<PolicySet>(policies));
  if (c.policies.ad_count() < c.topo.ad_count()) {
    c.policies.resize(c.topo.ad_count());
  }

  auto resolve = [&](std::string_view name, std::size_t line,
                     AdId& out) -> std::optional<SimCaseParseError> {
    const std::optional<AdId> id = find_ad_by_name(c.topo, name);
    if (!id) {
      return SimCaseParseError{line, "unknown AD '" + std::string(name) + "'"};
    }
    out = *id;
    return std::nullopt;
  };

  for (const Deferred& d : flow_lines) {
    FlowSpec flow;
    bool have_src = false;
    bool have_dst = false;
    const std::vector<std::string_view> tokens = tokenize(d.text);
    for (std::size_t i = 1; i < tokens.size(); ++i) {
      std::string_view key, value;
      if (!split_kv(tokens[i], key, value)) {
        return SimCaseParseError{
            d.line, "expected key=value, got '" + std::string(tokens[i]) + "'"};
      }
      if (key == "src") {
        if (auto e = resolve(value, d.line, flow.src)) return *e;
        have_src = true;
      } else if (key == "dst") {
        if (auto e = resolve(value, d.line, flow.dst)) return *e;
        have_dst = true;
      } else if (key == "qos") {
        const auto q = qos_from(value);
        if (!q) {
          return SimCaseParseError{d.line,
                                   "unknown qos '" + std::string(value) + "'"};
        }
        flow.qos = *q;
      } else if (key == "uci") {
        const auto u = uci_from(value);
        if (!u) {
          return SimCaseParseError{d.line,
                                   "unknown uci '" + std::string(value) + "'"};
        }
        flow.uci = *u;
      } else if (key == "hour") {
        std::uint64_t v;
        if (!scan.parsed_u64(value, v) || v > 23) {
          return SimCaseParseError{d.line, "bad hour"};
        }
        flow.hour = static_cast<std::uint8_t>(v);
      } else {
        return SimCaseParseError{
            d.line, "unknown flow attribute '" + std::string(key) + "'"};
      }
    }
    if (!have_src || !have_dst) {
      return SimCaseParseError{d.line, "flow needs src= and dst="};
    }
    c.flows.push_back(flow);
  }

  for (const Deferred& d : event_lines) {
    const std::vector<std::string_view> tokens = tokenize(d.text);
    if (tokens.size() < 2) {
      return SimCaseParseError{d.line, "event needs a kind"};
    }
    SimEvent e;
    const std::string_view kind = tokens[1];
    if (kind == "link-down") e.kind = SimEvent::Kind::kLinkDown;
    else if (kind == "crash") e.kind = SimEvent::Kind::kCrash;
    else if (kind == "byzantine") e.kind = SimEvent::Kind::kByzantine;
    else if (kind == "link-flap") e.kind = SimEvent::Kind::kLinkFlap;
    else if (kind == "restart-storm") e.kind = SimEvent::Kind::kRestartStorm;
    else {
      return SimCaseParseError{
          d.line, "unknown event kind '" + std::string(kind) + "'"};
    }
    bool have_link_a = false;
    bool have_link_b = false;
    bool have_ad = false;
    for (std::size_t i = 2; i < tokens.size(); ++i) {
      std::string_view key, value;
      if (!split_kv(tokens[i], key, value)) {
        return SimCaseParseError{
            d.line, "expected key=value, got '" + std::string(tokens[i]) + "'"};
      }
      if (key == "at") {
        if (!scan.parsed_double(value, e.at_ms)) {
          return SimCaseParseError{d.line, err};
        }
      } else if (key == "a") {
        if (auto pe = resolve(value, d.line, e.a)) return *pe;
        have_link_a = true;
      } else if (key == "b") {
        if (auto pe = resolve(value, d.line, e.b)) return *pe;
        have_link_b = true;
      } else if (key == "repair-ms" || key == "restart-ms") {
        if (!scan.parsed_double(value, e.repair_ms)) {
          return SimCaseParseError{d.line, err};
        }
      } else if (key == "ad") {
        if (auto pe = resolve(value, d.line, e.ad)) return *pe;
        have_ad = true;
      } else if (key == "kind") {
        const auto m = misbehavior_from(value);
        if (!m) {
          return SimCaseParseError{
              d.line, "unknown misbehavior '" + std::string(value) + "'"};
        }
        e.misbehavior = *m;
      } else if (key == "victim") {
        if (auto pe = resolve(value, d.line, e.victim)) return *pe;
      } else if (key == "period-ms") {
        if (!scan.parsed_double(value, e.period_ms)) {
          return SimCaseParseError{d.line, err};
        }
      } else if (key == "cycles") {
        std::uint64_t cycles = 0;
        if (!scan.parsed_u64(value, cycles)) {
          return SimCaseParseError{d.line, err};
        }
        e.cycles = static_cast<std::uint32_t>(cycles);
      } else {
        return SimCaseParseError{
            d.line, "unknown event attribute '" + std::string(key) + "'"};
      }
    }
    switch (e.kind) {
      case SimEvent::Kind::kLinkDown:
        if (!have_link_a || !have_link_b) {
          return SimCaseParseError{d.line, "link-down needs a= and b="};
        }
        if (!c.topo.find_link(e.a, e.b)) {
          return SimCaseParseError{d.line, "no such link"};
        }
        break;
      case SimEvent::Kind::kCrash:
        if (!have_ad) return SimCaseParseError{d.line, "crash needs ad="};
        break;
      case SimEvent::Kind::kByzantine:
        if (!have_ad) {
          return SimCaseParseError{d.line, "byzantine needs ad="};
        }
        if (e.misbehavior == Misbehavior::kNone) {
          return SimCaseParseError{d.line, "byzantine needs kind="};
        }
        break;
      case SimEvent::Kind::kLinkFlap:
        if (!have_link_a || !have_link_b) {
          return SimCaseParseError{d.line, "link-flap needs a= and b="};
        }
        if (!c.topo.find_link(e.a, e.b)) {
          return SimCaseParseError{d.line, "no such link"};
        }
        if (e.period_ms <= 0.0 || e.cycles == 0) {
          return SimCaseParseError{
              d.line, "link-flap needs period-ms>0 and cycles>=1"};
        }
        break;
      case SimEvent::Kind::kRestartStorm:
        if (!have_ad) {
          return SimCaseParseError{d.line, "restart-storm needs ad="};
        }
        if (e.period_ms <= 0.0 || e.cycles == 0) {
          return SimCaseParseError{
              d.line, "restart-storm needs period-ms>0 and cycles>=1"};
        }
        break;
    }
    c.events.push_back(e);
  }

  return c;
}

// --- shrinking reductions ----------------------------------------------

namespace {

// Copies everything except the structural members the caller rebuilds.
SimCase clone_scalars(const SimCase& c) {
  SimCase out;
  out.name = c.name;
  out.seed = c.seed;
  out.horizon_ms = c.horizon_ms;
  out.duplicate_rate = c.duplicate_rate;
  out.reorder_rate = c.reorder_rate;
  out.reorder_extra_ms = c.reorder_extra_ms;
  out.keepalive_interval_ms = c.keepalive_interval_ms;
  out.keepalive_misses = c.keepalive_misses;
  out.periodic_refresh_ms = c.periodic_refresh_ms;
  out.detection_delay_ms = c.detection_delay_ms;
  return out;
}

AdSet remap_set(const AdSet& set, const std::vector<std::int64_t>& remap) {
  if (set.is_any()) return AdSet::any();
  std::vector<AdId> members;
  for (const AdId m : set.members()) {
    if (remap[m.v] >= 0) {
      members.push_back(AdId{static_cast<std::uint32_t>(remap[m.v])});
    }
  }
  return AdSet::of(std::move(members));
}

}  // namespace

SimCase remove_ad(const SimCase& c, AdId victim) {
  SimCase out = clone_scalars(c);

  std::vector<std::int64_t> remap(c.topo.ad_count(), -1);
  for (const Ad& ad : c.topo.ads()) {
    if (ad.id == victim) continue;
    remap[ad.id.v] = static_cast<std::int64_t>(
        out.topo.add_ad(ad.cls, ad.role, ad.name).v);
  }
  auto mapped = [&](AdId old) {
    return AdId{static_cast<std::uint32_t>(remap[old.v])};
  };
  for (const Link& l : c.topo.links()) {
    if (l.a == victim || l.b == victim) continue;
    out.topo.add_link(mapped(l.a), mapped(l.b), l.cls, l.delay_ms, l.metric);
  }

  out.policies.resize(out.topo.ad_count());
  for (const Ad& ad : c.topo.ads()) {
    if (ad.id == victim) continue;
    for (const PolicyTerm& term : c.policies.terms(ad.id)) {
      PolicyTerm t = term;
      t.owner = mapped(term.owner);
      t.sources = remap_set(term.sources, remap);
      t.dests = remap_set(term.dests, remap);
      t.prev_hops = remap_set(term.prev_hops, remap);
      t.next_hops = remap_set(term.next_hops, remap);
      out.policies.add_term(std::move(t));
    }
    const SourcePolicy& sp = c.policies.source_policy(ad.id);
    SourcePolicy& nsp = out.policies.source_policy(mapped(ad.id));
    nsp.max_hops = sp.max_hops;
    nsp.prefer_min_cost = sp.prefer_min_cost;
    for (const AdId a : sp.avoid) {
      if (remap[a.v] >= 0) nsp.avoid.push_back(mapped(a));
    }
  }

  for (const FlowSpec& flow : c.flows) {
    if (flow.src == victim || flow.dst == victim) continue;
    FlowSpec f = flow;
    f.src = mapped(flow.src);
    f.dst = mapped(flow.dst);
    out.flows.push_back(f);
  }

  for (const SimEvent& e : c.events) {
    SimEvent n = e;
    switch (e.kind) {
      case SimEvent::Kind::kLinkDown:
      case SimEvent::Kind::kLinkFlap:
        if (e.a == victim || e.b == victim) continue;
        n.a = mapped(e.a);
        n.b = mapped(e.b);
        break;
      case SimEvent::Kind::kCrash:
      case SimEvent::Kind::kRestartStorm:
        if (e.ad == victim) continue;
        n.ad = mapped(e.ad);
        break;
      case SimEvent::Kind::kByzantine:
        if (e.ad == victim) continue;
        if (e.misbehavior == Misbehavior::kFalseOrigin && e.victim == victim) {
          continue;  // hijack of a removed AD is meaningless
        }
        n.ad = mapped(e.ad);
        if (e.misbehavior == Misbehavior::kFalseOrigin) {
          n.victim = mapped(e.victim);
        }
        break;
    }
    out.events.push_back(n);
  }
  return out;
}

SimCase remove_link(const SimCase& c, AdId a, AdId b) {
  SimCase out = clone_scalars(c);
  for (const Ad& ad : c.topo.ads()) out.topo.add_ad(ad.cls, ad.role, ad.name);
  for (const Link& l : c.topo.links()) {
    if ((l.a == a && l.b == b) || (l.a == b && l.b == a)) continue;
    out.topo.add_link(l.a, l.b, l.cls, l.delay_ms, l.metric);
  }
  out.policies = c.policies;
  out.flows = c.flows;
  for (const SimEvent& e : c.events) {
    if ((e.kind == SimEvent::Kind::kLinkDown ||
         e.kind == SimEvent::Kind::kLinkFlap) &&
        ((e.a == a && e.b == b) || (e.a == b && e.b == a))) {
      continue;
    }
    out.events.push_back(e);
  }
  return out;
}

namespace {

SimCase clone_structure(const SimCase& c) {
  SimCase out = clone_scalars(c);
  for (const Ad& ad : c.topo.ads()) out.topo.add_ad(ad.cls, ad.role, ad.name);
  for (const Link& l : c.topo.links()) {
    out.topo.add_link(l.a, l.b, l.cls, l.delay_ms, l.metric);
  }
  out.policies = c.policies;
  out.flows = c.flows;
  out.events = c.events;
  return out;
}

}  // namespace

SimCase with_terms(const SimCase& c, const std::vector<PolicyTerm>& terms) {
  SimCase out = clone_structure(c);
  for (const Ad& ad : c.topo.ads()) out.policies.clear_terms(ad.id);
  for (const PolicyTerm& term : terms) out.policies.add_term(term);
  return out;
}

SimCase with_flows(const SimCase& c, const std::vector<FlowSpec>& flows) {
  SimCase out = clone_structure(c);
  out.flows = flows;
  return out;
}

SimCase with_events(const SimCase& c, const std::vector<SimEvent>& events) {
  SimCase out = clone_structure(c);
  out.events = events;
  return out;
}

}  // namespace idr
