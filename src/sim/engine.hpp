// Discrete-event simulation engine: a single-threaded event queue with a
// simulated clock in milliseconds. Events scheduled for the same instant
// run in scheduling order (FIFO via sequence numbers), which keeps every
// experiment deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace idr {

using SimTime = double;  // simulated milliseconds

class Engine {
 public:
  using Callback = std::function<void()>;

  [[nodiscard]] SimTime now() const noexcept { return now_; }

  // Schedule at an absolute simulated time (>= now).
  void at(SimTime t, Callback fn);
  // Schedule `delay` ms from now.
  void after(SimTime delay, Callback fn) { at(now_ + delay, std::move(fn)); }

  // Run the earliest pending event; false if the queue is empty.
  bool step();

  // Drain the queue. Returns events processed. `max_events` guards against
  // runaway protocols (a protocol bug, not a simulation feature).
  std::size_t run(std::size_t max_events = 50'000'000);

  // Run events with time <= t, then advance the clock to t.
  std::size_t run_until(SimTime t);

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  [[nodiscard]] std::size_t events_processed() const noexcept {
    return processed_;
  }

 private:
  struct Event {
    SimTime t;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.t != b.t) return a.t > b.t;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
};

}  // namespace idr
