// Discrete-event simulation engine with a simulated clock in milliseconds
// and two execution backends:
//
//  - sequential (the reference): a single event queue drained in key
//    order, with two interchangeable scheduler implementations that
//    produce the exact same pop order:
//      * kCalendar: a calendar queue (Brown 1988) with power-of-two
//        bucket ring and amortized O(1) enqueue/dequeue. The hot path at
//        paper scale (~1e5 ADs) where a binary heap's O(log n) and cache
//        misses dominate.
//      * kBinaryHeap: the original binary-heap order, kept as the
//        reference implementation for the differential equivalence tests.
//  - sharded parallel (enable_sharding): the AD graph is partitioned into
//    shards, each with its own calendar queue, synchronized conservatively
//    in windows bounded by the minimum cross-shard link delay (see
//    shard.hpp). Results are byte-identical to the sequential backend.
//
// Determinism across backends AND shard counts rests on the event key.
// Every event carries (t, stream, seq):
//  - t: absolute simulated time;
//  - stream: 0 is the control stream (driver/harness events: failure
//    injection, invariant sweeps, grace deadlines); stream ad+1 belongs
//    to AD `ad` (its timers and the frames it sends). At equal t, control
//    events sort first, then AD streams by id.
//  - seq: a per-stream counter bumped at schedule time. A stream is only
//    ever scheduled on by its single owner (the AD's own events, which
//    execute on one shard, or the serialized control phase), so the
//    assignment order -- hence the key -- is identical no matter how the
//    graph is sharded. Events for the same instant from one stream run in
//    scheduling order (FIFO), which keeps every experiment deterministic.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace idr {

using SimTime = double;  // simulated milliseconds

// Event-key stream id; see file comment. kControlStream sorts before every
// AD stream at equal time.
using StreamId = std::uint32_t;
inline constexpr StreamId kControlStream = 0;

enum class SchedulerKind : std::uint8_t {
  kCalendar = 0,
  kBinaryHeap = 1,
};

struct ShardPlan;  // shard.hpp

// Deterministic accounting of a sharded run, independent of thread count
// and host: critical_path_events is the serial spine (per window, the
// busiest shard; plus every serialized control event), so
// available-parallelism speedup = total / critical_path regardless of how
// many cores actually ran the windows.
struct ParallelStats {
  std::uint64_t windows = 0;
  std::uint64_t control_events = 0;        // serialized between windows
  std::uint64_t parallel_events = 0;       // executed inside windows
  std::uint64_t critical_path_events = 0;  // sum of per-window maxima + control

  [[nodiscard]] double critical_path_speedup() const noexcept {
    if (critical_path_events == 0) return 1.0;
    return static_cast<double>(parallel_events + control_events) /
           static_cast<double>(critical_path_events);
  }
};

namespace detail {

class ShardRuntime;

struct SimEvent {
  SimTime t;
  StreamId stream;
  std::uint64_t seq;
  std::function<void()> fn;
};

// Total order shared by every backend: earliest time first, control
// stream before AD streams, FIFO within a stream via the per-stream
// sequence number. Written as "a is LATER than b" so it plugs into
// max-heap algorithms directly.
struct EventLater {
  bool operator()(const SimEvent& a, const SimEvent& b) const noexcept {
    if (a.t != b.t) return a.t > b.t;
    if (a.stream != b.stream) return a.stream > b.stream;
    return a.seq > b.seq;
  }
};

// Calendar queue over SimEvents. Buckets form a power-of-two ring indexed
// by the absolute "day" floor(t / width); each bucket is kept sorted
// DESCENDING by the event key so the minimum is bucket.back() and pops
// are pop_back(). The bucket width only affects performance, never pop
// order, so resizes (which recompute it from the live event population)
// cannot perturb simulation results.
class CalendarQueue {
 public:
  CalendarQueue() { buckets_.resize(kMinBuckets); }

  void push(SimEvent ev);
  // Pops the earliest event. Precondition: !empty().
  SimEvent pop();
  // Time of the earliest event. Precondition: !empty().
  [[nodiscard]] SimTime min_time();

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  // Introspection for the scheduler unit tests.
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return buckets_.size();
  }
  [[nodiscard]] double width() const noexcept { return width_; }

  static constexpr std::size_t kMinBuckets = 8;  // power of two

 private:
  [[nodiscard]] std::uint64_t day_of(SimTime t) const noexcept {
    return static_cast<std::uint64_t>(t / width_);
  }
  // Index of the bucket holding the earliest event; advances day_ to that
  // event's day. Precondition: !empty().
  std::size_t find_min_bucket();
  static void insert_sorted(std::vector<SimEvent>& bucket, SimEvent ev);
  void rehash(std::size_t nbuckets);

  std::vector<std::vector<SimEvent>> buckets_;
  std::size_t mask_ = kMinBuckets - 1;
  double width_ = 1.0;       // bucket width in simulated ms
  std::uint64_t day_ = 0;    // absolute bucket index the scan resumes from
  std::size_t size_ = 0;
};

// Per-thread execution context: which engine (if any) this thread is
// currently running a shard window for, the running event's time, and the
// shard it executes on. Engine::now() resolves through it so protocol
// code sees its own event's clock even while other shards run elsewhere.
struct ExecContext {
  const void* engine = nullptr;
  SimTime now = 0.0;
  std::uint32_t shard = 0;
  bool in_window = false;
};
[[nodiscard]] ExecContext& exec_context() noexcept;

}  // namespace detail

class Engine {
 public:
  using Callback = std::function<void()>;

  explicit Engine(SchedulerKind scheduler = SchedulerKind::kCalendar);
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  // Clock of the calling execution context: inside a shard window, the
  // running event's time on that shard; otherwise the global clock.
  [[nodiscard]] SimTime now() const noexcept;
  [[nodiscard]] SchedulerKind scheduler() const noexcept { return scheduler_; }

  // Schedule on the control stream at an absolute simulated time (>= now).
  // Control events are serialized between windows on a sharded engine and
  // may touch any AD; scheduling one from inside a shard window is a bug
  // (checked).
  void at(SimTime t, Callback fn);
  // Schedule `delay` ms from now (control stream).
  void after(SimTime delay, Callback fn) { at(now() + delay, std::move(fn)); }

  // Schedule on an AD stream. `stream` keys the deterministic order (the
  // scheduling AD + 1); `owner_ad` is the AD whose state the callback
  // touches, i.e. the shard the event executes on. For a timer both are
  // the same AD; for a frame the stream is the sender's, the owner the
  // receiver's. Only the stream's owner context may schedule on it.
  void at_node(SimTime t, StreamId stream, std::uint32_t owner_ad,
               Callback fn);
  void after_node(SimTime delay, StreamId stream, std::uint32_t owner_ad,
                  Callback fn) {
    at_node(now() + delay, stream, owner_ad, std::move(fn));
  }

  // Switch this engine to the sharded parallel backend. Must be called
  // before anything is scheduled. `threads` worker threads execute the
  // windows (0 = run windows inline on the driving thread -- identical
  // results, no thread overhead). See shard.hpp for the plan.
  void enable_sharding(const ShardPlan& plan, unsigned threads = 0);
  [[nodiscard]] bool sharded() const noexcept { return runtime_ != nullptr; }
  // Number of shards (1 when not sharded).
  [[nodiscard]] std::uint32_t shard_count() const noexcept;
  // Shard executing on the calling thread right now; 0 outside windows
  // (and always 0 on a non-sharded engine).
  [[nodiscard]] std::uint32_t current_shard() const noexcept;
  [[nodiscard]] std::uint32_t shard_of_ad(std::uint32_t ad) const noexcept;
  // Window/critical-path accounting; null on a non-sharded engine.
  [[nodiscard]] const ParallelStats* parallel_stats() const noexcept;

  // Run the earliest pending event; false if the queue is empty.
  // Sequential backend only.
  bool step();

  // Drain the queue. Returns events processed. `max_events` guards against
  // runaway protocols (a protocol bug, not a simulation feature).
  std::size_t run(std::size_t max_events = 50'000'000);

  // Run events with time <= t, then advance the clock to t.
  std::size_t run_until(SimTime t);

  [[nodiscard]] bool empty() const noexcept;
  [[nodiscard]] std::size_t pending() const noexcept;
  [[nodiscard]] std::size_t events_processed() const noexcept;

 private:
  friend class detail::ShardRuntime;

  [[nodiscard]] SimTime peek_time();
  void push_sequential(detail::SimEvent ev);
  // Next per-stream sequence number (sequential backend: grows the table
  // on demand; the sharded runtime pre-sizes it in enable_sharding).
  [[nodiscard]] std::uint64_t next_seq(StreamId stream);

  SchedulerKind scheduler_;
  detail::CalendarQueue calendar_;
  std::vector<detail::SimEvent> heap_;  // std::push_heap/pop_heap, EventLater
  SimTime now_ = 0.0;
  std::vector<std::uint64_t> stream_seq_;
  std::size_t processed_ = 0;
  std::unique_ptr<detail::ShardRuntime> runtime_;
};

}  // namespace idr
