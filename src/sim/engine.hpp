// Discrete-event simulation engine: a single-threaded event queue with a
// simulated clock in milliseconds. Events scheduled for the same instant
// run in scheduling order (FIFO via sequence numbers), which keeps every
// experiment deterministic.
//
// Two interchangeable scheduler backends produce the exact same pop order
// (total order on (time, seq)):
//  - kCalendar: a calendar queue (Brown 1988) with power-of-two bucket
//    ring and amortized O(1) enqueue/dequeue. The hot path at paper scale
//    (~1e5 ADs) where a binary heap's O(log n) and cache misses dominate.
//  - kBinaryHeap: the original binary-heap order, kept as the reference
//    implementation for the differential equivalence tests.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace idr {

using SimTime = double;  // simulated milliseconds

enum class SchedulerKind : std::uint8_t {
  kCalendar = 0,
  kBinaryHeap = 1,
};

namespace detail {

struct SimEvent {
  SimTime t;
  std::uint64_t seq;
  std::function<void()> fn;
};

// Total order shared by both backends: earliest time first, FIFO within a
// timestamp via the unique sequence number. Written as "a is LATER than b"
// so it plugs into max-heap algorithms directly.
struct EventLater {
  bool operator()(const SimEvent& a, const SimEvent& b) const noexcept {
    if (a.t != b.t) return a.t > b.t;
    return a.seq > b.seq;
  }
};

// Calendar queue over SimEvents. Buckets form a power-of-two ring indexed
// by the absolute "day" floor(t / width); each bucket is kept sorted
// DESCENDING by (t, seq) so the minimum is bucket.back() and pops are
// pop_back(). The bucket width only affects performance, never pop order,
// so resizes (which recompute it from the live event population) cannot
// perturb simulation results.
class CalendarQueue {
 public:
  CalendarQueue() { buckets_.resize(kMinBuckets); }

  void push(SimEvent ev);
  // Pops the earliest event. Precondition: !empty().
  SimEvent pop();
  // Time of the earliest event. Precondition: !empty().
  [[nodiscard]] SimTime min_time();

  [[nodiscard]] bool empty() const noexcept { return size_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  // Introspection for the scheduler unit tests.
  [[nodiscard]] std::size_t bucket_count() const noexcept {
    return buckets_.size();
  }
  [[nodiscard]] double width() const noexcept { return width_; }

  static constexpr std::size_t kMinBuckets = 8;  // power of two

 private:
  [[nodiscard]] std::uint64_t day_of(SimTime t) const noexcept {
    return static_cast<std::uint64_t>(t / width_);
  }
  // Index of the bucket holding the earliest event; advances day_ to that
  // event's day. Precondition: !empty().
  std::size_t find_min_bucket();
  static void insert_sorted(std::vector<SimEvent>& bucket, SimEvent ev);
  void rehash(std::size_t nbuckets);

  std::vector<std::vector<SimEvent>> buckets_;
  std::size_t mask_ = kMinBuckets - 1;
  double width_ = 1.0;       // bucket width in simulated ms
  std::uint64_t day_ = 0;    // absolute bucket index the scan resumes from
  std::size_t size_ = 0;
};

}  // namespace detail

class Engine {
 public:
  using Callback = std::function<void()>;

  explicit Engine(SchedulerKind scheduler = SchedulerKind::kCalendar)
      : scheduler_(scheduler) {}

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] SchedulerKind scheduler() const noexcept { return scheduler_; }

  // Schedule at an absolute simulated time (>= now).
  void at(SimTime t, Callback fn);
  // Schedule `delay` ms from now.
  void after(SimTime delay, Callback fn) { at(now_ + delay, std::move(fn)); }

  // Run the earliest pending event; false if the queue is empty.
  bool step();

  // Drain the queue. Returns events processed. `max_events` guards against
  // runaway protocols (a protocol bug, not a simulation feature).
  std::size_t run(std::size_t max_events = 50'000'000);

  // Run events with time <= t, then advance the clock to t.
  std::size_t run_until(SimTime t);

  [[nodiscard]] bool empty() const noexcept {
    return scheduler_ == SchedulerKind::kCalendar ? calendar_.empty()
                                                  : heap_.empty();
  }
  [[nodiscard]] std::size_t pending() const noexcept {
    return scheduler_ == SchedulerKind::kCalendar ? calendar_.size()
                                                  : heap_.size();
  }
  [[nodiscard]] std::size_t events_processed() const noexcept {
    return processed_;
  }

 private:
  [[nodiscard]] SimTime peek_time();

  SchedulerKind scheduler_;
  detail::CalendarQueue calendar_;
  std::vector<detail::SimEvent> heap_;  // std::push_heap/pop_heap, EventLater
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::size_t processed_ = 0;
};

}  // namespace idr
