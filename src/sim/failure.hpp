// Failure injection (paper §2.2: inter-AD links fail; protocols must be
// "somewhat adaptive" to inter-AD topology change). Schedules link
// failures/repairs and node crashes/restarts on the simulation clock,
// either scripted or drawn from exponential inter-arrival/repair
// distributions.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/network.hpp"
#include "util/prng.hpp"

namespace idr {

class FailureInjector {
 public:
  explicit FailureInjector(Network& net) : net_(net) {}

  // Scripted: link goes down at `at_ms`; comes back `duration_ms` later
  // (never, if duration_ms <= 0).
  void fail_link_at(LinkId link, SimTime at_ms, SimTime duration_ms = 0.0);

  // Scripted: the AD's node crashes at `at_ms` (all soft state lost) and
  // is restarted cold `duration_ms` later (never, if duration_ms <= 0;
  // restart requires the network to have a node factory).
  void crash_node_at(AdId ad, SimTime at_ms, SimTime duration_ms = 0.0);

  // Scripted flap process: starting at `onset_ms` the link alternates
  // down for duty * period_ms then up for the remainder, for `cycles`
  // full cycles, ending up. Each down transition counts as one injected
  // failure. The storm drivers seed one of these per chosen link.
  void flap_link(LinkId link, SimTime onset_ms, SimTime period_ms,
                 double duty, std::uint32_t cycles);

  // Scripted restart storm: `ad` crash/restarts for `cycles` full cycles
  // starting at onset_ms -- down for duty * period_ms, back up (cold
  // restart) for the remainder. The node ends each cycle alive. Counts
  // one crash per cycle.
  void restart_storm(AdId ad, SimTime onset_ms, SimTime period_ms,
                     double duty, std::uint32_t cycles);

  // Scripted: fail every link of `ad` at `at_ms` and restore them
  // `duration_ms` later -- a node outage modeled as its interfaces going
  // dark, which (unlike crash()) neighbors can observe through the
  // link-state oracle. Counts one failure per link taken down.
  void fail_node_links_at(AdId ad, SimTime at_ms, SimTime duration_ms);

  // Random background failures: each live link independently fails with
  // exponential inter-arrival `mean_uptime_ms` and repairs after
  // exponential `mean_downtime_ms`. New failures stop at `horizon_ms`;
  // the repair for an already-scheduled failure is always scheduled, so
  // no link is left down forever by the horizon cutoff.
  void random_failures(Prng& prng, SimTime mean_uptime_ms,
                       SimTime mean_downtime_ms, SimTime horizon_ms);

  // Random background node crashes, same process per AD. Requires a node
  // factory on the network for the restarts.
  void random_crashes(Prng& prng, SimTime mean_uptime_ms,
                      SimTime mean_downtime_ms, SimTime horizon_ms);

  [[nodiscard]] std::size_t failures_injected() const noexcept {
    return failures_;
  }
  [[nodiscard]] std::size_t crashes_injected() const noexcept {
    return crashes_;
  }

 private:
  void schedule_cycle(Prng prng, LinkId link, SimTime t,
                      SimTime mean_uptime_ms, SimTime mean_downtime_ms,
                      SimTime horizon_ms);
  void schedule_crash_cycle(Prng prng, AdId ad, SimTime t,
                            SimTime mean_uptime_ms, SimTime mean_downtime_ms,
                            SimTime horizon_ms);

  Network& net_;
  std::size_t failures_ = 0;
  std::size_t crashes_ = 0;
};

}  // namespace idr
