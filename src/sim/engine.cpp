#include "sim/engine.hpp"

#include <cassert>

#include "util/check.hpp"

namespace idr {

void Engine::at(SimTime t, Callback fn) {
  // Scheduling into the simulated past is a caller bug (typically a stale
  // absolute timestamp); clamp to now() so the event still runs, in FIFO
  // order with anything else due now, and trip debug builds loudly.
  assert(t >= now_ && "Engine::at: scheduling into the simulated past");
  if (t < now_) t = now_;
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

bool Engine::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const; move out via const_cast is UB-adjacent,
  // so copy the callback handle (std::function copy) and pop.
  Event ev = queue_.top();
  queue_.pop();
  now_ = ev.t;
  ++processed_;
  ev.fn();
  return true;
}

std::size_t Engine::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  IDR_CHECK_MSG(queue_.empty() || n < max_events,
                "simulation exceeded max_events (runaway protocol?)");
  return n;
}

std::size_t Engine::run_until(SimTime t) {
  std::size_t n = 0;
  while (!queue_.empty() && queue_.top().t <= t) {
    step();
    ++n;
  }
  if (t > now_) now_ = t;
  return n;
}

}  // namespace idr
