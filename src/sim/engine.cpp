#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "util/check.hpp"

namespace idr {
namespace detail {

void CalendarQueue::insert_sorted(std::vector<SimEvent>& bucket,
                                  SimEvent ev) {
  const auto it =
      std::upper_bound(bucket.begin(), bucket.end(), ev, EventLater{});
  bucket.insert(it, std::move(ev));
}

void CalendarQueue::push(SimEvent ev) {
  const std::uint64_t day = day_of(ev.t);
  // An event can land behind the scan position (e.g. scheduled "now" after
  // the scan already advanced past sparse buckets); rewind so it is found.
  if (day < day_) day_ = day;
  insert_sorted(buckets_[day & mask_], std::move(ev));
  ++size_;
  if (size_ > 2 * buckets_.size()) rehash(2 * buckets_.size());
}

std::size_t CalendarQueue::find_min_bucket() {
  // Scan the ring from day_: a non-empty bucket whose earliest event falls
  // inside the current day's window is the global minimum (any earlier
  // event would have to live in an earlier day, already scanned).
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t day = day_ + i;
    const std::vector<SimEvent>& b = buckets_[day & mask_];
    if (!b.empty() &&
        b.back().t < static_cast<double>(day + 1) * width_) {
      day_ = day;
      return day & mask_;
    }
  }
  // Every pending event is more than a full ring ahead: direct-search the
  // bucket minima (rare; only under very sparse far-future schedules).
  std::size_t best = 0;
  SimTime best_t = std::numeric_limits<SimTime>::infinity();
  std::uint64_t best_seq = std::numeric_limits<std::uint64_t>::max();
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b].empty()) continue;
    const SimEvent& ev = buckets_[b].back();
    if (ev.t < best_t || (ev.t == best_t && ev.seq < best_seq)) {
      best = b;
      best_t = ev.t;
      best_seq = ev.seq;
    }
  }
  day_ = day_of(best_t);
  return best;
}

SimTime CalendarQueue::min_time() {
  return buckets_[find_min_bucket()].back().t;
}

SimEvent CalendarQueue::pop() {
  std::vector<SimEvent>& b = buckets_[find_min_bucket()];
  SimEvent ev = std::move(b.back());
  b.pop_back();
  --size_;
  if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 2) {
    rehash(buckets_.size() / 2);
  }
  return ev;
}

void CalendarQueue::rehash(std::size_t nbuckets) {
  std::vector<SimEvent> all;
  all.reserve(size_);
  SimTime min_t = std::numeric_limits<SimTime>::infinity();
  SimTime max_t = -std::numeric_limits<SimTime>::infinity();
  for (std::vector<SimEvent>& b : buckets_) {
    for (SimEvent& ev : b) {
      min_t = std::min(min_t, ev.t);
      max_t = std::max(max_t, ev.t);
      all.push_back(std::move(ev));
    }
    b.clear();
  }
  // Deterministic width estimate: spread the live population over a third
  // of the buckets' worth of days. Purely a performance knob -- pop order
  // is (t, seq) regardless of the bucket geometry.
  double width = 1.0;
  if (all.size() >= 2 && max_t > min_t) {
    width = 3.0 * (max_t - min_t) / static_cast<double>(all.size());
    width = std::clamp(width, 1e-6, 1e12);
  }
  buckets_.assign(nbuckets, {});
  mask_ = nbuckets - 1;
  width_ = width;
  day_ = all.empty() ? 0 : day_of(min_t);
  for (SimEvent& ev : all) {
    insert_sorted(buckets_[day_of(ev.t) & mask_], std::move(ev));
  }
}

}  // namespace detail

void Engine::at(SimTime t, Callback fn) {
  // Scheduling into the simulated past is a caller bug (typically a stale
  // absolute timestamp); clamp to now() so the event still runs, in FIFO
  // order with anything else due now, and trip debug builds loudly.
  assert(t >= now_ && "Engine::at: scheduling into the simulated past");
  if (t < now_) t = now_;
  detail::SimEvent ev{t, next_seq_++, std::move(fn)};
  if (scheduler_ == SchedulerKind::kCalendar) {
    calendar_.push(std::move(ev));
  } else {
    heap_.push_back(std::move(ev));
    std::push_heap(heap_.begin(), heap_.end(), detail::EventLater{});
  }
}

SimTime Engine::peek_time() {
  if (scheduler_ == SchedulerKind::kCalendar) return calendar_.min_time();
  return heap_.front().t;
}

bool Engine::step() {
  if (empty()) return false;
  detail::SimEvent ev;
  if (scheduler_ == SchedulerKind::kCalendar) {
    ev = calendar_.pop();
  } else {
    std::pop_heap(heap_.begin(), heap_.end(), detail::EventLater{});
    ev = std::move(heap_.back());
    heap_.pop_back();
  }
  now_ = ev.t;
  ++processed_;
  ev.fn();
  return true;
}

std::size_t Engine::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  IDR_CHECK_MSG(empty() || n < max_events,
                "simulation exceeded max_events (runaway protocol?)");
  return n;
}

std::size_t Engine::run_until(SimTime t) {
  std::size_t n = 0;
  while (!empty() && peek_time() <= t) {
    step();
    ++n;
  }
  if (t > now_) now_ = t;
  return n;
}

}  // namespace idr
