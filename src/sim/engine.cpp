#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

#include "sim/shard.hpp"
#include "util/check.hpp"

namespace idr {
namespace detail {

ExecContext& exec_context() noexcept {
  thread_local ExecContext ctx;
  return ctx;
}

void CalendarQueue::insert_sorted(std::vector<SimEvent>& bucket,
                                  SimEvent ev) {
  const auto it =
      std::upper_bound(bucket.begin(), bucket.end(), ev, EventLater{});
  bucket.insert(it, std::move(ev));
}

void CalendarQueue::push(SimEvent ev) {
  const std::uint64_t day = day_of(ev.t);
  // An event can land behind the scan position (e.g. scheduled "now" after
  // the scan already advanced past sparse buckets); rewind so it is found.
  if (day < day_) day_ = day;
  insert_sorted(buckets_[day & mask_], std::move(ev));
  ++size_;
  if (size_ > 2 * buckets_.size()) rehash(2 * buckets_.size());
}

std::size_t CalendarQueue::find_min_bucket() {
  // Scan the ring from day_: a non-empty bucket whose earliest event falls
  // inside the current day's window is the global minimum (any earlier
  // event would have to live in an earlier day, already scanned).
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    const std::uint64_t day = day_ + i;
    const std::vector<SimEvent>& b = buckets_[day & mask_];
    if (!b.empty() &&
        b.back().t < static_cast<double>(day + 1) * width_) {
      day_ = day;
      return day & mask_;
    }
  }
  // Every pending event is more than a full ring ahead: direct-search the
  // bucket minima (rare; only under very sparse far-future schedules).
  std::size_t best = buckets_.size();
  for (std::size_t b = 0; b < buckets_.size(); ++b) {
    if (buckets_[b].empty()) continue;
    if (best == buckets_.size() ||
        EventLater{}(buckets_[best].back(), buckets_[b].back())) {
      best = b;
    }
  }
  day_ = day_of(buckets_[best].back().t);
  return best;
}

SimTime CalendarQueue::min_time() {
  return buckets_[find_min_bucket()].back().t;
}

SimEvent CalendarQueue::pop() {
  std::vector<SimEvent>& b = buckets_[find_min_bucket()];
  SimEvent ev = std::move(b.back());
  b.pop_back();
  --size_;
  if (buckets_.size() > kMinBuckets && size_ < buckets_.size() / 2) {
    rehash(buckets_.size() / 2);
  }
  return ev;
}

void CalendarQueue::rehash(std::size_t nbuckets) {
  std::vector<SimEvent> all;
  all.reserve(size_);
  SimTime min_t = std::numeric_limits<SimTime>::infinity();
  SimTime max_t = -std::numeric_limits<SimTime>::infinity();
  for (std::vector<SimEvent>& b : buckets_) {
    for (SimEvent& ev : b) {
      min_t = std::min(min_t, ev.t);
      max_t = std::max(max_t, ev.t);
      all.push_back(std::move(ev));
    }
    b.clear();
  }
  // Deterministic width estimate: spread the live population over a third
  // of the buckets' worth of days. Purely a performance knob -- pop order
  // is the event key regardless of the bucket geometry.
  double width = 1.0;
  if (all.size() >= 2 && max_t > min_t) {
    width = 3.0 * (max_t - min_t) / static_cast<double>(all.size());
    width = std::clamp(width, 1e-6, 1e12);
  }
  buckets_.assign(nbuckets, {});
  mask_ = nbuckets - 1;
  width_ = width;
  day_ = all.empty() ? 0 : day_of(min_t);
  for (SimEvent& ev : all) {
    insert_sorted(buckets_[day_of(ev.t) & mask_], std::move(ev));
  }
}

}  // namespace detail

Engine::Engine(SchedulerKind scheduler) : scheduler_(scheduler) {}
Engine::~Engine() = default;

SimTime Engine::now() const noexcept {
  const detail::ExecContext& ctx = detail::exec_context();
  if (ctx.in_window && ctx.engine == this) return ctx.now;
  return now_;
}

std::uint64_t Engine::next_seq(StreamId stream) {
  if (stream >= stream_seq_.size()) {
    // Sharded engines pre-size the table in enable_sharding; lazy growth
    // here would race between worker threads.
    IDR_CHECK_MSG(!runtime_, "stream id out of range on a sharded engine");
    stream_seq_.resize(static_cast<std::size_t>(stream) + 1, 0);
  }
  return stream_seq_[stream]++;
}

void Engine::push_sequential(detail::SimEvent ev) {
  if (scheduler_ == SchedulerKind::kCalendar) {
    calendar_.push(std::move(ev));
  } else {
    heap_.push_back(std::move(ev));
    std::push_heap(heap_.begin(), heap_.end(), detail::EventLater{});
  }
}

void Engine::at(SimTime t, Callback fn) {
  // Scheduling into the simulated past is a caller bug (typically a stale
  // absolute timestamp); clamp to now() so the event still runs, in FIFO
  // order with anything else due now, and trip debug builds loudly.
  const SimTime base = now();
  assert(t >= base && "Engine::at: scheduling into the simulated past");
  if (t < base) t = base;
  if (runtime_) {
    runtime_->schedule_control(t, std::move(fn));
    return;
  }
  push_sequential(
      detail::SimEvent{t, kControlStream, next_seq(kControlStream),
                       std::move(fn)});
}

void Engine::at_node(SimTime t, StreamId stream, std::uint32_t owner_ad,
                     Callback fn) {
  const SimTime base = now();
  assert(t >= base && "Engine::at_node: scheduling into the simulated past");
  if (t < base) t = base;
  IDR_CHECK(stream != kControlStream);
  if (runtime_) {
    runtime_->schedule_node(t, stream, owner_ad, std::move(fn));
    return;
  }
  push_sequential(detail::SimEvent{t, stream, next_seq(stream),
                                   std::move(fn)});
}

void Engine::enable_sharding(const ShardPlan& plan, unsigned threads) {
  IDR_CHECK_MSG(!runtime_, "sharding already enabled on this engine");
  IDR_CHECK_MSG(empty() && processed_ == 0 && stream_seq_.empty(),
                "enable_sharding must run before anything is scheduled");
  IDR_CHECK_MSG(plan.shards >= 1, "a shard plan needs at least one shard");
  IDR_CHECK_MSG(plan.lookahead_ms > 0.0,
                "zero lookahead would deadlock the window loop");
  // One stream per AD plus the control stream, fixed up front so no
  // worker ever grows the table.
  stream_seq_.assign(plan.shard_of.size() + 1, 0);
  runtime_ = std::make_unique<detail::ShardRuntime>(*this, plan, threads);
}

std::uint32_t Engine::shard_count() const noexcept {
  return runtime_ ? runtime_->shard_count() : 1;
}

std::uint32_t Engine::current_shard() const noexcept {
  const detail::ExecContext& ctx = detail::exec_context();
  if (ctx.in_window && ctx.engine == this) return ctx.shard;
  return 0;
}

std::uint32_t Engine::shard_of_ad(std::uint32_t ad) const noexcept {
  return runtime_ ? runtime_->shard_of_ad(ad) : 0;
}

const ParallelStats* Engine::parallel_stats() const noexcept {
  return runtime_ ? &runtime_->stats() : nullptr;
}

SimTime Engine::peek_time() {
  if (scheduler_ == SchedulerKind::kCalendar) return calendar_.min_time();
  return heap_.front().t;
}

bool Engine::step() {
  IDR_CHECK_MSG(!runtime_,
                "Engine::step is sequential-only; use run/run_until on a "
                "sharded engine");
  if (empty()) return false;
  detail::SimEvent ev;
  if (scheduler_ == SchedulerKind::kCalendar) {
    ev = calendar_.pop();
  } else {
    std::pop_heap(heap_.begin(), heap_.end(), detail::EventLater{});
    ev = std::move(heap_.back());
    heap_.pop_back();
  }
  now_ = ev.t;
  ++processed_;
  ev.fn();
  return true;
}

std::size_t Engine::run(std::size_t max_events) {
  if (runtime_) return runtime_->run(max_events);
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  IDR_CHECK_MSG(empty() || n < max_events,
                "simulation exceeded max_events (runaway protocol?)");
  return n;
}

std::size_t Engine::run_until(SimTime t) {
  if (runtime_) return runtime_->run_until(t);
  std::size_t n = 0;
  while (!empty() && peek_time() <= t) {
    step();
    ++n;
  }
  if (t > now_) now_ = t;
  return n;
}

bool Engine::empty() const noexcept {
  if (runtime_) return runtime_->empty();
  return scheduler_ == SchedulerKind::kCalendar ? calendar_.empty()
                                                : heap_.empty();
}

std::size_t Engine::pending() const noexcept {
  if (runtime_) return runtime_->pending();
  return scheduler_ == SchedulerKind::kCalendar ? calendar_.size()
                                                : heap_.size();
}

std::size_t Engine::events_processed() const noexcept {
  if (runtime_) return static_cast<std::size_t>(runtime_->events_processed());
  return processed_;
}

}  // namespace idr
