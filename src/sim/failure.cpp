#include "sim/failure.hpp"

#include <algorithm>

namespace idr {

void FailureInjector::fail_link_at(LinkId link, SimTime at_ms,
                                   SimTime duration_ms) {
  net_.engine().at(at_ms, [this, link] {
    ++failures_;
    net_.set_link_state(link, false);
  });
  if (duration_ms > 0.0) {
    net_.engine().at(at_ms + duration_ms,
                     [this, link] { net_.set_link_state(link, true); });
  }
}

void FailureInjector::crash_node_at(AdId ad, SimTime at_ms,
                                    SimTime duration_ms) {
  net_.engine().at(at_ms, [this, ad] {
    ++crashes_;
    net_.crash(ad);
  });
  if (duration_ms > 0.0) {
    net_.engine().at(at_ms + duration_ms, [this, ad] { net_.restart(ad); });
  }
}

void FailureInjector::flap_link(LinkId link, SimTime onset_ms,
                                SimTime period_ms, double duty,
                                std::uint32_t cycles) {
  if (cycles == 0 || period_ms <= 0.0) return;
  const SimTime down_ms =
      period_ms * std::clamp(duty, 0.01, 0.99);
  for (std::uint32_t c = 0; c < cycles; ++c) {
    const SimTime down_at = onset_ms + c * period_ms;
    fail_link_at(link, down_at, down_ms);
  }
}

void FailureInjector::restart_storm(AdId ad, SimTime onset_ms,
                                    SimTime period_ms, double duty,
                                    std::uint32_t cycles) {
  if (cycles == 0 || period_ms <= 0.0) return;
  const SimTime down_ms = period_ms * std::clamp(duty, 0.01, 0.99);
  for (std::uint32_t c = 0; c < cycles; ++c) {
    crash_node_at(ad, onset_ms + c * period_ms, down_ms);
  }
}

void FailureInjector::fail_node_links_at(AdId ad, SimTime at_ms,
                                         SimTime duration_ms) {
  for (const Adjacency& adj : net_.topo().neighbors(ad)) {
    fail_link_at(adj.link, at_ms, duration_ms);
  }
}

void FailureInjector::random_failures(Prng& prng, SimTime mean_uptime_ms,
                                      SimTime mean_downtime_ms,
                                      SimTime horizon_ms) {
  for (const Link& l : net_.topo().links()) {
    schedule_cycle(prng.fork(), l.id, net_.engine().now(), mean_uptime_ms,
                   mean_downtime_ms, horizon_ms);
  }
}

void FailureInjector::random_crashes(Prng& prng, SimTime mean_uptime_ms,
                                     SimTime mean_downtime_ms,
                                     SimTime horizon_ms) {
  for (const Ad& ad : net_.topo().ads()) {
    schedule_crash_cycle(prng.fork(), ad.id, net_.engine().now(),
                         mean_uptime_ms, mean_downtime_ms, horizon_ms);
  }
}

void FailureInjector::schedule_cycle(Prng prng, LinkId link, SimTime t,
                                     SimTime mean_uptime_ms,
                                     SimTime mean_downtime_ms,
                                     SimTime horizon_ms) {
  const SimTime fail_at = t + prng.exponential(mean_uptime_ms);
  if (fail_at > horizon_ms) return;  // no NEW failures past the horizon
  const SimTime repair_at = fail_at + prng.exponential(mean_downtime_ms);
  net_.engine().at(fail_at, [this, link] {
    ++failures_;
    net_.set_link_state(link, false);
  });
  // The repair is always scheduled, even past the horizon: otherwise a
  // link that fails just before horizon_ms stays down forever and skews
  // every post-horizon availability measurement.
  net_.engine().at(repair_at,
                   [this, link] { net_.set_link_state(link, true); });
  if (repair_at <= horizon_ms) {
    schedule_cycle(prng, link, repair_at, mean_uptime_ms, mean_downtime_ms,
                   horizon_ms);
  }
}

void FailureInjector::schedule_crash_cycle(Prng prng, AdId ad, SimTime t,
                                           SimTime mean_uptime_ms,
                                           SimTime mean_downtime_ms,
                                           SimTime horizon_ms) {
  const SimTime crash_at = t + prng.exponential(mean_uptime_ms);
  if (crash_at > horizon_ms) return;
  const SimTime restart_at = crash_at + prng.exponential(mean_downtime_ms);
  net_.engine().at(crash_at, [this, ad] {
    ++crashes_;
    net_.crash(ad);
  });
  // As with links, the restart is unconditional so no AD stays crashed
  // forever just because its crash landed near the horizon.
  net_.engine().at(restart_at, [this, ad] { net_.restart(ad); });
  if (restart_at <= horizon_ms) {
    schedule_crash_cycle(prng, ad, restart_at, mean_uptime_ms,
                         mean_downtime_ms, horizon_ms);
  }
}

}  // namespace idr
