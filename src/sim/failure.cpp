#include "sim/failure.hpp"

namespace idr {

void FailureInjector::fail_link_at(LinkId link, SimTime at_ms,
                                   SimTime duration_ms) {
  net_.engine().at(at_ms, [this, link] {
    ++failures_;
    net_.set_link_state(link, false);
  });
  if (duration_ms > 0.0) {
    net_.engine().at(at_ms + duration_ms,
                     [this, link] { net_.set_link_state(link, true); });
  }
}

void FailureInjector::random_failures(Prng& prng, SimTime mean_uptime_ms,
                                      SimTime mean_downtime_ms,
                                      SimTime horizon_ms) {
  for (const Link& l : net_.topo().links()) {
    schedule_cycle(prng.fork(), l.id, net_.engine().now(), mean_uptime_ms,
                   mean_downtime_ms, horizon_ms);
  }
}

void FailureInjector::schedule_cycle(Prng prng, LinkId link, SimTime t,
                                     SimTime mean_uptime_ms,
                                     SimTime mean_downtime_ms,
                                     SimTime horizon_ms) {
  const SimTime fail_at = t + prng.exponential(mean_uptime_ms);
  if (fail_at > horizon_ms) return;
  const SimTime repair_at = fail_at + prng.exponential(mean_downtime_ms);
  net_.engine().at(fail_at, [this, link] {
    ++failures_;
    net_.set_link_state(link, false);
  });
  if (repair_at <= horizon_ms) {
    net_.engine().at(repair_at,
                     [this, link] { net_.set_link_state(link, true); });
    schedule_cycle(prng, link, repair_at, mean_uptime_ms, mean_downtime_ms,
                   horizon_ms);
  }
}

}  // namespace idr
