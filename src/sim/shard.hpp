// Sharded parallel backend for the simulation engine (ROADMAP item 2,
// after "Feasibility study on distributed simulations of BGP"): the AD
// graph is partitioned into shards, each shard owns a calendar queue, and
// shards advance in conservative windows.
//
// Synchronization model. Let L (the lookahead) be the minimum delay over
// every cross-shard link. A frame sent at time s over a cross-shard link
// arrives no earlier than s + L, so all events in [Tmin, Tmin + L) --
// Tmin being the globally earliest pending event -- are causally
// independent across shards and may run concurrently. The coordinator
// repeatedly:
//   1. picks E = min(Tmin + L, t_control), where t_control is the next
//      control-stream event (driver/harness actions that may touch any
//      AD: failure injection, invariant sweeps, grace deadlines);
//   2. lets every shard run its own events with t < E (worker threads,
//      or inline on the driving thread when threads == 0);
//   3. drains the cross-shard mailboxes into the target shard queues and,
//      when the control event is globally earliest, runs it alone.
// Cross-shard deliveries land in a mutex-protected mailbox per target
// shard and are merged at the barrier; since every event key
// (t, stream, seq) is assigned identically in the sequential backend
// (engine.hpp), the merged order -- and therefore every simulation
// result -- is byte-identical to a sequential run for any shard count.
//
// Conservative rather than optimistic sync: no rollback machinery, no
// state snapshots, and -- decisive here -- bit-for-bit determinism falls
// out of the window invariant instead of needing anti-messages to restore
// it. The hierarchy gives real lookahead (inter-AD links are the slow
// long-haul hops), so the optimism would buy little.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "sim/barrier.hpp"
#include "sim/engine.hpp"
#include "topology/graph.hpp"

namespace idr {

// A partition of the AD graph. Produced by make_shard_plan (or any custom
// partitioner); consumed by Engine::enable_sharding.
struct ShardPlan {
  std::uint32_t shards = 1;
  std::vector<std::uint32_t> shard_of;  // indexed by AdId
  // Window bound actually used. At most min_cross_delay_ms; smaller only
  // when ShardPlanOptions::lookahead_override_ms shrinks it (stress).
  double lookahead_ms = std::numeric_limits<double>::infinity();
  // Minimum delay over links whose endpoints land in different shards.
  double min_cross_delay_ms = std::numeric_limits<double>::infinity();
  std::vector<LinkId> cross_links;
  // Per-shard sum of (1 + degree) over assigned ADs: the static load proxy
  // the greedy balancer minimizes.
  std::vector<std::uint64_t> shard_weight;

  [[nodiscard]] std::uint32_t shard_of_ad(AdId ad) const {
    return shard_of[ad.v];
  }
  // max shard weight / mean shard weight (1.0 = perfectly balanced).
  [[nodiscard]] double balance_factor() const noexcept;
};

struct ShardPlanOptions {
  // 0 = use the full legal lookahead (min cross-shard delay). A positive
  // value shrinks the window bound below it -- never enlarges it -- to
  // stress the window-boundary machinery in tests.
  double lookahead_override_ms = 0.0;
  // Group each regional subtree (a regional AD plus the metro/campus ADs
  // hanging under it via hierarchical links) into one indivisible unit, so
  // shard boundaries fall on the slow long-haul links and the lookahead
  // stays large. Backbone/transit ADs stay individually placeable.
  bool hierarchy_groups = true;
};

// Partition `topo` into (at most) `shards` shards:
//   * ADs joined by a zero-delay link are merged into one unit (a
//     cross-shard link with no delay would force a zero lookahead and
//     deadlock the window loop);
//   * with hierarchy_groups, each regional subtree is one unit;
//   * units are placed largest-first onto the lightest shard (LPT), ties
//     broken by lowest id -- fully deterministic.
// Degenerate inputs are fine: shards == 1 yields no cross links (infinite
// lookahead), shards > units leaves trailing shards empty.
[[nodiscard]] ShardPlan make_shard_plan(const Topology& topo,
                                        std::uint32_t shards,
                                        const ShardPlanOptions& opts = {});

namespace detail {

// Owns the window loop, the per-shard queues, the cross-shard mailboxes,
// and the worker threads of a sharded Engine. Created by
// Engine::enable_sharding; every Engine scheduling/run call delegates
// here when sharding is on.
class ShardRuntime {
 public:
  ShardRuntime(Engine& engine, ShardPlan plan, unsigned threads);
  ~ShardRuntime();

  void schedule_control(SimTime t, Engine::Callback fn);
  void schedule_node(SimTime t, StreamId stream, std::uint32_t owner_ad,
                     Engine::Callback fn);

  std::size_t run(std::size_t max_events);
  std::size_t run_until(SimTime t);

  [[nodiscard]] bool empty() const;
  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] std::uint64_t events_processed() const;
  [[nodiscard]] std::uint32_t shard_count() const noexcept {
    return plan_.shards;
  }
  [[nodiscard]] std::uint32_t shard_of_ad(std::uint32_t ad) const {
    return plan_.shard_of[ad];
  }
  [[nodiscard]] const ShardPlan& plan() const noexcept { return plan_; }
  [[nodiscard]] const ParallelStats& stats() const noexcept { return stats_; }

 private:
  struct Shard {
    CalendarQueue q;
    std::uint64_t processed = 0;
    // Written by the shard's executor inside a window, read by the
    // coordinator after the barrier.
    std::uint64_t window_processed = 0;
    SimTime window_last_t = 0.0;
  };
  struct Mailbox {
    std::mutex mu;
    std::vector<SimEvent> box;
  };

  // The window loop. bounded: stop at `horizon` (inclusive) instead of
  // draining. Returns events processed by this call.
  std::size_t drive(bool bounded, SimTime horizon, std::size_t max_events);
  void run_shard_window(std::uint32_t s);
  void drain_mailboxes();
  void worker_main(unsigned w);

  Engine& engine_;
  ShardPlan plan_;
  unsigned threads_ = 0;  // worker threads; 0 = inline windows
  std::vector<Shard> shards_;
  std::vector<std::unique_ptr<Mailbox>> mail_;  // indexed by target shard
  CalendarQueue control_;
  std::uint64_t control_processed_ = 0;
  // Current window, published to workers through the barrier.
  SimTime window_bound_ = 0.0;
  bool window_inclusive_ = false;
  ParallelStats stats_;
  WindowBarrier barrier_;
  std::vector<std::thread> workers_;
};

}  // namespace detail
}  // namespace idr
