#include "sim/shard.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "util/check.hpp"

namespace idr {

double ShardPlan::balance_factor() const noexcept {
  if (shard_weight.empty()) return 1.0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  for (const std::uint64_t w : shard_weight) {
    sum += w;
    max = std::max(max, w);
  }
  if (sum == 0) return 1.0;
  const double mean =
      static_cast<double>(sum) / static_cast<double>(shard_weight.size());
  return static_cast<double>(max) / mean;
}

namespace {

// Deterministic union-find over AD ids.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0u);
  }
  std::uint32_t find(std::uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void merge(std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return;
    // Smaller root wins so the representative is the minimum member seen
    // so far -- keeps group ids (and thus the whole plan) deterministic.
    if (b < a) std::swap(a, b);
    parent_[b] = a;
  }

 private:
  std::vector<std::uint32_t> parent_;
};

}  // namespace

ShardPlan make_shard_plan(const Topology& topo, std::uint32_t shards,
                          const ShardPlanOptions& opts) {
  const std::size_t n = topo.ad_count();
  ShardPlan plan;
  plan.shards = std::max<std::uint32_t>(shards, 1);
  plan.shard_of.assign(n, 0);
  plan.shard_weight.assign(plan.shards, 0);
  if (n == 0) return plan;

  // 1. Indivisible units. Zero-delay links MUST stay intra-shard (a
  // cross-shard link bounds the lookahead from above, and a zero
  // lookahead cannot make progress). Hierarchy grouping keeps each
  // regional subtree -- a regional AD plus the metro/campus ADs under it
  // -- whole, so the cut falls on long-haul links.
  UnionFind uf(n);
  for (const Link& l : topo.links()) {
    if (l.delay_ms <= 0.0) {
      uf.merge(l.a.v, l.b.v);
      continue;
    }
    if (!opts.hierarchy_groups || l.cls != LinkClass::kHierarchical) continue;
    const AdClass ca = topo.ad(l.a).cls;
    const AdClass cb = topo.ad(l.b).cls;
    const AdClass deeper = ca > cb ? ca : cb;
    if (deeper == AdClass::kMetro || deeper == AdClass::kCampus) {
      uf.merge(l.a.v, l.b.v);
    }
  }

  // 2. Unit weights: sum of (1 + degree) over members, a static proxy for
  // the event load an AD generates (timers + one frame per neighbor).
  std::vector<std::uint64_t> unit_weight(n, 0);
  for (std::uint32_t ad = 0; ad < n; ++ad) {
    unit_weight[uf.find(ad)] +=
        1 + topo.neighbors(AdId{ad}).size();
  }
  std::vector<std::uint32_t> units;
  for (std::uint32_t ad = 0; ad < n; ++ad) {
    if (uf.find(ad) == ad) units.push_back(ad);
  }

  // 3. LPT greedy: heaviest unit first onto the lightest shard; all ties
  // broken by lowest id. Classic bound: max/mean <= 4/3 + shards/units.
  std::sort(units.begin(), units.end(),
            [&](std::uint32_t a, std::uint32_t b) {
              if (unit_weight[a] != unit_weight[b]) {
                return unit_weight[a] > unit_weight[b];
              }
              return a < b;
            });
  std::vector<std::uint32_t> unit_shard(n, 0);
  for (const std::uint32_t u : units) {
    std::uint32_t lightest = 0;
    for (std::uint32_t s = 1; s < plan.shards; ++s) {
      if (plan.shard_weight[s] < plan.shard_weight[lightest]) lightest = s;
    }
    unit_shard[u] = lightest;
    plan.shard_weight[lightest] += unit_weight[u];
  }
  for (std::uint32_t ad = 0; ad < n; ++ad) {
    plan.shard_of[ad] = unit_shard[uf.find(ad)];
  }

  // 4. Cross-shard links bound the lookahead. Down links count too: they
  // can come back up mid-run without re-partitioning.
  for (const Link& l : topo.links()) {
    if (plan.shard_of[l.a.v] == plan.shard_of[l.b.v]) continue;
    plan.cross_links.push_back(l.id);
    plan.min_cross_delay_ms = std::min(plan.min_cross_delay_ms, l.delay_ms);
  }
  plan.lookahead_ms = plan.min_cross_delay_ms;
  if (opts.lookahead_override_ms > 0.0) {
    plan.lookahead_ms =
        std::min(plan.lookahead_ms, opts.lookahead_override_ms);
  }
  IDR_CHECK_MSG(plan.lookahead_ms > 0.0,
                "shard plan with zero lookahead (zero-delay cross link?)");
  return plan;
}

namespace detail {

ShardRuntime::ShardRuntime(Engine& engine, ShardPlan plan, unsigned threads)
    : engine_(engine),
      plan_(std::move(plan)),
      shards_(plan_.shards),
      barrier_(threads == 0
                   ? 0
                   : std::min<std::size_t>(threads, plan_.shards)) {
  mail_.reserve(plan_.shards);
  for (std::uint32_t s = 0; s < plan_.shards; ++s) {
    mail_.push_back(std::make_unique<Mailbox>());
  }
  if (threads > 0) {
    threads_ = std::min<unsigned>(threads, plan_.shards);
    workers_.reserve(threads_);
    for (unsigned w = 0; w < threads_; ++w) {
      workers_.emplace_back([this, w] { worker_main(w); });
    }
  }
}

ShardRuntime::~ShardRuntime() {
  if (!workers_.empty()) {
    barrier_.stop();
    for (std::thread& t : workers_) t.join();
  }
}

void ShardRuntime::schedule_control(SimTime t, Engine::Callback fn) {
  const ExecContext& ctx = exec_context();
  // Control events may touch any AD, so they only run serialized between
  // windows -- and for the same reason they may only be scheduled from
  // outside a window (the driver, another control event, or setup code).
  // An AD event that wants a timer must own it via at_node.
  IDR_CHECK_MSG(!(ctx.in_window && ctx.engine == &engine_),
                "control-stream event scheduled from inside a shard window");
  control_.push(SimEvent{t, kControlStream,
                         engine_.stream_seq_[kControlStream]++,
                         std::move(fn)});
}

void ShardRuntime::schedule_node(SimTime t, StreamId stream,
                                 std::uint32_t owner_ad,
                                 Engine::Callback fn) {
  IDR_CHECK(owner_ad < plan_.shard_of.size());
  IDR_CHECK(stream < engine_.stream_seq_.size());
  const std::uint32_t target = plan_.shard_of[owner_ad];
  const ExecContext& ctx = exec_context();
  const bool in_window = ctx.in_window && ctx.engine == &engine_;
  if (in_window) {
    // The per-stream sequence counter is only race-free because a stream
    // is bumped exclusively by its owner: the AD's own events, which all
    // execute on one shard.
    IDR_CHECK_MSG(plan_.shard_of[stream - 1] == ctx.shard,
                  "stream scheduled from a shard that does not own it");
  }
  SimEvent ev{t, stream, engine_.stream_seq_[stream]++, std::move(fn)};
  if (!in_window || target == ctx.shard) {
    // Quiesced (setup / control phase) or shard-local: direct insert.
    shards_[target].q.push(std::move(ev));
    return;
  }
  // Cross-shard from inside a window: the conservative invariant says the
  // target cannot have advanced past the window bound, so the event must
  // land at or after it. Anything earlier means protocol code scheduled
  // across the boundary with less than the lookahead -- a correctness
  // bug, not a tuning issue.
  IDR_CHECK_MSG(
      window_inclusive_ ? ev.t > window_bound_ : ev.t >= window_bound_,
      "cross-shard event inside the current window (lookahead violation)");
  Mailbox& m = *mail_[target];
  std::lock_guard<std::mutex> lock(m.mu);
  m.box.push_back(std::move(ev));
}

void ShardRuntime::drain_mailboxes() {
  for (std::uint32_t s = 0; s < plan_.shards; ++s) {
    Mailbox& m = *mail_[s];
    std::lock_guard<std::mutex> lock(m.mu);
    for (SimEvent& ev : m.box) shards_[s].q.push(std::move(ev));
    m.box.clear();
  }
}

void ShardRuntime::run_shard_window(std::uint32_t s) {
  Shard& sh = shards_[s];
  ExecContext& ctx = exec_context();
  ctx.engine = &engine_;
  ctx.shard = s;
  ctx.in_window = true;
  const SimTime bound = window_bound_;
  const bool inclusive = window_inclusive_;
  std::uint64_t n = 0;
  while (!sh.q.empty()) {
    const SimTime t = sh.q.min_time();
    if (inclusive ? t > bound : t >= bound) break;
    SimEvent ev = sh.q.pop();
    ctx.now = ev.t;
    sh.window_last_t = ev.t;
    ev.fn();
    ++n;
  }
  sh.window_processed = n;
  sh.processed += n;
  ctx.engine = nullptr;
  ctx.in_window = false;
}

void ShardRuntime::worker_main(unsigned w) {
  std::uint64_t epoch = 0;
  while (barrier_.wait_open(epoch)) {
    for (std::uint32_t s = w; s < plan_.shards; s += threads_) {
      run_shard_window(s);
    }
    barrier_.arrive_done();
  }
}

std::size_t ShardRuntime::drive(bool bounded, SimTime horizon,
                                std::size_t max_events) {
  const ExecContext& ctx = exec_context();
  IDR_CHECK_MSG(!(ctx.in_window && ctx.engine == &engine_),
                "run/run_until re-entered from inside a shard window");
  constexpr SimTime kInf = std::numeric_limits<SimTime>::infinity();
  std::size_t n = 0;
  for (;;) {
    if (n >= max_events) break;
    drain_mailboxes();
    const SimTime tg = control_.empty() ? kInf : control_.min_time();
    SimTime tmin = kInf;
    for (Shard& sh : shards_) {
      if (!sh.q.empty()) tmin = std::min(tmin, sh.q.min_time());
    }
    const SimTime first = std::min(tg, tmin);
    if (first == kInf) break;
    if (bounded && first > horizon) break;
    if (tg <= tmin) {
      // The control event is globally earliest (the control stream sorts
      // first at equal time): run it alone, every shard quiescent.
      SimEvent ev = control_.pop();
      engine_.now_ = ev.t;
      ev.fn();
      ++control_processed_;
      ++stats_.control_events;
      ++stats_.critical_path_events;
      ++n;
      continue;
    }
    // Conservative window: every shard may run its events with t < bound
    // independently -- cross-shard frames sent inside it arrive >= tmin +
    // lookahead >= bound, and the next control event is at bound or later.
    SimTime bound = tmin + plan_.lookahead_ms;
    bool inclusive = false;
    if (tg < bound) bound = tg;
    if (bounded && horizon < bound) {
      bound = horizon;
      inclusive = true;  // run_until semantics: events at t itself run
    }
    window_bound_ = bound;
    window_inclusive_ = inclusive;
    if (threads_ == 0) {
      for (std::uint32_t s = 0; s < plan_.shards; ++s) run_shard_window(s);
    } else {
      barrier_.open();
      barrier_.wait_done();
    }
    std::uint64_t wsum = 0;
    std::uint64_t wmax = 0;
    SimTime last_t = engine_.now_;
    for (const Shard& sh : shards_) {
      wsum += sh.window_processed;
      wmax = std::max(wmax, sh.window_processed);
      if (sh.window_processed > 0) last_t = std::max(last_t, sh.window_last_t);
    }
    ++stats_.windows;
    stats_.parallel_events += wsum;
    stats_.critical_path_events += wmax;
    n += static_cast<std::size_t>(wsum);
    engine_.now_ =
        std::max(engine_.now_, std::isinf(bound) ? last_t : bound);
  }
  return n;
}

std::size_t ShardRuntime::run(std::size_t max_events) {
  const std::size_t n = drive(/*bounded=*/false, 0.0, max_events);
  IDR_CHECK_MSG(empty() || n < max_events,
                "simulation exceeded max_events (runaway protocol?)");
  return n;
}

std::size_t ShardRuntime::run_until(SimTime t) {
  const std::size_t n = drive(/*bounded=*/true, t,
                              std::numeric_limits<std::size_t>::max());
  if (t > engine_.now_) engine_.now_ = t;
  return n;
}

bool ShardRuntime::empty() const {
  if (!control_.empty()) return false;
  for (const Shard& sh : shards_) {
    if (!sh.q.empty()) return false;
  }
  for (const auto& m : mail_) {
    std::lock_guard<std::mutex> lock(m->mu);
    if (!m->box.empty()) return false;
  }
  return true;
}

std::size_t ShardRuntime::pending() const {
  std::size_t n = control_.size();
  for (const Shard& sh : shards_) n += sh.q.size();
  for (const auto& m : mail_) {
    std::lock_guard<std::mutex> lock(m->mu);
    n += m->box.size();
  }
  return n;
}

std::uint64_t ShardRuntime::events_processed() const {
  std::uint64_t n = control_processed_;
  for (const Shard& sh : shards_) n += sh.processed;
  return n;
}

}  // namespace detail
}  // namespace idr
