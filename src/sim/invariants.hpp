// Continuous invariant checking under fault injection.
//
// The paper's comparative claims (loop-freedom, route availability,
// convergence) are only meaningful if they hold *while* the inter-AD
// topology churns (§2.2), not just after a single scripted failure. The
// InvariantMonitor sweeps the network on a configurable cadence: for a
// deterministic sample of (src, dst) pairs it asks the harness to walk
// the protocol's current forwarding choice hop by hop (the ProbeFn) and
// classifies the result against ground-truth reachability:
//
//   * forwarding loop  -- the walk revisited an AD;
//   * black hole       -- the walk gave up although a ground-truth path
//                         exists (over live links between live nodes);
//   * stale route      -- the walk "delivered" but crossed a down link or
//                         a crashed node, i.e. the FIB is lying.
//
// A violation observed within reconverge_window_ms of the most recent
// injected fault is transient (the protocol is allowed to be wrong while
// news propagates); outside that window it is persistent -- a real
// correctness failure. The monitor also records time-to-reconverge: the
// delay from each fault burst to the first subsequent all-clean sweep.
//
// The monitor is protocol-agnostic: walking FIBs is supplied by the
// harness (ProbeFn), and ground-truth reachability can be overridden
// (ReachableFn) for designs whose legal path set is narrower than the
// live topology -- ECMA's up*down* shape rule, for example.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "sim/network.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"

namespace idr {

enum class ProbeOutcome : std::uint8_t {
  kDelivered = 0,  // walk reached dst; path holds the hops src..dst
  kLooped = 1,     // walk revisited an AD (or exceeded the hop budget)
  kBlackHole = 2,  // some node had no forwarding choice toward dst
};

struct Probe {
  ProbeOutcome outcome = ProbeOutcome::kBlackHole;
  std::vector<AdId> path;  // hops visited, starting at src
};

// What a sweep found wrong with one (src, dst) pair.
enum class InvariantKind : std::uint8_t {
  kLoop = 0,        // forwarding walk revisited an AD
  kBlackHole = 1,   // walk gave up although ground truth has a route
  kStaleRoute = 2,  // delivered over a down link or through a dead AD
};

[[nodiscard]] const char* to_string(InvariantKind kind);

// A structured violation record: the offending pair plus the forwarding
// walk that exhibited it, so shrinkers and tests can key on (kind, src,
// dst, path) instead of parsing log strings. Persistent findings are
// deduplicated exactly like the persistent counters.
struct InvariantFinding {
  InvariantKind kind = InvariantKind::kLoop;
  bool persistent = false;
  AdId src;
  AdId dst;
  std::vector<AdId> path;  // hops the probe walked, starting at src
  SimTime at_ms = 0.0;     // sweep time that first observed it
};

struct InvariantConfig {
  SimTime cadence_ms = 50.0;
  // Violations within this window after the latest fault are transient.
  SimTime reconverge_window_ms = 500.0;
  // (src, dst) pairs sampled per sweep; 0 = probe every ordered pair.
  std::size_t sample_pairs = 64;
  std::uint64_t sample_seed = 0x5eedf00dULL;
  // When non-empty, sampled destinations are drawn from this pool instead
  // of the whole AD space (paper scale: only beacon ADs are originated
  // destinations, so probing arbitrary dsts would report vacuous
  // black holes).
  std::vector<AdId> dst_pool;
  // When non-empty (and dst_pool is too), sampled sources are drawn from
  // this pool instead of uniformly over all ADs -- the scale runs pass a
  // stratified slice of the stub population so every region of the
  // hierarchy is probed at every sweep.
  std::vector<AdId> src_pool;
  // Also keep InvariantFinding records for transient violations (capped
  // at max_transient_findings). Persistent findings are always recorded
  // (they are deduped, so bounded by pairs x kinds).
  bool record_transient_findings = false;
  std::size_t max_transient_findings = 256;
};

// Per-failure-class accounting: each registered class gets its own
// reconvergence summary and blast radius (peak fraction of one sweep's
// probes found violating while that class's fault was the most recent).
// Class 0 is the implicit default used by the plain note_fault().
struct FaultClassStats {
  std::string name;
  std::uint64_t faults = 0;
  Summary reconverge_ms;   // fault of this class -> first all-clean sweep
  double peak_blast = 0.0; // max per-sweep violating probe fraction
};

struct InvariantStats {
  std::uint64_t sweeps = 0;
  std::uint64_t probes = 0;
  std::uint64_t transient_loops = 0;
  std::uint64_t transient_black_holes = 0;
  std::uint64_t transient_stale_routes = 0;
  // Persistent counters are deduplicated: each (src, dst, kind) triple
  // counts once for the whole run no matter how many sweeps re-observe
  // it, so long soak logs stay bounded.
  std::uint64_t persistent_loops = 0;
  std::uint64_t persistent_black_holes = 0;
  std::uint64_t persistent_stale_routes = 0;
  Summary reconverge_ms;  // fault burst -> first all-clean sweep
  // Indexed by the class id returned by register_fault_class(); entry 0
  // is the default class.
  std::vector<FaultClassStats> fault_classes;
  // Forwarding continuity through node churn: while any AD is crashed or
  // in a graceful-restart grace window, every probe whose pair would be
  // connected if crashed ADs still forwarded (the GR promise) counts
  // here; it is "ok" when it actually delivered over a fresh-or-in-grace
  // path. Cold restarts black-hole these probes, GR keeps them flowing
  // over the frozen FIB -- the ratio is the paper-scale continuity
  // number BENCH_restart.json tracks. Both zero when no node churn
  // happened (or when probing never overlapped it).
  std::uint64_t continuity_probes = 0;
  std::uint64_t continuity_ok = 0;

  [[nodiscard]] double continuity() const noexcept {
    return continuity_probes == 0
               ? 1.0
               : static_cast<double>(continuity_ok) /
                     static_cast<double>(continuity_probes);
  }

  [[nodiscard]] std::uint64_t persistent_violations() const noexcept {
    return persistent_loops + persistent_black_holes +
           persistent_stale_routes;
  }
  [[nodiscard]] std::uint64_t transient_violations() const noexcept {
    return transient_loops + transient_black_holes + transient_stale_routes;
  }
};

class InvariantMonitor {
 public:
  using ProbeFn = std::function<Probe(AdId src, AdId dst)>;
  using ReachableFn = std::function<bool(AdId src, AdId dst)>;

  InvariantMonitor(Network& net, InvariantConfig config, ProbeFn probe);

  // Override ground-truth reachability (default: BFS over live links
  // between alive nodes).
  void set_reachable_fn(ReachableFn fn) { reachable_ = std::move(fn); }

  // Sweep on the cadence until `until_ms` (inclusive of the first sweep
  // one cadence from now).
  void start(SimTime until_ms);

  // The fault injector (or chaos driver) reports each injected fault so
  // the monitor can distinguish transient from persistent violations and
  // time reconvergence. The plain form charges the default class (0)
  // with the configured reconverge_window_ms.
  void note_fault();

  // Per-failure-class form: a named class (from register_fault_class)
  // with its own grace window -- a 1e4-AD partition heal legitimately
  // needs a longer window than a single link flap. window_ms < 0 falls
  // back to config_.reconverge_window_ms. Settling is deadline-based:
  // overlapping faults extend the deadline to the max over all of them.
  void note_fault(std::size_t fault_class, SimTime window_ms);

  // Register a failure class for per-class reconvergence / blast-radius
  // stats; returns its id (class 0, "fault", always exists).
  std::size_t register_fault_class(std::string name);

  // Run one sweep immediately (also used by the periodic schedule).
  void sweep();

  [[nodiscard]] const InvariantStats& stats() const noexcept {
    return stats_;
  }

  // True while a fault burst has not yet been followed by an all-clean
  // sweep -- the drivers' "never reconverged" signal at the horizon.
  [[nodiscard]] bool awaiting_clean_sweep() const noexcept {
    return awaiting_clean_sweep_;
  }

  // Structured violation records (persistent ones always; transient ones
  // when configured). Ordered by observation time.
  [[nodiscard]] const std::vector<InvariantFinding>& findings()
      const noexcept {
    return findings_;
  }

  // Persistent findings only (the ones that outlived the reconvergence
  // window) -- what shrinker predicates and test assertions key on.
  [[nodiscard]] std::vector<InvariantFinding> persistent_findings() const;

 private:
  [[nodiscard]] bool default_reachable(AdId src, AdId dst) const;
  [[nodiscard]] bool path_is_fresh(const std::vector<AdId>& path) const;
  [[nodiscard]] bool continuity_reachable(AdId src, AdId dst) const;
  void schedule_next();

  Network& net_;
  InvariantConfig config_;
  ProbeFn probe_;
  ReachableFn reachable_;
  Prng sample_prng_;
  InvariantStats stats_;
  SimTime until_ms_ = 0.0;
  SimTime last_fault_at_ = -1.0;  // <0: no fault yet
  SimTime settle_deadline_ = -1.0;  // max over faults of (at + window)
  std::size_t current_class_ = 0;   // class of the most recent fault
  bool awaiting_clean_sweep_ = false;
  // (src, dst, kind) triples already counted as persistent.
  std::unordered_set<std::uint64_t> persistent_seen_;
  std::vector<InvariantFinding> findings_;
};

// --- Policy-compliance auditing under Byzantine faults ----------------
//
// The InvariantMonitor above asks "does forwarding work?"; the auditor
// asks the paper's sharper question: "does forwarding *comply with
// policy*?". On a cadence it walks the same forwarding probes over a
// fixed sample of honest (src, dst) pairs and checks every delivered
// path against ground truth (the configured policy databases / the ECMA
// partial order), and every failed probe against honest reachability.
// Violations are classified by the misbehavior that explains them:
//
//   * hijack     -- traffic for a false-origin victim captured/killed;
//   * leak       -- a delivered path that violates someone's transit
//                   policy, or a failure attributable to a leaking or
//                   tampering AD on the probe's walk;
//   * black hole -- a failure attributable to an advertising-but-
//                   dropping AD on the walk;
//   * collateral -- an honest pair broken with no misbehaving AD on the
//                   walk (pollution spread beyond the liar's neighbors).
//
// Blast radius is the per-sweep fraction of sampled pairs polluted
// (peak and final reported); time-to-containment is the interval from
// misbehavior onset to the start of the clean suffix of sweeps (0 if
// never polluted, -1 if still polluted at the end -- not contained).

struct AuditConfig {
  SimTime cadence_ms = 100.0;
  SimTime onset_ms = 0.0;  // audit sweeps begin after misbehavior onset
  // Honest (src, dst) pairs sampled (fixed at start); 0 = every pair.
  std::size_t sample_pairs = 48;
  std::uint64_t sample_seed = 0xbadc0de5ULL;
};

struct AuditStats {
  std::uint64_t sweeps = 0;
  std::uint64_t probes = 0;
  // Distinct polluted (src, dst) pairs per classification (deduped).
  std::uint64_t hijacked_pairs = 0;
  std::uint64_t leaked_pairs = 0;
  std::uint64_t black_holed_pairs = 0;
  std::uint64_t collateral_pairs = 0;
  double peak_pollution = 0.0;   // max per-sweep polluted fraction
  double final_pollution = 0.0;  // polluted fraction of the last sweep
  SimTime containment_ms = -1.0;

  [[nodiscard]] std::uint64_t violation_pairs() const noexcept {
    return hijacked_pairs + leaked_pairs + black_holed_pairs +
           collateral_pairs;
  }
  [[nodiscard]] bool contained() const noexcept {
    return containment_ms >= 0.0;
  }
};

class PolicyComplianceAuditor {
 public:
  using ProbeFn = InvariantMonitor::ProbeFn;
  using ReachableFn = InvariantMonitor::ReachableFn;
  // Is this delivered src..dst path legal under ground-truth policy?
  using ComplianceFn = std::function<bool(
      AdId src, AdId dst, const std::vector<AdId>& path)>;

  PolicyComplianceAuditor(Network& net, AuditConfig config, ProbeFn probe,
                          ReachableFn honest_reachable,
                          ComplianceFn compliant);

  void start(SimTime until_ms);
  void sweep();

  // Finalizes final_pollution / containment_ms from the sweep history.
  [[nodiscard]] AuditStats stats() const;

 private:
  enum class ViolationKind : std::uint8_t {
    kHijack = 0,
    kLeak = 1,
    kBlackHole = 2,
    kCollateral = 3,
  };

  void choose_pairs();
  void schedule_next();
  void record(AdId src, AdId dst, ViolationKind kind);
  [[nodiscard]] ViolationKind classify_delivered(
      AdId dst, const std::vector<AdId>& path) const;
  [[nodiscard]] ViolationKind classify_failed(
      AdId dst, const std::vector<AdId>& path) const;

  Network& net_;
  AuditConfig config_;
  ProbeFn probe_;
  ReachableFn honest_reachable_;
  ComplianceFn compliant_;
  std::vector<std::pair<AdId, AdId>> pairs_;
  AuditStats stats_;
  std::unordered_set<std::uint64_t> seen_;
  SimTime until_ms_ = 0.0;
  SimTime last_polluted_at_ = -1.0;
  double last_sweep_pollution_ = 0.0;
};

}  // namespace idr
