// Continuous invariant checking under fault injection.
//
// The paper's comparative claims (loop-freedom, route availability,
// convergence) are only meaningful if they hold *while* the inter-AD
// topology churns (§2.2), not just after a single scripted failure. The
// InvariantMonitor sweeps the network on a configurable cadence: for a
// deterministic sample of (src, dst) pairs it asks the harness to walk
// the protocol's current forwarding choice hop by hop (the ProbeFn) and
// classifies the result against ground-truth reachability:
//
//   * forwarding loop  -- the walk revisited an AD;
//   * black hole       -- the walk gave up although a ground-truth path
//                         exists (over live links between live nodes);
//   * stale route      -- the walk "delivered" but crossed a down link or
//                         a crashed node, i.e. the FIB is lying.
//
// A violation observed within reconverge_window_ms of the most recent
// injected fault is transient (the protocol is allowed to be wrong while
// news propagates); outside that window it is persistent -- a real
// correctness failure. The monitor also records time-to-reconverge: the
// delay from each fault burst to the first subsequent all-clean sweep.
//
// The monitor is protocol-agnostic: walking FIBs is supplied by the
// harness (ProbeFn), and ground-truth reachability can be overridden
// (ReachableFn) for designs whose legal path set is narrower than the
// live topology -- ECMA's up*down* shape rule, for example.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/network.hpp"
#include "util/prng.hpp"
#include "util/stats.hpp"

namespace idr {

enum class ProbeOutcome : std::uint8_t {
  kDelivered = 0,  // walk reached dst; path holds the hops src..dst
  kLooped = 1,     // walk revisited an AD (or exceeded the hop budget)
  kBlackHole = 2,  // some node had no forwarding choice toward dst
};

struct Probe {
  ProbeOutcome outcome = ProbeOutcome::kBlackHole;
  std::vector<AdId> path;  // hops visited, starting at src
};

struct InvariantConfig {
  SimTime cadence_ms = 50.0;
  // Violations within this window after the latest fault are transient.
  SimTime reconverge_window_ms = 500.0;
  // (src, dst) pairs sampled per sweep; 0 = probe every ordered pair.
  std::size_t sample_pairs = 64;
  std::uint64_t sample_seed = 0x5eedf00dULL;
};

struct InvariantStats {
  std::uint64_t sweeps = 0;
  std::uint64_t probes = 0;
  std::uint64_t transient_loops = 0;
  std::uint64_t transient_black_holes = 0;
  std::uint64_t transient_stale_routes = 0;
  std::uint64_t persistent_loops = 0;
  std::uint64_t persistent_black_holes = 0;
  std::uint64_t persistent_stale_routes = 0;
  Summary reconverge_ms;  // fault burst -> first all-clean sweep

  [[nodiscard]] std::uint64_t persistent_violations() const noexcept {
    return persistent_loops + persistent_black_holes +
           persistent_stale_routes;
  }
  [[nodiscard]] std::uint64_t transient_violations() const noexcept {
    return transient_loops + transient_black_holes + transient_stale_routes;
  }
};

class InvariantMonitor {
 public:
  using ProbeFn = std::function<Probe(AdId src, AdId dst)>;
  using ReachableFn = std::function<bool(AdId src, AdId dst)>;

  InvariantMonitor(Network& net, InvariantConfig config, ProbeFn probe);

  // Override ground-truth reachability (default: BFS over live links
  // between alive nodes).
  void set_reachable_fn(ReachableFn fn) { reachable_ = std::move(fn); }

  // Sweep on the cadence until `until_ms` (inclusive of the first sweep
  // one cadence from now).
  void start(SimTime until_ms);

  // The fault injector (or chaos driver) reports each injected fault so
  // the monitor can distinguish transient from persistent violations and
  // time reconvergence.
  void note_fault();

  // Run one sweep immediately (also used by the periodic schedule).
  void sweep();

  [[nodiscard]] const InvariantStats& stats() const noexcept {
    return stats_;
  }

 private:
  [[nodiscard]] bool default_reachable(AdId src, AdId dst) const;
  [[nodiscard]] bool path_is_fresh(const std::vector<AdId>& path) const;
  void schedule_next();

  Network& net_;
  InvariantConfig config_;
  ProbeFn probe_;
  ReachableFn reachable_;
  Prng sample_prng_;
  InvariantStats stats_;
  SimTime until_ms_ = 0.0;
  SimTime last_fault_at_ = -1.0;  // <0: no fault yet
  bool awaiting_clean_sweep_ = false;
};

}  // namespace idr
